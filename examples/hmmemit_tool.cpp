// hmmemit-like tool: sample sequences from a profile HMM.
//
// Usage:
//   hmmemit_tool [-c] <model.hmm> [n] [out.fasta]
//   hmmemit_tool --demo [n]
//
// -c prints the consensus sequence instead of sampling.
//
// Useful for generating positive controls (the planted homologs of the
// benches are produced the same way) and for eyeballing what a model
// "looks like".
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "bio/fasta.hpp"
#include "hmm/generator.hpp"
#include "hmm/hmm_io.hpp"
#include "hmm/sampler.hpp"
#include "tool_exit.hpp"

using namespace finehmm;

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: hmmemit_tool <model.hmm> [n] [out.fasta]\n"
                 "       hmmemit_tool --demo [n]\n");
    return 2;
  }
  try {
    hmm::Plan7Hmm model;
    int n = 5;
    std::string out_path;
    bool consensus_only = false;
    if (std::string(argv[1]) == "-c" && argc > 2) {
      consensus_only = true;
      ++argv;
      --argc;
    }
    if (std::string(argv[1]) == "--demo") {
      model = hmm::paper_model(30);
      if (argc > 2) n = std::atoi(argv[2]);
    } else {
      model = hmm::read_hmm_file(argv[1]);
      if (argc > 2) n = std::atoi(argv[2]);
      if (argc > 3) out_path = argv[3];
    }
    if (n < 1) n = 1;

    if (consensus_only) {
      std::printf(">%s-consensus\n%s\n", model.name().c_str(),
                  model.consensus().c_str());
      return 0;
    }

    Pcg32 rng(0xE317);  // deterministic
    bio::SequenceDatabase db;
    hmm::SampleOptions opts;
    opts.mean_flank = 10.0;
    for (int i = 0; i < n; ++i) {
      auto s = hmm::sample_homolog(model, rng, opts,
                                   model.name() + "_sample" +
                                       std::to_string(i));
      db.add(std::move(s));
    }
    if (out_path.empty()) {
      bio::write_fasta(std::cout, db);
    } else {
      bio::write_fasta_file(out_path, db);
      std::printf("wrote %d sequences to %s\n", n, out_path.c_str());
    }
  } catch (const std::exception& e) {
    return tools::report_exception(e);
  }
  return 0;
}
