// Shared exit-code convention for the command-line tools (examples/ and
// tools/), asserted by scripts/smoke_tools.sh:
//
//   0  success
//   1  domain failure (scan raised, daemon refused, results wrong)
//   2  bad arguments  (usage error; nothing was attempted)
//   3  I/O failure    (file missing/unreadable/unwritable, connect failed)
//
// Scripts branch on these: a 2 means fix the invocation, a 3 means fix
// the environment, a 1 means investigate the run.
#pragma once

#include <cstdio>
#include <exception>

#include "util/error.hpp"

namespace finehmm::tools {

inline constexpr int kOk = 0;
inline constexpr int kFailure = 1;
inline constexpr int kBadArgs = 2;
inline constexpr int kIoError = 3;

/// Map a caught exception to the convention: IoError -> kIoError,
/// everything else -> kFailure.  Prints the message to stderr.
inline int report_exception(const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return dynamic_cast<const IoError*>(&e) != nullptr ? kIoError : kFailure;
}

}  // namespace finehmm::tools
