// GPU acceleration walkthrough for one model size.
//
// Shows what the library's SIMT layer exposes: the launch plan the
// occupancy maximizer picked, the kernel's performance counters from the
// functional simulation, and the modeled stage times/speedups for the
// devices the paper used.
//
// Run:  ./build/examples/gpu_speedup_demo [model_size]
#include <cstdio>
#include <cstdlib>

#include "bench_common.hpp"  // reuse the bench measurement helpers

using namespace finehmm;
using namespace finehmm::bench;

int main(int argc, char** argv) {
  const int M = argc > 1 ? std::atoi(argv[1]) : 400;
  auto model = hmm::paper_model(M);
  hmm::SearchProfile prof(model, hmm::AlignMode::kLocalMultihit, 400);
  profile::MsvProfile msv(prof);
  profile::VitProfile vit(prof);

  auto db = sample_database(DbPreset::envnr(), M, 2e6);
  bio::PackedDatabase packed(db);
  std::printf("model M=%d, sample: %zu sequences / %llu residues\n\n", M,
              db.size(),
              static_cast<unsigned long long>(packed.total_residues()));

  for (const auto& dev :
       {simt::DeviceSpec::tesla_k40(), simt::DeviceSpec::gtx580()}) {
    std::printf("--- %s ---\n", dev.name.c_str());
    for (auto placement :
         {gpu::ParamPlacement::kShared, gpu::ParamPlacement::kGlobal}) {
      auto m = measure_msv(dev, msv, packed, placement, kEnvnrResidues);
      if (!m.feasible) {
        std::printf("  MSV %-6s : infeasible (model too large for shared)\n",
                    placement_name(placement));
        continue;
      }
      const auto& plan = m.run.plan;
      std::printf(
          "  MSV %-6s : %2d warps/block, %4.0f%% occupancy (%s-limited)\n",
          placement_name(placement), plan.cfg.warps_per_block,
          100.0 * plan.occ.fraction, plan.occ.limiter_name());
      const auto& c = m.run.counters;
      std::printf(
          "              counters: %llu alu, %llu smem cycles, %llu shfl, "
          "%llu gmem tx\n",
          static_cast<unsigned long long>(c.alu),
          static_cast<unsigned long long>(c.smem_cycles),
          static_cast<unsigned long long>(c.shuffles),
          static_cast<unsigned long long>(c.gmem_transactions +
                                          c.gmem_cached_tx));
      std::printf(
          "              full Env_nr: GPU %.1f s vs CPU %.1f s -> %.2fx\n",
          m.gpu_time.total_s, m.cpu_time, m.speedup());
    }
    auto v = measure_vit(dev, vit, packed, gpu::ParamPlacement::kShared,
                         kEnvnrResidues * 0.022);
    if (v.feasible) {
      std::printf(
          "  VIT shared : %4.0f%% occupancy, %.2fx on the 2.2%% survivors "
          "(lazy-F iters/row: %.2f)\n",
          100.0 * v.run.plan.occ.fraction, v.speedup(),
          static_cast<double>(v.run.counters.lazyf_inner) /
              static_cast<double>(v.run.counters.residues));
    }
    std::printf("\n");
  }
  std::printf(
      "Reproduce the full sweep with bench/fig9_stage_speedup and\n"
      "bench/fig10_overall_kepler.\n");
  return 0;
}
