// hmmsearch-like command line tool.
//
// Usage:
//   hmmsearch_tool [options] <model.hmm> <db.fasta>
//   hmmsearch_tool --demo            (self-contained synthetic demo)
//
// Options:
//   --gpu            run MSV/P7Viterbi through the simulated GPU kernels
//   --global         use the global-memory parameter placement
//   --ali            print the Viterbi alignment under each hit
//   --domains        posterior-decode hits and print the domain table
//   --tblout <file>  also write the machine-readable target table
//   -E <evalue>      report threshold (default 10.0)
//   --max-hits <n>   print at most n hits (default 50)
//   --threads <n>    scan with the barrier-parallel CPU engine on n threads
//   --overlapped     scan with the overlapped streaming CPU engine
//   --telemetry <f>  write the unified ScanTelemetry JSON snapshot
//                    (docs/observability.md) to f
//   --trace <f>      write a Chrome trace_event JSON (chrome://tracing,
//                    Perfetto) of the scan's spans to f
//   --stats-json <f> write per-stage filter statistics (counts, cells,
//                    seconds, pass rates) as JSON to f
//
// All three output flags also accept the --flag=path spelling.
//
// Remote mode (docs/server.md):
//   hmmsearch_tool --connect HOST:PORT [--db-index n] <model.hmm>
// sends the query to a running finehmmd instead of scanning locally; the
// daemon's resident database replaces <db.fasta>, and the report/tblout
// output is rendered from the wire result (bit-identical scores).  The
// local-engine flags (--gpu, --threads, --overlapped, --ali, --domains,
// observability outputs) do not apply remotely and are rejected.
//
// Exit codes follow examples/tool_exit.hpp: 0 ok, 1 failure, 2 bad
// arguments, 3 I/O error.
//
// Searches every sequence of the FASTA database against the profile HMM
// through the calibrated MSV -> P7Viterbi -> Forward pipeline and prints
// a hit table, hmmsearch-style.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <stdexcept>
#include <string>

#include "bio/fasta.hpp"
#include "hmm/model_db.hpp"
#include "bio/packing.hpp"
#include "bio/seq_db_io.hpp"
#include "cpu/trace.hpp"
#include "hmm/generator.hpp"
#include "hmm/hmm_io.hpp"
#include "obs/recorder.hpp"
#include "obs/telemetry.hpp"
#include "pipeline/pipeline.hpp"
#include "pipeline/report.hpp"
#include "pipeline/workload.hpp"
#include "server/client.hpp"
#include "server/tcp.hpp"
#include "tool_exit.hpp"

using namespace finehmm;

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: hmmsearch_tool [--gpu] [--global] [-E evalue] "
               "[--max-hits n] [--threads n] [--overlapped]\n"
               "                      [--telemetry f] [--trace f] "
               "[--stats-json f] <model.hmm> <db.fasta>\n"
               "       hmmsearch_tool --connect HOST:PORT [--db-index n] "
               "[-E evalue] [--tblout f] <model.hmm>\n"
               "       hmmsearch_tool --demo\n");
}

/// Thrown when the query argument is a multi-model pressed library:
/// hmmsearch has exactly one query, so this is a usage error (exit 2),
/// not a scan failure.
struct UsageError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Load the query model from an ASCII .hmm file or a single-model pressed
/// .fhpdb library (whose stored calibration is used like STATS lines).
/// A library with several models throws UsageError — point the user at
/// the tools built for many-model scans.
hmm::Plan7Hmm load_query_model(const std::string& path,
                               std::optional<stats::ModelStats>& file_stats) {
  if (!ends_with(path, ".fhpdb")) return hmm::read_hmm_file(path, &file_stats);
  hmm::ModelDbReader library(path);
  if (library.size() != 1)
    throw UsageError(
        path + " holds " + std::to_string(library.size()) +
        " models, but hmmsearch_tool takes a single query model; use "
        "hmmscan_tool (fused many-model scan) or finehmmd for libraries");
  auto entry = library.load(0);
  file_stats = entry.model_stats;
  return std::move(entry.model);
}

/// Split "HOST:PORT"; false when the port part is missing or not a
/// number in [1, 65535].
bool parse_hostport(const std::string& arg, std::string& host,
                    std::uint16_t& port) {
  const std::size_t colon = arg.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= arg.size())
    return false;
  host = arg.substr(0, colon);
  const long p = std::atol(arg.c_str() + colon + 1);
  if (p < 1 || p > 65535) return false;
  port = static_cast<std::uint16_t>(p);
  return true;
}

/// Remote search against a running finehmmd.  The report renders from
/// the wire result (db summary + stage stats + hits) through the same
/// formatter the local path uses.
int run_remote(const std::string& hostport, std::uint32_t db_index,
               const std::string& hmm_path, double evalue,
               std::size_t max_hits, const std::string& tblout_path) {
  std::string host;
  std::uint16_t port = 0;
  if (!parse_hostport(hostport, host, port)) {
    std::fprintf(stderr, "error: --connect wants HOST:PORT, got '%s'\n",
                 hostport.c_str());
    usage();
    return tools::kBadArgs;
  }

  std::optional<stats::ModelStats> file_stats;
  hmm::Plan7Hmm model = load_query_model(hmm_path, file_stats);

  server::BlockingClient client(server::tcp_connect(host, port));
  std::printf("# engine:   remote (finehmmd at %s)\n", hostport.c_str());
  const server::RemoteResult rr = client.search(
      db_index, model, file_stats ? &*file_stats : nullptr, evalue);

  switch (rr.status) {
    case server::ClientStatus::kOk:
      break;
    case server::ClientStatus::kError:
      std::fprintf(stderr, "error: daemon refused the search: %s\n",
                   rr.error.message.c_str());
      return tools::kFailure;
    case server::ClientStatus::kOverloaded:
      std::fprintf(stderr,
                   "error: daemon overloaded (admission queue of %u full); "
                   "retry later\n",
                   rr.overload.queue_capacity);
      return tools::kFailure;
    case server::ClientStatus::kDisconnected:
      throw IoError("connection to " + hostport + " died mid-request");
  }

  pipeline::SearchResult result;
  result.hits = rr.result.hits;
  result.ssv = rr.result.ssv;
  result.msv = rr.result.msv;
  result.vit = rr.result.vit;
  result.fwd = rr.result.fwd;
  // The report only needs the query's name and length; the full search
  // profile is cheap to configure (no calibration).
  const hmm::SearchProfile prof(model, hmm::AlignMode::kLocalMultihit, 400);
  const pipeline::DbSummary summary{rr.result.db_sequences,
                                    rr.result.db_residues};

  pipeline::ReportOptions ropts;
  ropts.max_hits = max_hits;
  pipeline::write_report(std::cout, result, prof, summary, ropts);

  if (!tblout_path.empty()) {
    std::ofstream tbl(tblout_path);
    if (!tbl.good()) throw IoError("cannot open tblout file: " + tblout_path);
    pipeline::write_tblout(tbl, result, prof, summary);
    std::printf("# target table written to %s\n", tblout_path.c_str());
  }
  return tools::kOk;
}

/// Match `--name <value>` or `--name=<value>`; advances `i` in the first
/// form.  Returns true and fills `value` on a match.
bool path_opt(int argc, char** argv, int& i, const char* name,
              std::string& value) {
  const std::string arg = argv[i];
  if (arg == name) {
    if (i + 1 >= argc) return false;
    value = argv[++i];
    return true;
  }
  const std::string prefix = std::string(name) + "=";
  if (arg.rfind(prefix, 0) == 0) {
    value = arg.substr(prefix.size());
    return true;
  }
  return false;
}

std::ofstream open_or_die(const std::string& path) {
  std::ofstream os(path);
  if (!os.good()) throw IoError("cannot open output file: " + path);
  return os;
}

void write_stats_json(std::ostream& os, const pipeline::SearchResult& r,
                      bool use_ssv) {
  os << "{\n  \"stages\": [\n";
  struct Row {
    const char* name;
    const pipeline::StageStats* s;
  };
  std::vector<Row> rows;
  if (use_ssv) rows.push_back({"ssv", &r.ssv});
  rows.push_back({"msv", &r.msv});
  rows.push_back({"vit", &r.vit});
  rows.push_back({"fwd", &r.fwd});
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& s = *rows[i].s;
    os << "    {\"stage\": \"" << rows[i].name << "\", \"n_in\": " << s.n_in
       << ", \"n_passed\": " << s.n_passed << ", \"cells\": " << s.cells
       << ", \"seconds\": " << s.seconds
       << ", \"pass_rate\": " << s.pass_rate() << ", \"cells_per_sec\": "
       << obs::json_rate(s.cells, s.seconds) << "}"
       << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"hits\": " << r.hits.size();
  if (r.telemetry) {
    os << ",\n  \"telemetry\":\n";
    r.telemetry->write_json(os, 2);
  }
  os << "\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool use_gpu = false, demo = false, show_ali = false, show_domains = false;
  bool overlapped = false;
  auto placement = gpu::ParamPlacement::kShared;
  double evalue = 10.0;
  std::size_t max_hits = 50;
  std::size_t threads = 0;  // 0 = serial engine
  std::string hmm_path, fasta_path, tblout_path;
  std::string telemetry_path, trace_path, stats_json_path;
  std::string connect_hostport;
  std::uint32_t db_index = 0;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--connect" && i + 1 < argc) {
      connect_hostport = argv[++i];
    } else if (arg == "--db-index" && i + 1 < argc) {
      db_index = static_cast<std::uint32_t>(std::atoll(argv[++i]));
    } else if (arg == "--gpu") {
      use_gpu = true;
    } else if (arg == "--global") {
      placement = gpu::ParamPlacement::kGlobal;
    } else if (arg == "--demo") {
      demo = true;
    } else if (arg == "--ali") {
      show_ali = true;
    } else if (arg == "--domains") {
      show_domains = true;
    } else if (arg == "--overlapped") {
      overlapped = true;
    } else if (arg == "--tblout" && i + 1 < argc) {
      tblout_path = argv[++i];
    } else if (arg == "-E" && i + 1 < argc) {
      evalue = std::atof(argv[++i]);
    } else if (arg == "--max-hits" && i + 1 < argc) {
      max_hits = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (arg == "--threads" && i + 1 < argc) {
      threads = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (path_opt(argc, argv, i, "--telemetry", telemetry_path) ||
               path_opt(argc, argv, i, "--trace", trace_path) ||
               path_opt(argc, argv, i, "--stats-json", stats_json_path)) {
      // handled by path_opt
    } else if (hmm_path.empty()) {
      hmm_path = arg;
    } else if (fasta_path.empty()) {
      fasta_path = arg;
    } else {
      usage();
      return tools::kBadArgs;
    }
  }

  if (!connect_hostport.empty()) {
    // Remote mode: the daemon runs the scan — every local-engine and
    // observability flag is meaningless there, and a second positional
    // argument (a database path) contradicts "the daemon's database".
    const bool incompatible = use_gpu || demo || overlapped || threads > 0 ||
                              show_ali || show_domains ||
                              !telemetry_path.empty() || !trace_path.empty() ||
                              !stats_json_path.empty() || !fasta_path.empty();
    if (incompatible || hmm_path.empty()) {
      usage();
      return tools::kBadArgs;
    }
    try {
      return run_remote(connect_hostport, db_index, hmm_path, evalue,
                        max_hits, tblout_path);
    } catch (const UsageError& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return tools::kBadArgs;
    } catch (const std::exception& e) {
      return tools::report_exception(e);
    }
  }

  try {
    hmm::Plan7Hmm model;
    bio::SequenceDatabase db;
    std::optional<bio::MappedSeqDb> mapped;
    std::optional<stats::ModelStats> file_stats;
    if (demo) {
      model = hmm::paper_model(200);
      pipeline::WorkloadSpec spec;
      spec.db.n_sequences = 3000;
      spec.homolog_fraction = 0.01;
      db = pipeline::make_workload(model, spec);
      std::printf("# demo mode: synthetic model M=200, %zu sequences\n",
                  db.size());
    } else {
      if (hmm_path.empty() || fasta_path.empty()) {
        usage();
        return tools::kBadArgs;
      }
      model = load_query_model(hmm_path, file_stats);
      // FASTA by default; packed binary databases by extension.  The CPU
      // engines scan a .fsqdb zero-copy through the mmap-backed reader;
      // the simulated GPU path needs the decoded heap database.
      if (fasta_path.size() > 6 &&
          fasta_path.substr(fasta_path.size() - 6) == ".fsqdb") {
        if (use_gpu)
          db = bio::read_seq_db_file(fasta_path);
        else
          mapped.emplace(fasta_path);
      } else {
        db = bio::read_fasta_file(fasta_path);
      }
    }
    const pipeline::ScanSource src =
        mapped ? pipeline::ScanSource(*mapped) : pipeline::ScanSource(db);

    std::printf("# engine:   %s\n", use_gpu ? "simulated GPU (warp kernels)"
                                            : "CPU (striped SIMD)");

    pipeline::Thresholds thr;
    thr.report_evalue = evalue;
    thr.define_domains = show_domains;
    thr.compute_alignments = show_ali;
    if (file_stats)
      std::printf("# stats:    precomputed calibration from %s\n",
                  hmm_path.c_str());
    pipeline::HmmSearch search =
        file_stats ? pipeline::HmmSearch(model, *file_stats, thr)
                   : pipeline::HmmSearch(model, thr);

    // Any observability output wants the recorder attached; span tracing
    // is only needed for the Chrome trace.
    const bool want_obs = !telemetry_path.empty() || !trace_path.empty() ||
                          !stats_json_path.empty();
    obs::RecorderConfig rcfg;
    rcfg.tracing = !trace_path.empty();
    obs::Recorder recorder(rcfg);
    if (want_obs) search.set_recorder(&recorder);

    pipeline::SearchResult result;
    if (use_gpu) {
      bio::PackedDatabase packed(db);
      result = search.run_gpu(simt::DeviceSpec::tesla_k40(), db, packed,
                              placement);
    } else if (overlapped) {
      result = search.run_cpu_overlapped(src, threads);
    } else if (threads > 0) {
      result = search.run_cpu_parallel(src, threads);
    } else {
      result = search.run_cpu(src);
    }

    pipeline::ReportOptions ropts;
    ropts.max_hits = max_hits;
    ropts.show_alignments = show_ali;
    ropts.show_domains = show_domains;
    pipeline::write_report(std::cout, result, search.profile(), src, ropts);

    if (!tblout_path.empty()) {
      std::ofstream tbl(tblout_path);
      if (!tbl.good()) throw IoError("cannot open tblout file: " + tblout_path);
      pipeline::write_tblout(tbl, result, search.profile(), src);
      std::printf("# target table written to %s\n", tblout_path.c_str());
    }

    if (!telemetry_path.empty()) {
      auto os = open_or_die(telemetry_path);
      if (result.telemetry) {
        result.telemetry->write_json(os);
        os << "\n";
      } else {
        os << "null\n";
      }
      std::printf("# telemetry written to %s\n", telemetry_path.c_str());
    }
    if (!trace_path.empty()) {
      auto os = open_or_die(trace_path);
      recorder.write_chrome_trace(os);
      std::printf("# chrome trace written to %s\n", trace_path.c_str());
    }
    if (!stats_json_path.empty()) {
      auto os = open_or_die(stats_json_path);
      write_stats_json(os, result, search.thresholds().use_ssv_prefilter);
      std::printf("# stage stats written to %s\n", stats_json_path.c_str());
    }
  } catch (const UsageError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return tools::kBadArgs;
  } catch (const std::exception& e) {
    return tools::report_exception(e);
  }
  return tools::kOk;
}
