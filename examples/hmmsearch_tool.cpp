// hmmsearch-like command line tool.
//
// Usage:
//   hmmsearch_tool [options] <model.hmm> <db.fasta>
//   hmmsearch_tool --demo            (self-contained synthetic demo)
//
// Options:
//   --gpu            run MSV/P7Viterbi through the simulated GPU kernels
//   --global         use the global-memory parameter placement
//   --ali            print the Viterbi alignment under each hit
//   --domains        posterior-decode hits and print the domain table
//   --tblout <file>  also write the machine-readable target table
//   -E <evalue>      report threshold (default 10.0)
//   --max-hits <n>   print at most n hits (default 50)
//
// Searches every sequence of the FASTA database against the profile HMM
// through the calibrated MSV -> P7Viterbi -> Forward pipeline and prints
// a hit table, hmmsearch-style.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include "bio/fasta.hpp"
#include "bio/packing.hpp"
#include "bio/seq_db_io.hpp"
#include "cpu/trace.hpp"
#include "hmm/generator.hpp"
#include "hmm/hmm_io.hpp"
#include "pipeline/pipeline.hpp"
#include "pipeline/report.hpp"
#include "pipeline/workload.hpp"

using namespace finehmm;

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: hmmsearch_tool [--gpu] [--global] [-E evalue] "
               "[--max-hits n] <model.hmm> <db.fasta>\n"
               "       hmmsearch_tool --demo\n");
}

}  // namespace

int main(int argc, char** argv) {
  bool use_gpu = false, demo = false, show_ali = false, show_domains = false;
  auto placement = gpu::ParamPlacement::kShared;
  double evalue = 10.0;
  std::size_t max_hits = 50;
  std::string hmm_path, fasta_path, tblout_path;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--gpu") {
      use_gpu = true;
    } else if (arg == "--global") {
      placement = gpu::ParamPlacement::kGlobal;
    } else if (arg == "--demo") {
      demo = true;
    } else if (arg == "--ali") {
      show_ali = true;
    } else if (arg == "--domains") {
      show_domains = true;
    } else if (arg == "--tblout" && i + 1 < argc) {
      tblout_path = argv[++i];
    } else if (arg == "-E" && i + 1 < argc) {
      evalue = std::atof(argv[++i]);
    } else if (arg == "--max-hits" && i + 1 < argc) {
      max_hits = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (hmm_path.empty()) {
      hmm_path = arg;
    } else if (fasta_path.empty()) {
      fasta_path = arg;
    } else {
      usage();
      return 2;
    }
  }

  try {
    hmm::Plan7Hmm model;
    bio::SequenceDatabase db;
    std::optional<bio::MappedSeqDb> mapped;
    std::optional<stats::ModelStats> file_stats;
    if (demo) {
      model = hmm::paper_model(200);
      pipeline::WorkloadSpec spec;
      spec.db.n_sequences = 3000;
      spec.homolog_fraction = 0.01;
      db = pipeline::make_workload(model, spec);
      std::printf("# demo mode: synthetic model M=200, %zu sequences\n",
                  db.size());
    } else {
      if (hmm_path.empty() || fasta_path.empty()) {
        usage();
        return 2;
      }
      model = hmm::read_hmm_file(hmm_path, &file_stats);
      // FASTA by default; packed binary databases by extension.  The CPU
      // engines scan a .fsqdb zero-copy through the mmap-backed reader;
      // the simulated GPU path needs the decoded heap database.
      if (fasta_path.size() > 6 &&
          fasta_path.substr(fasta_path.size() - 6) == ".fsqdb") {
        if (use_gpu)
          db = bio::read_seq_db_file(fasta_path);
        else
          mapped.emplace(fasta_path);
      } else {
        db = bio::read_fasta_file(fasta_path);
      }
    }
    const pipeline::ScanSource src =
        mapped ? pipeline::ScanSource(*mapped) : pipeline::ScanSource(db);

    std::printf("# engine:   %s\n", use_gpu ? "simulated GPU (warp kernels)"
                                            : "CPU (striped SIMD)");

    pipeline::Thresholds thr;
    thr.report_evalue = evalue;
    thr.define_domains = show_domains;
    thr.compute_alignments = show_ali;
    if (file_stats)
      std::printf("# stats:    from STATS lines in %s\n", hmm_path.c_str());
    pipeline::HmmSearch search =
        file_stats ? pipeline::HmmSearch(model, *file_stats, thr)
                   : pipeline::HmmSearch(model, thr);

    pipeline::SearchResult result;
    if (use_gpu) {
      bio::PackedDatabase packed(db);
      result = search.run_gpu(simt::DeviceSpec::tesla_k40(), db, packed,
                              placement);
    } else {
      result = search.run_cpu(src);
    }

    pipeline::ReportOptions ropts;
    ropts.max_hits = max_hits;
    ropts.show_alignments = show_ali;
    ropts.show_domains = show_domains;
    pipeline::write_report(std::cout, result, search.profile(), src, ropts);

    if (!tblout_path.empty()) {
      std::ofstream tbl(tblout_path);
      if (!tbl.good()) throw Error("cannot open tblout file: " + tblout_path);
      pipeline::write_tblout(tbl, result, search.profile(), src);
      std::printf("# target table written to %s\n", tblout_path.c_str());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
