// hmmpress-like tool: compile ASCII .hmm files into a binary model
// library (.fhpdb) for fast scanning, calibrating any model that lacks
// STATS lines.
//
// Usage:
//   hmmpress_tool <out.fhpdb> <model1.hmm> [model2.hmm ...]
//   hmmpress_tool --demo <out.fhpdb> [n_models]
//   hmmpress_tool --stat <lib.fhpdb>
//
// --stat prints the library's model-length histogram and the fused-scan
// group shapes the auto-tuner (hmm/model_group.hpp) would pick at each
// SIMD lane width — the planning view behind hmmscan_tool's fused sweep.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "hmm/generator.hpp"
#include "hmm/hmm_io.hpp"
#include "hmm/model_db.hpp"
#include "hmm/model_group.hpp"
#include "hmm/profile.hpp"
#include "profile/msv_profile.hpp"
#include "profile/vit_profile.hpp"
#include "stats/calibrate.hpp"
#include "tool_exit.hpp"

using namespace finehmm;

namespace {

stats::ModelStats calibrate_model(const hmm::Plan7Hmm& model) {
  hmm::SearchProfile prof(model, hmm::AlignMode::kLocalMultihit, 400);
  profile::MsvProfile msv(prof);
  profile::VitProfile vit(prof);
  return stats::calibrate(prof, msv, vit);
}

int stat_library(const std::string& path) {
  hmm::ModelDbReader library(path);
  std::vector<int> lengths;
  std::uint64_t total = 0;
  lengths.reserve(library.size());
  for (std::size_t m = 0; m < library.size(); ++m) {
    const int M = library.load(m).model.length();
    lengths.push_back(M);
    total += static_cast<std::uint64_t>(M);
  }
  std::printf("# library: %s\n", path.c_str());
  std::printf("# models:  %zu (%llu positions total)\n", lengths.size(),
              static_cast<unsigned long long>(total));

  std::printf("#\n# model length histogram:\n");
  for (const auto& b : hmm::length_histogram(lengths)) {
    std::printf("#   [%5d, %5d)  %6zu  ", b.lo, b.hi, b.count);
    const int bar = static_cast<int>(
        60.0 * static_cast<double>(b.count) /
        static_cast<double>(lengths.size()));
    for (int i = 0; i < bar; ++i) std::putchar('*');
    std::putchar('\n');
  }

  std::printf("#\n# fused group shapes (hmm::plan_model_groups):\n");
  for (int lanes : {16, 32, 64}) {
    auto plan = hmm::plan_model_groups(lengths, lanes);
    std::printf(
        "#   %2d lanes: %zu groups, %zu/%zu models fused "
        "(%.1f models/group, %.1f%% lane occupancy), %zu unfused\n",
        lanes, plan.groups.size(), plan.fused_models(), lengths.size(),
        plan.models_per_group(), 100.0 * plan.lane_occupancy(),
        plan.unfused.size());
    for (std::size_t g = 0; g < plan.groups.size(); ++g) {
      const auto& shape = plan.groups[g];
      int min_len = 0, max_len = 0;
      for (std::size_t m : shape.members) {
        if (min_len == 0 || lengths[m] < min_len) min_len = lengths[m];
        if (lengths[m] > max_len) max_len = lengths[m];
      }
      std::printf(
          "#     group %zu: %zu models (M %d..%d), Q=%d, lanes %d/%d, "
          "occupancy %.1f%%\n",
          g, shape.members.size(), min_len, max_len, shape.Q,
          shape.lanes_used, lanes, 100.0 * shape.occupancy);
    }
  }
  return tools::kOk;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: hmmpress_tool <out.fhpdb> <model.hmm> [...]\n"
                 "       hmmpress_tool --demo <out.fhpdb> [n_models]\n"
                 "       hmmpress_tool --stat <lib.fhpdb>\n");
    return 2;
  }
  try {
    if (std::string(argv[1]) == "--stat") return stat_library(argv[2]);
    std::vector<hmm::ModelEntry> entries;
    std::string out_path;

    if (std::string(argv[1]) == "--demo") {
      out_path = argv[2];
      int n = argc > 3 ? std::atoi(argv[3]) : 5;
      Pcg32 rng(99);
      for (int i = 0; i < n; ++i) {
        hmm::RandomHmmSpec spec;
        spec.length = 30 + static_cast<int>(rng.below(200));
        spec.seed = 500 + i;
        hmm::ModelEntry e;
        e.model = hmm::generate_hmm(spec);
        e.model.set_name("DEMO" + std::to_string(i));
        std::printf("calibrating %s (M=%d)...\n", e.model.name().c_str(),
                    e.model.length());
        e.model_stats = calibrate_model(e.model);
        entries.push_back(std::move(e));
      }
    } else {
      out_path = argv[1];
      for (int i = 2; i < argc; ++i) {
        hmm::ModelEntry e;
        e.model = hmm::read_hmm_file(argv[i], &e.model_stats);
        if (!e.model_stats) {
          std::printf("calibrating %s (no STATS lines)...\n", argv[i]);
          e.model_stats = calibrate_model(e.model);
        }
        entries.push_back(std::move(e));
      }
    }

    hmm::write_model_db_file(out_path, entries);
    std::printf("pressed %zu models into %s\n", entries.size(),
                out_path.c_str());
  } catch (const std::exception& e) {
    return tools::report_exception(e);
  }
  return 0;
}
