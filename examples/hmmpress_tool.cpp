// hmmpress-like tool: compile ASCII .hmm files into a binary model
// library (.fhpdb) for fast scanning, calibrating any model that lacks
// STATS lines.
//
// Usage:
//   hmmpress_tool <out.fhpdb> <model1.hmm> [model2.hmm ...]
//   hmmpress_tool --demo <out.fhpdb> [n_models]
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "hmm/generator.hpp"
#include "hmm/hmm_io.hpp"
#include "hmm/model_db.hpp"
#include "hmm/profile.hpp"
#include "profile/msv_profile.hpp"
#include "profile/vit_profile.hpp"
#include "stats/calibrate.hpp"
#include "tool_exit.hpp"

using namespace finehmm;

namespace {

stats::ModelStats calibrate_model(const hmm::Plan7Hmm& model) {
  hmm::SearchProfile prof(model, hmm::AlignMode::kLocalMultihit, 400);
  profile::MsvProfile msv(prof);
  profile::VitProfile vit(prof);
  return stats::calibrate(prof, msv, vit);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: hmmpress_tool <out.fhpdb> <model.hmm> [...]\n"
                 "       hmmpress_tool --demo <out.fhpdb> [n_models]\n");
    return 2;
  }
  try {
    std::vector<hmm::ModelEntry> entries;
    std::string out_path;

    if (std::string(argv[1]) == "--demo") {
      out_path = argv[2];
      int n = argc > 3 ? std::atoi(argv[3]) : 5;
      Pcg32 rng(99);
      for (int i = 0; i < n; ++i) {
        hmm::RandomHmmSpec spec;
        spec.length = 30 + static_cast<int>(rng.below(200));
        spec.seed = 500 + i;
        hmm::ModelEntry e;
        e.model = hmm::generate_hmm(spec);
        e.model.set_name("DEMO" + std::to_string(i));
        std::printf("calibrating %s (M=%d)...\n", e.model.name().c_str(),
                    e.model.length());
        e.model_stats = calibrate_model(e.model);
        entries.push_back(std::move(e));
      }
    } else {
      out_path = argv[1];
      for (int i = 2; i < argc; ++i) {
        hmm::ModelEntry e;
        e.model = hmm::read_hmm_file(argv[i], &e.model_stats);
        if (!e.model_stats) {
          std::printf("calibrating %s (no STATS lines)...\n", argv[i]);
          e.model_stats = calibrate_model(e.model);
        }
        entries.push_back(std::move(e));
      }
    }

    hmm::write_model_db_file(out_path, entries);
    std::printf("pressed %zu models into %s\n", entries.size(),
                out_path.c_str());
  } catch (const std::exception& e) {
    return tools::report_exception(e);
  }
  return 0;
}
