// hmmalign-like tool: align sequences to a profile HMM and emit an
// A2M-style multiple alignment (uppercase/dash = match columns,
// lowercase = insertions).
//
// Usage:
//   hmmalign_tool [--glocal] <model.hmm> <seqs.fasta> [out.afa]
//   hmmalign_tool --demo [out.afa]
//
// --glocal aligns each sequence across the whole model (wing-retracted
// entry/exit), which is what you usually want when the inputs are known
// full-length members of the family.
//
// Each sequence is Viterbi-traced against the model; its longest aligned
// segment supplies the residue (or deletion) for each of the M match
// columns.  Residues emitted by insert states are attached, lowercased,
// after the preceding match column.
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bio/fasta.hpp"
#include "cpu/trace.hpp"
#include "hmm/generator.hpp"
#include "hmm/hmm_io.hpp"
#include "hmm/profile.hpp"
#include "hmm/sampler.hpp"
#include "tool_exit.hpp"

using namespace finehmm;

namespace {

/// Build the A2M row of one sequence from its trace (match columns 1..M).
std::string a2m_row(const cpu::ViterbiTrace& trace, int M,
                    const std::uint8_t* codes) {
  // Collect per-column content from the highest-scoring pass: we simply
  // take the first B->E segment covering the most match states.
  std::vector<std::string> column(M + 1);  // column[k] = match char + inserts
  // operator=(char) sidesteps GCC 12's -Wrestrict false positive (bug
  // 105651) on the operator=(const char*) inline expansion.
  for (int k = 1; k <= M; ++k) column[k] = '-';
  int covered_best = -1;
  std::vector<std::string> best = column;

  std::vector<std::string> cur = column;
  int covered = 0;
  int last_k = 0;
  for (const auto& step : trace.steps) {
    switch (step.state) {
      case cpu::TraceState::kB:
        cur = column;
        covered = 0;
        last_k = 0;
        break;
      case cpu::TraceState::kM:
        cur[step.k] = std::string(1, bio::symbol(codes[step.i - 1]));
        last_k = step.k;
        ++covered;
        break;
      case cpu::TraceState::kD:
        cur[step.k] = '-';
        last_k = step.k;
        break;
      case cpu::TraceState::kI:
        if (last_k >= 1)
          cur[last_k].push_back(static_cast<char>(
              std::tolower(bio::symbol(codes[step.i - 1]))));
        break;
      case cpu::TraceState::kE:
        if (covered > covered_best) {
          covered_best = covered;
          best = cur;
        }
        break;
      default:
        break;
    }
  }

  std::string row;
  for (int k = 1; k <= M; ++k) row += best[k];
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: hmmalign_tool <model.hmm> <seqs.fasta> [out.afa]\n"
                 "       hmmalign_tool --demo [out.afa]\n");
    return 2;
  }

  try {
    hmm::Plan7Hmm model;
    bio::SequenceDatabase seqs;
    std::string out_path;
    bool glocal = false;

    int argi = 1;
    if (std::string(argv[argi]) == "--glocal") {
      glocal = true;
      ++argi;
      if (argi >= argc) {
        std::fprintf(stderr, "error: missing model after --glocal\n");
        return 2;
      }
    }
    argv += argi - 1;
    argc -= argi - 1;

    if (std::string(argv[1]) == "--demo") {
      model = hmm::paper_model(40);
      Pcg32 rng(123);
      for (int i = 0; i < 6; ++i)
        seqs.add(hmm::sample_homolog(model, rng, {},
                                     "member" + std::to_string(i)));
      if (argc > 2) out_path = argv[2];
      std::printf("# demo: aligning 6 sampled homologs to a 40-state model\n");
    } else {
      if (argc < 3) {
        std::fprintf(stderr, "error: need a model and a FASTA file\n");
        return 2;
      }
      model = hmm::read_hmm_file(argv[1]);
      seqs = bio::read_fasta_file(argv[2]);
      if (argc > 3) out_path = argv[3];
    }

    hmm::SearchProfile prof(model,
                            glocal ? hmm::AlignMode::kGlocalUnihit
                                   : hmm::AlignMode::kLocalMultihit,
                            400);
    bio::SequenceDatabase aligned;
    for (const auto& s : seqs) {
      auto trace = cpu::viterbi_trace(prof, s.codes.data(), s.length());
      std::string row = a2m_row(trace, model.length(), s.codes.data());
      // A2M rows may contain '-' and lowercase; keep them as annotation by
      // storing the text directly.
      bio::Sequence out_seq;
      out_seq.name = s.name;
      out_seq.description = "aligned to " + model.name();
      out_seq.codes = bio::digitize(row);
      aligned.add(std::move(out_seq));
      std::printf("%-16s %s\n", s.name.c_str(), row.c_str());
    }

    if (!out_path.empty()) {
      bio::write_fasta_file(out_path, aligned);
      std::printf("# wrote %s\n", out_path.c_str());
    }
  } catch (const std::exception& e) {
    return tools::report_exception(e);
  }
  return 0;
}
