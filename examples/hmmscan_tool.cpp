// hmmscan-like tool: annotate query sequences against a pressed model
// library — the reverse orientation of hmmsearch (sequence = query,
// models = database), which is how Pfam annotation actually runs.
//
// Usage:
//   hmmscan_tool [--gpu | --sequential] [--threads n]
//                <library.fhpdb> <queries.fasta>
//
// For each query sequence, every library model's calibrated pipeline is
// applied and significant models are reported best-first.  The default
// CPU path lane-packs short models into fused groups (docs/multi_model.md)
// so one MSV/SSV sweep scores a whole group per sequence; --sequential
// scans one model at a time (the pre-fusion behaviour, same hits).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bio/fasta.hpp"
#include "bio/packing.hpp"
#include "hmm/model_db.hpp"
#include "pipeline/pipeline.hpp"
#include "tool_exit.hpp"

using namespace finehmm;

int main(int argc, char** argv) {
  bool use_gpu = false, sequential = false;
  std::size_t threads = 0;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a == "--gpu")
      use_gpu = true;
    else if (a == "--sequential")
      sequential = true;
    else if (a == "--threads" && i + 1 < argc)
      threads = static_cast<std::size_t>(std::atoll(argv[++i]));
    else
      paths.push_back(a);
  }
  if (paths.size() != 2) {
    std::fprintf(stderr,
                 "usage: hmmscan_tool [--gpu | --sequential] [--threads n] "
                 "<library.fhpdb> <queries.fasta>\n");
    return 2;
  }

  try {
    hmm::ModelDbReader library(paths[0]);
    auto queries = bio::read_fasta_file(paths[1]);
    std::printf("# library: %zu models; queries: %zu sequences\n",
                library.size(), queries.size());

    // One calibrated search per model (calibration comes from the pressed
    // stats; nothing is simulated at scan time).
    std::vector<pipeline::HmmSearch> searches;
    std::vector<std::string> names;
    for (std::size_t m = 0; m < library.size(); ++m) {
      auto entry = library.load(m);
      names.push_back(entry.model.name());
      if (entry.model_stats) {
        searches.emplace_back(entry.model, *entry.model_stats);
      } else {
        searches.emplace_back(entry.model);
      }
    }

    struct Annot {
      std::size_t query;
      std::string model;
      double evalue;
      float bits;
    };
    std::vector<Annot> annots;
    auto collect = [&](std::size_t m, const pipeline::SearchResult& r) {
      for (const auto& hit : r.hits)
        annots.push_back({hit.seq_index, names[m], hit.evalue, hit.fwd_bits});
    };

    if (use_gpu) {
      bio::PackedDatabase packed(queries);
      for (std::size_t m = 0; m < searches.size(); ++m)
        collect(m, searches[m].run_gpu_auto(simt::DeviceSpec::tesla_k40(),
                                            queries, packed));
    } else if (sequential) {
      for (std::size_t m = 0; m < searches.size(); ++m)
        collect(m, searches[m].run_cpu(queries));
    } else {
      // Fused many-model sweep: the auto-tuner lane-packs short models
      // into shared group tables; hits match the sequential path bit for
      // bit (tests/test_fused_scan.cpp).
      ThreadPool pool(threads);
      std::vector<const pipeline::HmmSearch*> ptrs;
      ptrs.reserve(searches.size());
      for (const auto& s : searches) ptrs.push_back(&s);
      auto scan = pipeline::HmmSearch::run_cpu_fused(
          ptrs, pipeline::ScanSource(queries), pool);
      double groups = 0, fused = 0, occupancy = 0;
      for (const auto& st : scan.telemetry.stages) {
        if (st.stage != "msv") continue;
        for (const auto& [key, value] : st.counters) {
          if (key == "fuse.groups") groups = value;
          if (key == "fuse.fused_models") fused = value;
          if (key == "fuse.lane_occupancy") occupancy = value;
        }
      }
      std::printf(
          "# fused scan: %.0f of %zu models in %.0f groups "
          "(%.1f%% lane occupancy)\n",
          fused, searches.size(), groups, 100.0 * occupancy);
      for (std::size_t m = 0; m < searches.size(); ++m)
        collect(m, scan.per_model[m]);
    }

    std::sort(annots.begin(), annots.end(), [](const Annot& a,
                                               const Annot& b) {
      return a.query != b.query ? a.query < b.query : a.evalue < b.evalue;
    });

    std::printf("#\n%-20s %-12s %10s %10s\n", "query", "model", "E-value",
                "bits");
    std::size_t last = static_cast<std::size_t>(-1);
    for (const auto& a : annots) {
      std::printf("%-20s %-12s %10.2e %10.1f\n",
                  a.query == last ? "" : queries[a.query].name.c_str(),
                  a.model.c_str(), a.evalue, a.bits);
      last = a.query;
    }
    if (annots.empty()) std::printf("# no significant annotations\n");
  } catch (const std::exception& e) {
    return tools::report_exception(e);
  }
  return 0;
}
