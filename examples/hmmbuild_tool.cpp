// hmmbuild-like command line tool: estimate a profile HMM from a multiple
// sequence alignment and write it in the HMMER3 ASCII format.
//
// Usage:
//   hmmbuild_tool <out.hmm> <alignment.afa|.sto> [name]
//   hmmbuild_tool --demo <out.hmm>
//
// Aligned FASTA (equal-length rows, '-' or '.' gaps) or Stockholm 1.0
// (.sto/.stk; a #=GC RF line assigns match columns by hand).
#include <cstdio>
#include <string>
#include <vector>

#include "bio/fasta.hpp"
#include "bio/stockholm.hpp"
#include "hmm/builder.hpp"
#include "hmm/hmm_io.hpp"
#include "hmm/profile.hpp"
#include "profile/msv_profile.hpp"
#include "profile/vit_profile.hpp"
#include "stats/calibrate.hpp"
#include "tool_exit.hpp"

using namespace finehmm;

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: hmmbuild_tool <out.hmm> <alignment.afa> [name]\n"
                 "       hmmbuild_tool --demo <out.hmm>\n");
    return 2;
  }

  try {
    std::vector<std::string> rows;
    std::string name = "built";
    std::string out_path;

    if (std::string(argv[1]) == "--demo") {
      out_path = argv[2];
      // A toy globin-ish seed alignment.
      rows = {
          "MKVLS-GKWELVA-DPTGHGQE",
          "MKVLSEGKWQLVAADPQGHGQE",
          "MRVLT-GKWELVS-DPSGHGKE",
          "MKVLS-GEWELVA-DPTGHGQD",
          "MKILSDGKWELIA-DPTGHGQE",
      };
      name = "demo_motif";
      std::printf("building from a built-in 5-sequence demo alignment\n");
    }

    bool built_from_stockholm = false;
    hmm::Plan7Hmm model;
    if (std::string(argv[1]) != "--demo") {
      out_path = argv[1];
      std::string aln_path = argv[2];
      if (argc > 3) name = argv[3];
      auto ends_with = [&](const char* ext) {
        std::string e(ext);
        return aln_path.size() > e.size() &&
               aln_path.compare(aln_path.size() - e.size(), e.size(), e) == 0;
      };
      if (ends_with(".sto") || ends_with(".stk")) {
        auto sto = bio::read_stockholm_file(aln_path);
        if (argc > 3) sto.id = name;
        model = hmm::build_from_stockholm(sto);
        rows = sto.rows;  // for the report below
        built_from_stockholm = true;
        std::printf("built from Stockholm (%s match columns)\n",
                    sto.rf ? "RF-assigned" : "gap-fraction");
      } else {
        auto aln_db = bio::read_fasta_file(aln_path);
        for (const auto& s : aln_db) rows.push_back(s.text());
      }
    }
    if (!built_from_stockholm) model = hmm::build_from_alignment(rows, name);
    std::printf("built model '%s': %d match states from %zu sequences\n",
                model.name().c_str(), model.length(), rows.size());

    // Report per-column conservation so users can sanity check the build.
    auto occ = model.match_occupancy();
    double mean_occ = 0.0;
    for (int k = 1; k <= model.length(); ++k) mean_occ += occ[k];
    std::printf("mean match-state occupancy: %.3f\n",
                mean_occ / model.length());

    // Calibrate, HMMER-style, and persist the statistics as STATS lines
    // so hmmsearch_tool can skip recalibration.
    hmm::SearchProfile prof(model, hmm::AlignMode::kLocalMultihit, 400);
    profile::MsvProfile msv(prof);
    profile::VitProfile vit(prof);
    auto st = stats::calibrate(prof, msv, vit);
    std::printf("calibrated: MSV mu=%.2f, VIT mu=%.2f, FWD tau=%.2f "
                "(lambda = log 2)\n",
                st.msv.mu, st.vit.mu, st.fwd.mu);

    hmm::write_hmm_file(out_path, model, &st);
    std::printf("wrote %s (with STATS lines)\n", out_path.c_str());
  } catch (const std::exception& e) {
    return tools::report_exception(e);
  }
  return 0;
}
