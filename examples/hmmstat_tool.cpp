// hmmstat-like tool: summary statistics of a profile HMM.
//
// Usage:
//   hmmstat_tool <model.hmm>
//   hmmstat_tool --demo [model_size]
//
// Prints length, mean match occupancy, information content (relative
// entropy per match state), indel statistics, the calibrated score
// statistics when present, and the GPU launch plans the library would
// pick for each stage — a one-stop sanity check for a model.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>

#include "gpu/placement_policy.hpp"
#include "hmm/generator.hpp"
#include "hmm/hmm_io.hpp"
#include "tool_exit.hpp"

using namespace finehmm;

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: hmmstat_tool <model.hmm>\n"
                 "       hmmstat_tool --demo [model_size]\n");
    return 2;
  }
  try {
    hmm::Plan7Hmm model;
    std::optional<stats::ModelStats> st;
    if (std::string(argv[1]) == "--demo") {
      int M = argc > 2 ? std::atoi(argv[2]) : 200;
      model = hmm::paper_model(M);
    } else {
      model = hmm::read_hmm_file(argv[1], &st);
    }

    const int M = model.length();
    const auto& bg = bio::background_frequencies();

    // Relative entropy (bits) per match state: information content.
    double re_total = 0.0;
    for (int k = 1; k <= M; ++k) {
      double re = 0.0;
      for (int a = 0; a < bio::kK; ++a) {
        double p = model.mat(k, a);
        if (p > 0.0) re += p * std::log2(p / bg[a]);
      }
      re_total += re;
    }

    auto occ = model.match_occupancy();
    double occ_mean = 0.0;
    for (int k = 1; k <= M; ++k) occ_mean += occ[k];
    occ_mean /= M;

    double mi = 0.0, md = 0.0, dd = 0.0;
    for (int k = 1; k < M; ++k) {
      mi += model.tr(k, hmm::kTMI);
      md += model.tr(k, hmm::kTMD);
      dd += model.tr(k, hmm::kTDD);
    }

    std::printf("model:           %s\n", model.name().c_str());
    if (!model.description().empty())
      std::printf("description:     %s\n", model.description().c_str());
    std::printf("length:          %d match states\n", M);
    std::printf("info content:    %.2f bits total, %.3f bits/state\n",
                re_total, re_total / M);
    std::printf("mean occupancy:  %.3f\n", occ_mean);
    std::printf("mean M->I / M->D / D->D: %.4f / %.4f / %.4f\n", mi / (M - 1),
                md / (M - 1), dd / (M - 1));
    if (st) {
      std::printf("calibration:     MSV mu=%.2f  VIT mu=%.2f  FWD tau=%.2f\n",
                  st->msv.mu, st->vit.mu, st->fwd.mu);
    } else {
      std::printf("calibration:     (no STATS lines)\n");
    }

    std::printf("\nGPU launch plans (Tesla K40):\n");
    auto k40 = simt::DeviceSpec::tesla_k40();
    for (auto stage : {gpu::Stage::kMsv, gpu::Stage::kViterbi}) {
      auto c = gpu::choose_placement(stage, M, k40);
      std::printf("  %-9s -> %s placement, %d warps/block, %.0f%% occupancy "
                  "(%s-limited)\n",
                  stage == gpu::Stage::kMsv ? "MSV" : "P7Viterbi",
                  gpu::placement_name(c.placement),
                  c.plan.cfg.warps_per_block, 100.0 * c.plan.occ.fraction,
                  c.plan.occ.limiter_name());
    }
  } catch (const std::exception& e) {
    return tools::report_exception(e);
  }
  return 0;
}
