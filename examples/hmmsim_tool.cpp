// hmmsim-like tool: score random sequences against a model and test the
// theoretical score distributions the whole E-value machinery rests on
// (paper §I: Viterbi/MSV null scores are Gumbel with lambda = log 2,
// Forward's high tail is exponential with the same lambda).
//
// Usage:
//   hmmsim_tool [model.hmm] [n_samples]        (default: demo model, 500)
//
// Reports fitted parameters, the full-ML lambda (should be ~log 2), and
// Kolmogorov-Smirnov goodness of fit for the Gumbel fits.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bio/synthetic.hpp"
#include "cpu/fwd_filter.hpp"
#include "cpu/msv_filter.hpp"
#include "cpu/vit_filter.hpp"
#include "hmm/generator.hpp"
#include "hmm/hmm_io.hpp"
#include "stats/distributions.hpp"
#include "tool_exit.hpp"

using namespace finehmm;

int main(int argc, char** argv) {
  try {
    hmm::Plan7Hmm model;
    int n = 500;
    if (argc > 1 && std::string(argv[1]) != "--demo") {
      model = hmm::read_hmm_file(argv[1]);
    } else {
      model = hmm::paper_model(120);
    }
    if (argc > 2) n = std::atoi(argv[2]);
    if (n < 50) n = 50;

    hmm::SearchProfile prof(model, hmm::AlignMode::kLocalMultihit, 100);
    profile::MsvProfile msv(prof);
    profile::VitProfile vit(prof);
    profile::FwdProfile fwd(prof);

    std::printf("hmmsim: %s (M=%d), %d random sequences of length 100\n\n",
                model.name().c_str(), model.length(), n);

    std::vector<double> msv_bits, vit_bits, fwd_bits;
    Pcg32 rng(0x51AB);
    cpu::MsvFilter msv_f(msv);
    cpu::VitFilter vit_f(vit);
    cpu::FwdFilter fwd_f(fwd);
    for (int i = 0; i < n; ++i) {
      auto seq = bio::random_sequence(100, rng);
      auto m = msv_f.score(seq.codes.data(), 100);
      if (!m.overflowed)
        msv_bits.push_back(hmm::nats_to_bits(m.score_nats, 100));
      auto v = vit_f.score(seq.codes.data(), 100);
      vit_bits.push_back(hmm::nats_to_bits(v.score_nats, 100));
      fwd_bits.push_back(
          hmm::nats_to_bits(fwd_f.score(seq.codes.data(), 100), 100));
    }

    auto report = [](const char* name, const std::vector<double>& xs) {
      auto fixed = stats::Gumbel::fit_mu_given_lambda(xs);
      auto full = stats::Gumbel::fit_ml(xs);
      auto ks = stats::ks_test(
          xs, [&](double x) { return fixed.cdf(x); });
      std::printf("%-8s mu=%7.3f  (full-ML lambda=%.3f vs log2=0.693)  "
                  "KS D=%.4f p=%.3f\n",
                  name, fixed.mu, full.lambda, ks.d, ks.pvalue);
      return ks.pvalue;
    };

    std::printf("Gumbel fits (lambda fixed at log 2):\n");
    double p1 = report("MSV", msv_bits);
    double p2 = report("Viterbi", vit_bits);

    auto tail = stats::ExponentialTail::fit_tail(fwd_bits);
    std::printf("\nForward exponential tail: tau=%.3f "
                "(tail mass 0.04, lambda=log 2)\n", tail.mu);

    std::printf(
        "\nEddy (2008): null Viterbi-family scores are Gumbel(lambda=log2)\n"
        "and Forward tails exponential(lambda=log2) — the property that\n"
        "lets the MSV/Viterbi stages pre-filter for Forward (paper §I).\n");
    // Exit nonzero if the Gumbel hypothesis is strongly rejected.
    return (p1 < 0.001 || p2 < 0.001) ? 1 : 0;
  } catch (const std::exception& e) {
    return tools::report_exception(e);
  }
}
