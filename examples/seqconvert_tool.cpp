// Sequence database converter: FASTA <-> packed binary (.fsqdb).
//
// Usage:
//   seqconvert_tool <in.fasta> <out.fsqdb>     (pack)
//   seqconvert_tool <in.fsqdb> <out.fasta>     (unpack)
//
// Direction is inferred from the extensions.
#include <cstdio>
#include <string>

#include "bio/fasta.hpp"
#include "bio/seq_db_io.hpp"
#include "tool_exit.hpp"

using namespace finehmm;

namespace {

bool has_ext(const std::string& path, const std::string& ext) {
  return path.size() > ext.size() &&
         path.compare(path.size() - ext.size(), ext.size(), ext) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 3) {
    std::fprintf(stderr,
                 "usage: seqconvert_tool <in.fasta> <out.fsqdb>\n"
                 "       seqconvert_tool <in.fsqdb> <out.fasta>\n");
    return 2;
  }
  try {
    std::string in_path = argv[1], out_path = argv[2];
    bio::SequenceDatabase db = has_ext(in_path, ".fsqdb")
                                   ? bio::read_seq_db_file(in_path)
                                   : bio::read_fasta_file(in_path);
    if (has_ext(out_path, ".fsqdb"))
      bio::write_seq_db_file(out_path, db);
    else
      bio::write_fasta_file(out_path, db);
    std::printf("converted %zu sequences (%llu residues): %s -> %s\n",
                db.size(),
                static_cast<unsigned long long>(db.total_residues()),
                in_path.c_str(), out_path.c_str());
  } catch (const std::exception& e) {
    return tools::report_exception(e);
  }
  return 0;
}
