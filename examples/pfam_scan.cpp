// pfam_scan-style scenario: scan one database against a whole library of
// profile HMMs (the paper's motivating workload — Pfam 27.0 has 34,831
// families, 84.5% of size <= 400).
//
// We synthesize a mini-Pfam whose size distribution mirrors the paper's
// statistics, plant homologs of a few families into the database, and
// report the per-family hit counts plus which memory configuration the
// launch planner picked for each model size.
//
// Run:  ./build/examples/pfam_scan [n_families] [n_sequences]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bio/packing.hpp"
#include "gpu/placement_policy.hpp"
#include "hmm/generator.hpp"
#include "hmm/sampler.hpp"
#include "pipeline/multi_search.hpp"
#include "pipeline/workload.hpp"
#include "util/rng.hpp"

using namespace finehmm;

namespace {

/// Sample a Pfam-like model size: 84.5% <= 400, 14.4% in (400, 1000],
/// 1.1% > 1000 (paper §IV).
int pfam_like_size(Pcg32& rng) {
  double u = rng.uniform();
  if (u < 0.845) return 30 + static_cast<int>(rng.below(371));
  if (u < 0.989) return 401 + static_cast<int>(rng.below(600));
  return 1001 + static_cast<int>(rng.below(1405));
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t n_families = argc > 1 ? std::atoll(argv[1]) : 12;
  std::size_t n_sequences = argc > 2 ? std::atoll(argv[2]) : 1200;

  Pcg32 rng(2718);
  std::vector<hmm::Plan7Hmm> families;
  for (std::size_t f = 0; f < n_families; ++f) {
    hmm::RandomHmmSpec spec;
    spec.length = pfam_like_size(rng);
    spec.seed = 1000 + f;
    auto m = hmm::generate_hmm(spec);
    m.set_name("FAM" + std::to_string(f));
    families.push_back(std::move(m));
  }

  // Database with homologs of the first three families planted.
  pipeline::WorkloadSpec wspec;
  wspec.db.n_sequences = n_sequences;
  wspec.homolog_fraction = 0.0;
  auto db = pipeline::make_workload(families[0], wspec);
  Pcg32 plant_rng(31);
  for (std::size_t f = 0; f < 3 && f < families.size(); ++f) {
    for (int i = 0; i < 8; ++i) {
      auto hom = hmm::sample_homolog(
          families[f], plant_rng, {},
          families[f].name() + "_member" + std::to_string(i));
      db.replace(plant_rng.below(static_cast<std::uint32_t>(db.size())), hom);
    }
  }

  std::printf("mini-Pfam scan: %zu families vs %zu sequences\n\n",
              families.size(), db.size());
  std::printf("%-8s %6s %9s %8s %6s %9s %s\n", "family", "M", "msv-pass",
              "hits", "occ%", "placement", "expected");

  auto k40 = simt::DeviceSpec::tesla_k40();
  pipeline::MultiSearch multi(families);
  auto results = multi.run_cpu(db);
  for (std::size_t f = 0; f < results.size(); ++f) {
    const auto& r = results[f];
    auto choice = gpu::choose_placement(gpu::Stage::kMsv, r.model_length, k40);
    std::printf("%-8s %6d %8.1f%% %8zu %5.0f%% %9s %s\n",
                r.model_name.c_str(), r.model_length,
                100.0 * r.result.msv.pass_rate(), r.result.hits.size(),
                100.0 * choice.plan.occ.fraction,
                placement_name(choice.placement),
                f < 3 ? "(8 members planted)" : "");
  }
  std::printf(
      "\nFamilies 0-2 should report hits; the rest are decoys.  Large\n"
      "families flip to the global-memory configuration, as in Fig. 9.\n");
  return 0;
}
