// Quickstart: the whole library in ~60 lines.
//
//   1. build a profile HMM (here: a synthetic Pfam-like model),
//   2. make a target database (random background + planted homologs),
//   3. run the calibrated hmmsearch pipeline on the CPU and on the
//      simulated GPU, and
//   4. print the hits with E-values.
//
// Run:  ./build/examples/quickstart
#include <cstdio>

#include "bio/packing.hpp"
#include "hmm/generator.hpp"
#include "pipeline/pipeline.hpp"
#include "pipeline/workload.hpp"

using namespace finehmm;

int main() {
  // 1. A 120-position query motif.
  auto model = hmm::paper_model(120);
  std::printf("query model: %s (M=%d)\n", model.name().c_str(),
              model.length());

  // 2. 2000 background sequences with 1% planted homologs.
  pipeline::WorkloadSpec spec;
  spec.db.name = "demo";
  spec.db.n_sequences = 2000;
  spec.homolog_fraction = 0.01;
  auto db = pipeline::make_workload(model, spec);
  std::printf("database: %zu sequences, %llu residues\n", db.size(),
              static_cast<unsigned long long>(db.total_residues()));

  // 3. Calibrate and search (CPU pipeline).
  pipeline::HmmSearch search(model);
  auto result = search.run_cpu(db);
  std::printf("\nMSV kept %zu/%zu (%.1f%%), P7Viterbi kept %zu, "
              "Forward reported %zu hits\n",
              result.msv.n_passed, result.msv.n_in,
              100.0 * result.msv.pass_rate(), result.vit.n_passed,
              result.hits.size());

  // ... and the same search through the simulated GPU kernels.
  bio::PackedDatabase packed(db);
  auto gpu_result = search.run_gpu(simt::DeviceSpec::tesla_k40(), db, packed,
                                   gpu::ParamPlacement::kShared);
  std::printf("GPU engine agrees: %zu hits (filters are bit-identical)\n",
              gpu_result.hits.size());

  // 4. Top hits.
  std::printf("\n%-20s %12s %12s %10s\n", "sequence", "vit bits", "fwd bits",
              "E-value");
  std::size_t shown = 0;
  for (const auto& hit : result.hits) {
    std::printf("%-20s %12.1f %12.1f %10.2e\n", hit.name.c_str(),
                hit.vit_bits, hit.fwd_bits, hit.evalue);
    if (++shown == 10) break;
  }
  if (result.hits.size() > shown)
    std::printf("... and %zu more\n", result.hits.size() - shown);
  return 0;
}
