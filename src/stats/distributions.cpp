#include "stats/distributions.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace finehmm::stats {

double Gumbel::pdf(double x) const {
  double y = lambda * (x - mu);
  return lambda * std::exp(-y - std::exp(-y));
}

double Gumbel::cdf(double x) const {
  double y = lambda * (x - mu);
  return std::exp(-std::exp(-y));
}

double Gumbel::surv(double x) const {
  double y = lambda * (x - mu);
  double ey = std::exp(-y);
  // For small ey, 1 - exp(-ey) ~ ey: use expm1 for accuracy in the tail
  // that actually matters for E-values.
  return -std::expm1(-ey);
}

double Gumbel::sample(Pcg32& rng) const {
  double u = rng.uniform();
  while (u <= 0.0) u = rng.uniform();
  return mu - std::log(-std::log(u)) / lambda;
}

Gumbel Gumbel::fit_mu_given_lambda(const std::vector<double>& scores,
                                   double lambda) {
  FH_REQUIRE(!scores.empty(), "cannot fit an empty sample");
  // Numerically stable log-mean-exp.
  double hi = *std::max_element(scores.begin(), scores.end());
  // exp(-lambda x) is largest for the *smallest* x.
  double lo = *std::min_element(scores.begin(), scores.end());
  (void)hi;
  double acc = 0.0;
  for (double x : scores) acc += std::exp(-lambda * (x - lo));
  double log_mean = -lambda * lo + std::log(acc / scores.size());
  Gumbel g;
  g.lambda = lambda;
  g.mu = -log_mean / lambda;
  return g;
}

Gumbel Gumbel::fit_ml(const std::vector<double>& scores) {
  FH_REQUIRE(scores.size() >= 2, "need >= 2 samples for a full ML fit");
  const std::size_t n = scores.size();
  double mean = 0.0;
  for (double x : scores) mean += x;
  mean /= static_cast<double>(n);

  // Newton-Raphson on the Lawless profile-likelihood equation for lambda.
  double lam = 1.0;
  for (int iter = 0; iter < 100; ++iter) {
    double s0 = 0.0, s1 = 0.0, s2 = 0.0;
    for (double x : scores) {
      double e = std::exp(-lam * x);
      s0 += e;
      s1 += x * e;
      s2 += x * x * e;
    }
    double f = 1.0 / lam - mean + s1 / s0;
    double df = -1.0 / (lam * lam) + (s1 * s1 - s2 * s0) / (s0 * s0);
    double step = f / df;
    lam -= step;
    if (lam <= 0.0) lam = 1e-3;
    if (std::fabs(step) < 1e-10) break;
  }
  double s0 = 0.0;
  for (double x : scores) s0 += std::exp(-lam * x);
  Gumbel g;
  g.lambda = lam;
  g.mu = -std::log(s0 / static_cast<double>(n)) / lam;
  return g;
}

double ExponentialTail::surv(double x) const {
  if (x < mu) return 1.0;
  return std::exp(-lambda * (x - mu));
}

ExponentialTail ExponentialTail::fit_tail(std::vector<double> scores,
                                          double tail_mass, double lambda) {
  FH_REQUIRE(!scores.empty(), "cannot fit an empty sample");
  FH_REQUIRE(tail_mass > 0.0 && tail_mass <= 1.0, "bad tail mass");
  std::sort(scores.begin(), scores.end());
  // The tail base sits at the (1 - tail_mass) quantile; beyond it the
  // survival function is exp(-lambda (x - base)) scaled by tail_mass:
  // fold the mass into an effective location parameter.
  std::size_t idx = static_cast<std::size_t>(
      std::floor((1.0 - tail_mass) * static_cast<double>(scores.size())));
  if (idx >= scores.size()) idx = scores.size() - 1;
  double base = scores[idx];
  ExponentialTail t;
  t.lambda = lambda;
  // P(X > x) = tail_mass * exp(-lambda (x - base))
  //          = exp(-lambda (x - (base + log(tail_mass)/lambda))).
  t.mu = base + std::log(tail_mass) / lambda;
  return t;
}

}  // namespace finehmm::stats
