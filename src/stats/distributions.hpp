// Score distributions for statistical significance (paper §I).
//
// Eddy (2008) showed that optimal-alignment (Viterbi/MSV) scores of random
// sequences follow a Gumbel distribution with slope lambda = log 2, and
// Forward scores' high tail is exponential with the same lambda.  HMMER 3.0
// fixes lambda and calibrates only the location parameter by simulation;
// we implement both the fixed-lambda fits used in production and full
// maximum-likelihood fits used by tests.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace finehmm::stats {

/// lambda = log 2: scores are in bits.
inline constexpr double kLambdaLog2 = 0.69314718055994529;

/// Type-1 extreme value (Gumbel) distribution.
struct Gumbel {
  double mu = 0.0;
  double lambda = kLambdaLog2;

  double pdf(double x) const;
  double cdf(double x) const;
  /// Survival P(X > x), computed accurately in both tails.
  double surv(double x) const;
  double sample(Pcg32& rng) const;

  /// ML fit of mu with lambda held fixed (HMMER's calibration step):
  ///   mu = -(1/lambda) * log( mean( exp(-lambda * x_i) ) ).
  static Gumbel fit_mu_given_lambda(const std::vector<double>& scores,
                                    double lambda = kLambdaLog2);

  /// Full ML fit of (mu, lambda) via the Lawless (1982) iteration.
  static Gumbel fit_ml(const std::vector<double>& scores);
};

/// Exponential tail: P(X > x) = exp(-lambda (x - mu)) for x >= mu.
struct ExponentialTail {
  double mu = 0.0;
  double lambda = kLambdaLog2;

  double surv(double x) const;

  /// Fit the location so that the empirical tail of mass `tail_mass`
  /// matches an exponential with the given fixed lambda (HMMER's Forward
  /// calibration).
  static ExponentialTail fit_tail(std::vector<double> scores,
                                  double tail_mass = 0.04,
                                  double lambda = kLambdaLog2);
};

/// E-value = P-value * database size.
inline double evalue(double pvalue, std::size_t db_size) {
  return pvalue * static_cast<double>(db_size);
}

/// E-value against an externally supplied effective database size: when
/// `z_override` is nonzero it replaces `db_size` as the Z multiplier.
/// A cluster shard scoring 1/Nth of the database passes the cluster
/// total here, so shard E-values are bit-identical to the unsharded
/// scan's — both are the same single multiply (docs/cluster.md).
inline double evalue(double pvalue, std::size_t db_size,
                     std::uint64_t z_override) {
  return evalue(pvalue, z_override != 0
                            ? static_cast<std::size_t>(z_override)
                            : db_size);
}

/// Kolmogorov-Smirnov goodness of fit (one-sample, fully specified null).
struct KsResult {
  double d = 0.0;       // sup |F_empirical - F_theoretical|
  double pvalue = 1.0;  // asymptotic Kolmogorov distribution
};

/// KS test of `sorted_or_not` scores against a CDF functor.
template <class Cdf>
KsResult ks_test(std::vector<double> xs, Cdf cdf) {
  KsResult r;
  if (xs.empty()) return r;
  std::sort(xs.begin(), xs.end());
  const double n = static_cast<double>(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    double f = cdf(xs[i]);
    double lo = static_cast<double>(i) / n;
    double hi = static_cast<double>(i + 1) / n;
    r.d = std::max(r.d, std::max(f - lo, hi - f));
  }
  // Asymptotic Kolmogorov survival: Q(t) = 2 sum_{k>=1} (-1)^{k-1} e^{-2k^2t^2}.
  double t = (std::sqrt(n) + 0.12 + 0.11 / std::sqrt(n)) * r.d;
  double q = 0.0;
  for (int k = 1; k <= 100; ++k) {
    double term = 2.0 * std::pow(-1.0, k - 1) * std::exp(-2.0 * k * k * t * t);
    q += term;
    if (std::fabs(term) < 1e-12) break;
  }
  r.pvalue = std::min(1.0, std::max(0.0, q));
  return r;
}

}  // namespace finehmm::stats
