#include "stats/calibrate.hpp"

#include "bio/synthetic.hpp"
#include "cpu/generic.hpp"
#include "cpu/msv_filter.hpp"
#include "cpu/ssv.hpp"
#include "cpu/vit_filter.hpp"
#include "util/error.hpp"

namespace finehmm::stats {

ModelStats calibrate(const hmm::SearchProfile& prof,
                     const profile::MsvProfile& msv,
                     const profile::VitProfile& vit,
                     const CalibrateOptions& opts) {
  FH_REQUIRE(opts.n_samples >= 10, "need at least 10 calibration samples");
  FH_REQUIRE(opts.sample_length >= 10, "calibration length too short");
  Pcg32 rng(opts.seed);
  const int L = opts.sample_length;

  std::vector<double> ssv_bits, msv_bits, vit_bits, fwd_bits;
  ssv_bits.reserve(opts.n_samples);
  msv_bits.reserve(opts.n_samples);
  vit_bits.reserve(opts.n_samples);
  if (opts.with_forward) fwd_bits.reserve(opts.n_samples);

  cpu::MsvFilter msv_filter(msv);
  cpu::VitFilter vit_filter(vit);

  for (int i = 0; i < opts.n_samples; ++i) {
    auto seq = bio::random_sequence(L, rng);
    auto m = msv_filter.score(seq.codes.data(), L);
    // Random sequences should never overflow the byte filter; if one does,
    // cap at the overflow ceiling rather than +inf to keep the fit finite.
    double mb = m.overflowed
                    ? hmm::nats_to_bits(
                          (255.0f - msv.bias() - msv.base()) / msv.scale(), L)
                    : hmm::nats_to_bits(m.score_nats, L);
    msv_bits.push_back(mb);

    auto sv = cpu::ssv_striped(msv, seq.codes.data(), L);
    double sb = sv.overflowed
                    ? hmm::nats_to_bits(
                          (255.0f - msv.bias() - msv.base()) / msv.scale(), L)
                    : hmm::nats_to_bits(sv.score_nats, L);
    ssv_bits.push_back(sb);

    auto v = vit_filter.score(seq.codes.data(), L);
    vit_bits.push_back(hmm::nats_to_bits(v.score_nats, L));

    if (opts.with_forward) {
      float f = cpu::generic_forward(prof, seq.codes.data(), L);
      fwd_bits.push_back(hmm::nats_to_bits(f, L));
    }
  }

  ModelStats out;
  out.ssv = Gumbel::fit_mu_given_lambda(ssv_bits);
  out.msv = Gumbel::fit_mu_given_lambda(msv_bits);
  out.vit = Gumbel::fit_mu_given_lambda(vit_bits);
  if (opts.with_forward)
    out.fwd = ExponentialTail::fit_tail(fwd_bits, opts.fwd_tail_mass);
  return out;
}

}  // namespace finehmm::stats
