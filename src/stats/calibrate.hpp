// Per-model statistical calibration, HMMER-style.
//
// hmmbuild calibrates each profile by scoring a few hundred random
// sequences and fitting the location parameter of the null score
// distribution with lambda fixed at log 2.  The resulting (mu, tau)
// let the pipeline convert any filter score into a P-value.
#pragma once

#include "hmm/profile.hpp"
#include "profile/msv_profile.hpp"
#include "profile/vit_profile.hpp"
#include "stats/distributions.hpp"

namespace finehmm::stats {

/// Calibrated null statistics for one profile.
struct ModelStats {
  Gumbel ssv;           // SSV bit scores of random sequences (extension)
  Gumbel msv;           // MSV bit scores of random sequences
  Gumbel vit;           // ViterbiFilter bit scores
  ExponentialTail fwd;  // Forward bit score tail

  double ssv_pvalue(double bits) const { return ssv.surv(bits); }
  double msv_pvalue(double bits) const { return msv.surv(bits); }
  double vit_pvalue(double bits) const { return vit.surv(bits); }
  double fwd_pvalue(double bits) const { return fwd.surv(bits); }
};

struct CalibrateOptions {
  int n_samples = 200;     // HMMER default
  int sample_length = 100; // HMMER default
  std::uint64_t seed = 0x5eed;
  double fwd_tail_mass = 0.04;
  /// Skip the Forward calibration (it is the slow part; the filter-only
  /// benchmarks don't need it).
  bool with_forward = true;
};

/// Score random background sequences through all three engines and fit.
ModelStats calibrate(const hmm::SearchProfile& prof,
                     const profile::MsvProfile& msv,
                     const profile::VitProfile& vit,
                     const CalibrateOptions& opts = {});

}  // namespace finehmm::stats
