// GPU device models.
//
// The paper evaluates on a Kepler Tesla K40 (single-GPU results, Figs. 9
// and 10) and four Fermi GTX 580s (Fig. 11).  These specs drive the
// occupancy calculator and the analytic performance model; the functional
// simulator itself is architecture-independent except for warp shuffle,
// which Fermi lacks (its reductions fall back to shared memory, costing
// extra shared-memory traffic and occupancy, exactly as §IV-A describes).
#pragma once

#include <cstddef>
#include <string>

namespace finehmm::simt {

inline constexpr int kWarpSize = 32;
inline constexpr int kSharedMemBanks = 32;
inline constexpr int kBankWidthBytes = 4;

enum class Arch { kFermi, kKepler };

struct DeviceSpec {
  std::string name;
  Arch arch = Arch::kKepler;

  int sm_count = 0;
  int max_threads_per_sm = 0;
  int max_warps_per_sm = 0;
  int max_blocks_per_sm = 0;
  int registers_per_sm = 0;        // 32-bit registers
  int max_registers_per_thread = 0;
  int reg_alloc_granularity = 256;  // registers, per warp
  std::size_t shared_mem_per_sm = 0;
  std::size_t shared_mem_per_block = 0;
  std::size_t smem_alloc_granularity = 256;
  double clock_ghz = 0.0;           // shader clock
  int cores_per_sm = 0;
  double mem_bandwidth_gbs = 0.0;   // GB/s
  bool has_warp_shuffle = false;

  /// Peak warp-instructions issued per SM per cycle (ALU width / 32).
  double issue_width() const {
    return static_cast<double>(cores_per_sm) / kWarpSize;
  }

  /// NVIDIA Tesla K40 (GK110B), the paper's single-GPU platform.
  static DeviceSpec tesla_k40();
  /// NVIDIA GTX 580 (GF110), the paper's multi-GPU platform.
  static DeviceSpec gtx580();
  /// NVIDIA GTX 980 (Maxwell GM204) — released after the paper; used to
  /// project how the acceleration strategy ports forward (more shared
  /// memory per SM, higher occupancy ceilings).
  static DeviceSpec gtx980();
  /// The paper's CPU baseline: quad-core Intel i5 @ 3.4 GHz with SSE.
  struct CpuBaseline {
    int cores = 4;
    double clock_ghz = 3.4;
  };
  static CpuBaseline baseline_cpu() { return CpuBaseline{}; }
};

}  // namespace finehmm::simt
