// Per-block shared memory with bank-conflict accounting.
//
// Shared memory has 32 banks of 4-byte words; a warp-wide access that
// touches multiple distinct words in the same bank is replayed once per
// extra word.  The paper's "intrinsic conflict-free access" stores one
// byte per DP cell so that each group of four lanes reads one word from
// one bank — the accounting here lets the benches demonstrate exactly
// that (1 cycle per warp access instead of up to 32).
#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

#include "simt/counters.hpp"
#include "simt/device.hpp"
#include "util/error.hpp"

namespace finehmm::simt {

class SharedMemory {
 public:
  SharedMemory(std::size_t bytes, PerfCounters& counters)
      : bytes_(bytes, 0), counters_(&counters) {}

  std::size_t size() const noexcept { return bytes_.size(); }

  void clear() { std::fill(bytes_.begin(), bytes_.end(), 0); }

  /// Raw (un-counted) typed access used by the warp-wide helpers below.
  template <class T>
  T read_raw(std::size_t byte_addr) const {
    FH_ASSERT(byte_addr + sizeof(T) <= bytes_.size());
    T v;
    std::memcpy(&v, bytes_.data() + byte_addr, sizeof(T));
    return v;
  }
  template <class T>
  void write_raw(std::size_t byte_addr, T v) {
    FH_ASSERT(byte_addr + sizeof(T) <= bytes_.size());
    std::memcpy(bytes_.data() + byte_addr, &v, sizeof(T));
  }

  /// Account one warp-wide access at the given per-lane byte addresses
  /// (active lanes only).  Returns the number of cycles (1 = conflict
  /// free; >1 = replays).
  int account_access(const std::size_t* addrs, int n_lanes) {
    // cycles = max over banks of the number of distinct words accessed in
    // that bank; lanes hitting the same word broadcast for free.
    std::uint64_t words[kWarpSize];
    int n_words = 0;
    for (int i = 0; i < n_lanes; ++i) {
      std::uint64_t w = addrs[i] / kBankWidthBytes;
      bool seen = false;
      for (int j = 0; j < n_words; ++j)
        if (words[j] == w) {
          seen = true;
          break;
        }
      if (!seen) words[n_words++] = w;
    }
    int per_bank[kSharedMemBanks] = {0};
    int cycles = 1;
    for (int j = 0; j < n_words; ++j) {
      int b = static_cast<int>(words[j] % kSharedMemBanks);
      ++per_bank[b];
      if (per_bank[b] > cycles) cycles = per_bank[b];
    }
    counters_->smem_accesses += 1;
    counters_->smem_cycles += static_cast<std::uint64_t>(cycles);
    return cycles;
  }

 private:
  std::vector<std::uint8_t> bytes_;
  PerfCounters* counters_;
};

}  // namespace finehmm::simt
