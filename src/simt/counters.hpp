// Performance counters collected by the functional SIMT simulator.
//
// Every warp-wide operation the kernels perform is counted here; the
// perf:: cost model converts counters plus device specs and occupancy into
// estimated kernel time.  Counters are the honest part of the timing
// pipeline: they come from actually executing the kernels.
#pragma once

#include <cstdint>

namespace finehmm::simt {

struct PerfCounters {
  // One unit = one warp-wide instruction.
  std::uint64_t alu = 0;           // arithmetic / logic / register moves
  std::uint64_t shuffles = 0;      // __shfl_* ops (Kepler)
  std::uint64_t votes = 0;         // __all / __any
  std::uint64_t syncs = 0;         // __syncthreads (ablation kernel only)

  std::uint64_t smem_accesses = 0; // warp-wide shared-memory requests
  std::uint64_t smem_cycles = 0;   // >= accesses; extra = bank-conflict replays

  std::uint64_t gmem_transactions = 0;  // streaming global transactions (DRAM)
  std::uint64_t gmem_bytes = 0;         // total bytes moved from DRAM
  std::uint64_t gmem_cached_tx = 0;     // L2/texture-cached transactions
                                        // (model parameters under the
                                        // global-memory configuration)

  std::uint64_t lazyf_outer = 0;   // Lazy-F wrap passes executed
  std::uint64_t lazyf_inner = 0;   // Lazy-F 32-position vote iterations

  std::uint64_t sequences = 0;     // items processed
  std::uint64_t residues = 0;      // DP rows processed
  std::uint64_t cells = 0;         // DP cells (residues x model length)

  void merge(const PerfCounters& o) {
    alu += o.alu;
    shuffles += o.shuffles;
    votes += o.votes;
    syncs += o.syncs;
    smem_accesses += o.smem_accesses;
    smem_cycles += o.smem_cycles;
    gmem_transactions += o.gmem_transactions;
    gmem_bytes += o.gmem_bytes;
    gmem_cached_tx += o.gmem_cached_tx;
    lazyf_outer += o.lazyf_outer;
    lazyf_inner += o.lazyf_inner;
    sequences += o.sequences;
    residues += o.residues;
    cells += o.cells;
  }

  /// Total issue slots consumed on the compute pipelines.
  std::uint64_t issue_ops() const {
    return alu + shuffles + votes + smem_cycles;
  }
};

}  // namespace finehmm::simt
