#include "simt/grid.hpp"

#include "util/error.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"
#include "util/threadpool.hpp"

namespace finehmm::simt {

PerfCounters launch_grid(const DeviceSpec& dev, const LaunchConfig& cfg,
                         std::size_t n_items, const WarpKernel& kernel,
                         const BlockPrologue& prologue) {
  FH_REQUIRE(cfg.warps_per_block >= 1, "need at least one warp per block");
  FH_REQUIRE(cfg.grid_blocks >= 1, "need at least one block");
  FH_REQUIRE(cfg.smem_bytes_per_block <= dev.shared_mem_per_block,
             "launch exceeds shared memory per block");

  WorkQueue queue(0, n_items);
  PerfCounters total;
  Mutex merge_mutex;  // guards total (locals can't carry GUARDED_BY)

  // Shared pool across launches would be nicer; a per-launch pool keeps the
  // API free of global state and costs microseconds.
  ThreadPool pool;

  auto run_block = [&](std::size_t /*block_id*/) {
    PerfCounters block_counters;
    SharedMemory smem(cfg.smem_bytes_per_block, block_counters);
    if (prologue) {
      WarpContext ctx(dev, block_counters, smem, 0, cfg.warps_per_block);
      prologue(ctx);
    }
    // Warps of the block take turns draining the queue.  Executing them
    // sequentially is a valid lockstep interleaving because warps share no
    // mutable state except the queue.
    for (int w = 0; w < cfg.warps_per_block; ++w) {
      WarpContext ctx(dev, block_counters, smem, w, cfg.warps_per_block);
      for (;;) {
        std::size_t item = queue.fetch();
        if (item == WorkQueue::npos) break;
        kernel(ctx, item);
        block_counters.sequences += 1;
      }
    }
    MutexLock lock(merge_mutex);
    total.merge(block_counters);
  };

  pool.parallel_for(static_cast<std::size_t>(cfg.grid_blocks), run_block);
  return total;
}

}  // namespace finehmm::simt
