// CUDA occupancy calculation.
//
// Occupancy — resident warps per SM over the architectural maximum — is
// the variable the paper's Figure 9 tracks against speedup ("the speedup
// obtained bears a strong correlation to the occupancy").  We implement
// the standard CUDA occupancy rules: a block's residency is limited by
// warp slots, block slots, register file and shared memory, whichever
// binds first.
#pragma once

#include <cstddef>

#include "simt/device.hpp"

namespace finehmm::simt {

/// Static resource usage of one kernel launch configuration.
struct KernelResources {
  int regs_per_thread = 32;
  std::size_t smem_per_block = 0;
  int threads_per_block = 128;  // warps_per_block * 32
};

struct Occupancy {
  enum class Limiter { kWarpSlots, kBlockSlots, kRegisters, kSharedMem };

  int blocks_per_sm = 0;
  int warps_per_sm = 0;
  double fraction = 0.0;  // warps_per_sm / max_warps_per_sm
  Limiter limiter = Limiter::kWarpSlots;

  const char* limiter_name() const {
    switch (limiter) {
      case Limiter::kWarpSlots: return "warp-slots";
      case Limiter::kBlockSlots: return "block-slots";
      case Limiter::kRegisters: return "registers";
      case Limiter::kSharedMem: return "shared-memory";
    }
    return "?";
  }
};

/// Compute the occupancy of `res` on `dev`.  Returns zero occupancy when
/// the block cannot run at all (e.g. shared memory per block exceeded).
Occupancy compute_occupancy(const DeviceSpec& dev, const KernelResources& res);

}  // namespace finehmm::simt
