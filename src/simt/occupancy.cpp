#include "simt/occupancy.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace finehmm::simt {

namespace {

std::size_t ceil_to(std::size_t v, std::size_t g) {
  return (v + g - 1) / g * g;
}

}  // namespace

Occupancy compute_occupancy(const DeviceSpec& dev, const KernelResources& res) {
  FH_REQUIRE(res.threads_per_block > 0 &&
                 res.threads_per_block % kWarpSize == 0,
             "threads per block must be a positive multiple of the warp size");
  Occupancy occ;

  const int warps_per_block = res.threads_per_block / kWarpSize;

  // Infeasible launches: zero occupancy.
  if (res.smem_per_block > dev.shared_mem_per_block ||
      res.regs_per_thread > dev.max_registers_per_thread ||
      warps_per_block > dev.max_warps_per_sm) {
    occ.limiter = res.smem_per_block > dev.shared_mem_per_block
                      ? Occupancy::Limiter::kSharedMem
                      : Occupancy::Limiter::kRegisters;
    return occ;
  }

  // 1. Warp-slot limit.
  int by_warps = dev.max_warps_per_sm / warps_per_block;
  // 2. Block-slot limit.
  int by_blocks = dev.max_blocks_per_sm;
  // 3. Register file: registers are allocated per warp with a granularity.
  std::size_t regs_per_warp = ceil_to(
      static_cast<std::size_t>(res.regs_per_thread) * kWarpSize,
      static_cast<std::size_t>(dev.reg_alloc_granularity));
  std::size_t regs_per_block =
      regs_per_warp * static_cast<std::size_t>(warps_per_block);
  int by_regs = static_cast<int>(
      static_cast<std::size_t>(dev.registers_per_sm) / regs_per_block);
  // 4. Shared memory, allocated with a granularity.
  int by_smem;
  if (res.smem_per_block == 0) {
    by_smem = dev.max_blocks_per_sm;
  } else {
    std::size_t alloc = ceil_to(res.smem_per_block, dev.smem_alloc_granularity);
    by_smem = static_cast<int>(dev.shared_mem_per_sm / alloc);
  }

  occ.blocks_per_sm = std::min(std::min(by_warps, by_blocks),
                               std::min(by_regs, by_smem));
  if (occ.blocks_per_sm <= 0) {
    occ.blocks_per_sm = 0;
    occ.warps_per_sm = 0;
    occ.fraction = 0.0;
    occ.limiter = by_regs <= 0 ? Occupancy::Limiter::kRegisters
                               : Occupancy::Limiter::kSharedMem;
    return occ;
  }

  if (occ.blocks_per_sm == by_warps)
    occ.limiter = Occupancy::Limiter::kWarpSlots;
  else if (occ.blocks_per_sm == by_regs)
    occ.limiter = Occupancy::Limiter::kRegisters;
  else if (occ.blocks_per_sm == by_smem)
    occ.limiter = Occupancy::Limiter::kSharedMem;
  else
    occ.limiter = Occupancy::Limiter::kBlockSlots;

  occ.warps_per_sm =
      std::min(occ.blocks_per_sm * warps_per_block, dev.max_warps_per_sm);
  occ.fraction = static_cast<double>(occ.warps_per_sm) /
                 static_cast<double>(dev.max_warps_per_sm);
  return occ;
}

}  // namespace finehmm::simt
