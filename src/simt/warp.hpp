// Warp-level SIMT execution primitives.
//
// The paper's kernels are *warp-synchronous by construction*: all 32 lanes
// of a warp execute in lockstep and never need __syncthreads().  We model
// that execution exactly: a WarpReg<T> is the warp's view of one register
// (32 lanes), and every warp-wide operation goes through the WarpContext,
// which (a) applies the operation to all lanes at once — lockstep
// semantics by definition — and (b) bills it to the performance counters.
//
// Fermi vs Kepler: Fermi has no warp shuffle, so shfl/reduce/vote fall
// back to staged shared-memory exchanges, exactly the portability cost
// §IV-A of the paper describes (more shared memory, more cycles).
#pragma once

#include <array>
#include <cstdint>

#include "simt/counters.hpp"
#include "simt/device.hpp"
#include "simt/shared_memory.hpp"

namespace finehmm::simt {

template <class T>
struct WarpReg {
  alignas(64) std::array<T, kWarpSize> lane;

  T& operator[](int i) { return lane[static_cast<std::size_t>(i)]; }
  const T& operator[](int i) const { return lane[static_cast<std::size_t>(i)]; }
};

/// Execution context of one warp within one thread block.
class WarpContext {
 public:
  WarpContext(const DeviceSpec& dev, PerfCounters& counters,
              SharedMemory& smem, int warp_slot, int warps_per_block)
      : dev_(&dev),
        counters_(&counters),
        smem_(&smem),
        warp_slot_(warp_slot),
        warps_per_block_(warps_per_block) {}

  const DeviceSpec& device() const noexcept { return *dev_; }
  PerfCounters& counters() noexcept { return *counters_; }
  SharedMemory& smem() noexcept { return *smem_; }
  int warp_slot() const noexcept { return warp_slot_; }
  int warps_per_block() const noexcept { return warps_per_block_; }
  bool has_shuffle() const noexcept { return dev_->has_warp_shuffle; }

  /// Bill n uniform (warp-wide scalar) ALU operations.
  void tick_alu(int n = 1) { counters_->alu += static_cast<std::uint64_t>(n); }

  // ---- register-file operations (1 warp instruction each) ----

  template <class T>
  WarpReg<T> splat(T v) {
    tick_alu();
    WarpReg<T> r;
    r.lane.fill(v);
    return r;
  }

  /// lane_id as a register (iota); free, like reading %laneid.
  WarpReg<int> lane_id() {
    WarpReg<int> r;
    for (int i = 0; i < kWarpSize; ++i) r[i] = i;
    return r;
  }

  WarpReg<std::uint8_t> max_u8(const WarpReg<std::uint8_t>& a,
                               const WarpReg<std::uint8_t>& b) {
    tick_alu();
    WarpReg<std::uint8_t> r;
    for (int i = 0; i < kWarpSize; ++i) r[i] = a[i] > b[i] ? a[i] : b[i];
    return r;
  }
  WarpReg<std::uint8_t> adds_u8(const WarpReg<std::uint8_t>& a,
                                const WarpReg<std::uint8_t>& b) {
    tick_alu();
    WarpReg<std::uint8_t> r;
    for (int i = 0; i < kWarpSize; ++i) {
      unsigned s = unsigned(a[i]) + unsigned(b[i]);
      r[i] = s > 255u ? 255u : static_cast<std::uint8_t>(s);
    }
    return r;
  }
  WarpReg<std::uint8_t> subs_u8(const WarpReg<std::uint8_t>& a,
                                const WarpReg<std::uint8_t>& b) {
    tick_alu();
    WarpReg<std::uint8_t> r;
    for (int i = 0; i < kWarpSize; ++i)
      r[i] = a[i] > b[i] ? static_cast<std::uint8_t>(a[i] - b[i]) : 0;
    return r;
  }

  WarpReg<std::int16_t> max_w(const WarpReg<std::int16_t>& a,
                              const WarpReg<std::int16_t>& b) {
    tick_alu();
    WarpReg<std::int16_t> r;
    for (int i = 0; i < kWarpSize; ++i) r[i] = a[i] > b[i] ? a[i] : b[i];
    return r;
  }
  /// Saturating word add with the library's sticky -inf floor.
  WarpReg<std::int16_t> adds_w(const WarpReg<std::int16_t>& a,
                               const WarpReg<std::int16_t>& b) {
    tick_alu();
    WarpReg<std::int16_t> r;
    for (int i = 0; i < kWarpSize; ++i) {
      if (a[i] == std::int16_t(-32768) || b[i] == std::int16_t(-32768)) {
        r[i] = -32768;
      } else {
        int v = int(a[i]) + int(b[i]);
        r[i] = v < -32767 ? -32767 : (v > 32767 ? 32767 : std::int16_t(v));
      }
    }
    return r;
  }

  WarpReg<int> add_i32(const WarpReg<int>& a, const WarpReg<int>& b) {
    tick_alu();
    WarpReg<int> r;
    for (int i = 0; i < kWarpSize; ++i) r[i] = a[i] + b[i];
    return r;
  }
  WarpReg<int> max_i32(const WarpReg<int>& a, const WarpReg<int>& b) {
    tick_alu();
    WarpReg<int> r;
    for (int i = 0; i < kWarpSize; ++i) r[i] = a[i] > b[i] ? a[i] : b[i];
    return r;
  }

  /// Kogge-Stone inclusive scans (log2(32) = 5 shuffle+op steps), the
  /// building block of the paper's future-work prefix-sum D-chain
  /// evaluation (§VI).
  WarpReg<int> scan_add_i32(const WarpReg<int>& a) {
    WarpReg<int> v = a;
    for (int d = 1; d < kWarpSize; d <<= 1)
      v = add_i32(v, shfl_up(v, d, 0));
    return v;
  }
  WarpReg<int> scan_max_i32(const WarpReg<int>& a, int identity) {
    WarpReg<int> v = a;
    for (int d = 1; d < kWarpSize; d <<= 1)
      v = max_i32(v, shfl_up(v, d, identity));
    return v;
  }

  /// Per-lane select: mask ? a : b.
  template <class T>
  WarpReg<T> select(const WarpReg<bool>& mask, const WarpReg<T>& a,
                    const WarpReg<T>& b) {
    tick_alu();
    WarpReg<T> r;
    for (int i = 0; i < kWarpSize; ++i) r[i] = mask[i] ? a[i] : b[i];
    return r;
  }

  /// Per-lane comparison a > b.
  template <class T>
  WarpReg<bool> gt(const WarpReg<T>& a, const WarpReg<T>& b) {
    tick_alu();
    WarpReg<bool> r;
    for (int i = 0; i < kWarpSize; ++i) r[i] = a[i] > b[i];
    return r;
  }

  // ---- warp shuffle / vote ----

  /// __shfl_up(reg, delta): lane i reads lane i-delta; lanes < delta get
  /// `fill`.  On Fermi this is emulated with a shared-memory bounce.
  template <class T>
  WarpReg<T> shfl_up(const WarpReg<T>& a, int delta, T fill) {
    bill_shuffle();
    WarpReg<T> r;
    for (int i = 0; i < kWarpSize; ++i)
      r[i] = i >= delta ? a[i - delta] : fill;
    return r;
  }

  /// Broadcast one lane's value to the whole warp.
  template <class T>
  T broadcast(const WarpReg<T>& a, int src_lane) {
    bill_shuffle();
    return a[src_lane];
  }

  /// Butterfly (XOR) max-reduction with automatic broadcast of the result
  /// to every lane — the paper's warp-shuffled reduction.  log2(32) = 5
  /// shuffle+max steps on Kepler; a shared-memory tree on Fermi.
  template <class T>
  T reduce_max(const WarpReg<T>& a) {
    WarpReg<T> v = a;
    for (int step = 1; step < kWarpSize; step <<= 1) {
      bill_shuffle();
      tick_alu();  // the max
      WarpReg<T> x;
      for (int i = 0; i < kWarpSize; ++i) x[i] = v[i ^ step];
      for (int i = 0; i < kWarpSize; ++i)
        if (x[i] > v[i]) v[i] = x[i];
    }
    return v[0];
  }

  /// __all(pred): true if the predicate holds on every lane.
  bool vote_all(const WarpReg<bool>& pred) {
    counters_->votes += 1;
    for (int i = 0; i < kWarpSize; ++i)
      if (!pred[i]) return false;
    return true;
  }
  bool vote_any(const WarpReg<bool>& pred) {
    counters_->votes += 1;
    for (int i = 0; i < kWarpSize; ++i)
      if (pred[i]) return true;
    return false;
  }

  // ---- shared memory (per-block), warp-wide accesses ----

  /// Read lanes-consecutive elements smem[base + (start+lane)*sizeof(T)].
  template <class T>
  WarpReg<T> smem_read_seq(std::size_t base_byte, int start_elem) {
    std::size_t addrs[kWarpSize];
    WarpReg<T> r;
    for (int i = 0; i < kWarpSize; ++i) {
      std::size_t a = base_byte + (static_cast<std::size_t>(start_elem) + i) *
                                      sizeof(T);
      addrs[i] = a;
      r[i] = smem_->template read_raw<T>(a);
    }
    smem_->account_access(addrs, kWarpSize);
    return r;
  }

  template <class T>
  void smem_write_seq(std::size_t base_byte, int start_elem,
                      const WarpReg<T>& v) {
    std::size_t addrs[kWarpSize];
    for (int i = 0; i < kWarpSize; ++i) {
      std::size_t a = base_byte + (static_cast<std::size_t>(start_elem) + i) *
                                      sizeof(T);
      addrs[i] = a;
      smem_->template write_raw<T>(a, v[i]);
    }
    smem_->account_access(addrs, kWarpSize);
  }

  /// Strided read: smem[base + (start + lane*stride)*sizeof(T)] — used by
  /// tests to demonstrate bank conflicts.
  template <class T>
  WarpReg<T> smem_read_strided(std::size_t base_byte, int start_elem,
                               int stride) {
    std::size_t addrs[kWarpSize];
    WarpReg<T> r;
    for (int i = 0; i < kWarpSize; ++i) {
      std::size_t a =
          base_byte +
          (static_cast<std::size_t>(start_elem) + std::size_t(i) * stride) *
              sizeof(T);
      addrs[i] = a;
      r[i] = smem_->template read_raw<T>(a);
    }
    smem_->account_access(addrs, kWarpSize);
    return r;
  }

  /// Uniform scalar read/write (one lane's worth; still one access).
  template <class T>
  T smem_read_scalar(std::size_t byte_addr) {
    std::size_t a = byte_addr;
    smem_->account_access(&a, 1);
    return smem_->template read_raw<T>(byte_addr);
  }
  template <class T>
  void smem_write_scalar(std::size_t byte_addr, T v) {
    std::size_t a = byte_addr;
    smem_->account_access(&a, 1);
    smem_->template write_raw<T>(byte_addr, v);
  }

  // ---- global memory ----

  /// Warp-coalesced read of `lanes` consecutive elements of type T from
  /// host memory standing in for device-global memory.  Bills ceil(bytes /
  /// 32B) transactions at 32-byte granularity.
  template <class T>
  WarpReg<T> gmem_read_seq(const T* p, int start_elem, int active_lanes) {
    WarpReg<T> r{};
    for (int i = 0; i < active_lanes; ++i) r[i] = p[start_elem + i];
    bill_gmem(static_cast<std::size_t>(active_lanes) * sizeof(T));
    return r;
  }

  /// Uniform scalar load (e.g. the next packed residue word): one 32-byte
  /// transaction broadcast to the warp.
  template <class T>
  T gmem_read_scalar(const T* p) {
    bill_gmem(sizeof(T));
    return *p;
  }

  /// Warp-coalesced read of model *parameters* resident in global memory.
  /// Every warp of every block re-reads the same few-hundred-KB tables, so
  /// these hit in L2/texture cache on real hardware: billed as cached
  /// transactions (LD/ST pipe slots + L2 latency, no DRAM traffic).
  template <class T>
  WarpReg<T> gmem_read_param(const T* p, int start_elem) {
    WarpReg<T> r{};
    for (int i = 0; i < kWarpSize; ++i) r[i] = p[start_elem + i];
    std::size_t bytes = static_cast<std::size_t>(kWarpSize) * sizeof(T);
    counters_->gmem_cached_tx += (bytes + 31) / 32;
    return r;
  }

  /// __syncthreads() — only the ablation kernel uses this.
  void syncthreads() { counters_->syncs += 1; }

 private:
  void bill_shuffle() {
    if (dev_->has_warp_shuffle) {
      counters_->shuffles += 1;
    } else {
      // Fermi emulation: write all lanes to scratch, read permuted.
      counters_->smem_accesses += 2;
      counters_->smem_cycles += 2;
      counters_->alu += 1;
    }
  }

  void bill_gmem(std::size_t bytes) {
    // 32-byte minimum transaction granularity.
    std::size_t tx = (bytes + 31) / 32;
    counters_->gmem_transactions += tx;
    counters_->gmem_bytes += tx * 32;
  }

  const DeviceSpec* dev_;
  PerfCounters* counters_;
  SharedMemory* smem_;
  int warp_slot_;
  int warps_per_block_;
};

}  // namespace finehmm::simt
