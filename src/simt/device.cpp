#include "simt/device.hpp"

namespace finehmm::simt {

DeviceSpec DeviceSpec::tesla_k40() {
  DeviceSpec d;
  d.name = "Tesla K40 (Kepler GK110B)";
  d.arch = Arch::kKepler;
  d.sm_count = 15;
  d.max_threads_per_sm = 2048;
  d.max_warps_per_sm = 64;
  d.max_blocks_per_sm = 16;
  d.registers_per_sm = 65536;
  d.max_registers_per_thread = 255;
  d.reg_alloc_granularity = 256;
  d.shared_mem_per_sm = 48 * 1024;
  d.shared_mem_per_block = 48 * 1024;
  d.smem_alloc_granularity = 256;
  d.clock_ghz = 0.745;
  d.cores_per_sm = 192;
  d.mem_bandwidth_gbs = 288.0;
  d.has_warp_shuffle = true;
  return d;
}

DeviceSpec DeviceSpec::gtx580() {
  DeviceSpec d;
  d.name = "GeForce GTX 580 (Fermi GF110)";
  d.arch = Arch::kFermi;
  d.sm_count = 16;
  d.max_threads_per_sm = 1536;
  d.max_warps_per_sm = 48;
  d.max_blocks_per_sm = 8;
  d.registers_per_sm = 32768;
  d.max_registers_per_thread = 63;
  d.reg_alloc_granularity = 64;   // Fermi allocates per 64-register chunks
  d.shared_mem_per_sm = 48 * 1024;
  d.shared_mem_per_block = 48 * 1024;
  d.smem_alloc_granularity = 128;
  // Core (not shader) clock: the shared-memory pipe the kernels are bound
  // by runs at core clock on Fermi.
  d.clock_ghz = 0.772;
  d.cores_per_sm = 32;
  d.mem_bandwidth_gbs = 192.4;
  d.has_warp_shuffle = false;
  return d;
}

DeviceSpec DeviceSpec::gtx980() {
  DeviceSpec d;
  d.name = "GeForce GTX 980 (Maxwell GM204)";
  d.arch = Arch::kKepler;  // shuffle-capable; Maxwell keeps the Kepler ISA
  d.sm_count = 16;
  d.max_threads_per_sm = 2048;
  d.max_warps_per_sm = 64;
  d.max_blocks_per_sm = 32;
  d.registers_per_sm = 65536;
  d.max_registers_per_thread = 255;
  d.reg_alloc_granularity = 256;
  // Maxwell dedicates 96 KB of shared memory per SM (no L1 split).
  d.shared_mem_per_sm = 96 * 1024;
  d.shared_mem_per_block = 48 * 1024;
  d.smem_alloc_granularity = 256;
  d.clock_ghz = 1.126;
  d.cores_per_sm = 128;
  d.mem_bandwidth_gbs = 224.0;
  d.has_warp_shuffle = true;
  return d;
}

}  // namespace finehmm::simt
