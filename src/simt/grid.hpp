// Grid/block launch machinery — the paper's three-tiered parallelization.
//
// Tier (a): each sequence is scored by a single warp (the kernel functor).
// Tier (b): several warps (sequences) share a thread block and its shared
// memory.  Tier (c): many blocks populate the device; a global work queue
// hands each finished warp the next unprocessed sequence, so no warp ever
// waits on another — "true independence between warps" (§III-A).
//
// Functionally, blocks execute on a host thread pool and warps within a
// block run back-to-back (they are data-independent by construction, so
// any interleaving yields identical results).  Counters are collected per
// block and merged.
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <vector>

#include "simt/counters.hpp"
#include "simt/device.hpp"
#include "simt/shared_memory.hpp"
#include "simt/warp.hpp"

namespace finehmm::simt {

struct LaunchConfig {
  int warps_per_block = 4;
  int grid_blocks = 64;
  std::size_t smem_bytes_per_block = 0;
};

/// The global sequence queue (tier c): an atomic ticket counter over
/// [begin, end).
class WorkQueue {
 public:
  WorkQueue(std::size_t begin, std::size_t end) : next_(begin), end_(end) {}

  /// Returns the next item index, or npos when drained.
  std::size_t fetch() {
    std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    return i < end_ ? i : npos;
  }

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

 private:
  std::atomic<std::size_t> next_;
  std::size_t end_;
};

/// A warp program: invoked once per claimed sequence.
using WarpKernel = std::function<void(WarpContext&, std::size_t item)>;

/// Optional per-block setup (e.g. staging model parameters into shared
/// memory under the shared-placement configuration).
using BlockPrologue = std::function<void(WarpContext&)>;

/// Launch `kernel` over items [0, n_items) on `dev` and return the merged
/// performance counters.  Blocks run concurrently on the host pool;
/// correctness does not depend on the pool size.
PerfCounters launch_grid(const DeviceSpec& dev, const LaunchConfig& cfg,
                         std::size_t n_items, const WarpKernel& kernel,
                         const BlockPrologue& prologue = nullptr);

}  // namespace finehmm::simt
