#include "perf/cost_model.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace finehmm::perf {

TimeEstimate estimate_gpu_time(const simt::DeviceSpec& dev,
                               const simt::PerfCounters& counters,
                               const simt::Occupancy& occ,
                               int warps_per_block,
                               const CostModelParams& params) {
  FH_REQUIRE(occ.warps_per_sm > 0, "cannot time a zero-occupancy launch");
  TimeEstimate out;

  const double clock = dev.clock_ghz * 1e9;

  const double alu_ops = static_cast<double>(counters.alu + counters.shuffles +
                                             counters.votes);
  const double smem = static_cast<double>(counters.smem_cycles);
  const double gmem_tx = static_cast<double>(counters.gmem_transactions);
  const double l2_tx = static_cast<double>(counters.gmem_cached_tx);
  const double total_ops = alu_ops + smem + gmem_tx + l2_tx;
  if (total_ops <= 0.0) return out;

  // Peak pipe rate (warp-ops/cycle/SM): ALU ops across the CUDA-core
  // pipes, memory ops through the LD/ST pipe; a barrier stalls every warp
  // of the block for sync_latency cycles' worth of issue slots.
  double pipe_cycles =
      alu_ops / dev.issue_width() + smem / params.smem_ports +
      (gmem_tx * params.gmem_pipe_cost + l2_tx * params.l2_pipe_cost) /
          params.smem_ports +
      static_cast<double>(counters.syncs) * params.sync_latency *
          static_cast<double>(warps_per_block) / dev.issue_width();
  double peak_rate = total_ops / pipe_cycles;

  // Little's law: in-order warps with one outstanding dependent op each.
  double avg_latency = (alu_ops * params.lat_alu + smem * params.lat_smem +
                        l2_tx * params.lat_l2 + gmem_tx * params.lat_gmem) /
                       total_ops;
  double conc_rate = static_cast<double>(occ.warps_per_sm) *
                     params.warp_ilp / avg_latency;

  double rate = std::min(peak_rate, conc_rate);
  out.compute_s = total_ops / (rate * static_cast<double>(dev.sm_count) *
                               clock * params.efficiency);

  // DRAM-side time; saturating the bus needs enough resident warps too.
  double bw_util = std::min(1.0, occ.fraction / params.bw_occupancy_knee);
  out.memory_s = static_cast<double>(counters.gmem_bytes) /
                 (dev.mem_bandwidth_gbs * 1e9 * std::max(bw_util, 1e-3));

  out.total_s = std::max(out.compute_s, out.memory_s);
  if (out.total_s > 0.0)
    out.gcells_per_s = static_cast<double>(counters.cells) / out.total_s / 1e9;
  return out;
}

double estimate_cpu_time(CpuStage stage, double cells,
                         const CostModelParams& params,
                         const simt::DeviceSpec::CpuBaseline& cpu) {
  double cpc = stage == CpuStage::kMsv ? params.cpu_cycles_per_cell_msv
                                       : params.cpu_cycles_per_cell_vit;
  return cells * cpc /
         (static_cast<double>(cpu.cores) * cpu.clock_ghz * 1e9);
}

TimeEstimate extrapolate(const TimeEstimate& e, double factor) {
  TimeEstimate out = e;
  out.compute_s *= factor;
  out.memory_s *= factor;
  out.total_s *= factor;
  return out;
}

}  // namespace finehmm::perf
