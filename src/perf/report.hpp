// Kernel analysis: turn raw counters into the quantities the paper's
// discussion (§V) reasons about — arithmetic intensity, pipe-cycle
// shares, and which resource bounds the kernel.
#pragma once

#include <string>

#include "perf/cost_model.hpp"

namespace finehmm::perf {

enum class Bound { kCompute, kMemoryBandwidth, kLatency };

struct KernelAnalysis {
  double warp_ops_per_cell = 0.0;   // issue-slot ops per DP cell
  double alu_share = 0.0;           // fraction of pipe cycles on ALU
  double ldst_share = 0.0;          // fraction on the LD/ST pipe
  double sync_share = 0.0;          // fraction stalled at barriers
  double arithmetic_intensity = 0.0;  // ALU ops per DRAM byte
  double smem_conflict_rate = 0.0;  // replays per shared access (0 = clean)
  Bound bound = Bound::kCompute;
  TimeEstimate time;

  const char* bound_name() const {
    switch (bound) {
      case Bound::kCompute: return "compute pipes";
      case Bound::kMemoryBandwidth: return "DRAM bandwidth";
      case Bound::kLatency: return "latency (occupancy)";
    }
    return "?";
  }
};

/// Analyze one kernel run.
KernelAnalysis analyze_kernel(const simt::DeviceSpec& dev,
                              const simt::PerfCounters& counters,
                              const simt::Occupancy& occ, int warps_per_block,
                              const CostModelParams& params = {});

/// Multi-line human-readable rendering.
std::string format_analysis(const KernelAnalysis& a);

}  // namespace finehmm::perf
