// Analytic performance model: counters + occupancy + device -> time.
//
// This is the substitution for wall-clock GPU timing (see DESIGN.md §2).
// The inputs that carry the paper's *shape* are honest measurements from
// the functional simulator: warp-instruction counts, shared-memory cycles
// including bank-conflict replays, global-memory transactions, sync counts
// and the occupancy of the chosen launch.  The constants below (pipe
// widths, latencies, efficiency, CPU cycles/cell) are calibrated once
// against the paper's absolute speedups and documented in EXPERIMENTS.md.
//
// The compute side is a Little's-law throughput model.  Each SM sustains
//
//   rate = min( peak pipe rate,  active_warps / avg_op_latency )
//
// warp-ops per cycle, where the peak pipe rate divides ALU ops over the
// CUDA-core pipes and shared/global accesses over the LD/ST pipe, and the
// latency term models in-order warps with one outstanding dependent op:
// a warp contributes one op per avg_op_latency cycles, so low occupancy
// (or global-memory latency in the op mix) starves the pipes.  This is
// what makes the paper's shared/global crossover emerge: the global
// configuration trades LD/ST pressure and ~10x op latency for higher
// occupancy, which only pays off once the shared configuration's
// occupancy collapses (M ~ 1000 for MSV on the K40).
//
//   compute = total_ops / (rate * sm_count * clock * efficiency)
//   memory  = gmem_bytes / (bandwidth * min(1, occupancy/knee))
//   kernel  = max(compute, memory)
//
// CPU baseline time = cells * cycles_per_cell / (cores * clock): the
// striped-SSE HMMER 3.0 filters on the paper's quad-core i5 3.4 GHz.
#pragma once

#include "simt/counters.hpp"
#include "simt/device.hpp"
#include "simt/occupancy.hpp"

namespace finehmm::perf {

struct CostModelParams {
  // --- GPU pipes ---
  double smem_ports = 1.0;      // LD/ST warp accesses per cycle per SM
  double gmem_pipe_cost = 4.0;  // LD/ST slots per streaming transaction
  double l2_pipe_cost = 2.0;    // LD/ST slots per L2-cached transaction
  double sync_latency = 40.0;   // cycles one __syncthreads stalls a warp

  // --- op latencies (cycles), for the Little's-law term ---
  double lat_alu = 10.0;
  double lat_smem = 20.0;
  double lat_l2 = 120.0;
  double lat_gmem = 350.0;
  /// Independent ops a warp keeps in flight (the double-buffered kernels
  /// overlap loads with compute, cf. Fig. 5's dual-dispatch remark).
  double warp_ilp = 1.5;

  double efficiency = 0.70;        // issue efficiency (dependency stalls)
  double bw_occupancy_knee = 0.5;  // occupancy to saturate DRAM bandwidth

  // --- CPU baseline (quad-core i5 3.4 GHz, SSE striped filters) ---
  double cpu_cycles_per_cell_msv = 1.2;
  double cpu_cycles_per_cell_vit = 5.5;
};

struct TimeEstimate {
  double compute_s = 0.0;
  double memory_s = 0.0;
  double total_s = 0.0;
  double gcells_per_s = 0.0;
};

/// Estimate the runtime of one kernel launch on one device.
/// `warps_per_block` is needed to price sync stalls.
TimeEstimate estimate_gpu_time(const simt::DeviceSpec& dev,
                               const simt::PerfCounters& counters,
                               const simt::Occupancy& occ,
                               int warps_per_block,
                               const CostModelParams& params = {});

/// CPU baseline time for `cells` DP cells of the given stage.
enum class CpuStage { kMsv, kViterbi };
double estimate_cpu_time(CpuStage stage, double cells,
                         const CostModelParams& params = {},
                         const simt::DeviceSpec::CpuBaseline& cpu = {});

/// Scale a time estimate to a larger workload (benches simulate a sample
/// of the database and extrapolate by the cell ratio; counters grow
/// linearly in cells for these streaming kernels).
TimeEstimate extrapolate(const TimeEstimate& e, double factor);

}  // namespace finehmm::perf
