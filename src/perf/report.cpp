#include "perf/report.hpp"

#include <algorithm>
#include <cstdio>

namespace finehmm::perf {

KernelAnalysis analyze_kernel(const simt::DeviceSpec& dev,
                              const simt::PerfCounters& counters,
                              const simt::Occupancy& occ, int warps_per_block,
                              const CostModelParams& params) {
  KernelAnalysis a;
  a.time = estimate_gpu_time(dev, counters, occ, warps_per_block, params);

  const double alu = static_cast<double>(counters.alu + counters.shuffles +
                                         counters.votes);
  const double smem = static_cast<double>(counters.smem_cycles);
  const double gmem_tx = static_cast<double>(counters.gmem_transactions);
  const double l2_tx = static_cast<double>(counters.gmem_cached_tx);
  const double cells = std::max<double>(1.0, counters.cells);

  a.warp_ops_per_cell = (alu + smem + gmem_tx + l2_tx) / cells;

  double alu_cycles = alu / dev.issue_width();
  double ldst_cycles =
      smem / params.smem_ports +
      (gmem_tx * params.gmem_pipe_cost + l2_tx * params.l2_pipe_cost) /
          params.smem_ports;
  double sync_cycles = static_cast<double>(counters.syncs) *
                       params.sync_latency * warps_per_block /
                       dev.issue_width();
  double pipe = alu_cycles + ldst_cycles + sync_cycles;
  if (pipe > 0.0) {
    a.alu_share = alu_cycles / pipe;
    a.ldst_share = ldst_cycles / pipe;
    a.sync_share = sync_cycles / pipe;
  }

  a.arithmetic_intensity =
      counters.gmem_bytes > 0
          ? alu / static_cast<double>(counters.gmem_bytes)
          : 0.0;
  if (counters.smem_accesses > 0)
    a.smem_conflict_rate =
        static_cast<double>(counters.smem_cycles - counters.smem_accesses) /
        static_cast<double>(counters.smem_accesses);

  // What bounds the kernel?
  if (a.time.memory_s >= a.time.compute_s) {
    a.bound = Bound::kMemoryBandwidth;
  } else {
    // Compute-side: was it the pipes or the lack of resident warps?
    double avg_latency =
        (alu * params.lat_alu + smem * params.lat_smem +
         l2_tx * params.lat_l2 + gmem_tx * params.lat_gmem) /
        std::max(1.0, alu + smem + l2_tx + gmem_tx);
    double conc_rate = occ.warps_per_sm * params.warp_ilp / avg_latency;
    double peak_rate = (alu + smem + l2_tx + gmem_tx) / std::max(1.0, pipe);
    a.bound = conc_rate < peak_rate ? Bound::kLatency : Bound::kCompute;
  }
  return a;
}

std::string format_analysis(const KernelAnalysis& a) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "  warp-ops/cell:        %.3f\n"
      "  pipe shares:          ALU %.0f%% | LD/ST %.0f%% | sync %.0f%%\n"
      "  arithmetic intensity: %.2f ALU ops per DRAM byte\n"
      "  smem conflict rate:   %.3f replays/access\n"
      "  bound by:             %s\n"
      "  throughput:           %.1f Gcells/s (modeled)\n",
      a.warp_ops_per_cell, 100.0 * a.alu_share, 100.0 * a.ldst_share,
      100.0 * a.sync_share, a.arithmetic_intensity, a.smem_conflict_rate,
      a.bound_name(), a.time.gcells_per_s);
  return buf;
}

}  // namespace finehmm::perf
