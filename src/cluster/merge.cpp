#include "cluster/merge.hpp"

#include <algorithm>
#include <numeric>

#include "stats/distributions.hpp"
#include "util/error.hpp"

namespace finehmm::cluster {

namespace {

/// Permutation that visits shard results in manifest order, so every
/// aggregate below is independent of arrival order.
std::vector<std::size_t> manifest_order(
    const std::vector<std::size_t>& shard_indices) {
  std::vector<std::size_t> order(shard_indices.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return shard_indices[a] < shard_indices[b];
  });
  return order;
}

void add_stage(pipeline::StageStats& into, const pipeline::StageStats& from) {
  into.n_in += from.n_in;
  into.n_passed += from.n_passed;
  into.cells += from.cells;
}

/// Re-base a shard-local hit into the global index space and apply the
/// cluster Z exactly once.  For a shard that scored with z_override this
/// multiply reproduces the identical bits; it also corrects a hit from a
/// shard that scored at its local Z (same p, same multiply).
void globalize_hit(pipeline::Hit& h, std::uint64_t seq_base,
                   std::uint64_t total_z) {
  h.seq_index += static_cast<std::size_t>(seq_base);
  h.evalue = stats::evalue(h.pvalue, 0, total_z);
}

void sort_hits(std::vector<pipeline::Hit>& hits) {
  // The pipeline's reporting order (pipeline.cpp): total on
  // (evalue, seq_index), so the merged order is a pure function of the
  // hit set.
  std::sort(hits.begin(), hits.end(),
            [](const pipeline::Hit& a, const pipeline::Hit& b) {
              return a.evalue != b.evalue ? a.evalue < b.evalue
                                          : a.seq_index < b.seq_index;
            });
}

void check_inputs(std::size_t results, const std::vector<std::size_t>& indices,
                  const ShardManifest& m) {
  FH_REQUIRE(results == indices.size(),
             "merge: one shard index per shard result required");
  FH_REQUIRE(results >= 1, "merge: need at least one shard result");
  for (std::size_t idx : indices)
    FH_REQUIRE(idx < m.shards.size(), "merge: shard index out of range");
}

}  // namespace

server::SearchResultWire merge_search_results(
    std::vector<server::SearchResultWire> per_shard,
    const std::vector<std::size_t>& shard_indices, const ShardManifest& m,
    double report_evalue) {
  check_inputs(per_shard.size(), shard_indices, m);

  server::SearchResultWire out;
  out.db_sequences = m.total_sequences;
  out.db_residues = m.total_residues;
  if (per_shard.size() < m.shards.size())
    out.flags |= server::kResultDegraded;

  for (std::size_t i : manifest_order(shard_indices)) {
    server::SearchResultWire& r = per_shard[i];
    const std::uint64_t base = m.shards[shard_indices[i]].seq_base;
    add_stage(out.ssv, r.ssv);
    add_stage(out.msv, r.msv);
    add_stage(out.vit, r.vit);
    add_stage(out.fwd, r.fwd);
    add_stage(out.bwd, r.bwd);
    for (pipeline::Hit& h : r.hits) {
      globalize_hit(h, base, m.total_sequences);
      if (h.evalue <= report_evalue) out.hits.push_back(std::move(h));
    }
  }
  sort_hits(out.hits);
  return out;
}

server::ScanResultWire merge_scan_results(
    std::vector<server::ScanResultWire> per_shard,
    const std::vector<std::size_t>& shard_indices, const ShardManifest& m,
    double report_evalue) {
  check_inputs(per_shard.size(), shard_indices, m);

  server::ScanResultWire out;
  out.db_sequences = m.total_sequences;
  out.db_residues = m.total_residues;
  if (per_shard.size() < m.shards.size())
    out.flags |= server::kResultDegraded;

  const std::vector<std::size_t> order = manifest_order(shard_indices);

  // Every shard serves the same model library; name/order skew means a
  // mis-deployed shard and a silently wrong merge, so it is fatal.
  const std::vector<server::ScanModelHits>& first = per_shard[order[0]].models;
  for (std::size_t i : order) {
    const auto& models = per_shard[i].models;
    FH_REQUIRE(models.size() == first.size(),
               "merge: shards disagree on model library size");
    for (std::size_t mi = 0; mi < models.size(); ++mi)
      FH_REQUIRE(models[mi].model_name == first[mi].model_name,
                 "merge: shards disagree on model library order");
  }

  out.models.resize(first.size());
  double occupancy_weight = 0.0;
  for (std::size_t i : order) {
    server::ScanResultWire& r = per_shard[i];
    const ShardInfo& shard = m.shards[shard_indices[i]];
    out.fuse_groups += r.fuse_groups;
    out.fused_models += r.fused_models;
    out.lane_occupancy += r.lane_occupancy * static_cast<double>(shard.residues);
    occupancy_weight += static_cast<double>(shard.residues);
    for (std::size_t mi = 0; mi < r.models.size(); ++mi) {
      out.models[mi].model_name = r.models[mi].model_name;
      for (pipeline::Hit& h : r.models[mi].hits) {
        globalize_hit(h, shard.seq_base, m.total_sequences);
        if (h.evalue <= report_evalue)
          out.models[mi].hits.push_back(std::move(h));
      }
    }
  }
  if (occupancy_weight > 0.0) out.lane_occupancy /= occupancy_weight;
  for (server::ScanModelHits& mh : out.models) sort_hits(mh.hits);
  return out;
}

}  // namespace finehmm::cluster
