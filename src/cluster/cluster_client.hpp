// Scatter-gather client over N shard finehmmd workers (docs/cluster.md).
//
// ClusterClient owns the cluster-side failure semantics; the protocol it
// speaks per shard is exactly BlockingClient's.  Per request it:
//
//   * connects to every shard concurrently (one scatter thread each; a
//     fresh connection per request keeps shard daemons free to coalesce
//     concurrent coordinator requests exactly like direct clients);
//   * health-checks each connection with the PING handshake first — wire
//     revision and node role are verified before any payload frame, with
//     retry + exponential backoff on connect failure;
//   * forwards the request with z_override = cluster-total sequences and
//     the REMAINING deadline (end-to-end budget: time already burned on
//     connect/retry is subtracted from every shard's allowance);
//   * enforces the deadline coordinator-side too: at the deadline,
//     laggard connections are shut down, unblocking their scatter
//     threads — a hung or frozen shard cannot hold the request past it;
//   * aggregates: any shard OVERLOAD ⇒ the whole request sheds (the
//     merge needs every range, and retrying a shed is cheaper than
//     serving a wrong subset silently); any shard past the deadline ⇒
//     kDeadlineExpired, matching single-daemon semantics; shard death ⇒
//     a degraded merge of the surviving ranges, flagged as such.
//
// Observability: per-shard roundtrip histograms, a straggler histogram
// (max − min shard time per fully-answered request), and monotonic
// counters — all surfaced as "finehmm.cluster_stats.v1" by the
// coordinator.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "cluster/shard_map.hpp"
#include "obs/histogram.hpp"
#include "server/client.hpp"
#include "server/protocol.hpp"
#include "server/transport.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace finehmm::cluster {

/// Opens a connection to shard i (TCP in production, loopback in tests).
/// Must be callable concurrently; returns nullptr/throws on failure.
using ConnectFn =
    std::function<std::unique_ptr<server::Connection>(std::size_t shard)>;

struct ClusterConfig {
  ShardManifest manifest;
  /// The database id every shard daemon serves its shard file under.
  std::uint32_t db_id = 0;
  /// Connect attempts per shard per request beyond the first.
  std::uint32_t connect_retries = 2;
  /// Backoff before re-attempt k is retry_backoff_ms << k.
  std::uint32_t retry_backoff_ms = 5;
  /// Serve a flagged partial merge when >= 1 shard is unreachable; when
  /// false, shard death fails the request instead.
  bool allow_degraded = true;
  /// Insist peers answer the handshake with role kShard (production
  /// coordinators; tests drive plain SearchServers as standalone).
  bool require_shard_role = false;
};

enum class ShardState : std::uint8_t {
  kOk = 0,
  kOverloaded,  // shard shed at admission
  kError,       // shard answered a structured error
  kDead,        // unreachable / stream died mid-request
  kDeadline,    // no answer by the request deadline
};

struct ShardOutcome {
  ShardState state = ShardState::kDead;
  double roundtrip_seconds = 0.0;
  server::ErrorInfo error;        // kError only
  server::OverloadInfo overload;  // kOverloaded only
};

struct ShardCounters {
  std::uint64_t requests = 0;
  std::uint64_t ok = 0;
  std::uint64_t overloaded = 0;
  std::uint64_t errors = 0;
  std::uint64_t deaths = 0;
  std::uint64_t deadline = 0;
  bool healthy = false;  // did the last contact succeed?
};

struct ClusterStats {
  std::uint64_t requests = 0;
  std::uint64_t merged_ok = 0;
  std::uint64_t coordinator_sheds = 0;   // a shard OVERLOAD propagated
  std::uint64_t degraded_results = 0;    // merges served with shards missing
  std::uint64_t deadline_expired = 0;
  std::uint64_t failures = 0;            // failed for non-deadline reasons
  std::vector<ShardCounters> shards;
};

struct ClusterSearchResult {
  server::ClientStatus status = server::ClientStatus::kDisconnected;
  server::SearchResultWire result;  // kOk only (flags may say degraded)
  server::ErrorInfo error;          // kError only
  server::OverloadInfo overload;    // kOverloaded only
  bool degraded = false;
  std::vector<ShardOutcome> shards;  // one per manifest shard
};

struct ClusterScanResult {
  server::ClientStatus status = server::ClientStatus::kDisconnected;
  server::ScanResultWire result;
  server::ErrorInfo error;
  server::OverloadInfo overload;
  bool degraded = false;
  std::vector<ShardOutcome> shards;
};

class ClusterClient {
 public:
  ClusterClient(ClusterConfig cfg, ConnectFn connect);

  ClusterClient(const ClusterClient&) = delete;
  ClusterClient& operator=(const ClusterClient&) = delete;

  std::size_t shard_count() const { return cfg_.manifest.shards.size(); }
  const ShardManifest& manifest() const { return cfg_.manifest; }

  /// Health-check every shard once (connect + PING handshake) and update
  /// the per-shard healthy flags; returns how many answered.  The
  /// coordinator calls this at startup and logs the topology.
  std::size_t probe_all();

  /// Scatter a SEARCH.  The caller's evalue/deadline are honored; the
  /// caller's z_override is overwritten with the cluster-total Z (the
  /// coordinator owns that correction, clients cannot skew it).
  ClusterSearchResult search(const server::SearchRequest& req);

  /// Scatter a SCAN (same semantics; per-model merge).
  ClusterScanResult scan(const server::ScanRequest& req);

  ClusterStats stats() const FINEHMM_EXCLUDES(stats_mu_);

  obs::Histogram shard_histogram(std::size_t shard) const {
    return shard_hists_[shard]->snapshot();
  }
  obs::Histogram straggler_histogram() const {
    return straggler_hist_.snapshot();
  }

 private:
  /// Per-request scatter bookkeeping: live connections (for the deadline
  /// watchdog's shutdown) and the completion count the request thread
  /// waits on.
  struct FanState {
    Mutex mu;
    std::vector<server::Connection*> live FINEHMM_GUARDED_BY(mu);
    std::size_t done FINEHMM_GUARDED_BY(mu) = 0;

    CondVar cv;  // signaled per completion; waited on under mu
  };

  /// Re-encodes the request with a given remaining-deadline budget (ms);
  /// called per shard right before send, after connect/handshake burned
  /// their share of the deadline.
  using EncodeFn = std::function<std::vector<std::uint8_t>(std::uint32_t)>;

  /// One shard's whole scatter leg: connect (with retry/backoff and the
  /// deadline in view), handshake, send, receive, classify.  kOk stores
  /// the undecoded reply payload in `reply`.
  ShardOutcome shard_leg(std::size_t shard, server::MsgType verb,
                         server::MsgType expected_reply,
                         const EncodeFn& encode,
                         std::chrono::steady_clock::time_point start,
                         std::uint32_t deadline_ms, FanState& fan,
                         std::vector<std::uint8_t>& reply)
      FINEHMM_EXCLUDES(fan.mu);

  /// Scatter to every shard concurrently, enforce the deadline
  /// (shutting down laggard connections at expiry), join every leg.
  std::vector<ShardOutcome> scatter(
      server::MsgType verb, server::MsgType expected_reply,
      const EncodeFn& encode, std::uint32_t deadline_ms,
      std::vector<std::vector<std::uint8_t>>& replies);

  /// Fold per-shard outcomes into the cluster counters.
  void account(const std::vector<ShardOutcome>& outcomes,
               server::ClientStatus status, bool degraded)
      FINEHMM_EXCLUDES(stats_mu_);

  ClusterConfig cfg_;
  ConnectFn connect_;

  mutable Mutex stats_mu_;
  ClusterStats stats_ FINEHMM_GUARDED_BY(stats_mu_);

  // Lock-free latency surfaces (obs::ConcurrentHistogram is not movable,
  // hence the unique_ptr indirection for the per-shard vector).
  std::vector<std::unique_ptr<obs::ConcurrentHistogram>> shard_hists_;
  obs::ConcurrentHistogram straggler_hist_;
};

}  // namespace finehmm::cluster
