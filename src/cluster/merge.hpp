// The scatter-gather merge: combine per-shard results into one result
// bit-identical to an unsharded single-daemon scan (docs/cluster.md).
//
// Why bit-identity is achievable at all: every per-sequence score in the
// pipeline (MSV/Viterbi/Forward bits, bias, P-value) depends only on the
// query profile and that one sequence — CUDAMPF++'s database-partition
// independence.  The only database-global quantity is the E-value,
// E = p * Z, one IEEE-754 multiply.  So:
//
//   * each shard scores with z_override = cluster-total Z, making its
//     E-values AND its `E <= report threshold` filter decisions exactly
//     those of the unsharded scan restricted to its range;
//   * the merge re-bases seq_index by the shard's manifest seq_base,
//     re-applies E = p * Z once (the same multiply — bitwise a no-op for
//     a well-behaved shard, a correction for a legacy one), re-filters
//     at the request threshold, and re-sorts by the pipeline's total
//     order (evalue, seq_index);
//   * stage statistics are sums of disjoint ranges, so integer n_in /
//     n_passed match exactly and cells sums are the same values the
//     unsharded sweep adds (summed in shard order).
//
// The merge is deterministic in the shard results alone — arrival order
// never matters.
#pragma once

#include <cstddef>
#include <vector>

#include "cluster/shard_map.hpp"
#include "server/protocol.hpp"

namespace finehmm::cluster {

/// Merge SEARCH results.  `shard_indices[i]` names the manifest shard
/// that produced `per_shard[i]` (a degraded merge passes the survivors
/// only); the result's degraded flag is set when any shard is missing.
/// `report_evalue` is the request threshold, re-applied after the Z
/// correction.
server::SearchResultWire merge_search_results(
    std::vector<server::SearchResultWire> per_shard,
    const std::vector<std::size_t>& shard_indices, const ShardManifest& m,
    double report_evalue);

/// Merge SCAN results (per-model hit lists).  Every shard scans the same
/// resident model library, so the model lists must agree in names and
/// order; throws Error on skew (a mis-deployed shard must not produce a
/// silently wrong merge).  fuse_groups / fused_models sum over shards
/// and lane_occupancy is their cell-weighted mean — they describe the
/// union of the shard sweeps.
server::ScanResultWire merge_scan_results(
    std::vector<server::ScanResultWire> per_shard,
    const std::vector<std::size_t>& shard_indices, const ShardManifest& m,
    double report_evalue);

}  // namespace finehmm::cluster
