#include "cluster/cluster_client.hpp"

#include <algorithm>
#include <thread>
#include <utility>

#include "cluster/merge.hpp"
#include "util/error.hpp"

namespace finehmm::cluster {

using server::ClientStatus;
using server::Connection;
using server::ErrorCode;
using server::Frame;
using server::MsgType;
using server::PingInfo;
using server::ProtocolError;
using server::RecvStatus;

using Clock = std::chrono::steady_clock;

namespace {

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

std::uint64_t to_ns(double seconds) {
  return seconds <= 0.0 ? 0 : static_cast<std::uint64_t>(seconds * 1e9);
}

}  // namespace

ClusterClient::ClusterClient(ClusterConfig cfg, ConnectFn connect)
    : cfg_(std::move(cfg)), connect_(std::move(connect)) {
  FH_REQUIRE(!cfg_.manifest.shards.empty(),
             "cluster client needs a manifest with >= 1 shard");
  FH_REQUIRE(connect_ != nullptr, "cluster client needs a connect function");
  {
    MutexLock lock(stats_mu_);
    stats_.shards.resize(cfg_.manifest.shards.size());
  }
  shard_hists_.reserve(cfg_.manifest.shards.size());
  for (std::size_t i = 0; i < cfg_.manifest.shards.size(); ++i)
    shard_hists_.push_back(std::make_unique<obs::ConcurrentHistogram>());
}

std::size_t ClusterClient::probe_all() {
  std::size_t healthy = 0;
  for (std::size_t i = 0; i < shard_count(); ++i) {
    bool up = false;
    std::unique_ptr<Connection> conn;
    try {
      conn = connect_(i);
    } catch (const Error&) {
      conn = nullptr;
    }
    if (conn) {
      // The same handshake every scatter leg performs: revision is
      // checked server-side (kVersionMismatch comes back as kError,
      // i.e. not a kPong), role client-side.
      if (server::send_frame(*conn, MsgType::kPing, 1,
                             server::encode_ping(PingInfo{}))) {
        Frame pong;
        if (server::recv_frame(*conn, pong) == RecvStatus::kFrame &&
            pong.type() == MsgType::kPong) {
          try {
            const PingInfo info = server::decode_ping(pong.payload);
            up = info.role != server::NodeRole::kCoordinator &&
                 (!cfg_.require_shard_role ||
                  info.role == server::NodeRole::kShard);
          } catch (const ProtocolError&) {
          }
        }
      }
      conn->shutdown();
    }
    if (up) ++healthy;
    MutexLock lock(stats_mu_);
    stats_.shards[i].healthy = up;
  }
  return healthy;
}

ShardOutcome ClusterClient::shard_leg(std::size_t shard, MsgType verb,
                                      MsgType expected_reply,
                                      const EncodeFn& encode,
                                      Clock::time_point start,
                                      std::uint32_t deadline_ms, FanState& fan,
                                      std::vector<std::uint8_t>& reply) {
  ShardOutcome out;
  const Clock::time_point leg_start = Clock::now();
  const Clock::time_point deadline =
      start + std::chrono::milliseconds(deadline_ms);
  const auto past_deadline = [&] {
    return deadline_ms != 0 && Clock::now() >= deadline;
  };
  const auto classify_drop = [&] {
    out.state = past_deadline() ? ShardState::kDeadline : ShardState::kDead;
  };

  // Connect, with retry + exponential backoff.  The deadline bounds the
  // whole ladder: once it passes, the leg stops trying.
  std::unique_ptr<Connection> conn;
  for (std::uint32_t attempt = 0;; ++attempt) {
    try {
      conn = connect_(shard);
    } catch (const Error&) {
      conn = nullptr;
    }
    if (conn) break;
    if (attempt >= cfg_.connect_retries || past_deadline()) {
      classify_drop();
      out.roundtrip_seconds = seconds_since(leg_start);
      return out;
    }
    std::this_thread::sleep_for(
        std::chrono::milliseconds(cfg_.retry_backoff_ms << attempt));
  }

  // Publish the connection so the deadline watchdog can shut it down;
  // it MUST be withdrawn (under the same lock) before `conn` dies.
  {
    MutexLock lock(fan.mu);
    fan.live[shard] = conn.get();
  }

  // The leg body never early-returns: `state` is settled by fall-through
  // so the live-pointer withdrawal below always runs.
  [&] {
    // Health-checked handshake: revision (server-side) + role.
    if (!server::send_frame(*conn, MsgType::kPing, 1,
                            server::encode_ping(PingInfo{})))
      return classify_drop();
    Frame pong;
    if (server::recv_frame(*conn, pong) != RecvStatus::kFrame)
      return classify_drop();
    if (pong.type() == MsgType::kError) {
      try {
        out.error = server::decode_error(pong.payload);
        out.state = ShardState::kError;
      } catch (const ProtocolError&) {
        out.state = ShardState::kDead;
      }
      return;
    }
    if (pong.type() != MsgType::kPong) return classify_drop();
    PingInfo info;
    try {
      info = server::decode_ping(pong.payload);
    } catch (const ProtocolError&) {
      out.state = ShardState::kDead;
      return;
    }
    if (info.role == server::NodeRole::kCoordinator ||
        (cfg_.require_shard_role &&
         info.role != server::NodeRole::kShard)) {
      out.state = ShardState::kError;
      out.error = {ErrorCode::kBadRequest,
                   "peer is not a shard worker (role " +
                       std::to_string(static_cast<int>(info.role)) + ")"};
      return;
    }

    // Per-shard budget = remaining deadline: connect/handshake time is
    // burned from every shard's allowance, never added to it.
    std::uint32_t remaining_ms = 0;
    if (deadline_ms != 0) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - Clock::now());
      if (left.count() <= 0) {
        out.state = ShardState::kDeadline;
        return;
      }
      remaining_ms = static_cast<std::uint32_t>(left.count());
    }

    if (!server::send_frame(*conn, verb, 2, encode(remaining_ms)))
      return classify_drop();
    Frame resp;
    if (server::recv_frame(*conn, resp) != RecvStatus::kFrame)
      return classify_drop();
    if (resp.type() == expected_reply) {
      out.state = ShardState::kOk;
      reply = std::move(resp.payload);
      return;
    }
    try {
      if (resp.type() == MsgType::kOverload) {
        out.overload = server::decode_overload(resp.payload);
        out.state = ShardState::kOverloaded;
        return;
      }
      if (resp.type() == MsgType::kError) {
        out.error = server::decode_error(resp.payload);
        out.state = out.error.code == ErrorCode::kDeadlineExpired
                        ? ShardState::kDeadline
                        : ShardState::kError;
        return;
      }
    } catch (const ProtocolError&) {
    }
    out.state = ShardState::kDead;
  }();

  {
    MutexLock lock(fan.mu);
    fan.live[shard] = nullptr;
  }
  conn->shutdown();
  out.roundtrip_seconds = seconds_since(leg_start);
  return out;
}

std::vector<ShardOutcome> ClusterClient::scatter(
    MsgType verb, MsgType expected_reply, const EncodeFn& encode,
    std::uint32_t deadline_ms,
    std::vector<std::vector<std::uint8_t>>& replies) {
  const std::size_t n = shard_count();
  const Clock::time_point start = Clock::now();

  std::vector<ShardOutcome> outcomes(n);
  replies.assign(n, {});

  FanState fan;
  {
    MutexLock lock(fan.mu);
    fan.live.assign(n, nullptr);
  }

  std::vector<std::thread> legs;
  legs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    legs.emplace_back([&, i] {
      outcomes[i] = shard_leg(i, verb, expected_reply, encode, start,
                              deadline_ms, fan, replies[i]);
      {
        MutexLock lock(fan.mu);
        ++fan.done;
      }
      fan.cv.notify_all();
    });
  }

  if (deadline_ms != 0) {
    // Coordinator-side deadline enforcement: a hung shard never answers,
    // so at expiry the watchdog shuts the laggards' connections down
    // (unblocking their recv) and keeps sweeping until every leg is in —
    // a leg that registered after a sweep gets caught by the next one.
    const Clock::time_point deadline =
        start + std::chrono::milliseconds(deadline_ms);
    MutexLock lock(fan.mu);
    while (fan.done < n) {
      if (fan.cv.wait_until(fan.mu, deadline) == std::cv_status::timeout &&
          Clock::now() >= deadline)
        break;
    }
    while (fan.done < n) {
      for (Connection* c : fan.live)
        if (c != nullptr) c->shutdown();
      fan.cv.wait_for(fan.mu, std::chrono::milliseconds(10));
    }
  }
  for (std::thread& t : legs) t.join();
  return outcomes;
}

void ClusterClient::account(const std::vector<ShardOutcome>& outcomes,
                            ClientStatus status, bool degraded) {
  // Lock-free surfaces first: per-shard roundtrips for answered legs and
  // the straggler spread (max - min) when every shard answered.
  double min_rt = 0.0, max_rt = 0.0;
  std::size_t ok = 0;
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    if (outcomes[i].state != ShardState::kOk) continue;
    shard_hists_[i]->record(to_ns(outcomes[i].roundtrip_seconds));
    if (ok == 0) {
      min_rt = max_rt = outcomes[i].roundtrip_seconds;
    } else {
      min_rt = std::min(min_rt, outcomes[i].roundtrip_seconds);
      max_rt = std::max(max_rt, outcomes[i].roundtrip_seconds);
    }
    ++ok;
  }
  if (ok >= 2) straggler_hist_.record(to_ns(max_rt - min_rt));

  MutexLock lock(stats_mu_);
  ++stats_.requests;
  if (status == ClientStatus::kOk) ++stats_.merged_ok;
  if (status == ClientStatus::kOverloaded) ++stats_.coordinator_sheds;
  if (degraded) ++stats_.degraded_results;
  if (status == ClientStatus::kError ||
      status == ClientStatus::kDisconnected) {
    bool deadline = false;
    for (const ShardOutcome& o : outcomes)
      if (o.state == ShardState::kDeadline) deadline = true;
    if (deadline)
      ++stats_.deadline_expired;
    else
      ++stats_.failures;
  }
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    ShardCounters& c = stats_.shards[i];
    ++c.requests;
    switch (outcomes[i].state) {
      case ShardState::kOk:
        ++c.ok;
        c.healthy = true;
        break;
      case ShardState::kOverloaded:
        ++c.overloaded;
        c.healthy = true;  // alive, just shedding
        break;
      case ShardState::kError:
        ++c.errors;
        c.healthy = true;  // answered, structurally
        break;
      case ShardState::kDead:
        ++c.deaths;
        c.healthy = false;
        break;
      case ShardState::kDeadline:
        ++c.deadline;
        break;
    }
  }
}

namespace {

/// Shared aggregation policy for SEARCH and SCAN (docs/cluster.md):
/// OVERLOAD beats everything (retry is cheap and correct), then the
/// deadline (a partial on-time answer is still a miss), then the
/// degraded-or-fail decision.
template <typename ResultT>
ClientStatus settle(const std::vector<ShardOutcome>& outcomes,
                    bool allow_degraded, std::size_t total_shards,
                    ResultT& out) {
  for (const ShardOutcome& o : outcomes)
    if (o.state == ShardState::kOverloaded) {
      out.overload = o.overload;
      return ClientStatus::kOverloaded;
    }
  for (const ShardOutcome& o : outcomes)
    if (o.state == ShardState::kDeadline) {
      out.error = {ErrorCode::kDeadlineExpired,
                   "a shard missed the request deadline"};
      return ClientStatus::kError;
    }
  std::size_t ok = 0;
  for (const ShardOutcome& o : outcomes)
    if (o.state == ShardState::kOk) ++ok;
  if (ok == total_shards) return ClientStatus::kOk;
  if (ok > 0 && allow_degraded) {
    out.degraded = true;
    return ClientStatus::kOk;
  }
  for (const ShardOutcome& o : outcomes)
    if (o.state == ShardState::kError) {
      out.error = o.error;
      return ClientStatus::kError;
    }
  out.error = {ErrorCode::kInternal, "no shard was reachable"};
  return ClientStatus::kError;
}

}  // namespace

ClusterSearchResult ClusterClient::search(const server::SearchRequest& req) {
  server::SearchRequest fwd = req;
  fwd.db_id = cfg_.db_id;
  // The coordinator owns the Z correction: every shard scores against
  // the cluster total, whatever the caller put here.
  fwd.z_override = cfg_.manifest.total_sequences;

  const EncodeFn encode = [&fwd](std::uint32_t remaining_ms) {
    server::SearchRequest leg = fwd;
    leg.deadline_ms = remaining_ms;
    return server::encode_search_request(leg);
  };

  std::vector<std::vector<std::uint8_t>> replies;
  std::vector<ShardOutcome> outcomes = scatter(
      MsgType::kSearch, MsgType::kResult, encode, req.deadline_ms, replies);

  // Decode before settling: an undecodable "success" is a dead shard.
  std::vector<server::SearchResultWire> parts;
  std::vector<std::size_t> part_shards;
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    if (outcomes[i].state != ShardState::kOk) continue;
    try {
      parts.push_back(server::decode_search_result(replies[i]));
      part_shards.push_back(i);
    } catch (const ProtocolError&) {
      outcomes[i].state = ShardState::kDead;
    }
  }

  ClusterSearchResult out;
  out.status = settle(outcomes, cfg_.allow_degraded, shard_count(), out);
  if (out.status == ClientStatus::kOk)
    out.result = merge_search_results(std::move(parts), part_shards,
                                      cfg_.manifest, req.evalue);
  out.shards = outcomes;
  account(outcomes, out.status, out.degraded);
  return out;
}

ClusterScanResult ClusterClient::scan(const server::ScanRequest& req) {
  server::ScanRequest fwd = req;
  fwd.db_id = cfg_.db_id;
  fwd.z_override = cfg_.manifest.total_sequences;

  const EncodeFn encode = [&fwd](std::uint32_t remaining_ms) {
    server::ScanRequest leg = fwd;
    leg.deadline_ms = remaining_ms;
    return server::encode_scan_request(leg);
  };

  std::vector<std::vector<std::uint8_t>> replies;
  std::vector<ShardOutcome> outcomes = scatter(
      MsgType::kScan, MsgType::kScanResult, encode, req.deadline_ms, replies);

  std::vector<server::ScanResultWire> parts;
  std::vector<std::size_t> part_shards;
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    if (outcomes[i].state != ShardState::kOk) continue;
    try {
      parts.push_back(server::decode_scan_result(replies[i]));
      part_shards.push_back(i);
    } catch (const ProtocolError&) {
      outcomes[i].state = ShardState::kDead;
    }
  }

  ClusterScanResult out;
  out.status = settle(outcomes, cfg_.allow_degraded, shard_count(), out);
  if (out.status == ClientStatus::kOk)
    out.result = merge_scan_results(std::move(parts), part_shards,
                                    cfg_.manifest, req.evalue);
  out.shards = outcomes;
  account(outcomes, out.status, out.degraded);
  return out;
}

ClusterStats ClusterClient::stats() const {
  MutexLock lock(stats_mu_);
  return stats_;
}

}  // namespace finehmm::cluster
