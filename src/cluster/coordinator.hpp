// The cluster front end: a daemon that speaks the finehmmd wire protocol
// to clients and scatters every SEARCH/SCAN across the shard workers via
// ClusterClient (docs/cluster.md).
//
// To a client the coordinator IS a finehmmd — same frames, same verbs,
// same error codes — except that its PONG announces role kCoordinator
// and its STATS payload is "finehmm.cluster_stats.v1" (cluster counters,
// per-shard latency quantiles, straggler tracking) instead of the
// single-daemon server stats.  Because the merge is bit-identical to an
// unsharded scan, a client cannot tell the difference from the results.
//
// Threading mirrors SearchServer's connection tier: serve() runs the
// accept loop, one thread per connection handles its frames.  There is
// no admission queue and no coalescer here — a request's whole life is
// the scatter-gather inside its connection thread, and the shard daemons
// do the coalescing where the DP work actually runs.  Replies therefore
// come only from the connection's own thread, so sessions need no write
// lock; drain just closes the listener and shuts the sockets down.
#pragma once

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster_client.hpp"
#include "obs/histogram.hpp"
#include "server/http.hpp"
#include "server/transport.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace finehmm::cluster {

/// Coordinator-side accounting, on top of ClusterClient's ClusterStats.
struct CoordinatorStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t requests_bad = 0;                // payload failed to decode
  std::uint64_t requests_rejected_draining = 0;  // arrived after drain began
  std::uint64_t frames_malformed = 0;
};

class ClusterCoordinator {
 public:
  ClusterCoordinator(ClusterConfig cfg, ConnectFn connect);
  ~ClusterCoordinator();

  ClusterCoordinator(const ClusterCoordinator&) = delete;
  ClusterCoordinator& operator=(const ClusterCoordinator&) = delete;

  /// The scatter-gather engine (exposed for startup probes and tests).
  ClusterClient& client() { return client_; }

  /// Run the accept loop on the calling thread; returns after
  /// begin_drain() once every connection thread joined.
  void serve(server::Listener& listener);

  /// Graceful shutdown: stop accepting, answer new requests with
  /// kShuttingDown, unblock idle connections.  In-flight scatters finish
  /// (their shard legs already carry deadlines).  Idempotent; safe from
  /// any thread.
  void begin_drain() FINEHMM_EXCLUDES(state_mu_);
  bool draining() const FINEHMM_EXCLUDES(state_mu_);

  // --- Observability --------------------------------------------------
  CoordinatorStats stats() const FINEHMM_EXCLUDES(stats_mu_);
  /// The STATS verb's payload: "finehmm.cluster_stats.v1" — coordinator
  /// counters, ClusterClient counters, per-shard latency quantiles and
  /// the straggler (max − min shard time) histogram.
  std::string stats_json() const FINEHMM_EXCLUDES(stats_mu_);

  /// End-to-end coordinator latency (decode -> reply written), ns.
  obs::Histogram latency_histogram() const { return e2e_hist_.snapshot(); }

  double uptime_seconds() const;

  /// /metrics (Prometheus), /healthz (drain-aware), /statusz — same
  /// routes as finehmmd, served by the shared HttpEndpoint.
  server::HttpResponse handle_http(const std::string& path) const;
  std::string metrics_text() const;
  std::string statusz_text() const;

 private:
  /// One client connection.  Only its own thread ever writes to conn
  /// (all request handling is synchronous), so no write lock exists;
  /// drain calls conn->shutdown(), which is safe from any thread.
  struct Session {
    std::unique_ptr<server::Connection> conn;
  };

  void handle_connection(const std::shared_ptr<Session>& session)
      FINEHMM_EXCLUDES(stats_mu_);
  void handle_search(Session& session, const server::Frame& frame)
      FINEHMM_EXCLUDES(state_mu_, stats_mu_);
  void handle_scan(Session& session, const server::Frame& frame)
      FINEHMM_EXCLUDES(state_mu_, stats_mu_);
  void send_error(Session& session, std::uint32_t request_id,
                  server::ErrorCode code, const std::string& message);

  ClusterClient client_;

  /// Lifecycle lock (registry order 1, docs/static_analysis.md).
  mutable Mutex state_mu_;
  bool draining_ FINEHMM_GUARDED_BY(state_mu_) = false;
  server::Listener* listener_ FINEHMM_GUARDED_BY(state_mu_) = nullptr;
  std::vector<std::weak_ptr<Session>> sessions_ FINEHMM_GUARDED_BY(state_mu_);
  std::vector<std::thread> conn_threads_ FINEHMM_GUARDED_BY(state_mu_);

  mutable Mutex stats_mu_;
  CoordinatorStats stats_ FINEHMM_GUARDED_BY(stats_mu_);

  const std::chrono::steady_clock::time_point start_time_ =
      std::chrono::steady_clock::now();
  obs::ConcurrentHistogram e2e_hist_;
};

}  // namespace finehmm::cluster
