#include "cluster/shard_map.hpp"

#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace finehmm::cluster {

std::size_t length_bucket(std::size_t length) {
  std::size_t b = 0;
  while (b + 1 < kLengthBuckets && length > kLengthBucketEdges[b]) ++b;
  return b;
}

std::vector<std::pair<std::size_t, std::size_t>> plan_shard_ranges(
    const std::vector<std::uint32_t>& lengths, std::size_t n_shards) {
  FH_REQUIRE(n_shards >= 1, "need at least one shard");
  FH_REQUIRE(n_shards <= lengths.size(),
             "more shards than sequences: every shard must be non-empty");
  std::uint64_t total = 0;
  for (std::uint32_t len : lengths) total += len;

  // Cut shard k at the first index where the running residue total
  // reaches (k+1)/n of the grand total, while leaving enough sequences
  // for the remaining shards to be non-empty.  Integer arithmetic only:
  // the plan must be identical on every host.
  std::vector<std::pair<std::size_t, std::size_t>> ranges;
  ranges.reserve(n_shards);
  std::uint64_t running = 0;
  std::size_t begin = 0;
  for (std::size_t k = 0; k < n_shards; ++k) {
    const std::uint64_t target = total / n_shards * (k + 1) +
                                 total % n_shards * (k + 1) / n_shards;
    std::size_t end = begin;
    const std::size_t reserve_tail = n_shards - k - 1;  // shards after this
    if (k + 1 == n_shards) {
      end = lengths.size();
    } else {
      while (end < lengths.size() - reserve_tail &&
             (end == begin || running < target)) {
        running += lengths[end];
        ++end;
      }
    }
    ranges.emplace_back(begin, end);
    begin = end;
  }
  return ranges;
}

// --- Minimal JSON ------------------------------------------------------
//
// The manifest is the repo's own format, so this parser covers exactly
// the JSON subset the writer emits (objects, arrays, strings, unsigned
// integers) and rejects everything else loudly — same philosophy as the
// wire protocol's bounds-checked Reader: never trust input, fail with a
// message instead of misparsing.

namespace {

struct Json {
  enum Kind { kNull, kNum, kStr, kArr, kObj };
  Kind kind = kNull;
  std::uint64_t num = 0;
  std::string str;
  std::vector<Json> arr;
  std::vector<std::pair<std::string, Json>> obj;

  const Json& at(const std::string& key) const {
    for (const auto& [k, v] : obj)
      if (k == key) return v;
    throw Error("manifest: missing key '" + key + "'");
  }
  std::uint64_t as_num(const char* what) const {
    if (kind != kNum) throw Error(std::string("manifest: ") + what +
                                  " is not an unsigned integer");
    return num;
  }
  const std::string& as_str(const char* what) const {
    if (kind != kStr)
      throw Error(std::string("manifest: ") + what + " is not a string");
    return str;
  }
};

struct Cursor {
  const char* p;
  const char* end;

  void skip_ws() {
    while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r'))
      ++p;
  }
  char peek() {
    skip_ws();
    if (p >= end) throw Error("manifest: truncated JSON");
    return *p;
  }
  void expect(char c) {
    if (peek() != c)
      throw Error(std::string("manifest: expected '") + c + "', got '" +
                  *p + "'");
    ++p;
  }
  std::string string() {
    expect('"');
    std::string s;
    while (p < end && *p != '"') {
      char c = *p++;
      if (c == '\\') {
        if (p >= end) throw Error("manifest: truncated escape");
        char esc = *p++;
        switch (esc) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          default:
            throw Error(std::string("manifest: unsupported escape \\") + esc);
        }
      }
      s.push_back(c);
    }
    if (p >= end) throw Error("manifest: unterminated string");
    ++p;  // closing quote
    return s;
  }
  Json value() {
    Json v;
    const char c = peek();
    if (c == '{') {
      ++p;
      v.kind = Json::kObj;
      if (peek() == '}') {
        ++p;
        return v;
      }
      for (;;) {
        std::string key = string();
        expect(':');
        v.obj.emplace_back(std::move(key), value());
        const char next = peek();
        ++p;
        if (next == '}') return v;
        if (next != ',') throw Error("manifest: expected ',' or '}'");
      }
    }
    if (c == '[') {
      ++p;
      v.kind = Json::kArr;
      if (peek() == ']') {
        ++p;
        return v;
      }
      for (;;) {
        v.arr.push_back(value());
        const char next = peek();
        ++p;
        if (next == ']') return v;
        if (next != ',') throw Error("manifest: expected ',' or ']'");
      }
    }
    if (c == '"') {
      v.kind = Json::kStr;
      v.str = string();
      return v;
    }
    if (c >= '0' && c <= '9') {
      v.kind = Json::kNum;
      while (p < end && *p >= '0' && *p <= '9') {
        const std::uint64_t digit = static_cast<std::uint64_t>(*p - '0');
        FH_REQUIRE(v.num <= (UINT64_MAX - digit) / 10,
                   "manifest: integer overflows u64");
        v.num = v.num * 10 + digit;
        ++p;
      }
      if (p < end && (*p == '.' || *p == 'e' || *p == 'E'))
        throw Error("manifest: only unsigned integers are accepted");
      return v;
    }
    throw Error(std::string("manifest: unexpected character '") + c + "'");
  }
};

void write_json_string(std::ostringstream& out, const std::string& s) {
  out << '"';
  for (char c : s) {
    if (c == '"' || c == '\\') out << '\\';
    out << c;
  }
  out << '"';
}

}  // namespace

std::string write_manifest(const ShardManifest& m) {
  std::ostringstream out;
  out << "{\n  \"schema\": \"finehmm.shard_manifest.v1\",\n  \"source\": ";
  write_json_string(out, m.source);
  out << ",\n  \"total_sequences\": " << m.total_sequences
      << ",\n  \"total_residues\": " << m.total_residues
      << ",\n  \"length_bucket_edges\": [";
  for (std::size_t i = 0; i + 1 < kLengthBuckets; ++i)
    out << (i ? ", " : "") << kLengthBucketEdges[i];
  out << "],\n  \"shards\": [";
  for (std::size_t s = 0; s < m.shards.size(); ++s) {
    const ShardInfo& sh = m.shards[s];
    out << (s ? ",\n    {" : "\n    {") << "\"path\": ";
    write_json_string(out, sh.path);
    out << ", \"seq_base\": " << sh.seq_base
        << ", \"sequences\": " << sh.sequences
        << ", \"residues\": " << sh.residues << ", \"length_buckets\": [";
    for (std::size_t b = 0; b < sh.length_buckets.size(); ++b)
      out << (b ? ", " : "") << sh.length_buckets[b];
    out << "]}";
  }
  out << "\n  ]\n}\n";
  return out.str();
}

ShardManifest parse_manifest(const std::string& json_text) {
  Cursor cur{json_text.data(), json_text.data() + json_text.size()};
  const Json root = cur.value();
  cur.skip_ws();
  if (cur.p != cur.end) throw Error("manifest: trailing bytes after JSON");
  if (root.kind != Json::kObj) throw Error("manifest: root is not an object");

  if (root.at("schema").as_str("schema") != "finehmm.shard_manifest.v1")
    throw Error("manifest: unknown schema '" +
                root.at("schema").as_str("schema") + "'");

  ShardManifest m;
  m.source = root.at("source").as_str("source");
  m.total_sequences = root.at("total_sequences").as_num("total_sequences");
  m.total_residues = root.at("total_residues").as_num("total_residues");

  const Json& shards = root.at("shards");
  if (shards.kind != Json::kArr || shards.arr.empty())
    throw Error("manifest: 'shards' must be a non-empty array");

  std::uint64_t next_base = 0;
  std::uint64_t residues = 0;
  for (const Json& j : shards.arr) {
    if (j.kind != Json::kObj) throw Error("manifest: shard is not an object");
    ShardInfo sh;
    sh.path = j.at("path").as_str("path");
    sh.seq_base = j.at("seq_base").as_num("seq_base");
    sh.sequences = j.at("sequences").as_num("sequences");
    sh.residues = j.at("residues").as_num("residues");
    const Json& buckets = j.at("length_buckets");
    if (buckets.kind != Json::kArr || buckets.arr.size() != kLengthBuckets)
      throw Error("manifest: length_buckets must have " +
                  std::to_string(kLengthBuckets) + " entries");
    for (const Json& b : buckets.arr)
      sh.length_buckets.push_back(b.as_num("length_buckets entry"));
    if (sh.sequences == 0) throw Error("manifest: empty shard");
    if (sh.seq_base != next_base)
      throw Error("manifest: shard ranges do not tile [0, total): expected "
                  "seq_base " +
                  std::to_string(next_base) + ", got " +
                  std::to_string(sh.seq_base));
    next_base += sh.sequences;
    residues += sh.residues;
    m.shards.push_back(std::move(sh));
  }
  if (next_base != m.total_sequences)
    throw Error("manifest: shard sequence counts sum to " +
                std::to_string(next_base) + ", not total_sequences " +
                std::to_string(m.total_sequences));
  if (residues != m.total_residues)
    throw Error("manifest: shard residue counts sum to " +
                std::to_string(residues) + ", not total_residues " +
                std::to_string(m.total_residues));
  return m;
}

ShardManifest read_manifest_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open manifest: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  if (!in.good() && !in.eof())
    throw IoError("failed reading manifest: " + path);
  return parse_manifest(buf.str());
}

}  // namespace finehmm::cluster
