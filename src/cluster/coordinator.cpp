#include "cluster/coordinator.hpp"

#include <chrono>
#include <sstream>

#include "obs/log.hpp"
#include "obs/request_trace.hpp"
#include "util/error.hpp"

namespace finehmm::cluster {

using server::decode_ping;
using server::decode_scan_request;
using server::decode_search_request;
using server::ErrorCode;
using server::ErrorInfo;
using server::Frame;
using server::MsgType;
using server::PingInfo;
using server::ProtocolError;
using server::RecvStatus;

namespace {

std::uint64_t elapsed_ns(std::chrono::steady_clock::time_point since) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - since)
          .count());
}

/// One latency surface as JSON, seconds — the same quantile math as
/// /metrics so the two surfaces agree on p99 (pattern from server.cpp).
void write_hist_json(std::ostream& os, const obs::Histogram& h) {
  const obs::LatencyQuantiles q = obs::latency_quantiles(h);
  os << "{\"count\": " << q.count
     << ", \"sum_seconds\": " << static_cast<double>(q.sum) * 1e-9
     << ", \"p50_seconds\": " << static_cast<double>(q.p50) * 1e-9
     << ", \"p90_seconds\": " << static_cast<double>(q.p90) * 1e-9
     << ", \"p99_seconds\": " << static_cast<double>(q.p99) * 1e-9
     << ", \"p999_seconds\": " << static_cast<double>(q.p999) * 1e-9
     << ", \"max_seconds\": " << static_cast<double>(h.max()) * 1e-9 << "}";
}

/// One latency surface as a Prometheus summary family; `labels` is the
/// pre-rendered label set ("" or "shard=\"3\"").
void write_hist_prometheus(std::ostream& os, const char* name,
                           const std::string& labels,
                           const obs::Histogram& h) {
  const obs::LatencyQuantiles q = obs::latency_quantiles(h);
  const std::string sep = labels.empty() ? "" : ",";
  const std::pair<const char*, std::uint64_t> quantiles[] = {
      {"0.5", q.p50}, {"0.9", q.p90}, {"0.99", q.p99}, {"0.999", q.p999}};
  for (const auto& [quantile, value] : quantiles)
    os << name << "{" << labels << sep << "quantile=\"" << quantile << "\"} "
       << static_cast<double>(value) * 1e-9 << "\n";
  os << name << "_sum" << (labels.empty() ? "" : "{" + labels + "}") << " "
     << static_cast<double>(q.sum) * 1e-9 << "\n";
  os << name << "_count" << (labels.empty() ? "" : "{" + labels + "}") << " "
     << q.count << "\n";
}

}  // namespace

ClusterCoordinator::ClusterCoordinator(ClusterConfig cfg, ConnectFn connect)
    : client_(std::move(cfg), std::move(connect)) {}

ClusterCoordinator::~ClusterCoordinator() { begin_drain(); }

void ClusterCoordinator::serve(server::Listener& listener) {
  {
    MutexLock lock(state_mu_);
    FH_REQUIRE(listener_ == nullptr, "serve() is already running");
    listener_ = &listener;
    if (draining_) listener.close();  // drained before we even started
  }

  for (;;) {
    std::unique_ptr<server::Connection> conn = listener.accept();
    if (!conn) break;  // listener closed: drain has begun
    auto session = std::make_shared<Session>();
    session->conn = std::move(conn);
    {
      MutexLock lock(stats_mu_);
      ++stats_.connections_accepted;
    }
    MutexLock lock(state_mu_);
    sessions_.push_back(session);
    conn_threads_.emplace_back(
        [this, session] { handle_connection(session); });
  }

  // Unblock idle connections and join.  In-flight scatters finish on
  // their own (shard legs carry deadlines); shutdown() only fails the
  // next recv/send on this side.
  std::vector<std::thread> threads;
  {
    MutexLock lock(state_mu_);
    for (const std::weak_ptr<Session>& weak : sessions_)
      if (std::shared_ptr<Session> s = weak.lock()) s->conn->shutdown();
    threads.swap(conn_threads_);
    sessions_.clear();
  }
  for (std::thread& t : threads) t.join();

  MutexLock lock(state_mu_);
  listener_ = nullptr;
}

void ClusterCoordinator::begin_drain() {
  MutexLock lock(state_mu_);
  if (!draining_)
    obs::log(obs::LogLevel::kInfo, "cluster.drain_begin",
             {{"shards", static_cast<std::uint64_t>(client_.shard_count())}});
  draining_ = true;
  if (listener_ != nullptr) listener_->close();
}

bool ClusterCoordinator::draining() const {
  MutexLock lock(state_mu_);
  return draining_;
}

double ClusterCoordinator::uptime_seconds() const {
  return static_cast<double>(elapsed_ns(start_time_)) * 1e-9;
}

CoordinatorStats ClusterCoordinator::stats() const {
  MutexLock lock(stats_mu_);
  return stats_;
}

void ClusterCoordinator::send_error(Session& session,
                                    std::uint32_t request_id, ErrorCode code,
                                    const std::string& message) {
  send_frame(*session.conn, MsgType::kError, request_id,
             encode_error(ErrorInfo{code, message}));
}

void ClusterCoordinator::handle_connection(
    const std::shared_ptr<Session>& session) {
  Frame frame;
  for (;;) {
    const RecvStatus st = recv_frame(*session->conn, frame);
    if (st == RecvStatus::kEof) break;
    if (st == RecvStatus::kMalformed) {
      MutexLock lock(stats_mu_);
      ++stats_.frames_malformed;
      break;
    }
    switch (frame.type()) {
      case MsgType::kPing: {
        PingInfo peer;
        try {
          peer = decode_ping(frame.payload);
        } catch (const ProtocolError& e) {
          send_error(*session, frame.header.request_id,
                     ErrorCode::kBadRequest, e.what());
          break;
        }
        if (peer.wire_revision != server::kWireRevision) {
          send_error(*session, frame.header.request_id,
                     ErrorCode::kVersionMismatch,
                     "peer wire revision " +
                         std::to_string(peer.wire_revision) +
                         " incompatible with " +
                         std::to_string(server::kWireRevision));
          break;
        }
        PingInfo self;
        self.role = server::NodeRole::kCoordinator;
        send_frame(*session->conn, MsgType::kPong, frame.header.request_id,
                   encode_ping(self));
        break;
      }
      case MsgType::kStats: {
        const std::string json = stats_json();
        send_frame(*session->conn, MsgType::kStatsResult,
                   frame.header.request_id,
                   std::vector<std::uint8_t>(json.begin(), json.end()));
        break;
      }
      case MsgType::kSearch:
        handle_search(*session, frame);
        break;
      case MsgType::kScan:
        handle_scan(*session, frame);
        break;
      default:
        send_error(*session, frame.header.request_id, ErrorCode::kBadRequest,
                   "unexpected message type " +
                       std::to_string(frame.header.type));
        break;
    }
  }
  session->conn->shutdown();
}

void ClusterCoordinator::handle_search(Session& session, const Frame& frame) {
  const std::uint32_t id = frame.header.request_id;
  const auto started = std::chrono::steady_clock::now();

  server::SearchRequest req;
  try {
    req = decode_search_request(frame.payload);
  } catch (const ProtocolError& e) {
    {
      MutexLock lock(stats_mu_);
      ++stats_.requests_bad;
    }
    send_error(session, id, ErrorCode::kBadRequest, e.what());
    return;
  }

  if (draining()) {
    {
      MutexLock lock(stats_mu_);
      ++stats_.requests_rejected_draining;
    }
    send_error(session, id, ErrorCode::kShuttingDown,
               "coordinator is draining; no new searches accepted");
    return;
  }

  ClusterSearchResult res = client_.search(req);
  switch (res.status) {
    case server::ClientStatus::kOk:
      res.result.trace_id = obs::next_trace_id();
      send_frame(*session.conn, MsgType::kResult, id,
                 encode_search_result(res.result));
      break;
    case server::ClientStatus::kOverloaded:
      send_frame(*session.conn, MsgType::kOverload, id,
                 encode_overload(res.overload));
      break;
    case server::ClientStatus::kError:
      send_error(session, id, res.error.code, res.error.message);
      break;
    case server::ClientStatus::kDisconnected:
      send_error(session, id, ErrorCode::kInternal,
                 "no shard answered the scatter");
      break;
  }
  e2e_hist_.record(elapsed_ns(started));
}

void ClusterCoordinator::handle_scan(Session& session, const Frame& frame) {
  const std::uint32_t id = frame.header.request_id;
  const auto started = std::chrono::steady_clock::now();

  server::ScanRequest req;
  try {
    req = decode_scan_request(frame.payload);
  } catch (const ProtocolError& e) {
    {
      MutexLock lock(stats_mu_);
      ++stats_.requests_bad;
    }
    send_error(session, id, ErrorCode::kBadRequest, e.what());
    return;
  }

  if (draining()) {
    {
      MutexLock lock(stats_mu_);
      ++stats_.requests_rejected_draining;
    }
    send_error(session, id, ErrorCode::kShuttingDown,
               "coordinator is draining; no new scans accepted");
    return;
  }

  ClusterScanResult res = client_.scan(req);
  switch (res.status) {
    case server::ClientStatus::kOk:
      res.result.trace_id = obs::next_trace_id();
      send_frame(*session.conn, MsgType::kScanResult, id,
                 encode_scan_result(res.result));
      break;
    case server::ClientStatus::kOverloaded:
      send_frame(*session.conn, MsgType::kOverload, id,
                 encode_overload(res.overload));
      break;
    case server::ClientStatus::kError:
      send_error(session, id, res.error.code, res.error.message);
      break;
    case server::ClientStatus::kDisconnected:
      send_error(session, id, ErrorCode::kInternal,
                 "no shard answered the scatter");
      break;
  }
  e2e_hist_.record(elapsed_ns(started));
}

// --- Observability -------------------------------------------------------

std::string ClusterCoordinator::stats_json() const {
  const CoordinatorStats c = stats();
  const ClusterStats s = client_.stats();
  const ShardManifest& m = client_.manifest();

  std::ostringstream os;
  os << "{\n";
  os << "  \"schema\": \"finehmm.cluster_stats.v1\",\n";
  os << "  \"uptime_seconds\": " << uptime_seconds() << ",\n";
  os << "  \"draining\": " << (draining() ? "true" : "false") << ",\n";
  os << "  \"shard_count\": " << m.shards.size() << ",\n";
  os << "  \"total_sequences\": " << m.total_sequences << ",\n";
  os << "  \"total_residues\": " << m.total_residues << ",\n";
  os << "  \"connections_accepted\": " << c.connections_accepted << ",\n";
  os << "  \"requests_bad\": " << c.requests_bad << ",\n";
  os << "  \"requests_rejected_draining\": " << c.requests_rejected_draining
     << ",\n";
  os << "  \"frames_malformed\": " << c.frames_malformed << ",\n";
  os << "  \"requests\": " << s.requests << ",\n";
  os << "  \"merged_ok\": " << s.merged_ok << ",\n";
  os << "  \"coordinator_sheds\": " << s.coordinator_sheds << ",\n";
  os << "  \"degraded_results\": " << s.degraded_results << ",\n";
  os << "  \"deadline_expired\": " << s.deadline_expired << ",\n";
  os << "  \"failures\": " << s.failures << ",\n";
  os << "  \"latency\": {\n    \"e2e\": ";
  write_hist_json(os, e2e_hist_.snapshot());
  os << ",\n    \"straggler\": ";
  write_hist_json(os, client_.straggler_histogram());
  os << "\n  },\n";
  os << "  \"shards\": [";
  for (std::size_t i = 0; i < s.shards.size(); ++i) {
    const ShardCounters& sc = s.shards[i];
    os << (i == 0 ? "\n" : ",\n");
    os << "    {\"shard\": " << i << ", \"path\": \""
       << obs::json_escape(m.shards[i].path) << "\", \"seq_base\": "
       << m.shards[i].seq_base << ", \"sequences\": " << m.shards[i].sequences
       << ", \"healthy\": " << (sc.healthy ? "true" : "false")
       << ", \"requests\": " << sc.requests << ", \"ok\": " << sc.ok
       << ", \"overloaded\": " << sc.overloaded
       << ", \"errors\": " << sc.errors << ", \"deaths\": " << sc.deaths
       << ", \"deadline\": " << sc.deadline << ", \"latency\": ";
    write_hist_json(os, client_.shard_histogram(i));
    os << "}";
  }
  os << (s.shards.empty() ? "" : "\n  ") << "]\n";
  os << "}\n";
  return os.str();
}

std::string ClusterCoordinator::metrics_text() const {
  const CoordinatorStats c = stats();
  const ClusterStats s = client_.stats();

  std::size_t healthy = 0;
  for (const ShardCounters& sc : s.shards)
    if (sc.healthy) ++healthy;

  std::ostringstream os;
  os << "# HELP finehmm_cluster_up Whether the coordinator is serving "
        "(drain flips to 0).\n";
  os << "# TYPE finehmm_cluster_up gauge\n";
  os << "finehmm_cluster_up " << (draining() ? 0 : 1) << "\n";
  os << "# HELP finehmm_cluster_uptime_seconds Seconds since the "
        "coordinator started.\n";
  os << "# TYPE finehmm_cluster_uptime_seconds gauge\n";
  os << "finehmm_cluster_uptime_seconds " << uptime_seconds() << "\n";
  os << "# HELP finehmm_cluster_shards Shards in the manifest.\n";
  os << "# TYPE finehmm_cluster_shards gauge\n";
  os << "finehmm_cluster_shards " << s.shards.size() << "\n";
  os << "# HELP finehmm_cluster_shards_healthy Shards whose last contact "
        "succeeded.\n";
  os << "# TYPE finehmm_cluster_shards_healthy gauge\n";
  os << "finehmm_cluster_shards_healthy " << healthy << "\n";

  os << "# HELP finehmm_cluster_events_total Monotonic coordinator "
        "counters by event.\n";
  os << "# TYPE finehmm_cluster_events_total counter\n";
  const std::pair<const char*, std::uint64_t> events[] = {
      {"connections_accepted", c.connections_accepted},
      {"requests_bad", c.requests_bad},
      {"requests_rejected_draining", c.requests_rejected_draining},
      {"frames_malformed", c.frames_malformed},
      {"requests", s.requests},
      {"merged_ok", s.merged_ok},
      {"coordinator_sheds", s.coordinator_sheds},
      {"degraded_results", s.degraded_results},
      {"deadline_expired", s.deadline_expired},
      {"failures", s.failures},
  };
  for (const auto& [name, value] : events)
    os << "finehmm_cluster_events_total{event=\"" << name << "\"} " << value
       << "\n";

  os << "# HELP finehmm_cluster_shard_events_total Monotonic per-shard "
        "scatter-leg counters by event.\n";
  os << "# TYPE finehmm_cluster_shard_events_total counter\n";
  for (std::size_t i = 0; i < s.shards.size(); ++i) {
    const ShardCounters& sc = s.shards[i];
    const std::pair<const char*, std::uint64_t> shard_events[] = {
        {"requests", sc.requests}, {"ok", sc.ok},
        {"overloaded", sc.overloaded}, {"errors", sc.errors},
        {"deaths", sc.deaths}, {"deadline", sc.deadline},
    };
    for (const auto& [name, value] : shard_events)
      os << "finehmm_cluster_shard_events_total{shard=\"" << i
         << "\",event=\"" << name << "\"} " << value << "\n";
  }

  os << "# HELP finehmm_cluster_shard_healthy Whether the shard's last "
        "contact succeeded.\n";
  os << "# TYPE finehmm_cluster_shard_healthy gauge\n";
  for (std::size_t i = 0; i < s.shards.size(); ++i)
    os << "finehmm_cluster_shard_healthy{shard=\"" << i << "\"} "
       << (s.shards[i].healthy ? 1 : 0) << "\n";

  os << "# HELP finehmm_cluster_request_latency_seconds End-to-end "
        "coordinator latency (decode to reply written).\n";
  os << "# TYPE finehmm_cluster_request_latency_seconds summary\n";
  write_hist_prometheus(os, "finehmm_cluster_request_latency_seconds", "",
                        e2e_hist_.snapshot());
  os << "# HELP finehmm_cluster_shard_latency_seconds Per-shard scatter "
        "leg roundtrip.\n";
  os << "# TYPE finehmm_cluster_shard_latency_seconds summary\n";
  for (std::size_t i = 0; i < s.shards.size(); ++i)
    write_hist_prometheus(os, "finehmm_cluster_shard_latency_seconds",
                          "shard=\"" + std::to_string(i) + "\"",
                          client_.shard_histogram(i));
  os << "# HELP finehmm_cluster_straggler_seconds Max minus min shard "
        "time per fully-answered request.\n";
  os << "# TYPE finehmm_cluster_straggler_seconds summary\n";
  write_hist_prometheus(os, "finehmm_cluster_straggler_seconds", "",
                        client_.straggler_histogram());
  return os.str();
}

std::string ClusterCoordinator::statusz_text() const {
  const ClusterStats s = client_.stats();
  const ShardManifest& m = client_.manifest();

  std::ostringstream os;
  os << "finehmm_clusterd status\n";
  os << "=======================\n";
  os << "uptime_seconds:   " << uptime_seconds() << "\n";
  os << "state:            " << (draining() ? "draining" : "serving") << "\n";
  os << "database:         " << m.source << " (" << m.total_sequences
     << " sequences, " << m.total_residues << " residues, "
     << m.shards.size() << " shards)\n";
  os << "requests:         " << s.requests << " (" << s.merged_ok << " ok, "
     << s.coordinator_sheds << " shed, " << s.degraded_results
     << " degraded, " << s.deadline_expired << " deadline, " << s.failures
     << " failed)\n";
  for (std::size_t i = 0; i < s.shards.size(); ++i) {
    const ShardCounters& sc = s.shards[i];
    const obs::LatencyQuantiles q =
        obs::latency_quantiles(client_.shard_histogram(i));
    os << "shard " << i << ":          "
       << (sc.healthy ? "healthy" : "UNHEALTHY") << "  ok=" << sc.ok
       << " overloaded=" << sc.overloaded << " errors=" << sc.errors
       << " deaths=" << sc.deaths << " deadline=" << sc.deadline
       << " p99=" << static_cast<double>(q.p99) * 1e-9 << "s\n";
  }
  return os.str();
}

server::HttpResponse ClusterCoordinator::handle_http(
    const std::string& path) const {
  server::HttpResponse res;
  if (path == "/metrics") {
    res.body = metrics_text();
    res.content_type = "text/plain; version=0.0.4; charset=utf-8";
  } else if (path == "/healthz") {
    if (draining()) {
      res.status = 503;
      res.body = "draining\n";
    } else {
      res.body = "ok\n";
    }
  } else if (path == "/statusz") {
    res.body = statusz_text();
  } else {
    res.status = 404;
    res.body = "not found\n";
  }
  return res;
}

}  // namespace finehmm::cluster
