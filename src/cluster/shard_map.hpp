// Shard manifests for a sharded finehmmd cluster (docs/cluster.md).
//
// tools/fsqdb_shard splits one .fsqdb into N contiguous-range shard
// files and writes a JSON manifest describing the split; the coordinator
// (cluster_client/coordinator) reads the manifest to learn each shard's
// global sequence base (for merging hit indices) and the cluster totals
// (the Z every shard must score against).
//
// Sharding policy: contiguous index ranges, cut so each shard carries a
// near-equal share of TOTAL RESIDUES, not of sequence count.  Sweep cost
// is ~M*L cells per sequence with M fixed per query, so residues are the
// cell-accurate load measure — a shard of many short sequences and a
// shard of few long ones cost the same wall time.  Contiguity keeps the
// global index recoverable as `seq_base + local_index`, which is what
// lets the merge re-sort deterministically.  Each shard also records a
// length-bucket histogram (the same log2 bucketing the fuse tuner uses)
// so operators can see skew at a glance.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace finehmm::cluster {

/// Length-bucket histogram shape: bucket b counts sequences with
/// L <= kLengthBucketEdges[b]; the last bucket is unbounded.
inline constexpr std::uint32_t kLengthBucketEdges[] = {64,   128,  256, 512,
                                                      1024, 2048, 4096};
inline constexpr std::size_t kLengthBuckets =
    sizeof(kLengthBucketEdges) / sizeof(kLengthBucketEdges[0]) + 1;

std::size_t length_bucket(std::size_t length);

struct ShardInfo {
  std::string path;            // shard .fsqdb, relative to the manifest
  std::uint64_t seq_base = 0;  // global index of the shard's sequence 0
  std::uint64_t sequences = 0;
  std::uint64_t residues = 0;
  std::vector<std::uint64_t> length_buckets;  // kLengthBuckets counts
};

struct ShardManifest {
  std::string source;  // the unsharded .fsqdb this split came from
  std::uint64_t total_sequences = 0;
  std::uint64_t total_residues = 0;
  std::vector<ShardInfo> shards;
};

/// Plan contiguous [begin, end) shard ranges over a database with the
/// given per-sequence lengths, balancing cumulative residues: shard k
/// ends at the first index where the running residue total reaches
/// (k+1)/n of the grand total.  Every shard is non-empty when
/// n_shards <= lengths.size(); throws Error otherwise (an empty shard
/// would serve no purpose and complicates Z accounting).
std::vector<std::pair<std::size_t, std::size_t>> plan_shard_ranges(
    const std::vector<std::uint32_t>& lengths, std::size_t n_shards);

/// Serialize a manifest as "finehmm.shard_manifest.v1" JSON.
std::string write_manifest(const ShardManifest& m);

/// Parse manifest JSON; throws finehmm::Error on anything malformed
/// (wrong schema tag, missing fields, shard ranges that do not tile
/// [0, total_sequences), totals that do not add up).
ShardManifest parse_manifest(const std::string& json_text);

/// Read + parse a manifest file (throws IoError / Error).
ShardManifest read_manifest_file(const std::string& path);

}  // namespace finehmm::cluster
