#include "util/logspace.hpp"

namespace finehmm {

LogSumTable::LogSumTable() {
  for (int i = 0; i < kTableSize; ++i) {
    float d = static_cast<float>(i) / kScale;
    table_[i] = std::log1p(std::exp(-static_cast<double>(d)));
  }
}

const LogSumTable& LogSumTable::instance() {
  static const LogSumTable table;
  return table;
}

}  // namespace finehmm
