#include "util/threadpool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace finehmm {

namespace {

// Completion latch for the blocking entry points below.  The counter is
// a plain integer mutated ONLY under the mutex (not an atomic read by
// the waiter): the waiting thread can therefore observe completion only
// after the final worker has released the lock, so every local in the
// caller's frame (cursor, the latch itself, the task lambda) strictly
// outlives all worker accesses.  An atomic counter checked from the
// wait predicate races here — the waiter can see the final count, return,
// and pop the frame while the last worker is still between its
// fetch_add and the notify, touching freed stack.  ThreadSanitizer
// caught exactly that (stack-reuse write from the next call racing a
// read of the dead frame).  The mutex also carries the release/acquire
// edge that makes all worker writes visible to post-join readers.
class CompletionLatch {
 public:
  explicit CompletionLatch(std::size_t expected) : remaining_(expected) {}

  void count_down() FINEHMM_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    // Notify while still holding the lock: a notify after unlock would
    // touch the condition variable after the waiter may have destroyed
    // this latch.
    if (--remaining_ == 0) cv_.notify_all();
  }

  void wait() FINEHMM_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    while (remaining_ != 0) cv_.wait(mutex_);
  }

 private:
  Mutex mutex_;
  std::size_t remaining_ FINEHMM_GUARDED_BY(mutex_);

  CondVar cv_;
};

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      while (!stop_ && tasks_.empty()) cv_.wait(mutex_);
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for_chunked(
    std::size_t count, std::size_t chunk,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
  if (count == 0) return;
  if (chunk == 0) chunk = 1;

  std::atomic<std::size_t> cursor{0};
  std::atomic<std::size_t> next_worker{0};
  std::exception_ptr first_error = nullptr;
  Mutex error_mutex;  // guards first_error (locals can't carry GUARDED_BY)

  std::size_t n_workers = workers_.size() + 1;  // pool + calling thread
  const std::size_t n_chunks = (count + chunk - 1) / chunk;
  if (n_workers > n_chunks) n_workers = n_chunks;

  CompletionLatch done(n_workers);

  auto body = [&] {
    const std::size_t worker =
        next_worker.fetch_add(1, std::memory_order_relaxed);
    for (;;) {
      std::size_t begin = cursor.fetch_add(chunk, std::memory_order_relaxed);
      if (begin >= count) break;
      std::size_t end = std::min(begin + chunk, count);
      try {
        fn(worker, begin, end);
      } catch (...) {
        MutexLock lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }
    done.count_down();
  };

  {
    MutexLock lock(mutex_);
    for (std::size_t i = 0; i + 1 < n_workers; ++i) tasks_.push(body);
  }
  cv_.notify_all();
  body();  // caller participates

  done.wait();
  if (first_error) std::rethrow_exception(first_error);
}

void ThreadPool::run_workers(
    std::size_t n, const std::function<void(std::size_t)>& body) {
  if (n == 0) n = 1;
  if (n > workers()) n = workers();

  std::atomic<std::size_t> next_worker{0};
  std::exception_ptr first_error = nullptr;
  Mutex error_mutex;  // guards first_error (locals can't carry GUARDED_BY)
  CompletionLatch done(n);

  auto task = [&] {
    const std::size_t worker =
        next_worker.fetch_add(1, std::memory_order_relaxed);
    try {
      body(worker);
    } catch (...) {
      MutexLock lock(error_mutex);
      if (!first_error) first_error = std::current_exception();
    }
    done.count_down();
  };

  {
    MutexLock lock(mutex_);
    for (std::size_t i = 0; i + 1 < n; ++i) tasks_.push(task);
  }
  cv_.notify_all();
  task();  // caller participates

  done.wait();
  if (first_error) std::rethrow_exception(first_error);
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  // Chunked dynamic scheduling: workers pull the next index from a shared
  // atomic counter, so uneven per-item cost (sequence-length imbalance)
  // still balances.
  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error = nullptr;
  Mutex error_mutex;  // guards first_error (locals can't carry GUARDED_BY)

  std::size_t n_workers = workers_.size();
  if (n_workers > count) n_workers = count;

  CompletionLatch done(n_workers);

  auto body = [&] {
    for (;;) {
      std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) break;
      try {
        fn(i);
      } catch (...) {
        MutexLock lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }
    done.count_down();
  };

  {
    MutexLock lock(mutex_);
    // n_workers - 1 tasks for the pool; the calling thread also works.
    for (std::size_t i = 0; i + 1 < n_workers; ++i) tasks_.push(body);
  }
  cv_.notify_all();
  body();  // caller participates

  done.wait();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace finehmm
