#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "util/error.hpp"

namespace finehmm {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  FH_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  FH_REQUIRE(cells.size() == headers_.size(),
             "row arity does not match header");
  rows_.push_back(std::move(cells));
}

std::string TextTable::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TextTable::pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, 100.0 * fraction);
  return buf;
}

std::string TextTable::str() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out << "  ";
      out << row[c];
      for (std::size_t pad = row[c].size(); pad < widths[c]; ++pad) out << ' ';
    }
    out << '\n';
  };
  emit(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c) out << "  ";
    out << std::string(widths[c], '-');
  }
  out << '\n';
  for (const auto& row : rows_) emit(row);
  return out.str();
}

}  // namespace finehmm
