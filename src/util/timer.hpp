// Wall-clock timing helper for benchmarks and the CPU baseline calibration.
#pragma once

#include <chrono>

namespace finehmm {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace finehmm
