// Debug invariant checks for the DP kernels and concurrency layers.
//
// FINEHMM_CHECK asserts cheap boundary conditions (queue counters in
// range, worker ids in bounds); FINEHMM_DCHECK asserts expensive whole-
// structure invariants (Lazy-F fixpoint sweeps, schedule permutation
// scans).  Both follow the recorder's cost discipline
// (docs/observability.md): when disabled they expand to `((void)0)` —
// the condition is never evaluated, so release builds carry zero cost —
// and the gate is a compile-time switch, FINEHMM_CHECKS_ENABLED,
// defaulting to on in debug builds and off under NDEBUG.  The sanitizer
// presets (tsan/ubsan/asan, see CMakePresets.json) force it on so the
// stress tests exercise the invariants with race and UB detection
// active.
//
// Failures abort() after printing the expression, message, and location:
// the checks guard scientific invariants inside hot kernels where the
// repo linter (tools/finehmm_lint) forbids throwing, and an abort stops
// the process at the exact broken state — which is what the sanitizers
// and a debugger want.  For recoverable API misuse keep using
// FH_REQUIRE/FH_ASSERT from util/error.hpp.
#pragma once

#include <cstdio>
#include <cstdlib>

#ifndef FINEHMM_CHECKS_ENABLED
#ifdef NDEBUG
#define FINEHMM_CHECKS_ENABLED 0
#else
#define FINEHMM_CHECKS_ENABLED 1
#endif
#endif

namespace finehmm::detail {

[[noreturn]] inline void check_fail(const char* kind, const char* expr,
                                    const char* msg, const char* file,
                                    int line) {
  std::fprintf(stderr, "%s failed: %s — %s (%s:%d)\n", kind, expr, msg, file,
               line);
  std::fflush(stderr);
  std::abort();
}

}  // namespace finehmm::detail

#if FINEHMM_CHECKS_ENABLED

/// Cheap invariant at a kernel or queue boundary; aborts on failure.
#define FINEHMM_CHECK(expr, msg)                                          \
  do {                                                                    \
    if (!(expr))                                                          \
      ::finehmm::detail::check_fail("FINEHMM_CHECK", #expr, (msg),        \
                                    __FILE__, __LINE__);                  \
  } while (0)

/// Expensive invariant (full-row/full-schedule sweeps); aborts on failure.
#define FINEHMM_DCHECK(expr, msg)                                         \
  do {                                                                    \
    if (!(expr))                                                          \
      ::finehmm::detail::check_fail("FINEHMM_DCHECK", #expr, (msg),       \
                                    __FILE__, __LINE__);                  \
  } while (0)

/// Statement(s) that exist only when the checks are compiled in — for
/// tracking state (tickets, high-water marks) that the checks consume.
#define FINEHMM_IF_CHECKS(...) __VA_ARGS__

#else

#define FINEHMM_CHECK(expr, msg) ((void)0)
#define FINEHMM_DCHECK(expr, msg) ((void)0)
#define FINEHMM_IF_CHECKS(...)

#endif
