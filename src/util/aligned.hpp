// Cache-line / SIMD aligned storage.
//
// The striped CPU filters and the SIMT simulator both want contiguous,
// over-aligned buffers.  `AlignedAllocator` is a minimal C++17-style
// allocator over std::aligned_alloc; `aligned_vector<T>` is the convenience
// alias used throughout.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <limits>
#include <new>
#include <vector>

namespace finehmm {

inline constexpr std::size_t kSimdAlign = 64;  // one cache line, >= any SIMD

template <class T, std::size_t Align = kSimdAlign>
class AlignedAllocator {
 public:
  using value_type = T;
  static constexpr std::align_val_t alignment{Align};

  AlignedAllocator() noexcept = default;
  template <class U>
  AlignedAllocator(const AlignedAllocator<U, Align>&) noexcept {}

  template <class U>
  struct rebind {
    using other = AlignedAllocator<U, Align>;
  };

  T* allocate(std::size_t n) {
    if (n > std::numeric_limits<std::size_t>::max() / sizeof(T))
      throw std::bad_alloc();
    // aligned_alloc requires the size to be a multiple of the alignment.
    std::size_t bytes = n * sizeof(T);
    bytes = (bytes + Align - 1) / Align * Align;
    void* p = std::aligned_alloc(Align, bytes);
    if (p == nullptr) throw std::bad_alloc();
    return static_cast<T*>(p);
  }

  void deallocate(T* p, std::size_t) noexcept { std::free(p); }

  friend bool operator==(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return true;
  }
};

template <class T>
using aligned_vector = std::vector<T, AlignedAllocator<T>>;

}  // namespace finehmm
