// Plain-text table formatting for benchmark reports.
//
// Every bench binary prints the rows/series of the paper's tables and
// figures; this helper keeps the output aligned and parseable.
#pragma once

#include <string>
#include <vector>

namespace finehmm {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Append a row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Convenience: format a double with fixed precision.
  static std::string num(double v, int precision = 2);
  /// Convenience: format a percentage.
  static std::string pct(double fraction, int precision = 1);

  /// Render with column alignment and a separator under the header.
  std::string str() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace finehmm
