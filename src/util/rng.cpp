#include "util/rng.hpp"

#include <cmath>

#include "util/error.hpp"

namespace finehmm {

double Pcg32::gaussian() {
  if (has_cached_) {
    has_cached_ = false;
    return cached_;
  }
  // Box-Muller; u1 in (0,1] to avoid log(0).
  double u1 = 1.0 - uniform();
  double u2 = uniform();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_ = r * std::sin(theta);
  has_cached_ = true;
  return r * std::cos(theta);
}

double Pcg32::lognormal(double mu, double sigma) {
  return std::exp(mu + sigma * gaussian());
}

double Pcg32::exponential(double lambda) {
  FH_REQUIRE(lambda > 0.0, "exponential rate must be positive");
  return -std::log(1.0 - uniform()) / lambda;
}

std::size_t Pcg32::categorical(const std::vector<double>& weights) {
  FH_REQUIRE(!weights.empty(), "categorical weights must be non-empty");
  double total = 0.0;
  for (double w : weights) total += w;
  FH_REQUIRE(total > 0.0, "categorical weights must sum to > 0");
  double x = uniform() * total;
  double acc = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (x < acc) return i;
  }
  return weights.size() - 1;  // floating-point slack
}

double Pcg32::gamma(double shape) {
  FH_REQUIRE(shape > 0.0, "gamma shape must be positive");
  if (shape < 1.0) {
    // Boost to shape+1 then scale back (Marsaglia-Tsang trick).
    double u = uniform();
    while (u <= 0.0) u = uniform();
    return gamma(shape + 1.0) * std::pow(u, 1.0 / shape);
  }
  double d = shape - 1.0 / 3.0;
  double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = gaussian();
    double v = 1.0 + c * x;
    if (v <= 0.0) continue;
    v = v * v * v;
    double u = uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
    if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v)))
      return d * v;
  }
}

std::vector<double> Pcg32::dirichlet(std::size_t k, double alpha) {
  std::vector<double> out(k);
  double total = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    out[i] = gamma(alpha);
    total += out[i];
  }
  // A Dirichlet draw is a normalized vector of Gammas; total > 0 almost
  // surely, but guard against underflow for tiny alpha.
  if (total <= 0.0) {
    for (auto& v : out) v = 1.0 / static_cast<double>(k);
  } else {
    for (auto& v : out) v /= total;
  }
  return out;
}

}  // namespace finehmm
