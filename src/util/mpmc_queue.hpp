// Bounded multi-producer/multi-consumer queue.
//
// The overlapped-rescoring engine hands MSV survivors from filter workers
// to whichever worker goes idle first (the paper's third parallelism tier:
// a global work queue drained opportunistically).  The queue is a fixed
// ring under one mutex — at pipeline survivor rates (a few percent of the
// database) contention is negligible, and a bounded ring gives natural
// backpressure: try_push fails when full and the producer rescores one
// item itself instead of blocking ("help-first"), so the crew can never
// deadlock.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "util/error.hpp"

namespace finehmm {

template <class T>
class BoundedMpmcQueue {
 public:
  /// End-of-run telemetry, maintained under the ring mutex (a few
  /// integer bumps on operations that already pay the lock).  Invariants
  /// a drained run must satisfy: pops == pushes, push_failures counts
  /// rejected attempts only, max_depth <= capacity.
  struct Stats {
    std::uint64_t pushes = 0;         // items accepted
    std::uint64_t pops = 0;           // items handed out
    std::uint64_t push_failures = 0;  // try_push calls rejected (ring full)
    std::uint64_t max_depth = 0;      // high-water occupancy
  };

  explicit BoundedMpmcQueue(std::size_t capacity)
      : ring_(capacity) {
    FH_REQUIRE(capacity >= 1, "queue capacity must be at least 1");
  }

  std::size_t capacity() const noexcept { return ring_.size(); }

  /// Non-blocking push; false when the ring is full.
  bool try_push(const T& item) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (count_ == ring_.size()) {
      ++stats_.push_failures;
      return false;
    }
    ring_[(head_ + count_) % ring_.size()] = item;
    ++count_;
    ++stats_.pushes;
    if (count_ > stats_.max_depth) stats_.max_depth = count_;
    return true;
  }

  /// Non-blocking pop; false when the ring is empty.
  bool try_pop(T& out) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (count_ == 0) return false;
    out = ring_[head_];
    head_ = (head_ + 1) % ring_.size();
    --count_;
    ++stats_.pops;
    return true;
  }

  bool empty() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return count_ == 0;
  }

  /// Snapshot of the lifetime counters.
  Stats stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
  }

 private:
  mutable std::mutex mutex_;
  std::vector<T> ring_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
  Stats stats_;
};

}  // namespace finehmm
