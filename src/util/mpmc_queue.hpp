// Bounded multi-producer/multi-consumer queue.
//
// The overlapped-rescoring engine hands MSV survivors from filter workers
// to whichever worker goes idle first (the paper's third parallelism tier:
// a global work queue drained opportunistically).  The queue is a fixed
// ring under one mutex — at pipeline survivor rates (a few percent of the
// database) contention is negligible, and a bounded ring gives natural
// backpressure: try_push fails when full and the producer rescores one
// item itself instead of blocking ("help-first"), so the crew can never
// deadlock.
#pragma once

#include <cstddef>
#include <mutex>
#include <vector>

#include "util/error.hpp"

namespace finehmm {

template <class T>
class BoundedMpmcQueue {
 public:
  explicit BoundedMpmcQueue(std::size_t capacity)
      : ring_(capacity) {
    FH_REQUIRE(capacity >= 1, "queue capacity must be at least 1");
  }

  std::size_t capacity() const noexcept { return ring_.size(); }

  /// Non-blocking push; false when the ring is full.
  bool try_push(const T& item) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (count_ == ring_.size()) return false;
    ring_[(head_ + count_) % ring_.size()] = item;
    ++count_;
    return true;
  }

  /// Non-blocking pop; false when the ring is empty.
  bool try_pop(T& out) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (count_ == 0) return false;
    out = ring_[head_];
    head_ = (head_ + 1) % ring_.size();
    --count_;
    return true;
  }

  bool empty() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return count_ == 0;
  }

 private:
  mutable std::mutex mutex_;
  std::vector<T> ring_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
};

}  // namespace finehmm
