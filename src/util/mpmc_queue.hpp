// Bounded multi-producer/multi-consumer queue.
//
// The overlapped-rescoring engine hands MSV survivors from filter workers
// to whichever worker goes idle first (the paper's third parallelism tier:
// a global work queue drained opportunistically).  The queue is a fixed
// ring under one mutex — at pipeline survivor rates (a few percent of the
// database) contention is negligible, and a bounded ring gives natural
// backpressure: try_push fails when full and the producer rescores one
// item itself instead of blocking ("help-first"), so the crew can never
// deadlock.
//
// The search daemon reuses the same ring as its admission queue, which
// needs two extra capabilities the overlapped engine does not: close()
// (producers are gone for good, not merely idle) and a timed blocking pop
// (consumers sleep on a condition variable instead of spinning).  A
// closed queue rejects pushes but keeps handing out the items already
// accepted, so "drain then stop" is one natural loop:
//
//   while (q.pop_wait(item, 50ms) != PopStatus::kClosed) { ... }
//
// Concurrency contract (compiler-enforced on Clang, see
// docs/static_analysis.md): every piece of ring state is GUARDED_BY
// mutex_; pop_locked REQUIRES it; the public entry points are EXCLUDES —
// calling them with mutex_ already held would self-deadlock, and on the
// registered lock order (docs/static_analysis.md §registry) this queue's
// mutex nests INSIDE SearchServer::state_mu_ and never the other way.
//
// Checked-build invariants (util/check.hpp, on under the sanitizer
// presets): occupancy never exceeds capacity, pops never outrun pushes,
// and every pop hands out the oldest queued item (global FIFO order,
// verified with per-item tickets).
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/check.hpp"
#include "util/error.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace finehmm {

/// Outcome of a timed blocking pop.
enum class PopStatus {
  kItem,     // an item was handed out
  kTimeout,  // queue stayed empty past the deadline (and is still open)
  kClosed,   // queue is closed AND fully drained: no item will ever come
};

template <class T>
class BoundedMpmcQueue {
 public:
  /// End-of-run telemetry, maintained under the ring mutex (a few
  /// integer bumps on operations that already pay the lock).  Invariants
  /// a drained run must satisfy: pops == pushes, push_failures counts
  /// rejected attempts only (ring full or queue closed), max_depth <=
  /// capacity.
  struct Stats {
    std::uint64_t pushes = 0;         // items accepted
    std::uint64_t pops = 0;           // items handed out
    std::uint64_t push_failures = 0;  // try_push calls rejected
    std::uint64_t max_depth = 0;      // high-water occupancy
  };

  explicit BoundedMpmcQueue(std::size_t capacity)
      : capacity_(capacity), ring_(capacity) {
    FH_REQUIRE(capacity >= 1, "queue capacity must be at least 1");
    FINEHMM_IF_CHECKS(tickets_.resize(capacity);)
  }

  std::size_t capacity() const noexcept { return capacity_; }

  /// Non-blocking push; false when the ring is full or the queue closed.
  bool try_push(const T& item) FINEHMM_EXCLUDES(mutex_) {
    {
      MutexLock lock(mutex_);
      if (closed_ || count_ == capacity_) {
        ++stats_.push_failures;
        return false;
      }
      const std::size_t slot = (head_ + count_) % capacity_;
      ring_[slot] = item;
      FINEHMM_IF_CHECKS(tickets_[slot] = next_push_ticket_++;)
      ++count_;
      ++stats_.pushes;
      if (count_ > stats_.max_depth) stats_.max_depth = count_;
      FINEHMM_CHECK(count_ <= capacity_,
                    "queue occupancy exceeded its capacity");
    }
    cv_.notify_one();
    return true;
  }

  /// Non-blocking pop; false when the ring is empty.
  bool try_pop(T& out) FINEHMM_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    if (count_ == 0) return false;
    pop_locked(out);
    return true;
  }

  /// Blocking pop with a deadline.  Returns kItem with `out` filled,
  /// kTimeout when the queue stayed empty past `timeout` (still open),
  /// or kClosed once the queue is closed and every accepted item has
  /// been handed out.  Items queued before close() are still delivered.
  PopStatus pop_wait(T& out, std::chrono::milliseconds timeout)
      FINEHMM_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    while (count_ == 0) {
      if (closed_) return PopStatus::kClosed;
      if (cv_.wait_until(mutex_, deadline) == std::cv_status::timeout) {
        if (count_ != 0) break;  // raced with a push at the deadline
        return closed_ ? PopStatus::kClosed : PopStatus::kTimeout;
      }
    }
    pop_locked(out);
    return PopStatus::kItem;
  }

  /// Close the queue: all future try_push calls fail, and once the ring
  /// drains, pop_wait returns kClosed instead of blocking.  Idempotent;
  /// wakes every waiting consumer.
  void close() FINEHMM_EXCLUDES(mutex_) {
    {
      MutexLock lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const FINEHMM_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return closed_;
  }

  bool empty() const FINEHMM_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return count_ == 0;
  }

  /// Instantaneous occupancy (items accepted and not yet popped) — the
  /// server's /statusz queue-depth gauge.
  std::size_t size() const FINEHMM_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return count_;
  }

  /// Snapshot of the lifetime counters.
  Stats stats() const FINEHMM_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    FINEHMM_CHECK(stats_.max_depth <= capacity_,
                  "queue high-water mark exceeded its capacity");
    return stats_;
  }

 private:
  /// Hand out the oldest item.  Caller holds the mutex; count_ > 0.
  void pop_locked(T& out) FINEHMM_REQUIRES(mutex_) {
    out = ring_[head_];
    ring_[head_] = T();  // release owning payloads (e.g. shared_ptr) eagerly
    // FIFO visibility: the item handed out must be the oldest accepted
    // one — its push ticket is exactly the number of pops so far.
    FINEHMM_CHECK(tickets_[head_] == next_pop_ticket_,
                  "queue FIFO order violated");
    FINEHMM_IF_CHECKS(++next_pop_ticket_;)
    head_ = (head_ + 1) % capacity_;
    --count_;
    ++stats_.pops;
    FINEHMM_CHECK(stats_.pops <= stats_.pushes,
                  "queue handed out more items than it accepted");
  }

  /// Fixed at construction; readable without the lock (capacity()).
  const std::size_t capacity_;

  mutable Mutex mutex_;
  std::vector<T> ring_ FINEHMM_GUARDED_BY(mutex_);
  std::size_t head_ FINEHMM_GUARDED_BY(mutex_) = 0;
  std::size_t count_ FINEHMM_GUARDED_BY(mutex_) = 0;
  bool closed_ FINEHMM_GUARDED_BY(mutex_) = false;
  Stats stats_ FINEHMM_GUARDED_BY(mutex_);
#if FINEHMM_CHECKS_ENABLED
  std::vector<std::uint64_t> tickets_ FINEHMM_GUARDED_BY(mutex_);
  std::uint64_t next_push_ticket_ FINEHMM_GUARDED_BY(mutex_) = 0;
  std::uint64_t next_pop_ticket_ FINEHMM_GUARDED_BY(mutex_) = 0;
#endif

  CondVar cv_;
};

}  // namespace finehmm
