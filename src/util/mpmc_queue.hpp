// Bounded multi-producer/multi-consumer queue.
//
// The overlapped-rescoring engine hands MSV survivors from filter workers
// to whichever worker goes idle first (the paper's third parallelism tier:
// a global work queue drained opportunistically).  The queue is a fixed
// ring under one mutex — at pipeline survivor rates (a few percent of the
// database) contention is negligible, and a bounded ring gives natural
// backpressure: try_push fails when full and the producer rescores one
// item itself instead of blocking ("help-first"), so the crew can never
// deadlock.
//
// Checked-build invariants (util/check.hpp, on under the sanitizer
// presets): occupancy never exceeds capacity, pops never outrun pushes,
// and every pop hands out the oldest queued item (global FIFO order,
// verified with per-item tickets).
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "util/check.hpp"
#include "util/error.hpp"

namespace finehmm {

template <class T>
class BoundedMpmcQueue {
 public:
  /// End-of-run telemetry, maintained under the ring mutex (a few
  /// integer bumps on operations that already pay the lock).  Invariants
  /// a drained run must satisfy: pops == pushes, push_failures counts
  /// rejected attempts only, max_depth <= capacity.
  struct Stats {
    std::uint64_t pushes = 0;         // items accepted
    std::uint64_t pops = 0;           // items handed out
    std::uint64_t push_failures = 0;  // try_push calls rejected (ring full)
    std::uint64_t max_depth = 0;      // high-water occupancy
  };

  explicit BoundedMpmcQueue(std::size_t capacity)
      : ring_(capacity) {
    FH_REQUIRE(capacity >= 1, "queue capacity must be at least 1");
    FINEHMM_IF_CHECKS(tickets_.resize(capacity);)
  }

  std::size_t capacity() const noexcept { return ring_.size(); }

  /// Non-blocking push; false when the ring is full.
  bool try_push(const T& item) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (count_ == ring_.size()) {
      ++stats_.push_failures;
      return false;
    }
    const std::size_t slot = (head_ + count_) % ring_.size();
    ring_[slot] = item;
    FINEHMM_IF_CHECKS(tickets_[slot] = next_push_ticket_++;)
    ++count_;
    ++stats_.pushes;
    if (count_ > stats_.max_depth) stats_.max_depth = count_;
    FINEHMM_CHECK(count_ <= ring_.size(),
                  "queue occupancy exceeded its capacity");
    return true;
  }

  /// Non-blocking pop; false when the ring is empty.
  bool try_pop(T& out) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (count_ == 0) return false;
    out = ring_[head_];
    // FIFO visibility: the item handed out must be the oldest accepted
    // one — its push ticket is exactly the number of pops so far.
    FINEHMM_CHECK(tickets_[head_] == next_pop_ticket_,
                  "queue FIFO order violated");
    FINEHMM_IF_CHECKS(++next_pop_ticket_;)
    head_ = (head_ + 1) % ring_.size();
    --count_;
    ++stats_.pops;
    FINEHMM_CHECK(stats_.pops <= stats_.pushes,
                  "queue handed out more items than it accepted");
    return true;
  }

  bool empty() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return count_ == 0;
  }

  /// Snapshot of the lifetime counters.
  Stats stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    FINEHMM_CHECK(stats_.max_depth <= ring_.size(),
                  "queue high-water mark exceeded its capacity");
    return stats_;
  }

 private:
  mutable std::mutex mutex_;
  std::vector<T> ring_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
  Stats stats_;
#if FINEHMM_CHECKS_ENABLED
  std::vector<std::uint64_t> tickets_;  // push serial per occupied slot
  std::uint64_t next_push_ticket_ = 0;
  std::uint64_t next_pop_ticket_ = 0;
#endif
};

}  // namespace finehmm
