// Deterministic pseudo-random number generation.
//
// All stochastic components of the library (synthetic databases, random
// profile HMMs, statistical calibration) draw from Pcg32 so that every
// experiment is reproducible from a seed.  The generator is O'Neill's
// PCG-XSH-RR 64/32.
#pragma once

#include <cstdint>
#include <vector>

namespace finehmm {

class Pcg32 {
 public:
  using result_type = std::uint32_t;

  explicit Pcg32(std::uint64_t seed = 0x853c49e6748fea9bULL,
                 std::uint64_t stream = 0xda3e39cb94b95bdbULL) {
    state_ = 0;
    inc_ = (stream << 1u) | 1u;
    next();
    state_ += seed;
    next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return 0xffffffffu; }

  result_type operator()() { return next(); }

  std::uint32_t next() {
    std::uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    std::uint32_t xorshifted =
        static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
    std::uint32_t rot = static_cast<std::uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
  }

  /// Uniform in [0, bound) without modulo bias.
  std::uint32_t below(std::uint32_t bound) {
    std::uint32_t threshold = (0u - bound) % bound;
    for (;;) {
      std::uint32_t r = next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform double in [0, 1).
  double uniform() { return next() * (1.0 / 4294967296.0); }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Standard normal via Box-Muller (cached second deviate).
  double gaussian();

  /// Log-normal with the given parameters of the underlying normal.
  double lognormal(double mu, double sigma) ;

  /// Exponential with rate lambda.
  double exponential(double lambda);

  /// Sample an index from an (unnormalized) weight vector.
  std::size_t categorical(const std::vector<double>& weights);

  /// Symmetric Dirichlet(alpha) sample of dimension k (normalized).
  std::vector<double> dirichlet(std::size_t k, double alpha);

  /// Gamma(shape, 1) via Marsaglia-Tsang.
  double gamma(double shape);

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
  bool has_cached_ = false;
  double cached_ = 0.0;
};

}  // namespace finehmm
