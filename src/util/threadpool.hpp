// Minimal fixed-size thread pool with a blocking parallel_for.
//
// The SIMT grid launcher uses this to execute thread-blocks concurrently on
// the host.  On a single-core machine it degrades gracefully to serial
// execution (the pool still provides correct semantics).
//
// Concurrency contract: mutex_ guards the task queue and the stop flag;
// the blocking entry points are EXCLUDES(mutex_) — they enqueue under the
// lock, then participate in the work themselves, and must never be
// entered with the pool lock already held (the enqueued bodies would
// deadlock against it).  See docs/static_analysis.md.
#pragma once

#include <cstddef>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace finehmm {

class ThreadPool {
 public:
  /// threads == 0 selects hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  /// Run fn(i) for i in [0, count), distributing chunks over the pool.
  /// Blocks until every index completed.  Exceptions from fn propagate to
  /// the caller (first one wins).
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& fn)
      FINEHMM_EXCLUDES(mutex_);

  /// Dynamic chunked scheduling: workers repeatedly grab the next `chunk`
  /// indices from a shared atomic cursor and call
  /// fn(worker, begin, end) for each grabbed range [begin, end).
  ///
  /// `worker` is a dense id in [0, workers()) stable for the duration of
  /// the call, so callers can own per-worker state (filter DP rows,
  /// scratch buffers) allocated once up front instead of per task — the
  /// CPU analogue of the paper's per-warp work queue.  `chunk` == 0 is
  /// treated as 1.  Small chunks keep long-sequence imbalance from
  /// serializing the tail; large chunks amortize the atomic traffic.
  /// Blocks until every index completed; exceptions propagate (first one
  /// wins).
  void parallel_for_chunked(
      std::size_t count, std::size_t chunk,
      const std::function<void(std::size_t worker, std::size_t begin,
                               std::size_t end)>& fn)
      FINEHMM_EXCLUDES(mutex_);

  /// Upper bound on the `worker` ids parallel_for_chunked passes to fn
  /// (pool threads + the participating caller).
  std::size_t workers() const noexcept { return workers_.size() + 1; }

  /// Run body(worker) exactly once on each of `n` participants (the caller
  /// plus up to n-1 pool threads), with dense worker ids in [0, n).  The
  /// bodies coordinate among themselves (shared cursors, queues); this is
  /// the primitive the overlapped-rescoring engine builds its
  /// producer/consumer crew on.  n is clamped to [1, workers()].  Blocks
  /// until every body returned; exceptions propagate (first one wins).
  void run_workers(std::size_t n,
                   const std::function<void(std::size_t worker)>& body)
      FINEHMM_EXCLUDES(mutex_);

 private:
  void worker_loop();

  /// Worker threads: written only by the constructor, joined by the
  /// destructor; size() reads are safe once construction completes.
  std::vector<std::thread> workers_;

  Mutex mutex_;
  std::queue<std::function<void()>> tasks_ FINEHMM_GUARDED_BY(mutex_);
  bool stop_ FINEHMM_GUARDED_BY(mutex_) = false;

  CondVar cv_;
};

}  // namespace finehmm
