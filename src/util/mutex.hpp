// The annotated mutex wrapper every lock-bearing component uses.
//
// std::mutex carries no capability metadata, so Clang's thread-safety
// analysis cannot reason about it.  util::Mutex is a zero-cost wrapper
// (one std::mutex member, all methods inline forwards) whose lock/unlock
// surface is annotated with the capability attributes from
// util/thread_annotations.hpp; util::MutexLock is the RAII holder the
// codebase uses instead of std::lock_guard, and util::CondVar replaces
// std::condition_variable with waits that are REQUIRES-annotated against
// the wrapped mutex (the wait releases and reacquires internally; the
// capability is held at entry and at exit, which is exactly what the
// analysis needs to keep checking guarded accesses around the wait).
//
// Raw std::mutex / std::lock_guard / std::condition_variable are banned
// everywhere else under src/ by the `raw-mutex` lint rule
// (tools/finehmm_lint, docs/static_analysis.md) — this file is the one
// sanctioned exception.
//
// Style (docs/static_analysis.md has the full guide):
//   * every member a mutex guards is declared directly after it and
//     carries FINEHMM_GUARDED_BY(that_mutex) — the `guarded-by` lint
//     rule enforces the adjacency;
//   * private helpers called with the lock held are FINEHMM_REQUIRES;
//   * public methods that take the lock themselves are FINEHMM_EXCLUDES
//     where self-deadlock is plausible (re-entry, callbacks);
//   * condition waits are explicit `while (!pred) cv.wait(mu);` loops so
//     the guarded predicate reads stay inside the annotated function
//     (lambda predicates are analyzed as separate unannotated functions
//     and would escape the contract).
#pragma once

// finehmm-lint: allow-file(raw-mutex) -- this IS the sanctioned wrapper

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.hpp"

namespace finehmm {

/// A std::mutex with a capability the analysis can track.  Same cost,
/// same semantics; BasicLockable, so it still composes with std library
/// helpers where needed (inside this file only).
class FINEHMM_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() FINEHMM_ACQUIRE() { raw_.lock(); }
  void unlock() FINEHMM_RELEASE() { raw_.unlock(); }
  bool try_lock() FINEHMM_TRY_ACQUIRE(true) { return raw_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex raw_;
};

/// RAII holder: the std::lock_guard replacement.  Scoped-capability
/// annotated, so the analysis knows the capability is held from
/// construction to end of scope (including early returns).
class FINEHMM_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) FINEHMM_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() FINEHMM_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable bound to util::Mutex.  wait()/wait_until() carry
/// FINEHMM_REQUIRES(mu): the caller holds mu at entry, the wait
/// atomically releases it while blocking and reacquires before
/// returning, so the caller's guarded accesses on both sides of the
/// call remain valid under the same capability.  notify_one/notify_all
/// need no capability (notifying without the lock is legal and the
/// codebase does it deliberately after dropping write scopes).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(Mutex& mu) FINEHMM_REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.raw_, std::adopt_lock);
    cv_.wait(native);
    native.release();  // ownership stays with the caller's MutexLock
  }

  template <class Clock, class Duration>
  std::cv_status wait_until(
      Mutex& mu, const std::chrono::time_point<Clock, Duration>& deadline)
      FINEHMM_REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.raw_, std::adopt_lock);
    const std::cv_status status = cv_.wait_until(native, deadline);
    native.release();
    return status;
  }

  template <class Rep, class Period>
  std::cv_status wait_for(Mutex& mu,
                          const std::chrono::duration<Rep, Period>& timeout)
      FINEHMM_REQUIRES(mu) {
    return wait_until(mu, std::chrono::steady_clock::now() + timeout);
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace finehmm
