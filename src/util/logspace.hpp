// Log-space arithmetic for the Forward/Backward algorithms.
//
// HMMER 3.0 computes Forward scores as total log-likelihood ratios; the
// inner loop needs log(exp(a) + exp(b)) ("logsum").  Like HMMER's
// p7_FLogsum, we provide a table-driven approximation (fast, ~1e-3 nat
// accuracy) alongside an exact version used by reference code and tests.
#pragma once

#include <cmath>
#include <limits>

namespace finehmm {

/// -infinity stand-in for impossible states in log space.
inline constexpr float kNegInf = -std::numeric_limits<float>::infinity();

/// Exact log(exp(a) + exp(b)); safe for -inf arguments.
inline float logsum_exact(float a, float b) {
  if (a == kNegInf) return b;
  if (b == kNegInf) return a;
  float hi = a > b ? a : b;
  float lo = a > b ? b : a;
  return hi + std::log1p(std::exp(lo - hi));
}

/// Table-driven logsum, HMMER-style.
///
/// log(exp(a)+exp(b)) = max + log(1 + exp(-(max-min))); the correction term
/// is tabulated on [0, kTableWidth) nats.  Beyond the table width the
/// correction is below float resolution.
class LogSumTable {
 public:
  static constexpr float kTableWidth = 23.0f;  // exp(-23) ~ 1e-10
  static constexpr int kTableSize = 16000;

  LogSumTable();

  float operator()(float a, float b) const {
    if (a == kNegInf) return b;
    if (b == kNegInf) return a;
    float d = a - b;
    float hi = d >= 0.0f ? a : b;
    float ad = d >= 0.0f ? d : -d;
    if (ad >= kTableWidth) return hi;
    return hi + table_[static_cast<int>(ad * kScale)];
  }

  /// Process-wide instance (construction is cheap and thread-safe).
  static const LogSumTable& instance();

 private:
  static constexpr float kScale = kTableSize / kTableWidth;
  float table_[kTableSize];
};

/// Convenience wrapper over the shared table.
inline float logsum(float a, float b) { return LogSumTable::instance()(a, b); }

}  // namespace finehmm
