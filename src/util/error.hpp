// Error handling primitives shared across the library.
//
// The library throws `finehmm::Error` (an std::runtime_error) for
// recoverable API misuse and file-format problems.  Internal invariants use
// FH_ASSERT, which is compiled in all build types: this is scientific code,
// a silently wrong score is worse than a crash.
#pragma once

#include <stdexcept>
#include <string>

namespace finehmm {

/// Base exception for all library errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a file cannot be opened, read, written or mapped.  Tools
/// map this to a distinct exit code (examples/tool_exit.hpp) so scripts
/// can tell "file missing/unwritable" from a domain failure.
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error(what) {}
};

/// Thrown when parsing a file (FASTA, .hmm) fails.
class ParseError : public Error {
 public:
  ParseError(const std::string& what, std::size_t line)
      : Error(what + " (line " + std::to_string(line) + ")"), line_(line) {}
  std::size_t line() const noexcept { return line_; }

 private:
  std::size_t line_;
};

namespace detail {
[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line) {
  throw Error(std::string("assertion failed: ") + expr + " at " + file + ":" +
              std::to_string(line));
}
}  // namespace detail

}  // namespace finehmm

/// Always-on invariant check; throws finehmm::Error on failure.
#define FH_ASSERT(expr)                                           \
  do {                                                            \
    if (!(expr))                                                  \
      ::finehmm::detail::assert_fail(#expr, __FILE__, __LINE__);  \
  } while (0)

/// Precondition check with a custom message.
#define FH_REQUIRE(expr, msg)                                \
  do {                                                       \
    if (!(expr)) throw ::finehmm::Error(msg);                \
  } while (0)

/// As FH_REQUIRE, but failures surface as IoError (file open/read/write
/// problems — anything a retry with a fixed path could cure).
#define FH_REQUIRE_IO(expr, msg)                             \
  do {                                                       \
    if (!(expr)) throw ::finehmm::IoError(msg);              \
  } while (0)
