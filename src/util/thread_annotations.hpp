// Clang thread-safety capability annotations (compiler-enforced
// concurrency contracts).
//
// The daemon's locking discipline — which mutex guards which state,
// which functions may/must hold which locks, where a lock is dropped to
// run a callback — used to live in comments ("// stats_ and telemetry_")
// that TSan could only falsify when a test happened to schedule the bad
// interleaving.  These macros turn that discipline into declarations the
// compiler checks on EVERY build: Clang's -Wthread-safety analysis
// (enabled automatically in all Clang configurations, promoted to an
// error under FINEHMM_WERROR) rejects a guarded read without the lock,
// an unbalanced acquire/release, or a callback invoked with a lock the
// contract excludes.  See docs/static_analysis.md for the capability
// model and the annotation style guide.
//
// On non-Clang compilers every macro expands to nothing, so GCC builds
// are byte-identical to before the rollout (tests/test_thread_annotations
// compile-asserts this).  The annotated util::Mutex / util::MutexLock /
// util::CondVar wrappers live in util/mutex.hpp; raw std::mutex is
// banned outside that wrapper by the `raw-mutex` lint rule.
#pragma once

// Attribute spelling gate: Clang defines the thread-safety attributes;
// everything else gets an empty expansion.  SWIG and other tooling that
// chokes on GNU attributes is excluded the same way abseil does it.
#if defined(__clang__) && !defined(SWIG)
#define FINEHMM_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define FINEHMM_THREAD_ANNOTATION_(x)
#endif

// --- Data annotations ---------------------------------------------------

/// The declared variable is protected by capability `x`: reads require
/// `x` held (shared or exclusive), writes require it exclusively.
#define FINEHMM_GUARDED_BY(x) FINEHMM_THREAD_ANNOTATION_(guarded_by(x))

/// The data POINTED TO by the declared pointer is protected by `x` (the
/// pointer itself may be read freely).
#define FINEHMM_PT_GUARDED_BY(x) FINEHMM_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Declared lock-order edges between capability members; the registry
/// table in docs/static_analysis.md is the authoritative total order
/// (machine-checked by the `lock-order` lint rule).
#define FINEHMM_ACQUIRED_BEFORE(...) \
  FINEHMM_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define FINEHMM_ACQUIRED_AFTER(...) \
  FINEHMM_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

// --- Type annotations ---------------------------------------------------

/// The annotated class is a capability (a lock).  `x` names the kind in
/// diagnostics, conventionally "mutex".
#define FINEHMM_CAPABILITY(x) FINEHMM_THREAD_ANNOTATION_(capability(x))

/// The annotated class is an RAII holder of a capability (its
/// constructor acquires, its destructor releases).
#define FINEHMM_SCOPED_CAPABILITY FINEHMM_THREAD_ANNOTATION_(scoped_lockable)

// --- Function annotations -----------------------------------------------

/// Caller must hold the named capabilities (exclusively) at entry, and
/// still holds them at exit.  This is also the contract for a
/// condition-variable wait: the wait releases and reacquires internally,
/// but from the caller's (and the analysis') point of view the lock is
/// held across the call.
#define FINEHMM_REQUIRES(...) \
  FINEHMM_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define FINEHMM_REQUIRES_SHARED(...) \
  FINEHMM_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

/// The function acquires the capability (must not be held at entry,
/// held at exit).  No-argument form on a member: acquires `this`.
#define FINEHMM_ACQUIRE(...) \
  FINEHMM_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// The function releases the capability (held at entry, not at exit).
#define FINEHMM_RELEASE(...) \
  FINEHMM_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// The function acquires the capability iff it returns `b`.
#define FINEHMM_TRY_ACQUIRE(...) \
  FINEHMM_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/// Caller must NOT hold the named capabilities: the function acquires
/// them itself (self-deadlock fence), or invokes callbacks/blocking
/// work that must run lock-free — e.g. the coalescer's sweep path,
/// which must never be entered with the server's state lock held.
#define FINEHMM_EXCLUDES(...) \
  FINEHMM_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Assert (at runtime, for the analysis' benefit) that the capability
/// is held — for code reachable only from holders the analysis can't
/// see through (e.g. a callback contractually invoked under the lock).
#define FINEHMM_ASSERT_CAPABILITY(x) \
  FINEHMM_THREAD_ANNOTATION_(assert_capability(x))

/// The function returns a reference to the named capability.
#define FINEHMM_RETURN_CAPABILITY(x) \
  FINEHMM_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch: disable the analysis for one function.  Every use must
/// carry a comment saying why the contract cannot be expressed.
#define FINEHMM_NO_THREAD_SAFETY_ANALYSIS \
  FINEHMM_THREAD_ANNOTATION_(no_thread_safety_analysis)
