// Striped probability-space profile for the float Forward filter.
//
// The Forward stage sums over all alignments, so it runs in probability
// (odds-ratio) space rather than log space: emissions are odds
// exp(msc) = mat/bg, transitions are plain probabilities, and underflow
// over long targets is handled by the filter's per-row rescaling (the
// profile just supplies the numbers).  Layout mirrors VitProfile's
// striping with 4 float lanes; "in"-indexed D arrays target position k.
#pragma once

#include <cmath>

#include "hmm/profile.hpp"
#include "util/aligned.hpp"

namespace finehmm::profile {

class FwdProfile {
 public:
  static constexpr int kLanes = 4;  // floats per 128-bit SIMD vector

  FwdProfile() = default;
  explicit FwdProfile(const hmm::SearchProfile& prof);

  int length() const noexcept { return M_; }
  int striped_segments() const noexcept { return Q_; }

  /// Striped emission odds of alphabet code x; rows are Q*kLanes long.
  const float* odds_striped(int x) const {
    return odds_.data() + static_cast<std::size_t>(x) * Q_ * kLanes;
  }
  const float* tmm_striped() const { return tmm_.data(); }
  const float* tim_striped() const { return tim_.data(); }
  const float* tdm_striped() const { return tdm_.data(); }
  const float* tmi_striped() const { return tmi_.data(); }
  const float* tii_striped() const { return tii_.data(); }
  const float* tmd_in_striped() const { return tmd_in_.data(); }
  const float* tdd_in_striped() const { return tdd_in_.data(); }

  /// Uniform local entry probability 2/(M(M+1)).
  float entry() const noexcept { return entry_; }

  /// Length-model probabilities for one target length.
  struct LengthModel {
    float loop;    // N/C/J self loop
    float move;    // N->B, J->B, C->T
    float e_c;     // E->C
    float e_j;     // E->J
  };
  LengthModel length_model_for(int L) const;

 private:
  int M_ = 0;
  int Q_ = 0;
  float entry_ = 0.0f;
  aligned_vector<float> odds_;  // Kp x (Q*4)
  aligned_vector<float> tmm_, tim_, tdm_, tmi_, tii_;  // striped, Q*4
  aligned_vector<float> tmd_in_, tdd_in_;              // striped, Q*4
};

/// Number of 4-lane stripes for model length M.
inline int fwd_segments(int M) {
  return (M + FwdProfile::kLanes - 1) / FwdProfile::kLanes;
}

}  // namespace finehmm::profile
