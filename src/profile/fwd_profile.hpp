// Striped probability-space profile for the float Forward filter.
//
// The Forward stage sums over all alignments, so it runs in probability
// (odds-ratio) space rather than log space: emissions are odds
// exp(msc) = mat/bg, transitions are plain probabilities, and underflow
// over long targets is handled by the filter's per-row rescaling (the
// profile just supplies the numbers).  Layout mirrors VitProfile's
// striping with 4 float lanes; "in"-indexed D arrays target position k.
// The 4-lane arrays are the narrow-tier base layout; wider tiers
// re-stripe them per lane count through the per-position accessors (see
// cpu/fwd_wide.hpp).
#pragma once

#include <cmath>

#include "hmm/profile.hpp"
#include "util/aligned.hpp"

namespace finehmm::profile {

class FwdProfile {
 public:
  static constexpr int kLanes = 4;  // floats per 128-bit SIMD vector

  FwdProfile() = default;
  explicit FwdProfile(const hmm::SearchProfile& prof);

  int length() const noexcept { return M_; }
  int striped_segments() const noexcept { return Q_; }

  /// Striped emission odds of alphabet code x; rows are Q*kLanes long.
  const float* odds_striped(int x) const {
    return odds_.data() + static_cast<std::size_t>(x) * Q_ * kLanes;
  }
  const float* tmm_striped() const { return tmm_.data(); }
  const float* tim_striped() const { return tim_.data(); }
  const float* tdm_striped() const { return tdm_.data(); }
  const float* tmi_striped() const { return tmi_.data(); }
  const float* tii_striped() const { return tii_.data(); }
  const float* tmd_in_striped() const { return tmd_in_.data(); }
  const float* tdd_in_striped() const { return tdd_in_.data(); }

  /// Uniform local entry probability 2/(M(M+1)).
  float entry() const noexcept { return entry_; }

  // Per-position (1-based k, 1 <= k <= length()) parameter reads that
  // de-stripe the 4-lane base layout; cpu::WideFwdStripes uses these to
  // re-stripe the profile for any tier lane count.
  float odds_at(int x, int k) const {
    return odds_[static_cast<std::size_t>(x) * Q_ * kLanes + slot(k)];
  }
  float tmm_at(int k) const { return tmm_[slot(k)]; }
  float tim_at(int k) const { return tim_[slot(k)]; }
  float tdm_at(int k) const { return tdm_[slot(k)]; }
  float tmi_at(int k) const { return tmi_[slot(k)]; }
  float tii_at(int k) const { return tii_[slot(k)]; }
  float tmd_in_at(int k) const { return tmd_in_[slot(k)]; }
  float tdd_in_at(int k) const { return tdd_in_[slot(k)]; }

  /// Length-model probabilities for one target length.
  struct LengthModel {
    float loop;    // N/C/J self loop
    float move;    // N->B, J->B, C->T
    float e_c;     // E->C
    float e_j;     // E->J
  };
  LengthModel length_model_for(int L) const;

 private:
  std::size_t slot(int k) const {  // 1-based position -> striped index
    const int q = (k - 1) % Q_;
    const int j = (k - 1) / Q_;
    return static_cast<std::size_t>(q) * kLanes + j;
  }

  int M_ = 0;
  int Q_ = 0;
  float entry_ = 0.0f;
  aligned_vector<float> odds_;  // Kp x (Q*4)
  aligned_vector<float> tmm_, tim_, tdm_, tmi_, tii_;  // striped, Q*4
  aligned_vector<float> tmd_in_, tdd_in_;              // striped, Q*4
};

/// Number of `lanes`-float stripes for model length M.
inline int fwd_segments_for(int M, int lanes) {
  return (M + lanes - 1) / lanes;
}

/// Number of 4-lane stripes for model length M (the base layout).
inline int fwd_segments(int M) {
  return fwd_segments_for(M, FwdProfile::kLanes);
}

}  // namespace finehmm::profile
