// The 8-bit MSV filter profile (HMMER 3.0's byte scoring system).
//
// Scores are kept in 1/3-bit units (scale = 3/ln2 per nat) as *costs*
// offset by a bias so that a saturating unsigned-byte DP can evaluate the
// MSV model: cell update is  new = sat_sub(sat_add(old, bias), cost).
// The byte DP cannot afford per-row N/C/J loop costs (they round to zero at
// this precision), so like HMMER it prices them with a constant -3 nat
// correction (the L->inf limit of L*log(L/(L+3))) applied at score
// recovery.
//
// Two parameter layouts are produced:
//   * linear   — cost[x][k], what the GPU kernels stream ("global memory")
//   * striped  — Farrar layout for the 16-lane CPU SIMD filter, position
//                k (1-based) lives in vector q=(k-1)%Q, lane j=(k-1)/Q.
#pragma once

#include <cstdint>

#include "hmm/profile.hpp"
#include "util/aligned.hpp"

namespace finehmm::profile {

class MsvProfile {
 public:
  static constexpr std::uint8_t kBase = 190;
  static constexpr int kLanes = 16;  // bytes per 128-bit SIMD vector

  MsvProfile() = default;
  explicit MsvProfile(const hmm::SearchProfile& prof);

  int length() const noexcept { return M_; }
  /// Model length rounded up to a whole number of warp chunks (32); the
  /// GPU linear layout is padded to this with cost 255 ("wasteful cells")
  /// so warp loads never need masking.
  int padded_length() const noexcept { return Mpad_; }
  int striped_segments() const noexcept { return Q_; }
  int target_length() const noexcept { return L_; }
  float scale() const noexcept { return scale_; }
  std::uint8_t base() const noexcept { return kBase; }
  std::uint8_t bias() const noexcept { return bias_; }
  std::uint8_t tbm() const noexcept { return tbm_; }
  std::uint8_t tec() const noexcept { return tec_; }
  std::uint8_t tjb() const noexcept { return tjb_; }

  /// Re-derive the length-dependent move cost (N/J -> B and C -> T).
  void reconfig_length(int L);

  /// Pure per-length variant of tjb (filters call this with each target
  /// sequence's length; the stored tjb() is just the configured default).
  std::uint8_t tjb_for(int L) const;

  /// Linear biased emission cost of code x at model position k (1..M).
  std::uint8_t cost(int x, int k) const {
    return linear_[static_cast<std::size_t>(x) * Mpad_ + (k - 1)];
  }
  /// Row pointer for a residue code, length padded_length() (GPU layout).
  const std::uint8_t* linear_row(int x) const {
    return linear_.data() + static_cast<std::size_t>(x) * Mpad_;
  }
  /// Striped row pointer for a residue code, length Q*16 (CPU layout).
  const std::uint8_t* striped_row(int x) const {
    return striped_.data() + static_cast<std::size_t>(x) * Q_ * kLanes;
  }

  /// Total parameter bytes (what a GPU would stage into shared memory).
  std::size_t parameter_bytes() const noexcept { return linear_.size(); }

  /// True if the row maximum xE saturated; the sequence certainly passes.
  bool overflowed(std::uint8_t xE) const noexcept {
    return xE >= 255 - bias_;
  }

  /// Convert the final xJ byte back to a raw score in nats, for a target
  /// of length L (the C->T move costs the same tjb as N/J -> B).
  float score_from_bytes(std::uint8_t xJ, int L) const {
    return (static_cast<float>(xJ) - static_cast<float>(tjb_for(L)) -
            static_cast<float>(kBase)) /
               scale_ -
           3.0f;
  }
  float score_from_bytes(std::uint8_t xJ) const {
    return score_from_bytes(xJ, L_);
  }

 private:
  int M_ = 0;
  int Mpad_ = 0;
  int Q_ = 0;
  int L_ = 0;
  float scale_ = 0.0f;
  std::uint8_t bias_ = 0;
  std::uint8_t tbm_ = 0;  // B -> M_k entry cost (uniform 2/(M(M+1)))
  std::uint8_t tec_ = 0;  // E -> C/J cost (log 1/2)
  std::uint8_t tjb_ = 0;  // N/J -> B move cost (log 3/(L+3))
  aligned_vector<std::uint8_t> linear_;   // Kp x M
  aligned_vector<std::uint8_t> striped_;  // Kp x (Q*16)
};

/// Number of 16-lane stripes for model length M.
inline int msv_segments(int M) { return (M + MsvProfile::kLanes - 1) / MsvProfile::kLanes; }

}  // namespace finehmm::profile
