#include "profile/msv_profile.hpp"

#include <cmath>

#include "util/error.hpp"

namespace finehmm::profile {

namespace {

/// Cost representation of a (negative) score: round(-scale * sc), clamped.
std::uint8_t unbiased_byteify(float scale, float sc) {
  if (sc == kNegInf) return 255;
  float c = std::round(-scale * sc);
  if (c < 0.0f) c = 0.0f;
  if (c > 255.0f) c = 255.0f;
  return static_cast<std::uint8_t>(c);
}

/// Biased cost for emission scores (positive scores dip below the bias).
std::uint8_t biased_byteify(float scale, std::uint8_t bias, float sc) {
  if (sc == kNegInf) return 255;
  float c = std::round(-scale * sc) + static_cast<float>(bias);
  if (c < 0.0f) c = 0.0f;
  if (c > 255.0f) c = 255.0f;
  return static_cast<std::uint8_t>(c);
}

}  // namespace

MsvProfile::MsvProfile(const hmm::SearchProfile& prof)
    : M_(prof.length()),
      Mpad_((prof.length() + 31) / 32 * 32),
      Q_(msv_segments(prof.length())) {
  FH_REQUIRE(hmm::is_local(prof.mode()),
             "vectorized filters are local-mode only (as in HMMER)");
  scale_ = 3.0f / static_cast<float>(M_LN2);  // 1/3-bit units per nat
  // The bias must cover the most POSITIVE emission score so that biased
  // costs are non-negative; scores far below -(255-bias)/scale simply clip
  // to cost 255 (effectively -inf), which is harmless for a max filter.
  bias_ = unbiased_byteify(scale_, -prof.max_emission_score());
  float entry = std::log(2.0f / (static_cast<float>(M_) *
                                 (static_cast<float>(M_) + 1.0f)));
  tbm_ = unbiased_byteify(scale_, entry);
  tec_ = unbiased_byteify(scale_, std::log(0.5f));

  linear_.assign(static_cast<std::size_t>(bio::kKp) * Mpad_, 255);
  striped_.assign(static_cast<std::size_t>(bio::kKp) * Q_ * kLanes, 255);
  for (int x = 0; x < bio::kKp; ++x) {
    for (int k = 1; k <= M_; ++k) {
      std::uint8_t c = biased_byteify(scale_, bias_, prof.msc(k, x));
      linear_[static_cast<std::size_t>(x) * Mpad_ + (k - 1)] = c;
      int q = (k - 1) % Q_;
      int j = (k - 1) / Q_;
      striped_[static_cast<std::size_t>(x) * Q_ * kLanes + q * kLanes + j] = c;
    }
  }
  reconfig_length(prof.target_length());
}

std::uint8_t MsvProfile::tjb_for(int L) const {
  FH_REQUIRE(L >= 1, "target length must be >= 1");
  float lf = static_cast<float>(L);
  return unbiased_byteify(scale_, std::log(3.0f / (lf + 3.0f)));
}

void MsvProfile::reconfig_length(int L) {
  L_ = L;
  tjb_ = tjb_for(L);
}

}  // namespace finehmm::profile
