#include "profile/fwd_profile.hpp"

#include "util/error.hpp"
#include "util/logspace.hpp"

namespace finehmm::profile {

namespace {

float prob_of(float log_score) {
  return log_score == kNegInf ? 0.0f : std::exp(log_score);
}

}  // namespace

FwdProfile::FwdProfile(const hmm::SearchProfile& prof)
    : M_(prof.length()), Q_(fwd_segments(prof.length())) {
  FH_REQUIRE(hmm::is_local(prof.mode()),
             "vectorized filters are local-mode only (as in HMMER)");
  const std::size_t row = static_cast<std::size_t>(Q_) * kLanes;
  odds_.assign(static_cast<std::size_t>(bio::kKp) * row, 0.0f);
  tmm_.assign(row, 0.0f);
  tim_.assign(row, 0.0f);
  tdm_.assign(row, 0.0f);
  tmi_.assign(row, 0.0f);
  tii_.assign(row, 0.0f);
  tmd_in_.assign(row, 0.0f);
  tdd_in_.assign(row, 0.0f);

  // slot(k) is the private 1-based position -> striped index helper.
  for (int x = 0; x < bio::kKp; ++x)
    for (int k = 1; k <= M_; ++k)
      odds_[static_cast<std::size_t>(x) * row + slot(k)] =
          prob_of(prof.msc(k, x));

  entry_ = prob_of(prof.tsc(0, hmm::kPTBM));

  for (int k = 1; k <= M_; ++k) {
    tmm_[slot(k)] = prob_of(prof.tsc(k - 1, hmm::kPTMM));
    tim_[slot(k)] = prob_of(prof.tsc(k - 1, hmm::kPTIM));
    tdm_[slot(k)] = prob_of(prof.tsc(k - 1, hmm::kPTDM));
    if (k < M_) {
      tmi_[slot(k)] = prob_of(prof.tsc(k, hmm::kPTMI));
      tii_[slot(k)] = prob_of(prof.tsc(k, hmm::kPTII));
    }
    if (k >= 2) {
      tmd_in_[slot(k)] = prob_of(prof.tsc(k - 1, hmm::kPTMD));
      tdd_in_[slot(k)] = prob_of(prof.tsc(k - 1, hmm::kPTDD));
    }
  }
}

FwdProfile::LengthModel FwdProfile::length_model_for(int L) const {
  FH_REQUIRE(L >= 1, "target length must be >= 1");
  float lf = static_cast<float>(L);
  LengthModel lm;
  lm.loop = lf / (lf + 3.0f);
  lm.move = 3.0f / (lf + 3.0f);
  lm.e_c = 0.5f;
  lm.e_j = 0.5f;
  return lm;
}

}  // namespace finehmm::profile
