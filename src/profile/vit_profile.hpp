// The 16-bit ViterbiFilter profile (HMMER 3.0's word scoring system).
//
// Scores are signed 16-bit words in 1/500-bit units (scale = 500/ln2 per
// nat) relative to a base of 12000.  -32768 is the "-infinity" sentinel and
// is sticky under the library-wide saturating add (see sat_add_word): once
// a path is impossible it stays impossible.  Unlike the byte MSV profile,
// word precision is fine enough to charge the N/C/J loop costs exactly, so
// no constant-correction fudge is needed at score recovery.
//
// Layouts:
//   * linear  — per-position arrays indexed by model position (GPU layout)
//   * striped — Farrar layout for the 8-lane CPU SIMD filter; "incoming"
//     transition stripes (tmm/tim/tdm into position k) and "outgoing"
//     stripes (tmd/tdd leaving position k) are kept separately because the
//     D recurrence propagates within the row.
#pragma once

#include <cstdint>

#include "hmm/profile.hpp"
#include "util/aligned.hpp"

namespace finehmm::profile {

/// -infinity sentinel of the word scoring system.
inline constexpr std::int16_t kWordNegInf = -32768;

/// Saturating signed-16 add with a sticky -inf floor.  Every Viterbi
/// implementation in the library (scalar, striped, SIMT) uses this exact
/// function so their scores agree bit-for-bit.
inline std::int16_t sat_add_word(std::int16_t a, std::int16_t b) {
  if (a == kWordNegInf || b == kWordNegInf) return kWordNegInf;
  int v = static_cast<int>(a) + static_cast<int>(b);
  if (v < -32767) return -32767;  // reserve -32768 for -inf proper
  if (v > 32767) return 32767;
  return static_cast<std::int16_t>(v);
}

class VitProfile {
 public:
  static constexpr std::int16_t kBase = 12000;
  static constexpr int kLanes = 8;  // int16 per 128-bit SIMD vector

  VitProfile() = default;
  explicit VitProfile(const hmm::SearchProfile& prof);

  int length() const noexcept { return M_; }
  /// Model length rounded up to whole warp chunks (32); GPU linear arrays
  /// are padded to this with -inf so warp loads never need masking.
  int padded_length() const noexcept { return Mpad_; }
  int striped_segments() const noexcept { return Q_; }
  int target_length() const noexcept { return L_; }
  float scale() const noexcept { return scale_; }

  void reconfig_length(int L);

  /// Length model word costs for one target length (pure; filters call
  /// this per sequence instead of mutating the profile).
  struct LengthModel {
    std::int16_t loop;  // N/C/J self loop
    std::int16_t move;  // N/C/J move (N->B, J->B, C->T)
  };
  LengthModel length_model_for(int L) const;

  /// --- linear (per-position) accessors; k is 1-based ---
  std::int16_t msc(int x, int k) const {
    return msc_[static_cast<std::size_t>(x) * Mpad_ + (k - 1)];
  }
  const std::int16_t* msc_row(int x) const {
    return msc_.data() + static_cast<std::size_t>(x) * Mpad_;
  }
  /// Incoming transition costs into position k (from node k-1).
  std::int16_t tmm_in(int k) const { return tmm_[k - 1]; }
  std::int16_t tim_in(int k) const { return tim_[k - 1]; }
  std::int16_t tdm_in(int k) const { return tdm_[k - 1]; }
  const std::int16_t* tmm_data() const { return tmm_.data(); }
  const std::int16_t* tim_data() const { return tim_.data(); }
  const std::int16_t* tdm_data() const { return tdm_.data(); }
  /// Costs at node k: M->I and I->I (inserts exist for k = 1..M-1).
  std::int16_t tmi_at(int k) const { return tmi_[k - 1]; }
  std::int16_t tii_at(int k) const { return tii_[k - 1]; }
  const std::int16_t* tmi_data() const { return tmi_.data(); }
  const std::int16_t* tii_data() const { return tii_.data(); }
  /// Costs leaving node k toward D_{k+1}.
  std::int16_t tmd_out(int k) const { return tmd_[k - 1]; }
  std::int16_t tdd_out(int k) const { return tdd_[k - 1]; }
  const std::int16_t* tmd_data() const { return tmd_.data(); }
  const std::int16_t* tdd_data() const { return tdd_.data(); }
  /// Target-indexed variants for the warp kernels: cost of reaching D_k
  /// from M_{k-1} / D_{k-1} stored at index k-1 (so a warp chunk starting
  /// at position p0 loads index p0+lane directly).
  const std::int16_t* tmd_in_data() const { return tmd_in_.data(); }
  const std::int16_t* tdd_in_data() const { return tdd_in_.data(); }

  /// Uniform local entry cost (B -> M_k).
  std::int16_t entry() const noexcept { return entry_; }

  /// Special-state word costs of the length model.
  std::int16_t n_loop() const noexcept { return n_loop_; }
  std::int16_t n_move() const noexcept { return n_move_; }
  std::int16_t e_c() const noexcept { return e_c_; }
  std::int16_t e_j() const noexcept { return e_j_; }
  std::int16_t c_loop() const noexcept { return c_loop_; }
  std::int16_t c_move() const noexcept { return c_move_; }
  std::int16_t j_loop() const noexcept { return j_loop_; }
  std::int16_t j_move() const noexcept { return j_move_; }

  /// --- striped accessors (CPU SIMD layout); rows are Q*kLanes long ---
  const std::int16_t* msc_striped(int x) const {
    return msc_str_.data() + static_cast<std::size_t>(x) * Q_ * kLanes;
  }
  const std::int16_t* tmm_striped() const { return tmm_str_.data(); }
  const std::int16_t* tim_striped() const { return tim_str_.data(); }
  const std::int16_t* tdm_striped() const { return tdm_str_.data(); }
  const std::int16_t* tmi_striped() const { return tmi_str_.data(); }
  const std::int16_t* tii_striped() const { return tii_str_.data(); }
  const std::int16_t* tmd_striped() const { return tmd_str_.data(); }
  const std::int16_t* tdd_striped() const { return tdd_str_.data(); }

  /// Total parameter bytes (shared-memory staging size on a GPU): the
  /// padded emission table plus the seven padded transition arrays the
  /// kernel actually reads.
  std::size_t parameter_bytes() const noexcept {
    return (msc_.size() + tmm_.size() + tim_.size() + tdm_.size() +
            tmi_.size() + tii_.size() + tmd_in_.size() + tdd_in_.size()) *
           sizeof(std::int16_t);
  }

  /// Convert a final xC word to a raw score in nats (-inf if no path).
  /// The C->T move cost of the given length model is charged here.
  float score_from_words(std::int16_t xC, const LengthModel& lm) const {
    if (xC == kWordNegInf) return kNegInf;
    std::int16_t final = sat_add_word(xC, lm.move);
    return (static_cast<float>(final) - static_cast<float>(kBase)) / scale_;
  }
  float score_from_words(std::int16_t xC) const {
    return score_from_words(xC, LengthModel{c_loop_, c_move_});
  }

 private:
  std::int16_t wordify(float sc) const;
  void stripe_all();

  int M_ = 0;
  int Mpad_ = 0;
  int Q_ = 0;
  int L_ = 0;
  float scale_ = 0.0f;
  std::int16_t entry_ = kWordNegInf;
  std::int16_t n_loop_ = 0, n_move_ = 0, e_c_ = 0, e_j_ = 0;
  std::int16_t c_loop_ = 0, c_move_ = 0, j_loop_ = 0, j_move_ = 0;

  aligned_vector<std::int16_t> msc_;  // Kp x Mpad
  aligned_vector<std::int16_t> tmm_, tim_, tdm_;  // incoming, size Mpad
  aligned_vector<std::int16_t> tmi_, tii_;        // at-node,  size Mpad
  aligned_vector<std::int16_t> tmd_, tdd_;        // outgoing, size Mpad
  aligned_vector<std::int16_t> tmd_in_, tdd_in_;  // target-indexed, Mpad

  aligned_vector<std::int16_t> msc_str_;  // Kp x (Q*8)
  aligned_vector<std::int16_t> tmm_str_, tim_str_, tdm_str_;
  aligned_vector<std::int16_t> tmi_str_, tii_str_;
  aligned_vector<std::int16_t> tmd_str_, tdd_str_;
};

/// Number of 8-lane stripes for model length M.
inline int vit_segments(int M) {
  return (M + VitProfile::kLanes - 1) / VitProfile::kLanes;
}

}  // namespace finehmm::profile
