#include "profile/vit_profile.hpp"

#include <cmath>

#include "util/error.hpp"

namespace finehmm::profile {

std::int16_t VitProfile::wordify(float sc) const {
  if (sc == kNegInf) return kWordNegInf;
  float w = std::round(scale_ * sc);
  if (w <= static_cast<float>(kWordNegInf)) return kWordNegInf;
  if (w > 32767.0f) return 32767;
  return static_cast<std::int16_t>(w);
}

VitProfile::VitProfile(const hmm::SearchProfile& prof)
    : M_(prof.length()),
      Mpad_((prof.length() + 31) / 32 * 32),
      Q_(vit_segments(prof.length())) {
  FH_REQUIRE(hmm::is_local(prof.mode()),
             "vectorized filters are local-mode only (as in HMMER)");
  scale_ = 500.0f / static_cast<float>(M_LN2);  // 1/500-bit units per nat

  msc_.assign(static_cast<std::size_t>(bio::kKp) * Mpad_, kWordNegInf);
  tmm_.assign(Mpad_, kWordNegInf);
  tim_.assign(Mpad_, kWordNegInf);
  tdm_.assign(Mpad_, kWordNegInf);
  tmi_.assign(Mpad_, kWordNegInf);
  tii_.assign(Mpad_, kWordNegInf);
  tmd_.assign(Mpad_, kWordNegInf);
  tdd_.assign(Mpad_, kWordNegInf);
  tmd_in_.assign(Mpad_, kWordNegInf);
  tdd_in_.assign(Mpad_, kWordNegInf);

  for (int x = 0; x < bio::kKp; ++x)
    for (int k = 1; k <= M_; ++k)
      msc_[static_cast<std::size_t>(x) * Mpad_ + (k - 1)] =
          wordify(prof.msc(k, x));

  entry_ = wordify(prof.tsc(0, hmm::kPTBM));  // uniform over k

  for (int k = 1; k <= M_; ++k) {
    // Incoming into position k: transitions out of node k-1.
    tmm_[k - 1] = wordify(prof.tsc(k - 1, hmm::kPTMM));
    tim_[k - 1] = wordify(prof.tsc(k - 1, hmm::kPTIM));
    tdm_[k - 1] = wordify(prof.tsc(k - 1, hmm::kPTDM));
    if (k < M_) {
      // At node k (inserts exist below M only).
      tmi_[k - 1] = wordify(prof.tsc(k, hmm::kPTMI));
      tii_[k - 1] = wordify(prof.tsc(k, hmm::kPTII));
      // Leaving node k toward D_{k+1}.
      tmd_[k - 1] = wordify(prof.tsc(k, hmm::kPTMD));
      tdd_[k - 1] = wordify(prof.tsc(k, hmm::kPTDD));
    }
    // Target-indexed copies: reaching D_k from node k-1 (k >= 2).
    if (k >= 2) {
      tmd_in_[k - 1] = tmd_[k - 2];
      tdd_in_[k - 1] = tdd_[k - 2];
    }
  }

  // Length-independent specials.
  e_c_ = wordify(prof.xsc().e_c);
  e_j_ = wordify(prof.xsc().e_j);

  stripe_all();
  reconfig_length(prof.target_length());
}

VitProfile::LengthModel VitProfile::length_model_for(int L) const {
  FH_REQUIRE(L >= 1, "target length must be >= 1");
  float lf = static_cast<float>(L);
  // Multihit length model; the word scale is fine enough to charge loop
  // costs per residue (no -3 nat approximation needed).
  LengthModel lm;
  lm.loop = wordify(std::log(lf / (lf + 3.0f)));
  lm.move = wordify(std::log(3.0f / (lf + 3.0f)));
  return lm;
}

void VitProfile::reconfig_length(int L) {
  L_ = L;
  LengthModel lm = length_model_for(L);
  n_loop_ = c_loop_ = j_loop_ = lm.loop;
  n_move_ = c_move_ = j_move_ = lm.move;
}

void VitProfile::stripe_all() {
  auto stripe = [this](const aligned_vector<std::int16_t>& lin,
                       aligned_vector<std::int16_t>& out) {
    out.assign(static_cast<std::size_t>(Q_) * kLanes, kWordNegInf);
    for (int k = 1; k <= M_; ++k) {
      int q = (k - 1) % Q_;
      int j = (k - 1) / Q_;
      out[static_cast<std::size_t>(q) * kLanes + j] = lin[k - 1];
    }
  };
  stripe(tmm_, tmm_str_);
  stripe(tim_, tim_str_);
  stripe(tdm_, tdm_str_);
  stripe(tmi_, tmi_str_);
  stripe(tii_, tii_str_);
  stripe(tmd_, tmd_str_);
  stripe(tdd_, tdd_str_);

  msc_str_.assign(static_cast<std::size_t>(bio::kKp) * Q_ * kLanes,
                  kWordNegInf);
  for (int x = 0; x < bio::kKp; ++x)
    for (int k = 1; k <= M_; ++k) {
      int q = (k - 1) % Q_;
      int j = (k - 1) / Q_;
      msc_str_[static_cast<std::size_t>(x) * Q_ * kLanes + q * kLanes + j] =
          msc_[static_cast<std::size_t>(x) * Mpad_ + (k - 1)];
    }
}

}  // namespace finehmm::profile
