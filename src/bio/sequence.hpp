// Digitized protein sequences and the in-memory database container.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bio/alphabet.hpp"

namespace finehmm::bio {

/// A named, digitized protein sequence.
struct Sequence {
  std::string name;
  std::string description;
  std::vector<std::uint8_t> codes;  // alphabet codes, no sentinels

  Sequence() = default;
  Sequence(std::string n, std::vector<std::uint8_t> c)
      : name(std::move(n)), codes(std::move(c)) {}

  std::size_t length() const noexcept { return codes.size(); }
  std::string text() const { return textize(codes); }

  /// Construct from raw text (digitizes; throws on invalid characters).
  static Sequence from_text(std::string name, std::string_view residues,
                            std::string description = {});
};

/// A flat collection of sequences with summary statistics.
class SequenceDatabase {
 public:
  SequenceDatabase() = default;

  void add(Sequence seq);
  void reserve(std::size_t n) { seqs_.reserve(n); }

  std::size_t size() const noexcept { return seqs_.size(); }
  bool empty() const noexcept { return seqs_.empty(); }
  const Sequence& operator[](std::size_t i) const { return seqs_[i]; }

  /// Replace sequence i, keeping the summary statistics consistent.
  void replace(std::size_t i, Sequence seq);

  auto begin() const { return seqs_.begin(); }
  auto end() const { return seqs_.end(); }

  /// Sum of all sequence lengths.
  std::uint64_t total_residues() const noexcept { return total_residues_; }
  std::size_t max_length() const noexcept { return max_length_; }
  double mean_length() const noexcept {
    return seqs_.empty() ? 0.0
                         : static_cast<double>(total_residues_) /
                               static_cast<double>(seqs_.size());
  }

 private:
  std::vector<Sequence> seqs_;
  std::uint64_t total_residues_ = 0;
  std::size_t max_length_ = 0;
};

}  // namespace finehmm::bio
