#include "bio/alphabet.hpp"

#include <cctype>

#include "util/error.hpp"

namespace finehmm::bio {

namespace {

struct CharTable {
  std::array<std::int8_t, 256> code;
  CharTable() {
    code.fill(-1);
    auto put = [&](char c, std::uint8_t v) {
      code[static_cast<unsigned char>(c)] = static_cast<std::int8_t>(v);
      code[static_cast<unsigned char>(std::tolower(c))] =
          static_cast<std::int8_t>(v);
    };
    for (int i = 0; i < kK; ++i) put(kCanonical[i], i);
    for (int i = 0; i < 6; ++i) put(kDegenerate[i], kK + i);
    // Specials have no case.
    code[static_cast<unsigned char>('-')] = 26;
    code[static_cast<unsigned char>('*')] = 27;
    code[static_cast<unsigned char>('~')] = 28;
    code[static_cast<unsigned char>('.')] = 26;  // alt gap spelling
  }
};

const CharTable& char_table() {
  static const CharTable t;
  return t;
}

}  // namespace

std::uint8_t digitize(char c) {
  std::int8_t v = char_table().code[static_cast<unsigned char>(c)];
  if (v < 0)
    throw Error(std::string("unknown residue character '") + c + "'");
  return static_cast<std::uint8_t>(v);
}

char symbol(std::uint8_t code) {
  if (code < kK) return kCanonical[code];
  if (code < 26) return kDegenerate[code - kK];
  if (code < kKp) return kSpecial[code - 26];
  if (code == kPadCode) return '.';
  throw Error("invalid alphabet code " + std::to_string(code));
}

std::vector<std::uint8_t> digitize(std::string_view text) {
  std::vector<std::uint8_t> out;
  out.reserve(text.size());
  for (char c : text) out.push_back(digitize(c));
  return out;
}

std::string textize(const std::vector<std::uint8_t>& codes) {
  std::string out;
  out.reserve(codes.size());
  for (auto c : codes) out.push_back(symbol(c));
  return out;
}

const std::vector<std::uint8_t>& expansion(std::uint8_t code) {
  static const std::vector<std::uint8_t> empty;
  static const std::vector<std::uint8_t> singletons[kK] = {
      {0},  {1},  {2},  {3},  {4},  {5},  {6},  {7},  {8},  {9},
      {10}, {11}, {12}, {13}, {14}, {15}, {16}, {17}, {18}, {19}};
  // B = {D,N}; J = {I,L}; Z = {E,Q}; O -> K; U -> C; X -> everything.
  static const std::vector<std::uint8_t> b = {2, 11};
  static const std::vector<std::uint8_t> j = {7, 9};
  static const std::vector<std::uint8_t> z = {3, 13};
  static const std::vector<std::uint8_t> o = {8};
  static const std::vector<std::uint8_t> u = {1};
  static const std::vector<std::uint8_t> x = {0,  1,  2,  3,  4,  5,  6,
                                              7,  8,  9,  10, 11, 12, 13,
                                              14, 15, 16, 17, 18, 19};
  if (code < kK) return singletons[code];
  switch (code) {
    case kCodeB: return b;
    case kCodeJ: return j;
    case kCodeZ: return z;
    case kCodeO: return o;
    case kCodeU: return u;
    case kCodeX: return x;
    default: return empty;
  }
}

const std::array<float, kK>& background_frequencies() {
  // Swissprot 50.8 amino-acid composition, the default null model of
  // HMMER 3 (order ACDEFGHIKLMNPQRSTVWY).
  static const std::array<float, kK> f = {
      0.0787945f, 0.0151600f, 0.0535222f, 0.0668298f, 0.0397062f,
      0.0695071f, 0.0229198f, 0.0590092f, 0.0594422f, 0.0963728f,
      0.0237718f, 0.0414386f, 0.0482904f, 0.0395639f, 0.0540978f,
      0.0683364f, 0.0540687f, 0.0673417f, 0.0114135f, 0.0304133f};
  return f;
}

}  // namespace finehmm::bio
