// Stockholm 1.0 multiple-alignment format (Pfam's native format, and the
// input hmmbuild actually consumes).
//
// Supports interleaved (multi-block) alignments, per-file and per-column
// annotations (the #=GC RF reference line drives match-column assignment
// when present), and the mandatory header/terminator.  Per-residue and
// per-sequence annotations other than RF are skipped.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

namespace finehmm::bio {

struct StockholmAlignment {
  std::string id;  // #=GF ID, if any
  std::vector<std::string> names;
  std::vector<std::string> rows;  // equal-length aligned rows
  /// #=GC RF reference annotation: non-gap columns are match columns.
  std::optional<std::string> rf;

  std::size_t width() const { return rows.empty() ? 0 : rows[0].size(); }
};

StockholmAlignment read_stockholm(std::istream& in);
StockholmAlignment read_stockholm_file(const std::string& path);

void write_stockholm(std::ostream& out, const StockholmAlignment& aln);
void write_stockholm_file(const std::string& path,
                          const StockholmAlignment& aln);

}  // namespace finehmm::bio
