#include "bio/synthetic.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace finehmm::bio {

namespace {

std::size_t clamp_length(double len, const SyntheticDbSpec& spec) {
  if (len < static_cast<double>(spec.min_length))
    return spec.min_length;
  if (len > static_cast<double>(spec.max_length))
    return spec.max_length;
  return static_cast<std::size_t>(len);
}

}  // namespace

SyntheticDbSpec SyntheticDbSpec::swissprot_like(double scale) {
  FH_REQUIRE(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
  SyntheticDbSpec spec;
  spec.name = "swissprot-like";
  spec.n_sequences =
      std::max<std::size_t>(1, static_cast<std::size_t>(459565.0 * scale));
  // Mean 373.7 = exp(mu + sigma^2/2) with sigma 0.55 -> mu = 5.772.
  spec.log_length_sigma = 0.55;
  spec.log_length_mu = std::log(373.7) - 0.5 * 0.55 * 0.55;
  spec.seed = 4242;
  return spec;
}

SyntheticDbSpec SyntheticDbSpec::envnr_like(double scale) {
  FH_REQUIRE(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
  SyntheticDbSpec spec;
  spec.name = "envnr-like";
  spec.n_sequences =
      std::max<std::size_t>(1, static_cast<std::size_t>(6549721.0 * scale));
  // Env_nr is metagenomic: short reads, mean 197, tighter distribution.
  spec.log_length_sigma = 0.45;
  spec.log_length_mu = std::log(197.0) - 0.5 * 0.45 * 0.45;
  spec.min_length = 20;
  spec.seed = 777;
  return spec;
}

double SyntheticDbSpec::expected_mean_length() const {
  return std::exp(log_length_mu + 0.5 * log_length_sigma * log_length_sigma);
}

Sequence random_sequence(std::size_t length, Pcg32& rng,
                         const std::string& name) {
  const auto& bg = background_frequencies();
  // Build a cumulative table once per call; cheap relative to sampling.
  std::array<double, kK> cdf;
  double acc = 0.0;
  for (int i = 0; i < kK; ++i) {
    acc += bg[i];
    cdf[i] = acc;
  }
  Sequence s;
  s.name = name;
  s.codes.resize(length);
  for (std::size_t i = 0; i < length; ++i) {
    double x = rng.uniform() * acc;
    // Linear scan is fine for K=20; branch-predictable and cache-resident.
    std::uint8_t code = kK - 1;
    for (int k = 0; k < kK; ++k) {
      if (x < cdf[k]) {
        code = static_cast<std::uint8_t>(k);
        break;
      }
    }
    s.codes[i] = code;
  }
  return s;
}

SequenceDatabase generate_database(const SyntheticDbSpec& spec) {
  FH_REQUIRE(spec.n_sequences > 0, "database must have at least one sequence");
  FH_REQUIRE(spec.min_length > 0 && spec.min_length <= spec.max_length,
             "invalid length bounds");
  Pcg32 rng(spec.seed);
  SequenceDatabase db;
  db.reserve(spec.n_sequences);
  for (std::size_t i = 0; i < spec.n_sequences; ++i) {
    double len = rng.lognormal(spec.log_length_mu, spec.log_length_sigma);
    std::size_t n = clamp_length(len, spec);
    Sequence s = random_sequence(n, rng, spec.name + "_" + std::to_string(i));
    db.add(std::move(s));
  }
  return db;
}

}  // namespace finehmm::bio
