// Zero-copy access to packed 5-bit residue streams.
//
// The .fsqdb on-disk format and the GPU streaming layout both store 6
// residues per 32-bit word (bio/packing.hpp).  PackedResidues is a
// non-owning view over such a stream that indexes like a plain code
// array, so the striped CPU kernels (templated on the sequence accessor)
// can consume residue words straight out of an mmap'd file with no
// per-sequence decode buffer.  The base pointer may sit at any byte
// offset — the words inside a .fsqdb file follow variable-length names —
// so words are fetched with memcpy loads, which compile to single movs
// on x86 and stay defined behaviour everywhere else.
#pragma once

#include <cstdint>
#include <cstring>

#include "bio/packing.hpp"

namespace finehmm::bio {

class PackedResidues {
 public:
  PackedResidues() = default;
  explicit PackedResidues(const void* words)
      : bytes_(static_cast<const unsigned char*>(words)) {}

  /// Residue code at position i (i < the sequence length; trailing pad
  /// codes inside the last word are never addressed through this).
  std::uint8_t operator[](std::size_t i) const {
    std::uint32_t w;
    std::memcpy(&w,
                bytes_ + (i / kResiduesPerWord) * sizeof(std::uint32_t),
                sizeof(w));
    return static_cast<std::uint8_t>(
        (w >> (static_cast<std::uint32_t>(i % kResiduesPerWord) *
               kBitsPerResidue)) &
        kResidueMask);
  }

  const unsigned char* data() const noexcept { return bytes_; }
  explicit operator bool() const noexcept { return bytes_ != nullptr; }

 private:
  const unsigned char* bytes_ = nullptr;
};

/// Decode `length` residues into caller-owned storage (>= length bytes).
/// Used for the rare pipeline survivors that reach stages without a
/// packed-input kernel (Viterbi rescoring, Forward, traceback).
inline void unpack_into(PackedResidues packed, std::size_t length,
                        std::uint8_t* out) {
  for (std::size_t i = 0; i < length; ++i) out[i] = packed[i];
}

}  // namespace finehmm::bio
