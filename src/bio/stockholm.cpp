#include "bio/stockholm.hpp"

#include <fstream>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace finehmm::bio {

StockholmAlignment read_stockholm(std::istream& in) {
  std::string line;
  std::size_t lineno = 0;

  // Header.
  bool header = false;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    FH_REQUIRE(line.rfind("# STOCKHOLM", 0) == 0,
               "missing '# STOCKHOLM 1.0' header");
    header = true;
    break;
  }
  FH_REQUIRE(header, "empty Stockholm file");

  StockholmAlignment aln;
  std::map<std::string, std::size_t> index;
  std::string rf;
  bool terminated = false;

  while (std::getline(in, line)) {
    ++lineno;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (line == "//") {
      terminated = true;
      break;
    }
    if (line[0] == '#') {
      std::istringstream ls(line);
      std::string tag, sub;
      ls >> tag >> sub;
      if (tag == "#=GF" && sub == "ID") {
        ls >> aln.id;
      } else if (tag == "#=GC" && sub == "RF") {
        std::string chunk;
        ls >> chunk;
        rf += chunk;
      }
      continue;  // other annotations skipped
    }
    // Sequence line: name whitespace alignedtext (possibly one of many
    // interleaved blocks).
    std::istringstream ls(line);
    std::string name, text;
    ls >> name >> text;
    if (name.empty() || text.empty())
      throw ParseError("malformed Stockholm sequence line", lineno);
    auto it = index.find(name);
    if (it == index.end()) {
      index.emplace(name, aln.names.size());
      aln.names.push_back(name);
      aln.rows.emplace_back();
      it = index.find(name);
    }
    aln.rows[it->second] += text;
  }
  FH_REQUIRE(terminated, "missing '//' terminator");
  FH_REQUIRE(!aln.rows.empty(), "Stockholm file contains no sequences");
  for (std::size_t i = 1; i < aln.rows.size(); ++i)
    FH_REQUIRE(aln.rows[i].size() == aln.rows[0].size(),
               "ragged Stockholm alignment (row " + aln.names[i] + ")");
  if (!rf.empty()) {
    FH_REQUIRE(rf.size() == aln.rows[0].size(),
               "#=GC RF length does not match the alignment width");
    aln.rf = rf;
  }
  return aln;
}

StockholmAlignment read_stockholm_file(const std::string& path) {
  std::ifstream in(path);
  FH_REQUIRE_IO(in.good(), "cannot open Stockholm file: " + path);
  return read_stockholm(in);
}

void write_stockholm(std::ostream& out, const StockholmAlignment& aln) {
  FH_REQUIRE(aln.names.size() == aln.rows.size(),
             "names/rows arity mismatch");
  out << "# STOCKHOLM 1.0\n";
  if (!aln.id.empty()) out << "#=GF ID " << aln.id << '\n';
  std::size_t name_width = 4;
  for (const auto& n : aln.names) name_width = std::max(name_width, n.size());
  for (std::size_t i = 0; i < aln.rows.size(); ++i) {
    out << aln.names[i];
    for (std::size_t pad = aln.names[i].size(); pad < name_width + 2; ++pad)
      out << ' ';
    out << aln.rows[i] << '\n';
  }
  if (aln.rf) {
    out << "#=GC RF";
    for (std::size_t pad = 7; pad < name_width + 2; ++pad) out << ' ';
    out << *aln.rf << '\n';
  }
  out << "//\n";
}

void write_stockholm_file(const std::string& path,
                          const StockholmAlignment& aln) {
  std::ofstream out(path);
  FH_REQUIRE_IO(out.good(), "cannot open Stockholm file for writing: " + path);
  write_stockholm(out, aln);
}

}  // namespace finehmm::bio
