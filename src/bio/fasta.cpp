#include "bio/fasta.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace finehmm::bio {

SequenceDatabase read_fasta(std::istream& in) {
  SequenceDatabase db;
  std::string line;
  std::size_t lineno = 0;

  std::string name, desc, residues;
  bool have_record = false;

  auto flush = [&]() {
    if (!have_record) return;
    if (name.empty()) throw ParseError("FASTA record with empty name", lineno);
    Sequence s = Sequence::from_text(name, residues, desc);
    db.add(std::move(s));
    residues.clear();
  };

  while (std::getline(in, line)) {
    ++lineno;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (line[0] == '>') {
      flush();
      have_record = true;
      std::size_t sp = line.find_first_of(" \t");
      if (sp == std::string::npos) {
        name = line.substr(1);
        desc.clear();
      } else {
        name = line.substr(1, sp - 1);
        std::size_t ds = line.find_first_not_of(" \t", sp);
        desc = ds == std::string::npos ? "" : line.substr(ds);
      }
    } else {
      if (!have_record)
        throw ParseError("residue data before first FASTA header", lineno);
      for (char c : line)
        if (!std::isspace(static_cast<unsigned char>(c))) residues.push_back(c);
    }
  }
  flush();
  return db;
}

SequenceDatabase read_fasta_file(const std::string& path) {
  std::ifstream in(path);
  FH_REQUIRE_IO(in.good(), "cannot open FASTA file: " + path);
  return read_fasta(in);
}

void write_fasta(std::ostream& out, const SequenceDatabase& db,
                 std::size_t width) {
  FH_REQUIRE(width > 0, "FASTA line width must be positive");
  for (const auto& s : db) {
    out << '>' << s.name;
    if (!s.description.empty()) out << ' ' << s.description;
    out << '\n';
    std::string text = s.text();
    for (std::size_t i = 0; i < text.size(); i += width)
      out << text.substr(i, width) << '\n';
  }
}

void write_fasta_file(const std::string& path, const SequenceDatabase& db,
                      std::size_t width) {
  std::ofstream out(path);
  FH_REQUIRE_IO(out.good(), "cannot open FASTA file for writing: " + path);
  write_fasta(out, db, width);
}

}  // namespace finehmm::bio
