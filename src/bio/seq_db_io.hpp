// Binary sequence database files (.fsqdb).
//
// FASTA parses at ~hundreds of MB/s and re-digitizes every run; a packed
// binary database stores the 5-bit residue encoding (6 per word, exactly
// the GPU streaming format of bio/packing.hpp) plus names, so a scan can
// mmap-style load and go.  Roughly 37% of the FASTA size.
//
// Layout: magic "FSQD" | u32 version | u64 count
//         | per sequence: u32 name_len | name | u32 residue_count
//         | u64 total_words | u32 packed words (concatenated, in order)
#pragma once

#include <iosfwd>
#include <string>

#include "bio/sequence.hpp"

namespace finehmm::bio {

void write_seq_db(std::ostream& out, const SequenceDatabase& db);
void write_seq_db_file(const std::string& path, const SequenceDatabase& db);

SequenceDatabase read_seq_db(std::istream& in);
SequenceDatabase read_seq_db_file(const std::string& path);

}  // namespace finehmm::bio
