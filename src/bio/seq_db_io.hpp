// Binary sequence database files (.fsqdb).
//
// FASTA parses at ~hundreds of MB/s and re-digitizes every run; a packed
// binary database stores the 5-bit residue encoding (6 per word, exactly
// the GPU streaming format of bio/packing.hpp) plus names, so a scan can
// mmap-style load and go.  Roughly 37% of the FASTA size.
//
// Layout: magic "FSQD" | u32 version | u64 count
//         | per sequence: u32 name_len | name | u32 residue_count
//         | u64 total_words | u32 packed words (concatenated, in order)
//
// Two readers share the format:
//   read_seq_db / read_seq_db_file  — eager decode into a SequenceDatabase
//                                     (heap-owned byte codes per sequence).
//   MappedSeqDb                     — zero-copy view: the file is mmap'd
//                                     (or slurped once on platforms without
//                                     mmap) and residue words are consumed
//                                     in place via bio::PackedResidues; the
//                                     scan never copies or decodes residues
//                                     per sequence.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "bio/packed_seq.hpp"
#include "bio/sequence.hpp"

namespace finehmm::bio {

void write_seq_db(std::ostream& out, const SequenceDatabase& db);
void write_seq_db_file(const std::string& path, const SequenceDatabase& db);

SequenceDatabase read_seq_db(std::istream& in);
SequenceDatabase read_seq_db_file(const std::string& path);

/// Memory-mapped (zero-copy) view of a .fsqdb file.
///
/// The whole file stays in the page cache; per-sequence access returns a
/// PackedResidues view into it.  Opening validates the header, the index,
/// and every residue code once, so downstream kernels can index emission
/// tables without re-checking.  Instances are move-only and unmap on
/// destruction.
class MappedSeqDb {
 public:
  /// How to back the view.  kAuto prefers mmap and falls back to a single
  /// buffered read of the whole file; kBuffered forces the fallback (used
  /// by tests and non-mmap platforms).
  enum class Backing { kAuto, kBuffered };

  explicit MappedSeqDb(const std::string& path,
                       Backing backing = Backing::kAuto);
  ~MappedSeqDb();

  MappedSeqDb(MappedSeqDb&& other) noexcept;
  MappedSeqDb& operator=(MappedSeqDb&& other) noexcept;
  MappedSeqDb(const MappedSeqDb&) = delete;
  MappedSeqDb& operator=(const MappedSeqDb&) = delete;

  std::size_t size() const noexcept { return index_.size(); }
  std::uint32_t length(std::size_t i) const { return index_[i].length; }
  std::string_view name(std::size_t i) const {
    const Entry& e = index_[i];
    return {reinterpret_cast<const char*>(base_) + e.name_offset, e.name_len};
  }
  /// Packed 5-bit residue stream of sequence i, living in the mapped file.
  PackedResidues residues(std::size_t i) const {
    return PackedResidues(base_ + index_[i].word_offset);
  }
  /// Words backing sequence i (>= 1 even for empty sequences).
  std::size_t word_count(std::size_t i) const {
    const std::uint32_t len = index_[i].length;
    return len == 0 ? 1 : (len + kResiduesPerWord - 1) / kResiduesPerWord;
  }

  std::size_t total_residues() const noexcept { return total_residues_; }
  std::uint32_t max_length() const noexcept { return max_length_; }
  /// True when the view is served by mmap (false on the buffered fallback).
  bool mmap_backed() const noexcept { return mmap_backed_; }

  /// Eagerly decode into a heap-owned SequenceDatabase (test/tool helper;
  /// not used on the scan path).
  SequenceDatabase materialize() const;

 private:
  struct Entry {
    std::uint64_t name_offset;
    std::uint64_t word_offset;
    std::uint32_t name_len;
    std::uint32_t length;
  };

  void parse_and_validate(const std::string& path);
  void release() noexcept;

  const unsigned char* base_ = nullptr;
  std::size_t file_size_ = 0;
  bool mmap_backed_ = false;
  std::vector<unsigned char> fallback_;  // owns bytes when !mmap_backed_
  std::vector<Entry> index_;
  std::size_t total_residues_ = 0;
  std::uint32_t max_length_ = 0;
};

}  // namespace finehmm::bio
