#include "bio/packing.hpp"

#include "util/error.hpp"

namespace finehmm::bio {

aligned_vector<std::uint32_t> pack_residues(
    const std::vector<std::uint8_t>& codes) {
  std::size_t n_words =
      (codes.size() + kResiduesPerWord - 1) / kResiduesPerWord;
  if (n_words == 0) n_words = 1;  // an empty sequence still gets a pad word
  aligned_vector<std::uint32_t> words(n_words, 0);

  // Pre-fill everything with pad flags, then overwrite real residues.
  std::uint32_t pad_word = 0;
  for (std::size_t r = 0; r < kResiduesPerWord; ++r)
    pad_word |= static_cast<std::uint32_t>(kPadCode) << (r * kBitsPerResidue);
  for (auto& w : words) w = pad_word;

  for (std::size_t i = 0; i < codes.size(); ++i) {
    FH_REQUIRE(is_valid(codes[i]), "cannot pack invalid residue code");
    std::size_t w = i / kResiduesPerWord;
    std::uint32_t shift =
        static_cast<std::uint32_t>(i % kResiduesPerWord) * kBitsPerResidue;
    words[w] &= ~(kResidueMask << shift);
    words[w] |= static_cast<std::uint32_t>(codes[i]) << shift;
  }
  return words;
}

std::vector<std::uint8_t> unpack_residues(const std::uint32_t* words,
                                          std::size_t length) {
  std::vector<std::uint8_t> out(length);
  for (std::size_t i = 0; i < length; ++i) out[i] = packed_residue(words, i);
  return out;
}

PackedDatabase::PackedDatabase(const SequenceDatabase& db) {
  offsets_.reserve(db.size());
  lengths_.reserve(db.size());
  for (const auto& seq : db) {
    auto packed = pack_residues(seq.codes);
    offsets_.push_back(words_.size());
    lengths_.push_back(static_cast<std::uint32_t>(seq.length()));
    words_.insert(words_.end(), packed.begin(), packed.end());
    total_residues_ += seq.length();
  }
}

}  // namespace finehmm::bio
