#include "bio/sequence.hpp"

#include <algorithm>

namespace finehmm::bio {

Sequence Sequence::from_text(std::string name, std::string_view residues,
                             std::string description) {
  Sequence s;
  s.name = std::move(name);
  s.description = std::move(description);
  s.codes = digitize(residues);
  return s;
}

void SequenceDatabase::add(Sequence seq) {
  total_residues_ += seq.length();
  max_length_ = std::max(max_length_, seq.length());
  seqs_.push_back(std::move(seq));
}

void SequenceDatabase::replace(std::size_t i, Sequence seq) {
  total_residues_ -= seqs_[i].length();
  total_residues_ += seq.length();
  seqs_[i] = std::move(seq);
  // max_length_ can only grow cheaply; recompute if we may have shrunk it.
  if (seqs_[i].length() >= max_length_) {
    max_length_ = seqs_[i].length();
  } else {
    max_length_ = 0;
    for (const auto& s : seqs_) max_length_ = std::max(max_length_, s.length());
  }
}

}  // namespace finehmm::bio
