// Residue packing (paper §III-A, Fig. 6).
//
// Each residue needs 5 bits (codes 0..28), so 6 consecutive residues are
// packed into one 32-bit word; the two high bits are unused.  Incomplete
// trailing words are padded with code 31 which kernels use as the loop
// termination / "wasteful residue" flag.
#pragma once

#include <cstdint>
#include <vector>

#include "bio/sequence.hpp"
#include "util/aligned.hpp"

namespace finehmm::bio {

/// Residues per packed 32-bit word.
inline constexpr std::size_t kResiduesPerWord = 6;
/// Bits per residue within a word.
inline constexpr std::uint32_t kBitsPerResidue = 5;
inline constexpr std::uint32_t kResidueMask = 0x1f;

/// Pack a digitized sequence; the result is padded to a whole word.
aligned_vector<std::uint32_t> pack_residues(
    const std::vector<std::uint8_t>& codes);

/// Unpack `length` residues from a packed buffer.
std::vector<std::uint8_t> unpack_residues(const std::uint32_t* words,
                                          std::size_t length);

/// Extract residue i from a packed buffer.
inline std::uint8_t packed_residue(const std::uint32_t* words, std::size_t i) {
  std::uint32_t word = words[i / kResiduesPerWord];
  std::uint32_t shift =
      static_cast<std::uint32_t>(i % kResiduesPerWord) * kBitsPerResidue;
  return static_cast<std::uint8_t>((word >> shift) & kResidueMask);
}

/// A whole database in packed form: one flat word buffer plus per-sequence
/// offsets.  This is the layout the GPU kernels stream from "global memory".
class PackedDatabase {
 public:
  PackedDatabase() = default;
  explicit PackedDatabase(const SequenceDatabase& db);

  std::size_t size() const noexcept { return lengths_.size(); }
  std::uint32_t length(std::size_t seq) const { return lengths_[seq]; }
  const std::uint32_t* words(std::size_t seq) const {
    return words_.data() + offsets_[seq];
  }
  std::size_t word_count(std::size_t seq) const {
    return (lengths_[seq] + kResiduesPerWord - 1) / kResiduesPerWord;
  }
  std::uint8_t residue(std::size_t seq, std::size_t i) const {
    return packed_residue(words(seq), i);
  }

  /// Total packed footprint in bytes (the global-memory traffic unit).
  std::size_t packed_bytes() const noexcept {
    return words_.size() * sizeof(std::uint32_t);
  }
  std::uint64_t total_residues() const noexcept { return total_residues_; }

 private:
  aligned_vector<std::uint32_t> words_;
  std::vector<std::size_t> offsets_;
  std::vector<std::uint32_t> lengths_;
  std::uint64_t total_residues_ = 0;
};

}  // namespace finehmm::bio
