// The amino-acid alphabet used throughout the library.
//
// Matches the paper's digitization (Fig. 6): 20 standard amino acids, 6
// degenerate symbols (B J Z O U X) and 3 gap/special types (- * ~), i.e.
// 29 codes representable in 5 bits; code 31 is reserved as the packing pad
// flag that terminates a packed sequence word.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace finehmm::bio {

/// Number of canonical residues.
inline constexpr int kK = 20;
/// Total number of alphabet codes (canonical + degenerate + special).
inline constexpr int kKp = 29;
/// Pad flag used by residue packing (outside the alphabet proper).
inline constexpr std::uint8_t kPadCode = 31;

/// Canonical residues in index order 0..19.
inline constexpr std::string_view kCanonical = "ACDEFGHIKLMNPQRSTVWY";
/// Degenerate symbols in index order 20..25.
inline constexpr std::string_view kDegenerate = "BJZOUX";
/// Special / gap symbols in index order 26..28.
inline constexpr std::string_view kSpecial = "-*~";

/// Residue codes for the degenerate symbols.
enum DegenerateCode : std::uint8_t {
  kCodeB = 20,  // Asn or Asp
  kCodeJ = 21,  // Ile or Leu
  kCodeZ = 22,  // Gln or Glu
  kCodeO = 23,  // pyrrolysine (scored as Lys)
  kCodeU = 24,  // selenocysteine (scored as Cys)
  kCodeX = 25,  // any residue
};

/// True if the code is one of the 20 canonical residues.
constexpr bool is_canonical(std::uint8_t code) { return code < kK; }
/// True if the code is scoreable against a profile (canonical or degenerate).
constexpr bool is_residue(std::uint8_t code) { return code < 26; }
/// True if the code is a valid alphabet code at all.
constexpr bool is_valid(std::uint8_t code) { return code < kKp; }

/// Map a character to its code; throws finehmm::Error on unknown characters.
std::uint8_t digitize(char c);

/// Map a code back to its character; pad renders as '.'.
char symbol(std::uint8_t code);

/// Digitize a whole string.
std::vector<std::uint8_t> digitize(std::string_view text);

/// Render a code vector back to text.
std::string textize(const std::vector<std::uint8_t>& codes);

/// The canonical residues a degenerate code may stand for, as indices into
/// 0..19.  Canonical codes return themselves; specials return empty.
const std::vector<std::uint8_t>& expansion(std::uint8_t code);

/// Background (null model) amino-acid frequencies over the 20 canonical
/// residues; Swissprot-derived, matching HMMER's default null model.
const std::array<float, kK>& background_frequencies();

}  // namespace finehmm::bio
