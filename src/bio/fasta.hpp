// FASTA reading and writing.
#pragma once

#include <iosfwd>
#include <string>

#include "bio/sequence.hpp"

namespace finehmm::bio {

/// Parse a FASTA stream into a database.  Accepts multi-line records,
/// lowercase residues and blank lines; throws ParseError on malformed input.
SequenceDatabase read_fasta(std::istream& in);

/// Parse a FASTA file by path.
SequenceDatabase read_fasta_file(const std::string& path);

/// Write a database as FASTA, wrapping residue lines at `width` columns.
void write_fasta(std::ostream& out, const SequenceDatabase& db,
                 std::size_t width = 60);

void write_fasta_file(const std::string& path, const SequenceDatabase& db,
                      std::size_t width = 60);

}  // namespace finehmm::bio
