#include "bio/seq_db_io.hpp"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include "bio/packing.hpp"
#include "util/error.hpp"

namespace finehmm::bio {

namespace {

constexpr char kMagic[4] = {'F', 'S', 'Q', 'D'};
constexpr std::uint32_t kVersion = 1;
constexpr std::uint64_t kMaxSequences = 1ull << 32;
constexpr std::uint32_t kMaxNameLen = 1 << 12;
constexpr std::uint32_t kMaxSeqLen = 1u << 28;

template <class T>
void put(std::ostream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <class T>
T get(std::istream& in) {
  T v;
  in.read(reinterpret_cast<char*>(&v), sizeof(T));
  FH_REQUIRE(in.good(), "truncated sequence database");
  return v;
}

}  // namespace

void write_seq_db(std::ostream& out, const SequenceDatabase& db) {
  out.write(kMagic, sizeof(kMagic));
  put<std::uint32_t>(out, kVersion);
  put<std::uint64_t>(out, db.size());

  std::uint64_t total_words = 0;
  for (const auto& s : db) {
    FH_REQUIRE(s.name.size() <= kMaxNameLen, "sequence name too long");
    put<std::uint32_t>(out, static_cast<std::uint32_t>(s.name.size()));
    out.write(s.name.data(), static_cast<std::streamsize>(s.name.size()));
    put<std::uint32_t>(out, static_cast<std::uint32_t>(s.length()));
    total_words += (s.length() + kResiduesPerWord - 1) / kResiduesPerWord;
    if (s.length() == 0) total_words += 1;  // pack_residues pads empties
  }
  put<std::uint64_t>(out, total_words);
  for (const auto& s : db) {
    auto words = pack_residues(s.codes);
    out.write(reinterpret_cast<const char*>(words.data()),
              static_cast<std::streamsize>(words.size() * sizeof(std::uint32_t)));
  }
  FH_REQUIRE(out.good(), "sequence database write failed");
}

void write_seq_db_file(const std::string& path, const SequenceDatabase& db) {
  std::ofstream out(path, std::ios::binary);
  FH_REQUIRE(out.good(), "cannot open sequence database for writing: " + path);
  write_seq_db(out, db);
}

SequenceDatabase read_seq_db(std::istream& in) {
  char magic[4];
  in.read(magic, sizeof(magic));
  FH_REQUIRE(in.good() && std::memcmp(magic, kMagic, 4) == 0,
             "not a finehmm sequence database (bad magic)");
  auto version = get<std::uint32_t>(in);
  FH_REQUIRE(version == kVersion, "unsupported sequence database version");
  auto count = get<std::uint64_t>(in);
  FH_REQUIRE(count <= kMaxSequences, "implausible sequence count");

  std::vector<std::string> names(count);
  std::vector<std::uint32_t> lengths(count);
  std::uint64_t expect_words = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    auto name_len = get<std::uint32_t>(in);
    FH_REQUIRE(name_len <= kMaxNameLen, "implausible name length");
    names[i].resize(name_len);
    in.read(names[i].data(), name_len);
    FH_REQUIRE(in.good(), "truncated sequence database");
    lengths[i] = get<std::uint32_t>(in);
    FH_REQUIRE(lengths[i] <= kMaxSeqLen, "implausible sequence length");
    expect_words += lengths[i] == 0
                        ? 1
                        : (lengths[i] + kResiduesPerWord - 1) /
                              kResiduesPerWord;
  }
  auto total_words = get<std::uint64_t>(in);
  FH_REQUIRE(total_words == expect_words,
             "sequence database word count mismatch");

  SequenceDatabase db;
  db.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    std::size_t n_words = lengths[i] == 0
                              ? 1
                              : (lengths[i] + kResiduesPerWord - 1) /
                                    kResiduesPerWord;
    std::vector<std::uint32_t> words(n_words);
    in.read(reinterpret_cast<char*>(words.data()),
            static_cast<std::streamsize>(n_words * sizeof(std::uint32_t)));
    FH_REQUIRE(in.good(), "truncated sequence database");
    Sequence s;
    s.name = std::move(names[i]);
    s.codes = unpack_residues(words.data(), lengths[i]);
    for (auto c : s.codes)
      FH_REQUIRE(is_valid(c), "corrupt residue code in sequence database");
    db.add(std::move(s));
  }
  return db;
}

SequenceDatabase read_seq_db_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  FH_REQUIRE(in.good(), "cannot open sequence database: " + path);
  return read_seq_db(in);
}

}  // namespace finehmm::bio
