#include "bio/seq_db_io.hpp"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <utility>

#include "bio/packing.hpp"
#include "util/error.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define FINEHMM_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define FINEHMM_HAVE_MMAP 0
#endif

namespace finehmm::bio {

namespace {

constexpr char kMagic[4] = {'F', 'S', 'Q', 'D'};
constexpr std::uint32_t kVersion = 1;
constexpr std::uint64_t kMaxSequences = 1ull << 32;
constexpr std::uint32_t kMaxNameLen = 1 << 12;
constexpr std::uint32_t kMaxSeqLen = 1u << 28;

std::size_t words_for(std::uint32_t length) {
  // pack_residues emits one pad word for empty sequences.
  return length == 0 ? 1 : (length + kResiduesPerWord - 1) / kResiduesPerWord;
}

template <class T>
void put(std::ostream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

/// Read exactly `n` bytes or throw naming the field that came up short.
void read_exact(std::istream& in, void* dst, std::size_t n, const char* what) {
  in.read(static_cast<char*>(dst), static_cast<std::streamsize>(n));
  if (static_cast<std::size_t>(in.gcount()) != n || !in.good()) {
    throw Error("truncated sequence database: short read of " +
                std::string(what) + " (wanted " + std::to_string(n) +
                " bytes, got " + std::to_string(in.gcount()) + ")");
  }
}

template <class T>
T get(std::istream& in, const char* what) {
  T v;
  read_exact(in, &v, sizeof(T), what);
  return v;
}

}  // namespace

void write_seq_db(std::ostream& out, const SequenceDatabase& db) {
  out.write(kMagic, sizeof(kMagic));
  put<std::uint32_t>(out, kVersion);
  put<std::uint64_t>(out, db.size());

  std::uint64_t total_words = 0;
  for (const auto& s : db) {
    FH_REQUIRE(s.name.size() <= kMaxNameLen, "sequence name too long");
    put<std::uint32_t>(out, static_cast<std::uint32_t>(s.name.size()));
    out.write(s.name.data(), static_cast<std::streamsize>(s.name.size()));
    put<std::uint32_t>(out, static_cast<std::uint32_t>(s.length()));
    total_words += words_for(static_cast<std::uint32_t>(s.length()));
  }
  put<std::uint64_t>(out, total_words);
  for (const auto& s : db) {
    auto words = pack_residues(s.codes);
    out.write(reinterpret_cast<const char*>(words.data()),
              static_cast<std::streamsize>(words.size() * sizeof(std::uint32_t)));
  }
  FH_REQUIRE(out.good(), "sequence database write failed");
}

void write_seq_db_file(const std::string& path, const SequenceDatabase& db) {
  std::ofstream out(path, std::ios::binary);
  FH_REQUIRE_IO(out.good(), "cannot open sequence database for writing: " + path);
  write_seq_db(out, db);
}

SequenceDatabase read_seq_db(std::istream& in) {
  char magic[4];
  read_exact(in, magic, sizeof(magic), "magic");
  FH_REQUIRE(std::memcmp(magic, kMagic, 4) == 0,
             "not a finehmm sequence database (bad magic)");
  auto version = get<std::uint32_t>(in, "version");
  FH_REQUIRE(version == kVersion, "unsupported sequence database version");
  auto count = get<std::uint64_t>(in, "sequence count");
  FH_REQUIRE(count <= kMaxSequences, "implausible sequence count");

  std::vector<std::string> names(count);
  std::vector<std::uint32_t> lengths(count);
  std::uint64_t expect_words = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    auto name_len = get<std::uint32_t>(in, "name length");
    FH_REQUIRE(name_len <= kMaxNameLen, "implausible name length");
    names[i].resize(name_len);
    read_exact(in, names[i].data(), name_len, "sequence name");
    lengths[i] = get<std::uint32_t>(in, "sequence length");
    FH_REQUIRE(lengths[i] <= kMaxSeqLen, "implausible sequence length");
    expect_words += words_for(lengths[i]);
  }
  auto total_words = get<std::uint64_t>(in, "word count");
  FH_REQUIRE(total_words == expect_words,
             "sequence database word count mismatch");

  SequenceDatabase db;
  db.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    std::size_t n_words = words_for(lengths[i]);
    std::vector<std::uint32_t> words(n_words);
    read_exact(in, words.data(), n_words * sizeof(std::uint32_t),
               "residue words");
    Sequence s;
    s.name = std::move(names[i]);
    s.codes = unpack_residues(words.data(), lengths[i]);
    for (auto c : s.codes)
      FH_REQUIRE(is_valid(c), "corrupt residue code in sequence database");
    db.add(std::move(s));
  }
  return db;
}

SequenceDatabase read_seq_db_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  FH_REQUIRE_IO(in.good(), "cannot open sequence database: " + path);
  return read_seq_db(in);
}

// ---------------------------------------------------------------------------
// MappedSeqDb

MappedSeqDb::MappedSeqDb(const std::string& path, Backing backing) {
#if FINEHMM_HAVE_MMAP
  if (backing == Backing::kAuto) {
    int fd = ::open(path.c_str(), O_RDONLY);
    FH_REQUIRE_IO(fd >= 0, "cannot open sequence database: " + path);
    struct stat st;
    if (::fstat(fd, &st) == 0 && st.st_size > 0) {
      void* addr = ::mmap(nullptr, static_cast<std::size_t>(st.st_size),
                          PROT_READ, MAP_PRIVATE, fd, 0);
      if (addr != MAP_FAILED) {
        base_ = static_cast<const unsigned char*>(addr);
        file_size_ = static_cast<std::size_t>(st.st_size);
        mmap_backed_ = true;
#if defined(MADV_SEQUENTIAL)
        ::madvise(addr, file_size_, MADV_SEQUENTIAL);
#endif
#if defined(MADV_WILLNEED)
        ::madvise(addr, file_size_, MADV_WILLNEED);
#endif
      }
    }
    ::close(fd);
  }
#else
  (void)backing;
#endif
  if (!mmap_backed_) {
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    FH_REQUIRE_IO(in.good(), "cannot open sequence database: " + path);
    auto end = in.tellg();
    FH_REQUIRE(end >= 0, "cannot size sequence database: " + path);
    fallback_.resize(static_cast<std::size_t>(end));
    in.seekg(0);
    in.read(reinterpret_cast<char*>(fallback_.data()),
            static_cast<std::streamsize>(fallback_.size()));
    FH_REQUIRE(static_cast<std::size_t>(in.gcount()) == fallback_.size(),
               "short read while buffering sequence database: " + path);
    base_ = fallback_.data();
    file_size_ = fallback_.size();
  }
  try {
    parse_and_validate(path);
  } catch (...) {
    release();
    throw;
  }
}

MappedSeqDb::~MappedSeqDb() { release(); }

MappedSeqDb::MappedSeqDb(MappedSeqDb&& other) noexcept
    : base_(other.base_),
      file_size_(other.file_size_),
      mmap_backed_(other.mmap_backed_),
      fallback_(std::move(other.fallback_)),
      index_(std::move(other.index_)),
      total_residues_(other.total_residues_),
      max_length_(other.max_length_) {
  if (!mmap_backed_ && !fallback_.empty()) base_ = fallback_.data();
  other.base_ = nullptr;
  other.file_size_ = 0;
  other.mmap_backed_ = false;
}

MappedSeqDb& MappedSeqDb::operator=(MappedSeqDb&& other) noexcept {
  if (this != &other) {
    release();
    base_ = other.base_;
    file_size_ = other.file_size_;
    mmap_backed_ = other.mmap_backed_;
    fallback_ = std::move(other.fallback_);
    index_ = std::move(other.index_);
    total_residues_ = other.total_residues_;
    max_length_ = other.max_length_;
    if (!mmap_backed_ && !fallback_.empty()) base_ = fallback_.data();
    other.base_ = nullptr;
    other.file_size_ = 0;
    other.mmap_backed_ = false;
  }
  return *this;
}

void MappedSeqDb::release() noexcept {
#if FINEHMM_HAVE_MMAP
  if (mmap_backed_ && base_ != nullptr)
    ::munmap(const_cast<unsigned char*>(base_), file_size_);
#endif
  base_ = nullptr;
  file_size_ = 0;
  mmap_backed_ = false;
  fallback_.clear();
  index_.clear();
}

void MappedSeqDb::parse_and_validate(const std::string& path) {
  std::size_t off = 0;
  auto need = [&](std::size_t n, const char* what) {
    if (file_size_ - off < n || file_size_ < off) {
      throw Error("truncated sequence database " + path + ": " +
                  std::string(what) + " at byte " + std::to_string(off) +
                  " needs " + std::to_string(n) + " bytes, file has " +
                  std::to_string(file_size_ - off) + " left");
    }
  };
  auto get_u32 = [&](const char* what) {
    need(sizeof(std::uint32_t), what);
    std::uint32_t v;
    std::memcpy(&v, base_ + off, sizeof(v));
    off += sizeof(v);
    return v;
  };
  auto get_u64 = [&](const char* what) {
    need(sizeof(std::uint64_t), what);
    std::uint64_t v;
    std::memcpy(&v, base_ + off, sizeof(v));
    off += sizeof(v);
    return v;
  };

  need(sizeof(kMagic), "magic");
  FH_REQUIRE(std::memcmp(base_, kMagic, sizeof(kMagic)) == 0,
             "not a finehmm sequence database (bad magic): " + path);
  off += sizeof(kMagic);
  auto version = get_u32("version");
  FH_REQUIRE(version == kVersion,
             "unsupported sequence database version: " + path);
  auto count = get_u64("sequence count");
  FH_REQUIRE(count <= kMaxSequences, "implausible sequence count: " + path);
  // Each sequence needs at least 8 header bytes; reject counts that cannot
  // fit in the file before reserving index memory for them.
  FH_REQUIRE(count <= file_size_ / (2 * sizeof(std::uint32_t)),
             "sequence count exceeds file size: " + path);

  index_.resize(count);
  std::uint64_t expect_words = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    Entry& e = index_[i];
    e.name_len = get_u32("name length");
    FH_REQUIRE(e.name_len <= kMaxNameLen, "implausible name length: " + path);
    need(e.name_len, "sequence name");
    e.name_offset = off;
    off += e.name_len;
    e.length = get_u32("sequence length");
    FH_REQUIRE(e.length <= kMaxSeqLen, "implausible sequence length: " + path);
    expect_words += words_for(e.length);
    total_residues_ += e.length;
    if (e.length > max_length_) max_length_ = e.length;
  }
  auto total_words = get_u64("word count");
  FH_REQUIRE(total_words == expect_words,
             "sequence database word count mismatch: " + path);
  need(total_words * sizeof(std::uint32_t), "residue words");
  for (std::uint64_t i = 0; i < count; ++i) {
    index_[i].word_offset = off;
    off += words_for(index_[i].length) * sizeof(std::uint32_t);
  }

  // Validate every residue code once so scan kernels can index emission
  // tables straight from the packed stream.
  for (std::uint64_t i = 0; i < count; ++i) {
    PackedResidues packed(base_ + index_[i].word_offset);
    for (std::uint32_t r = 0; r < index_[i].length; ++r) {
      FH_REQUIRE(is_valid(packed[r]),
                 "corrupt residue code in sequence database: " + path +
                     " (sequence " + std::to_string(i) + ")");
    }
  }
}

SequenceDatabase MappedSeqDb::materialize() const {
  SequenceDatabase db;
  db.reserve(size());
  for (std::size_t i = 0; i < size(); ++i) {
    Sequence s;
    s.name = std::string(name(i));
    s.codes.resize(length(i));
    unpack_into(residues(i), length(i), s.codes.data());
    db.add(std::move(s));
  }
  return db;
}

}  // namespace finehmm::bio
