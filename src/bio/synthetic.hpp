// Synthetic sequence database generation.
//
// The paper evaluates on Swissprot (459,565 sequences / 171.7M residues) and
// Env_nr (6,549,721 sequences / 1.29B residues).  Neither database ships
// with this repository, so we synthesize stand-ins that reproduce what the
// kernels are actually sensitive to: database size, sequence-length
// distribution (load imbalance across warps) and residue composition.
// Presets can be scaled down uniformly for CI-speed runs; every figure
// bench reports which scale it used.
#pragma once

#include <cstdint>
#include <string>

#include "bio/sequence.hpp"
#include "util/rng.hpp"

namespace finehmm::bio {

/// Parameters of a synthetic database.  Lengths are log-normal, clamped to
/// [min_length, max_length]; residues are i.i.d. from the background
/// composition.
struct SyntheticDbSpec {
  std::string name;
  std::size_t n_sequences = 1000;
  double log_length_mu = 5.6;     // underlying normal mean
  double log_length_sigma = 0.55; // underlying normal sd
  std::size_t min_length = 25;
  std::size_t max_length = 8000;
  std::uint64_t seed = 42;

  /// Swissprot-like preset: mean length ~374 residues.  `scale` divides the
  /// sequence count (1.0 would be the full 459,565 sequences).
  static SyntheticDbSpec swissprot_like(double scale);

  /// Env_nr-like preset: many short sequences, mean length ~197.
  static SyntheticDbSpec envnr_like(double scale);

  /// Expected mean sequence length of the log-normal (before clamping).
  double expected_mean_length() const;
};

/// Generate the database described by `spec`.
SequenceDatabase generate_database(const SyntheticDbSpec& spec);

/// Generate a single random sequence of the given length from the
/// background composition.
Sequence random_sequence(std::size_t length, Pcg32& rng,
                         const std::string& name = "random");

}  // namespace finehmm::bio
