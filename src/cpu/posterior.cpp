#include "cpu/posterior.hpp"

#include <algorithm>
#include <cmath>

#include "cpu/checkpoint.hpp"
#include "cpu/generic.hpp"
#include "util/error.hpp"
#include "util/logspace.hpp"

namespace finehmm::cpu {

namespace {

using hmm::kPTBM;
using hmm::kPTDD;
using hmm::kPTDM;
using hmm::kPTII;
using hmm::kPTIM;
using hmm::kPTMD;
using hmm::kPTMI;
using hmm::kPTMM;

float add(float a, float b) {
  if (a == kNegInf || b == kNegInf) return kNegInf;
  return a + b;
}

}  // namespace

PosteriorMatrices posterior_matrices(const hmm::SearchProfile& prof,
                                     const std::uint8_t* seq, std::size_t L) {
  FH_REQUIRE(L >= 1, "cannot decode an empty sequence");
  const int M = prof.length();
  const auto xs = prof.xsc_for(static_cast<int>(L));

  PosteriorMatrices pm;
  pm.M = M;
  pm.L = L;
  const std::size_t stride = static_cast<std::size_t>(M + 1);
  const std::size_t cells = (L + 1) * stride;
  for (auto* v : {&pm.fwd_m, &pm.fwd_i, &pm.fwd_d, &pm.bwd_m, &pm.bwd_i,
                  &pm.bwd_d})
    v->assign(cells, kNegInf);
  for (auto* v : {&pm.fwd_n, &pm.fwd_b, &pm.fwd_j, &pm.fwd_c, &pm.bwd_n,
                  &pm.bwd_b, &pm.bwd_j, &pm.bwd_c})
    v->assign(L + 1, kNegInf);

  auto idx = [stride](std::size_t i, int k) { return i * stride + k; };

  // ---------------- Forward, storing everything ----------------
  pm.fwd_n[0] = 0.0f;
  pm.fwd_b[0] = xs.n_move;
  for (std::size_t i = 1; i <= L; ++i) {
    std::uint8_t x = seq[i - 1];
    float xE = kNegInf;
    for (int k = 1; k <= M; ++k) {
      float m = add(pm.fwd_b[i - 1], prof.tsc(k - 1, kPTBM));
      m = logsum_exact(
          m, add(pm.fwd_m[idx(i - 1, k - 1)], prof.tsc(k - 1, kPTMM)));
      m = logsum_exact(
          m, add(pm.fwd_i[idx(i - 1, k - 1)], prof.tsc(k - 1, kPTIM)));
      m = logsum_exact(
          m, add(pm.fwd_d[idx(i - 1, k - 1)], prof.tsc(k - 1, kPTDM)));
      m = add(m, prof.msc(k, x));
      pm.fwd_m[idx(i, k)] = m;
      xE = logsum_exact(xE, add(m, prof.esc(k)));

      if (k < M)
        pm.fwd_i[idx(i, k)] = logsum_exact(
            add(pm.fwd_m[idx(i - 1, k)], prof.tsc(k, kPTMI)),
            add(pm.fwd_i[idx(i - 1, k)], prof.tsc(k, kPTII)));
      if (k >= 2)
        pm.fwd_d[idx(i, k)] = logsum_exact(
            add(pm.fwd_m[idx(i, k - 1)], prof.tsc(k - 1, kPTMD)),
            add(pm.fwd_d[idx(i, k - 1)], prof.tsc(k - 1, kPTDD)));
    }
    pm.fwd_j[i] = logsum_exact(add(pm.fwd_j[i - 1], xs.j_loop),
                               add(xE, xs.e_j));
    pm.fwd_c[i] = logsum_exact(add(pm.fwd_c[i - 1], xs.c_loop),
                               add(xE, xs.e_c));
    pm.fwd_n[i] = add(pm.fwd_n[i - 1], xs.n_loop);
    pm.fwd_b[i] = logsum_exact(add(pm.fwd_n[i], xs.n_move),
                               add(pm.fwd_j[i], xs.j_move));
  }
  pm.total = add(pm.fwd_c[L], xs.c_move);

  // ---------------- Backward, storing everything ----------------
  pm.bwd_c[L] = xs.c_move;
  // (B, N, J at row L are dead ends; M at row L exits through E -> C.)
  {
    float bxE = add(xs.e_c, pm.bwd_c[L]);
    for (int k = 1; k <= M; ++k)
      pm.bwd_m[idx(L, k)] = add(prof.esc(k), bxE);
  }
  for (std::size_t i = L; i-- > 0;) {
    std::uint8_t x = seq[i];  // residue i+1, next to be emitted

    float bxB = kNegInf;
    for (int k = 1; k <= M; ++k)
      bxB = logsum_exact(
          bxB, add(prof.tsc(k - 1, kPTBM),
                   add(prof.msc(k, x), pm.bwd_m[idx(i + 1, k)])));
    pm.bwd_b[i] = bxB;
    pm.bwd_j[i] = logsum_exact(add(xs.j_loop, pm.bwd_j[i + 1]),
                               add(xs.j_move, bxB));
    pm.bwd_c[i] = add(xs.c_loop, pm.bwd_c[i + 1]);
    pm.bwd_n[i] = logsum_exact(add(xs.n_loop, pm.bwd_n[i + 1]),
                               add(xs.n_move, bxB));
    float bxE = logsum_exact(add(xs.e_c, pm.bwd_c[i]),
                             add(xs.e_j, pm.bwd_j[i]));

    if (i == 0) {
      // Row 0 has no M/I/D states occupied (nothing emitted yet).
      break;
    }
    for (int k = M; k >= 1; --k) {
      float d = kNegInf;
      if (k < M) {
        d = add(prof.tsc(k, kPTDM),
                add(prof.msc(k + 1, x), pm.bwd_m[idx(i + 1, k + 1)]));
        d = logsum_exact(
            d, add(prof.tsc(k, kPTDD), pm.bwd_d[idx(i, k + 1)]));
      }
      pm.bwd_d[idx(i, k)] = d;

      float iv = kNegInf;
      if (k < M) {
        iv = add(prof.tsc(k, kPTIM),
                 add(prof.msc(k + 1, x), pm.bwd_m[idx(i + 1, k + 1)]));
        iv = logsum_exact(iv,
                          add(prof.tsc(k, kPTII), pm.bwd_i[idx(i + 1, k)]));
      }
      pm.bwd_i[idx(i, k)] = iv;

      float m = add(prof.esc(k), bxE);
      if (k < M) {
        m = logsum_exact(
            m, add(prof.tsc(k, kPTMM),
                   add(prof.msc(k + 1, x), pm.bwd_m[idx(i + 1, k + 1)])));
        m = logsum_exact(m,
                         add(prof.tsc(k, kPTMI), pm.bwd_i[idx(i + 1, k)]));
        m = logsum_exact(m, add(prof.tsc(k, kPTMD), pm.bwd_d[idx(i, k + 1)]));
      }
      pm.bwd_m[idx(i, k)] = m;
    }
  }
  return pm;
}

std::vector<float> model_occupancy(const PosteriorMatrices& pm) {
  std::vector<float> mocc(pm.L, 0.0f);
  const std::size_t stride = static_cast<std::size_t>(pm.M + 1);
  for (std::size_t i = 1; i <= pm.L; ++i) {
    float acc = kNegInf;
    for (int k = 1; k <= pm.M; ++k) {
      acc = logsum_exact(acc, pm.fwd_m[i * stride + k] +
                                  pm.bwd_m[i * stride + k]);
      acc = logsum_exact(acc, pm.fwd_i[i * stride + k] +
                                  pm.bwd_i[i * stride + k]);
    }
    float p = acc == kNegInf ? 0.0f : std::exp(acc - pm.total);
    mocc[i - 1] = std::min(1.0f, std::max(0.0f, p));
  }
  return mocc;
}

std::vector<Domain> domains_from_occupancy(const hmm::SearchProfile& prof,
                                           const std::uint8_t* seq,
                                           std::size_t L, const float* mocc,
                                           const DomainDefOptions& opts) {
  std::vector<Domain> out;
  std::size_t i = 0;
  while (i < L) {
    if (mocc[i] < opts.rt1) {
      ++i;
      continue;
    }
    // Seed found: extend with the looser rt2 threshold.
    std::size_t lo = i;
    while (lo > 0 && mocc[lo - 1] >= opts.rt2) --lo;
    std::size_t hi = i;
    while (hi + 1 < L && mocc[hi + 1] >= opts.rt2) ++hi;

    Domain d;
    d.i_start = lo + 1;
    d.i_end = hi + 1;

    // Rescore the envelope independently, as hmmsearch does.
    std::size_t env_len = hi - lo + 1;
    const std::uint8_t* env = seq + lo;
    float raw = generic_forward(prof, env, env_len);
    d.bits = hmm::nats_to_bits(raw, static_cast<int>(env_len));

    auto trace = viterbi_trace(prof, env, env_len);
    d.alignments = trace_alignments(trace, prof, env);
    for (auto& a : d.alignments) {
      a.i_start += lo;  // shift to whole-sequence coordinates
      a.i_end += lo;
    }
    out.push_back(std::move(d));
    i = hi + 1;
  }
  return out;
}

std::vector<Domain> define_domains(const hmm::SearchProfile& prof,
                                   const std::uint8_t* seq, std::size_t L,
                                   const DomainDefOptions& opts) {
  // The checkpointed decoder (O(M*sqrt(L)) memory) produces the same
  // occupancies as the full matrices; domain definition only needs mocc.
  auto ck = model_occupancy_checkpointed(prof, seq, L);
  return domains_from_occupancy(prof, seq, L, ck.mocc.data(), opts);
}

}  // namespace finehmm::cpu
