// Viterbi traceback and alignment rendering (extension).
//
// The filters only need scores, but a usable search tool reports *where*
// the motif matched.  viterbi_trace runs the full Plan-7 Viterbi DP with
// backpointers and recovers the optimal state path; trace_alignments
// renders each pass through the core model (a B->...->E segment) as a
// three-line alignment block, hmmsearch-style:
//
//     model  kvLATGCEw          (consensus; lowercase = weak column)
//     match  k+LA GC w          (letter = exact, '+' = positive score)
//     seq    KILASGCRW
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hmm/profile.hpp"

namespace finehmm::cpu {

enum class TraceState : std::uint8_t { kN, kB, kM, kI, kD, kE, kJ, kC };

struct TraceStep {
  TraceState state;
  int k = 0;          // model node (M/I/D states)
  std::size_t i = 0;  // 1-based sequence position for emitting steps, 0 else
};

struct ViterbiTrace {
  std::vector<TraceStep> steps;
  float score = 0.0f;  // the Viterbi score this path achieves (nats)
};

/// Full Viterbi with backpointers; O(M*L) time and space.
ViterbiTrace viterbi_trace(const hmm::SearchProfile& prof,
                           const std::uint8_t* seq, std::size_t L);

class TraceWorkspace;

/// Scan-path variant of viterbi_trace: identical states, scores, and step
/// sequence (equality-tested against the reference above), but all DP and
/// backpointer storage lives in a caller-owned, grow-only workspace and
/// the inner loop uses plain IEEE float adds — kNegInf is -infinity, so
/// `a + b` equals the reference's guarded add bit-for-bit (no +inf ever
/// enters the recurrence, hence no NaN).  Database engines keep one
/// workspace per worker so rescoring a survivor allocates nothing once the
/// workspace has grown to the largest (M, L) seen.
ViterbiTrace viterbi_trace(const hmm::SearchProfile& prof,
                           const std::uint8_t* seq, std::size_t L,
                           TraceWorkspace& ws);

/// Reusable storage for the workspace viterbi_trace overload.  Buffers
/// only ever grow; a default-constructed workspace is valid and sizes
/// itself on first use.
class TraceWorkspace {
 public:
  TraceWorkspace() = default;

 private:
  friend ViterbiTrace viterbi_trace(const hmm::SearchProfile&,
                                    const std::uint8_t*, std::size_t,
                                    TraceWorkspace&);
  void reserve(int M, std::size_t L);

  std::vector<float> rows_;      // 6 rolling value rows of (M+1) floats
  std::vector<std::uint8_t> bm_; // (L+1)*(M+1) match backpointers
  std::vector<std::uint8_t> bi_; // (L+1)*(M+1) insert backpointers
  std::vector<std::uint8_t> bd_; // (L+1)*(M+1) delete backpointers
  std::vector<int> be_;          // best exit node per row
  std::vector<std::uint8_t> bj_, bc_, bb_;  // special-state backpointers
};

/// One aligned core-model segment of a trace.
struct Alignment {
  int k_start = 0, k_end = 0;          // model span
  std::size_t i_start = 0, i_end = 0;  // sequence span (1-based)
  std::string model_line;              // consensus with '.' for inserts
  std::string match_line;              // identity / '+' / ' '
  std::string seq_line;                // residues with '-' for deletes
};

/// Split a trace into its B->E segments and render them.
std::vector<Alignment> trace_alignments(const ViterbiTrace& trace,
                                        const hmm::SearchProfile& prof,
                                        const std::uint8_t* seq);

/// Recompute the score of a trace by summing its transition and emission
/// scores (used by tests to validate the traceback).
float trace_score(const ViterbiTrace& trace, const hmm::SearchProfile& prof,
                  const std::uint8_t* seq, std::size_t L);

}  // namespace finehmm::cpu
