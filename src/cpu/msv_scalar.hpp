// Golden scalar implementation of the 8-bit MSV filter.
//
// This is the executable specification: the striped CPU filter and the
// warp-synchronous SIMT kernel must return bit-identical xJ bytes.  The
// recurrence follows HMMER 3.0's p7_MSVFilter (and the paper's Algorithm
// 1) exactly, including the double-buffered diagonal read.
#pragma once

#include <cstddef>
#include <cstdint>

#include "cpu/filter_result.hpp"
#include "profile/msv_profile.hpp"

namespace finehmm::cpu {

/// Score one digitized sequence; L is the sequence length.
FilterResult msv_scalar(const profile::MsvProfile& prof,
                        const std::uint8_t* seq, std::size_t L);

}  // namespace finehmm::cpu
