#include "cpu/msv_filter.hpp"

#include <cstring>

#include "cpu/simd_vec.hpp"
#include "util/error.hpp"

namespace finehmm::cpu {

MsvFilter::MsvFilter(const profile::MsvProfile& prof) : prof_(prof) {
  row_.assign(static_cast<std::size_t>(prof.striped_segments()) *
                  profile::MsvProfile::kLanes,
              0);
}

FilterResult MsvFilter::score(const std::uint8_t* seq, std::size_t L) {
  FH_REQUIRE(L >= 1, "cannot score an empty sequence");
  const int Q = prof_.striped_segments();
  const U8x16 biasv = U8x16::splat(prof_.bias());
  const std::uint8_t base = prof_.base();
  const std::uint8_t tbm = prof_.tbm();
  const std::uint8_t tec = prof_.tec();
  const std::uint8_t tjb = prof_.tjb_for(static_cast<int>(L));

  std::memset(row_.data(), 0, row_.size());

  std::uint8_t xJ = 0;
  std::uint8_t xB = base > tjb ? std::uint8_t(base - tjb) : 0;

  FilterResult out;
  for (std::size_t i = 0; i < L; ++i) {
    const std::uint8_t* rbv = prof_.striped_row(seq[i]);
    const U8x16 xBv = U8x16::splat(xB > tbm ? std::uint8_t(xB - tbm) : 0);
    U8x16 xEv = U8x16::zero();

    // Diagonal: previous row's last stripe, lanes shifted up by one.
    U8x16 mpv = shift_lanes_up(
        U8x16::load(row_.data() + static_cast<std::size_t>(Q - 1) *
                                      profile::MsvProfile::kLanes));
    for (int q = 0; q < Q; ++q) {
      std::uint8_t* cell =
          row_.data() + static_cast<std::size_t>(q) * profile::MsvProfile::kLanes;
      U8x16 sv = max_u8(mpv, xBv);
      sv = adds_u8(sv, biasv);
      sv = subs_u8(sv, U8x16::load(rbv + static_cast<std::size_t>(q) *
                                             profile::MsvProfile::kLanes));
      xEv = max_u8(xEv, sv);
      mpv = U8x16::load(cell);  // previous-row value (double buffer)
      sv.store(cell);
    }
    std::uint8_t xE = hmax_u8(xEv);
    if (prof_.overflowed(xE)) {
      out.score_nats = std::numeric_limits<float>::infinity();
      out.overflowed = true;
      return out;
    }
    xE = xE > tec ? std::uint8_t(xE - tec) : 0;
    if (xE > xJ) xJ = xE;
    xB = xJ > base ? xJ : base;
    xB = xB > tjb ? std::uint8_t(xB - tjb) : 0;
  }
  out.score_nats = prof_.score_from_bytes(xJ, static_cast<int>(L));
  return out;
}

FilterResult msv_striped(const profile::MsvProfile& prof,
                         const std::uint8_t* seq, std::size_t L) {
  MsvFilter f(prof);
  return f.score(seq, L);
}

}  // namespace finehmm::cpu
