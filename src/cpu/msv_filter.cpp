#include "cpu/msv_filter.hpp"

#include "cpu/simd_backend/backend.hpp"
#include "cpu/simd_backend/kernels.hpp"
#include "cpu/simd_vec.hpp"

namespace finehmm::cpu {

MsvFilter::MsvFilter(const profile::MsvProfile& prof, SimdTier tier)
    : MsvFilter(prof, tier, nullptr) {}

MsvFilter::MsvFilter(const profile::MsvProfile& prof, SimdTier tier,
                     std::shared_ptr<const WideMsvStripes<32>> wide)
    : prof_(prof), tier_(resolve_simd_tier(tier)), wide_(std::move(wide)) {
  int lanes = profile::MsvProfile::kLanes;
  int q = prof.striped_segments();
  if (tier_ == SimdTier::kAvx2) {
    if (wide_ == nullptr)
      wide_ = std::make_shared<const WideMsvStripes<32>>(prof);
    lanes = 32;
    q = wide_->segments();
  } else {
    wide_.reset();
  }
  row_.assign(static_cast<std::size_t>(q) * lanes, 0);
}

FilterResult MsvFilter::score(const std::uint8_t* seq, std::size_t L) {
  switch (tier_) {
    case SimdTier::kAvx2:
      return backend::msv_avx2(prof_, wide_->row(0), wide_->segments(), seq,
                               L, row_.data());
    case SimdTier::kSse2:
      return backend::msv_sse2(prof_, seq, L, row_.data());
    case SimdTier::kPortable:
      break;
  }
  return simd_kernels::msv_kernel<U8x16>(prof_, prof_.striped_row(0),
                                         prof_.striped_segments(), seq, L,
                                         row_.data());
}

FilterResult MsvFilter::score(bio::PackedResidues seq, std::size_t L) {
  switch (tier_) {
    case SimdTier::kAvx2:
      return backend::msv_avx2(prof_, wide_->row(0), wide_->segments(), seq,
                               L, row_.data());
    case SimdTier::kSse2:
      return backend::msv_sse2(prof_, seq, L, row_.data());
    case SimdTier::kPortable:
      break;
  }
  return simd_kernels::msv_kernel<U8x16>(prof_, prof_.striped_row(0),
                                         prof_.striped_segments(), seq, L,
                                         row_.data());
}

FilterResult msv_striped(const profile::MsvProfile& prof,
                         const std::uint8_t* seq, std::size_t L) {
  thread_local aligned_vector<std::uint8_t> row;
  const std::size_t n = static_cast<std::size_t>(prof.striped_segments()) *
                        profile::MsvProfile::kLanes;
  if (row.size() < n) row.resize(n);
  if (active_simd_tier() != SimdTier::kPortable && backend::have_sse2())
    return backend::msv_sse2(prof, seq, L, row.data());
  return simd_kernels::msv_kernel<U8x16>(prof, prof.striped_row(0),
                                         prof.striped_segments(), seq, L,
                                         row.data());
}

}  // namespace finehmm::cpu
