#include "cpu/msv_filter.hpp"

#include "cpu/msv_wide.hpp"
#include "cpu/simd_vec.hpp"
#include "util/error.hpp"

namespace finehmm::cpu {

SharedMsvRows make_shared_msv_rows(const profile::MsvProfile& prof,
                                   int lanes) {
  SharedMsvRows out;
  out.lanes = lanes;
  switch (lanes) {
    case 16:
      out.rows = prof.striped_row(0);
      out.Q = prof.striped_segments();
      return out;
    case 32: {
      auto wide = std::make_shared<const WideMsvStripes<32>>(prof);
      out.rows = wide->row(0);
      out.Q = wide->segments();
      out.owner = std::move(wide);
      return out;
    }
    case 64: {
      auto wide = std::make_shared<const WideMsvStripes<64>>(prof);
      out.rows = wide->row(0);
      out.Q = wide->segments();
      out.owner = std::move(wide);
      return out;
    }
    default:
      throw Error("unsupported MSV byte lane count");
  }
}

MsvFilter::MsvFilter(const profile::MsvProfile& prof, SimdTier tier)
    : MsvFilter(prof, tier, SharedMsvRows{}) {}

MsvFilter::MsvFilter(const profile::MsvProfile& prof, SimdTier tier,
                     SharedMsvRows wide)
    : prof_(prof),
      ops_(&backend::tier_kernels(resolve_simd_tier(tier))),
      wide_(std::move(wide)) {
  if (wide_.rows == nullptr)
    wide_ = make_shared_msv_rows(prof, ops_->u8_lanes);
  FH_REQUIRE(wide_.lanes == ops_->u8_lanes,
             "shared MSV rows built for a different lane count");
  row_.assign(static_cast<std::size_t>(wide_.Q) * wide_.lanes, 0);
}

FilterResult MsvFilter::score(const std::uint8_t* seq, std::size_t L) {
  return ops_->msv(prof_, wide_.rows, wide_.Q, seq, L, row_.data());
}

FilterResult MsvFilter::score(bio::PackedResidues seq, std::size_t L) {
  return ops_->msv_packed(prof_, wide_.rows, wide_.Q, seq, L, row_.data());
}

FilterResult msv_striped(const profile::MsvProfile& prof,
                         const std::uint8_t* seq, std::size_t L) {
  thread_local aligned_vector<std::uint8_t> row;
  const std::size_t n = static_cast<std::size_t>(prof.striped_segments()) *
                        profile::MsvProfile::kLanes;
  if (row.size() < n) row.resize(n);
  if (active_simd_tier() != SimdTier::kPortable && backend::have_sse2())
    return backend::msv_sse2(prof, prof.striped_row(0),
                             prof.striped_segments(), seq, L, row.data());
  return simd_kernels::msv_kernel<U8x16>(prof, prof.striped_row(0),
                                         prof.striped_segments(), seq, L,
                                         row.data());
}

}  // namespace finehmm::cpu
