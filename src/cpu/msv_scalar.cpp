#include "cpu/msv_scalar.hpp"

#include <vector>

#include "util/check.hpp"
#include "util/error.hpp"
#include "util/logspace.hpp"

namespace finehmm::cpu {

namespace {

inline std::uint8_t sat_add(std::uint8_t a, std::uint8_t b) {
  unsigned s = unsigned(a) + unsigned(b);
  return s > 255u ? 255u : std::uint8_t(s);
}
inline std::uint8_t sat_sub(std::uint8_t a, std::uint8_t b) {
  return a > b ? std::uint8_t(a - b) : 0;
}

}  // namespace

FilterResult msv_scalar(const profile::MsvProfile& prof,
                        const std::uint8_t* seq, std::size_t L) {
  FH_REQUIRE(L >= 1, "cannot score an empty sequence");
  const int M = prof.length();
  const std::uint8_t base = prof.base();
  const std::uint8_t bias = prof.bias();
  const std::uint8_t tbm = prof.tbm();
  const std::uint8_t tec = prof.tec();
  const std::uint8_t tjb = prof.tjb_for(static_cast<int>(L));

  // mmx[k], k = 1..M; byte 0 is the saturating floor (-inf).
  std::vector<std::uint8_t> mmx(static_cast<std::size_t>(M) + 1, 0);

  std::uint8_t xJ = 0;
  std::uint8_t xB = sat_sub(base, tjb);  // N->B move charged up front

  FilterResult out;
  for (std::size_t i = 0; i < L; ++i) {
    const std::uint8_t* rbv = prof.linear_row(seq[i]);
    const std::uint8_t xBv = sat_sub(xB, tbm);
    std::uint8_t xE = 0;
    std::uint8_t diag = 0;  // previous row's mmx[k-1]; mmx[0] == floor
    for (int k = 1; k <= M; ++k) {
      std::uint8_t sv = diag > xBv ? diag : xBv;
      sv = sat_add(sv, bias);
      sv = sat_sub(sv, rbv[k - 1]);
      diag = mmx[k];  // read previous-row value before overwriting
      mmx[k] = sv;
      if (sv > xE) xE = sv;
    }
    if (prof.overflowed(xE)) {
      out.score_nats = std::numeric_limits<float>::infinity();
      out.overflowed = true;
      return out;
    }
    xE = sat_sub(xE, tec);
    FINEHMM_IF_CHECKS(const std::uint8_t prev_xJ = xJ;)
    if (xE > xJ) xJ = xE;
    // Saturation monotonicity: the running max never decreases, so byte
    // saturation can only ever round scores down, never oscillate.
    FINEHMM_DCHECK(xJ >= prev_xJ, "MSV xJ must be monotone non-decreasing");
    xB = xJ > base ? xJ : base;
    xB = sat_sub(xB, tjb);
  }
  out.score_nats = prof.score_from_bytes(xJ, static_cast<int>(L));
  return out;
}

}  // namespace finehmm::cpu
