// SSE2 instantiations of the striped filter kernels.
//
// SSE2 is part of the x86-64 baseline ABI, so this TU needs no extra
// compile flags; on non-x86 targets it degrades to stubs and have_sse2()
// reports false, leaving the portable tier in charge.
#include "cpu/simd_backend/backend.hpp"

#include "util/error.hpp"

#if defined(__x86_64__) || defined(_M_X64) || defined(__SSE2__)
#define FINEHMM_SSE2_TU 1
#include "cpu/simd_backend/vec_sse2.hpp"
#endif

namespace finehmm::cpu::backend {

#if FINEHMM_SSE2_TU

bool have_sse2() { return true; }

FilterResult msv_sse2(const profile::MsvProfile& prof,
                      const std::uint8_t* rows, int Q,
                      const std::uint8_t* seq, std::size_t L,
                      std::uint8_t* row) {
  return simd_kernels::msv_kernel<SseU8x16>(prof, rows, Q, seq, L, row);
}

FilterResult ssv_sse2(const profile::MsvProfile& prof,
                      const std::uint8_t* rows, int Q,
                      const std::uint8_t* seq, std::size_t L,
                      std::uint8_t* row) {
  return simd_kernels::ssv_kernel<SseU8x16>(prof, rows, Q, seq, L, row);
}

FilterResult vit_sse2(const profile::VitProfile& prof,
                      const simd_kernels::VitStripesView& st,
                      const std::uint8_t* seq, std::size_t L,
                      std::int16_t* mmx, std::int16_t* imx,
                      std::int16_t* dmx, int* lazyf_passes) {
  return simd_kernels::vit_kernel<SseI16x8>(prof, st, seq, L, mmx, imx,
                                            dmx, lazyf_passes);
}

float fwd_sse2(const profile::FwdProfile& prof,
               const simd_kernels::FwdStripesView& st,
               const std::uint8_t* seq, std::size_t L, float* mmx,
               float* imx, float* dmx) {
  return simd_kernels::fwd_kernel<SseF32x4>(prof, st, seq, L, mmx, imx,
                                            dmx);
}

float fwd_bwd_sse2(const profile::FwdProfile& prof,
                   const simd_kernels::FwdStripesView& st,
                   const std::uint8_t* seq, std::size_t L,
                   const simd_kernels::FwdBwdScratch& ws, float* mocc) {
  return simd_kernels::fwd_bwd_kernel<SseF32x4>(prof, st, seq, L, ws,
                                                mocc);
}

FilterResult msv_sse2(const profile::MsvProfile& prof,
                      const std::uint8_t* rows, int Q,
                      bio::PackedResidues seq, std::size_t L,
                      std::uint8_t* row) {
  return simd_kernels::msv_kernel<SseU8x16>(prof, rows, Q, seq, L, row);
}

FilterResult ssv_sse2(const profile::MsvProfile& prof,
                      const std::uint8_t* rows, int Q,
                      bio::PackedResidues seq, std::size_t L,
                      std::uint8_t* row) {
  return simd_kernels::ssv_kernel<SseU8x16>(prof, rows, Q, seq, L, row);
}

void msv_group_sse2(const simd_kernels::MsvGroupView& g,
                    const simd_kernels::MsvGroupState& st,
                    const std::uint8_t* seq, std::size_t L,
                    std::uint8_t* row) {
  simd_kernels::msv_group_kernel<SseU8x16>(g, st, seq, L, row);
}

void ssv_group_sse2(const simd_kernels::MsvGroupView& g,
                    const simd_kernels::MsvGroupState& st,
                    const std::uint8_t* seq, std::size_t L,
                    std::uint8_t* row) {
  simd_kernels::ssv_group_kernel<SseU8x16>(g, st, seq, L, row);
}

void msv_group_sse2(const simd_kernels::MsvGroupView& g,
                    const simd_kernels::MsvGroupState& st,
                    bio::PackedResidues seq, std::size_t L,
                    std::uint8_t* row) {
  simd_kernels::msv_group_kernel<SseU8x16>(g, st, seq, L, row);
}

void ssv_group_sse2(const simd_kernels::MsvGroupView& g,
                    const simd_kernels::MsvGroupState& st,
                    bio::PackedResidues seq, std::size_t L,
                    std::uint8_t* row) {
  simd_kernels::ssv_group_kernel<SseU8x16>(g, st, seq, L, row);
}

#else  // non-x86 host: stubs, never dispatched to

bool have_sse2() { return false; }

FilterResult msv_sse2(const profile::MsvProfile&, const std::uint8_t*, int,
                      const std::uint8_t*, std::size_t, std::uint8_t*) {
  throw Error("SSE2 backend not available on this target");
}
FilterResult ssv_sse2(const profile::MsvProfile&, const std::uint8_t*, int,
                      const std::uint8_t*, std::size_t, std::uint8_t*) {
  throw Error("SSE2 backend not available on this target");
}
FilterResult vit_sse2(const profile::VitProfile&,
                      const simd_kernels::VitStripesView&,
                      const std::uint8_t*, std::size_t, std::int16_t*,
                      std::int16_t*, std::int16_t*, int*) {
  throw Error("SSE2 backend not available on this target");
}
float fwd_sse2(const profile::FwdProfile&,
               const simd_kernels::FwdStripesView&, const std::uint8_t*,
               std::size_t, float*, float*, float*) {
  throw Error("SSE2 backend not available on this target");
}
float fwd_bwd_sse2(const profile::FwdProfile&,
                   const simd_kernels::FwdStripesView&,
                   const std::uint8_t*, std::size_t,
                   const simd_kernels::FwdBwdScratch&, float*) {
  throw Error("SSE2 backend not available on this target");
}
FilterResult msv_sse2(const profile::MsvProfile&, const std::uint8_t*, int,
                      bio::PackedResidues, std::size_t, std::uint8_t*) {
  throw Error("SSE2 backend not available on this target");
}
FilterResult ssv_sse2(const profile::MsvProfile&, const std::uint8_t*, int,
                      bio::PackedResidues, std::size_t, std::uint8_t*) {
  throw Error("SSE2 backend not available on this target");
}
void msv_group_sse2(const simd_kernels::MsvGroupView&,
                    const simd_kernels::MsvGroupState&, const std::uint8_t*,
                    std::size_t, std::uint8_t*) {
  throw Error("SSE2 backend not available on this target");
}
void ssv_group_sse2(const simd_kernels::MsvGroupView&,
                    const simd_kernels::MsvGroupState&, const std::uint8_t*,
                    std::size_t, std::uint8_t*) {
  throw Error("SSE2 backend not available on this target");
}
void msv_group_sse2(const simd_kernels::MsvGroupView&,
                    const simd_kernels::MsvGroupState&, bio::PackedResidues,
                    std::size_t, std::uint8_t*) {
  throw Error("SSE2 backend not available on this target");
}
void ssv_group_sse2(const simd_kernels::MsvGroupView&,
                    const simd_kernels::MsvGroupState&, bio::PackedResidues,
                    std::size_t, std::uint8_t*) {
  throw Error("SSE2 backend not available on this target");
}

#endif

}  // namespace finehmm::cpu::backend
