// Native filter backend entry points and the per-tier dispatch table.
//
// Each function is one striped filter kernel instantiated with a native
// vector class (vec_sse2.hpp / vec_avx2.hpp / vec_avx512.hpp) inside an
// ISA-specific translation unit; this header itself is plain C++ and safe
// to include anywhere.  All entry points take caller-owned DP scratch and
// perform no heap allocation.  Callers must not invoke a tier whose
// have_*() probe returns false — the dispatcher (cpu::resolve_simd_tier
// and the filter classes) guarantees that; the stubs compiled when a tier
// is absent throw.
//
// Every tier exposes the same signatures (HMMER4-style):
//   * msv/ssv take a re-striped emission table for the tier's byte lane
//     count (cpu::WideMsvStripes<N> layout: residue x at rows + x*Q*N;
//     for SSE2 the MsvProfile's own 16-lane arrays are already that
//     layout and are passed zero-copy).
//   * vit takes a VitStripesView built for the tier's word lane count
//     (cpu::WideVitStripes<N>; SSE2 uses vit_native_view below).
//   * fwd / fwd_bwd take a FwdStripesView built for the tier's float lane
//     count (cpu::WideFwdStripes).
//
// tier_kernels() maps a SimdTier to its function-pointer row, so the
// filter classes resolve MSV/SSV/Viterbi/Forward/Backward through one
// table instead of per-filter switch ladders.
#pragma once

#include <cstddef>
#include <cstdint>

#include "bio/packed_seq.hpp"
#include "cpu/filter_result.hpp"
#include "cpu/simd_backend/kernels.hpp"
#include "cpu/simd_backend/simd_tier.hpp"
#include "profile/fwd_profile.hpp"
#include "profile/msv_profile.hpp"
#include "profile/vit_profile.hpp"

namespace finehmm::cpu::backend {

/// True when the SSE2 backend is compiled in and this CPU can run it.
bool have_sse2();
/// True when the AVX2 backend is compiled in and this CPU can run it.
bool have_avx2();
/// True when the AVX-512 backend is compiled in and this CPU can run it
/// (requires the F and BW subsets).
bool have_avx512();

/// The VitProfile's native 8-word striping as a VitStripesView (zero-copy;
/// this is what the SSE2 tier consumes).
inline simd_kernels::VitStripesView vit_native_view(
    const profile::VitProfile& prof) {
  simd_kernels::VitStripesView st;
  st.msc = prof.msc_striped(0);
  st.tmm = prof.tmm_striped();
  st.tim = prof.tim_striped();
  st.tdm = prof.tdm_striped();
  st.tmi = prof.tmi_striped();
  st.tii = prof.tii_striped();
  st.tmd = prof.tmd_striped();
  st.tdd = prof.tdd_striped();
  st.Q = prof.striped_segments();
  return st;
}

/// The FwdProfile's native 4-float striping as a FwdStripesView
/// (zero-copy; what the portable and SSE2 tiers consume for plain
/// scoring).  The out-indexed stripes are left null — Backward needs a
/// cpu::WideFwdStripes, which builds them for any lane count.
inline simd_kernels::FwdStripesView fwd_native_view(
    const profile::FwdProfile& prof) {
  simd_kernels::FwdStripesView st;
  st.odds = prof.odds_striped(0);
  st.tmm = prof.tmm_striped();
  st.tim = prof.tim_striped();
  st.tdm = prof.tdm_striped();
  st.tmi = prof.tmi_striped();
  st.tii = prof.tii_striped();
  st.tmd = prof.tmd_in_striped();
  st.tdd = prof.tdd_in_striped();
  st.entry = prof.entry();
  st.Q = prof.striped_segments();
  return st;
}

// ---- SSE2 tier (128-bit: 16 bytes / 8 words / 4 floats) ----
FilterResult msv_sse2(const profile::MsvProfile& prof,
                      const std::uint8_t* rows, int Q,
                      const std::uint8_t* seq, std::size_t L,
                      std::uint8_t* row);
FilterResult ssv_sse2(const profile::MsvProfile& prof,
                      const std::uint8_t* rows, int Q,
                      const std::uint8_t* seq, std::size_t L,
                      std::uint8_t* row);
FilterResult vit_sse2(const profile::VitProfile& prof,
                      const simd_kernels::VitStripesView& st,
                      const std::uint8_t* seq, std::size_t L,
                      std::int16_t* mmx, std::int16_t* imx,
                      std::int16_t* dmx, int* lazyf_passes = nullptr);
float fwd_sse2(const profile::FwdProfile& prof,
               const simd_kernels::FwdStripesView& st,
               const std::uint8_t* seq, std::size_t L, float* mmx,
               float* imx, float* dmx);
float fwd_bwd_sse2(const profile::FwdProfile& prof,
                   const simd_kernels::FwdStripesView& st,
                   const std::uint8_t* seq, std::size_t L,
                   const simd_kernels::FwdBwdScratch& ws, float* mocc);

// Zero-copy overloads for the database scan path: the sequence is a packed
// 5-bit residue view (typically into an mmap'd .fsqdb), consumed in place.
// Bit-identical to the byte-code overloads by construction — both
// instantiate the same kernel, only the Seq accessor differs.
FilterResult msv_sse2(const profile::MsvProfile& prof,
                      const std::uint8_t* rows, int Q,
                      bio::PackedResidues seq, std::size_t L,
                      std::uint8_t* row);
FilterResult ssv_sse2(const profile::MsvProfile& prof,
                      const std::uint8_t* rows, int Q,
                      bio::PackedResidues seq, std::size_t L,
                      std::uint8_t* row);

// Fused multi-model group sweeps (cpu::FusedMsvGroup packing; see
// simd_kernels::msv_group_kernel).
void msv_group_sse2(const simd_kernels::MsvGroupView& g,
                    const simd_kernels::MsvGroupState& st,
                    const std::uint8_t* seq, std::size_t L,
                    std::uint8_t* row);
void ssv_group_sse2(const simd_kernels::MsvGroupView& g,
                    const simd_kernels::MsvGroupState& st,
                    const std::uint8_t* seq, std::size_t L,
                    std::uint8_t* row);
void msv_group_sse2(const simd_kernels::MsvGroupView& g,
                    const simd_kernels::MsvGroupState& st,
                    bio::PackedResidues seq, std::size_t L,
                    std::uint8_t* row);
void ssv_group_sse2(const simd_kernels::MsvGroupView& g,
                    const simd_kernels::MsvGroupState& st,
                    bio::PackedResidues seq, std::size_t L,
                    std::uint8_t* row);

// ---- AVX2 tier (256-bit: 32 bytes / 16 words / 8 floats) ----
FilterResult msv_avx2(const profile::MsvProfile& prof,
                      const std::uint8_t* rows, int Q,
                      const std::uint8_t* seq, std::size_t L,
                      std::uint8_t* row);
FilterResult ssv_avx2(const profile::MsvProfile& prof,
                      const std::uint8_t* rows, int Q,
                      const std::uint8_t* seq, std::size_t L,
                      std::uint8_t* row);
FilterResult vit_avx2(const profile::VitProfile& prof,
                      const simd_kernels::VitStripesView& st,
                      const std::uint8_t* seq, std::size_t L,
                      std::int16_t* mmx, std::int16_t* imx,
                      std::int16_t* dmx, int* lazyf_passes = nullptr);
float fwd_avx2(const profile::FwdProfile& prof,
               const simd_kernels::FwdStripesView& st,
               const std::uint8_t* seq, std::size_t L, float* mmx,
               float* imx, float* dmx);
float fwd_bwd_avx2(const profile::FwdProfile& prof,
                   const simd_kernels::FwdStripesView& st,
                   const std::uint8_t* seq, std::size_t L,
                   const simd_kernels::FwdBwdScratch& ws, float* mocc);

// Packed-residue (zero-copy) overloads; see the SSE2 notes above.
FilterResult msv_avx2(const profile::MsvProfile& prof,
                      const std::uint8_t* rows, int Q,
                      bio::PackedResidues seq, std::size_t L,
                      std::uint8_t* row);
FilterResult ssv_avx2(const profile::MsvProfile& prof,
                      const std::uint8_t* rows, int Q,
                      bio::PackedResidues seq, std::size_t L,
                      std::uint8_t* row);

void msv_group_avx2(const simd_kernels::MsvGroupView& g,
                    const simd_kernels::MsvGroupState& st,
                    const std::uint8_t* seq, std::size_t L,
                    std::uint8_t* row);
void ssv_group_avx2(const simd_kernels::MsvGroupView& g,
                    const simd_kernels::MsvGroupState& st,
                    const std::uint8_t* seq, std::size_t L,
                    std::uint8_t* row);
void msv_group_avx2(const simd_kernels::MsvGroupView& g,
                    const simd_kernels::MsvGroupState& st,
                    bio::PackedResidues seq, std::size_t L,
                    std::uint8_t* row);
void ssv_group_avx2(const simd_kernels::MsvGroupView& g,
                    const simd_kernels::MsvGroupState& st,
                    bio::PackedResidues seq, std::size_t L,
                    std::uint8_t* row);

// ---- AVX-512 tier (512-bit: 64 bytes / 32 words / 16 floats) ----
FilterResult msv_avx512(const profile::MsvProfile& prof,
                        const std::uint8_t* rows, int Q,
                        const std::uint8_t* seq, std::size_t L,
                        std::uint8_t* row);
FilterResult ssv_avx512(const profile::MsvProfile& prof,
                        const std::uint8_t* rows, int Q,
                        const std::uint8_t* seq, std::size_t L,
                        std::uint8_t* row);
FilterResult vit_avx512(const profile::VitProfile& prof,
                        const simd_kernels::VitStripesView& st,
                        const std::uint8_t* seq, std::size_t L,
                        std::int16_t* mmx, std::int16_t* imx,
                        std::int16_t* dmx, int* lazyf_passes = nullptr);
float fwd_avx512(const profile::FwdProfile& prof,
                 const simd_kernels::FwdStripesView& st,
                 const std::uint8_t* seq, std::size_t L, float* mmx,
                 float* imx, float* dmx);
float fwd_bwd_avx512(const profile::FwdProfile& prof,
                     const simd_kernels::FwdStripesView& st,
                     const std::uint8_t* seq, std::size_t L,
                     const simd_kernels::FwdBwdScratch& ws, float* mocc);

FilterResult msv_avx512(const profile::MsvProfile& prof,
                        const std::uint8_t* rows, int Q,
                        bio::PackedResidues seq, std::size_t L,
                        std::uint8_t* row);
FilterResult ssv_avx512(const profile::MsvProfile& prof,
                        const std::uint8_t* rows, int Q,
                        bio::PackedResidues seq, std::size_t L,
                        std::uint8_t* row);

void msv_group_avx512(const simd_kernels::MsvGroupView& g,
                      const simd_kernels::MsvGroupState& st,
                      const std::uint8_t* seq, std::size_t L,
                      std::uint8_t* row);
void ssv_group_avx512(const simd_kernels::MsvGroupView& g,
                      const simd_kernels::MsvGroupState& st,
                      const std::uint8_t* seq, std::size_t L,
                      std::uint8_t* row);
void msv_group_avx512(const simd_kernels::MsvGroupView& g,
                      const simd_kernels::MsvGroupState& st,
                      bio::PackedResidues seq, std::size_t L,
                      std::uint8_t* row);
void ssv_group_avx512(const simd_kernels::MsvGroupView& g,
                      const simd_kernels::MsvGroupState& st,
                      bio::PackedResidues seq, std::size_t L,
                      std::uint8_t* row);

// ---- Per-tier dispatch table ----

/// One tier's kernels plus its lane geometry.  The portable row wraps the
/// template kernels with the portable lane classes at 128-bit widths, so
/// every row satisfies the same signatures and the filter classes can
/// dispatch data-driven.  Function pointers, so no default arguments:
/// vit's final parameter is the optional lazyf_passes out-param
/// (nullable), fwd_bwd's mocc must hold L floats.
struct TierKernels {
  SimdTier tier = SimdTier::kPortable;
  int u8_lanes = 0;   // MSV/SSV byte lanes
  int i16_lanes = 0;  // Viterbi word lanes
  int f32_lanes = 0;  // Forward/Backward float lanes

  FilterResult (*msv)(const profile::MsvProfile&, const std::uint8_t*, int,
                      const std::uint8_t*, std::size_t,
                      std::uint8_t*) = nullptr;
  FilterResult (*msv_packed)(const profile::MsvProfile&,
                             const std::uint8_t*, int, bio::PackedResidues,
                             std::size_t, std::uint8_t*) = nullptr;
  FilterResult (*ssv)(const profile::MsvProfile&, const std::uint8_t*, int,
                      const std::uint8_t*, std::size_t,
                      std::uint8_t*) = nullptr;
  FilterResult (*ssv_packed)(const profile::MsvProfile&,
                             const std::uint8_t*, int, bio::PackedResidues,
                             std::size_t, std::uint8_t*) = nullptr;
  FilterResult (*vit)(const profile::VitProfile&,
                      const simd_kernels::VitStripesView&,
                      const std::uint8_t*, std::size_t, std::int16_t*,
                      std::int16_t*, std::int16_t*, int*) = nullptr;
  float (*fwd)(const profile::FwdProfile&,
               const simd_kernels::FwdStripesView&, const std::uint8_t*,
               std::size_t, float*, float*, float*) = nullptr;
  float (*fwd_bwd)(const profile::FwdProfile&,
                   const simd_kernels::FwdStripesView&,
                   const std::uint8_t*, std::size_t,
                   const simd_kernels::FwdBwdScratch&, float*) = nullptr;

  // Fused multi-model sweeps: one call scores every member of a packed
  // group (results come back through MsvGroupState's xj/overflowed).
  void (*msv_group)(const simd_kernels::MsvGroupView&,
                    const simd_kernels::MsvGroupState&, const std::uint8_t*,
                    std::size_t, std::uint8_t*) = nullptr;
  void (*msv_group_packed)(const simd_kernels::MsvGroupView&,
                           const simd_kernels::MsvGroupState&,
                           bio::PackedResidues, std::size_t,
                           std::uint8_t*) = nullptr;
  void (*ssv_group)(const simd_kernels::MsvGroupView&,
                    const simd_kernels::MsvGroupState&, const std::uint8_t*,
                    std::size_t, std::uint8_t*) = nullptr;
  void (*ssv_group_packed)(const simd_kernels::MsvGroupView&,
                           const simd_kernels::MsvGroupState&,
                           bio::PackedResidues, std::size_t,
                           std::uint8_t*) = nullptr;
};

/// The dispatch row for one tier.  The caller is responsible for only
/// asking for tiers that are supported (simd_tier_supported); the
/// returned row's entries for an unavailable tier are the throwing stubs.
const TierKernels& tier_kernels(SimdTier tier);

}  // namespace finehmm::cpu::backend
