// Native filter backend entry points.
//
// Each function is one striped filter kernel instantiated with a native
// vector class (vec_sse2.hpp / vec_avx2.hpp) inside an ISA-specific
// translation unit; this header itself is plain C++ and safe to include
// anywhere.  All entry points take caller-owned DP scratch and perform no
// heap allocation.  Callers must not invoke a tier whose have_*() probe
// returns false — the dispatcher (cpu::resolve_simd_tier and the filter
// classes) guarantees that; the stubs compiled on non-x86 hosts throw.
//
// Layout contracts:
//   * msv_sse2 / ssv_sse2 / vit_sse2 / fwd_sse2 read the profiles' own
//     128-bit striped arrays (16 bytes / 8 words / 4 floats per stripe).
//   * msv_avx2 / ssv_avx2 take a 32-lane re-striped emission table
//     (cpu::WideMsvStripes<32> layout: residue x at rows + x*Q*32).
//   * vit_avx2 takes a 16-lane VitStripesView (cpu::WideVitStripes<16>).
#pragma once

#include <cstddef>
#include <cstdint>

#include "bio/packed_seq.hpp"
#include "cpu/filter_result.hpp"
#include "cpu/simd_backend/kernels.hpp"
#include "profile/fwd_profile.hpp"
#include "profile/msv_profile.hpp"
#include "profile/vit_profile.hpp"

namespace finehmm::cpu::backend {

/// True when the SSE2 backend is compiled in and this CPU can run it.
bool have_sse2();
/// True when the AVX2 backend is compiled in and this CPU can run it.
bool have_avx2();

// ---- SSE2 tier (128-bit, the profiles' native striping) ----
FilterResult msv_sse2(const profile::MsvProfile& prof,
                      const std::uint8_t* seq, std::size_t L,
                      std::uint8_t* row);
FilterResult ssv_sse2(const profile::MsvProfile& prof,
                      const std::uint8_t* seq, std::size_t L,
                      std::uint8_t* row);
FilterResult vit_sse2(const profile::VitProfile& prof,
                      const std::uint8_t* seq, std::size_t L,
                      std::int16_t* mmx, std::int16_t* imx,
                      std::int16_t* dmx, int* lazyf_passes = nullptr);
float fwd_sse2(const profile::FwdProfile& prof, const std::uint8_t* seq,
               std::size_t L, float* mmx, float* imx, float* dmx);

// Zero-copy overloads for the database scan path: the sequence is a packed
// 5-bit residue view (typically into an mmap'd .fsqdb), consumed in place.
// Bit-identical to the byte-code overloads by construction — both
// instantiate the same kernel, only the Seq accessor differs.
FilterResult msv_sse2(const profile::MsvProfile& prof,
                      bio::PackedResidues seq, std::size_t L,
                      std::uint8_t* row);
FilterResult ssv_sse2(const profile::MsvProfile& prof,
                      bio::PackedResidues seq, std::size_t L,
                      std::uint8_t* row);

// ---- AVX2 tier (256-bit, caller-provided re-striped parameters) ----
FilterResult msv_avx2(const profile::MsvProfile& prof,
                      const std::uint8_t* rows, int Q,
                      const std::uint8_t* seq, std::size_t L,
                      std::uint8_t* row);
FilterResult ssv_avx2(const profile::MsvProfile& prof,
                      const std::uint8_t* rows, int Q,
                      const std::uint8_t* seq, std::size_t L,
                      std::uint8_t* row);
FilterResult vit_avx2(const profile::VitProfile& prof,
                      const simd_kernels::VitStripesView& st,
                      const std::uint8_t* seq, std::size_t L,
                      std::int16_t* mmx, std::int16_t* imx,
                      std::int16_t* dmx, int* lazyf_passes = nullptr);

// Packed-residue (zero-copy) overloads; see the SSE2 notes above.
FilterResult msv_avx2(const profile::MsvProfile& prof,
                      const std::uint8_t* rows, int Q,
                      bio::PackedResidues seq, std::size_t L,
                      std::uint8_t* row);
FilterResult ssv_avx2(const profile::MsvProfile& prof,
                      const std::uint8_t* rows, int Q,
                      bio::PackedResidues seq, std::size_t L,
                      std::uint8_t* row);

}  // namespace finehmm::cpu::backend
