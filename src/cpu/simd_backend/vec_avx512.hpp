// Native AVX-512 lane classes satisfying the simd_kernels vector contract.
//
// 64 byte lanes for MSV/SSV, 32 word lanes for the ViterbiFilter and 16
// float lanes for Forward/Backward — the widths HMMER4 uses for its
// avx512 engines.  Requires AVX-512F (valignd/valignq cross-lane shifts,
// 512-bit float math) plus AVX-512BW (byte/word saturating arithmetic and
// the epi8/epi16 compare masks); both are probed together at runtime.
// The lane-shift idiom differs from AVX2: VPALIGNR still works per
// 128-bit lane, so the carry register is built with VALIGNQ (a full
// cross-register 128-bit shift) instead of VPERM2I128, and the float
// shifts use VALIGND directly since it is fully cross-lane.
// Only include from TUs compiled with -mavx512f -mavx512bw (see
// backend_avx512.cpp).
#pragma once

#include <immintrin.h>

#include <cstdint>

#include "profile/vit_profile.hpp"

namespace finehmm::cpu::backend {

/// 64 unsigned bytes in one ZMM register (MSV lane type, AVX-512 tier).
struct Avx512U8x64 {
  static constexpr int kLanes = 64;
  __m512i v;

  static Avx512U8x64 splat(std::uint8_t x) {
    return {_mm512_set1_epi8(static_cast<char>(x))};
  }
  static Avx512U8x64 load(const std::uint8_t* p) {
    return {_mm512_loadu_si512(p)};
  }
  void store(std::uint8_t* p) const { _mm512_storeu_si512(p, v); }

  friend Avx512U8x64 max_u8(Avx512U8x64 a, Avx512U8x64 b) {
    return {_mm512_max_epu8(a.v, b.v)};
  }
  friend Avx512U8x64 adds_u8(Avx512U8x64 a, Avx512U8x64 b) {
    return {_mm512_adds_epu8(a.v, b.v)};
  }
  friend Avx512U8x64 subs_u8(Avx512U8x64 a, Avx512U8x64 b) {
    return {_mm512_subs_epu8(a.v, b.v)};
  }
  /// Lane j <- lane j-1 across all 64 lanes, lane 0 <- 0: VALIGNQ builds
  /// a carry copy shifted up one 128-bit lane (low lane zero), then the
  /// per-lane alignr pulls each lane's top byte from the lane below.
  friend Avx512U8x64 shift_lanes_up(Avx512U8x64 a) {
    __m512i carry = _mm512_alignr_epi64(a.v, _mm512_setzero_si512(), 6);
    return {_mm512_alignr_epi8(a.v, carry, 15)};
  }
  friend std::uint8_t hmax_u8(Avx512U8x64 a) {
    __m256i h = _mm256_max_epu8(_mm512_castsi512_si256(a.v),
                                _mm512_extracti64x4_epi64(a.v, 1));
    __m128i m =
        _mm_max_epu8(_mm256_castsi256_si128(h), _mm256_extracti128_si256(h, 1));
    m = _mm_max_epu8(m, _mm_srli_si128(m, 8));
    m = _mm_max_epu8(m, _mm_srli_si128(m, 4));
    m = _mm_max_epu8(m, _mm_srli_si128(m, 2));
    m = _mm_max_epu8(m, _mm_srli_si128(m, 1));
    return static_cast<std::uint8_t>(_mm_cvtsi128_si32(m) & 0xff);
  }
};

/// 32 signed words in one ZMM register (ViterbiFilter lane type, AVX-512).
struct Avx512I16x32 {
  static constexpr int kLanes = 32;
  __m512i v;

  static Avx512I16x32 splat(std::int16_t x) {
    return {_mm512_set1_epi16(x)};
  }
  static Avx512I16x32 neg_inf() { return splat(profile::kWordNegInf); }
  static Avx512I16x32 load(const std::int16_t* p) {
    return {_mm512_loadu_si512(p)};
  }
  void store(std::int16_t* p) const { _mm512_storeu_si512(p, v); }

  friend Avx512I16x32 max_i16(Avx512I16x32 a, Avx512I16x32 b) {
    return {_mm512_max_epi16(a.v, b.v)};
  }
  /// Sticky -inf saturating add (lane-wise profile::sat_add_word).
  friend Avx512I16x32 adds_w(Avx512I16x32 a, Avx512I16x32 b) {
    const __m512i ninf = _mm512_set1_epi16(profile::kWordNegInf);
    __m512i sum = _mm512_adds_epi16(a.v, b.v);
    sum = _mm512_max_epi16(sum, _mm512_set1_epi16(-32767));
    const __mmask32 is_ninf = _mm512_cmpeq_epi16_mask(a.v, ninf) |
                              _mm512_cmpeq_epi16_mask(b.v, ninf);
    return {_mm512_mask_mov_epi16(sum, is_ninf, ninf)};
  }
  /// Word lane j <- lane j-1 across all 32 lanes, lane 0 <- fill: the
  /// VALIGNQ carry's low 128-bit lane is zero, so its top word (which the
  /// alignr pulls into lane 0) is patched to `fill` with a masked set.
  friend Avx512I16x32 shift_lanes_up(
      Avx512I16x32 a, std::int16_t fill = profile::kWordNegInf) {
    __m512i carry = _mm512_alignr_epi64(a.v, _mm512_setzero_si512(), 6);
    carry = _mm512_mask_set1_epi16(carry, static_cast<__mmask32>(1u << 7),
                                   fill);
    return {_mm512_alignr_epi8(a.v, carry, 14)};
  }
  friend std::int16_t hmax_i16(Avx512I16x32 a) {
    __m256i h = _mm256_max_epi16(_mm512_castsi512_si256(a.v),
                                 _mm512_extracti64x4_epi64(a.v, 1));
    __m128i m = _mm_max_epi16(_mm256_castsi256_si128(h),
                              _mm256_extracti128_si256(h, 1));
    m = _mm_max_epi16(m, _mm_srli_si128(m, 8));
    m = _mm_max_epi16(m, _mm_srli_si128(m, 4));
    m = _mm_max_epi16(m, _mm_srli_si128(m, 2));
    return static_cast<std::int16_t>(_mm_cvtsi128_si32(m) & 0xffff);
  }
  friend bool any_gt_i16(Avx512I16x32 a, Avx512I16x32 b) {
    return _mm512_cmpgt_epi16_mask(a.v, b.v) != 0;
  }
};

/// 16 floats in one ZMM register (Forward/Backward lane type, AVX-512).
struct Avx512F32x16 {
  static constexpr int kLanes = 16;
  __m512 v;

  static Avx512F32x16 splat(float x) { return {_mm512_set1_ps(x)}; }
  static Avx512F32x16 load(const float* p) { return {_mm512_loadu_ps(p)}; }
  void store(float* p) const { _mm512_storeu_ps(p, v); }

  friend Avx512F32x16 add_f(Avx512F32x16 a, Avx512F32x16 b) {
    return {_mm512_add_ps(a.v, b.v)};
  }
  friend Avx512F32x16 mul_f(Avx512F32x16 a, Avx512F32x16 b) {
    return {_mm512_mul_ps(a.v, b.v)};
  }
  /// Lane j <- lane j-1, lane 0 <- 0.0f (VALIGND is fully cross-lane).
  friend Avx512F32x16 shift_lanes_up(Avx512F32x16 a) {
    return {_mm512_castsi512_ps(_mm512_alignr_epi32(
        _mm512_castps_si512(a.v), _mm512_setzero_si512(), 15))};
  }
  /// Lane j <- lane j+1, lane 15 <- 0.0f.
  friend Avx512F32x16 shift_lanes_down(Avx512F32x16 a) {
    return {_mm512_castsi512_ps(_mm512_alignr_epi32(
        _mm512_setzero_si512(), _mm512_castps_si512(a.v), 1))};
  }
  /// In-order lane sum starting from 0.0f: bit-identical to the portable
  /// 16-lane F32xN::hsum_f, which the Forward tolerance contract relies
  /// on (portable and native runs of the same width must agree exactly).
  friend float hsum_f(Avx512F32x16 a) {
    alignas(64) float t[16];
    _mm512_store_ps(t, a.v);
    float s = 0.0f;
    for (int i = 0; i < 16; ++i) s += t[i];
    return s;
  }
};

}  // namespace finehmm::cpu::backend
