// Native AVX2 lane classes satisfying the simd_kernels vector contract.
//
// 32 byte lanes for MSV/SSV, 16 word lanes for the ViterbiFilter and 8
// float lanes for Forward/Backward — the same re-striping HMMER shipped
// when it grew AVX2 support.  The only
// genuinely AVX2-specific wrinkle is shift_lanes_up: VPALIGNR operates
// within each 128-bit half, so the byte that crosses the half boundary
// has to be carried over with a VPERM2I128 first (the standard idiom).
// Only include from TUs compiled with -mavx2 (see backend_avx2.cpp).
#pragma once

#include <immintrin.h>

#include <cstdint>

#include "profile/vit_profile.hpp"

namespace finehmm::cpu::backend {

/// 32 unsigned bytes in one YMM register (MSV lane type, AVX2 tier).
struct AvxU8x32 {
  static constexpr int kLanes = 32;
  __m256i v;

  static AvxU8x32 splat(std::uint8_t x) {
    return {_mm256_set1_epi8(static_cast<char>(x))};
  }
  static AvxU8x32 load(const std::uint8_t* p) {
    return {_mm256_loadu_si256(reinterpret_cast<const __m256i*>(p))};
  }
  void store(std::uint8_t* p) const {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
  }

  friend AvxU8x32 max_u8(AvxU8x32 a, AvxU8x32 b) {
    return {_mm256_max_epu8(a.v, b.v)};
  }
  friend AvxU8x32 adds_u8(AvxU8x32 a, AvxU8x32 b) {
    return {_mm256_adds_epu8(a.v, b.v)};
  }
  friend AvxU8x32 subs_u8(AvxU8x32 a, AvxU8x32 b) {
    return {_mm256_subs_epu8(a.v, b.v)};
  }
  /// Lane j <- lane j-1 across the full 32 lanes, lane 0 <- 0: alignr
  /// against a copy whose high half holds our low half (and whose low
  /// half is zero), so byte 15 flows into byte 16.
  friend AvxU8x32 shift_lanes_up(AvxU8x32 a) {
    __m256i carry = _mm256_permute2x128_si256(a.v, a.v, 0x08);
    return {_mm256_alignr_epi8(a.v, carry, 15)};
  }
  friend std::uint8_t hmax_u8(AvxU8x32 a) {
    __m128i m = _mm_max_epu8(_mm256_castsi256_si128(a.v),
                             _mm256_extracti128_si256(a.v, 1));
    m = _mm_max_epu8(m, _mm_srli_si128(m, 8));
    m = _mm_max_epu8(m, _mm_srli_si128(m, 4));
    m = _mm_max_epu8(m, _mm_srli_si128(m, 2));
    m = _mm_max_epu8(m, _mm_srli_si128(m, 1));
    return static_cast<std::uint8_t>(_mm_cvtsi128_si32(m) & 0xff);
  }
};

/// 16 signed words in one YMM register (ViterbiFilter lane type, AVX2).
struct AvxI16x16 {
  static constexpr int kLanes = 16;
  __m256i v;

  static AvxI16x16 splat(std::int16_t x) { return {_mm256_set1_epi16(x)}; }
  static AvxI16x16 neg_inf() { return splat(profile::kWordNegInf); }
  static AvxI16x16 load(const std::int16_t* p) {
    return {_mm256_loadu_si256(reinterpret_cast<const __m256i*>(p))};
  }
  void store(std::int16_t* p) const {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
  }

  friend AvxI16x16 max_i16(AvxI16x16 a, AvxI16x16 b) {
    return {_mm256_max_epi16(a.v, b.v)};
  }
  /// Sticky -inf saturating add (lane-wise profile::sat_add_word).
  friend AvxI16x16 adds_w(AvxI16x16 a, AvxI16x16 b) {
    const __m256i ninf = _mm256_set1_epi16(profile::kWordNegInf);
    __m256i sum = _mm256_adds_epi16(a.v, b.v);
    sum = _mm256_max_epi16(sum, _mm256_set1_epi16(-32767));
    __m256i is_ninf = _mm256_or_si256(_mm256_cmpeq_epi16(a.v, ninf),
                                      _mm256_cmpeq_epi16(b.v, ninf));
    return {_mm256_blendv_epi8(sum, ninf, is_ninf)};
  }
  /// Word lane j <- lane j-1 across all 16 lanes, lane 0 <- fill: the
  /// carry copy's low half must expose `fill` as its top word so the
  /// alignr pulls it into lane 0.
  friend AvxI16x16 shift_lanes_up(AvxI16x16 a,
                                  std::int16_t fill = profile::kWordNegInf) {
    __m256i carry = _mm256_permute2x128_si256(a.v, a.v, 0x08);
    carry = _mm256_insert_epi16(carry, fill, 7);
    return {_mm256_alignr_epi8(a.v, carry, 14)};
  }
  friend std::int16_t hmax_i16(AvxI16x16 a) {
    __m128i m = _mm_max_epi16(_mm256_castsi256_si128(a.v),
                              _mm256_extracti128_si256(a.v, 1));
    m = _mm_max_epi16(m, _mm_srli_si128(m, 8));
    m = _mm_max_epi16(m, _mm_srli_si128(m, 4));
    m = _mm_max_epi16(m, _mm_srli_si128(m, 2));
    return static_cast<std::int16_t>(_mm_cvtsi128_si32(m) & 0xffff);
  }
  friend bool any_gt_i16(AvxI16x16 a, AvxI16x16 b) {
    return _mm256_movemask_epi8(_mm256_cmpgt_epi16(a.v, b.v)) != 0;
  }
};

/// 8 floats in one YMM register (Forward/Backward lane type, AVX2 tier).
struct AvxF32x8 {
  static constexpr int kLanes = 8;
  __m256 v;

  static AvxF32x8 splat(float x) { return {_mm256_set1_ps(x)}; }
  static AvxF32x8 load(const float* p) { return {_mm256_loadu_ps(p)}; }
  void store(float* p) const { _mm256_storeu_ps(p, v); }

  friend AvxF32x8 add_f(AvxF32x8 a, AvxF32x8 b) {
    return {_mm256_add_ps(a.v, b.v)};
  }
  friend AvxF32x8 mul_f(AvxF32x8 a, AvxF32x8 b) {
    return {_mm256_mul_ps(a.v, b.v)};
  }
  /// Lane j <- lane j-1 across all 8 lanes, lane 0 <- 0.0f: same
  /// VPERM2I128 carry idiom as the byte shift, four bytes at a time.
  friend AvxF32x8 shift_lanes_up(AvxF32x8 a) {
    const __m256i ai = _mm256_castps_si256(a.v);
    __m256i carry = _mm256_permute2x128_si256(ai, ai, 0x08);
    return {_mm256_castsi256_ps(_mm256_alignr_epi8(ai, carry, 12))};
  }
  /// Lane j <- lane j+1, lane 7 <- 0.0f: the carry copy holds [hi, 0] so
  /// lane 3 pulls from lane 4 and the top lane drains to zero.
  friend AvxF32x8 shift_lanes_down(AvxF32x8 a) {
    const __m256i ai = _mm256_castps_si256(a.v);
    __m256i carry = _mm256_permute2x128_si256(ai, ai, 0x81);
    return {_mm256_castsi256_ps(_mm256_alignr_epi8(carry, ai, 4))};
  }
  /// In-order lane sum starting from 0.0f: bit-identical to the portable
  /// 8-lane F32xN::hsum_f (portable and native runs of the same width
  /// must agree exactly; see docs/simd_dispatch.md).
  friend float hsum_f(AvxF32x8 a) {
    alignas(32) float t[8];
    _mm256_store_ps(t, a.v);
    float s = 0.0f;
    for (int i = 0; i < 8; ++i) s += t[i];
    return s;
  }
};

}  // namespace finehmm::cpu::backend
