// The per-tier kernel dispatch table.
//
// The portable row instantiates the shared template kernels with the
// plain-loop lane classes from cpu/simd_vec.hpp at the same 128-bit
// geometry as SSE2 (16 bytes / 8 words / 4 floats), so a forced portable
// run is bit-identical to the SSE2 run and the table is total: every row
// has every kernel.  Rows for tiers that were not compiled in (or cannot
// run on this CPU) still resolve — to the backend stubs, which throw —
// because callers are required to consult simd_tier_supported() first.
#include "cpu/simd_backend/backend.hpp"

#include <iterator>

#include "cpu/simd_vec.hpp"
#include "util/error.hpp"

namespace finehmm::cpu::backend {

namespace {

FilterResult msv_portable(const profile::MsvProfile& prof,
                          const std::uint8_t* rows, int Q,
                          const std::uint8_t* seq, std::size_t L,
                          std::uint8_t* row) {
  return simd_kernels::msv_kernel<U8x16>(prof, rows, Q, seq, L, row);
}

FilterResult msv_portable_packed(const profile::MsvProfile& prof,
                                 const std::uint8_t* rows, int Q,
                                 bio::PackedResidues seq, std::size_t L,
                                 std::uint8_t* row) {
  return simd_kernels::msv_kernel<U8x16>(prof, rows, Q, seq, L, row);
}

FilterResult ssv_portable(const profile::MsvProfile& prof,
                          const std::uint8_t* rows, int Q,
                          const std::uint8_t* seq, std::size_t L,
                          std::uint8_t* row) {
  return simd_kernels::ssv_kernel<U8x16>(prof, rows, Q, seq, L, row);
}

FilterResult ssv_portable_packed(const profile::MsvProfile& prof,
                                 const std::uint8_t* rows, int Q,
                                 bio::PackedResidues seq, std::size_t L,
                                 std::uint8_t* row) {
  return simd_kernels::ssv_kernel<U8x16>(prof, rows, Q, seq, L, row);
}

FilterResult vit_portable(const profile::VitProfile& prof,
                          const simd_kernels::VitStripesView& st,
                          const std::uint8_t* seq, std::size_t L,
                          std::int16_t* mmx, std::int16_t* imx,
                          std::int16_t* dmx, int* lazyf_passes) {
  return simd_kernels::vit_kernel<I16x8>(prof, st, seq, L, mmx, imx, dmx,
                                         lazyf_passes);
}

float fwd_portable(const profile::FwdProfile& prof,
                   const simd_kernels::FwdStripesView& st,
                   const std::uint8_t* seq, std::size_t L, float* mmx,
                   float* imx, float* dmx) {
  return simd_kernels::fwd_kernel<F32x4>(prof, st, seq, L, mmx, imx, dmx);
}

float fwd_bwd_portable(const profile::FwdProfile& prof,
                       const simd_kernels::FwdStripesView& st,
                       const std::uint8_t* seq, std::size_t L,
                       const simd_kernels::FwdBwdScratch& ws,
                       float* mocc) {
  return simd_kernels::fwd_bwd_kernel<F32x4>(prof, st, seq, L, ws, mocc);
}

void msv_group_portable(const simd_kernels::MsvGroupView& g,
                        const simd_kernels::MsvGroupState& st,
                        const std::uint8_t* seq, std::size_t L,
                        std::uint8_t* row) {
  simd_kernels::msv_group_kernel<U8x16>(g, st, seq, L, row);
}

void msv_group_portable_packed(const simd_kernels::MsvGroupView& g,
                               const simd_kernels::MsvGroupState& st,
                               bio::PackedResidues seq, std::size_t L,
                               std::uint8_t* row) {
  simd_kernels::msv_group_kernel<U8x16>(g, st, seq, L, row);
}

void ssv_group_portable(const simd_kernels::MsvGroupView& g,
                        const simd_kernels::MsvGroupState& st,
                        const std::uint8_t* seq, std::size_t L,
                        std::uint8_t* row) {
  simd_kernels::ssv_group_kernel<U8x16>(g, st, seq, L, row);
}

void ssv_group_portable_packed(const simd_kernels::MsvGroupView& g,
                               const simd_kernels::MsvGroupState& st,
                               bio::PackedResidues seq, std::size_t L,
                               std::uint8_t* row) {
  simd_kernels::ssv_group_kernel<U8x16>(g, st, seq, L, row);
}

constexpr TierKernels kTable[] = {
    {SimdTier::kPortable, 16, 8, 4,
     &msv_portable, &msv_portable_packed, &ssv_portable,
     &ssv_portable_packed, &vit_portable, &fwd_portable,
     &fwd_bwd_portable, &msv_group_portable, &msv_group_portable_packed,
     &ssv_group_portable, &ssv_group_portable_packed},
    {SimdTier::kSse2, 16, 8, 4,
     [](const profile::MsvProfile& p, const std::uint8_t* r, int q,
        const std::uint8_t* s, std::size_t l, std::uint8_t* w) {
       return msv_sse2(p, r, q, s, l, w);
     },
     [](const profile::MsvProfile& p, const std::uint8_t* r, int q,
        bio::PackedResidues s, std::size_t l, std::uint8_t* w) {
       return msv_sse2(p, r, q, s, l, w);
     },
     [](const profile::MsvProfile& p, const std::uint8_t* r, int q,
        const std::uint8_t* s, std::size_t l, std::uint8_t* w) {
       return ssv_sse2(p, r, q, s, l, w);
     },
     [](const profile::MsvProfile& p, const std::uint8_t* r, int q,
        bio::PackedResidues s, std::size_t l, std::uint8_t* w) {
       return ssv_sse2(p, r, q, s, l, w);
     },
     &vit_sse2, &fwd_sse2, &fwd_bwd_sse2,
     [](const simd_kernels::MsvGroupView& g,
        const simd_kernels::MsvGroupState& st, const std::uint8_t* s,
        std::size_t l, std::uint8_t* w) { msv_group_sse2(g, st, s, l, w); },
     [](const simd_kernels::MsvGroupView& g,
        const simd_kernels::MsvGroupState& st, bio::PackedResidues s,
        std::size_t l, std::uint8_t* w) { msv_group_sse2(g, st, s, l, w); },
     [](const simd_kernels::MsvGroupView& g,
        const simd_kernels::MsvGroupState& st, const std::uint8_t* s,
        std::size_t l, std::uint8_t* w) { ssv_group_sse2(g, st, s, l, w); },
     [](const simd_kernels::MsvGroupView& g,
        const simd_kernels::MsvGroupState& st, bio::PackedResidues s,
        std::size_t l, std::uint8_t* w) { ssv_group_sse2(g, st, s, l, w); }},
    {SimdTier::kAvx2, 32, 16, 8,
     [](const profile::MsvProfile& p, const std::uint8_t* r, int q,
        const std::uint8_t* s, std::size_t l, std::uint8_t* w) {
       return msv_avx2(p, r, q, s, l, w);
     },
     [](const profile::MsvProfile& p, const std::uint8_t* r, int q,
        bio::PackedResidues s, std::size_t l, std::uint8_t* w) {
       return msv_avx2(p, r, q, s, l, w);
     },
     [](const profile::MsvProfile& p, const std::uint8_t* r, int q,
        const std::uint8_t* s, std::size_t l, std::uint8_t* w) {
       return ssv_avx2(p, r, q, s, l, w);
     },
     [](const profile::MsvProfile& p, const std::uint8_t* r, int q,
        bio::PackedResidues s, std::size_t l, std::uint8_t* w) {
       return ssv_avx2(p, r, q, s, l, w);
     },
     &vit_avx2, &fwd_avx2, &fwd_bwd_avx2,
     [](const simd_kernels::MsvGroupView& g,
        const simd_kernels::MsvGroupState& st, const std::uint8_t* s,
        std::size_t l, std::uint8_t* w) { msv_group_avx2(g, st, s, l, w); },
     [](const simd_kernels::MsvGroupView& g,
        const simd_kernels::MsvGroupState& st, bio::PackedResidues s,
        std::size_t l, std::uint8_t* w) { msv_group_avx2(g, st, s, l, w); },
     [](const simd_kernels::MsvGroupView& g,
        const simd_kernels::MsvGroupState& st, const std::uint8_t* s,
        std::size_t l, std::uint8_t* w) { ssv_group_avx2(g, st, s, l, w); },
     [](const simd_kernels::MsvGroupView& g,
        const simd_kernels::MsvGroupState& st, bio::PackedResidues s,
        std::size_t l, std::uint8_t* w) { ssv_group_avx2(g, st, s, l, w); }},
    {SimdTier::kAvx512, 64, 32, 16,
     [](const profile::MsvProfile& p, const std::uint8_t* r, int q,
        const std::uint8_t* s, std::size_t l, std::uint8_t* w) {
       return msv_avx512(p, r, q, s, l, w);
     },
     [](const profile::MsvProfile& p, const std::uint8_t* r, int q,
        bio::PackedResidues s, std::size_t l, std::uint8_t* w) {
       return msv_avx512(p, r, q, s, l, w);
     },
     [](const profile::MsvProfile& p, const std::uint8_t* r, int q,
        const std::uint8_t* s, std::size_t l, std::uint8_t* w) {
       return ssv_avx512(p, r, q, s, l, w);
     },
     [](const profile::MsvProfile& p, const std::uint8_t* r, int q,
        bio::PackedResidues s, std::size_t l, std::uint8_t* w) {
       return ssv_avx512(p, r, q, s, l, w);
     },
     &vit_avx512, &fwd_avx512, &fwd_bwd_avx512,
     [](const simd_kernels::MsvGroupView& g,
        const simd_kernels::MsvGroupState& st, const std::uint8_t* s,
        std::size_t l, std::uint8_t* w) {
       msv_group_avx512(g, st, s, l, w);
     },
     [](const simd_kernels::MsvGroupView& g,
        const simd_kernels::MsvGroupState& st, bio::PackedResidues s,
        std::size_t l, std::uint8_t* w) {
       msv_group_avx512(g, st, s, l, w);
     },
     [](const simd_kernels::MsvGroupView& g,
        const simd_kernels::MsvGroupState& st, const std::uint8_t* s,
        std::size_t l, std::uint8_t* w) {
       ssv_group_avx512(g, st, s, l, w);
     },
     [](const simd_kernels::MsvGroupView& g,
        const simd_kernels::MsvGroupState& st, bio::PackedResidues s,
        std::size_t l, std::uint8_t* w) {
       ssv_group_avx512(g, st, s, l, w);
     }},
};

}  // namespace

const TierKernels& tier_kernels(SimdTier tier) {
  const auto idx = static_cast<std::size_t>(tier);
  FH_REQUIRE(idx < std::size(kTable), "unknown SIMD tier");
  return kTable[idx];
}

}  // namespace finehmm::cpu::backend
