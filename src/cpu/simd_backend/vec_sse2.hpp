// Native SSE2 lane classes satisfying the simd_kernels vector contract.
//
// Drop-in intrinsic twins of cpu/simd_vec.hpp's U8x16 / I16x8 / F32x4.
// Only SSE2 instructions are used (baseline on every x86-64), so this
// header needs no special compile flags.  Two operations deserve care:
//   * adds_w must reproduce the library's *sticky -inf* saturating add
//     (profile::sat_add_word), which plain PADDSW does not: -32768 is a
//     dedicated -infinity and the finite range is clamped at -32767.
//   * hsum_f must accumulate lanes in index order starting from 0.0f so
//     float Forward scores are bit-identical to the portable class.
// This header must only be included from translation units that are
// guaranteed SSE2 (x86-64 TUs; see backend_sse2.cpp).
#pragma once

#include <emmintrin.h>

#include <cstdint>

#include "profile/vit_profile.hpp"

namespace finehmm::cpu::backend {

/// 16 unsigned bytes in one XMM register (MSV lane type).
struct SseU8x16 {
  static constexpr int kLanes = 16;
  __m128i v;

  static SseU8x16 splat(std::uint8_t x) {
    return {_mm_set1_epi8(static_cast<char>(x))};
  }
  static SseU8x16 load(const std::uint8_t* p) {
    return {_mm_loadu_si128(reinterpret_cast<const __m128i*>(p))};
  }
  void store(std::uint8_t* p) const {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(p), v);
  }

  friend SseU8x16 max_u8(SseU8x16 a, SseU8x16 b) {
    return {_mm_max_epu8(a.v, b.v)};
  }
  friend SseU8x16 adds_u8(SseU8x16 a, SseU8x16 b) {
    return {_mm_adds_epu8(a.v, b.v)};
  }
  friend SseU8x16 subs_u8(SseU8x16 a, SseU8x16 b) {
    return {_mm_subs_epu8(a.v, b.v)};
  }
  /// Lane j <- lane j-1, lane 0 <- 0.
  friend SseU8x16 shift_lanes_up(SseU8x16 a) {
    return {_mm_slli_si128(a.v, 1)};
  }
  friend std::uint8_t hmax_u8(SseU8x16 a) {
    __m128i m = _mm_max_epu8(a.v, _mm_srli_si128(a.v, 8));
    m = _mm_max_epu8(m, _mm_srli_si128(m, 4));
    m = _mm_max_epu8(m, _mm_srli_si128(m, 2));
    m = _mm_max_epu8(m, _mm_srli_si128(m, 1));
    return static_cast<std::uint8_t>(_mm_cvtsi128_si32(m) & 0xff);
  }
};

/// 8 signed words in one XMM register (ViterbiFilter lane type).
struct SseI16x8 {
  static constexpr int kLanes = 8;
  __m128i v;

  static SseI16x8 splat(std::int16_t x) { return {_mm_set1_epi16(x)}; }
  static SseI16x8 neg_inf() { return splat(profile::kWordNegInf); }
  static SseI16x8 load(const std::int16_t* p) {
    return {_mm_loadu_si128(reinterpret_cast<const __m128i*>(p))};
  }
  void store(std::int16_t* p) const {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(p), v);
  }

  friend SseI16x8 max_i16(SseI16x8 a, SseI16x8 b) {
    return {_mm_max_epi16(a.v, b.v)};
  }
  /// Sticky -inf saturating add (lane-wise profile::sat_add_word).
  friend SseI16x8 adds_w(SseI16x8 a, SseI16x8 b) {
    const __m128i ninf = _mm_set1_epi16(profile::kWordNegInf);
    __m128i sum = _mm_adds_epi16(a.v, b.v);
    sum = _mm_max_epi16(sum, _mm_set1_epi16(-32767));
    __m128i is_ninf = _mm_or_si128(_mm_cmpeq_epi16(a.v, ninf),
                                   _mm_cmpeq_epi16(b.v, ninf));
    return {_mm_or_si128(_mm_and_si128(is_ninf, ninf),
                         _mm_andnot_si128(is_ninf, sum))};
  }
  /// Lane j <- lane j-1, lane 0 <- fill (-inf by default).
  friend SseI16x8 shift_lanes_up(SseI16x8 a,
                                 std::int16_t fill = profile::kWordNegInf) {
    return {_mm_insert_epi16(_mm_slli_si128(a.v, 2), fill, 0)};
  }
  friend std::int16_t hmax_i16(SseI16x8 a) {
    __m128i m = _mm_max_epi16(a.v, _mm_srli_si128(a.v, 8));
    m = _mm_max_epi16(m, _mm_srli_si128(m, 4));
    m = _mm_max_epi16(m, _mm_srli_si128(m, 2));
    return static_cast<std::int16_t>(_mm_cvtsi128_si32(m) & 0xffff);
  }
  friend bool any_gt_i16(SseI16x8 a, SseI16x8 b) {
    return _mm_movemask_epi8(_mm_cmpgt_epi16(a.v, b.v)) != 0;
  }
};

/// 4 floats in one XMM register (Forward lane type).
struct SseF32x4 {
  static constexpr int kLanes = 4;
  __m128 v;

  static SseF32x4 splat(float x) { return {_mm_set1_ps(x)}; }
  static SseF32x4 load(const float* p) { return {_mm_loadu_ps(p)}; }
  void store(float* p) const { _mm_storeu_ps(p, v); }

  friend SseF32x4 add_f(SseF32x4 a, SseF32x4 b) {
    return {_mm_add_ps(a.v, b.v)};
  }
  friend SseF32x4 mul_f(SseF32x4 a, SseF32x4 b) {
    return {_mm_mul_ps(a.v, b.v)};
  }
  /// Lane j <- lane j-1, lane 0 <- 0.0f.
  friend SseF32x4 shift_lanes_up(SseF32x4 a) {
    return {_mm_castsi128_ps(_mm_slli_si128(_mm_castps_si128(a.v), 4))};
  }
  /// Lane j <- lane j+1, lane 3 <- 0.0f.
  friend SseF32x4 shift_lanes_down(SseF32x4 a) {
    return {_mm_castsi128_ps(_mm_srli_si128(_mm_castps_si128(a.v), 4))};
  }
  /// In-order lane sum starting from 0.0f: bit-identical to the portable
  /// F32x4::hsum_f, which the Forward score contract depends on.
  friend float hsum_f(SseF32x4 a) {
    alignas(16) float t[4];
    _mm_store_ps(t, a.v);
    float s = 0.0f;
    for (int i = 0; i < 4; ++i) s += t[i];
    return s;
  }
};

}  // namespace finehmm::cpu::backend
