#include "cpu/simd_backend/simd_tier.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "cpu/simd_backend/backend.hpp"

namespace finehmm::cpu {

namespace {

// -1 = no override; otherwise the int value of a SimdTier.
std::atomic<int> g_override{-1};

SimdTier env_or_auto_tier() {
  static const SimdTier cached = [] {
    const char* env = std::getenv("FINEHMM_SIMD");
    if (env != nullptr && env[0] != '\0') {
      std::string_view name(env);
      if (name != "auto") {
        auto parsed = parse_simd_tier(name);
        if (parsed.has_value()) return resolve_simd_tier(*parsed);
        std::fprintf(stderr,
                     "finehmm: ignoring unknown FINEHMM_SIMD value '%s' "
                     "(expected portable|sse2|avx2|avx512|auto)\n",
                     env);
      }
    }
    return max_simd_tier();
  }();
  return cached;
}

}  // namespace

SimdTier max_simd_tier() {
  if (backend::have_avx512()) return SimdTier::kAvx512;
  if (backend::have_avx2()) return SimdTier::kAvx2;
  if (backend::have_sse2()) return SimdTier::kSse2;
  return SimdTier::kPortable;
}

bool simd_tier_supported(SimdTier tier) {
  switch (tier) {
    case SimdTier::kPortable:
      return true;
    case SimdTier::kSse2:
      return backend::have_sse2();
    case SimdTier::kAvx2:
      return backend::have_avx2();
    case SimdTier::kAvx512:
      return backend::have_avx512();
  }
  return false;
}

std::vector<SimdTier> supported_simd_tiers() {
  std::vector<SimdTier> out;
  for (SimdTier t : {SimdTier::kPortable, SimdTier::kSse2, SimdTier::kAvx2,
                     SimdTier::kAvx512})
    if (simd_tier_supported(t)) out.push_back(t);
  return out;
}

SimdTier active_simd_tier() {
  int forced = g_override.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<SimdTier>(forced);
  return env_or_auto_tier();
}

void set_simd_tier(SimdTier tier) {
  g_override.store(static_cast<int>(resolve_simd_tier(tier)),
                   std::memory_order_relaxed);
}

void reset_simd_tier() { g_override.store(-1, std::memory_order_relaxed); }

SimdTier resolve_simd_tier(SimdTier requested) {
  int t = static_cast<int>(requested);
  while (t > 0 && !simd_tier_supported(static_cast<SimdTier>(t))) --t;
  return static_cast<SimdTier>(t);
}

const char* simd_tier_name(SimdTier tier) {
  switch (tier) {
    case SimdTier::kPortable:
      return "portable";
    case SimdTier::kSse2:
      return "sse2";
    case SimdTier::kAvx2:
      return "avx2";
    case SimdTier::kAvx512:
      return "avx512";
  }
  return "unknown";
}

std::optional<SimdTier> parse_simd_tier(std::string_view name) {
  if (name == "portable" || name == "scalar") return SimdTier::kPortable;
  if (name == "sse2" || name == "sse") return SimdTier::kSse2;
  if (name == "avx2" || name == "avx") return SimdTier::kAvx2;
  if (name == "avx512" || name == "avx512bw") return SimdTier::kAvx512;
  return std::nullopt;
}

}  // namespace finehmm::cpu
