// AVX2 instantiations of the striped filter kernels.
//
// This is the only TU in the library compiled with -mavx2 (set per-file
// from src/CMakeLists.txt, which also defines FINEHMM_BACKEND_AVX2; there
// is deliberately no global -march so the rest of the binary stays
// runnable on any x86-64).  have_avx2() combines that compile-time
// availability with a cpuid probe, so a binary built here still runs —
// and correctly reports the tier unavailable — on an SSE2-only machine.
#include "cpu/simd_backend/backend.hpp"

#include "util/error.hpp"

#if defined(FINEHMM_BACKEND_AVX2) && defined(__AVX2__)
#define FINEHMM_AVX2_TU 1
#include "cpu/simd_backend/vec_avx2.hpp"
#endif

namespace finehmm::cpu::backend {

#if FINEHMM_AVX2_TU

bool have_avx2() {
#if defined(__GNUC__) || defined(__clang__)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

FilterResult msv_avx2(const profile::MsvProfile& prof,
                      const std::uint8_t* rows, int Q,
                      const std::uint8_t* seq, std::size_t L,
                      std::uint8_t* row) {
  return simd_kernels::msv_kernel<AvxU8x32>(prof, rows, Q, seq, L, row);
}

FilterResult ssv_avx2(const profile::MsvProfile& prof,
                      const std::uint8_t* rows, int Q,
                      const std::uint8_t* seq, std::size_t L,
                      std::uint8_t* row) {
  return simd_kernels::ssv_kernel<AvxU8x32>(prof, rows, Q, seq, L, row);
}

FilterResult vit_avx2(const profile::VitProfile& prof,
                      const simd_kernels::VitStripesView& st,
                      const std::uint8_t* seq, std::size_t L,
                      std::int16_t* mmx, std::int16_t* imx,
                      std::int16_t* dmx, int* lazyf_passes) {
  return simd_kernels::vit_kernel<AvxI16x16>(prof, st, seq, L, mmx, imx,
                                             dmx, lazyf_passes);
}

float fwd_avx2(const profile::FwdProfile& prof,
               const simd_kernels::FwdStripesView& st,
               const std::uint8_t* seq, std::size_t L, float* mmx,
               float* imx, float* dmx) {
  return simd_kernels::fwd_kernel<AvxF32x8>(prof, st, seq, L, mmx, imx,
                                            dmx);
}

float fwd_bwd_avx2(const profile::FwdProfile& prof,
                   const simd_kernels::FwdStripesView& st,
                   const std::uint8_t* seq, std::size_t L,
                   const simd_kernels::FwdBwdScratch& ws, float* mocc) {
  return simd_kernels::fwd_bwd_kernel<AvxF32x8>(prof, st, seq, L, ws,
                                                mocc);
}

FilterResult msv_avx2(const profile::MsvProfile& prof,
                      const std::uint8_t* rows, int Q,
                      bio::PackedResidues seq, std::size_t L,
                      std::uint8_t* row) {
  return simd_kernels::msv_kernel<AvxU8x32>(prof, rows, Q, seq, L, row);
}

FilterResult ssv_avx2(const profile::MsvProfile& prof,
                      const std::uint8_t* rows, int Q,
                      bio::PackedResidues seq, std::size_t L,
                      std::uint8_t* row) {
  return simd_kernels::ssv_kernel<AvxU8x32>(prof, rows, Q, seq, L, row);
}

void msv_group_avx2(const simd_kernels::MsvGroupView& g,
                    const simd_kernels::MsvGroupState& st,
                    const std::uint8_t* seq, std::size_t L,
                    std::uint8_t* row) {
  simd_kernels::msv_group_kernel<AvxU8x32>(g, st, seq, L, row);
}

void ssv_group_avx2(const simd_kernels::MsvGroupView& g,
                    const simd_kernels::MsvGroupState& st,
                    const std::uint8_t* seq, std::size_t L,
                    std::uint8_t* row) {
  simd_kernels::ssv_group_kernel<AvxU8x32>(g, st, seq, L, row);
}

void msv_group_avx2(const simd_kernels::MsvGroupView& g,
                    const simd_kernels::MsvGroupState& st,
                    bio::PackedResidues seq, std::size_t L,
                    std::uint8_t* row) {
  simd_kernels::msv_group_kernel<AvxU8x32>(g, st, seq, L, row);
}

void ssv_group_avx2(const simd_kernels::MsvGroupView& g,
                    const simd_kernels::MsvGroupState& st,
                    bio::PackedResidues seq, std::size_t L,
                    std::uint8_t* row) {
  simd_kernels::ssv_group_kernel<AvxU8x32>(g, st, seq, L, row);
}

#else  // AVX2 backend not compiled in: stubs, never dispatched to

bool have_avx2() { return false; }

FilterResult msv_avx2(const profile::MsvProfile&, const std::uint8_t*, int,
                      const std::uint8_t*, std::size_t, std::uint8_t*) {
  throw Error("AVX2 backend not compiled into this binary");
}
FilterResult ssv_avx2(const profile::MsvProfile&, const std::uint8_t*, int,
                      const std::uint8_t*, std::size_t, std::uint8_t*) {
  throw Error("AVX2 backend not compiled into this binary");
}
FilterResult vit_avx2(const profile::VitProfile&,
                      const simd_kernels::VitStripesView&,
                      const std::uint8_t*, std::size_t, std::int16_t*,
                      std::int16_t*, std::int16_t*, int*) {
  throw Error("AVX2 backend not compiled into this binary");
}
float fwd_avx2(const profile::FwdProfile&,
               const simd_kernels::FwdStripesView&, const std::uint8_t*,
               std::size_t, float*, float*, float*) {
  throw Error("AVX2 backend not compiled into this binary");
}
float fwd_bwd_avx2(const profile::FwdProfile&,
                   const simd_kernels::FwdStripesView&,
                   const std::uint8_t*, std::size_t,
                   const simd_kernels::FwdBwdScratch&, float*) {
  throw Error("AVX2 backend not compiled into this binary");
}
FilterResult msv_avx2(const profile::MsvProfile&, const std::uint8_t*, int,
                      bio::PackedResidues, std::size_t, std::uint8_t*) {
  throw Error("AVX2 backend not compiled into this binary");
}
FilterResult ssv_avx2(const profile::MsvProfile&, const std::uint8_t*, int,
                      bio::PackedResidues, std::size_t, std::uint8_t*) {
  throw Error("AVX2 backend not compiled into this binary");
}
void msv_group_avx2(const simd_kernels::MsvGroupView&,
                    const simd_kernels::MsvGroupState&, const std::uint8_t*,
                    std::size_t, std::uint8_t*) {
  throw Error("AVX2 backend not compiled into this binary");
}
void ssv_group_avx2(const simd_kernels::MsvGroupView&,
                    const simd_kernels::MsvGroupState&, const std::uint8_t*,
                    std::size_t, std::uint8_t*) {
  throw Error("AVX2 backend not compiled into this binary");
}
void msv_group_avx2(const simd_kernels::MsvGroupView&,
                    const simd_kernels::MsvGroupState&, bio::PackedResidues,
                    std::size_t, std::uint8_t*) {
  throw Error("AVX2 backend not compiled into this binary");
}
void ssv_group_avx2(const simd_kernels::MsvGroupView&,
                    const simd_kernels::MsvGroupState&, bio::PackedResidues,
                    std::size_t, std::uint8_t*) {
  throw Error("AVX2 backend not compiled into this binary");
}

#endif

}  // namespace finehmm::cpu::backend
