// RAII flush-to-zero guard for the probability-space Forward/Backward.
//
// The striped Forward works in scaled probability space: between the
// per-row rescales (triggered when xE leaves [1e-12, 1e12]) the low-
// probability M/I/D cells routinely drift below FLT_MIN.  On x86 every
// arithmetic op touching such a denormal takes a microcoded assist —
// measured on the roadmap host this made the SSE2/AVX2 Forward kernels
// ~5x slower than the same code with FTZ/DAZ set (HMMER 3 sets the same
// MXCSR bits in its impl_sse Forward for the same reason).  Flushed
// cells are at least a factor 1e26 below the rescale threshold, so the
// score impact is far under the documented log-sum tolerance.
//
// The guard sets FTZ+DAZ on construction and restores the caller's
// MXCSR on destruction, so user code never observes the changed mode.
// On non-x86 targets it is a no-op.
#pragma once

#if defined(__x86_64__) || defined(_M_X64) || defined(__SSE2__)
#include <xmmintrin.h>
#define FINEHMM_HAVE_MXCSR 1
#endif

namespace finehmm::cpu::backend {

class ScopedFlushDenormals {
 public:
#if FINEHMM_HAVE_MXCSR
  ScopedFlushDenormals() : saved_(_mm_getcsr()) {
    // Bit 15: flush-to-zero (denormal results), bit 6: denormals-are-
    // zero (denormal inputs).  DAZ is post-SSE2 but universal on x86-64.
    _mm_setcsr(saved_ | 0x8040u);
  }
  ~ScopedFlushDenormals() { _mm_setcsr(saved_); }
#else
  ScopedFlushDenormals() {}
  ~ScopedFlushDenormals() {}
#endif
  ScopedFlushDenormals(const ScopedFlushDenormals&) = delete;
  ScopedFlushDenormals& operator=(const ScopedFlushDenormals&) = delete;

 private:
#if FINEHMM_HAVE_MXCSR
  unsigned saved_;
#endif
};

}  // namespace finehmm::cpu::backend
