// Runtime-dispatched native SIMD tiers for the striped CPU filters.
//
// The portable lane classes in cpu/simd_vec.hpp remain the executable
// specification; on x86-64 hosts the same kernels also exist as native
// SSE2 (128-bit), AVX2 (256-bit) and AVX-512 (512-bit) instantiations,
// compiled into dedicated translation units
// (src/cpu/simd_backend/backend_*.cpp) so no global -march flag is
// needed.  A tier is usable only when BOTH the compiler built its
// backend and cpuid reports the ISA at runtime; the dispatcher picks the
// widest usable tier unless overridden.
//
// Override order (strongest first):
//   1. set_simd_tier() — programmatic, for tests;
//   2. FINEHMM_SIMD env var: portable | sse2 | avx2 | avx512 | auto;
//   3. auto-detection (widest supported).
// Requesting a tier the host cannot run falls back to the widest
// supported tier below it, never errors.  Every tier is bit-exact with
// the scalar references (see docs/simd_dispatch.md for the contract).
#pragma once

#include <optional>
#include <string_view>
#include <vector>

namespace finehmm::cpu {

enum class SimdTier : int {
  kPortable = 0,  // auto-vectorized lane loops (simd_vec.hpp / *_wide.hpp)
  kSse2 = 1,      // native 128-bit intrinsics, 16x u8 / 8x i16 / 4x f32
  kAvx2 = 2,      // native 256-bit intrinsics, 32x u8 / 16x i16 / 8x f32
  kAvx512 = 3,    // native 512-bit intrinsics, 64x u8 / 32x i16 / 16x f32
};

/// Widest tier whose backend is compiled in AND supported by this CPU.
SimdTier max_simd_tier();

/// True if `tier` can actually execute on this host.
bool simd_tier_supported(SimdTier tier);

/// All usable tiers, narrowest first (always contains kPortable).
std::vector<SimdTier> supported_simd_tiers();

/// The tier new filters pick up by default (override > env > auto).
SimdTier active_simd_tier();

/// Force a tier process-wide (clamped to what the host supports).
/// Intended for tests and benchmarks; thread-safe.
void set_simd_tier(SimdTier tier);

/// Drop a set_simd_tier() override, returning to env/auto selection.
void reset_simd_tier();

/// Clamp a requested tier to the widest supported tier <= it.
SimdTier resolve_simd_tier(SimdTier requested);

/// "portable" / "sse2" / "avx2" / "avx512".
const char* simd_tier_name(SimdTier tier);

/// Parse a tier name (as accepted by FINEHMM_SIMD); "auto" and unknown
/// strings return nullopt.
std::optional<SimdTier> parse_simd_tier(std::string_view name);

}  // namespace finehmm::cpu
