// Width- and ISA-generic striped filter kernels.
//
// Each kernel is the single definition of its filter's inner loop,
// templated on a vector class V that supplies the lane operations via
// ADL-found friends (splat/load/store, max_u8/adds_u8/subs_u8/hmax_u8 for
// bytes; max_i16/adds_w/hmax_i16/any_gt_i16 for words; add_f/mul_f/hsum_f
// for floats; shift_lanes_up for all).  The portable classes
// (cpu/simd_vec.hpp, cpu/msv_wide.hpp, cpu/vit_wide.hpp) and the native
// SSE2/AVX2 wrappers (vec_sse2.hpp, vec_avx2.hpp) all satisfy the same
// contract, so every tier executes literally the same algorithm — which
// is what makes the bit-exactness guarantee structural rather than
// empirical.
//
// Kernels take raw striped-parameter pointers (residue x's stripe row
// lives at base + x*Q*N) and caller-owned DP row storage, so they perform
// no allocation and no layout decisions of their own.
//
// The sequence parameter is a generic accessor `Seq` read exactly once per
// row as `seq[i]`; plain `const std::uint8_t*` arrays and zero-copy
// bio::PackedResidues views instantiate the identical loop, so the packed
// (mmap) path scores bit-identically to the byte-code path.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>

#include "cpu/filter_result.hpp"
#include "profile/fwd_profile.hpp"
#include "profile/msv_profile.hpp"
#include "profile/vit_profile.hpp"
#include "util/check.hpp"
#include "util/logspace.hpp"

namespace finehmm::cpu::simd_kernels {

/// Striped MSV over N = V::kLanes byte lanes.  `rows` is the striped
/// emission table for this lane count (row of residue x at x*Q*N); `row`
/// is caller-owned scratch of Q*N bytes.
template <class V, class Seq>
FilterResult msv_kernel(const profile::MsvProfile& prof,
                        const std::uint8_t* rows, int Q, Seq seq,
                        std::size_t L, std::uint8_t* row) {
  constexpr int N = V::kLanes;
  FINEHMM_CHECK(L >= 1, "cannot score an empty sequence");
  const V biasv = V::splat(prof.bias());
  const std::uint8_t base = prof.base();
  const std::uint8_t tbm = prof.tbm();
  const std::uint8_t tec = prof.tec();
  const std::uint8_t tjb = prof.tjb_for(static_cast<int>(L));

  std::memset(row, 0, static_cast<std::size_t>(Q) * N);

  std::uint8_t xJ = 0;
  std::uint8_t xB = base > tjb ? std::uint8_t(base - tjb) : 0;

  FilterResult out;
  for (std::size_t i = 0; i < L; ++i) {
    const std::uint8_t* rbv =
        rows + static_cast<std::size_t>(seq[i]) * Q * N;
    const V xBv = V::splat(xB > tbm ? std::uint8_t(xB - tbm) : 0);
    V xEv = V::splat(0);

    // Diagonal: previous row's last stripe, lanes shifted up by one.
    V mpv = shift_lanes_up(
        V::load(row + static_cast<std::size_t>(Q - 1) * N));
    for (int q = 0; q < Q; ++q) {
      std::uint8_t* cell = row + static_cast<std::size_t>(q) * N;
      V sv = max_u8(mpv, xBv);
      sv = adds_u8(sv, biasv);
      sv = subs_u8(sv, V::load(rbv + static_cast<std::size_t>(q) * N));
      xEv = max_u8(xEv, sv);
      mpv = V::load(cell);  // previous-row value (double buffer)
      sv.store(cell);
    }
    std::uint8_t xE = hmax_u8(xEv);
    if (prof.overflowed(xE)) {
      out.score_nats = std::numeric_limits<float>::infinity();
      out.overflowed = true;
      return out;
    }
    xE = xE > tec ? std::uint8_t(xE - tec) : 0;
    FINEHMM_IF_CHECKS(const std::uint8_t prev_xJ = xJ;)
    if (xE > xJ) xJ = xE;
    // Saturation monotonicity: xJ is a running max under saturating byte
    // arithmetic, so it can never decrease across rows.
    FINEHMM_DCHECK(xJ >= prev_xJ, "MSV xJ must be monotone non-decreasing");
    xB = xJ > base ? xJ : base;
    xB = xB > tjb ? std::uint8_t(xB - tjb) : 0;
  }
  out.score_nats = prof.score_from_bytes(xJ, static_cast<int>(L));
  return out;
}

/// Striped SSV (no J state) over N byte lanes; same parameter layout and
/// scratch contract as msv_kernel.
template <class V, class Seq>
FilterResult ssv_kernel(const profile::MsvProfile& prof,
                        const std::uint8_t* rows, int Q, Seq seq,
                        std::size_t L, std::uint8_t* row) {
  constexpr int N = V::kLanes;
  FINEHMM_CHECK(L >= 1, "cannot score an empty sequence");
  const V biasv = V::splat(prof.bias());
  const std::uint8_t tjb = prof.tjb_for(static_cast<int>(L));
  const std::uint8_t base_less_tjb =
      prof.base() > tjb ? std::uint8_t(prof.base() - tjb) : 0;
  const V xBv = V::splat(base_less_tjb > prof.tbm()
                             ? std::uint8_t(base_less_tjb - prof.tbm())
                             : 0);

  std::memset(row, 0, static_cast<std::size_t>(Q) * N);
  V xEv = V::splat(0);

  auto finish = [&prof, L](std::uint8_t xEmax, bool overflowed) {
    FilterResult out;
    if (overflowed) {
      out.score_nats = std::numeric_limits<float>::infinity();
      out.overflowed = true;
      return out;
    }
    std::uint8_t xJ =
        xEmax > prof.tec() ? std::uint8_t(xEmax - prof.tec()) : 0;
    out.score_nats = prof.score_from_bytes(xJ, static_cast<int>(L));
    return out;
  };

  for (std::size_t i = 0; i < L; ++i) {
    const std::uint8_t* rbv =
        rows + static_cast<std::size_t>(seq[i]) * Q * N;
    V mpv = shift_lanes_up(
        V::load(row + static_cast<std::size_t>(Q - 1) * N));
    for (int q = 0; q < Q; ++q) {
      std::uint8_t* cell = row + static_cast<std::size_t>(q) * N;
      V sv = max_u8(mpv, xBv);
      sv = adds_u8(sv, biasv);
      sv = subs_u8(sv, V::load(rbv + static_cast<std::size_t>(q) * N));
      xEv = max_u8(xEv, sv);
      mpv = V::load(cell);
      sv.store(cell);
    }
    if (prof.overflowed(hmax_u8(xEv)))
      return finish(hmax_u8(xEv), /*overflowed=*/true);
  }
  return finish(hmax_u8(xEv), /*overflowed=*/false);
}

/// The eight striped parameter arrays the Viterbi kernel reads, laid out
/// for one lane count (residue x's emission stripes at msc + x*Q*N).
struct VitStripesView {
  const std::int16_t* msc = nullptr;
  const std::int16_t* tmm = nullptr;
  const std::int16_t* tim = nullptr;
  const std::int16_t* tdm = nullptr;
  const std::int16_t* tmi = nullptr;
  const std::int16_t* tii = nullptr;
  const std::int16_t* tmd = nullptr;
  const std::int16_t* tdd = nullptr;
  int Q = 0;
};

/// Striped ViterbiFilter with Lazy-F over N = V::kLanes word lanes.
/// mmx/imx/dmx are caller-owned scratch of Q*N words each; lazyf_passes
/// (optional) receives the number of wrap passes executed.
template <class V, class Seq>
FilterResult vit_kernel(const profile::VitProfile& prof,
                        const VitStripesView& st, Seq seq, std::size_t L,
                        std::int16_t* mmx, std::int16_t* imx,
                        std::int16_t* dmx, int* lazyf_passes = nullptr) {
  using profile::kWordNegInf;
  using profile::sat_add_word;
  constexpr int N = V::kLanes;
  FINEHMM_CHECK(L >= 1, "cannot score an empty sequence");
  const int Q = st.Q;
  const auto lm = prof.length_model_for(static_cast<int>(L));
  // Length-model moves are log-probability costs; a positive cost would
  // let xN grow without bound and defeat the 16-bit saturation bounds.
  FINEHMM_CHECK(lm.loop <= 0 && lm.move <= 0,
                "length-model costs must be non-positive log-probs");
  const std::size_t n = static_cast<std::size_t>(Q) * N;
  int passes = 0;

  std::fill(mmx, mmx + n, kWordNegInf);
  std::fill(imx, imx + n, kWordNegInf);
  std::fill(dmx, dmx + n, kWordNegInf);

  auto stripe = [](std::int16_t* v, int q) {
    return v + static_cast<std::size_t>(q) * N;
  };

  std::int16_t xN = profile::VitProfile::kBase;
  std::int16_t xB = sat_add_word(xN, lm.move);
  std::int16_t xJ = kWordNegInf;
  std::int16_t xC = kWordNegInf;

  for (std::size_t i = 0; i < L; ++i) {
    const std::int16_t* msr =
        st.msc + static_cast<std::size_t>(seq[i]) * Q * N;
    V xEv = V::neg_inf();
    V dcv = V::neg_inf();
    const V xBv = V::splat(sat_add_word(xB, prof.entry()));

    // Previous row's last stripe, lanes shifted up = the diagonal.
    V mpv = shift_lanes_up(V::load(stripe(mmx, Q - 1)));
    V ipv = shift_lanes_up(V::load(stripe(imx, Q - 1)));
    V dpv = shift_lanes_up(V::load(stripe(dmx, Q - 1)));

    for (int q = 0; q < Q; ++q) {
      const std::size_t off = static_cast<std::size_t>(q) * N;
      V sv = xBv;
      sv = max_i16(sv, adds_w(mpv, V::load(st.tmm + off)));
      sv = max_i16(sv, adds_w(ipv, V::load(st.tim + off)));
      sv = max_i16(sv, adds_w(dpv, V::load(st.tdm + off)));
      sv = adds_w(sv, V::load(msr + off));
      xEv = max_i16(xEv, sv);

      // Stash previous-row stripes before overwriting (double buffer).
      mpv = V::load(stripe(mmx, q));
      ipv = V::load(stripe(imx, q));
      dpv = V::load(stripe(dmx, q));

      sv.store(stripe(mmx, q));
      dcv.store(stripe(dmx, q));

      // Next position's D: M->D from this stripe, or D->D continuation.
      dcv = max_i16(adds_w(sv, V::load(st.tmd + off)),
                    adds_w(dcv, V::load(st.tdd + off)));

      V iv = max_i16(adds_w(mpv, V::load(st.tmi + off)),
                     adds_w(ipv, V::load(st.tii + off)));
      iv.store(stripe(imx, q));
    }

    // Lazy-F: wrap the dangling D chain into the next lane and keep
    // propagating while anything improves.
    dcv = shift_lanes_up(dcv);
    for (int pass = 0; pass < N; ++pass) {
      bool improved = false;
      for (int q = 0; q < Q; ++q) {
        const std::size_t off = static_cast<std::size_t>(q) * N;
        V cur = V::load(stripe(dmx, q));
        if (any_gt_i16(dcv, cur)) {
          improved = true;
          cur = max_i16(cur, dcv);
          cur.store(stripe(dmx, q));
        }
        dcv = adds_w(cur, V::load(st.tdd + off));
      }
      if (!improved) break;
      ++passes;
      dcv = shift_lanes_up(dcv);
    }

#if FINEHMM_CHECKS_ENABLED
    // Lazy-F convergence: one more full wrap pass must leave every D cell
    // unchanged, i.e. the delete chain has reached its fixpoint.  This is
    // what licenses skipping the serial D recurrence in the striped
    // kernel (the paper's Lazy-F condition); if the N-pass cap above ever
    // exits before convergence, scores silently go wrong — so the
    // sanitizer/debug builds sweep the whole row here.
    {
      V carry = adds_w(V::load(stripe(dmx, Q - 1)),
                       V::load(st.tdd + static_cast<std::size_t>(Q - 1) * N));
      carry = shift_lanes_up(carry);
      bool would_improve = false;
      for (int q = 0; q < Q && !would_improve; ++q) {
        const V cur = V::load(stripe(dmx, q));
        if (any_gt_i16(carry, cur)) would_improve = true;
        carry = adds_w(cur, V::load(st.tdd + static_cast<std::size_t>(q) * N));
      }
      FINEHMM_DCHECK(!would_improve, "Lazy-F did not reach its fixpoint");
    }
#endif

    std::int16_t xE = hmax_i16(xEv);
    xJ = std::max(sat_add_word(xJ, lm.loop), sat_add_word(xE, prof.e_j()));
    xC = std::max(sat_add_word(xC, lm.loop), sat_add_word(xE, prof.e_c()));
    xN = sat_add_word(xN, lm.loop);
    xB = std::max(sat_add_word(xN, lm.move), sat_add_word(xJ, lm.move));
  }

  if (lazyf_passes != nullptr) *lazyf_passes = passes;
  FilterResult out;
  out.score_nats = prof.score_from_words(xC, lm);
  return out;
}

/// Striped float Forward.  The lane count is pinned to the profile's
/// 4-float striping: float summation order is part of the result, so the
/// 128-bit width is the widest bit-exact tier for this filter (see
/// docs/simd_dispatch.md).  mmx/imx/dmx are Q*4 floats of caller scratch.
template <class V, class Seq>
float fwd_kernel(const profile::FwdProfile& prof, Seq seq, std::size_t L,
                 float* mmx, float* imx, float* dmx) {
  static_assert(V::kLanes == profile::FwdProfile::kLanes,
                "Forward striping is fixed at 4 float lanes");
  constexpr int kLanes = profile::FwdProfile::kLanes;
  constexpr float kRescaleHi = 1e12f;
  constexpr float kRescaleLo = 1e-12f;
  constexpr float kDdEpsilon = 1e-9f;  // relative wrap-mass cutoff
  FINEHMM_CHECK(L >= 1, "cannot score an empty sequence");
  const int Q = prof.striped_segments();
  const auto lm = prof.length_model_for(static_cast<int>(L));
  const std::size_t n = static_cast<std::size_t>(Q) * kLanes;

  std::fill(mmx, mmx + n, 0.0f);
  std::fill(imx, imx + n, 0.0f);
  std::fill(dmx, dmx + n, 0.0f);

  auto stripe = [](float* v, int q) {
    return v + static_cast<std::size_t>(q) * kLanes;
  };

  double scale_log = 0.0;  // accumulated log of factored-out mass
  float xN = 1.0f;
  float xB = xN * lm.move;
  float xJ = 0.0f;
  float xC = 0.0f;

  for (std::size_t i = 0; i < L; ++i) {
    const float* odds = prof.odds_striped(seq[i]);
    V xEv = V::splat(0.0f);
    const V xBv = V::splat(xB * prof.entry());

    // Previous row's last stripe, lane-shifted = the diagonal.
    V mpv = shift_lanes_up(V::load(stripe(mmx, Q - 1)));
    V ipv = shift_lanes_up(V::load(stripe(imx, Q - 1)));
    V dpv = shift_lanes_up(V::load(stripe(dmx, Q - 1)));

    // Same-row, same-lane left neighbours for the D recurrence; see
    // cpu/fwd_filter.hpp for the striping notes.
    V m_left = V::splat(0.0f);
    V d_left = V::splat(0.0f);

    for (int q = 0; q < Q; ++q) {
      const std::size_t off = static_cast<std::size_t>(q) * kLanes;
      V sv = xBv;
      sv = add_f(sv, mul_f(mpv, V::load(prof.tmm_striped() + off)));
      sv = add_f(sv, mul_f(ipv, V::load(prof.tim_striped() + off)));
      sv = add_f(sv, mul_f(dpv, V::load(prof.tdm_striped() + off)));
      sv = mul_f(sv, V::load(odds + off));
      xEv = add_f(xEv, sv);

      V d = add_f(mul_f(m_left, V::load(prof.tmd_in_striped() + off)),
                  mul_f(d_left, V::load(prof.tdd_in_striped() + off)));

      mpv = V::load(stripe(mmx, q));
      ipv = V::load(stripe(imx, q));
      dpv = V::load(stripe(dmx, q));

      sv.store(stripe(mmx, q));
      d.store(stripe(dmx, q));

      V iv = add_f(mul_f(mpv, V::load(prof.tmi_striped() + off)),
                   mul_f(ipv, V::load(prof.tii_striped() + off)));
      iv.store(stripe(imx, q));

      m_left = sv;
      d_left = d;
    }

    // Cross-lane D mass: geometric decay through the row; stop once the
    // circulating mass is negligible next to what is already banked.
    V extra =
        add_f(mul_f(shift_lanes_up(m_left), V::load(prof.tmd_in_striped())),
              mul_f(shift_lanes_up(d_left), V::load(prof.tdd_in_striped())));
    for (int pass = 0; pass < 4 * Q; ++pass) {
      float circulating = 0.0f;
      float held = 0.0f;
      for (int q = 0; q < Q; ++q) {
        const std::size_t off = static_cast<std::size_t>(q) * kLanes;
        if (q > 0)
          extra = mul_f(extra, V::load(prof.tdd_in_striped() + off));
        V cur = V::load(stripe(dmx, q));
        circulating += hsum_f(extra);
        held += hsum_f(cur);
        add_f(cur, extra).store(stripe(dmx, q));
      }
      if (circulating <= kDdEpsilon * (held + kRescaleLo)) break;
      extra =
          mul_f(shift_lanes_up(extra), V::load(prof.tdd_in_striped()));
    }

    float xE = hsum_f(xEv);
    xJ = xJ * lm.loop + xE * lm.e_j;
    xC = xC * lm.loop + xE * lm.e_c;
    xN = xN * lm.loop;
    xB = xN * lm.move + xJ * lm.move;

    // Rescale when the row's mass drifts out of float's comfortable range.
    if (xE > 0.0f && (xE > kRescaleHi || xE < kRescaleLo)) {
      float inv = 1.0f / xE;
      for (std::size_t j = 0; j < n; ++j) mmx[j] *= inv;
      for (std::size_t j = 0; j < n; ++j) imx[j] *= inv;
      for (std::size_t j = 0; j < n; ++j) dmx[j] *= inv;
      xN *= inv;
      xB *= inv;
      xJ *= inv;
      xC *= inv;
      scale_log += std::log(static_cast<double>(xE));
    }
  }

  if (xC <= 0.0f) return kNegInf;
  return static_cast<float>(std::log(static_cast<double>(xC) * lm.move) +
                            scale_log);
}

}  // namespace finehmm::cpu::simd_kernels
