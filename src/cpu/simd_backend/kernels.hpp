// Width- and ISA-generic striped filter kernels.
//
// Each kernel is the single definition of its filter's inner loop,
// templated on a vector class V that supplies the lane operations via
// ADL-found friends (splat/load/store, max_u8/adds_u8/subs_u8/hmax_u8 for
// bytes; max_i16/adds_w/hmax_i16/any_gt_i16 for words;
// add_f/mul_f/hsum_f/shift_lanes_down for floats; shift_lanes_up for
// all).  The portable classes (cpu/simd_vec.hpp, cpu/msv_wide.hpp,
// cpu/vit_wide.hpp, cpu/fwd_wide.hpp) and the native SSE2/AVX2/AVX-512
// wrappers (vec_sse2.hpp, vec_avx2.hpp, vec_avx512.hpp) all satisfy the
// same contract, so every tier executes literally the same algorithm —
// which is what makes the bit-exactness guarantee structural rather than
// empirical.
//
// Kernels take raw striped-parameter pointers (residue x's stripe row
// lives at base + x*Q*N) and caller-owned DP row storage, so they perform
// no allocation and no layout decisions of their own.
//
// The sequence parameter is a generic accessor `Seq` read exactly once per
// row as `seq[i]`; plain `const std::uint8_t*` arrays and zero-copy
// bio::PackedResidues views instantiate the identical loop, so the packed
// (mmap) path scores bit-identically to the byte-code path.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>

#include "cpu/filter_result.hpp"
#include "profile/fwd_profile.hpp"
#include "profile/msv_profile.hpp"
#include "profile/vit_profile.hpp"
#include "util/check.hpp"
#include "util/logspace.hpp"

namespace finehmm::cpu::simd_kernels {

/// Striped MSV over N = V::kLanes byte lanes.  `rows` is the striped
/// emission table for this lane count (row of residue x at x*Q*N); `row`
/// is caller-owned scratch of Q*N bytes.
template <class V, class Seq>
FilterResult msv_kernel(const profile::MsvProfile& prof,
                        const std::uint8_t* rows, int Q, Seq seq,
                        std::size_t L, std::uint8_t* row) {
  constexpr int N = V::kLanes;
  FINEHMM_CHECK(L >= 1, "cannot score an empty sequence");
  const V biasv = V::splat(prof.bias());
  const std::uint8_t base = prof.base();
  const std::uint8_t tbm = prof.tbm();
  const std::uint8_t tec = prof.tec();
  const std::uint8_t tjb = prof.tjb_for(static_cast<int>(L));

  std::memset(row, 0, static_cast<std::size_t>(Q) * N);

  std::uint8_t xJ = 0;
  std::uint8_t xB = base > tjb ? std::uint8_t(base - tjb) : 0;

  FilterResult out;
  for (std::size_t i = 0; i < L; ++i) {
    const std::uint8_t* rbv =
        rows + static_cast<std::size_t>(seq[i]) * Q * N;
    const V xBv = V::splat(xB > tbm ? std::uint8_t(xB - tbm) : 0);
    V xEv = V::splat(0);

    // Diagonal: previous row's last stripe, lanes shifted up by one.
    V mpv = shift_lanes_up(
        V::load(row + static_cast<std::size_t>(Q - 1) * N));
    for (int q = 0; q < Q; ++q) {
      std::uint8_t* cell = row + static_cast<std::size_t>(q) * N;
      V sv = max_u8(mpv, xBv);
      sv = adds_u8(sv, biasv);
      sv = subs_u8(sv, V::load(rbv + static_cast<std::size_t>(q) * N));
      xEv = max_u8(xEv, sv);
      mpv = V::load(cell);  // previous-row value (double buffer)
      sv.store(cell);
    }
    std::uint8_t xE = hmax_u8(xEv);
    if (prof.overflowed(xE)) {
      out.score_nats = std::numeric_limits<float>::infinity();
      out.overflowed = true;
      return out;
    }
    xE = xE > tec ? std::uint8_t(xE - tec) : 0;
    FINEHMM_IF_CHECKS(const std::uint8_t prev_xJ = xJ;)
    if (xE > xJ) xJ = xE;
    // Saturation monotonicity: xJ is a running max under saturating byte
    // arithmetic, so it can never decrease across rows.
    FINEHMM_DCHECK(xJ >= prev_xJ, "MSV xJ must be monotone non-decreasing");
    xB = xJ > base ? xJ : base;
    xB = xB > tjb ? std::uint8_t(xB - tjb) : 0;
  }
  out.score_nats = prof.score_from_bytes(xJ, static_cast<int>(L));
  return out;
}

/// Striped SSV (no J state) over N byte lanes; same parameter layout and
/// scratch contract as msv_kernel.
template <class V, class Seq>
FilterResult ssv_kernel(const profile::MsvProfile& prof,
                        const std::uint8_t* rows, int Q, Seq seq,
                        std::size_t L, std::uint8_t* row) {
  constexpr int N = V::kLanes;
  FINEHMM_CHECK(L >= 1, "cannot score an empty sequence");
  const V biasv = V::splat(prof.bias());
  const std::uint8_t tjb = prof.tjb_for(static_cast<int>(L));
  const std::uint8_t base_less_tjb =
      prof.base() > tjb ? std::uint8_t(prof.base() - tjb) : 0;
  const V xBv = V::splat(base_less_tjb > prof.tbm()
                             ? std::uint8_t(base_less_tjb - prof.tbm())
                             : 0);

  std::memset(row, 0, static_cast<std::size_t>(Q) * N);
  V xEv = V::splat(0);

  auto finish = [&prof, L](std::uint8_t xEmax, bool overflowed) {
    FilterResult out;
    if (overflowed) {
      out.score_nats = std::numeric_limits<float>::infinity();
      out.overflowed = true;
      return out;
    }
    std::uint8_t xJ =
        xEmax > prof.tec() ? std::uint8_t(xEmax - prof.tec()) : 0;
    out.score_nats = prof.score_from_bytes(xJ, static_cast<int>(L));
    return out;
  };

  for (std::size_t i = 0; i < L; ++i) {
    const std::uint8_t* rbv =
        rows + static_cast<std::size_t>(seq[i]) * Q * N;
    V mpv = shift_lanes_up(
        V::load(row + static_cast<std::size_t>(Q - 1) * N));
    for (int q = 0; q < Q; ++q) {
      std::uint8_t* cell = row + static_cast<std::size_t>(q) * N;
      V sv = max_u8(mpv, xBv);
      sv = adds_u8(sv, biasv);
      sv = subs_u8(sv, V::load(rbv + static_cast<std::size_t>(q) * N));
      xEv = max_u8(xEv, sv);
      mpv = V::load(cell);
      sv.store(cell);
    }
    if (prof.overflowed(hmax_u8(xEv)))
      return finish(hmax_u8(xEv), /*overflowed=*/true);
  }
  return finish(hmax_u8(xEv), /*overflowed=*/false);
}

// ---- Fused multi-model MSV/SSV (lane-partitioned groups) ---------------
//
// Several short models share one N-lane sweep: model m owns the
// contiguous lane span [lane_lo, lane_lo + lanes) and its position k
// (1-based) lives in stripe (k-1)%Q, lane lane_lo + (k-1)/Q, where Q is
// the group's shared stripe count.  Every cell not owned by a model
// carries emission cost 255, which forces it to zero each row
// (sat_sub(sat_add(x, bias), 255) == 0 for any byte x), so the lane shift
// at stripe 0 hands the next span exactly the zero a single-model run
// injects at its first lane — cell values, and therefore scores, are
// bit-identical to N independent runs (docs/multi_model.md).

/// One member of a fused group: its lane span plus the per-model byte
/// constants the scalar epilogue needs.
struct MsvGroupModel {
  std::uint8_t lane_lo = 0;  // first lane of this model's span
  std::uint8_t lanes = 0;    // lanes in the span (>= 1, includes padding)
  std::uint8_t bias = 0;
  std::uint8_t tbm = 0;
  std::uint8_t tec = 0;
  std::uint8_t base = 0;
  std::uint8_t sat = 0;  // overflow threshold: 255 - bias
};

/// Read-only view of one packed group (built by cpu::FusedMsvGroup):
/// the shared striped emission table (residue x at rows + x*Q*N), the
/// per-lane bias bytes, and the member table.
struct MsvGroupView {
  const std::uint8_t* rows = nullptr;
  const std::uint8_t* bias = nullptr;  // N per-lane bias bytes
  const MsvGroupModel* models = nullptr;
  int n_models = 0;
  int Q = 0;
};

/// Caller-owned per-sequence scratch for the group kernels.  xb/trigger/xe
/// hold N bytes each (per lane); xj/tjb/overflowed hold n_models bytes.
/// tjb must carry each member's tjb_for(L) before the call; xj and
/// overflowed are outputs the caller converts to scores.
struct MsvGroupState {
  std::uint8_t* xb = nullptr;          // per lane: sat_sub(xB_m - tbm_m)
  std::uint8_t* trigger = nullptr;     // per lane: slow-path threshold
  std::uint8_t* xe = nullptr;          // per lane: xEv spill buffer
  std::uint8_t* xj = nullptr;          // per model: running xJ byte (out)
  const std::uint8_t* tjb = nullptr;   // per model: tjb_for(L)
  std::uint8_t* overflowed = nullptr;  // per model: overflow flag (out)
};

/// Fused multi-model MSV: one N-lane sweep scores every member of the
/// group.  Each model's xJ/xB feedback is exact — a per-lane trigger byte
/// (min of the xJ-update threshold xJ+tec and the overflow threshold
/// sat-1) lets the common no-change row skip the scalar epilogue with one
/// vector compare, and the rare firing row replays the per-model updates
/// exactly as msv_kernel would.  `row` is Q*N bytes of caller scratch.
template <class V, class Seq>
void msv_group_kernel(const MsvGroupView& g, const MsvGroupState& st,
                      Seq seq, std::size_t L, std::uint8_t* row) {
  constexpr int N = V::kLanes;
  FINEHMM_CHECK(L >= 1, "cannot score an empty sequence");
  const int Q = g.Q;

  // Per-lane init.  Lanes owned by no model keep xb=0 / trigger=255: their
  // cells are forced to zero by the 255 pad cost and can never fire.
  for (int j = 0; j < N; ++j) {
    st.xb[j] = 0;
    st.trigger[j] = 255;
  }
  for (int m = 0; m < g.n_models; ++m) {
    const MsvGroupModel& md = g.models[m];
    st.xj[m] = 0;
    // sat == 0 (bias 255) overflows a single-model run on row 1 for any
    // L >= 1; a byte trigger cannot express "always fire", so mark it now.
    st.overflowed[m] = md.sat == 0 ? 1 : 0;
    std::uint8_t xB =
        md.base > st.tjb[m] ? std::uint8_t(md.base - st.tjb[m]) : 0;
    const std::uint8_t xb = xB > md.tbm ? std::uint8_t(xB - md.tbm) : 0;
    std::uint8_t trig = 255;
    if (!st.overflowed[m]) {
      const unsigned up = md.tec;  // xJ + tec at xJ = 0
      const std::uint8_t cap = std::uint8_t(md.sat - 1);
      trig = up > cap ? cap : std::uint8_t(up);
    }
    for (int j = 0; j < md.lanes; ++j) {
      st.xb[md.lane_lo + j] = xb;
      st.trigger[md.lane_lo + j] = trig;
    }
  }

  std::memset(row, 0, static_cast<std::size_t>(Q) * N);
  const V biasv = V::load(g.bias);
  V xBv = V::load(st.xb);
  V trigv = V::load(st.trigger);

  for (std::size_t i = 0; i < L; ++i) {
    const std::uint8_t* rbv =
        g.rows + static_cast<std::size_t>(seq[i]) * Q * N;
    V xEv = V::splat(0);
    V mpv = shift_lanes_up(
        V::load(row + static_cast<std::size_t>(Q - 1) * N));
    for (int q = 0; q < Q; ++q) {
      std::uint8_t* cell = row + static_cast<std::size_t>(q) * N;
      V sv = max_u8(mpv, xBv);
      sv = adds_u8(sv, biasv);
      sv = subs_u8(sv, V::load(rbv + static_cast<std::size_t>(q) * N));
      xEv = max_u8(xEv, sv);
      mpv = V::load(cell);
      sv.store(cell);
    }
    // Fast path: no lane beats its model's trigger, so no member can
    // improve xJ and none overflowed — every epilogue is a no-op.
    if (hmax_u8(subs_u8(xEv, trigv)) == 0) continue;

    xEv.store(st.xe);
    for (int m = 0; m < g.n_models; ++m) {
      const MsvGroupModel& md = g.models[m];
      if (st.overflowed[m]) continue;
      std::uint8_t xE = 0;
      for (int j = 0; j < md.lanes; ++j) {
        const std::uint8_t e = st.xe[md.lane_lo + j];
        if (e > xE) xE = e;
      }
      if (xE <= st.trigger[md.lane_lo]) continue;
      if (xE >= md.sat) {
        // Frozen: trigger 255 keeps the fast path quiet for this span,
        // and saturated cells cannot cross the forced-zero padding into
        // the next span's first lane.
        st.overflowed[m] = 1;
        for (int j = 0; j < md.lanes; ++j)
          st.trigger[md.lane_lo + j] = 255;
        continue;
      }
      xE = xE > md.tec ? std::uint8_t(xE - md.tec) : 0;
      FINEHMM_DCHECK(xE > st.xj[m],
                     "fused MSV trigger fired without an xJ improvement");
      st.xj[m] = xE;
      std::uint8_t xB = st.xj[m] > md.base ? st.xj[m] : md.base;
      xB = xB > st.tjb[m] ? std::uint8_t(xB - st.tjb[m]) : 0;
      const std::uint8_t xb = xB > md.tbm ? std::uint8_t(xB - md.tbm) : 0;
      const unsigned up = unsigned(st.xj[m]) + md.tec;
      const std::uint8_t cap = std::uint8_t(md.sat - 1);
      const std::uint8_t trig = up > cap ? cap : std::uint8_t(up);
      for (int j = 0; j < md.lanes; ++j) {
        st.xb[md.lane_lo + j] = xb;
        st.trigger[md.lane_lo + j] = trig;
      }
    }
    xBv = V::load(st.xb);
    trigv = V::load(st.trigger);
  }
}

/// Fused multi-model SSV: like msv_group_kernel but with the constant
/// per-model xB of the SSV recurrence and no per-row scalar work at all —
/// xEv accumulates a running per-lane max across the whole sequence, and
/// because that accumulation is monotone, the end-of-sequence segmented
/// max and overflow test are equivalent to ssv_kernel's per-row checks.
template <class V, class Seq>
void ssv_group_kernel(const MsvGroupView& g, const MsvGroupState& st,
                      Seq seq, std::size_t L, std::uint8_t* row) {
  constexpr int N = V::kLanes;
  FINEHMM_CHECK(L >= 1, "cannot score an empty sequence");
  const int Q = g.Q;

  for (int j = 0; j < N; ++j) st.xb[j] = 0;
  for (int m = 0; m < g.n_models; ++m) {
    const MsvGroupModel& md = g.models[m];
    const std::uint8_t blt =
        md.base > st.tjb[m] ? std::uint8_t(md.base - st.tjb[m]) : 0;
    const std::uint8_t xb = blt > md.tbm ? std::uint8_t(blt - md.tbm) : 0;
    for (int j = 0; j < md.lanes; ++j) st.xb[md.lane_lo + j] = xb;
  }

  std::memset(row, 0, static_cast<std::size_t>(Q) * N);
  const V biasv = V::load(g.bias);
  const V xBv = V::load(st.xb);
  V xEv = V::splat(0);

  for (std::size_t i = 0; i < L; ++i) {
    const std::uint8_t* rbv =
        g.rows + static_cast<std::size_t>(seq[i]) * Q * N;
    V mpv = shift_lanes_up(
        V::load(row + static_cast<std::size_t>(Q - 1) * N));
    for (int q = 0; q < Q; ++q) {
      std::uint8_t* cell = row + static_cast<std::size_t>(q) * N;
      V sv = max_u8(mpv, xBv);
      sv = adds_u8(sv, biasv);
      sv = subs_u8(sv, V::load(rbv + static_cast<std::size_t>(q) * N));
      xEv = max_u8(xEv, sv);
      mpv = V::load(cell);
      sv.store(cell);
    }
  }

  xEv.store(st.xe);
  for (int m = 0; m < g.n_models; ++m) {
    const MsvGroupModel& md = g.models[m];
    std::uint8_t xE = 0;
    for (int j = 0; j < md.lanes; ++j) {
      const std::uint8_t e = st.xe[md.lane_lo + j];
      if (e > xE) xE = e;
    }
    if (xE >= md.sat) {
      st.overflowed[m] = 1;
      st.xj[m] = 0;
    } else {
      st.overflowed[m] = 0;
      st.xj[m] = xE > md.tec ? std::uint8_t(xE - md.tec) : 0;
    }
  }
}

/// The eight striped parameter arrays the Viterbi kernel reads, laid out
/// for one lane count (residue x's emission stripes at msc + x*Q*N).
struct VitStripesView {
  const std::int16_t* msc = nullptr;
  const std::int16_t* tmm = nullptr;
  const std::int16_t* tim = nullptr;
  const std::int16_t* tdm = nullptr;
  const std::int16_t* tmi = nullptr;
  const std::int16_t* tii = nullptr;
  const std::int16_t* tmd = nullptr;
  const std::int16_t* tdd = nullptr;
  int Q = 0;
};

/// Striped ViterbiFilter with Lazy-F over N = V::kLanes word lanes.
/// mmx/imx/dmx are caller-owned scratch of Q*N words each; lazyf_passes
/// (optional) receives the number of wrap passes executed.
template <class V, class Seq>
FilterResult vit_kernel(const profile::VitProfile& prof,
                        const VitStripesView& st, Seq seq, std::size_t L,
                        std::int16_t* mmx, std::int16_t* imx,
                        std::int16_t* dmx, int* lazyf_passes = nullptr) {
  using profile::kWordNegInf;
  using profile::sat_add_word;
  constexpr int N = V::kLanes;
  FINEHMM_CHECK(L >= 1, "cannot score an empty sequence");
  const int Q = st.Q;
  const auto lm = prof.length_model_for(static_cast<int>(L));
  // Length-model moves are log-probability costs; a positive cost would
  // let xN grow without bound and defeat the 16-bit saturation bounds.
  FINEHMM_CHECK(lm.loop <= 0 && lm.move <= 0,
                "length-model costs must be non-positive log-probs");
  const std::size_t n = static_cast<std::size_t>(Q) * N;
  int passes = 0;

  std::fill(mmx, mmx + n, kWordNegInf);
  std::fill(imx, imx + n, kWordNegInf);
  std::fill(dmx, dmx + n, kWordNegInf);

  auto stripe = [](std::int16_t* v, int q) {
    return v + static_cast<std::size_t>(q) * N;
  };

  std::int16_t xN = profile::VitProfile::kBase;
  std::int16_t xB = sat_add_word(xN, lm.move);
  std::int16_t xJ = kWordNegInf;
  std::int16_t xC = kWordNegInf;

  for (std::size_t i = 0; i < L; ++i) {
    const std::int16_t* msr =
        st.msc + static_cast<std::size_t>(seq[i]) * Q * N;
    V xEv = V::neg_inf();
    V dcv = V::neg_inf();
    const V xBv = V::splat(sat_add_word(xB, prof.entry()));

    // Previous row's last stripe, lanes shifted up = the diagonal.
    V mpv = shift_lanes_up(V::load(stripe(mmx, Q - 1)));
    V ipv = shift_lanes_up(V::load(stripe(imx, Q - 1)));
    V dpv = shift_lanes_up(V::load(stripe(dmx, Q - 1)));

    for (int q = 0; q < Q; ++q) {
      const std::size_t off = static_cast<std::size_t>(q) * N;
      V sv = xBv;
      sv = max_i16(sv, adds_w(mpv, V::load(st.tmm + off)));
      sv = max_i16(sv, adds_w(ipv, V::load(st.tim + off)));
      sv = max_i16(sv, adds_w(dpv, V::load(st.tdm + off)));
      sv = adds_w(sv, V::load(msr + off));
      xEv = max_i16(xEv, sv);

      // Stash previous-row stripes before overwriting (double buffer).
      mpv = V::load(stripe(mmx, q));
      ipv = V::load(stripe(imx, q));
      dpv = V::load(stripe(dmx, q));

      sv.store(stripe(mmx, q));
      dcv.store(stripe(dmx, q));

      // Next position's D: M->D from this stripe, or D->D continuation.
      dcv = max_i16(adds_w(sv, V::load(st.tmd + off)),
                    adds_w(dcv, V::load(st.tdd + off)));

      V iv = max_i16(adds_w(mpv, V::load(st.tmi + off)),
                     adds_w(ipv, V::load(st.tii + off)));
      iv.store(stripe(imx, q));
    }

    // Lazy-F: wrap the dangling D chain into the next lane and keep
    // propagating while anything improves.
    dcv = shift_lanes_up(dcv);
    for (int pass = 0; pass < N; ++pass) {
      bool improved = false;
      for (int q = 0; q < Q; ++q) {
        const std::size_t off = static_cast<std::size_t>(q) * N;
        V cur = V::load(stripe(dmx, q));
        if (any_gt_i16(dcv, cur)) {
          improved = true;
          cur = max_i16(cur, dcv);
          cur.store(stripe(dmx, q));
        }
        dcv = adds_w(cur, V::load(st.tdd + off));
      }
      if (!improved) break;
      ++passes;
      dcv = shift_lanes_up(dcv);
    }

#if FINEHMM_CHECKS_ENABLED
    // Lazy-F convergence: one more full wrap pass must leave every D cell
    // unchanged, i.e. the delete chain has reached its fixpoint.  This is
    // what licenses skipping the serial D recurrence in the striped
    // kernel (the paper's Lazy-F condition); if the N-pass cap above ever
    // exits before convergence, scores silently go wrong — so the
    // sanitizer/debug builds sweep the whole row here.
    {
      V carry = adds_w(V::load(stripe(dmx, Q - 1)),
                       V::load(st.tdd + static_cast<std::size_t>(Q - 1) * N));
      carry = shift_lanes_up(carry);
      bool would_improve = false;
      for (int q = 0; q < Q && !would_improve; ++q) {
        const V cur = V::load(stripe(dmx, q));
        if (any_gt_i16(carry, cur)) would_improve = true;
        carry = adds_w(cur, V::load(st.tdd + static_cast<std::size_t>(q) * N));
      }
      FINEHMM_DCHECK(!would_improve, "Lazy-F did not reach its fixpoint");
    }
#endif

    std::int16_t xE = hmax_i16(xEv);
    xJ = std::max(sat_add_word(xJ, lm.loop), sat_add_word(xE, prof.e_j()));
    xC = std::max(sat_add_word(xC, lm.loop), sat_add_word(xE, prof.e_c()));
    xN = sat_add_word(xN, lm.loop);
    xB = std::max(sat_add_word(xN, lm.move), sat_add_word(xJ, lm.move));
  }

  if (lazyf_passes != nullptr) *lazyf_passes = passes;
  FilterResult out;
  out.score_nats = prof.score_from_words(xC, lm);
  return out;
}

// ---------------------------------------------------------------------
// Striped float Forward / Backward (probability space, per-row rescaled).
//
// The lane count is a tier parameter: the same kernel instantiates at 4
// (portable/SSE2), 8 (AVX2) and 16 (AVX-512) float lanes over a
// FwdStripesView built for that width.  Float summation order is part of
// the result, so different widths agree only within the documented
// log-sum tolerance; portable and native runs of the SAME width are
// bit-identical (in-order hsum_f is part of the vector contract).
// ---------------------------------------------------------------------

inline constexpr float kFwdRescaleHi = 1e12f;
inline constexpr float kFwdRescaleLo = 1e-12f;
inline constexpr float kFwdDdEpsilon = 1e-9f;  // relative wrap-mass cutoff

/// The striped parameter arrays the Forward/Backward kernels read, laid
/// out for one lane count N (slot(k) = ((k-1)%Q)*N + (k-1)/Q; residue x's
/// emission-odds stripes live at odds + x*Q*N).  The in-indexed arrays
/// hold the k-1 -> k transition probability at slot(k) (what Forward
/// consumes); the out-indexed arrays hold k -> k+1 at slot(k), zero at
/// k = M (what Backward consumes) and may be null when only Forward runs.
struct FwdStripesView {
  const float* odds = nullptr;
  const float* tmm = nullptr;     // in: P(M_{k-1} -> M_k)
  const float* tim = nullptr;     // in: P(I_{k-1} -> M_k)
  const float* tdm = nullptr;     // in: P(D_{k-1} -> M_k)
  const float* tmi = nullptr;     // at k: P(M_k -> I_k)
  const float* tii = nullptr;     // at k: P(I_k -> I_k)
  const float* tmd = nullptr;     // in: P(M_{k-1} -> D_k)
  const float* tdd = nullptr;     // in: P(D_{k-1} -> D_k)
  const float* tmm_out = nullptr; // out: P(M_k -> M_{k+1})
  const float* tim_out = nullptr; // out: P(I_k -> M_{k+1})
  const float* tdm_out = nullptr; // out: P(D_k -> M_{k+1})
  const float* tmd_out = nullptr; // out: P(M_k -> D_{k+1})
  const float* tdd_out = nullptr; // out: P(D_k -> D_{k+1})
  float entry = 0.0f;             // uniform local B -> M_k probability
  int Q = 0;
};

/// Special-state accumulators threaded through a Forward sweep; the row
/// loop, the specials update and the rescale step are factored out so the
/// plain score and the checkpointed decode execute literally the same
/// float operations (the decode's replay DCHECK depends on it).
struct FwdSweepState {
  double scale_log = 0.0;  // accumulated log of factored-out mass
  float xN = 1.0f;
  float xB = 0.0f;
  float xJ = 0.0f;
  float xC = 0.0f;
};

/// One striped Forward row: consumes the previous row in mmx/imx/dmx and
/// replaces it, returning this row's xE mass.  `odds` is the residue's
/// stripe row; `xb_entry` is xB(previous row) * entry.
template <class V>
inline float fwd_row(const FwdStripesView& st, const float* odds,
                     float xb_entry, float* mmx, float* imx, float* dmx) {
  constexpr int N = V::kLanes;
  const int Q = st.Q;
  auto stripe = [](float* v, int q) {
    return v + static_cast<std::size_t>(q) * N;
  };

  V xEv = V::splat(0.0f);
  const V xBv = V::splat(xb_entry);

  // Previous row's last stripe, lane-shifted = the diagonal.
  V mpv = shift_lanes_up(V::load(stripe(mmx, Q - 1)));
  V ipv = shift_lanes_up(V::load(stripe(imx, Q - 1)));
  V dpv = shift_lanes_up(V::load(stripe(dmx, Q - 1)));

  // Same-row, same-lane left neighbours for the D recurrence; see
  // cpu/fwd_filter.hpp for the striping notes.
  V m_left = V::splat(0.0f);
  V d_left = V::splat(0.0f);

  for (int q = 0; q < Q; ++q) {
    const std::size_t off = static_cast<std::size_t>(q) * N;
    V sv = xBv;
    sv = add_f(sv, mul_f(mpv, V::load(st.tmm + off)));
    sv = add_f(sv, mul_f(ipv, V::load(st.tim + off)));
    sv = add_f(sv, mul_f(dpv, V::load(st.tdm + off)));
    sv = mul_f(sv, V::load(odds + off));
    xEv = add_f(xEv, sv);

    V d = add_f(mul_f(m_left, V::load(st.tmd + off)),
                mul_f(d_left, V::load(st.tdd + off)));

    mpv = V::load(stripe(mmx, q));
    ipv = V::load(stripe(imx, q));
    dpv = V::load(stripe(dmx, q));

    sv.store(stripe(mmx, q));
    d.store(stripe(dmx, q));

    V iv = add_f(mul_f(mpv, V::load(st.tmi + off)),
                 mul_f(ipv, V::load(st.tii + off)));
    iv.store(stripe(imx, q));

    m_left = sv;
    d_left = d;
  }

  // Cross-lane D mass: geometric decay through the row; stop once the
  // circulating mass is negligible next to what is already banked.  The
  // monitoring sums accumulate in vector registers (one hsum per pass,
  // not two per stripe) — that is most of the kernel's speedup over the
  // old 128-bit implementation.
  V extra = add_f(mul_f(shift_lanes_up(m_left), V::load(st.tmd)),
                  mul_f(shift_lanes_up(d_left), V::load(st.tdd)));
  for (int pass = 0; pass < N * Q; ++pass) {
    V circv = V::splat(0.0f);
    V heldv = V::splat(0.0f);
    for (int q = 0; q < Q; ++q) {
      const std::size_t off = static_cast<std::size_t>(q) * N;
      if (q > 0) extra = mul_f(extra, V::load(st.tdd + off));
      V cur = V::load(stripe(dmx, q));
      circv = add_f(circv, extra);
      heldv = add_f(heldv, cur);
      add_f(cur, extra).store(stripe(dmx, q));
    }
    if (hsum_f(circv) <= kFwdDdEpsilon * (hsum_f(heldv) + kFwdRescaleLo))
      break;
    extra = mul_f(shift_lanes_up(extra), V::load(st.tdd));
  }

  return hsum_f(xEv);
}

/// Special-state update after a Forward row with mass xE.
template <class LM>
inline void fwd_row_specials(FwdSweepState& s, const LM& lm, float xE) {
  s.xJ = s.xJ * lm.loop + xE * lm.e_j;
  s.xC = s.xC * lm.loop + xE * lm.e_c;
  s.xN = s.xN * lm.loop;
  s.xB = s.xN * lm.move + s.xJ * lm.move;
}

/// Rescale when the row's mass drifts out of float's comfortable range;
/// returns the factor applied to the DP rows (1.0f when none).
inline float fwd_row_rescale(FwdSweepState& s, float xE, float* mmx,
                             float* imx, float* dmx, std::size_t n) {
  if (!(xE > 0.0f && (xE > kFwdRescaleHi || xE < kFwdRescaleLo)))
    return 1.0f;
  const float inv = 1.0f / xE;
  for (std::size_t j = 0; j < n; ++j) mmx[j] *= inv;
  for (std::size_t j = 0; j < n; ++j) imx[j] *= inv;
  for (std::size_t j = 0; j < n; ++j) dmx[j] *= inv;
  s.xN *= inv;
  s.xB *= inv;
  s.xJ *= inv;
  s.xC *= inv;
  s.scale_log += std::log(static_cast<double>(xE));
  return inv;
}

/// Striped float Forward over N = V::kLanes lanes.  mmx/imx/dmx are Q*N
/// floats of caller scratch; `prof` supplies the length model only.
template <class V, class Seq>
float fwd_kernel(const profile::FwdProfile& prof, const FwdStripesView& st,
                 Seq seq, std::size_t L, float* mmx, float* imx,
                 float* dmx) {
  constexpr int N = V::kLanes;
  FINEHMM_CHECK(L >= 1, "cannot score an empty sequence");
  const int Q = st.Q;
  const auto lm = prof.length_model_for(static_cast<int>(L));
  const std::size_t n = static_cast<std::size_t>(Q) * N;

  std::fill(mmx, mmx + n, 0.0f);
  std::fill(imx, imx + n, 0.0f);
  std::fill(dmx, dmx + n, 0.0f);

  FwdSweepState s;
  s.xB = s.xN * lm.move;

  for (std::size_t i = 0; i < L; ++i) {
    const float* odds = st.odds + static_cast<std::size_t>(seq[i]) * n;
    const float xE = fwd_row<V>(st, odds, s.xB * st.entry, mmx, imx, dmx);
    fwd_row_specials(s, lm, xE);
    fwd_row_rescale(s, xE, mmx, imx, dmx, n);
  }

  if (s.xC <= 0.0f) return kNegInf;
  return static_cast<float>(std::log(static_cast<double>(s.xC) * lm.move) +
                            s.scale_log);
}

/// Caller-owned workspace for the checkpointed Forward/Backward decode.
/// All pointers are raw caller storage (the kernel allocates nothing):
///   mmx/imx/dmx      Q*N floats each — forward DP rows;
///   snap             n_blocks * 3*Q*N — (M,I,D) state after row b*block;
///   blk_m/blk_i      block * Q*N each — replayed forward rows;
///   row_xb/row_inv   L+1 floats — per-row post-rescale xB / rescale inv;
///   row_scale        L+1 doubles — cumulative scale_log after each row;
///   bwd_m/bwd_i/bwd_d/bwd_on  Q*N floats each — backward DP rows.
/// block is the checkpoint spacing (ceil(sqrt(L)) from the driver) and
/// n_blocks = ceil(L / block); memory is O(M * sqrt(L)).
struct FwdBwdScratch {
  float* mmx = nullptr;
  float* imx = nullptr;
  float* dmx = nullptr;
  float* snap = nullptr;
  float* blk_m = nullptr;
  float* blk_i = nullptr;
  float* row_xb = nullptr;
  float* row_inv = nullptr;
  double* row_scale = nullptr;
  float* bwd_m = nullptr;
  float* bwd_i = nullptr;
  float* bwd_d = nullptr;
  float* bwd_on = nullptr;
  int block = 0;
  int n_blocks = 0;
};

/// Checkpointed Forward + Backward with posterior model occupancy.
///
/// Pass 1 is the plain Forward sweep (bit-identical to fwd_kernel: same
/// row/specials/rescale helpers in the same order) recording per-row xB,
/// rescale factors and sqrt(L)-spaced (M,I,D) snapshots.  Pass 2 walks
/// blocks last-to-first: replaying each block's forward rows from its
/// snapshot (bitwise reconstruction — checked against the next snapshot
/// under FINEHMM_CHECKS), then sweeping the Backward recurrence over the
/// replayed rows and emitting mocc[i-1] = P(residue i emitted by the
/// core model | sequence) for i = 1..L.  Returns the Forward score in
/// nats (identical to fwd_kernel's).
///
/// The Backward recurrence mirrors the Forward's striping: the in-stripe
/// D chain runs top-down per lane, and the lane-crossing D mass wraps
/// through shift_lanes_down with the same epsilon cutoff the Forward
/// wrap uses.  Backward rows rescale on the row's bxB mass with the log
/// factor accumulated separately (bscale), so the posterior combines as
/// exp(log(rowsum) + row_scale[i] + bscale - total).
template <class V, class Seq>
float fwd_bwd_kernel(const profile::FwdProfile& prof,
                     const FwdStripesView& st, Seq seq, std::size_t L,
                     const FwdBwdScratch& ws, float* mocc) {
  constexpr int N = V::kLanes;
  FINEHMM_CHECK(L >= 1, "cannot score an empty sequence");
  FINEHMM_CHECK(st.tdd_out != nullptr,
                "fwd_bwd_kernel needs the out-indexed transition stripes");
  FINEHMM_CHECK(ws.block >= 1 && ws.n_blocks >= 1 &&
                    static_cast<std::size_t>(ws.block) *
                            static_cast<std::size_t>(ws.n_blocks) >=
                        L,
                "checkpoint geometry must cover the sequence");
  const int Q = st.Q;
  const auto lm = prof.length_model_for(static_cast<int>(L));
  const std::size_t n = static_cast<std::size_t>(Q) * N;
  const std::size_t row_bytes = n * sizeof(float);

  float* mmx = ws.mmx;
  float* imx = ws.imx;
  float* dmx = ws.dmx;
  auto snap_at = [&](int b) { return ws.snap + static_cast<std::size_t>(b) * 3 * n; };

  // ---- Pass 1: Forward, recording checkpoints ----
  std::fill(mmx, mmx + n, 0.0f);
  std::fill(imx, imx + n, 0.0f);
  std::fill(dmx, dmx + n, 0.0f);

  FwdSweepState s;
  s.xB = s.xN * lm.move;
  ws.row_xb[0] = s.xB;
  ws.row_inv[0] = 1.0f;
  ws.row_scale[0] = 0.0;
  std::memcpy(snap_at(0), mmx, row_bytes);
  std::memcpy(snap_at(0) + n, imx, row_bytes);
  std::memcpy(snap_at(0) + 2 * n, dmx, row_bytes);

  for (std::size_t i = 1; i <= L; ++i) {
    const float* odds =
        st.odds + static_cast<std::size_t>(seq[i - 1]) * n;
    const float xE = fwd_row<V>(st, odds, s.xB * st.entry, mmx, imx, dmx);
    fwd_row_specials(s, lm, xE);
    ws.row_inv[i] = fwd_row_rescale(s, xE, mmx, imx, dmx, n);
    ws.row_xb[i] = s.xB;
    ws.row_scale[i] = s.scale_log;
    const std::size_t b = i / static_cast<std::size_t>(ws.block);
    if (i % static_cast<std::size_t>(ws.block) == 0 &&
        b < static_cast<std::size_t>(ws.n_blocks)) {
      std::memcpy(snap_at(static_cast<int>(b)), mmx, row_bytes);
      std::memcpy(snap_at(static_cast<int>(b)) + n, imx, row_bytes);
      std::memcpy(snap_at(static_cast<int>(b)) + 2 * n, dmx, row_bytes);
    }
  }

  if (s.xC <= 0.0f) {
    std::fill(mocc, mocc + L, 0.0f);
    return kNegInf;
  }
  const double total =
      std::log(static_cast<double>(s.xC) * lm.move) + s.scale_log;

  // ---- Pass 2: blocks last-to-first, Backward over replayed rows ----
  float* bm = ws.bwd_m;
  float* bi = ws.bwd_i;
  float* bd = ws.bwd_d;
  float* bon = ws.bwd_on;
  auto stripe = [](float* v, int q) {
    return v + static_cast<std::size_t>(q) * N;
  };

  // Row L init: only C -> T move survives; M states exit through E.
  float bN = 0.0f;
  float bJ = 0.0f;
  float bC = lm.move;
  double bscale = 0.0;
  std::fill(bm, bm + n, lm.e_c * bC + lm.e_j * bJ);
  std::fill(bi, bi + n, 0.0f);
  std::fill(bd, bd + n, 0.0f);

  for (int b = ws.n_blocks - 1; b >= 0; --b) {
    const std::size_t lo =
        static_cast<std::size_t>(b) * static_cast<std::size_t>(ws.block) + 1;
    const std::size_t hi = std::min<std::size_t>(
        L, lo + static_cast<std::size_t>(ws.block) - 1);

    // Replay forward rows lo..hi from snapshot b (bitwise: same fwd_row,
    // same stored xB products, same stored rescale factors).
    std::memcpy(mmx, snap_at(b), row_bytes);
    std::memcpy(imx, snap_at(b) + n, row_bytes);
    std::memcpy(dmx, snap_at(b) + 2 * n, row_bytes);
    for (std::size_t i = lo; i <= hi; ++i) {
      const float* odds =
          st.odds + static_cast<std::size_t>(seq[i - 1]) * n;
      fwd_row<V>(st, odds, ws.row_xb[i - 1] * st.entry, mmx, imx, dmx);
      const float inv = ws.row_inv[i];
      if (inv != 1.0f) {
        for (std::size_t j = 0; j < n; ++j) mmx[j] *= inv;
        for (std::size_t j = 0; j < n; ++j) imx[j] *= inv;
        for (std::size_t j = 0; j < n; ++j) dmx[j] *= inv;
      }
      std::memcpy(ws.blk_m + (i - lo) * n, mmx, row_bytes);
      std::memcpy(ws.blk_i + (i - lo) * n, imx, row_bytes);
    }
#if FINEHMM_CHECKS_ENABLED
    if (b + 1 < ws.n_blocks) {
      const float* nxt = snap_at(b + 1);
      FINEHMM_DCHECK(std::memcmp(nxt, mmx, row_bytes) == 0 &&
                         std::memcmp(nxt + n, imx, row_bytes) == 0 &&
                         std::memcmp(nxt + 2 * n, dmx, row_bytes) == 0,
                     "checkpoint replay must reconstruct the next "
                     "snapshot bitwise");
    }
#endif

    // Backward sweep rows hi..lo.  Entering the block, bm/bi/bd hold row
    // hi+1 (or the row-L init); each iteration steps to row i, combines
    // with the replayed forward row, then rescales if needed.
    for (std::size_t i = hi;; --i) {
      if (i < L) {
        // Step row i+1 -> i; consumes residue i+1 (seq[i], 0-based).
        const float* odds =
            st.odds + static_cast<std::size_t>(seq[i]) * n;

        // on(k) = odds(x_{i+1}, k) * bM(i+1, k), plus its total.
        V sum_on_v = V::splat(0.0f);
        for (int q = 0; q < Q; ++q) {
          const std::size_t off = static_cast<std::size_t>(q) * N;
          const V on = mul_f(V::load(odds + off), V::load(stripe(bm, q)));
          on.store(stripe(bon, q));
          sum_on_v = add_f(sum_on_v, on);
        }
        const float sum_on = hsum_f(sum_on_v);

        // Special states (adjoints of the forward specials).
        const float bxB = st.entry * sum_on;
        bJ = bJ * lm.loop + bxB * lm.move;
        bN = bN * lm.loop + bxB * lm.move;
        bC = bC * lm.loop;
        const float bxE = lm.e_c * bC + lm.e_j * bJ;

        // In-stripe D chain, top-down per lane; the lane-crossing link
        // at the last stripe starts at zero and is filled by the wrap.
        V dnext = V::splat(0.0f);
        for (int q = Q - 1; q >= 0; --q) {
          const std::size_t off = static_cast<std::size_t>(q) * N;
          const V onp = q == Q - 1 ? shift_lanes_down(V::load(bon))
                                   : V::load(stripe(bon, q + 1));
          const V d = add_f(mul_f(V::load(st.tdm_out + off), onp),
                            mul_f(V::load(st.tdd_out + off), dnext));
          d.store(stripe(bd, q));
          dnext = d;
        }
        // Lane-crossing D mass, mirroring the Forward wrap: the delta
        // entering stripe Q-1 of lane j is the (partial) bd of stripe 0,
        // lane j+1, scaled by tdd_out; propagate until negligible.
        V extra = mul_f(V::load(st.tdd_out + (Q - 1) * N),
                        shift_lanes_down(V::load(bd)));
        for (int pass = 0; pass < N * Q; ++pass) {
          V circv = V::splat(0.0f);
          V heldv = V::splat(0.0f);
          for (int q = Q - 1; q >= 0; --q) {
            const std::size_t off = static_cast<std::size_t>(q) * N;
            if (q < Q - 1) extra = mul_f(extra, V::load(st.tdd_out + off));
            V cur = V::load(stripe(bd, q));
            circv = add_f(circv, extra);
            heldv = add_f(heldv, cur);
            add_f(cur, extra).store(stripe(bd, q));
          }
          if (hsum_f(circv) <=
              kFwdDdEpsilon * (hsum_f(heldv) + kFwdRescaleLo))
            break;
          extra = mul_f(shift_lanes_down(extra),
                        V::load(st.tdd_out + (Q - 1) * N));
        }

        // bM / bI rows in place (bM reads old bI, so it goes first).
        const V bxEv = V::splat(bxE);
        for (int q = 0; q < Q; ++q) {
          const std::size_t off = static_cast<std::size_t>(q) * N;
          const V onp = q == Q - 1 ? shift_lanes_down(V::load(bon))
                                   : V::load(stripe(bon, q + 1));
          const V bdp = q == Q - 1 ? shift_lanes_down(V::load(bd))
                                   : V::load(stripe(bd, q + 1));
          const V bip = V::load(stripe(bi, q));
          V bmv = bxEv;
          bmv = add_f(bmv, mul_f(V::load(st.tmm_out + off), onp));
          bmv = add_f(bmv, mul_f(V::load(st.tmi + off), bip));
          bmv = add_f(bmv, mul_f(V::load(st.tmd_out + off), bdp));
          const V biv = add_f(mul_f(V::load(st.tim_out + off), onp),
                              mul_f(V::load(st.tii + off), bip));
          bmv.store(stripe(bm, q));
          biv.store(stripe(bi, q));
        }
      }

      // Combine: posterior mass of residue i in the core model.
      {
        const float* fm = ws.blk_m + (i - lo) * n;
        const float* fi = ws.blk_i + (i - lo) * n;
        V rsv = V::splat(0.0f);
        for (int q = 0; q < Q; ++q) {
          const std::size_t off = static_cast<std::size_t>(q) * N;
          rsv = add_f(rsv, add_f(mul_f(V::load(fm + off), V::load(bm + off)),
                                 mul_f(V::load(fi + off), V::load(bi + off))));
        }
        const float rowsum = hsum_f(rsv);
        if (rowsum > 0.0f) {
          const double lp = std::log(static_cast<double>(rowsum)) +
                            ws.row_scale[i] + bscale - total;
          const float p = static_cast<float>(std::exp(lp));
          mocc[i - 1] = p < 1.0f ? p : 1.0f;
        } else {
          mocc[i - 1] = 0.0f;
        }
      }

      // Rescale the backward rows on the same trigger the forward uses;
      // bN tracks the total suffix mass (zero only at the row-L init,
      // which never needs rescaling).
      const float brow = bN;
      if (brow > 0.0f &&
          (brow > kFwdRescaleHi || brow < kFwdRescaleLo)) {
        const float inv = 1.0f / brow;
        for (std::size_t j = 0; j < n; ++j) bm[j] *= inv;
        for (std::size_t j = 0; j < n; ++j) bi[j] *= inv;
        for (std::size_t j = 0; j < n; ++j) bd[j] *= inv;
        bN *= inv;
        bJ *= inv;
        bC *= inv;
        bscale += std::log(static_cast<double>(brow));
      }

      if (i == lo) break;
    }
  }

  return static_cast<float>(total);
}

}  // namespace finehmm::cpu::simd_kernels
