// Striped float Forward filter (extension; HMMER 3.0 ships an SSE float
// Forward — p7_ForwardFilter — as its final scoring stage).
//
// Runs in probability space with 4 float lanes and Farrar striping.  Two
// numerical devices keep it finite:
//   * per-row rescaling: when the row's E mass leaves [1e-12, 1e12], all
//     live state (DP stripes and the N/B/J/C specials) is divided by the
//     E mass and its log accumulated — the classic scaled-Forward trick;
//   * the D->D chain converges geometrically (tDD < 1), so the cross-lane
//     wrap passes stop once the circulating mass falls below a relative
//     epsilon of the accumulated D mass.
// The result tracks the exact log-space Forward within ~1e-3 nats and is
// an order of magnitude faster than the generic implementation, fixing
// the Forward stage's inflated share in the Fig. 1 reproduction.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "profile/fwd_profile.hpp"

namespace finehmm::cpu {

class FwdFilter {
 public:
  explicit FwdFilter(const profile::FwdProfile& prof);

  /// Forward score (nats).
  float score(const std::uint8_t* seq, std::size_t L);

 private:
  const profile::FwdProfile& prof_;
  std::vector<float> mmx_, imx_, dmx_;  // Q stripes x 4 lanes each
};

/// One-shot convenience wrapper.
float fwd_striped(const profile::FwdProfile& prof, const std::uint8_t* seq,
                  std::size_t L);

}  // namespace finehmm::cpu
