// Striped float Forward filter (extension; HMMER 3.0 ships an SSE float
// Forward — p7_ForwardFilter — as its final scoring stage).
//
// Runs in probability space with 4 float lanes and Farrar striping.  Two
// numerical devices keep it finite:
//   * per-row rescaling: when the row's E mass leaves [1e-12, 1e12], all
//     live state (DP stripes and the N/B/J/C specials) is divided by the
//     E mass and its log accumulated — the classic scaled-Forward trick;
//   * the D->D chain converges geometrically (tDD < 1), so the cross-lane
//     wrap passes stop once the circulating mass falls below a relative
//     epsilon of the accumulated D mass.
// The result tracks the exact log-space Forward within ~1e-3 nats and is
// an order of magnitude faster than the generic implementation, fixing
// the Forward stage's inflated share in the Fig. 1 reproduction.
//
// Float summation order is part of the result, so the 128-bit 4-lane
// striping is the widest bit-exact tier for this filter: requesting AVX2
// clamps to SSE2 here (see docs/simd_dispatch.md).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "cpu/simd_backend/simd_tier.hpp"
#include "profile/fwd_profile.hpp"

namespace finehmm::cpu {

class FwdFilter {
 public:
  explicit FwdFilter(const profile::FwdProfile& prof,
                     SimdTier tier = active_simd_tier());

  /// Forward score (nats).
  float score(const std::uint8_t* seq, std::size_t L);

  /// The tier score() actually runs: the requested tier clamped to what
  /// the host supports AND to SSE2, this filter's widest bit-exact tier.
  SimdTier tier() const noexcept { return tier_; }

 private:
  const profile::FwdProfile& prof_;
  SimdTier tier_;
  std::vector<float> mmx_, imx_, dmx_;  // Q stripes x 4 lanes each
};

/// One-shot convenience wrapper.  Uses thread-local scratch (grown, never
/// shrunk) so steady-state database scans allocate nothing per call.
float fwd_striped(const profile::FwdProfile& prof, const std::uint8_t* seq,
                  std::size_t L);

}  // namespace finehmm::cpu
