// Striped float Forward filter and checkpointed Forward/Backward decoder
// (extension; HMMER 3.0 ships an SSE float Forward — p7_ForwardFilter —
// as its final scoring stage, HMMER 3.1 adds the checkpointed Backward).
//
// Runs in probability space with Farrar striping at the active tier's
// float width — 4 lanes portable/SSE2, 8 on AVX2, 16 on AVX-512 — all
// instantiating the same kernel (cpu/simd_backend/kernels.hpp).  Two
// numerical devices keep it finite:
//   * per-row rescaling: when the row's E mass leaves [1e-12, 1e12], all
//     live state (DP stripes and the N/B/J/C specials) is divided by the
//     E mass and its log accumulated — the classic scaled-Forward trick;
//   * the D->D chain converges geometrically (tDD < 1), so the cross-lane
//     wrap passes stop once the circulating mass falls below a relative
//     epsilon of the accumulated D mass.
// The result tracks the exact log-space Forward within ~1e-3 nats.
// Float summation order is part of the result, so different lane widths
// agree within a documented log-sum tolerance rather than bit-exactly
// (see docs/simd_dispatch.md); a given width is bit-reproducible.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "cpu/fwd_wide.hpp"
#include "cpu/simd_backend/backend.hpp"
#include "cpu/simd_backend/simd_tier.hpp"
#include "profile/fwd_profile.hpp"
#include "util/aligned.hpp"

namespace finehmm::cpu {

class FwdFilter {
 public:
  explicit FwdFilter(const profile::FwdProfile& prof,
                     SimdTier tier = active_simd_tier());
  /// Share a prebuilt re-striping between workers; its lane count must
  /// match the resolved tier's float width.
  FwdFilter(const profile::FwdProfile& prof, SimdTier tier,
            std::shared_ptr<const WideFwdStripes> stripes);

  /// Forward score (nats).
  float score(const std::uint8_t* seq, std::size_t L);

  /// Checkpointed Forward + Backward: fills mocc (resized to L) with the
  /// per-residue model occupancy P(residue i emitted by the core model)
  /// and returns the Forward score — identical to score()'s, the decode
  /// replays the same kernel rows.  Workspace is owned by the filter and
  /// grown monotonically, so steady-state scans allocate nothing.
  float decode(const std::uint8_t* seq, std::size_t L,
               std::vector<float>& mocc);

  /// The tier score() actually runs: the requested tier clamped to what
  /// the host supports.
  SimdTier tier() const noexcept { return ops_->tier; }
  /// Float lanes per vector at that tier (4 / 8 / 16).
  int lanes() const noexcept { return ops_->f32_lanes; }
  /// The re-striped parameters score() reads (shareable with workers).
  const std::shared_ptr<const WideFwdStripes>& wide_stripes() const {
    return stripes_;
  }

 private:
  void grow_decode_workspace(std::size_t L);

  const profile::FwdProfile& prof_;
  const backend::TierKernels* ops_;
  std::shared_ptr<const WideFwdStripes> stripes_;  // ops_->f32_lanes wide
  aligned_vector<float> mmx_, imx_, dmx_;  // Q stripes x lanes each

  // Checkpointed-decode workspace (see simd_kernels::FwdBwdScratch);
  // sized for the largest L seen, never shrunk.
  aligned_vector<float> snap_, blk_m_, blk_i_, bwd_;
  aligned_vector<float> row_xb_, row_inv_;
  aligned_vector<double> row_scale_;
  std::size_t decode_rows_ = 0;  // L capacity of the per-row arrays
  int block_ = 0;
  int n_blocks_ = 0;
};

/// One-shot convenience wrapper honouring the active tier (including env
/// and programmatic overrides).  Uses thread-local scratch — and, for
/// tiers wider than the profile's native 4-lane layout, a thread-local
/// re-striping cached per (profile, tier) — grown or rebuilt only on
/// change, so steady-state database scans allocate nothing per call.
float fwd_striped(const profile::FwdProfile& prof, const std::uint8_t* seq,
                  std::size_t L);

}  // namespace finehmm::cpu
