// Striped SIMD ViterbiFilter with the Farrar Lazy-F evaluation.
//
// The D->D dependency chain breaks striping: consecutive model positions
// sit in consecutive stripes of the same lane, so in-row propagation works
// within a pass over the stripes, but chains that cross a lane boundary
// need the dcv register wrapped (lane-shifted) and the pass repeated.
// Because most rows take no D->D path at all, the repeat almost never
// fires — the "Lazy-F" insight of Farrar (2007) that HMMER 3.0 and the
// paper's GPU kernel both rely on.  Word values match vit_scalar exactly.
//
// Like MsvFilter, the filter resolves its tier through the backend's
// kernel table; tiers wider than the profile's native 8-word layout
// re-stripe all eight parameter arrays once per (model, lane count),
// shareable between workers through SharedVitStripes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "cpu/filter_result.hpp"
#include "cpu/simd_backend/backend.hpp"
#include "cpu/simd_backend/simd_tier.hpp"
#include "profile/vit_profile.hpp"

namespace finehmm::cpu {

/// A tier's striped Viterbi parameters, type-erased like SharedMsvRows:
/// the 8-lane view aliases the VitProfile's own arrays (owner empty); the
/// wide re-stripings keep their WideVitStripes<N> alive via owner.
struct SharedVitStripes {
  std::shared_ptr<const void> owner;
  simd_kernels::VitStripesView view;
  int lanes = 0;
};

/// Build (or alias) the parameter stripes for one word lane count: 8
/// reads the VitProfile's own striping zero-copy; 16/32 re-stripe once.
SharedVitStripes make_shared_vit_stripes(const profile::VitProfile& prof,
                                         int lanes);

class VitFilter {
 public:
  explicit VitFilter(const profile::VitProfile& prof,
                     SimdTier tier = active_simd_tier());
  /// Share a prebuilt parameter re-striping between workers; its lane
  /// count must match the resolved tier's.
  VitFilter(const profile::VitProfile& prof, SimdTier tier,
            SharedVitStripes wide);

  FilterResult score(const std::uint8_t* seq, std::size_t L);

  /// Number of Lazy-F wrap passes executed by the last score() call
  /// (diagnostic; 0 means no chain crossed a lane boundary).
  int last_lazyf_passes() const noexcept { return lazyf_passes_; }

  /// The tier score() actually runs (requested clamped to supported).
  SimdTier tier() const noexcept { return ops_->tier; }
  /// The parameter stripes score() reads (shareable with other workers).
  const SharedVitStripes& wide_stripes() const { return wide_; }

 private:
  const profile::VitProfile& prof_;
  const backend::TierKernels* ops_;
  SharedVitStripes wide_;
  std::vector<std::int16_t> mmx_, imx_, dmx_;  // Q stripes x lane words
  int lazyf_passes_ = 0;
};

/// One-shot convenience wrapper.  Uses thread-local scratch (grown, never
/// shrunk) so steady-state database scans allocate nothing per call; runs
/// the widest tier that needs no per-model re-striping (SSE2 on x86-64).
FilterResult vit_striped(const profile::VitProfile& prof,
                         const std::uint8_t* seq, std::size_t L);

}  // namespace finehmm::cpu
