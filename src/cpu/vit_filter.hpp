// Striped SIMD ViterbiFilter with the Farrar Lazy-F evaluation.
//
// The D->D dependency chain breaks striping: consecutive model positions
// sit in consecutive stripes of the same lane, so in-row propagation works
// within a pass over the stripes, but chains that cross a lane boundary
// need the dcv register wrapped (lane-shifted) and the pass repeated.
// Because most rows take no D->D path at all, the repeat almost never
// fires — the "Lazy-F" insight of Farrar (2007) that HMMER 3.0 and the
// paper's GPU kernel both rely on.  Word values match vit_scalar exactly.
//
// Like MsvFilter, the filter dispatches to the widest native tier the
// host supports; the AVX2 tier runs 16 word lanes and re-stripes all
// eight parameter arrays once per (model, filter), shareable between
// workers through the shared_ptr constructor.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "cpu/filter_result.hpp"
#include "cpu/simd_backend/simd_tier.hpp"
#include "cpu/vit_wide.hpp"
#include "profile/vit_profile.hpp"

namespace finehmm::cpu {

class VitFilter {
 public:
  explicit VitFilter(const profile::VitProfile& prof,
                     SimdTier tier = active_simd_tier());
  /// Share a prebuilt 16-lane parameter re-striping between workers (only
  /// read when the resolved tier is AVX2; may be nullptr otherwise).
  VitFilter(const profile::VitProfile& prof, SimdTier tier,
            std::shared_ptr<const WideVitStripes<16>> wide);

  FilterResult score(const std::uint8_t* seq, std::size_t L);

  /// Number of Lazy-F wrap passes executed by the last score() call
  /// (diagnostic; 0 means no chain crossed a lane boundary).
  int last_lazyf_passes() const noexcept { return lazyf_passes_; }

  /// The tier score() actually runs (requested clamped to supported).
  SimdTier tier() const noexcept { return tier_; }
  /// The 16-lane parameter stripes, non-null iff tier() == kAvx2.
  const std::shared_ptr<const WideVitStripes<16>>& wide_stripes() const {
    return wide_;
  }

 private:
  const profile::VitProfile& prof_;
  SimdTier tier_;
  std::shared_ptr<const WideVitStripes<16>> wide_;
  std::vector<std::int16_t> mmx_, imx_, dmx_;  // Q stripes x lane words
  int lazyf_passes_ = 0;
};

/// One-shot convenience wrapper.  Uses thread-local scratch (grown, never
/// shrunk) so steady-state database scans allocate nothing per call; runs
/// the widest tier that needs no per-model re-striping (SSE2 on x86-64).
FilterResult vit_striped(const profile::VitProfile& prof,
                         const std::uint8_t* seq, std::size_t L);

}  // namespace finehmm::cpu
