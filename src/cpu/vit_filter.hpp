// Striped SIMD ViterbiFilter with the Farrar Lazy-F evaluation.
//
// The D->D dependency chain breaks striping: consecutive model positions
// sit in consecutive stripes of the same lane, so in-row propagation works
// within a pass over the stripes, but chains that cross a lane boundary
// need the dcv register wrapped (lane-shifted) and the pass repeated.
// Because most rows take no D->D path at all, the repeat almost never
// fires — the "Lazy-F" insight of Farrar (2007) that HMMER 3.0 and the
// paper's GPU kernel both rely on.  Word values match vit_scalar exactly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "cpu/filter_result.hpp"
#include "profile/vit_profile.hpp"

namespace finehmm::cpu {

class VitFilter {
 public:
  explicit VitFilter(const profile::VitProfile& prof);

  FilterResult score(const std::uint8_t* seq, std::size_t L);

  /// Number of Lazy-F wrap passes executed by the last score() call
  /// (diagnostic; 0 means no chain crossed a lane boundary).
  int last_lazyf_passes() const noexcept { return lazyf_passes_; }

 private:
  const profile::VitProfile& prof_;
  std::vector<std::int16_t> mmx_, imx_, dmx_;  // Q stripes x 8 lanes each
  int lazyf_passes_ = 0;
};

FilterResult vit_striped(const profile::VitProfile& prof,
                         const std::uint8_t* seq, std::size_t L);

}  // namespace finehmm::cpu
