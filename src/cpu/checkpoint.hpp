// Checkpointed posterior decoding (extension; the memory-economy idea of
// HMMER 3.1's checkpointed Forward/Backward matrices).
//
// Full posterior decoding stores O(M*L) Forward AND Backward cells — for
// a 2405-state model against a 40k-residue target that is ~2.3 GB.  The
// checkpointed decoder stores Forward row snapshots every B rows plus the
// O(L) special-state lanes, then sweeps Backward once, recomputing each
// B-row Forward block from its snapshot just in time; with B = sqrt(L)
// memory drops to O(M*sqrt(L)) at the cost of one extra Forward pass.
// The produced occupancies match cpu::model_occupancy exactly (same
// arithmetic, same order within rows).
#pragma once

#include <cstdint>
#include <vector>

#include "hmm/profile.hpp"

namespace finehmm::cpu {

struct CheckpointedPosterior {
  float total = 0.0f;           // Forward score (nats)
  std::vector<float> mocc;      // per-residue model occupancy, size L
  std::size_t block = 0;        // block size used
  std::size_t peak_rows = 0;    // max simultaneously resident M-sized rows
};

/// block = 0 selects ceil(sqrt(L)).
CheckpointedPosterior model_occupancy_checkpointed(
    const hmm::SearchProfile& prof, const std::uint8_t* seq, std::size_t L,
    std::size_t block = 0);

}  // namespace finehmm::cpu
