#include "cpu/trace.hpp"

#include <algorithm>
#include <cctype>
#include <vector>

#include "util/error.hpp"
#include "util/logspace.hpp"

namespace finehmm::cpu {

namespace {

using hmm::kPTBM;
using hmm::kPTDD;
using hmm::kPTDM;
using hmm::kPTII;
using hmm::kPTIM;
using hmm::kPTMD;
using hmm::kPTMI;
using hmm::kPTMM;

float add(float a, float b) {
  if (a == kNegInf || b == kNegInf) return kNegInf;
  return a + b;
}

/// Consensus residue of model column k, uppercase when strongly conserved.
char consensus_char(const hmm::SearchProfile& prof, int k) {
  int best = 0;
  for (int a = 1; a < bio::kK; ++a)
    if (prof.msc(k, a) > prof.msc(k, best)) best = a;
  char c = bio::kCanonical[best];
  return prof.msc(k, best) > 1.0f ? c
                                  : static_cast<char>(std::tolower(c));
}

/// Recover the state path from the filled backpointer arrays.  `stride`
/// is M+1; bm/bi/bd are (L+1)*stride matrices.  Only backpointers along
/// the optimal path are read, and a finite score guarantees every one of
/// those was written by the DP.
ViterbiTrace backtrace(float score, std::size_t L, std::size_t stride,
                       const std::uint8_t* bm, const std::uint8_t* bi,
                       const std::uint8_t* bd, const int* be,
                       const std::uint8_t* bj, const std::uint8_t* bc,
                       const std::uint8_t* bb) {
  ViterbiTrace trace;
  trace.score = score;
  if (trace.score == kNegInf) return trace;  // no path (degenerate input)

  auto at = [stride](std::size_t i, int k) {
    return i * stride + static_cast<std::size_t>(k);
  };

  // Emits steps in reverse, flipped at the end.
  std::vector<TraceStep> rev;
  enum class St { kC, kE, kM, kI, kD, kJ, kB, kN };
  St st = St::kC;
  std::size_t i = L;
  int k = 0;
  for (;;) {
    switch (st) {
      case St::kC:
        if (bc[i] == 0) {
          rev.push_back({TraceState::kC, 0, i});  // C emitted residue i
          --i;
        } else {
          rev.push_back({TraceState::kC, 0, 0});
          st = St::kE;
        }
        break;
      case St::kE:
        rev.push_back({TraceState::kE, 0, 0});
        k = be[i];
        st = St::kM;
        break;
      case St::kM: {
        rev.push_back({TraceState::kM, k, i});
        std::uint8_t p = bm[at(i, k)];
        --i;
        if (p == 0) {
          st = St::kB;
        } else if (p == 1) {
          --k;
          st = St::kM;
        } else if (p == 2) {
          --k;
          st = St::kI;
        } else {
          --k;
          st = St::kD;
        }
        break;
      }
      case St::kI: {
        rev.push_back({TraceState::kI, k, i});
        std::uint8_t p = bi[at(i, k)];
        --i;
        st = p == 0 ? St::kM : St::kI;
        break;
      }
      case St::kD: {
        rev.push_back({TraceState::kD, k, 0});
        std::uint8_t p = bd[at(i, k)];
        --k;
        st = p == 0 ? St::kM : St::kD;
        break;
      }
      case St::kB:
        rev.push_back({TraceState::kB, 0, 0});
        st = bb[i] == 0 ? St::kN : St::kJ;
        break;
      case St::kJ:
        if (bj[i] == 0) {
          rev.push_back({TraceState::kJ, 0, i});
          --i;
        } else {
          rev.push_back({TraceState::kJ, 0, 0});
          st = St::kE;
        }
        break;
      case St::kN:
        if (i == 0) {
          rev.push_back({TraceState::kN, 0, 0});
          std::reverse(rev.begin(), rev.end());
          trace.steps = std::move(rev);
          return trace;
        }
        rev.push_back({TraceState::kN, 0, i});
        --i;
        break;
    }
  }
}

}  // namespace

ViterbiTrace viterbi_trace(const hmm::SearchProfile& prof,
                           const std::uint8_t* seq, std::size_t L) {
  FH_REQUIRE(L >= 1, "cannot trace an empty sequence");
  const int M = prof.length();
  const auto xs = prof.xsc_for(static_cast<int>(L));

  // DP values: two rolling rows; backpointers: full matrices (they are
  // what the traceback needs).
  std::vector<float> pm(M + 1, kNegInf), pi(M + 1, kNegInf),
      pd(M + 1, kNegInf);
  std::vector<float> cm(M + 1, kNegInf), ci(M + 1, kNegInf),
      cd(M + 1, kNegInf);
  auto at = [M](std::size_t i, int k) {
    return i * static_cast<std::size_t>(M + 1) + static_cast<std::size_t>(k);
  };
  std::vector<std::uint8_t> bm((L + 1) * (M + 1), 0);
  std::vector<std::uint8_t> bi_((L + 1) * (M + 1), 0);
  std::vector<std::uint8_t> bd((L + 1) * (M + 1), 0);
  std::vector<int> be(L + 1, 0);
  std::vector<std::uint8_t> bj(L + 1, 0), bc(L + 1, 0), bb(L + 1, 0);

  std::vector<float> vN(L + 1, kNegInf), vB(L + 1, kNegInf),
      vE(L + 1, kNegInf), vJ(L + 1, kNegInf), vC(L + 1, kNegInf);
  vN[0] = 0.0f;
  vB[0] = xs.n_move;
  bb[0] = 0;

  for (std::size_t i = 1; i <= L; ++i) {
    std::uint8_t x = seq[i - 1];
    float xE = kNegInf;
    int xEk = 0;
    cm[0] = ci[0] = cd[0] = kNegInf;
    for (int k = 1; k <= M; ++k) {
      // Match: B / M / I / D predecessors from row i-1.
      float cand[4] = {
          add(vB[i - 1], prof.tsc(k - 1, kPTBM)),
          add(pm[k - 1], prof.tsc(k - 1, kPTMM)),
          add(pi[k - 1], prof.tsc(k - 1, kPTIM)),
          add(pd[k - 1], prof.tsc(k - 1, kPTDM))};
      int best = 0;
      for (int c = 1; c < 4; ++c)
        if (cand[c] > cand[best]) best = c;
      bm[at(i, k)] = static_cast<std::uint8_t>(best);
      cm[k] = add(cand[best], prof.msc(k, x));
      float exit_score = add(cm[k], prof.esc(k));
      if (exit_score > xE) {
        xE = exit_score;
        xEk = k;
      }

      if (k < M) {
        float im = add(pm[k], prof.tsc(k, kPTMI));
        float ii = add(pi[k], prof.tsc(k, kPTII));
        bi_[at(i, k)] = im >= ii ? 0 : 1;
        ci[k] = std::max(im, ii);
      } else {
        ci[k] = kNegInf;
      }
      if (k >= 2) {
        float dm = add(cm[k - 1], prof.tsc(k - 1, kPTMD));
        float dd = add(cd[k - 1], prof.tsc(k - 1, kPTDD));
        bd[at(i, k)] = dm >= dd ? 0 : 1;
        cd[k] = std::max(dm, dd);
      } else {
        cd[k] = kNegInf;
      }
    }
    vE[i] = xE;
    be[i] = xEk;

    float j_loop = add(vJ[i - 1], xs.j_loop);
    float j_new = add(xE, xs.e_j);
    bj[i] = j_loop >= j_new ? 0 : 1;
    vJ[i] = std::max(j_loop, j_new);

    float c_loop = add(vC[i - 1], xs.c_loop);
    float c_new = add(xE, xs.e_c);
    bc[i] = c_loop >= c_new ? 0 : 1;
    vC[i] = std::max(c_loop, c_new);

    vN[i] = add(vN[i - 1], xs.n_loop);
    float b_n = add(vN[i], xs.n_move);
    float b_j = add(vJ[i], xs.j_move);
    bb[i] = b_n >= b_j ? 0 : 1;
    vB[i] = std::max(b_n, b_j);

    pm.swap(cm);
    pi.swap(ci);
    pd.swap(cd);
  }

  return backtrace(add(vC[L], xs.c_move), L, static_cast<std::size_t>(M + 1),
                   bm.data(), bi_.data(), bd.data(), be.data(), bj.data(),
                   bc.data(), bb.data());
}

void TraceWorkspace::reserve(int M, std::size_t L) {
  const std::size_t stride = static_cast<std::size_t>(M) + 1;
  const std::size_t cells = (L + 1) * stride;
  if (rows_.size() < 6 * stride) rows_.resize(6 * stride);
  if (bm_.size() < cells) {
    bm_.resize(cells);
    bi_.resize(cells);
    bd_.resize(cells);
  }
  if (be_.size() < L + 1) {
    be_.resize(L + 1);
    bj_.resize(L + 1);
    bc_.resize(L + 1);
    bb_.resize(L + 1);
  }
}

ViterbiTrace viterbi_trace(const hmm::SearchProfile& prof,
                           const std::uint8_t* seq, std::size_t L,
                           TraceWorkspace& ws) {
  FH_REQUIRE(L >= 1, "cannot trace an empty sequence");
  const int M = prof.length();
  const auto xs = prof.xsc_for(static_cast<int>(L));
  ws.reserve(M, L);

  const std::size_t stride = static_cast<std::size_t>(M) + 1;
  float* pm = ws.rows_.data();
  float* pi = pm + stride;
  float* pd = pi + stride;
  float* cm = pd + stride;
  float* ci = cm + stride;
  float* cd = ci + stride;
  std::uint8_t* bm = ws.bm_.data();
  std::uint8_t* bi = ws.bi_.data();
  std::uint8_t* bd = ws.bd_.data();
  int* be = ws.be_.data();
  std::uint8_t* bj = ws.bj_.data();
  std::uint8_t* bc = ws.bc_.data();
  std::uint8_t* bb = ws.bb_.data();

  std::fill(pm, pm + stride, kNegInf);
  std::fill(pi, pi + stride, kNegInf);
  std::fill(pd, pd + stride, kNegInf);

  // Special-state values only feed the next row, so they live in scalars;
  // the per-row backpointers (all the backtrace reads) are kept.
  float vN = 0.0f;
  float vB = xs.n_move;
  float vJ = kNegInf;
  float vC = kNegInf;
  bb[0] = 0;

  for (std::size_t i = 1; i <= L; ++i) {
    const std::uint8_t x = seq[i - 1];
    std::uint8_t* bm_row = bm + i * stride;
    std::uint8_t* bi_row = bi + i * stride;
    std::uint8_t* bd_row = bd + i * stride;
    float xE = kNegInf;
    int xEk = 0;
    cm[0] = ci[0] = cd[0] = kNegInf;
    for (int k = 1; k <= M; ++k) {
      // Match: B / M / I / D predecessors from row i-1.  Running strict-
      // greater argmax == the reference's first-index-of-max scan.
      float bv = vB + prof.tsc(k - 1, kPTBM);
      int best = 0;
      const float c1 = pm[k - 1] + prof.tsc(k - 1, kPTMM);
      if (c1 > bv) {
        bv = c1;
        best = 1;
      }
      const float c2 = pi[k - 1] + prof.tsc(k - 1, kPTIM);
      if (c2 > bv) {
        bv = c2;
        best = 2;
      }
      const float c3 = pd[k - 1] + prof.tsc(k - 1, kPTDM);
      if (c3 > bv) {
        bv = c3;
        best = 3;
      }
      bm_row[k] = static_cast<std::uint8_t>(best);
      cm[k] = bv + prof.msc(k, x);
      const float exit_score = cm[k] + prof.esc(k);
      if (exit_score > xE) {
        xE = exit_score;
        xEk = k;
      }

      if (k < M) {
        const float im = pm[k] + prof.tsc(k, kPTMI);
        const float ii = pi[k] + prof.tsc(k, kPTII);
        bi_row[k] = im >= ii ? 0 : 1;
        ci[k] = std::max(im, ii);
      } else {
        ci[k] = kNegInf;
      }
      if (k >= 2) {
        const float dm = cm[k - 1] + prof.tsc(k - 1, kPTMD);
        const float dd = cd[k - 1] + prof.tsc(k - 1, kPTDD);
        bd_row[k] = dm >= dd ? 0 : 1;
        cd[k] = std::max(dm, dd);
      } else {
        cd[k] = kNegInf;
      }
    }
    be[i] = xEk;

    const float j_loop = vJ + xs.j_loop;
    const float j_new = xE + xs.e_j;
    bj[i] = j_loop >= j_new ? 0 : 1;
    vJ = std::max(j_loop, j_new);

    const float c_loop = vC + xs.c_loop;
    const float c_new = xE + xs.e_c;
    bc[i] = c_loop >= c_new ? 0 : 1;
    vC = std::max(c_loop, c_new);

    vN = vN + xs.n_loop;
    const float b_n = vN + xs.n_move;
    const float b_j = vJ + xs.j_move;
    bb[i] = b_n >= b_j ? 0 : 1;
    vB = std::max(b_n, b_j);

    std::swap(pm, cm);
    std::swap(pi, ci);
    std::swap(pd, cd);
  }

  return backtrace(vC + xs.c_move, L, stride, bm, bi, bd, be, bj, bc, bb);
}

std::vector<Alignment> trace_alignments(const ViterbiTrace& trace,
                                        const hmm::SearchProfile& prof,
                                        const std::uint8_t* seq) {
  std::vector<Alignment> out;
  Alignment cur;
  bool in_segment = false;
  for (const auto& step : trace.steps) {
    switch (step.state) {
      case TraceState::kM: {
        if (!in_segment) break;
        if (cur.k_start == 0) cur.k_start = step.k;
        cur.k_end = step.k;
        if (cur.i_start == 0) cur.i_start = step.i;
        cur.i_end = step.i;
        char cons = consensus_char(prof, step.k);
        char res = bio::symbol(seq[step.i - 1]);
        cur.model_line.push_back(cons);
        cur.seq_line.push_back(res);
        float sc = prof.msc(step.k, seq[step.i - 1]);
        if (std::toupper(cons) == res)
          cur.match_line.push_back(res);
        else
          cur.match_line.push_back(sc > 0.0f ? '+' : ' ');
        break;
      }
      case TraceState::kI:
        if (!in_segment) break;
        cur.model_line.push_back('.');
        cur.match_line.push_back(' ');
        cur.seq_line.push_back(static_cast<char>(
            std::tolower(bio::symbol(seq[step.i - 1]))));
        cur.i_end = step.i;
        break;
      case TraceState::kD:
        if (!in_segment) break;
        cur.model_line.push_back(consensus_char(prof, step.k));
        cur.match_line.push_back(' ');
        cur.seq_line.push_back('-');
        cur.k_end = step.k;
        break;
      case TraceState::kB:
        in_segment = true;
        cur = Alignment{};
        break;
      case TraceState::kE:
        if (in_segment && !cur.model_line.empty()) out.push_back(cur);
        in_segment = false;
        break;
      default:
        break;
    }
  }
  return out;
}

float trace_score(const ViterbiTrace& trace, const hmm::SearchProfile& prof,
                  const std::uint8_t* seq, std::size_t L) {
  const auto xs = prof.xsc_for(static_cast<int>(L));
  float score = 0.0f;
  for (std::size_t s = 1; s < trace.steps.size(); ++s) {
    const auto& prev = trace.steps[s - 1];
    const auto& cur = trace.steps[s];
    float t = kNegInf;
    switch (prev.state) {
      case TraceState::kN:
        t = cur.state == TraceState::kN ? xs.n_loop : xs.n_move;
        break;
      case TraceState::kB:
        t = prof.tsc(cur.k - 1, kPTBM);
        break;
      case TraceState::kM:
        if (cur.state == TraceState::kM)
          t = prof.tsc(prev.k, kPTMM);
        else if (cur.state == TraceState::kI)
          t = prof.tsc(prev.k, kPTMI);
        else if (cur.state == TraceState::kD)
          t = prof.tsc(prev.k, kPTMD);
        else  // E: exit score (0 in local mode, delete path in glocal)
          t = prof.esc(prev.k);
        break;
      case TraceState::kI:
        t = cur.state == TraceState::kM ? prof.tsc(prev.k, kPTIM)
                                        : prof.tsc(prev.k, kPTII);
        break;
      case TraceState::kD:
        t = cur.state == TraceState::kM ? prof.tsc(prev.k, kPTDM)
                                        : prof.tsc(prev.k, kPTDD);
        break;
      case TraceState::kE:
        t = cur.state == TraceState::kC ? xs.e_c : xs.e_j;
        break;
      case TraceState::kJ:
        t = cur.state == TraceState::kJ ? xs.j_loop : xs.j_move;
        break;
      case TraceState::kC:
        t = xs.c_loop;  // C self-loop (emitting)
        break;
    }
    score = add(score, t);
    if (cur.state == TraceState::kM)
      score = add(score, prof.msc(cur.k, seq[cur.i - 1]));
  }
  return add(score, xs.c_move);  // final C -> T
}

}  // namespace finehmm::cpu
