#include "cpu/fwd_filter.hpp"

#include <algorithm>
#include <cmath>
#include <optional>

#include "cpu/simd_backend/denormals.hpp"
#include "cpu/simd_backend/kernels.hpp"
#include "util/error.hpp"

namespace finehmm::cpu {

FwdFilter::FwdFilter(const profile::FwdProfile& prof, SimdTier tier)
    : FwdFilter(prof, tier, nullptr) {}

FwdFilter::FwdFilter(const profile::FwdProfile& prof, SimdTier tier,
                     std::shared_ptr<const WideFwdStripes> stripes)
    : prof_(prof),
      ops_(&backend::tier_kernels(resolve_simd_tier(tier))),
      stripes_(std::move(stripes)) {
  if (stripes_ == nullptr)
    stripes_ =
        std::make_shared<const WideFwdStripes>(prof, ops_->f32_lanes);
  FH_REQUIRE(stripes_->lanes() == ops_->f32_lanes,
             "shared Forward stripes built for a different lane count");
  mmx_.assign(stripes_->row_floats(), 0.0f);
  imx_.assign(stripes_->row_floats(), 0.0f);
  dmx_.assign(stripes_->row_floats(), 0.0f);
}

float FwdFilter::score(const std::uint8_t* seq, std::size_t L) {
  backend::ScopedFlushDenormals ftz;
  return ops_->fwd(prof_, stripes_->view(), seq, L, mmx_.data(),
                   imx_.data(), dmx_.data());
}

void FwdFilter::grow_decode_workspace(std::size_t L) {
  const int block =
      static_cast<int>(std::ceil(std::sqrt(static_cast<double>(L))));
  const int n_blocks =
      static_cast<int>((L + static_cast<std::size_t>(block) - 1) /
                       static_cast<std::size_t>(block));
  block_ = block;
  n_blocks_ = n_blocks;
  const std::size_t n = stripes_->row_floats();
  const std::size_t snap_need = static_cast<std::size_t>(n_blocks) * 3 * n;
  const std::size_t blk_need = static_cast<std::size_t>(block) * n;
  if (snap_.size() < snap_need) snap_.resize(snap_need);
  if (blk_m_.size() < blk_need) {
    blk_m_.resize(blk_need);
    blk_i_.resize(blk_need);
  }
  if (bwd_.size() < 4 * n) bwd_.resize(4 * n);
  if (decode_rows_ < L) {
    row_xb_.resize(L + 1);
    row_inv_.resize(L + 1);
    row_scale_.resize(L + 1);
    decode_rows_ = L;
  }
}

float FwdFilter::decode(const std::uint8_t* seq, std::size_t L,
                        std::vector<float>& mocc) {
  grow_decode_workspace(L);
  if (mocc.size() < L) mocc.resize(L);
  const std::size_t n = stripes_->row_floats();
  simd_kernels::FwdBwdScratch ws;
  ws.mmx = mmx_.data();
  ws.imx = imx_.data();
  ws.dmx = dmx_.data();
  ws.snap = snap_.data();
  ws.blk_m = blk_m_.data();
  ws.blk_i = blk_i_.data();
  ws.row_xb = row_xb_.data();
  ws.row_inv = row_inv_.data();
  ws.row_scale = row_scale_.data();
  ws.bwd_m = bwd_.data();
  ws.bwd_i = bwd_.data() + n;
  ws.bwd_d = bwd_.data() + 2 * n;
  ws.bwd_on = bwd_.data() + 3 * n;
  ws.block = block_;
  ws.n_blocks = n_blocks_;
  backend::ScopedFlushDenormals ftz;
  return ops_->fwd_bwd(prof_, stripes_->view(), seq, L, ws, mocc.data());
}

float fwd_striped(const profile::FwdProfile& prof, const std::uint8_t* seq,
                  std::size_t L) {
  backend::ScopedFlushDenormals ftz;
  const backend::TierKernels& ops =
      backend::tier_kernels(resolve_simd_tier(active_simd_tier()));

  thread_local aligned_vector<float> mmx, imx, dmx;
  const std::size_t n =
      static_cast<std::size_t>(
          profile::fwd_segments_for(prof.length(), ops.f32_lanes)) *
      ops.f32_lanes;
  if (mmx.size() < n) {
    mmx.resize(n);
    imx.resize(n);
    dmx.resize(n);
  }

  // The profile's own arrays already are the 4-lane striping; wider tiers
  // re-stripe once per (profile, tier) and reuse across calls.
  if (ops.f32_lanes == profile::FwdProfile::kLanes)
    return ops.fwd(prof, backend::fwd_native_view(prof), seq, L,
                   mmx.data(), imx.data(), dmx.data());

  thread_local const profile::FwdProfile* cached_prof = nullptr;
  thread_local SimdTier cached_tier = SimdTier::kPortable;
  thread_local std::optional<WideFwdStripes> wide;
  if (cached_prof != &prof || cached_tier != ops.tier || !wide) {
    wide.emplace(prof, ops.f32_lanes);
    cached_prof = &prof;
    cached_tier = ops.tier;
  }
  return ops.fwd(prof, wide->view(), seq, L, mmx.data(), imx.data(),
                 dmx.data());
}

}  // namespace finehmm::cpu
