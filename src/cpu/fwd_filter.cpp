#include "cpu/fwd_filter.hpp"

#include <algorithm>

#include "cpu/simd_backend/backend.hpp"
#include "cpu/simd_backend/kernels.hpp"
#include "cpu/simd_vec.hpp"

namespace finehmm::cpu {

namespace {

constexpr int kLanes = profile::FwdProfile::kLanes;

// Forward never runs wider than 128-bit lanes (see header).
SimdTier fwd_tier(SimdTier requested) {
  SimdTier t = resolve_simd_tier(requested);
  return t == SimdTier::kAvx2 ? SimdTier::kSse2 : t;
}

}  // namespace

FwdFilter::FwdFilter(const profile::FwdProfile& prof, SimdTier tier)
    : prof_(prof), tier_(fwd_tier(tier)) {
  std::size_t n = static_cast<std::size_t>(prof.striped_segments()) * kLanes;
  mmx_.assign(n, 0.0f);
  imx_.assign(n, 0.0f);
  dmx_.assign(n, 0.0f);
}

float FwdFilter::score(const std::uint8_t* seq, std::size_t L) {
  if (tier_ == SimdTier::kSse2)
    return backend::fwd_sse2(prof_, seq, L, mmx_.data(), imx_.data(),
                             dmx_.data());
  return simd_kernels::fwd_kernel<F32x4>(prof_, seq, L, mmx_.data(),
                                         imx_.data(), dmx_.data());
}

float fwd_striped(const profile::FwdProfile& prof, const std::uint8_t* seq,
                  std::size_t L) {
  thread_local std::vector<float> mmx, imx, dmx;
  const std::size_t n =
      static_cast<std::size_t>(prof.striped_segments()) * kLanes;
  if (mmx.size() < n) {
    mmx.resize(n);
    imx.resize(n);
    dmx.resize(n);
  }
  if (active_simd_tier() != SimdTier::kPortable && backend::have_sse2())
    return backend::fwd_sse2(prof, seq, L, mmx.data(), imx.data(),
                             dmx.data());
  return simd_kernels::fwd_kernel<F32x4>(prof, seq, L, mmx.data(),
                                         imx.data(), dmx.data());
}

}  // namespace finehmm::cpu
