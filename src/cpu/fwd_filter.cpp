#include "cpu/fwd_filter.hpp"

#include <algorithm>
#include <cmath>

#include "cpu/simd_vec.hpp"
#include "util/error.hpp"
#include "util/logspace.hpp"

namespace finehmm::cpu {

namespace {
constexpr int kLanes = profile::FwdProfile::kLanes;
constexpr float kRescaleHi = 1e12f;
constexpr float kRescaleLo = 1e-12f;
constexpr float kDdEpsilon = 1e-9f;  // relative wrap-mass cutoff
}  // namespace

FwdFilter::FwdFilter(const profile::FwdProfile& prof) : prof_(prof) {
  std::size_t n = static_cast<std::size_t>(prof.striped_segments()) * kLanes;
  mmx_.assign(n, 0.0f);
  imx_.assign(n, 0.0f);
  dmx_.assign(n, 0.0f);
}

float FwdFilter::score(const std::uint8_t* seq, std::size_t L) {
  FH_REQUIRE(L >= 1, "cannot score an empty sequence");
  const int Q = prof_.striped_segments();
  const auto lm = prof_.length_model_for(static_cast<int>(L));

  std::fill(mmx_.begin(), mmx_.end(), 0.0f);
  std::fill(imx_.begin(), imx_.end(), 0.0f);
  std::fill(dmx_.begin(), dmx_.end(), 0.0f);

  auto stripe = [](std::vector<float>& v, int q) {
    return v.data() + static_cast<std::size_t>(q) * kLanes;
  };

  double scale_log = 0.0;  // accumulated log of factored-out mass
  float xN = 1.0f;
  float xB = xN * lm.move;
  float xJ = 0.0f;
  float xC = 0.0f;

  for (std::size_t i = 0; i < L; ++i) {
    const float* odds = prof_.odds_striped(seq[i]);
    F32x4 xEv = F32x4::zero();
    const F32x4 xBv = F32x4::splat(xB * prof_.entry());

    // Previous row's last stripe, lane-shifted = the diagonal.
    F32x4 mpv = shift_lanes_up(F32x4::load(stripe(mmx_, Q - 1)));
    F32x4 ipv = shift_lanes_up(F32x4::load(stripe(imx_, Q - 1)));
    F32x4 dpv = shift_lanes_up(F32x4::load(stripe(dmx_, Q - 1)));

    // Same-row, same-lane left neighbours for the D recurrence
    //   D(i,k) = M(i,k-1) * tMD(k-1->k) + D(i,k-1) * tDD(k-1->k);
    // the "in"-indexed stripes hold the link INTO position k, so stripe q
    // multiplies its own link arrays by the previous stripe's values.
    F32x4 m_left = F32x4::zero();
    F32x4 d_left = F32x4::zero();

    for (int q = 0; q < Q; ++q) {
      const std::size_t off = static_cast<std::size_t>(q) * kLanes;
      F32x4 sv = xBv;
      sv = add_f(sv, mul_f(mpv, F32x4::load(prof_.tmm_striped() + off)));
      sv = add_f(sv, mul_f(ipv, F32x4::load(prof_.tim_striped() + off)));
      sv = add_f(sv, mul_f(dpv, F32x4::load(prof_.tdm_striped() + off)));
      sv = mul_f(sv, F32x4::load(odds + off));
      xEv = add_f(xEv, sv);

      F32x4 d =
          add_f(mul_f(m_left, F32x4::load(prof_.tmd_in_striped() + off)),
                mul_f(d_left, F32x4::load(prof_.tdd_in_striped() + off)));

      mpv = F32x4::load(stripe(mmx_, q));
      ipv = F32x4::load(stripe(imx_, q));
      dpv = F32x4::load(stripe(dmx_, q));

      sv.store(stripe(mmx_, q));
      d.store(stripe(dmx_, q));

      F32x4 iv =
          add_f(mul_f(mpv, F32x4::load(prof_.tmi_striped() + off)),
                mul_f(ipv, F32x4::load(prof_.tii_striped() + off)));
      iv.store(stripe(imx_, q));

      m_left = sv;
      d_left = d;
    }

    // Cross-lane D mass: what flows over the stripe-(Q-1) -> stripe-0
    // lane boundary, then decays geometrically through the row.  tDD < 1
    // guarantees convergence; stop once the circulating mass is
    // negligible next to what is already banked.
    F32x4 extra =
        add_f(mul_f(shift_lanes_up(m_left),
                    F32x4::load(prof_.tmd_in_striped())),
              mul_f(shift_lanes_up(d_left),
                    F32x4::load(prof_.tdd_in_striped())));
    for (int pass = 0; pass < 4 * Q; ++pass) {
      float circulating = 0.0f;
      float held = 0.0f;
      for (int q = 0; q < Q; ++q) {
        const std::size_t off = static_cast<std::size_t>(q) * kLanes;
        if (q > 0)
          extra = mul_f(extra, F32x4::load(prof_.tdd_in_striped() + off));
        F32x4 cur = F32x4::load(stripe(dmx_, q));
        circulating += hsum_f(extra);
        held += hsum_f(cur);
        add_f(cur, extra).store(stripe(dmx_, q));
      }
      if (circulating <= kDdEpsilon * (held + kRescaleLo)) break;
      extra = mul_f(shift_lanes_up(extra),
                    F32x4::load(prof_.tdd_in_striped()));
    }

    float xE = hsum_f(xEv);
    xJ = xJ * lm.loop + xE * lm.e_j;
    xC = xC * lm.loop + xE * lm.e_c;
    xN = xN * lm.loop;
    xB = xN * lm.move + xJ * lm.move;

    // Rescale when the row's mass drifts out of float's comfortable range.
    if (xE > 0.0f && (xE > kRescaleHi || xE < kRescaleLo)) {
      float inv = 1.0f / xE;
      for (auto& v : mmx_) v *= inv;
      for (auto& v : imx_) v *= inv;
      for (auto& v : dmx_) v *= inv;
      xN *= inv;
      xB *= inv;
      xJ *= inv;
      xC *= inv;
      scale_log += std::log(static_cast<double>(xE));
    }
  }

  if (xC <= 0.0f) return kNegInf;
  return static_cast<float>(std::log(static_cast<double>(xC) * lm.move) +
                            scale_log);
}

float fwd_striped(const profile::FwdProfile& prof, const std::uint8_t* seq,
                  std::size_t L) {
  FwdFilter f(prof);
  return f.score(seq, L);
}

}  // namespace finehmm::cpu
