// Striped SIMD MSV filter — the CPU baseline the paper compares against.
//
// Farrar striping over byte lanes: model position k (1-based) lives in
// stripe q=(k-1)%Q, lane j=(k-1)/Q.  The previous row's diagonal
// dependency is realized by shifting the last stripe's lanes up by one at
// the start of each row.  This mirrors HMMER 3.0's SSE p7_MSVFilter and
// returns xJ bytes bit-identical to msv_scalar.
//
// The filter resolves the widest native SIMD tier the host supports
// (portable / SSE2 / AVX2 / AVX-512; see cpu/simd_backend/simd_tier.hpp)
// through the backend's per-tier kernel table.  Tiers wider than the
// profile's native 16-lane layout re-stripe the emission table once per
// (model, lane count); workers scanning the same model share that table
// through SharedMsvRows.  Scores are bit-identical at every tier.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>

#include "bio/packed_seq.hpp"
#include "cpu/filter_result.hpp"
#include "cpu/simd_backend/backend.hpp"
#include "cpu/simd_backend/simd_tier.hpp"
#include "profile/msv_profile.hpp"
#include "util/aligned.hpp"

namespace finehmm::cpu {

/// A tier's striped emission table, type-erased so one handle covers the
/// profile's own 16-lane arrays (owner empty, zero-copy) and the shared
/// wide re-stripings (owner keeps a WideMsvStripes<N> alive).
struct SharedMsvRows {
  std::shared_ptr<const void> owner;
  const std::uint8_t* rows = nullptr;  // residue x at rows + x*Q*lanes
  int Q = 0;
  int lanes = 0;
};

/// Build (or alias) the emission table for one byte lane count: 16 reads
/// the MsvProfile's own striping zero-copy; 32/64 re-stripe once.
SharedMsvRows make_shared_msv_rows(const profile::MsvProfile& prof,
                                   int lanes);

/// Reusable row storage so database scans don't reallocate per sequence.
class MsvFilter {
 public:
  explicit MsvFilter(const profile::MsvProfile& prof,
                     SimdTier tier = active_simd_tier());
  /// Share a prebuilt emission table between workers; its lane count must
  /// match the resolved tier's.
  MsvFilter(const profile::MsvProfile& prof, SimdTier tier,
            SharedMsvRows wide);

  FilterResult score(const std::uint8_t* seq, std::size_t L);
  /// Zero-copy overload: scores a packed 5-bit residue view in place
  /// (bit-identical to the byte-code overload at every tier).
  FilterResult score(bio::PackedResidues seq, std::size_t L);

  /// The tier score() actually runs (the requested tier clamped to what
  /// the host supports).
  SimdTier tier() const noexcept { return ops_->tier; }
  /// The emission table score() reads (shareable with other workers).
  const SharedMsvRows& wide_stripes() const { return wide_; }

 private:
  const profile::MsvProfile& prof_;
  const backend::TierKernels* ops_;
  SharedMsvRows wide_;
  // Q stripes x lane-count bytes of the current DP row.
  aligned_vector<std::uint8_t> row_;
};

/// One-shot convenience wrapper.  Uses thread-local scratch (grown, never
/// shrunk) so steady-state database scans allocate nothing per call; runs
/// the widest tier that needs no per-model re-striping (SSE2 on x86-64).
FilterResult msv_striped(const profile::MsvProfile& prof,
                         const std::uint8_t* seq, std::size_t L);

}  // namespace finehmm::cpu
