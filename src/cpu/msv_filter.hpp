// Striped SIMD MSV filter — the CPU baseline the paper compares against.
//
// Farrar striping over byte lanes: model position k (1-based) lives in
// stripe q=(k-1)%Q, lane j=(k-1)/Q.  The previous row's diagonal
// dependency is realized by shifting the last stripe's lanes up by one at
// the start of each row.  This mirrors HMMER 3.0's SSE p7_MSVFilter and
// returns xJ bytes bit-identical to msv_scalar.
//
// The filter dispatches to the widest native SIMD tier the host supports
// (portable / SSE2 / AVX2; see cpu/simd_backend/simd_tier.hpp).  The
// AVX2 tier runs 32 byte lanes and therefore re-stripes the emission
// table once per (model, filter); workers scanning the same model can
// share that table through the shared_ptr constructor.  Scores are
// bit-identical at every tier.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>

#include "bio/packed_seq.hpp"
#include "cpu/filter_result.hpp"
#include "cpu/msv_wide.hpp"
#include "cpu/simd_backend/simd_tier.hpp"
#include "profile/msv_profile.hpp"
#include "util/aligned.hpp"

namespace finehmm::cpu {

/// Reusable row storage so database scans don't reallocate per sequence.
class MsvFilter {
 public:
  explicit MsvFilter(const profile::MsvProfile& prof,
                     SimdTier tier = active_simd_tier());
  /// Share a prebuilt 32-lane emission table between workers (only read
  /// when the resolved tier is AVX2; may be nullptr otherwise).
  MsvFilter(const profile::MsvProfile& prof, SimdTier tier,
            std::shared_ptr<const WideMsvStripes<32>> wide);

  FilterResult score(const std::uint8_t* seq, std::size_t L);
  /// Zero-copy overload: scores a packed 5-bit residue view in place
  /// (bit-identical to the byte-code overload at every tier).
  FilterResult score(bio::PackedResidues seq, std::size_t L);

  /// The tier score() actually runs (the requested tier clamped to what
  /// the host supports).
  SimdTier tier() const noexcept { return tier_; }
  /// The 32-lane emission table, non-null iff tier() == kAvx2.
  const std::shared_ptr<const WideMsvStripes<32>>& wide_stripes() const {
    return wide_;
  }

 private:
  const profile::MsvProfile& prof_;
  SimdTier tier_;
  std::shared_ptr<const WideMsvStripes<32>> wide_;
  // Q stripes x lane-count bytes of the current DP row.
  aligned_vector<std::uint8_t> row_;
};

/// One-shot convenience wrapper.  Uses thread-local scratch (grown, never
/// shrunk) so steady-state database scans allocate nothing per call; runs
/// the widest tier that needs no per-model re-striping (SSE2 on x86-64).
FilterResult msv_striped(const profile::MsvProfile& prof,
                         const std::uint8_t* seq, std::size_t L);

}  // namespace finehmm::cpu
