// Striped SIMD MSV filter — the CPU baseline the paper compares against.
//
// Farrar striping over 16 byte lanes: model position k (1-based) lives in
// stripe q=(k-1)%Q, lane j=(k-1)/Q.  The previous row's diagonal
// dependency is realized by shifting the last stripe's lanes up by one at
// the start of each row.  This mirrors HMMER 3.0's SSE p7_MSVFilter and
// returns xJ bytes bit-identical to msv_scalar.
#pragma once

#include <cstddef>
#include <cstdint>

#include "cpu/filter_result.hpp"
#include "profile/msv_profile.hpp"

namespace finehmm::cpu {

/// Reusable row storage so database scans don't reallocate per sequence.
class MsvFilter {
 public:
  explicit MsvFilter(const profile::MsvProfile& prof);

  FilterResult score(const std::uint8_t* seq, std::size_t L);

 private:
  const profile::MsvProfile& prof_;
  // Q stripes x 16 lanes of the current DP row.
  std::vector<std::uint8_t> row_;
};

/// One-shot convenience wrapper.
FilterResult msv_striped(const profile::MsvProfile& prof,
                         const std::uint8_t* seq, std::size_t L);

}  // namespace finehmm::cpu
