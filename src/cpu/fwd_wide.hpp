// Width-generic striped Forward/Backward parameters (companion of
// cpu/msv_wide.hpp and cpu/vit_wide.hpp).
//
// F32xN is the portable float lane class for any power-of-two width: the
// executable specification of the native SSE2/AVX2/AVX-512 float classes
// (a portable run and a native run of the SAME width are bit-identical
// because hsum_f accumulates lanes in order).  WideFwdStripes re-stripes
// the FwdProfile's probability-space parameters for a tier's lane count
// at runtime — including the out-indexed transition arrays the Backward
// pass consumes — and hands the kernels a raw-pointer FwdStripesView.
#pragma once

#include <cstring>

#include "cpu/simd_backend/backend.hpp"
#include "profile/fwd_profile.hpp"
#include "util/aligned.hpp"

namespace finehmm::cpu {

/// Portable N-float lane class satisfying the Forward kernel contract.
template <int N>
struct F32xN {
  static_assert(N >= 2 && (N & (N - 1)) == 0, "lane count: power of two");
  static constexpr int kLanes = N;
  float v[N];

  static F32xN splat(float x) {
    F32xN r;
    for (auto& e : r.v) e = x;
    return r;
  }
  static F32xN load(const float* p) {
    F32xN r;
    std::memcpy(r.v, p, N * sizeof(float));
    return r;
  }
  void store(float* p) const { std::memcpy(p, v, N * sizeof(float)); }
};

template <int N>
inline F32xN<N> add_f(F32xN<N> a, F32xN<N> b) {
  F32xN<N> r;
  for (int i = 0; i < N; ++i) r.v[i] = a.v[i] + b.v[i];
  return r;
}
template <int N>
inline F32xN<N> mul_f(F32xN<N> a, F32xN<N> b) {
  F32xN<N> r;
  for (int i = 0; i < N; ++i) r.v[i] = a.v[i] * b.v[i];
  return r;
}
template <int N>
inline F32xN<N> shift_lanes_up(F32xN<N> a) {
  F32xN<N> r;
  r.v[0] = 0.0f;
  for (int i = 1; i < N; ++i) r.v[i] = a.v[i - 1];
  return r;
}
template <int N>
inline F32xN<N> shift_lanes_down(F32xN<N> a) {
  F32xN<N> r;
  for (int i = 0; i + 1 < N; ++i) r.v[i] = a.v[i + 1];
  r.v[N - 1] = 0.0f;
  return r;
}
/// In-order lane sum starting from 0.0f — part of the score contract.
template <int N>
inline float hsum_f(F32xN<N> a) {
  float s = 0.0f;
  for (auto e : a.v) s += e;
  return s;
}

/// The FwdProfile's parameters re-striped for one lane count, chosen at
/// runtime from the tier's float width (4/8/16).  Builds both the
/// in-indexed stripes Forward reads and the out-indexed stripes Backward
/// reads (slot(k) holds the k -> k+1 probability, zero at k = M), so one
/// object serves scoring and checkpointed decoding on every tier.
class WideFwdStripes {
 public:
  WideFwdStripes(const profile::FwdProfile& prof, int lanes)
      : M_(prof.length()),
        N_(lanes),
        Q_(profile::fwd_segments_for(prof.length(), lanes)) {
    const std::size_t row = static_cast<std::size_t>(Q_) * N_;
    auto slot = [this](int k) {
      return static_cast<std::size_t>((k - 1) % Q_) * N_ + (k - 1) / Q_;
    };

    odds_.assign(static_cast<std::size_t>(bio::kKp) * row, 0.0f);
    for (int x = 0; x < bio::kKp; ++x)
      for (int k = 1; k <= M_; ++k)
        odds_[static_cast<std::size_t>(x) * row + slot(k)] =
            prof.odds_at(x, k);

    auto stripe_in = [&](aligned_vector<float>& out, auto&& at) {
      out.assign(row, 0.0f);
      for (int k = 1; k <= M_; ++k) out[slot(k)] = at(k);
    };
    stripe_in(tmm_, [&](int k) { return prof.tmm_at(k); });
    stripe_in(tim_, [&](int k) { return prof.tim_at(k); });
    stripe_in(tdm_, [&](int k) { return prof.tdm_at(k); });
    stripe_in(tmi_, [&](int k) { return prof.tmi_at(k); });
    stripe_in(tii_, [&](int k) { return prof.tii_at(k); });
    stripe_in(tmd_, [&](int k) { return prof.tmd_in_at(k); });
    stripe_in(tdd_, [&](int k) { return prof.tdd_in_at(k); });

    // Out-indexed: slot(k) <- the in-indexed value at k+1; position M
    // (and padding) keeps zero, terminating every Backward chain.
    auto stripe_out = [&](aligned_vector<float>& out, auto&& at) {
      out.assign(row, 0.0f);
      for (int k = 1; k < M_; ++k) out[slot(k)] = at(k + 1);
    };
    stripe_out(tmm_out_, [&](int k) { return prof.tmm_at(k); });
    stripe_out(tim_out_, [&](int k) { return prof.tim_at(k); });
    stripe_out(tdm_out_, [&](int k) { return prof.tdm_at(k); });
    stripe_out(tmd_out_, [&](int k) { return prof.tmd_in_at(k); });
    stripe_out(tdd_out_, [&](int k) { return prof.tdd_in_at(k); });

    entry_ = prof.entry();
  }

  int lanes() const noexcept { return N_; }
  int segments() const noexcept { return Q_; }
  std::size_t row_floats() const noexcept {
    return static_cast<std::size_t>(Q_) * N_;
  }

  /// The raw-pointer view the shared Forward/Backward kernels consume.
  simd_kernels::FwdStripesView view() const {
    simd_kernels::FwdStripesView st;
    st.odds = odds_.data();
    st.tmm = tmm_.data();
    st.tim = tim_.data();
    st.tdm = tdm_.data();
    st.tmi = tmi_.data();
    st.tii = tii_.data();
    st.tmd = tmd_.data();
    st.tdd = tdd_.data();
    st.tmm_out = tmm_out_.data();
    st.tim_out = tim_out_.data();
    st.tdm_out = tdm_out_.data();
    st.tmd_out = tmd_out_.data();
    st.tdd_out = tdd_out_.data();
    st.entry = entry_;
    st.Q = Q_;
    return st;
  }

 private:
  int M_;
  int N_;
  int Q_;
  float entry_ = 0.0f;
  aligned_vector<float> odds_;
  aligned_vector<float> tmm_, tim_, tdm_, tmi_, tii_, tmd_, tdd_;
  aligned_vector<float> tmm_out_, tim_out_, tdm_out_, tmd_out_, tdd_out_;
};

}  // namespace finehmm::cpu
