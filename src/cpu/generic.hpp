// Generic (full-precision float) reference algorithms.
//
// These are the O(M*L) textbook dynamic programs over the configured
// search profile, used (a) as the semantic reference the quantized filters
// are validated against, (b) as the Forward stage of the hmmsearch
// pipeline, and (c) to verify Forward via the Forward/Backward identity.
//
// Model semantics (multihit local, uniform entry, free exit):
//   M(i,k) = msc(x_i,k) (+) { M/I/D(i-1,k-1) + t, B(i-1) + entry }
//   I(i,k) = { M(i-1,k)+tMI, I(i-1,k)+tII }          (emission score 0)
//   D(i,k) = { M(i,k-1)+tMD, D(i,k-1)+tDD }
//   E(i)   = (+)_k M(i,k)
//   J/C/N/B with the configured length model; total = C(L) + c_move.
// where (+) is max for Viterbi/MSV and log-sum for Forward.
#pragma once

#include <cstddef>
#include <cstdint>

#include "hmm/profile.hpp"

namespace finehmm::cpu {

/// Exact float MSV score (nats) with the real N/C/J loop costs.
float generic_msv(const hmm::SearchProfile& prof, const std::uint8_t* seq,
                  std::size_t L);

/// Float mirror of the *byte* MSV semantics: loop costs treated as free and
/// the constant -3 nat correction applied, exactly like the 8-bit filter.
/// The byte filter must approximate this to within quantization error.
float generic_msv_filtersim(const hmm::SearchProfile& prof,
                            const std::uint8_t* seq, std::size_t L);

/// Full Plan-7 Viterbi score (nats), E fed from match states.
float generic_viterbi(const hmm::SearchProfile& prof, const std::uint8_t* seq,
                      std::size_t L);

/// Forward score (nats).  exact=true uses exact log-sum (slow, tests);
/// false uses the shared lookup table like HMMER's p7_FLogsum.
float generic_forward(const hmm::SearchProfile& prof, const std::uint8_t* seq,
                      std::size_t L, bool exact = false);

/// Backward score (nats); equals Forward up to log-sum rounding.
float generic_backward(const hmm::SearchProfile& prof, const std::uint8_t* seq,
                       std::size_t L, bool exact = false);

}  // namespace finehmm::cpu
