#include "cpu/generic.hpp"

#include <algorithm>
#include <vector>

#include "util/error.hpp"
#include "util/logspace.hpp"

namespace finehmm::cpu {

namespace {

using hmm::kPTBM;
using hmm::kPTDD;
using hmm::kPTDM;
using hmm::kPTII;
using hmm::kPTIM;
using hmm::kPTMD;
using hmm::kPTMI;
using hmm::kPTMM;

float add_scores(float a, float b) {
  // max-plus semiring "multiply": -inf is absorbing.
  if (a == kNegInf || b == kNegInf) return kNegInf;
  return a + b;
}

/// Shared MSV dynamic program; loop/move costs supplied by the caller so
/// the exact and filter-simulation variants share one implementation.
float msv_dp(const hmm::SearchProfile& prof, const std::uint8_t* seq,
             std::size_t L, float tloop, float tmove, float final_corr) {
  const int M = prof.length();
  const float tbm = prof.tsc(0, kPTBM);
  const float tec = std::log(0.5f);

  std::vector<float> mrow(M + 1, kNegInf);
  float xN = 0.0f;
  float xB = xN + tmove;
  float xJ = kNegInf;
  float xC = kNegInf;

  for (std::size_t i = 0; i < L; ++i) {
    float xE = kNegInf;
    float diag = kNegInf;  // previous row's M(i-1, k-1)
    const float xBv = add_scores(xB, tbm);
    for (int k = 1; k <= M; ++k) {
      float sv = std::max(diag, xBv);
      sv = add_scores(sv, prof.msc(k, seq[i]));
      diag = mrow[k];
      mrow[k] = sv;
      xE = std::max(xE, sv);
    }
    xJ = std::max(add_scores(xJ, tloop), add_scores(xE, tec));
    xC = std::max(add_scores(xC, tloop), add_scores(xE, tec));
    xN = add_scores(xN, tloop);
    xB = std::max(add_scores(xN, tmove), add_scores(xJ, tmove));
  }
  return add_scores(xC, tmove) + final_corr;
}

}  // namespace

float generic_msv(const hmm::SearchProfile& prof, const std::uint8_t* seq,
                  std::size_t L) {
  FH_REQUIRE(L >= 1, "cannot score an empty sequence");
  FH_REQUIRE(hmm::is_local(prof.mode()), "MSV is a local-mode heuristic");
  float lf = static_cast<float>(L);
  float tloop = std::log(lf / (lf + 3.0f));
  float tmove = std::log(3.0f / (lf + 3.0f));
  return msv_dp(prof, seq, L, tloop, tmove, 0.0f);
}

float generic_msv_filtersim(const hmm::SearchProfile& prof,
                            const std::uint8_t* seq, std::size_t L) {
  FH_REQUIRE(L >= 1, "cannot score an empty sequence");
  float lf = static_cast<float>(L);
  float tmove = std::log(3.0f / (lf + 3.0f));
  // Byte filter: loops are free, -3 nats restored at the end; the N->B
  // move is charged (tjb) and so is C->T, matching score_from_bytes.
  return msv_dp(prof, seq, L, 0.0f, tmove, -3.0f);
}

float generic_viterbi(const hmm::SearchProfile& prof, const std::uint8_t* seq,
                      std::size_t L) {
  FH_REQUIRE(L >= 1, "cannot score an empty sequence");
  const int M = prof.length();
  const auto xs = prof.xsc_for(static_cast<int>(L));

  std::vector<float> pm(M + 1, kNegInf), pi(M + 1, kNegInf),
      pd(M + 1, kNegInf);
  std::vector<float> cm(M + 1, kNegInf), ci(M + 1, kNegInf),
      cd(M + 1, kNegInf);

  float xN = 0.0f;
  float xB = xN + xs.n_move;
  float xJ = kNegInf, xC = kNegInf;

  for (std::size_t i = 0; i < L; ++i) {
    float xE = kNegInf;
    cm[0] = ci[0] = cd[0] = kNegInf;
    for (int k = 1; k <= M; ++k) {
      float m = add_scores(xB, prof.tsc(k - 1, kPTBM));
      m = std::max(m, add_scores(pm[k - 1], prof.tsc(k - 1, kPTMM)));
      m = std::max(m, add_scores(pi[k - 1], prof.tsc(k - 1, kPTIM)));
      m = std::max(m, add_scores(pd[k - 1], prof.tsc(k - 1, kPTDM)));
      m = add_scores(m, prof.msc(k, seq[i]));
      cm[k] = m;
      xE = std::max(xE, add_scores(m, prof.esc(k)));

      if (k < M) {
        ci[k] = std::max(add_scores(pm[k], prof.tsc(k, kPTMI)),
                         add_scores(pi[k], prof.tsc(k, kPTII)));
      } else {
        ci[k] = kNegInf;
      }
      if (k >= 2) {
        cd[k] = std::max(add_scores(cm[k - 1], prof.tsc(k - 1, kPTMD)),
                         add_scores(cd[k - 1], prof.tsc(k - 1, kPTDD)));
      } else {
        cd[k] = kNegInf;
      }
    }
    xJ = std::max(add_scores(xJ, xs.j_loop), add_scores(xE, xs.e_j));
    xC = std::max(add_scores(xC, xs.c_loop), add_scores(xE, xs.e_c));
    xN = add_scores(xN, xs.n_loop);
    xB = std::max(add_scores(xN, xs.n_move), add_scores(xJ, xs.j_move));
    pm.swap(cm);
    pi.swap(ci);
    pd.swap(cd);
  }
  return add_scores(xC, xs.c_move);
}

namespace {

float lse(float a, float b, bool exact) {
  return exact ? logsum_exact(a, b) : logsum(a, b);
}

}  // namespace

float generic_forward(const hmm::SearchProfile& prof, const std::uint8_t* seq,
                      std::size_t L, bool exact) {
  FH_REQUIRE(L >= 1, "cannot score an empty sequence");
  const int M = prof.length();
  const auto xs = prof.xsc_for(static_cast<int>(L));

  std::vector<float> pm(M + 1, kNegInf), pi(M + 1, kNegInf),
      pd(M + 1, kNegInf);
  std::vector<float> cm(M + 1, kNegInf), ci(M + 1, kNegInf),
      cd(M + 1, kNegInf);

  float xN = 0.0f;
  float xB = xN + xs.n_move;
  float xJ = kNegInf, xC = kNegInf;

  for (std::size_t i = 0; i < L; ++i) {
    float xE = kNegInf;
    cm[0] = ci[0] = cd[0] = kNegInf;
    for (int k = 1; k <= M; ++k) {
      float m = add_scores(xB, prof.tsc(k - 1, kPTBM));
      m = lse(m, add_scores(pm[k - 1], prof.tsc(k - 1, kPTMM)), exact);
      m = lse(m, add_scores(pi[k - 1], prof.tsc(k - 1, kPTIM)), exact);
      m = lse(m, add_scores(pd[k - 1], prof.tsc(k - 1, kPTDM)), exact);
      m = add_scores(m, prof.msc(k, seq[i]));
      cm[k] = m;
      xE = lse(xE, add_scores(m, prof.esc(k)), exact);

      if (k < M) {
        ci[k] = lse(add_scores(pm[k], prof.tsc(k, kPTMI)),
                    add_scores(pi[k], prof.tsc(k, kPTII)), exact);
      } else {
        ci[k] = kNegInf;
      }
      if (k >= 2) {
        cd[k] = lse(add_scores(cm[k - 1], prof.tsc(k - 1, kPTMD)),
                    add_scores(cd[k - 1], prof.tsc(k - 1, kPTDD)), exact);
      } else {
        cd[k] = kNegInf;
      }
    }
    xJ = lse(add_scores(xJ, xs.j_loop), add_scores(xE, xs.e_j), exact);
    xC = lse(add_scores(xC, xs.c_loop), add_scores(xE, xs.e_c), exact);
    xN = add_scores(xN, xs.n_loop);
    xB = lse(add_scores(xN, xs.n_move), add_scores(xJ, xs.j_move), exact);
    pm.swap(cm);
    pi.swap(ci);
    pd.swap(cd);
  }
  return add_scores(xC, xs.c_move);
}

float generic_backward(const hmm::SearchProfile& prof, const std::uint8_t* seq,
                       std::size_t L, bool exact) {
  FH_REQUIRE(L >= 1, "cannot score an empty sequence");
  const int M = prof.length();
  const auto xs = prof.xsc_for(static_cast<int>(L));

  // beta arrays at row i+1 ("next") and row i ("cur").
  std::vector<float> nm(M + 2, kNegInf), ni(M + 2, kNegInf),
      nd(M + 2, kNegInf);
  std::vector<float> cm(M + 2, kNegInf), ci(M + 2, kNegInf),
      cd(M + 2, kNegInf);

  // Row L: beta of states after all residues have been emitted.  B and N
  // are dead ends there (B -> M would need one more residue), J likewise,
  // and D chains can never reach E (E exits from M only), so only C and
  // the M exit path are live.
  float xC = xs.c_move;
  float xJ = kNegInf;
  float xN = kNegInf;
  float xE = lse(add_scores(xs.e_c, xC), add_scores(xs.e_j, xJ), exact);
  for (int k = M; k >= 1; --k) {
    nm[k] = add_scores(prof.esc(k), xE);
    nd[k] = kNegInf;
    ni[k] = kNegInf;
  }

  float prev_xC = xC, prev_xJ = xJ, prev_xN = xN;

  for (std::size_t i = L; i-- > 0;) {
    // Residue x_{i+1} (0-based seq[i]) is the next one to emit.
    std::uint8_t x = seq[i];

    // Specials at row i (can still emit residues i+1..L).
    float bxB = kNegInf;
    for (int k = 1; k <= M; ++k) {
      bxB = lse(bxB,
                add_scores(prof.tsc(k - 1, kPTBM),
                           add_scores(prof.msc(k, x), nm[k])),
                exact);
    }
    float bxJ = lse(add_scores(xs.j_loop, prev_xJ),
                    add_scores(xs.j_move, bxB), exact);
    float bxC = add_scores(xs.c_loop, prev_xC);
    float bxE = lse(add_scores(xs.e_c, bxC), add_scores(xs.e_j, bxJ), exact);

    for (int k = M; k >= 1; --k) {
      // beta_D(i,k): D->M diag or D->D right.
      float d = kNegInf;
      if (k < M) {
        d = add_scores(prof.tsc(k, kPTDM),
                       add_scores(prof.msc(k + 1, x), nm[k + 1]));
        d = lse(d, add_scores(prof.tsc(k, kPTDD), cd[k + 1]), exact);
      }
      cd[k] = d;

      // beta_I(i,k): I->M diag or I->I down.
      float iv = kNegInf;
      if (k < M) {
        iv = add_scores(prof.tsc(k, kPTIM),
                        add_scores(prof.msc(k + 1, x), nm[k + 1]));
        iv = lse(iv, add_scores(prof.tsc(k, kPTII), ni[k]), exact);
      }
      ci[k] = iv;

      // beta_M(i,k): exit, M->M diag, M->I down, M->D right.
      float m = add_scores(prof.esc(k), bxE);
      if (k < M) {
        m = lse(m,
                add_scores(prof.tsc(k, kPTMM),
                           add_scores(prof.msc(k + 1, x), nm[k + 1])),
                exact);
        m = lse(m, add_scores(prof.tsc(k, kPTMI), ni[k]), exact);
        m = lse(m, add_scores(prof.tsc(k, kPTMD), cd[k + 1]), exact);
      }
      cm[k] = m;
    }

    float bxN = lse(add_scores(xs.n_loop, prev_xN),
                    add_scores(xs.n_move, bxB), exact);

    prev_xC = bxC;
    prev_xJ = bxJ;
    prev_xN = bxN;
    nm.swap(cm);
    ni.swap(ci);
    nd.swap(cd);

    if (i == 0) return bxN;
  }
  return kNegInf;  // unreachable (L >= 1)
}

}  // namespace finehmm::cpu
