#include "cpu/vit_scalar.hpp"

#include <algorithm>
#include <vector>

#include "util/check.hpp"
#include "util/error.hpp"

namespace finehmm::cpu {

using profile::kWordNegInf;
using profile::sat_add_word;

FilterResult vit_scalar(const profile::VitProfile& prof,
                        const std::uint8_t* seq, std::size_t L) {
  FH_REQUIRE(L >= 1, "cannot score an empty sequence");
  const int M = prof.length();
  const auto lm = prof.length_model_for(static_cast<int>(L));
  FINEHMM_CHECK(lm.loop <= 0 && lm.move <= 0,
                "length-model costs must be non-positive log-probs");
  const std::int16_t entry = prof.entry();

  // Two-row DP in absolute word scores; index 0 is the -inf floor column.
  std::vector<std::int16_t> pm(M + 1, kWordNegInf), pi(M + 1, kWordNegInf),
      pd(M + 1, kWordNegInf);
  std::vector<std::int16_t> cm(M + 1, kWordNegInf), ci(M + 1, kWordNegInf),
      cd(M + 1, kWordNegInf);

  std::int16_t xN = profile::VitProfile::kBase;
  std::int16_t xB = sat_add_word(xN, lm.move);
  std::int16_t xJ = kWordNegInf;
  std::int16_t xC = kWordNegInf;

  for (std::size_t i = 0; i < L; ++i) {
    const std::int16_t* msr = prof.msc_row(seq[i]);
    std::int16_t xE = kWordNegInf;
    cm[0] = ci[0] = cd[0] = kWordNegInf;
    for (int k = 1; k <= M; ++k) {
      std::int16_t m = sat_add_word(xB, entry);
      m = std::max(m, sat_add_word(pm[k - 1], prof.tmm_in(k)));
      m = std::max(m, sat_add_word(pi[k - 1], prof.tim_in(k)));
      m = std::max(m, sat_add_word(pd[k - 1], prof.tdm_in(k)));
      m = sat_add_word(m, msr[k - 1]);
      cm[k] = m;
      if (m > xE) xE = m;

      ci[k] = std::max(sat_add_word(pm[k], prof.tmi_at(k)),
                       sat_add_word(pi[k], prof.tii_at(k)));

      // D->D is evaluated serially: cd[k-1] is already this row's value.
      if (k >= 2) {
        cd[k] = std::max(sat_add_word(cm[k - 1], prof.tmd_out(k - 1)),
                         sat_add_word(cd[k - 1], prof.tdd_out(k - 1)));
      } else {
        cd[k] = kWordNegInf;  // no local delete entry
      }
    }
    xJ = std::max(sat_add_word(xJ, lm.loop), sat_add_word(xE, prof.e_j()));
    xC = std::max(sat_add_word(xC, lm.loop), sat_add_word(xE, prof.e_c()));
    xN = sat_add_word(xN, lm.loop);
    xB = std::max(sat_add_word(xN, lm.move), sat_add_word(xJ, lm.move));
    pm.swap(cm);
    pi.swap(ci);
    pd.swap(cd);
  }

  FilterResult out;
  out.score_nats = prof.score_from_words(xC, lm);
  return out;
}

}  // namespace finehmm::cpu
