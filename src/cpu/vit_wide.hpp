// Width-templated striped ViterbiFilter (extension; companion of
// cpu/msv_wide.hpp).
//
// The Farrar/Lazy-F ViterbiFilter re-striped for N int16 lanes (8 = SSE,
// 16 = AVX2, 32 = AVX-512).  All transition stripes are rebuilt from the
// VitProfile's linear arrays; word scores are bit-exact with
// cpu::vit_scalar at every width.
#pragma once

#include <algorithm>
#include <cstring>
#include <vector>

#include "cpu/filter_result.hpp"
#include "profile/vit_profile.hpp"
#include "util/aligned.hpp"
#include "util/error.hpp"

namespace finehmm::cpu {

template <int N>
struct I16xN {
  static_assert(N >= 2 && (N & (N - 1)) == 0, "lane count: power of two");
  std::int16_t v[N];

  static I16xN splat(std::int16_t x) {
    I16xN r;
    for (auto& e : r.v) e = x;
    return r;
  }
  static I16xN neg_inf() { return splat(profile::kWordNegInf); }
  static I16xN load(const std::int16_t* p) {
    I16xN r;
    std::memcpy(r.v, p, N * sizeof(std::int16_t));
    return r;
  }
  void store(std::int16_t* p) const {
    std::memcpy(p, v, N * sizeof(std::int16_t));
  }
};

template <int N>
inline I16xN<N> max_w(I16xN<N> a, I16xN<N> b) {
  I16xN<N> r;
  for (int i = 0; i < N; ++i) r.v[i] = a.v[i] > b.v[i] ? a.v[i] : b.v[i];
  return r;
}
template <int N>
inline I16xN<N> adds_w(I16xN<N> a, I16xN<N> b) {
  I16xN<N> r;
  for (int i = 0; i < N; ++i) r.v[i] = profile::sat_add_word(a.v[i], b.v[i]);
  return r;
}
template <int N>
inline I16xN<N> shift_lanes_up(I16xN<N> a) {
  I16xN<N> r;
  r.v[0] = profile::kWordNegInf;
  for (int i = 1; i < N; ++i) r.v[i] = a.v[i - 1];
  return r;
}
template <int N>
inline std::int16_t hmax_w(I16xN<N> a) {
  std::int16_t m = profile::kWordNegInf;
  for (auto e : a.v)
    if (e > m) m = e;
  return m;
}
template <int N>
inline bool any_gt_w(I16xN<N> a, I16xN<N> b) {
  for (int i = 0; i < N; ++i)
    if (a.v[i] > b.v[i]) return true;
  return false;
}

/// All eight parameter stripes re-laid-out for N lanes.
template <int N>
class WideVitStripes {
 public:
  explicit WideVitStripes(const profile::VitProfile& prof)
      : M_(prof.length()), Q_((prof.length() + N - 1) / N) {
    auto stripe = [this](const std::int16_t* lin,
                         aligned_vector<std::int16_t>& out) {
      out.assign(static_cast<std::size_t>(Q_) * N, profile::kWordNegInf);
      for (int k = 1; k <= M_; ++k)
        out[static_cast<std::size_t>((k - 1) % Q_) * N + (k - 1) / Q_] =
            lin[k - 1];
    };
    stripe(prof.tmm_data(), tmm_);
    stripe(prof.tim_data(), tim_);
    stripe(prof.tdm_data(), tdm_);
    stripe(prof.tmi_data(), tmi_);
    stripe(prof.tii_data(), tii_);
    stripe(prof.tmd_data(), tmd_);
    stripe(prof.tdd_data(), tdd_);
    msc_.assign(static_cast<std::size_t>(bio::kKp) * Q_ * N,
                profile::kWordNegInf);
    for (int x = 0; x < bio::kKp; ++x) {
      const std::int16_t* lin = prof.msc_row(x);
      for (int k = 1; k <= M_; ++k)
        msc_[(static_cast<std::size_t>(x) * Q_ + (k - 1) % Q_) * N +
             (k - 1) / Q_] = lin[k - 1];
    }
  }
  int segments() const noexcept { return Q_; }
  const std::int16_t* msc(int x) const {
    return msc_.data() + static_cast<std::size_t>(x) * Q_ * N;
  }
  const std::int16_t* tmm() const { return tmm_.data(); }
  const std::int16_t* tim() const { return tim_.data(); }
  const std::int16_t* tdm() const { return tdm_.data(); }
  const std::int16_t* tmi() const { return tmi_.data(); }
  const std::int16_t* tii() const { return tii_.data(); }
  const std::int16_t* tmd() const { return tmd_.data(); }
  const std::int16_t* tdd() const { return tdd_.data(); }

 private:
  int M_;
  int Q_;
  aligned_vector<std::int16_t> msc_, tmm_, tim_, tdm_, tmi_, tii_, tmd_,
      tdd_;
};

/// N-lane ViterbiFilter with Lazy-F; bit-exact with cpu::vit_scalar.
template <int N>
FilterResult vit_striped_wide(const profile::VitProfile& prof,
                              const WideVitStripes<N>& st,
                              const std::uint8_t* seq, std::size_t L) {
  using profile::kWordNegInf;
  using profile::sat_add_word;
  FH_REQUIRE(L >= 1, "cannot score an empty sequence");
  const int Q = st.segments();
  const auto lm = prof.length_model_for(static_cast<int>(L));

  std::vector<std::int16_t> mmx(static_cast<std::size_t>(Q) * N,
                                kWordNegInf);
  std::vector<std::int16_t> imx(mmx), dmx(mmx);
  auto at = [&](std::vector<std::int16_t>& v, int q) {
    return v.data() + static_cast<std::size_t>(q) * N;
  };

  std::int16_t xN = profile::VitProfile::kBase;
  std::int16_t xB = sat_add_word(xN, lm.move);
  std::int16_t xJ = kWordNegInf;
  std::int16_t xC = kWordNegInf;

  for (std::size_t i = 0; i < L; ++i) {
    const std::int16_t* msr = st.msc(seq[i]);
    I16xN<N> xEv = I16xN<N>::neg_inf();
    I16xN<N> dcv = I16xN<N>::neg_inf();
    const I16xN<N> xBv = I16xN<N>::splat(sat_add_word(xB, prof.entry()));

    I16xN<N> mpv = shift_lanes_up(I16xN<N>::load(at(mmx, Q - 1)));
    I16xN<N> ipv = shift_lanes_up(I16xN<N>::load(at(imx, Q - 1)));
    I16xN<N> dpv = shift_lanes_up(I16xN<N>::load(at(dmx, Q - 1)));

    for (int q = 0; q < Q; ++q) {
      const std::size_t off = static_cast<std::size_t>(q) * N;
      I16xN<N> sv = xBv;
      sv = max_w(sv, adds_w(mpv, I16xN<N>::load(st.tmm() + off)));
      sv = max_w(sv, adds_w(ipv, I16xN<N>::load(st.tim() + off)));
      sv = max_w(sv, adds_w(dpv, I16xN<N>::load(st.tdm() + off)));
      sv = adds_w(sv, I16xN<N>::load(msr + off));
      xEv = max_w(xEv, sv);

      mpv = I16xN<N>::load(at(mmx, q));
      ipv = I16xN<N>::load(at(imx, q));
      dpv = I16xN<N>::load(at(dmx, q));

      sv.store(at(mmx, q));
      dcv.store(at(dmx, q));
      dcv = max_w(adds_w(sv, I16xN<N>::load(st.tmd() + off)),
                  adds_w(dcv, I16xN<N>::load(st.tdd() + off)));
      I16xN<N> iv = max_w(adds_w(mpv, I16xN<N>::load(st.tmi() + off)),
                          adds_w(ipv, I16xN<N>::load(st.tii() + off)));
      iv.store(at(imx, q));
    }

    dcv = shift_lanes_up(dcv);
    for (int pass = 0; pass < N; ++pass) {
      bool improved = false;
      for (int q = 0; q < Q; ++q) {
        const std::size_t off = static_cast<std::size_t>(q) * N;
        I16xN<N> cur = I16xN<N>::load(at(dmx, q));
        if (any_gt_w(dcv, cur)) {
          improved = true;
          cur = max_w(cur, dcv);
          cur.store(at(dmx, q));
        }
        dcv = adds_w(cur, I16xN<N>::load(st.tdd() + off));
      }
      if (!improved) break;
      dcv = shift_lanes_up(dcv);
    }

    std::int16_t xE = hmax_w(xEv);
    xJ = std::max(sat_add_word(xJ, lm.loop), sat_add_word(xE, prof.e_j()));
    xC = std::max(sat_add_word(xC, lm.loop), sat_add_word(xE, prof.e_c()));
    xN = sat_add_word(xN, lm.loop);
    xB = std::max(sat_add_word(xN, lm.move), sat_add_word(xJ, lm.move));
  }

  FilterResult out;
  out.score_nats = prof.score_from_words(xC, lm);
  return out;
}

}  // namespace finehmm::cpu
