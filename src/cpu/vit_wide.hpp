// Width-templated striped ViterbiFilter (extension; companion of
// cpu/msv_wide.hpp).
//
// The Farrar/Lazy-F ViterbiFilter re-striped for N int16 lanes (8 = SSE,
// 16 = AVX2, 32 = AVX-512).  All transition stripes are rebuilt from the
// VitProfile's linear arrays; word scores are bit-exact with
// cpu::vit_scalar at every width.
#pragma once

#include <algorithm>
#include <cstring>
#include <vector>

#include "cpu/filter_result.hpp"
#include "cpu/simd_backend/backend.hpp"
#include "cpu/simd_backend/simd_tier.hpp"
#include "profile/vit_profile.hpp"
#include "util/aligned.hpp"
#include "util/error.hpp"

namespace finehmm::cpu {

template <int N>
struct I16xN {
  static_assert(N >= 2 && (N & (N - 1)) == 0, "lane count: power of two");
  static constexpr int kLanes = N;
  std::int16_t v[N];

  static I16xN splat(std::int16_t x) {
    I16xN r;
    for (auto& e : r.v) e = x;
    return r;
  }
  static I16xN neg_inf() { return splat(profile::kWordNegInf); }
  static I16xN load(const std::int16_t* p) {
    I16xN r;
    std::memcpy(r.v, p, N * sizeof(std::int16_t));
    return r;
  }
  void store(std::int16_t* p) const {
    std::memcpy(p, v, N * sizeof(std::int16_t));
  }
};

template <int N>
inline I16xN<N> max_i16(I16xN<N> a, I16xN<N> b) {
  I16xN<N> r;
  for (int i = 0; i < N; ++i) r.v[i] = a.v[i] > b.v[i] ? a.v[i] : b.v[i];
  return r;
}
template <int N>
inline I16xN<N> adds_w(I16xN<N> a, I16xN<N> b) {
  I16xN<N> r;
  for (int i = 0; i < N; ++i) r.v[i] = profile::sat_add_word(a.v[i], b.v[i]);
  return r;
}
template <int N>
inline I16xN<N> shift_lanes_up(I16xN<N> a) {
  I16xN<N> r;
  r.v[0] = profile::kWordNegInf;
  for (int i = 1; i < N; ++i) r.v[i] = a.v[i - 1];
  return r;
}
template <int N>
inline std::int16_t hmax_i16(I16xN<N> a) {
  std::int16_t m = profile::kWordNegInf;
  for (auto e : a.v)
    if (e > m) m = e;
  return m;
}
template <int N>
inline bool any_gt_i16(I16xN<N> a, I16xN<N> b) {
  for (int i = 0; i < N; ++i)
    if (a.v[i] > b.v[i]) return true;
  return false;
}

/// All eight parameter stripes re-laid-out for N lanes.
template <int N>
class WideVitStripes {
 public:
  explicit WideVitStripes(const profile::VitProfile& prof)
      : M_(prof.length()), Q_((prof.length() + N - 1) / N) {
    auto stripe = [this](const std::int16_t* lin,
                         aligned_vector<std::int16_t>& out) {
      out.assign(static_cast<std::size_t>(Q_) * N, profile::kWordNegInf);
      for (int k = 1; k <= M_; ++k)
        out[static_cast<std::size_t>((k - 1) % Q_) * N + (k - 1) / Q_] =
            lin[k - 1];
    };
    stripe(prof.tmm_data(), tmm_);
    stripe(prof.tim_data(), tim_);
    stripe(prof.tdm_data(), tdm_);
    stripe(prof.tmi_data(), tmi_);
    stripe(prof.tii_data(), tii_);
    stripe(prof.tmd_data(), tmd_);
    stripe(prof.tdd_data(), tdd_);
    msc_.assign(static_cast<std::size_t>(bio::kKp) * Q_ * N,
                profile::kWordNegInf);
    for (int x = 0; x < bio::kKp; ++x) {
      const std::int16_t* lin = prof.msc_row(x);
      for (int k = 1; k <= M_; ++k)
        msc_[(static_cast<std::size_t>(x) * Q_ + (k - 1) % Q_) * N +
             (k - 1) / Q_] = lin[k - 1];
    }
  }
  int segments() const noexcept { return Q_; }
  const std::int16_t* msc(int x) const {
    return msc_.data() + static_cast<std::size_t>(x) * Q_ * N;
  }
  const std::int16_t* tmm() const { return tmm_.data(); }
  const std::int16_t* tim() const { return tim_.data(); }
  const std::int16_t* tdm() const { return tdm_.data(); }
  const std::int16_t* tmi() const { return tmi_.data(); }
  const std::int16_t* tii() const { return tii_.data(); }
  const std::int16_t* tmd() const { return tmd_.data(); }
  const std::int16_t* tdd() const { return tdd_.data(); }

  /// The raw-pointer view the shared Viterbi kernel consumes.
  simd_kernels::VitStripesView view() const {
    simd_kernels::VitStripesView st;
    st.msc = msc_.data();
    st.tmm = tmm_.data();
    st.tim = tim_.data();
    st.tdm = tdm_.data();
    st.tmi = tmi_.data();
    st.tii = tii_.data();
    st.tmd = tmd_.data();
    st.tdd = tdd_.data();
    st.Q = Q_;
    return st;
  }

 private:
  int M_;
  int Q_;
  aligned_vector<std::int16_t> msc_, tmm_, tim_, tdm_, tmi_, tii_, tmd_,
      tdd_;
};

/// N-lane ViterbiFilter with Lazy-F; bit-exact with cpu::vit_scalar.  The
/// body is the shared simd_kernels::vit_kernel; the 16-lane instance is
/// routed to the native AVX2 backend when the host supports it.  Scratch
/// is thread-local and grown monotonically, so repeated scans allocate
/// nothing per call.
template <int N>
FilterResult vit_striped_wide(const profile::VitProfile& prof,
                              const WideVitStripes<N>& st,
                              const std::uint8_t* seq, std::size_t L) {
  const int Q = st.segments();
  const std::size_t n = static_cast<std::size_t>(Q) * N;
  thread_local std::vector<std::int16_t> mmx, imx, dmx;
  if (mmx.size() < n) {
    mmx.resize(n);
    imx.resize(n);
    dmx.resize(n);
  }
  if constexpr (N == 16) {
    if (backend::have_avx2() && active_simd_tier() == SimdTier::kAvx2)
      return backend::vit_avx2(prof, st.view(), seq, L, mmx.data(),
                               imx.data(), dmx.data());
  }
  if constexpr (N == 32) {
    if (backend::have_avx512() && active_simd_tier() == SimdTier::kAvx512)
      return backend::vit_avx512(prof, st.view(), seq, L, mmx.data(),
                                 imx.data(), dmx.data());
  }
  return simd_kernels::vit_kernel<I16xN<N>>(prof, st.view(), seq, L,
                                            mmx.data(), imx.data(),
                                            dmx.data());
}

}  // namespace finehmm::cpu
