// Fused multi-model MSV/SSV: several short models packed into one shared
// striped table, scored together by a single N-lane sweep.
//
// Lane-partitioned Farrar layout: model m owns the contiguous lane span
// [lane_lo, lane_lo + lanes) of the N-lane vector; its position k
// (1-based) lives in stripe (k-1) % Q, lane lane_lo + (k-1) / Q, with Q
// shared by the whole group (the auto-tuner in hmm/model_group.hpp picks
// members and Q).  Each span is sized M/Q + 1 so its last lane always
// ends in at least one padding cell; padding carries emission cost 255,
// which forces the cell to zero every row, so the lane shift at stripe 0
// hands the next span exactly the zero a single-model run injects at its
// first lane.  Scores are therefore bit-identical to running MsvFilter
// once per member (docs/multi_model.md has the full argument).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "bio/packed_seq.hpp"
#include "cpu/filter_result.hpp"
#include "cpu/simd_backend/backend.hpp"
#include "cpu/simd_backend/simd_tier.hpp"
#include "profile/msv_profile.hpp"
#include "util/aligned.hpp"

namespace finehmm::cpu {

/// The shared striped emission table for one model group, built once and
/// shared read-only between workers (like SharedMsvRows for one model).
/// Member profiles must outlive the group.
class FusedMsvGroup {
 public:
  /// Pack `members` into one `lane_width`-lane table with stripe count Q.
  /// Requires sum over members of (length/Q + 1) <= lane_width — the
  /// shapes hmm::plan_model_groups emits satisfy this by construction.
  FusedMsvGroup(std::vector<const profile::MsvProfile*> members,
                int lane_width, int Q);

  std::size_t size() const { return members_.size(); }
  const profile::MsvProfile& member(std::size_t m) const {
    return *members_[m];
  }
  int lanes() const { return lanes_; }
  int segments() const { return Q_; }
  int lanes_used() const { return lanes_used_; }
  const simd_kernels::MsvGroupView& view() const { return view_; }

 private:
  std::vector<const profile::MsvProfile*> members_;
  int lanes_ = 0;
  int Q_ = 0;
  int lanes_used_ = 0;
  aligned_vector<std::uint8_t> rows_;  // residue x at rows + x*Q*lanes
  aligned_vector<std::uint8_t> bias_;  // per-lane bias bytes
  std::vector<simd_kernels::MsvGroupModel> models_;
  simd_kernels::MsvGroupView view_;
};

/// Per-worker scratch that scores every member of a FusedMsvGroup against
/// one sequence in a single sweep.  results[m] corresponds to
/// group.member(m) and is bit-identical to MsvFilter(member).score (MSV)
/// or the SSV path at every tier; a zero-length sequence yields the
/// default no-hit result for every member, matching BatchScanner.
class FusedMsvFilter {
 public:
  explicit FusedMsvFilter(const FusedMsvGroup& group,
                          SimdTier tier = active_simd_tier());

  void msv(const std::uint8_t* seq, std::size_t L, FilterResult* results);
  void msv(bio::PackedResidues seq, std::size_t L, FilterResult* results);
  void ssv(const std::uint8_t* seq, std::size_t L, FilterResult* results);
  void ssv(bio::PackedResidues seq, std::size_t L, FilterResult* results);

  const FusedMsvGroup& group() const { return group_; }
  SimdTier tier() const noexcept { return ops_->tier; }

 private:
  /// Fill the per-model tjb_for(L) bytes and point the state at this
  /// object's scratch (recomputed per call so copies stay valid).
  simd_kernels::MsvGroupState begin(std::size_t L);
  /// Convert the kernels' xJ/overflow bytes into FilterResults.
  void finish(std::size_t L, FilterResult* results) const;

  const FusedMsvGroup& group_;
  const backend::TierKernels* ops_;
  aligned_vector<std::uint8_t> row_;    // Q * lanes DP row
  aligned_vector<std::uint8_t> lanes_;  // xb | trigger | xe, lanes each
  std::vector<std::uint8_t> xj_, tjb_, overflowed_;  // per model
};

}  // namespace finehmm::cpu
