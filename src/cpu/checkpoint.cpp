#include "cpu/checkpoint.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/logspace.hpp"

namespace finehmm::cpu {

namespace {

using hmm::kPTBM;
using hmm::kPTDD;
using hmm::kPTDM;
using hmm::kPTII;
using hmm::kPTIM;
using hmm::kPTMD;
using hmm::kPTMI;
using hmm::kPTMM;

float add(float a, float b) {
  if (a == kNegInf || b == kNegInf) return kNegInf;
  return a + b;
}

/// One Forward row step: (pm, pi, pd) at row i-1 -> (cm, ci, cd) at row i.
/// Returns xE of row i.  fwd_b_prev is B(i-1).
float forward_row(const hmm::SearchProfile& prof, std::uint8_t x,
                  float fwd_b_prev, const std::vector<float>& pm,
                  const std::vector<float>& pi, const std::vector<float>& pd,
                  std::vector<float>& cm, std::vector<float>& ci,
                  std::vector<float>& cd) {
  const int M = prof.length();
  float xE = kNegInf;
  cm[0] = ci[0] = cd[0] = kNegInf;
  for (int k = 1; k <= M; ++k) {
    float m = add(fwd_b_prev, prof.tsc(k - 1, kPTBM));
    m = logsum_exact(m, add(pm[k - 1], prof.tsc(k - 1, kPTMM)));
    m = logsum_exact(m, add(pi[k - 1], prof.tsc(k - 1, kPTIM)));
    m = logsum_exact(m, add(pd[k - 1], prof.tsc(k - 1, kPTDM)));
    m = add(m, prof.msc(k, x));
    cm[k] = m;
    xE = logsum_exact(xE, add(m, prof.esc(k)));
    if (k < M) {
      ci[k] = logsum_exact(add(pm[k], prof.tsc(k, kPTMI)),
                           add(pi[k], prof.tsc(k, kPTII)));
    } else {
      ci[k] = kNegInf;
    }
    if (k >= 2) {
      cd[k] = logsum_exact(add(cm[k - 1], prof.tsc(k - 1, kPTMD)),
                           add(cd[k - 1], prof.tsc(k - 1, kPTDD)));
    } else {
      cd[k] = kNegInf;
    }
  }
  return xE;
}

}  // namespace

CheckpointedPosterior model_occupancy_checkpointed(
    const hmm::SearchProfile& prof, const std::uint8_t* seq, std::size_t L,
    std::size_t block) {
  FH_REQUIRE(L >= 1, "cannot decode an empty sequence");
  const int M = prof.length();
  const auto xs = prof.xsc_for(static_cast<int>(L));
  if (block == 0)
    block = static_cast<std::size_t>(
        std::ceil(std::sqrt(static_cast<double>(L))));
  block = std::max<std::size_t>(1, block);

  CheckpointedPosterior out;
  out.block = block;
  out.mocc.assign(L, 0.0f);

  const std::size_t stride = static_cast<std::size_t>(M + 1);
  const std::size_t n_blocks = (L + block - 1) / block;

  // ---- Pass 1: Forward; keep specials for every row, snapshot (m,i,d)
  // at each block's first row - 1 (i.e. the row the block restarts from).
  std::vector<float> fwd_n(L + 1, kNegInf), fwd_b(L + 1, kNegInf),
      fwd_j(L + 1, kNegInf), fwd_c(L + 1, kNegInf);
  std::vector<float> snap_m(n_blocks * stride, kNegInf),
      snap_i(n_blocks * stride, kNegInf), snap_d(n_blocks * stride, kNegInf);

  std::vector<float> pm(stride, kNegInf), pi(stride, kNegInf),
      pd(stride, kNegInf);
  std::vector<float> cm(stride, kNegInf), ci(stride, kNegInf),
      cd(stride, kNegInf);

  fwd_n[0] = 0.0f;
  fwd_b[0] = xs.n_move;
  for (std::size_t i = 1; i <= L; ++i) {
    if ((i - 1) % block == 0) {
      std::size_t b = (i - 1) / block;
      std::copy(pm.begin(), pm.end(), snap_m.begin() + b * stride);
      std::copy(pi.begin(), pi.end(), snap_i.begin() + b * stride);
      std::copy(pd.begin(), pd.end(), snap_d.begin() + b * stride);
    }
    float xE = forward_row(prof, seq[i - 1], fwd_b[i - 1], pm, pi, pd, cm,
                           ci, cd);
    fwd_j[i] = logsum_exact(add(fwd_j[i - 1], xs.j_loop), add(xE, xs.e_j));
    fwd_c[i] = logsum_exact(add(fwd_c[i - 1], xs.c_loop), add(xE, xs.e_c));
    fwd_n[i] = add(fwd_n[i - 1], xs.n_loop);
    fwd_b[i] = logsum_exact(add(fwd_n[i], xs.n_move),
                            add(fwd_j[i], xs.j_move));
    pm.swap(cm);
    pi.swap(ci);
    pd.swap(cd);
  }
  out.total = add(fwd_c[L], xs.c_move);

  // ---- Pass 2: Backward sweep; per block, recompute the block's Forward
  // rows from its snapshot, then consume them back to front.
  std::vector<float> blk_m(block * stride), blk_i(block * stride),
      blk_d(block * stride);
  out.peak_rows = 3 * (n_blocks + block + 4);  // snapshots + block + rolling

  // Rolling backward rows at i+1 ("next") and i ("cur").
  std::vector<float> bnm(stride + 1, kNegInf), bni(stride + 1, kNegInf),
      bnd(stride + 1, kNegInf);
  std::vector<float> bcm(stride + 1, kNegInf), bci(stride + 1, kNegInf),
      bcd(stride + 1, kNegInf);
  float bwd_c = xs.c_move;
  float bwd_j = kNegInf;
  float bwd_n = kNegInf;
  {
    float bxE = add(xs.e_c, bwd_c);
    for (int k = 1; k <= M; ++k) bnm[k] = add(prof.esc(k), bxE);
  }

  for (std::size_t b = n_blocks; b-- > 0;) {
    std::size_t lo = b * block + 1;                       // first row of block
    std::size_t hi = std::min(L, (b + 1) * block);        // last row
    // Recompute Forward rows lo..hi from the snapshot at row lo-1.
    std::copy(snap_m.begin() + b * stride,
              snap_m.begin() + (b + 1) * stride, pm.begin());
    std::copy(snap_i.begin() + b * stride,
              snap_i.begin() + (b + 1) * stride, pi.begin());
    std::copy(snap_d.begin() + b * stride,
              snap_d.begin() + (b + 1) * stride, pd.begin());
    for (std::size_t i = lo; i <= hi; ++i) {
      forward_row(prof, seq[i - 1], fwd_b[i - 1], pm, pi, pd, cm, ci, cd);
      std::size_t r = (i - lo) * stride;
      std::copy(cm.begin(), cm.end(), blk_m.begin() + r);
      std::copy(ci.begin(), ci.end(), blk_i.begin() + r);
      std::copy(cd.begin(), cd.end(), blk_d.begin() + r);
      pm.swap(cm);
      pi.swap(ci);
      pd.swap(cd);
    }

    // Backward through the block, combining on the fly.
    for (std::size_t i = hi; i >= lo; --i) {
      // mocc(i) from fwd row i (in blk_*) and bwd row i... but the bwd
      // row at i is produced AFTER stepping from i+1; at loop entry the
      // "next" arrays hold row i+1's bwd values... The bwd M/I values of
      // row i are needed; we must first compute them (they depend on row
      // i+1 and residue x_{i+1}), except at i == L where they are the
      // initial rows set above.
      if (i < L) {
        std::uint8_t x = seq[i];  // residue i+1
        float bxB = kNegInf;
        for (int k = 1; k <= M; ++k)
          bxB = logsum_exact(bxB, add(prof.tsc(k - 1, kPTBM),
                                      add(prof.msc(k, x), bnm[k])));
        float new_j = logsum_exact(add(xs.j_loop, bwd_j),
                                   add(xs.j_move, bxB));
        float new_c = add(xs.c_loop, bwd_c);
        float new_n = logsum_exact(add(xs.n_loop, bwd_n),
                                   add(xs.n_move, bxB));
        float bxE = logsum_exact(add(xs.e_c, new_c), add(xs.e_j, new_j));
        for (int k = M; k >= 1; --k) {
          float d = kNegInf;
          if (k < M) {
            d = add(prof.tsc(k, kPTDM), add(prof.msc(k + 1, x), bnm[k + 1]));
            d = logsum_exact(d, add(prof.tsc(k, kPTDD), bcd[k + 1]));
          }
          bcd[k] = d;
          float iv = kNegInf;
          if (k < M) {
            iv = add(prof.tsc(k, kPTIM),
                     add(prof.msc(k + 1, x), bnm[k + 1]));
            iv = logsum_exact(iv, add(prof.tsc(k, kPTII), bni[k]));
          }
          bci[k] = iv;
          float m = add(prof.esc(k), bxE);
          if (k < M) {
            m = logsum_exact(m, add(prof.tsc(k, kPTMM),
                                    add(prof.msc(k + 1, x), bnm[k + 1])));
            m = logsum_exact(m, add(prof.tsc(k, kPTMI), bni[k]));
            m = logsum_exact(m, add(prof.tsc(k, kPTMD), bcd[k + 1]));
          }
          bcm[k] = m;
        }
        bwd_j = new_j;
        bwd_c = new_c;
        bwd_n = new_n;
        bnm.swap(bcm);
        bni.swap(bci);
        bnd.swap(bcd);
      }

      // Combine: fwd row i (block storage) x bwd row i (bn*).
      const std::size_t r = (i - lo) * stride;
      float acc = kNegInf;
      for (int k = 1; k <= M; ++k) {
        acc = logsum_exact(acc, blk_m[r + k] + bnm[k]);
        acc = logsum_exact(acc, blk_i[r + k] + bni[k]);
      }
      float p = acc == kNegInf ? 0.0f : std::exp(acc - out.total);
      out.mocc[i - 1] = std::min(1.0f, std::max(0.0f, p));
      if (i == lo) break;  // avoid size_t underflow
    }
  }
  return out;
}

}  // namespace finehmm::cpu
