// Width-templated striped MSV filter (extension).
//
// HMMER 3.0 shipped 16-lane SSE; later releases re-striped the same
// algorithm for AVX2 (32 lanes) and AVX-512 (64 lanes).  The Farrar
// striping generalizes cleanly — position k lives in stripe (k-1)%Q, lane
// (k-1)/Q with Q = ceil(M/N) — and this header provides the whole family
// as a template, byte-exact with the scalar reference at every width.
// The portable lane loops vectorize to whatever the host ISA offers; the
// template is the specification an intrinsic port would be tested
// against.
#pragma once

#include <cstring>
#include <limits>
#include <vector>

#include "cpu/filter_result.hpp"
#include "cpu/simd_backend/backend.hpp"
#include "cpu/simd_backend/simd_tier.hpp"
#include "profile/msv_profile.hpp"
#include "util/aligned.hpp"
#include "util/error.hpp"

namespace finehmm::cpu {

template <int N>
struct U8xN {
  static_assert(N >= 2 && (N & (N - 1)) == 0, "lane count: power of two");
  static constexpr int kLanes = N;
  std::uint8_t v[N];

  static U8xN splat(std::uint8_t x) {
    U8xN r;
    for (auto& e : r.v) e = x;
    return r;
  }
  static U8xN load(const std::uint8_t* p) {
    U8xN r;
    std::memcpy(r.v, p, N);
    return r;
  }
  void store(std::uint8_t* p) const { std::memcpy(p, v, N); }
};

template <int N>
inline U8xN<N> max_u8(U8xN<N> a, U8xN<N> b) {
  U8xN<N> r;
  for (int i = 0; i < N; ++i) r.v[i] = a.v[i] > b.v[i] ? a.v[i] : b.v[i];
  return r;
}
template <int N>
inline U8xN<N> adds_u8(U8xN<N> a, U8xN<N> b) {
  U8xN<N> r;
  for (int i = 0; i < N; ++i) {
    unsigned s = unsigned(a.v[i]) + unsigned(b.v[i]);
    r.v[i] = s > 255u ? 255u : std::uint8_t(s);
  }
  return r;
}
template <int N>
inline U8xN<N> subs_u8(U8xN<N> a, U8xN<N> b) {
  U8xN<N> r;
  for (int i = 0; i < N; ++i)
    r.v[i] = a.v[i] > b.v[i] ? std::uint8_t(a.v[i] - b.v[i]) : 0;
  return r;
}
template <int N>
inline U8xN<N> shift_lanes_up(U8xN<N> a) {
  U8xN<N> r;
  r.v[0] = 0;
  for (int i = 1; i < N; ++i) r.v[i] = a.v[i - 1];
  return r;
}
template <int N>
inline std::uint8_t hmax_u8(U8xN<N> a) {
  std::uint8_t m = 0;
  for (auto e : a.v)
    if (e > m) m = e;
  return m;
}

/// Emission costs re-striped for an N-lane engine, built once per model
/// from the MsvProfile's linear (position-ordered) costs.
template <int N>
class WideMsvStripes {
 public:
  explicit WideMsvStripes(const profile::MsvProfile& prof)
      : M_(prof.length()), Q_((prof.length() + N - 1) / N) {
    rows_.assign(static_cast<std::size_t>(bio::kKp) * Q_ * N, 255);
    for (int x = 0; x < bio::kKp; ++x) {
      const std::uint8_t* lin = prof.linear_row(x);
      for (int k = 1; k <= M_; ++k) {
        int q = (k - 1) % Q_;
        int j = (k - 1) / Q_;
        rows_[(static_cast<std::size_t>(x) * Q_ + q) * N + j] = lin[k - 1];
      }
    }
  }
  int segments() const noexcept { return Q_; }
  const std::uint8_t* row(int x) const {
    return rows_.data() + static_cast<std::size_t>(x) * Q_ * N;
  }

 private:
  int M_;
  int Q_;
  aligned_vector<std::uint8_t> rows_;
};

/// N-lane striped MSV; scores are byte-exact with cpu::msv_scalar.  The
/// body is the shared simd_kernels::msv_kernel; the 32-lane instance is
/// routed to the native AVX2 backend when the host supports it (the
/// portable template remains the specification and the fallback).
/// Scratch is thread-local and grown monotonically, so repeated scans
/// allocate nothing per call.
template <int N>
FilterResult msv_striped_wide(const profile::MsvProfile& prof,
                              const WideMsvStripes<N>& stripes,
                              const std::uint8_t* seq, std::size_t L) {
  const int Q = stripes.segments();
  thread_local std::vector<std::uint8_t> row;
  if (row.size() < static_cast<std::size_t>(Q) * N)
    row.resize(static_cast<std::size_t>(Q) * N);
  if constexpr (N == 32) {
    if (backend::have_avx2() && active_simd_tier() == SimdTier::kAvx2)
      return backend::msv_avx2(prof, stripes.row(0), Q, seq, L, row.data());
  }
  if constexpr (N == 64) {
    if (backend::have_avx512() && active_simd_tier() == SimdTier::kAvx512)
      return backend::msv_avx512(prof, stripes.row(0), Q, seq, L,
                                 row.data());
  }
  return simd_kernels::msv_kernel<U8xN<N>>(prof, stripes.row(0), Q, seq, L,
                                           row.data());
}

}  // namespace finehmm::cpu
