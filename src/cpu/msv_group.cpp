#include "cpu/msv_group.hpp"

#include "bio/alphabet.hpp"
#include "util/error.hpp"

namespace finehmm::cpu {

FusedMsvGroup::FusedMsvGroup(
    std::vector<const profile::MsvProfile*> members, int lane_width, int Q)
    : members_(std::move(members)), lanes_(lane_width), Q_(Q) {
  FH_REQUIRE(!members_.empty(), "fused group needs at least one model");
  FH_REQUIRE(Q_ >= 1, "fused group needs at least one stripe");
  FH_REQUIRE(lanes_ == 16 || lanes_ == 32 || lanes_ == 64,
             "fused group needs a byte lane width of 16, 32, or 64");

  models_.resize(members_.size());
  int lane = 0;
  for (std::size_t m = 0; m < members_.size(); ++m) {
    const profile::MsvProfile& prof = *members_[m];
    FH_REQUIRE(prof.length() >= 1, "cannot fuse an empty model");
    simd_kernels::MsvGroupModel& md = models_[m];
    md.lane_lo = static_cast<std::uint8_t>(lane);
    md.lanes = static_cast<std::uint8_t>(prof.length() / Q_ + 1);
    md.bias = prof.bias();
    md.tbm = prof.tbm();
    md.tec = prof.tec();
    md.base = prof.base();
    md.sat = static_cast<std::uint8_t>(255 - prof.bias());
    lane += md.lanes;
  }
  lanes_used_ = lane;
  FH_REQUIRE(lanes_used_ <= lanes_,
             "fused group overflows its lane budget");

  // Cost 255 everywhere a model cell isn't: those cells are forced to
  // zero every row, which is what keeps neighbouring spans independent.
  rows_.assign(static_cast<std::size_t>(bio::kKp) * Q_ * lanes_, 255);
  bias_.assign(static_cast<std::size_t>(lanes_), 0);
  for (std::size_t m = 0; m < members_.size(); ++m) {
    const profile::MsvProfile& prof = *members_[m];
    const simd_kernels::MsvGroupModel& md = models_[m];
    for (int j = 0; j < md.lanes; ++j) bias_[md.lane_lo + j] = md.bias;
    for (int x = 0; x < bio::kKp; ++x) {
      const std::uint8_t* lin = prof.linear_row(x);
      for (int k = 1; k <= prof.length(); ++k) {
        const int q = (k - 1) % Q_;
        const int j = md.lane_lo + (k - 1) / Q_;
        rows_[(static_cast<std::size_t>(x) * Q_ + q) * lanes_ + j] =
            lin[k - 1];
      }
    }
  }

  view_.rows = rows_.data();
  view_.bias = bias_.data();
  view_.models = models_.data();
  view_.n_models = static_cast<int>(members_.size());
  view_.Q = Q_;
}

FusedMsvFilter::FusedMsvFilter(const FusedMsvGroup& group, SimdTier tier)
    : group_(group),
      ops_(&backend::tier_kernels(resolve_simd_tier(tier))) {
  FH_REQUIRE(group_.lanes() == ops_->u8_lanes,
             "fused group built for a different lane count");
  const std::size_t lanes = static_cast<std::size_t>(group_.lanes());
  row_.assign(static_cast<std::size_t>(group_.segments()) * lanes, 0);
  // xb / trigger / xe share one aligned block; each slice starts at a
  // multiple of the lane width, so vector loads stay aligned.
  lanes_.assign(3 * lanes, 0);
  xj_.assign(group_.size(), 0);
  tjb_.assign(group_.size(), 0);
  overflowed_.assign(group_.size(), 0);
}

simd_kernels::MsvGroupState FusedMsvFilter::begin(std::size_t L) {
  for (std::size_t m = 0; m < group_.size(); ++m)
    tjb_[m] = group_.member(m).tjb_for(static_cast<int>(L));
  const std::size_t lanes = static_cast<std::size_t>(group_.lanes());
  simd_kernels::MsvGroupState st;
  st.xb = lanes_.data();
  st.trigger = lanes_.data() + lanes;
  st.xe = lanes_.data() + 2 * lanes;
  st.xj = xj_.data();
  st.tjb = tjb_.data();
  st.overflowed = overflowed_.data();
  return st;
}

void FusedMsvFilter::finish(std::size_t L, FilterResult* results) const {
  for (std::size_t m = 0; m < group_.size(); ++m) {
    if (overflowed_[m]) {
      results[m].score_nats = std::numeric_limits<float>::infinity();
      results[m].overflowed = true;
    } else {
      results[m].score_nats =
          group_.member(m).score_from_bytes(xj_[m], static_cast<int>(L));
      results[m].overflowed = false;
    }
  }
}

void FusedMsvFilter::msv(const std::uint8_t* seq, std::size_t L,
                         FilterResult* results) {
  if (L == 0) {
    for (std::size_t m = 0; m < group_.size(); ++m)
      results[m] = FilterResult{};
    return;
  }
  ops_->msv_group(group_.view(), begin(L), seq, L, row_.data());
  finish(L, results);
}

void FusedMsvFilter::msv(bio::PackedResidues seq, std::size_t L,
                         FilterResult* results) {
  if (L == 0) {
    for (std::size_t m = 0; m < group_.size(); ++m)
      results[m] = FilterResult{};
    return;
  }
  ops_->msv_group_packed(group_.view(), begin(L), seq, L, row_.data());
  finish(L, results);
}

void FusedMsvFilter::ssv(const std::uint8_t* seq, std::size_t L,
                         FilterResult* results) {
  if (L == 0) {
    for (std::size_t m = 0; m < group_.size(); ++m)
      results[m] = FilterResult{};
    return;
  }
  ops_->ssv_group(group_.view(), begin(L), seq, L, row_.data());
  finish(L, results);
}

void FusedMsvFilter::ssv(bio::PackedResidues seq, std::size_t L,
                         FilterResult* results) {
  if (L == 0) {
    for (std::size_t m = 0; m < group_.size(); ++m)
      results[m] = FilterResult{};
    return;
  }
  ops_->ssv_group_packed(group_.view(), begin(L), seq, L, row_.data());
  finish(L, results);
}

}  // namespace finehmm::cpu
