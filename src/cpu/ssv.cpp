#include "cpu/ssv.hpp"

#include <cstring>
#include <vector>

#include "cpu/simd_backend/backend.hpp"
#include "cpu/simd_backend/kernels.hpp"
#include "cpu/simd_backend/simd_tier.hpp"
#include "cpu/simd_vec.hpp"
#include "util/check.hpp"
#include "util/error.hpp"

namespace finehmm::cpu {

namespace {

inline std::uint8_t sat_add(std::uint8_t a, std::uint8_t b) {
  unsigned s = unsigned(a) + unsigned(b);
  return s > 255u ? 255u : std::uint8_t(s);
}
inline std::uint8_t sat_sub(std::uint8_t a, std::uint8_t b) {
  return a > b ? std::uint8_t(a - b) : 0;
}

/// Shared final conversion: like MSV's but with a single E->C hop (no J
/// re-entry ever happens, so xJ == best xE - tec).
FilterResult finish(const profile::MsvProfile& prof, std::uint8_t xEmax,
                    bool overflowed, std::size_t L) {
  FilterResult out;
  if (overflowed) {
    out.score_nats = std::numeric_limits<float>::infinity();
    out.overflowed = true;
    return out;
  }
  std::uint8_t xJ = sat_sub(xEmax, prof.tec());
  out.score_nats = prof.score_from_bytes(xJ, static_cast<int>(L));
  return out;
}

}  // namespace

FilterResult ssv_scalar(const profile::MsvProfile& prof,
                        const std::uint8_t* seq, std::size_t L) {
  FH_REQUIRE(L >= 1, "cannot score an empty sequence");
  const int M = prof.length();
  const std::uint8_t bias = prof.bias();
  const std::uint8_t tjb = prof.tjb_for(static_cast<int>(L));
  // Without J, the begin score is a constant: base - tjb - tbm.
  const std::uint8_t xBv =
      sat_sub(sat_sub(prof.base(), tjb), prof.tbm());

  std::vector<std::uint8_t> mmx(static_cast<std::size_t>(M) + 1, 0);
  std::uint8_t xEmax = 0;

  for (std::size_t i = 0; i < L; ++i) {
    const std::uint8_t* rbv = prof.linear_row(seq[i]);
    std::uint8_t diag = 0;
    for (int k = 1; k <= M; ++k) {
      std::uint8_t sv = diag > xBv ? diag : xBv;
      sv = sat_add(sv, bias);
      sv = sat_sub(sv, rbv[k - 1]);
      diag = mmx[k];
      mmx[k] = sv;
      FINEHMM_IF_CHECKS(const std::uint8_t prev_xE = xEmax;)
      if (sv > xEmax) xEmax = sv;
      FINEHMM_DCHECK(xEmax >= prev_xE,
                     "SSV xEmax must be monotone non-decreasing");
    }
    if (prof.overflowed(xEmax))
      return finish(prof, xEmax, /*overflowed=*/true, L);
  }
  return finish(prof, xEmax, /*overflowed=*/false, L);
}

FilterResult ssv_striped(const profile::MsvProfile& prof,
                         const std::uint8_t* seq, std::size_t L) {
  thread_local std::vector<std::uint8_t> row;
  const std::size_t n = static_cast<std::size_t>(prof.striped_segments()) *
                        profile::MsvProfile::kLanes;
  if (row.size() < n) row.resize(n);
  if (active_simd_tier() != SimdTier::kPortable && backend::have_sse2())
    return backend::ssv_sse2(prof, prof.striped_row(0),
                             prof.striped_segments(), seq, L, row.data());
  return simd_kernels::ssv_kernel<U8x16>(prof, prof.striped_row(0),
                                         prof.striped_segments(), seq, L,
                                         row.data());
}

}  // namespace finehmm::cpu
