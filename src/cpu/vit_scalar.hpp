// Golden scalar implementation of the 16-bit ViterbiFilter.
//
// Computes the exact Plan-7 Viterbi recurrence in word scores, evaluating
// the D->D chain serially within each row (no Lazy-F shortcut).  Both the
// striped CPU filter (Farrar Lazy-F) and the SIMT kernel (the paper's
// parallel Lazy-F, Fig. 7) must converge to bit-identical word values.
#pragma once

#include <cstddef>
#include <cstdint>

#include "cpu/filter_result.hpp"
#include "profile/vit_profile.hpp"

namespace finehmm::cpu {

FilterResult vit_scalar(const profile::VitProfile& prof,
                        const std::uint8_t* seq, std::size_t L);

}  // namespace finehmm::cpu
