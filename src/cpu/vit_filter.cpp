#include "cpu/vit_filter.hpp"

#include <algorithm>

#include "cpu/simd_vec.hpp"
#include "util/error.hpp"

namespace finehmm::cpu {

using profile::kWordNegInf;
using profile::sat_add_word;

namespace {
constexpr int kLanes = profile::VitProfile::kLanes;
}

VitFilter::VitFilter(const profile::VitProfile& prof) : prof_(prof) {
  std::size_t n =
      static_cast<std::size_t>(prof.striped_segments()) * kLanes;
  mmx_.assign(n, kWordNegInf);
  imx_.assign(n, kWordNegInf);
  dmx_.assign(n, kWordNegInf);
}

FilterResult VitFilter::score(const std::uint8_t* seq, std::size_t L) {
  FH_REQUIRE(L >= 1, "cannot score an empty sequence");
  const int Q = prof_.striped_segments();
  const auto lm = prof_.length_model_for(static_cast<int>(L));
  lazyf_passes_ = 0;

  std::fill(mmx_.begin(), mmx_.end(), kWordNegInf);
  std::fill(imx_.begin(), imx_.end(), kWordNegInf);
  std::fill(dmx_.begin(), dmx_.end(), kWordNegInf);

  auto stripe = [](std::vector<std::int16_t>& v, int q) {
    return v.data() + static_cast<std::size_t>(q) * kLanes;
  };

  std::int16_t xN = profile::VitProfile::kBase;
  std::int16_t xB = sat_add_word(xN, lm.move);
  std::int16_t xJ = kWordNegInf;
  std::int16_t xC = kWordNegInf;

  for (std::size_t i = 0; i < L; ++i) {
    const std::int16_t* msr = prof_.msc_striped(seq[i]);
    I16x8 xEv = I16x8::neg_inf();
    I16x8 dcv = I16x8::neg_inf();
    const I16x8 xBv = I16x8::splat(sat_add_word(xB, prof_.entry()));

    // Previous row's last stripe, lanes shifted up = the diagonal.
    I16x8 mpv = shift_lanes_up(I16x8::load(stripe(mmx_, Q - 1)));
    I16x8 ipv = shift_lanes_up(I16x8::load(stripe(imx_, Q - 1)));
    I16x8 dpv = shift_lanes_up(I16x8::load(stripe(dmx_, Q - 1)));

    for (int q = 0; q < Q; ++q) {
      const std::size_t off = static_cast<std::size_t>(q) * kLanes;
      I16x8 sv = xBv;
      sv = max_i16(sv, adds_w(mpv, I16x8::load(prof_.tmm_striped() + off)));
      sv = max_i16(sv, adds_w(ipv, I16x8::load(prof_.tim_striped() + off)));
      sv = max_i16(sv, adds_w(dpv, I16x8::load(prof_.tdm_striped() + off)));
      sv = adds_w(sv, I16x8::load(msr + off));
      xEv = max_i16(xEv, sv);

      // Stash previous-row stripes before overwriting (double buffer).
      mpv = I16x8::load(stripe(mmx_, q));
      ipv = I16x8::load(stripe(imx_, q));
      dpv = I16x8::load(stripe(dmx_, q));

      sv.store(stripe(mmx_, q));
      dcv.store(stripe(dmx_, q));

      // Next position's D: M->D from this stripe, or D->D continuation.
      dcv = max_i16(adds_w(sv, I16x8::load(prof_.tmd_striped() + off)),
                    adds_w(dcv, I16x8::load(prof_.tdd_striped() + off)));

      I16x8 iv =
          max_i16(adds_w(mpv, I16x8::load(prof_.tmi_striped() + off)),
                  adds_w(ipv, I16x8::load(prof_.tii_striped() + off)));
      iv.store(stripe(imx_, q));
    }

    // Lazy-F: wrap the dangling D chain into the next lane and keep
    // propagating while anything improves.
    dcv = shift_lanes_up(dcv);
    for (int pass = 0; pass < kLanes; ++pass) {
      bool improved = false;
      for (int q = 0; q < Q; ++q) {
        const std::size_t off = static_cast<std::size_t>(q) * kLanes;
        I16x8 cur = I16x8::load(stripe(dmx_, q));
        if (any_gt_i16(dcv, cur)) {
          improved = true;
          cur = max_i16(cur, dcv);
          cur.store(stripe(dmx_, q));
        }
        dcv = adds_w(cur, I16x8::load(prof_.tdd_striped() + off));
      }
      if (!improved) break;
      ++lazyf_passes_;
      dcv = shift_lanes_up(dcv);
    }

    std::int16_t xE = hmax_i16(xEv);
    xJ = std::max(sat_add_word(xJ, lm.loop), sat_add_word(xE, prof_.e_j()));
    xC = std::max(sat_add_word(xC, lm.loop), sat_add_word(xE, prof_.e_c()));
    xN = sat_add_word(xN, lm.loop);
    xB = std::max(sat_add_word(xN, lm.move), sat_add_word(xJ, lm.move));
  }

  FilterResult out;
  out.score_nats = prof_.score_from_words(xC, lm);
  return out;
}

FilterResult vit_striped(const profile::VitProfile& prof,
                         const std::uint8_t* seq, std::size_t L) {
  VitFilter f(prof);
  return f.score(seq, L);
}

}  // namespace finehmm::cpu
