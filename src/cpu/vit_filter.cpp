#include "cpu/vit_filter.hpp"

#include "cpu/simd_vec.hpp"
#include "cpu/vit_wide.hpp"
#include "util/error.hpp"

namespace finehmm::cpu {

SharedVitStripes make_shared_vit_stripes(const profile::VitProfile& prof,
                                         int lanes) {
  SharedVitStripes out;
  out.lanes = lanes;
  switch (lanes) {
    case 8:
      out.view = backend::vit_native_view(prof);
      return out;
    case 16: {
      auto wide = std::make_shared<const WideVitStripes<16>>(prof);
      out.view = wide->view();
      out.owner = std::move(wide);
      return out;
    }
    case 32: {
      auto wide = std::make_shared<const WideVitStripes<32>>(prof);
      out.view = wide->view();
      out.owner = std::move(wide);
      return out;
    }
    default:
      throw Error("unsupported Viterbi word lane count");
  }
}

VitFilter::VitFilter(const profile::VitProfile& prof, SimdTier tier)
    : VitFilter(prof, tier, SharedVitStripes{}) {}

VitFilter::VitFilter(const profile::VitProfile& prof, SimdTier tier,
                     SharedVitStripes wide)
    : prof_(prof),
      ops_(&backend::tier_kernels(resolve_simd_tier(tier))),
      wide_(std::move(wide)) {
  if (wide_.view.msc == nullptr)
    wide_ = make_shared_vit_stripes(prof, ops_->i16_lanes);
  FH_REQUIRE(wide_.lanes == ops_->i16_lanes,
             "shared Viterbi stripes built for a different lane count");
  const std::size_t n =
      static_cast<std::size_t>(wide_.view.Q) * wide_.lanes;
  mmx_.assign(n, profile::kWordNegInf);
  imx_.assign(n, profile::kWordNegInf);
  dmx_.assign(n, profile::kWordNegInf);
}

FilterResult VitFilter::score(const std::uint8_t* seq, std::size_t L) {
  return ops_->vit(prof_, wide_.view, seq, L, mmx_.data(), imx_.data(),
                   dmx_.data(), &lazyf_passes_);
}

FilterResult vit_striped(const profile::VitProfile& prof,
                         const std::uint8_t* seq, std::size_t L) {
  thread_local std::vector<std::int16_t> mmx, imx, dmx;
  const std::size_t n = static_cast<std::size_t>(prof.striped_segments()) *
                        profile::VitProfile::kLanes;
  if (mmx.size() < n) {
    mmx.resize(n);
    imx.resize(n);
    dmx.resize(n);
  }
  if (active_simd_tier() != SimdTier::kPortable && backend::have_sse2())
    return backend::vit_sse2(prof, backend::vit_native_view(prof), seq, L,
                             mmx.data(), imx.data(), dmx.data());
  return simd_kernels::vit_kernel<I16x8>(prof, backend::vit_native_view(prof),
                                         seq, L, mmx.data(), imx.data(),
                                         dmx.data());
}

}  // namespace finehmm::cpu
