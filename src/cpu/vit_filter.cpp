#include "cpu/vit_filter.hpp"

#include "cpu/simd_backend/backend.hpp"
#include "cpu/simd_backend/kernels.hpp"
#include "cpu/simd_vec.hpp"

namespace finehmm::cpu {

namespace {

simd_kernels::VitStripesView profile_view(const profile::VitProfile& prof) {
  simd_kernels::VitStripesView st;
  st.msc = prof.msc_striped(0);
  st.tmm = prof.tmm_striped();
  st.tim = prof.tim_striped();
  st.tdm = prof.tdm_striped();
  st.tmi = prof.tmi_striped();
  st.tii = prof.tii_striped();
  st.tmd = prof.tmd_striped();
  st.tdd = prof.tdd_striped();
  st.Q = prof.striped_segments();
  return st;
}

}  // namespace

VitFilter::VitFilter(const profile::VitProfile& prof, SimdTier tier)
    : VitFilter(prof, tier, nullptr) {}

VitFilter::VitFilter(const profile::VitProfile& prof, SimdTier tier,
                     std::shared_ptr<const WideVitStripes<16>> wide)
    : prof_(prof), tier_(resolve_simd_tier(tier)), wide_(std::move(wide)) {
  int lanes = profile::VitProfile::kLanes;
  int q = prof.striped_segments();
  if (tier_ == SimdTier::kAvx2) {
    if (wide_ == nullptr)
      wide_ = std::make_shared<const WideVitStripes<16>>(prof);
    lanes = 16;
    q = wide_->segments();
  } else {
    wide_.reset();
  }
  const std::size_t n = static_cast<std::size_t>(q) * lanes;
  mmx_.assign(n, profile::kWordNegInf);
  imx_.assign(n, profile::kWordNegInf);
  dmx_.assign(n, profile::kWordNegInf);
}

FilterResult VitFilter::score(const std::uint8_t* seq, std::size_t L) {
  switch (tier_) {
    case SimdTier::kAvx2:
      return backend::vit_avx2(prof_, wide_->view(), seq, L, mmx_.data(),
                               imx_.data(), dmx_.data(), &lazyf_passes_);
    case SimdTier::kSse2:
      return backend::vit_sse2(prof_, seq, L, mmx_.data(), imx_.data(),
                               dmx_.data(), &lazyf_passes_);
    case SimdTier::kPortable:
      break;
  }
  return simd_kernels::vit_kernel<I16x8>(prof_, profile_view(prof_), seq, L,
                                         mmx_.data(), imx_.data(),
                                         dmx_.data(), &lazyf_passes_);
}

FilterResult vit_striped(const profile::VitProfile& prof,
                         const std::uint8_t* seq, std::size_t L) {
  thread_local std::vector<std::int16_t> mmx, imx, dmx;
  const std::size_t n = static_cast<std::size_t>(prof.striped_segments()) *
                        profile::VitProfile::kLanes;
  if (mmx.size() < n) {
    mmx.resize(n);
    imx.resize(n);
    dmx.resize(n);
  }
  if (active_simd_tier() != SimdTier::kPortable && backend::have_sse2())
    return backend::vit_sse2(prof, seq, L, mmx.data(), imx.data(),
                             dmx.data());
  return simd_kernels::vit_kernel<I16x8>(prof, profile_view(prof), seq, L,
                                         mmx.data(), imx.data(), dmx.data());
}

}  // namespace finehmm::cpu
