// Posterior decoding and domain definition (extension).
//
// hmmsearch reports *domains*: maximal regions of the target that the
// model explains.  HMMER defines them from the posterior probability that
// each target residue is emitted by the core model (rather than by the
// N/C/J flanking states), computed from full Forward and Backward
// matrices:
//
//   mocc[i] = P(residue i emitted by M or I | sequence, model)
//
// Regions where mocc rises above rt1 (0.25) seed a domain; the envelope
// extends outward while mocc stays above rt2 (0.10).  Each envelope is
// then rescored independently (Forward on the envelope substring) and
// aligned (Viterbi traceback), mirroring p7_domaindef's architecture at
// sequence resolution.
#pragma once

#include <cstdint>
#include <vector>

#include "cpu/trace.hpp"
#include "hmm/profile.hpp"

namespace finehmm::cpu {

/// Full Forward/Backward matrices in nats (row 0 = before any residue).
struct PosteriorMatrices {
  int M = 0;
  std::size_t L = 0;
  // Indexed [i * (M+1) + k]; i in 0..L, k in 0..M (k=0 unused).
  std::vector<float> fwd_m, fwd_i, fwd_d;
  std::vector<float> bwd_m, bwd_i, bwd_d;
  // Specials per row.
  std::vector<float> fwd_n, fwd_b, fwd_j, fwd_c;
  std::vector<float> bwd_n, bwd_b, bwd_j, bwd_c;
  float total = 0.0f;  // Forward score (nats)

  float at(const std::vector<float>& m, std::size_t i, int k) const {
    return m[i * static_cast<std::size_t>(M + 1) + k];
  }
};

/// Run Forward and Backward with full matrix storage; O(M*L) memory.
PosteriorMatrices posterior_matrices(const hmm::SearchProfile& prof,
                                     const std::uint8_t* seq, std::size_t L);

/// Per-residue probability of being emitted by the core model (M or I
/// states); element i corresponds to residue i+1.  Values in [0, 1].
std::vector<float> model_occupancy(const PosteriorMatrices& pm);

struct DomainDefOptions {
  float rt1 = 0.25f;  // seed threshold
  float rt2 = 0.10f;  // envelope extension threshold
};

/// One domain envelope on the target sequence.
struct Domain {
  std::size_t i_start = 0, i_end = 0;  // 1-based envelope coordinates
  float bits = 0.0f;                   // envelope Forward bit score
  std::vector<Alignment> alignments;   // Viterbi alignment of the envelope
};

/// Define and score domains from a precomputed occupancy track (mocc[i]
/// = P(residue i+1 emitted by the core model), L entries).  This is the
/// common tail of every decode path: the scalar checkpointed decoder and
/// the vectorized fwd/bwd filters (FwdFilter::decode) both produce mocc
/// and delegate envelope definition, rescoring and alignment here.
std::vector<Domain> domains_from_occupancy(const hmm::SearchProfile& prof,
                                           const std::uint8_t* seq,
                                           std::size_t L, const float* mocc,
                                           const DomainDefOptions& opts = {});

/// Define and score domains for one sequence (computes the occupancy
/// track with the scalar checkpointed decoder, then delegates).
std::vector<Domain> define_domains(const hmm::SearchProfile& prof,
                                   const std::uint8_t* seq, std::size_t L,
                                   const DomainDefOptions& opts = {});

}  // namespace finehmm::cpu
