// Portable fixed-width SIMD vector types for the striped CPU filters.
//
// HMMER 3.0's MSV filter runs on 16 unsigned bytes per SSE register and the
// ViterbiFilter on 8 signed words.  These classes reproduce those lane
// semantics with plain loops that GCC/Clang auto-vectorize to SSE/AVX on
// x86; they also serve as the specification the SIMT kernels are tested
// against.  Word adds use the library's sticky -inf saturating semantics
// (see profile/vit_profile.hpp) so every implementation agrees exactly.
#pragma once

#include <cstdint>

#include "profile/vit_profile.hpp"

namespace finehmm::cpu {

/// 16 unsigned bytes (MSV lane type).
struct U8x16 {
  static constexpr int kLanes = 16;
  std::uint8_t v[kLanes];

  static U8x16 splat(std::uint8_t x) {
    U8x16 r;
    for (auto& e : r.v) e = x;
    return r;
  }
  static U8x16 zero() { return splat(0); }
  static U8x16 load(const std::uint8_t* p) {
    U8x16 r;
    for (int i = 0; i < kLanes; ++i) r.v[i] = p[i];
    return r;
  }
  void store(std::uint8_t* p) const {
    for (int i = 0; i < kLanes; ++i) p[i] = v[i];
  }

  friend U8x16 max_u8(U8x16 a, U8x16 b) {
    U8x16 r;
    for (int i = 0; i < kLanes; ++i) r.v[i] = a.v[i] > b.v[i] ? a.v[i] : b.v[i];
    return r;
  }
  friend U8x16 adds_u8(U8x16 a, U8x16 b) {
    U8x16 r;
    for (int i = 0; i < kLanes; ++i) {
      unsigned s = unsigned(a.v[i]) + unsigned(b.v[i]);
      r.v[i] = s > 255u ? 255u : std::uint8_t(s);
    }
    return r;
  }
  friend U8x16 subs_u8(U8x16 a, U8x16 b) {
    U8x16 r;
    for (int i = 0; i < kLanes; ++i)
      r.v[i] = a.v[i] > b.v[i] ? std::uint8_t(a.v[i] - b.v[i]) : 0;
    return r;
  }
  /// Shift lanes up by one (lane j <- lane j-1), filling lane 0 with fill.
  friend U8x16 shift_lanes_up(U8x16 a, std::uint8_t fill = 0) {
    U8x16 r;
    r.v[0] = fill;
    for (int i = 1; i < kLanes; ++i) r.v[i] = a.v[i - 1];
    return r;
  }
  friend std::uint8_t hmax_u8(U8x16 a) {
    std::uint8_t m = 0;
    for (auto e : a.v)
      if (e > m) m = e;
    return m;
  }
};

/// 8 signed words (ViterbiFilter lane type).
struct I16x8 {
  static constexpr int kLanes = 8;
  std::int16_t v[kLanes];

  static I16x8 splat(std::int16_t x) {
    I16x8 r;
    for (auto& e : r.v) e = x;
    return r;
  }
  static I16x8 neg_inf() { return splat(profile::kWordNegInf); }
  static I16x8 load(const std::int16_t* p) {
    I16x8 r;
    for (int i = 0; i < kLanes; ++i) r.v[i] = p[i];
    return r;
  }
  void store(std::int16_t* p) const {
    for (int i = 0; i < kLanes; ++i) p[i] = v[i];
  }

  friend I16x8 max_i16(I16x8 a, I16x8 b) {
    I16x8 r;
    for (int i = 0; i < kLanes; ++i) r.v[i] = a.v[i] > b.v[i] ? a.v[i] : b.v[i];
    return r;
  }
  /// Sticky -inf saturating add (matches profile::sat_add_word lane-wise).
  friend I16x8 adds_w(I16x8 a, I16x8 b) {
    I16x8 r;
    for (int i = 0; i < kLanes; ++i)
      r.v[i] = profile::sat_add_word(a.v[i], b.v[i]);
    return r;
  }
  /// Shift lanes up by one, filling lane 0 with -inf.
  friend I16x8 shift_lanes_up(I16x8 a,
                              std::int16_t fill = profile::kWordNegInf) {
    I16x8 r;
    r.v[0] = fill;
    for (int i = 1; i < kLanes; ++i) r.v[i] = a.v[i - 1];
    return r;
  }
  friend std::int16_t hmax_i16(I16x8 a) {
    std::int16_t m = profile::kWordNegInf;
    for (auto e : a.v)
      if (e > m) m = e;
    return m;
  }
  /// True if any lane of a is strictly greater than the same lane of b.
  friend bool any_gt_i16(I16x8 a, I16x8 b) {
    for (int i = 0; i < kLanes; ++i)
      if (a.v[i] > b.v[i]) return true;
    return false;
  }
};

/// 4 floats (Forward filter lane type, probability space).
struct F32x4 {
  static constexpr int kLanes = 4;
  float v[kLanes];

  static F32x4 splat(float x) {
    F32x4 r;
    for (auto& e : r.v) e = x;
    return r;
  }
  static F32x4 zero() { return splat(0.0f); }
  static F32x4 load(const float* p) {
    F32x4 r;
    for (int i = 0; i < kLanes; ++i) r.v[i] = p[i];
    return r;
  }
  void store(float* p) const {
    for (int i = 0; i < kLanes; ++i) p[i] = v[i];
  }

  friend F32x4 add_f(F32x4 a, F32x4 b) {
    F32x4 r;
    for (int i = 0; i < kLanes; ++i) r.v[i] = a.v[i] + b.v[i];
    return r;
  }
  friend F32x4 mul_f(F32x4 a, F32x4 b) {
    F32x4 r;
    for (int i = 0; i < kLanes; ++i) r.v[i] = a.v[i] * b.v[i];
    return r;
  }
  /// Shift lanes up by one (lane j <- lane j-1), lane 0 <- fill.
  friend F32x4 shift_lanes_up(F32x4 a, float fill = 0.0f) {
    F32x4 r;
    r.v[0] = fill;
    for (int i = 1; i < kLanes; ++i) r.v[i] = a.v[i - 1];
    return r;
  }
  /// Shift lanes down by one (lane j <- lane j+1), top lane <- 0.0f.
  friend F32x4 shift_lanes_down(F32x4 a) {
    F32x4 r;
    for (int i = 0; i + 1 < kLanes; ++i) r.v[i] = a.v[i + 1];
    r.v[kLanes - 1] = 0.0f;
    return r;
  }
  friend float hsum_f(F32x4 a) {
    float s = 0.0f;
    for (auto e : a.v) s += e;
    return s;
  }
  friend float hmax_f(F32x4 a) {
    float m = a.v[0];
    for (auto e : a.v)
      if (e > m) m = e;
    return m;
  }
};

}  // namespace finehmm::cpu
