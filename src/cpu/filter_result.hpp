// Result type shared by every MSV / Viterbi filter implementation.
#pragma once

#include <limits>

namespace finehmm::cpu {

struct FilterResult {
  /// Raw profile score in nats (log-odds vs the background emissions;
  /// null1's length term is NOT yet subtracted).  +inf when the byte
  /// filter overflowed (the sequence certainly passes the filter).
  float score_nats = -std::numeric_limits<float>::infinity();
  bool overflowed = false;
};

}  // namespace finehmm::cpu
