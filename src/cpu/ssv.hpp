// SSV — Single-segment ungapped Viterbi (extension).
//
// The MSV model's J state lets an alignment chain several ungapped
// segments.  Dropping J yields the even simpler SSV heuristic (HMMER 3.1
// later shipped exactly this as its first pipeline stage): the score of
// the single best ungapped diagonal.  It shares the MSV byte-scoring
// system, so SSV <= MSV holds cell-wise and the same profile drives both.
//
// We provide the scalar reference and the striped SIMD filter; the warp
// kernel lives in gpu/ssv_kernel.  All three agree bit-for-bit.
#pragma once

#include <cstddef>
#include <cstdint>

#include "cpu/filter_result.hpp"
#include "profile/msv_profile.hpp"

namespace finehmm::cpu {

/// Scalar reference SSV.
FilterResult ssv_scalar(const profile::MsvProfile& prof,
                        const std::uint8_t* seq, std::size_t L);

/// Striped 16-lane SSV filter.
FilterResult ssv_striped(const profile::MsvProfile& prof,
                         const std::uint8_t* seq, std::size_t L);

}  // namespace finehmm::cpu
