// Minimal embedded HTTP endpoint for observability scrapes.
//
// finehmmd serves its binary framed protocol on one port and — when
// --metrics-port is given — plain HTTP GET on a second one, so a
// Prometheus scraper or a human with curl never has to speak the frame
// protocol.  Three routes (docs/observability.md):
//
//   /metrics   Prometheus text exposition (latency histograms, server
//              counters, last sweep's ScanTelemetry)
//   /healthz   200 "ok" while serving, 503 "draining" during drain —
//              load balancers stop routing before the listener closes
//   /statusz   human-readable live snapshot
//
// This is deliberately not a web server: GET only, one connection at a
// time handled serially on the endpoint's own thread, response always
// `Connection: close`.  A scrape every few seconds costs nothing; a
// misbehaving client can at worst slow other scrapes, never the search
// data plane.  Reuses the transport Listener/Connection contract, so
// the endpoint itself is unit-testable over the in-process loopback.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>

#include "server/transport.hpp"

namespace finehmm::server {

struct HttpResponse {
  int status = 200;               // 200 | 404 | 503 (405 for non-GET)
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// Route a GET path ("/metrics") to a response.  Called on the
/// endpoint's serving thread; must be safe against the data plane.
using HttpHandler = std::function<HttpResponse(const std::string& path)>;

/// Serve GET requests off `listener` on a dedicated thread until
/// stop().  Owns the listener.
class HttpEndpoint {
 public:
  HttpEndpoint(std::unique_ptr<Listener> listener, HttpHandler handler);
  ~HttpEndpoint();

  HttpEndpoint(const HttpEndpoint&) = delete;
  HttpEndpoint& operator=(const HttpEndpoint&) = delete;

  /// Close the listener and join the serving thread.  Idempotent.
  void stop();

 private:
  void serve_loop();

  // No mutex: listener_ and handler_ are set once in the constructor and
  // never mutated; stop() tears down via Listener::close(), which is
  // itself safe from any thread (transport contract).  Nothing here for
  // a capability annotation to guard (docs/static_analysis.md).
  std::unique_ptr<Listener> listener_;
  HttpHandler handler_;
  std::thread thread_;
};

/// Handle one already-accepted connection: parse the request line, call
/// `handler` for GET (405 otherwise), write the response, close.
/// Exposed separately so tests can drive it over a loopback connection.
void http_serve_connection(Connection& conn, const HttpHandler& handler);

}  // namespace finehmm::server
