#include "server/loopback.hpp"

#include <algorithm>
#include <cstring>
#include <utility>

namespace finehmm::server {

namespace detail {

bool ByteChannel::write(const void* data, std::size_t n) {
  const std::uint8_t* src = static_cast<const std::uint8_t*>(data);
  MutexLock lock(mu_);
  if (closed_) return false;
  bytes_.insert(bytes_.end(), src, src + n);
  cv_.notify_all();
  return true;
}

std::size_t ByteChannel::read(void* buf, std::size_t n) {
  MutexLock lock(mu_);
  while (bytes_.empty() && !closed_) cv_.wait(mu_);
  if (bytes_.empty()) return 0;  // closed and drained
  const std::size_t take = std::min(n, bytes_.size());
  std::uint8_t* dst = static_cast<std::uint8_t*>(buf);
  for (std::size_t i = 0; i < take; ++i) {
    dst[i] = bytes_.front();
    bytes_.pop_front();
  }
  return take;
}

void ByteChannel::close() {
  MutexLock lock(mu_);
  closed_ = true;
  cv_.notify_all();
}

}  // namespace detail

namespace {

/// One endpoint of a duplex loopback pipe: reads from one channel,
/// writes the other.  Both endpoints share the channels; shutdown()
/// closes both so the peer sees EOF too (like a socket reset).
class LoopbackConnection final : public Connection {
 public:
  LoopbackConnection(std::shared_ptr<detail::ByteChannel> in,
                     std::shared_ptr<detail::ByteChannel> out)
      : in_(std::move(in)), out_(std::move(out)) {}

  ~LoopbackConnection() override { shutdown(); }

  bool send_all(const void* data, std::size_t n) override {
    return out_->write(data, n);
  }

  std::size_t recv_some(void* buf, std::size_t n) override {
    return in_->read(buf, n);
  }

  void shutdown() override {
    in_->close();
    out_->close();
  }

 private:
  std::shared_ptr<detail::ByteChannel> in_;
  std::shared_ptr<detail::ByteChannel> out_;
};

}  // namespace

struct LoopbackHub::State {
  Mutex mu;
  // Fully-wired server endpoints waiting for accept().
  std::deque<std::unique_ptr<Connection>> pending FINEHMM_GUARDED_BY(mu);
  bool closed FINEHMM_GUARDED_BY(mu) = false;
  bool listener_taken FINEHMM_GUARDED_BY(mu) = false;

  CondVar cv;
};

namespace {

class LoopbackListener final : public Listener {
 public:
  explicit LoopbackListener(std::shared_ptr<LoopbackHub::State> state)
      : state_(std::move(state)) {}

  ~LoopbackListener() override { close(); }

  std::unique_ptr<Connection> accept() override {
    MutexLock lock(state_->mu);
    while (state_->pending.empty() && !state_->closed)
      state_->cv.wait(state_->mu);
    if (state_->pending.empty()) return nullptr;
    std::unique_ptr<Connection> conn = std::move(state_->pending.front());
    state_->pending.pop_front();
    return conn;
  }

  void close() override {
    MutexLock lock(state_->mu);
    state_->closed = true;
    state_->cv.notify_all();
  }

 private:
  std::shared_ptr<LoopbackHub::State> state_;
};

}  // namespace

LoopbackHub::LoopbackHub() : state_(std::make_shared<State>()) {}

LoopbackHub::~LoopbackHub() {
  MutexLock lock(state_->mu);
  state_->closed = true;
  state_->cv.notify_all();
}

std::unique_ptr<Listener> LoopbackHub::listener() {
  {
    MutexLock lock(state_->mu);
    FH_REQUIRE(!state_->listener_taken, "loopback listener already taken");
    state_->listener_taken = true;
  }
  return std::make_unique<LoopbackListener>(state_);
}

std::unique_ptr<Connection> LoopbackHub::connect() {
  auto c2s = std::make_shared<detail::ByteChannel>();  // client -> server
  auto s2c = std::make_shared<detail::ByteChannel>();  // server -> client
  auto server_end = std::make_unique<LoopbackConnection>(c2s, s2c);
  auto client_end = std::make_unique<LoopbackConnection>(s2c, c2s);
  {
    MutexLock lock(state_->mu);
    if (state_->closed) return nullptr;
    state_->pending.push_back(std::move(server_end));
    state_->cv.notify_one();
  }
  return client_end;
}

}  // namespace finehmm::server
