#include "server/transport.hpp"

#include <cstring>

namespace finehmm::server {

namespace {

/// Read exactly `n` bytes.  Returns n on success, the short count at
/// EOF, so the caller can tell "closed between frames" (0 read at the
/// header) from "closed mid-frame" (partial read = malformed).
std::size_t recv_exact(Connection& conn, void* buf, std::size_t n) {
  std::uint8_t* dst = static_cast<std::uint8_t*>(buf);
  std::size_t got = 0;
  while (got < n) {
    const std::size_t r = conn.recv_some(dst + got, n - got);
    if (r == 0) break;
    got += r;
  }
  return got;
}

}  // namespace

bool send_frame(Connection& conn, MsgType type, std::uint32_t request_id,
                const std::vector<std::uint8_t>& payload) {
  FH_REQUIRE(payload.size() <= kMaxPayload, "frame payload exceeds bound");
  FrameHeader h;
  h.type = static_cast<std::uint8_t>(type);
  h.request_id = request_id;
  h.payload_len = static_cast<std::uint32_t>(payload.size());

  // One contiguous buffer so header+payload hit the stream as a single
  // write: no interleaving risk even if a caller bypasses the server's
  // per-connection write mutex.
  std::vector<std::uint8_t> wire(kFrameHeaderSize + payload.size());
  encode_header(h, wire.data());
  if (!payload.empty())
    std::memcpy(wire.data() + kFrameHeaderSize, payload.data(),
                payload.size());
  return conn.send_all(wire.data(), wire.size());
}

RecvStatus recv_frame(Connection& conn, Frame& out) {
  std::uint8_t hdr[kFrameHeaderSize];
  const std::size_t got = recv_exact(conn, hdr, kFrameHeaderSize);
  if (got == 0) return RecvStatus::kEof;          // clean close between frames
  if (got < kFrameHeaderSize) return RecvStatus::kMalformed;  // torn header

  try {
    out.header = decode_header(hdr);
  } catch (const ProtocolError&) {
    return RecvStatus::kMalformed;  // bad version or oversized length
  }

  out.payload.resize(out.header.payload_len);
  if (out.header.payload_len > 0 &&
      recv_exact(conn, out.payload.data(), out.payload.size()) !=
          out.payload.size())
    return RecvStatus::kMalformed;  // stream died mid-payload
  return RecvStatus::kFrame;
}

}  // namespace finehmm::server
