#include "server/tcp.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define FINEHMM_HAVE_POSIX_SOCKETS 1
#else
#define FINEHMM_HAVE_POSIX_SOCKETS 0
#endif

#if FINEHMM_HAVE_POSIX_SOCKETS
#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstring>
#endif

namespace finehmm::server {

#if FINEHMM_HAVE_POSIX_SOCKETS

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw IoError(what + ": " + std::strerror(errno));
}

class TcpConnection final : public Connection {
 public:
  explicit TcpConnection(int fd) : fd_(fd) {
    // Request/response frames are small; Nagle only adds latency here.
    int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  }

  ~TcpConnection() override {
    if (fd_ >= 0) ::close(fd_);
  }

  bool send_all(const void* data, std::size_t n) override {
    const std::uint8_t* p = static_cast<const std::uint8_t*>(data);
    std::size_t sent = 0;
    while (sent < n) {
      // MSG_NOSIGNAL: a dead peer yields EPIPE, not a process-killing
      // SIGPIPE, so the daemon survives clients vanishing mid-reply.
      const ssize_t r = ::send(fd_, p + sent, n - sent, MSG_NOSIGNAL);
      if (r < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      sent += static_cast<std::size_t>(r);
    }
    return true;
  }

  std::size_t recv_some(void* buf, std::size_t n) override {
    for (;;) {
      const ssize_t r = ::recv(fd_, buf, n, 0);
      if (r < 0) {
        if (errno == EINTR) continue;
        return 0;  // error == EOF for the framing layer
      }
      return static_cast<std::size_t>(r);
    }
  }

  void shutdown() override { ::shutdown(fd_, SHUT_RDWR); }

 private:
  int fd_;
};

}  // namespace

TcpListener::TcpListener(const std::string& host, std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw_errno("socket");

  int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd_);
    fd_ = -1;
    throw Error("tcp listen: bad IPv4 address '" + host + "'");
  }
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    const int e = errno;
    ::close(fd_);
    fd_ = -1;
    errno = e;
    throw_errno("bind " + host + ":" + std::to_string(port));
  }
  if (::listen(fd_, 64) < 0) {
    const int e = errno;
    ::close(fd_);
    fd_ = -1;
    errno = e;
    throw_errno("listen");
  }

  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) == 0)
    port_ = ntohs(bound.sin_port);
}

TcpListener::~TcpListener() { close(); }

std::unique_ptr<Connection> TcpListener::accept() {
  for (;;) {
    const int client = ::accept(fd_.load(std::memory_order_acquire),
                                nullptr, nullptr);
    if (client >= 0) return std::make_unique<TcpConnection>(client);
    if (errno == EINTR) continue;
    return nullptr;  // listener closed (EBADF) or fatal — accept loop exits
  }
}

void TcpListener::close() {
  // Claim the fd exactly once, even if the drain thread and the
  // destructor both get here.
  const int fd = fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) {
    // shutdown() unblocks a thread parked in accept(); close() alone
    // does not reliably do that on Linux.
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
}

std::unique_ptr<Connection> tcp_connect(const std::string& host,
                                        std::uint16_t port) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const int rc =
      ::getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints, &res);
  if (rc != 0)
    throw IoError("resolve '" + host + "': " + ::gai_strerror(rc));

  int fd = -1;
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(res);
  if (fd < 0)
    throw IoError("connect " + host + ":" + std::to_string(port) + ": " +
                std::strerror(errno));
  return std::make_unique<TcpConnection>(fd);
}

#else  // !FINEHMM_HAVE_POSIX_SOCKETS

TcpListener::TcpListener(const std::string&, std::uint16_t) {
  throw Error("TCP transport requires POSIX sockets on this platform");
}
TcpListener::~TcpListener() = default;
std::unique_ptr<Connection> TcpListener::accept() { return nullptr; }
void TcpListener::close() {}

std::unique_ptr<Connection> tcp_connect(const std::string&, std::uint16_t) {
  throw Error("TCP transport requires POSIX sockets on this platform");
}

#endif

}  // namespace finehmm::server
