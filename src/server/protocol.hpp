// finehmmd wire protocol: framed, length-prefixed, little-endian binary.
//
// The daemon's analog of HMMER's hmmpgmd protocol, specified in
// docs/server.md.  Every message is one frame:
//
//   u8 version | u8 type | u32 request_id | u32 payload_len | payload
//
// The 10-byte header is fixed; payload_len is bounded by kMaxPayload so
// a malformed or hostile length can never drive an allocation.  Floats
// and doubles travel as IEEE-754 bit patterns (u32/u64), never as text,
// so hits round-trip bit-identically — the loopback integration test
// asserts remote == local scores with operator==, not a tolerance.
//
// Encoding/decoding never trusts the peer: every read is bounds-checked
// and a malformed payload raises ProtocolError, which the server answers
// with an ERROR frame (kBadRequest) instead of tearing down.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "pipeline/pipeline.hpp"
#include "util/error.hpp"

namespace finehmm::server {

inline constexpr std::uint8_t kProtocolVersion = 1;
/// Application-level wire revision, carried in the PING/PONG handshake
/// (PingInfo).  The frame-header version byte pins the *framing* layer
/// and stays at 1; this revision pins the *payload* encodings, which
/// gained optional fields (z_override, result flags) for the cluster
/// layer.  Peers that decode revision-2 payloads with revision-1 code
/// would misparse silently, so the handshake rejects mismatches with a
/// structured kVersionMismatch ERROR instead (docs/cluster.md).
inline constexpr std::uint16_t kWireRevision = 2;
inline constexpr std::size_t kFrameHeaderSize = 10;
/// Hard payload bound: a model blob is a few MB at most; anything larger
/// is a corrupt or hostile frame.
inline constexpr std::size_t kMaxPayload = std::size_t{64} << 20;

/// Raised when a peer's bytes do not parse; the connection survives (the
/// framing layer already consumed the whole payload).
class ProtocolError : public Error {
 public:
  explicit ProtocolError(const std::string& what) : Error(what) {}
};

enum class MsgType : std::uint8_t {
  kPing = 1,         // client -> server, PingInfo payload (empty = legacy)
  kPong = 2,         // server -> client, PingInfo payload (empty = legacy)
  kSearch = 3,       // client -> server, SearchRequest payload
  kResult = 4,       // server -> client, SearchResultWire payload
  kError = 5,        // server -> client, ErrorInfo payload
  kOverload = 6,     // server -> client, OverloadInfo payload (shed)
  kStats = 7,        // client -> server, empty payload
  kStatsResult = 8,  // server -> client, JSON text payload
  kScan = 9,         // client -> server, ScanRequest payload
  kScanResult = 10,  // server -> client, ScanResultWire payload
};

/// Machine-readable reason codes carried by kError frames.
enum class ErrorCode : std::uint16_t {
  kBadRequest = 1,       // payload failed to decode
  kUnknownDatabase = 2,  // db_id names no resident database
  kUnknownModel = 3,     // pressed-model reference not in any library
  kDeadlineExpired = 4,  // request sat queued past its deadline
  kShuttingDown = 5,     // daemon is draining; retry elsewhere
  kInternal = 6,         // scan failed server-side
  kVersionMismatch = 7,  // peer's wire revision is incompatible (PingInfo)
};

/// What a node is, carried in the PING/PONG handshake so a coordinator
/// can refuse to scatter onto another coordinator (or vice versa) and so
/// operators can see topology from any client.
enum class NodeRole : std::uint8_t {
  kStandalone = 0,   // a plain finehmmd
  kShard = 1,        // a finehmmd serving one shard of a sharded database
  kCoordinator = 2,  // a finehmm_clusterd scatter-gather front end
};

/// PING/PONG payload.  An empty payload decodes as a revision-1 legacy
/// peer (the pre-cluster protocol sent empty pings), which lets the
/// handshake detect old binaries and answer kVersionMismatch instead of
/// misdecoding their frames later.
struct PingInfo {
  std::uint16_t wire_revision = kWireRevision;
  NodeRole role = NodeRole::kStandalone;
  std::uint32_t shard_id = 0;  // meaningful for kShard only
};

std::vector<std::uint8_t> encode_ping(const PingInfo& info);
PingInfo decode_ping(const std::vector<std::uint8_t>& payload);

struct FrameHeader {
  std::uint8_t version = kProtocolVersion;
  std::uint8_t type = 0;
  std::uint32_t request_id = 0;
  std::uint32_t payload_len = 0;
};

/// One decoded frame (header + owned payload bytes).
struct Frame {
  FrameHeader header;
  std::vector<std::uint8_t> payload;
  MsgType type() const { return static_cast<MsgType>(header.type); }
};

void encode_header(const FrameHeader& h, std::uint8_t out[kFrameHeaderSize]);
/// Parses and validates a header; throws ProtocolError on a bad version
/// or an oversized payload length.
FrameHeader decode_header(const std::uint8_t in[kFrameHeaderSize]);

/// How the request names its query model.
enum class ModelRefKind : std::uint8_t {
  kInline = 0,   // payload carries a binary profile blob (hmm/binary_io)
  kPressed = 1,  // payload carries a model name resolved in the daemon's
                 // loaded .fhpdb libraries
};

struct SearchRequest {
  std::uint32_t db_id = 0;
  ModelRefKind model_kind = ModelRefKind::kInline;
  double evalue = 10.0;          // report threshold
  std::uint32_t deadline_ms = 0; // 0 = no deadline
  /// Effective database size Z for E-value computation; 0 = use the
  /// resident database's own sequence count.  A cluster coordinator sets
  /// this to the cluster-total sequence count so every shard scores
  /// against the same Z and the merged E-values are bit-identical to an
  /// unsharded scan (docs/cluster.md).  Encoded behind a flags bit, so a
  /// zero override leaves the revision-1 byte stream unchanged.
  std::uint64_t z_override = 0;
  std::string model_name;        // kPressed only
  std::vector<std::uint8_t> model_blob;  // kInline only
};

std::vector<std::uint8_t> encode_search_request(const SearchRequest& req);
SearchRequest decode_search_request(const std::vector<std::uint8_t>& payload);

/// The result frame: enough to reproduce hmmsearch_tool's report and
/// tblout output byte for byte on the client (pipeline/report.hpp takes
/// the db summary + stage stats + hits; alignments/domains are not
/// carried — docs/server.md).
struct SearchResultWire {
  /// Server-assigned 64-bit trace id (nonzero once admitted): quote it
  /// when asking the operator "where did my request's time go" — STATS
  /// v2's recent_traces and the slow-request log both key on it.
  std::uint64_t trace_id = 0;
  std::uint64_t db_sequences = 0;
  std::uint64_t db_residues = 0;
  pipeline::StageStats ssv, msv, vit, fwd, bwd;  // seconds not carried (= 0)
  std::vector<pipeline::Hit> hits;          // alignments/domains empty
  /// Result flags (kResultDegraded).  Encoded as an optional trailing
  /// byte only when nonzero, so a clean result's bytes are unchanged
  /// from wire revision 1.
  std::uint8_t flags = 0;
};

/// SearchResultWire/ScanResultWire flags bits.
inline constexpr std::uint8_t kResultDegraded = 0x1;  // >=1 shard missing

std::vector<std::uint8_t> encode_search_result(const SearchResultWire& res);
SearchResultWire decode_search_result(const std::vector<std::uint8_t>& payload);

/// The SCAN verb: score one resident database against EVERY model in the
/// daemon's loaded .fhpdb libraries in a single fused many-model sweep
/// (HmmSearch::run_cpu_fused; docs/multi_model.md).  Concurrent SCANs of
/// the same database coalesce into one sweep, like SEARCHes do.  The
/// resident library scans at the default report threshold (E = 10), so a
/// request's evalue can only tighten the hit lists, never widen them.
struct ScanRequest {
  std::uint32_t db_id = 0;
  double evalue = 10.0;          // report threshold (<= the resident 10.0)
  std::uint32_t deadline_ms = 0; // 0 = no deadline
  /// Effective database size Z for E-value computation; 0 = shard-local.
  /// The resident sweep scores at the shard-local Z; when set, the
  /// daemon recomputes each reported hit's E-value from its P-value as
  /// p * z_override before applying the request threshold — bit-identical
  /// to scoring against Z directly, since both are the same one multiply
  /// (docs/cluster.md).  Encoded behind a flags bit like SearchRequest's.
  std::uint64_t z_override = 0;
};

std::vector<std::uint8_t> encode_scan_request(const ScanRequest& req);
ScanRequest decode_scan_request(const std::vector<std::uint8_t>& payload);

/// Per-model slice of a SCAN result, in library load order.
struct ScanModelHits {
  std::string model_name;
  std::vector<pipeline::Hit> hits;  // sorted by E-value, like a SEARCH
};

struct ScanResultWire {
  std::uint64_t trace_id = 0;      // server-assigned (see SearchResultWire)
  std::uint64_t db_sequences = 0;
  std::uint64_t db_residues = 0;
  std::uint64_t fuse_groups = 0;   // fused groups in the sweep's plan
  std::uint64_t fused_models = 0;  // models scored via fused groups
  double lane_occupancy = 0.0;     // cell-weighted mean, 0..1
  std::vector<ScanModelHits> models;
  std::uint8_t flags = 0;          // kResultDegraded; optional trailing byte
};

std::vector<std::uint8_t> encode_scan_result(const ScanResultWire& res);
ScanResultWire decode_scan_result(const std::vector<std::uint8_t>& payload);

struct ErrorInfo {
  ErrorCode code = ErrorCode::kInternal;
  std::string message;
};

std::vector<std::uint8_t> encode_error(const ErrorInfo& err);
ErrorInfo decode_error(const std::vector<std::uint8_t>& payload);

/// Carried by kOverload so clients can size their backoff.
struct OverloadInfo {
  std::uint32_t queue_capacity = 0;
};

std::vector<std::uint8_t> encode_overload(const OverloadInfo& info);
OverloadInfo decode_overload(const std::vector<std::uint8_t>& payload);

}  // namespace finehmm::server
