// POSIX TCP implementation of the transport contract — the path
// finehmmd and finehmm_client actually ship over.  On non-POSIX builds
// these entry points throw Error so the rest of the library (and the
// loopback-based tests) stay portable.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "server/transport.hpp"

namespace finehmm::server {

class TcpListener final : public Listener {
 public:
  /// Bind + listen on `host:port`.  Pass port 0 to let the kernel pick;
  /// port() reports the bound port either way (how the CI smoke test
  /// avoids collisions).
  TcpListener(const std::string& host, std::uint16_t port);
  ~TcpListener() override;

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  std::unique_ptr<Connection> accept() override;
  void close() override;

  std::uint16_t port() const { return port_; }

 private:
  // close() runs on the drain thread while accept() blocks on the fd
  // from the serve thread; the exchange in close() is what keeps that
  // cross-thread teardown race-free (and close() idempotent).  Lock-free
  // by design — the atomic IS the synchronization, so there is no
  // capability to annotate here (docs/static_analysis.md §lock-free).
  std::atomic<int> fd_{-1};
  std::uint16_t port_ = 0;
};

/// Dial `host:port`; throws Error on failure.
std::unique_ptr<Connection> tcp_connect(const std::string& host,
                                        std::uint16_t port);

}  // namespace finehmm::server
