#include "server/http.hpp"

#include <sstream>

namespace finehmm::server {

namespace {

const char* status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 503: return "Service Unavailable";
    default: return "Error";
  }
}

// Read until the end of the request head (CRLFCRLF) or a sane cap.
// Request bodies are ignored — every route is a GET.
bool read_request_head(Connection& conn, std::string& head) {
  static constexpr std::size_t kMaxHead = 8 * 1024;
  char buf[512];
  while (head.size() < kMaxHead) {
    if (head.find("\r\n\r\n") != std::string::npos ||
        head.find("\n\n") != std::string::npos)
      return true;
    const std::size_t n = conn.recv_some(buf, sizeof buf);
    if (n == 0) return head.find('\n') != std::string::npos;
    head.append(buf, n);
  }
  return true;
}

}  // namespace

void http_serve_connection(Connection& conn, const HttpHandler& handler) {
  std::string head;
  if (!read_request_head(conn, head)) return;

  // Request line: METHOD SP path SP version.
  std::istringstream line(head.substr(0, head.find('\n')));
  std::string method, target;
  line >> method >> target;

  HttpResponse resp;
  if (method != "GET") {
    resp.status = 405;
    resp.body = "only GET is served here\n";
  } else {
    // Strip any query string; routes don't take parameters.
    const std::size_t q = target.find('?');
    if (q != std::string::npos) target.resize(q);
    if (target.empty()) target.push_back('/');
    resp = handler(target);
  }

  std::ostringstream out;
  out << "HTTP/1.1 " << resp.status << " " << status_text(resp.status)
      << "\r\n"
      << "Content-Type: " << resp.content_type << "\r\n"
      << "Content-Length: " << resp.body.size() << "\r\n"
      << "Connection: close\r\n\r\n"
      << resp.body;
  const std::string bytes = out.str();
  conn.send_all(bytes.data(), bytes.size());
  conn.shutdown();
}

HttpEndpoint::HttpEndpoint(std::unique_ptr<Listener> listener,
                           HttpHandler handler)
    : listener_(std::move(listener)), handler_(std::move(handler)) {
  thread_ = std::thread([this] { serve_loop(); });
}

HttpEndpoint::~HttpEndpoint() { stop(); }

void HttpEndpoint::stop() {
  if (listener_) listener_->close();
  if (thread_.joinable()) thread_.join();
}

void HttpEndpoint::serve_loop() {
  // Serial: one scrape at a time.  accept() returns null once close()
  // ran, which is the only exit.
  for (;;) {
    std::unique_ptr<Connection> conn = listener_->accept();
    if (!conn) return;
    http_serve_connection(*conn, handler_);
  }
}

}  // namespace finehmm::server
