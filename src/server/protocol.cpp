#include "server/protocol.hpp"

#include <cstring>

namespace finehmm::server {

namespace {

// --- Little-endian cursor writers/readers -------------------------------
//
// The writer appends to a byte vector; the reader walks a span and
// refuses to read past its end (ProtocolError), so no peer-controlled
// length can overrun.

struct Writer {
  std::vector<std::uint8_t>& out;

  void u8(std::uint8_t v) { out.push_back(v); }
  void u16(std::uint16_t v) {
    out.push_back(static_cast<std::uint8_t>(v));
    out.push_back(static_cast<std::uint8_t>(v >> 8));
  }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i)
      out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i)
      out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void f32(float v) {
    std::uint32_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    u32(bits);
  }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }
  void str(const std::string& s) {
    FH_REQUIRE(s.size() <= kMaxPayload, "string too large for the wire");
    u32(static_cast<std::uint32_t>(s.size()));
    out.insert(out.end(), s.begin(), s.end());
  }
  void bytes(const std::vector<std::uint8_t>& b) {
    out.insert(out.end(), b.begin(), b.end());
  }
};

struct Reader {
  const std::uint8_t* p;
  std::size_t remaining;

  void need(std::size_t n) const {
    if (remaining < n)
      throw ProtocolError("truncated payload: need " + std::to_string(n) +
                          " bytes, have " + std::to_string(remaining));
  }
  std::uint8_t u8() {
    need(1);
    std::uint8_t v = *p;
    ++p;
    --remaining;
    return v;
  }
  std::uint16_t u16() {
    need(2);
    std::uint16_t v = static_cast<std::uint16_t>(p[0]) |
                      static_cast<std::uint16_t>(p[1]) << 8;
    p += 2;
    remaining -= 2;
    return v;
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    p += 4;
    remaining -= 4;
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    p += 8;
    remaining -= 8;
    return v;
  }
  float f32() {
    std::uint32_t bits = u32();
    float v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  double f64() {
    std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  std::string str() {
    const std::uint32_t len = u32();
    need(len);
    std::string s(reinterpret_cast<const char*>(p), len);
    p += len;
    remaining -= len;
    return s;
  }
  std::vector<std::uint8_t> rest() {
    std::vector<std::uint8_t> b(p, p + remaining);
    p += remaining;
    remaining = 0;
    return b;
  }
  void done() const {
    if (remaining != 0)
      throw ProtocolError("payload has " + std::to_string(remaining) +
                          " trailing bytes");
  }
};

Reader reader(const std::vector<std::uint8_t>& payload) {
  return Reader{payload.data(), payload.size()};
}

void write_stage(Writer& w, const pipeline::StageStats& s) {
  w.u64(s.n_in);
  w.u64(s.n_passed);
  w.f64(s.cells);
}

pipeline::StageStats read_stage(Reader& r) {
  pipeline::StageStats s;
  s.n_in = static_cast<std::size_t>(r.u64());
  s.n_passed = static_cast<std::size_t>(r.u64());
  s.cells = r.f64();
  return s;
}

// Request-payload flags bits (encoder writes a bit only when the field
// it gates is present, so legacy byte streams stay byte-identical).
constexpr std::uint8_t kReqFlagZOverride = 0x1;
constexpr std::uint32_t kScanFlagZOverride = 0x1;

}  // namespace

std::vector<std::uint8_t> encode_ping(const PingInfo& info) {
  std::vector<std::uint8_t> out;
  Writer w{out};
  w.u16(info.wire_revision);
  w.u8(static_cast<std::uint8_t>(info.role));
  w.u8(0);  // reserved
  w.u32(info.shard_id);
  return out;
}

PingInfo decode_ping(const std::vector<std::uint8_t>& payload) {
  PingInfo info;
  if (payload.empty()) {
    // Pre-cluster peers ping with an empty payload: legacy revision 1.
    info.wire_revision = 1;
    info.role = NodeRole::kStandalone;
    info.shard_id = 0;
    return info;
  }
  Reader r = reader(payload);
  info.wire_revision = r.u16();
  const std::uint8_t role = r.u8();
  if (role > static_cast<std::uint8_t>(NodeRole::kCoordinator))
    throw ProtocolError("unknown node role " + std::to_string(role));
  info.role = static_cast<NodeRole>(role);
  r.u8();  // reserved
  info.shard_id = r.u32();
  r.done();
  return info;
}

void encode_header(const FrameHeader& h, std::uint8_t out[kFrameHeaderSize]) {
  out[0] = h.version;
  out[1] = h.type;
  for (int i = 0; i < 4; ++i)
    out[2 + i] = static_cast<std::uint8_t>(h.request_id >> (8 * i));
  for (int i = 0; i < 4; ++i)
    out[6 + i] = static_cast<std::uint8_t>(h.payload_len >> (8 * i));
}

FrameHeader decode_header(const std::uint8_t in[kFrameHeaderSize]) {
  FrameHeader h;
  h.version = in[0];
  h.type = in[1];
  h.request_id = 0;
  h.payload_len = 0;
  for (int i = 0; i < 4; ++i)
    h.request_id |= static_cast<std::uint32_t>(in[2 + i]) << (8 * i);
  for (int i = 0; i < 4; ++i)
    h.payload_len |= static_cast<std::uint32_t>(in[6 + i]) << (8 * i);
  if (h.version != kProtocolVersion)
    throw ProtocolError("unsupported protocol version " +
                        std::to_string(h.version) + " (expected " +
                        std::to_string(kProtocolVersion) + ")");
  if (h.payload_len > kMaxPayload)
    throw ProtocolError("frame payload of " + std::to_string(h.payload_len) +
                        " bytes exceeds the " + std::to_string(kMaxPayload) +
                        "-byte bound");
  return h;
}

std::vector<std::uint8_t> encode_search_request(const SearchRequest& req) {
  std::vector<std::uint8_t> out;
  Writer w{out};
  w.u32(req.db_id);
  w.u8(static_cast<std::uint8_t>(req.model_kind));
  w.u8(req.z_override != 0 ? kReqFlagZOverride : 0);  // flags
  w.u16(0);  // reserved
  w.f64(req.evalue);
  w.u32(req.deadline_ms);
  if (req.z_override != 0) w.u64(req.z_override);
  if (req.model_kind == ModelRefKind::kPressed) {
    w.str(req.model_name);
  } else {
    w.bytes(req.model_blob);
  }
  return out;
}

SearchRequest decode_search_request(const std::vector<std::uint8_t>& payload) {
  Reader r = reader(payload);
  SearchRequest req;
  req.db_id = r.u32();
  const std::uint8_t kind = r.u8();
  if (kind > static_cast<std::uint8_t>(ModelRefKind::kPressed))
    throw ProtocolError("unknown model reference kind " + std::to_string(kind));
  req.model_kind = static_cast<ModelRefKind>(kind);
  const std::uint8_t flags = r.u8();
  if ((flags & ~kReqFlagZOverride) != 0)
    throw ProtocolError("unknown search-request flags " +
                        std::to_string(flags));
  r.u16();  // reserved
  req.evalue = r.f64();
  req.deadline_ms = r.u32();
  if ((flags & kReqFlagZOverride) != 0) {
    req.z_override = r.u64();
    if (req.z_override == 0)
      throw ProtocolError("z_override flag set but Z is zero");
  }
  if (req.model_kind == ModelRefKind::kPressed) {
    req.model_name = r.str();
    r.done();
    if (req.model_name.empty())
      throw ProtocolError("pressed-model reference has an empty name");
  } else {
    req.model_blob = r.rest();
    if (req.model_blob.empty())
      throw ProtocolError("inline model reference has an empty blob");
  }
  return req;
}

std::vector<std::uint8_t> encode_search_result(const SearchResultWire& res) {
  std::vector<std::uint8_t> out;
  Writer w{out};
  w.u64(res.trace_id);
  w.u64(res.db_sequences);
  w.u64(res.db_residues);
  write_stage(w, res.ssv);
  write_stage(w, res.msv);
  write_stage(w, res.vit);
  write_stage(w, res.fwd);
  write_stage(w, res.bwd);
  FH_REQUIRE(res.hits.size() <= 0xffffffffu, "too many hits for the wire");
  w.u32(static_cast<std::uint32_t>(res.hits.size()));
  for (const pipeline::Hit& h : res.hits) {
    w.u64(h.seq_index);
    w.str(h.name);
    w.f32(h.msv_bits);
    w.f32(h.vit_bits);
    w.f32(h.fwd_bits);
    w.f32(h.bias_bits);
    w.f64(h.pvalue);
    w.f64(h.evalue);
  }
  // Optional trailing flags byte: omitted when zero so an undegraded
  // result's bytes are unchanged from wire revision 1.
  if (res.flags != 0) w.u8(res.flags);
  return out;
}

SearchResultWire decode_search_result(
    const std::vector<std::uint8_t>& payload) {
  Reader r = reader(payload);
  SearchResultWire res;
  res.trace_id = r.u64();
  res.db_sequences = r.u64();
  res.db_residues = r.u64();
  res.ssv = read_stage(r);
  res.msv = read_stage(r);
  res.vit = read_stage(r);
  res.fwd = read_stage(r);
  res.bwd = read_stage(r);
  const std::uint32_t n_hits = r.u32();
  res.hits.reserve(std::min<std::size_t>(n_hits, 1024));
  for (std::uint32_t i = 0; i < n_hits; ++i) {
    pipeline::Hit h;
    h.seq_index = static_cast<std::size_t>(r.u64());
    h.name = r.str();
    h.msv_bits = r.f32();
    h.vit_bits = r.f32();
    h.fwd_bits = r.f32();
    h.bias_bits = r.f32();
    h.pvalue = r.f64();
    h.evalue = r.f64();
    res.hits.push_back(std::move(h));
  }
  if (r.remaining != 0) {
    res.flags = r.u8();
    if (res.flags == 0 || (res.flags & ~kResultDegraded) != 0)
      throw ProtocolError("unknown result flags " +
                          std::to_string(res.flags));
  }
  r.done();
  return res;
}

std::vector<std::uint8_t> encode_scan_request(const ScanRequest& req) {
  std::vector<std::uint8_t> out;
  Writer w{out};
  w.u32(req.db_id);
  w.u32(req.z_override != 0 ? kScanFlagZOverride : 0);  // flags
  w.f64(req.evalue);
  w.u32(req.deadline_ms);
  if (req.z_override != 0) w.u64(req.z_override);
  return out;
}

ScanRequest decode_scan_request(const std::vector<std::uint8_t>& payload) {
  Reader r = reader(payload);
  ScanRequest req;
  req.db_id = r.u32();
  const std::uint32_t flags = r.u32();
  if ((flags & ~kScanFlagZOverride) != 0)
    throw ProtocolError("unknown scan-request flags " + std::to_string(flags));
  req.evalue = r.f64();
  req.deadline_ms = r.u32();
  if ((flags & kScanFlagZOverride) != 0) {
    req.z_override = r.u64();
    if (req.z_override == 0)
      throw ProtocolError("z_override flag set but Z is zero");
  }
  r.done();
  return req;
}

namespace {

void write_hit(Writer& w, const pipeline::Hit& h) {
  w.u64(h.seq_index);
  w.str(h.name);
  w.f32(h.msv_bits);
  w.f32(h.vit_bits);
  w.f32(h.fwd_bits);
  w.f32(h.bias_bits);
  w.f64(h.pvalue);
  w.f64(h.evalue);
}

pipeline::Hit read_hit(Reader& r) {
  pipeline::Hit h;
  h.seq_index = static_cast<std::size_t>(r.u64());
  h.name = r.str();
  h.msv_bits = r.f32();
  h.vit_bits = r.f32();
  h.fwd_bits = r.f32();
  h.bias_bits = r.f32();
  h.pvalue = r.f64();
  h.evalue = r.f64();
  return h;
}

}  // namespace

std::vector<std::uint8_t> encode_scan_result(const ScanResultWire& res) {
  std::vector<std::uint8_t> out;
  Writer w{out};
  w.u64(res.trace_id);
  w.u64(res.db_sequences);
  w.u64(res.db_residues);
  w.u64(res.fuse_groups);
  w.u64(res.fused_models);
  w.f64(res.lane_occupancy);
  FH_REQUIRE(res.models.size() <= 0xffffffffu, "too many models for the wire");
  w.u32(static_cast<std::uint32_t>(res.models.size()));
  for (const ScanModelHits& m : res.models) {
    w.str(m.model_name);
    FH_REQUIRE(m.hits.size() <= 0xffffffffu, "too many hits for the wire");
    w.u32(static_cast<std::uint32_t>(m.hits.size()));
    for (const pipeline::Hit& h : m.hits) write_hit(w, h);
  }
  if (res.flags != 0) w.u8(res.flags);  // optional trailing flags byte
  return out;
}

ScanResultWire decode_scan_result(const std::vector<std::uint8_t>& payload) {
  Reader r = reader(payload);
  ScanResultWire res;
  res.trace_id = r.u64();
  res.db_sequences = r.u64();
  res.db_residues = r.u64();
  res.fuse_groups = r.u64();
  res.fused_models = r.u64();
  res.lane_occupancy = r.f64();
  const std::uint32_t n_models = r.u32();
  res.models.reserve(std::min<std::size_t>(n_models, 1024));
  for (std::uint32_t m = 0; m < n_models; ++m) {
    ScanModelHits mh;
    mh.model_name = r.str();
    const std::uint32_t n_hits = r.u32();
    mh.hits.reserve(std::min<std::size_t>(n_hits, 1024));
    for (std::uint32_t i = 0; i < n_hits; ++i) mh.hits.push_back(read_hit(r));
    res.models.push_back(std::move(mh));
  }
  if (r.remaining != 0) {
    res.flags = r.u8();
    if (res.flags == 0 || (res.flags & ~kResultDegraded) != 0)
      throw ProtocolError("unknown result flags " +
                          std::to_string(res.flags));
  }
  r.done();
  return res;
}

std::vector<std::uint8_t> encode_error(const ErrorInfo& err) {
  std::vector<std::uint8_t> out;
  Writer w{out};
  w.u16(static_cast<std::uint16_t>(err.code));
  w.str(err.message);
  return out;
}

ErrorInfo decode_error(const std::vector<std::uint8_t>& payload) {
  Reader r = reader(payload);
  ErrorInfo err;
  err.code = static_cast<ErrorCode>(r.u16());
  err.message = r.str();
  r.done();
  return err;
}

std::vector<std::uint8_t> encode_overload(const OverloadInfo& info) {
  std::vector<std::uint8_t> out;
  Writer w{out};
  w.u32(info.queue_capacity);
  return out;
}

OverloadInfo decode_overload(const std::vector<std::uint8_t>& payload) {
  Reader r = reader(payload);
  OverloadInfo info;
  info.queue_capacity = r.u32();
  r.done();
  return info;
}

}  // namespace finehmm::server
