#include "server/client.hpp"

#include <sstream>
#include <utility>

#include "hmm/binary_io.hpp"

namespace finehmm::server {

BlockingClient::BlockingClient(std::unique_ptr<Connection> conn)
    : conn_(std::move(conn)) {
  FH_REQUIRE(conn_ != nullptr, "client needs a live connection");
}

BlockingClient::~BlockingClient() { conn_->shutdown(); }

RemoteResult BlockingClient::search(std::uint32_t db_id,
                                    const hmm::Plan7Hmm& model,
                                    const stats::ModelStats* model_stats,
                                    double evalue, std::uint32_t deadline_ms) {
  std::ostringstream blob;
  hmm::write_hmm_binary(blob, model, model_stats);
  const std::string bytes = blob.str();
  return search_blob(db_id,
                     std::vector<std::uint8_t>(bytes.begin(), bytes.end()),
                     evalue, deadline_ms);
}

RemoteResult BlockingClient::search_pressed(std::uint32_t db_id,
                                            const std::string& model_name,
                                            double evalue,
                                            std::uint32_t deadline_ms,
                                            std::uint64_t z_override) {
  SearchRequest req;
  req.db_id = db_id;
  req.model_kind = ModelRefKind::kPressed;
  req.model_name = model_name;
  req.evalue = evalue;
  req.deadline_ms = deadline_ms;
  req.z_override = z_override;
  return roundtrip(req);
}

RemoteResult BlockingClient::search_blob(std::uint32_t db_id,
                                         std::vector<std::uint8_t> blob,
                                         double evalue,
                                         std::uint32_t deadline_ms,
                                         std::uint64_t z_override) {
  SearchRequest req;
  req.db_id = db_id;
  req.model_kind = ModelRefKind::kInline;
  req.model_blob = std::move(blob);
  req.evalue = evalue;
  req.deadline_ms = deadline_ms;
  req.z_override = z_override;
  return roundtrip(req);
}

RemoteResult BlockingClient::roundtrip(const SearchRequest& req) {
  RemoteResult out;
  const std::uint32_t id = next_id_++;
  if (!send_frame(*conn_, MsgType::kSearch, id, encode_search_request(req)))
    return out;  // kDisconnected

  Frame reply;
  if (recv_frame(*conn_, reply) != RecvStatus::kFrame) return out;
  try {
    switch (reply.type()) {
      case MsgType::kResult:
        out.result = decode_search_result(reply.payload);
        out.status = ClientStatus::kOk;
        break;
      case MsgType::kError:
        out.error = decode_error(reply.payload);
        out.status = ClientStatus::kError;
        break;
      case MsgType::kOverload:
        out.overload = decode_overload(reply.payload);
        out.status = ClientStatus::kOverloaded;
        break;
      default:
        out.status = ClientStatus::kDisconnected;
        break;
    }
  } catch (const ProtocolError&) {
    out.status = ClientStatus::kDisconnected;
  }
  return out;
}

RemoteScanResult BlockingClient::scan(std::uint32_t db_id, double evalue,
                                      std::uint32_t deadline_ms,
                                      std::uint64_t z_override) {
  ScanRequest req;
  req.db_id = db_id;
  req.evalue = evalue;
  req.deadline_ms = deadline_ms;
  req.z_override = z_override;

  RemoteScanResult out;
  const std::uint32_t id = next_id_++;
  if (!send_frame(*conn_, MsgType::kScan, id, encode_scan_request(req)))
    return out;  // kDisconnected

  Frame reply;
  if (recv_frame(*conn_, reply) != RecvStatus::kFrame) return out;
  try {
    switch (reply.type()) {
      case MsgType::kScanResult:
        out.result = decode_scan_result(reply.payload);
        out.status = ClientStatus::kOk;
        break;
      case MsgType::kError:
        out.error = decode_error(reply.payload);
        out.status = ClientStatus::kError;
        break;
      case MsgType::kOverload:
        out.overload = decode_overload(reply.payload);
        out.status = ClientStatus::kOverloaded;
        break;
      default:
        out.status = ClientStatus::kDisconnected;
        break;
    }
  } catch (const ProtocolError&) {
    out.status = ClientStatus::kDisconnected;
  }
  return out;
}

bool BlockingClient::ping() { return ping_info().has_value(); }

std::optional<PingInfo> BlockingClient::ping_info() {
  const std::uint32_t id = next_id_++;
  if (!send_frame(*conn_, MsgType::kPing, id, encode_ping(PingInfo{})))
    return std::nullopt;
  Frame reply;
  if (recv_frame(*conn_, reply) != RecvStatus::kFrame ||
      reply.type() != MsgType::kPong)
    return std::nullopt;
  try {
    return decode_ping(reply.payload);
  } catch (const ProtocolError&) {
    return std::nullopt;
  }
}

std::optional<std::string> BlockingClient::stats_json() {
  const std::uint32_t id = next_id_++;
  if (!send_frame(*conn_, MsgType::kStats, id, {})) return std::nullopt;
  Frame reply;
  if (recv_frame(*conn_, reply) != RecvStatus::kFrame ||
      reply.type() != MsgType::kStatsResult)
    return std::nullopt;
  return std::string(reply.payload.begin(), reply.payload.end());
}

}  // namespace finehmm::server
