// In-process loopback transport: the Connection/Listener contract over
// mutex+condvar byte channels instead of sockets.
//
// This is what makes the daemon unit-testable: tests/test_server.cpp
// stands up a full SearchServer, connects N clients, and exercises
// coalescing, overload shedding, deadlines and drain — all inside one
// process, deterministic, and clean under tsan (which cannot follow
// bytes through a kernel socket but follows these channels natively).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "server/transport.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace finehmm::server {

namespace detail {

/// One direction of a duplex pipe: an unbounded byte queue with
/// blocking reads.  Closing either end wakes blocked readers.
class ByteChannel {
 public:
  bool write(const void* data, std::size_t n) FINEHMM_EXCLUDES(mu_);
  std::size_t read(void* buf, std::size_t n) FINEHMM_EXCLUDES(mu_);
  void close() FINEHMM_EXCLUDES(mu_);

 private:
  Mutex mu_;
  std::deque<std::uint8_t> bytes_ FINEHMM_GUARDED_BY(mu_);
  bool closed_ FINEHMM_GUARDED_BY(mu_) = false;

  CondVar cv_;
};

}  // namespace detail

/// Rendezvous point for loopback connections.  The server side calls
/// listener() once and blocks in accept(); clients call connect().
class LoopbackHub {
 public:
  LoopbackHub();
  ~LoopbackHub();

  /// The server-side listener.  Call at most once.
  std::unique_ptr<Listener> listener();

  /// Dial the hub: blocks until the listener accepts (or returns null if
  /// the listener is closed).
  std::unique_ptr<Connection> connect();

  /// Shared rendezvous state (public so the .cpp-local listener class
  /// can hold it; not part of the API).
  struct State;

 private:
  std::shared_ptr<State> state_;
};

}  // namespace finehmm::server
