// Blocking client for the finehmmd protocol.
//
// One request in flight at a time, over any Connection (loopback in
// tests, TCP in tools/finehmm_client and hmmsearch_tool --connect).
// Floats arrive as the exact bit patterns the daemon computed, so a
// RemoteResult renders the same report a local run_cpu would.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "hmm/plan7.hpp"
#include "server/protocol.hpp"
#include "server/transport.hpp"
#include "stats/calibrate.hpp"

namespace finehmm::server {

enum class ClientStatus {
  kOk,            // result holds the hits
  kError,         // daemon answered with an ErrorInfo (see error)
  kOverloaded,    // daemon shed the request at admission (see overload)
  kDisconnected,  // stream died or answered with unframeable bytes
};

struct RemoteResult {
  ClientStatus status = ClientStatus::kDisconnected;
  SearchResultWire result;  // kOk only
  ErrorInfo error;          // kError only
  OverloadInfo overload;    // kOverloaded only
};

struct RemoteScanResult {
  ClientStatus status = ClientStatus::kDisconnected;
  ScanResultWire result;  // kOk only
  ErrorInfo error;        // kError only
  OverloadInfo overload;  // kOverloaded only
};

class BlockingClient {
 public:
  explicit BlockingClient(std::unique_ptr<Connection> conn);
  ~BlockingClient();

  BlockingClient(const BlockingClient&) = delete;
  BlockingClient& operator=(const BlockingClient&) = delete;

  /// Search with an inline model: the profile (and its calibration, when
  /// given — strongly recommended, it spares the daemon a deterministic
  /// recalibration) is serialized losslessly into the request.
  RemoteResult search(std::uint32_t db_id, const hmm::Plan7Hmm& model,
                      const stats::ModelStats* model_stats,
                      double evalue = 10.0, std::uint32_t deadline_ms = 0);

  /// Search referencing a model pressed into the daemon's libraries.
  /// z_override != 0 makes the daemon score E-values against that
  /// effective database size instead of its resident one (the cluster
  /// coordinator passes the cluster-total Z; docs/cluster.md).
  RemoteResult search_pressed(std::uint32_t db_id,
                              const std::string& model_name,
                              double evalue = 10.0,
                              std::uint32_t deadline_ms = 0,
                              std::uint64_t z_override = 0);

  /// Raw variant: a pre-serialized hmm/binary_io blob.
  RemoteResult search_blob(std::uint32_t db_id,
                           std::vector<std::uint8_t> blob,
                           double evalue = 10.0,
                           std::uint32_t deadline_ms = 0,
                           std::uint64_t z_override = 0);

  /// The SCAN verb: score resident database db_id against every model in
  /// the daemon's loaded .fhpdb libraries (one fused many-model sweep
  /// server-side; hits bit-identical to per-model SEARCHes).  The evalue
  /// can only tighten the daemon's resident E <= 10 threshold.
  RemoteScanResult scan(std::uint32_t db_id, double evalue = 10.0,
                        std::uint32_t deadline_ms = 0,
                        std::uint64_t z_override = 0);

  /// PING/PONG health check (sends this build's wire revision).
  bool ping();

  /// PING returning the peer's handshake metadata (wire revision, node
  /// role, shard id) — nullopt when the stream died or the peer rejected
  /// the handshake (e.g. kVersionMismatch).  The cluster layer uses this
  /// to verify each endpoint really is the shard it expects.
  std::optional<PingInfo> ping_info();

  /// The STATS verb: the daemon's "finehmm.server_stats.v2" JSON
  /// (counters + latency histogram quantiles + recent request traces),
  /// or nullopt when the stream died.
  std::optional<std::string> stats_json();

  /// The underlying stream (tests use it to inject malformed bytes and
  /// to sever mid-request).
  Connection& connection() { return *conn_; }

 private:
  RemoteResult roundtrip(const SearchRequest& req);

  std::unique_ptr<Connection> conn_;
  std::uint32_t next_id_ = 1;
};

}  // namespace finehmm::server
