#include "server/server.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

#include "cpu/simd_backend/backend.hpp"
#include "cpu/simd_backend/simd_tier.hpp"
#include "obs/log.hpp"
#include "stats/distributions.hpp"

namespace finehmm::server {

namespace {

using SteadyClock = std::chrono::steady_clock;

double seconds_between(SteadyClock::time_point a, SteadyClock::time_point b) {
  return std::chrono::duration_cast<std::chrono::duration<double>>(b - a)
      .count();
}

std::uint64_t ns_between(SteadyClock::time_point a, SteadyClock::time_point b) {
  if (b <= a) return 0;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count());
}

/// Reconstruct a search from an inline binary profile blob.  Stored
/// calibration is used when present; otherwise the model is calibrated
/// here with the default deterministic options — identical to what a
/// local HmmSearch construction would compute, so remote hits stay
/// bit-identical to local ones either way.
std::shared_ptr<pipeline::HmmSearch> search_from_blob(
    const std::vector<std::uint8_t>& blob, const pipeline::Thresholds& thr) {
  std::istringstream in(
      std::string(reinterpret_cast<const char*>(blob.data()), blob.size()));
  std::optional<stats::ModelStats> model_stats;
  hmm::Plan7Hmm model = hmm::read_hmm_binary(in, &model_stats);
  if (model_stats)
    return std::make_shared<pipeline::HmmSearch>(model, *model_stats, thr);
  return std::make_shared<pipeline::HmmSearch>(model, thr);
}

}  // namespace

SearchServer::SearchServer(ServerConfig cfg)
    : cfg_(cfg),
      pool_(cfg.scan_threads),
      recorder_(obs::RecorderConfig{/*tracing=*/cfg.tracing,
                                    /*max_events_per_thread=*/1 << 15,
                                    /*enabled=*/true}),
      queue_(cfg.admission_capacity == 0 ? 1 : cfg.admission_capacity),
      trace_ring_(cfg.trace_ring_capacity) {
  paused_ = cfg.start_paused;
  telemetry_.engine = "server";
  telemetry_.threads = pool_.workers();
}

SearchServer::~SearchServer() {
  // serve() joins everything before returning; nothing to reap here
  // unless it was never called.
  queue_.close();
}

std::uint32_t SearchServer::add_database(const std::string& fsqdb_path) {
  Db db;
  db.mapped = std::make_unique<bio::MappedSeqDb>(fsqdb_path);
  db.sequences = db.mapped->size();
  db.residues = db.mapped->total_residues();
  const bio::MappedSeqDb& m = *db.mapped;
  db.schedule = pipeline::make_length_schedule(
      m.size(), [&m](std::size_t i) { return std::size_t{m.length(i)}; });
  dbs_.push_back(std::move(db));
  return static_cast<std::uint32_t>(dbs_.size() - 1);
}

std::uint32_t SearchServer::add_database(bio::SequenceDatabase heap_db) {
  Db db;
  db.heap = std::make_unique<bio::SequenceDatabase>(std::move(heap_db));
  db.sequences = db.heap->size();
  db.residues = db.heap->total_residues();
  const bio::SequenceDatabase& h = *db.heap;
  db.schedule = pipeline::make_length_schedule(
      h.size(), [&h](std::size_t i) { return h[i].length(); });
  dbs_.push_back(std::move(db));
  return static_cast<std::uint32_t>(dbs_.size() - 1);
}

std::size_t SearchServer::add_model_library(const std::string& fhpdb_path) {
  std::vector<hmm::ModelEntry> entries = hmm::read_model_db_file(fhpdb_path);
  const std::size_t n = entries.size();
  for (hmm::ModelEntry& e : entries) {
    if (!e.model_stats) {
      // Calibrate once at load (deterministic), not per request.
      pipeline::HmmSearch calibrated(e.model);
      e.model_stats = calibrated.model_stats();
    }
    // The SCAN verb's resident search, built once here so a sweep pays
    // zero per-request profile/calibration cost.  Library order.
    scan_searches_.push_back(std::make_unique<pipeline::HmmSearch>(
        e.model, *e.model_stats));
    scan_names_.push_back(e.model.name());
    std::string name = e.model.name();
    models_[std::move(name)] = std::move(e);
  }
  scan_plan_.reset();  // the library changed; re-tune on the next scan
  return n;
}

void SearchServer::serve(Listener& listener) {
  {
    MutexLock lock(state_mu_);
    FH_REQUIRE(listener_ == nullptr, "serve() is already running");
    listener_ = &listener;
    if (draining_) listener.close();  // drained before we even started
  }

  std::thread scheduler([this] { scheduler_loop(); });

  for (;;) {
    std::unique_ptr<Connection> conn = listener.accept();
    if (!conn) break;  // listener closed: drain has begun
    auto session = std::make_shared<Session>();
    session->conn = std::move(conn);
    {
      MutexLock lock(stats_mu_);
      ++stats_.connections_accepted;
    }
    MutexLock lock(state_mu_);
    sessions_.push_back(session);
    conn_threads_.emplace_back(
        [this, session] { handle_connection(session); });
  }

  // No new clients.  Close the admission queue: items already accepted
  // keep flowing to the scheduler, which exits once the ring is empty —
  // that IS "finish in-flight".
  queue_.close();
  scheduler.join();

  // Unblock every connection reader (clients may be idle, not sending)
  // and join the per-connection threads.
  std::vector<std::thread> threads;
  {
    MutexLock lock(state_mu_);
    for (const std::weak_ptr<Session>& weak : sessions_)
      if (std::shared_ptr<Session> s = weak.lock()) s->conn->shutdown();
    threads.swap(conn_threads_);
    sessions_.clear();
  }
  for (std::thread& t : threads) t.join();

  MutexLock lock(state_mu_);
  listener_ = nullptr;
}

void SearchServer::begin_drain() {
  MutexLock lock(state_mu_);
  if (!draining_)
    obs::log(obs::LogLevel::kInfo, "server.drain_begin",
             {{"queue_depth", static_cast<std::uint64_t>(queue_.size())}});
  draining_ = true;
  paused_ = false;  // a paused scheduler must wake to drain
  pause_cv_.notify_all();
  if (listener_ != nullptr) listener_->close();
}

bool SearchServer::draining() const {
  MutexLock lock(state_mu_);
  return draining_;
}

void SearchServer::set_paused(bool paused) {
  MutexLock lock(state_mu_);
  if (draining_) return;  // drain overrides: never re-freeze a drain
  paused_ = paused;
  pause_cv_.notify_all();
}

// --- Connection tier ---------------------------------------------------

bool SearchServer::send_reply(Session& session, MsgType type,
                              std::uint32_t request_id,
                              const std::vector<std::uint8_t>& payload) {
  MutexLock lock(session.write_mu);
  return send_frame(*session.conn, type, request_id, payload);
}

void SearchServer::send_error(Session& session, std::uint32_t request_id,
                              ErrorCode code, const std::string& message) {
  send_reply(session, MsgType::kError, request_id,
             encode_error(ErrorInfo{code, message}));
}

void SearchServer::handle_connection(const std::shared_ptr<Session>& session) {
  Frame frame;
  for (;;) {
    const RecvStatus st = recv_frame(*session->conn, frame);
    if (st == RecvStatus::kEof) break;
    if (st == RecvStatus::kMalformed) {
      // Unframeable bytes: this connection cannot be re-synchronized, so
      // it closes — the server itself keeps running (tested).
      MutexLock lock(stats_mu_);
      ++stats_.frames_malformed;
      break;
    }
    switch (frame.type()) {
      case MsgType::kPing: {
        // Revision handshake (docs/cluster.md): the PING payload carries
        // the peer's wire revision; an incompatible peer would misparse
        // the optional cluster fields, so reject it here with a
        // structured error instead of failing on a later frame.
        PingInfo peer;
        try {
          peer = decode_ping(frame.payload);
        } catch (const ProtocolError& e) {
          send_error(*session, frame.header.request_id, ErrorCode::kBadRequest,
                     e.what());
          break;
        }
        if (peer.wire_revision != kWireRevision) {
          send_error(*session, frame.header.request_id,
                     ErrorCode::kVersionMismatch,
                     "peer wire revision " +
                         std::to_string(peer.wire_revision) +
                         " incompatible with " +
                         std::to_string(kWireRevision));
          break;
        }
        PingInfo self;
        self.role = cfg_.role;
        self.shard_id = cfg_.shard_id;
        send_reply(*session, MsgType::kPong, frame.header.request_id,
                   encode_ping(self));
        break;
      }
      case MsgType::kStats: {
        const std::string json = stats_json();
        send_reply(*session, MsgType::kStatsResult, frame.header.request_id,
                   std::vector<std::uint8_t>(json.begin(), json.end()));
        break;
      }
      case MsgType::kSearch:
        handle_search(session, frame);
        break;
      case MsgType::kScan:
        handle_scan(session, frame);
        break;
      default:
        send_error(*session, frame.header.request_id, ErrorCode::kBadRequest,
                   "unexpected message type " +
                       std::to_string(frame.header.type));
        break;
    }
  }
  session->conn->shutdown();
}

void SearchServer::handle_search(const std::shared_ptr<Session>& session,
                                 const Frame& frame) {
  const std::uint32_t id = frame.header.request_id;

  SearchRequest req;
  try {
    req = decode_search_request(frame.payload);
  } catch (const ProtocolError& e) {
    // The framing layer consumed the whole payload, so the connection is
    // still in sync — answer with an error and keep serving it.
    {
      MutexLock lock(stats_mu_);
      ++stats_.requests_bad;
    }
    send_error(*session, id, ErrorCode::kBadRequest, e.what());
    return;
  }

  if (draining()) {
    {
      MutexLock lock(stats_mu_);
      ++stats_.requests_rejected_draining;
    }
    send_error(*session, id, ErrorCode::kShuttingDown,
               "daemon is draining; no new searches accepted");
    return;
  }

  if (req.db_id >= dbs_.size()) {
    {
      MutexLock lock(stats_mu_);
      ++stats_.requests_bad;
    }
    send_error(*session, id, ErrorCode::kUnknownDatabase,
               "no resident database with id " + std::to_string(req.db_id));
    return;
  }

  pipeline::Thresholds thr;
  thr.report_evalue = req.evalue;
  thr.z_override = req.z_override;

  auto pending = std::make_shared<Pending>();
  pending->request_id = id;
  pending->db_id = req.db_id;
  pending->session = session;
  if (req.deadline_ms > 0) {
    pending->has_deadline = true;
    pending->deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(req.deadline_ms);
  }

  try {
    if (req.model_kind == ModelRefKind::kPressed) {
      auto it = models_.find(req.model_name);
      if (it == models_.end()) {
        {
          MutexLock lock(stats_mu_);
          ++stats_.requests_bad;
        }
        send_error(*session, id, ErrorCode::kUnknownModel,
                   "no pressed model named '" + req.model_name + "'");
        return;
      }
      // add_model_library guaranteed stats are present.
      pending->search = std::make_shared<pipeline::HmmSearch>(
          it->second.model, *it->second.model_stats, thr);
    } else {
      pending->search = search_from_blob(req.model_blob, thr);
    }
  } catch (const Error& e) {
    {
      MutexLock lock(stats_mu_);
      ++stats_.requests_bad;
    }
    send_error(*session, id, ErrorCode::kBadRequest,
               std::string("model rejected: ") + e.what());
    return;
  }

  pending->trace_id = obs::next_trace_id();
  pending->admitted_at = SteadyClock::now();
  if (!queue_.try_push(pending)) {
    // Admission bound hit (or drain closed the queue between the check
    // above and here): shed explicitly, never block the client.
    {
      MutexLock lock(stats_mu_);
      ++stats_.requests_overloaded;
    }
    // A shed storm is one warn per second, not one per shed request.
    static obs::LogRateLimit overload_limit(1);
    std::uint64_t suppressed = 0;
    if (overload_limit.allow(&suppressed))
      obs::log(obs::LogLevel::kWarn, "server.overload",
               {{"verb", "SEARCH"},
                {"queue_capacity", static_cast<std::uint64_t>(
                                       queue_.capacity())},
                {"suppressed", suppressed}});
    send_reply(*session, MsgType::kOverload, id,
               encode_overload(OverloadInfo{
                   static_cast<std::uint32_t>(queue_.capacity())}));
    return;
  }
  MutexLock lock(stats_mu_);
  ++stats_.requests_admitted;
}

void SearchServer::handle_scan(const std::shared_ptr<Session>& session,
                               const Frame& frame) {
  const std::uint32_t id = frame.header.request_id;

  ScanRequest req;
  try {
    req = decode_scan_request(frame.payload);
  } catch (const ProtocolError& e) {
    {
      MutexLock lock(stats_mu_);
      ++stats_.requests_bad;
    }
    send_error(*session, id, ErrorCode::kBadRequest, e.what());
    return;
  }

  if (draining()) {
    {
      MutexLock lock(stats_mu_);
      ++stats_.requests_rejected_draining;
    }
    send_error(*session, id, ErrorCode::kShuttingDown,
               "daemon is draining; no new scans accepted");
    return;
  }

  if (req.db_id >= dbs_.size()) {
    {
      MutexLock lock(stats_mu_);
      ++stats_.requests_bad;
    }
    send_error(*session, id, ErrorCode::kUnknownDatabase,
               "no resident database with id " + std::to_string(req.db_id));
    return;
  }

  if (scan_searches_.empty()) {
    {
      MutexLock lock(stats_mu_);
      ++stats_.requests_bad;
    }
    send_error(*session, id, ErrorCode::kUnknownModel,
               "no model libraries loaded; SCAN has nothing to score");
    return;
  }

  auto pending = std::make_shared<Pending>();
  pending->request_id = id;
  pending->db_id = req.db_id;
  pending->is_scan = true;
  pending->scan_evalue = req.evalue;
  pending->scan_z_override = req.z_override;
  pending->session = session;
  if (req.deadline_ms > 0) {
    pending->has_deadline = true;
    pending->deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(req.deadline_ms);
  }

  pending->trace_id = obs::next_trace_id();
  pending->admitted_at = SteadyClock::now();
  if (!queue_.try_push(pending)) {
    {
      MutexLock lock(stats_mu_);
      ++stats_.requests_overloaded;
    }
    static obs::LogRateLimit overload_limit(1);
    std::uint64_t suppressed = 0;
    if (overload_limit.allow(&suppressed))
      obs::log(obs::LogLevel::kWarn, "server.overload",
               {{"verb", "SCAN"},
                {"queue_capacity", static_cast<std::uint64_t>(
                                       queue_.capacity())},
                {"suppressed", suppressed}});
    send_reply(*session, MsgType::kOverload, id,
               encode_overload(OverloadInfo{
                   static_cast<std::uint32_t>(queue_.capacity())}));
    return;
  }
  MutexLock lock(stats_mu_);
  ++stats_.requests_admitted;
  ++stats_.scan_requests;
}

// --- Scheduler tier ----------------------------------------------------

void SearchServer::scheduler_loop() {
  std::vector<std::shared_ptr<Pending>> batch;
  for (;;) {
    {
      // Explicit wait loop (not a lambda predicate) so the guarded
      // paused_ read stays inside this annotated function.
      MutexLock lock(state_mu_);
      while (paused_) pause_cv_.wait(state_mu_);
    }

    std::shared_ptr<Pending> first;
    const PopStatus st = queue_.pop_wait(first, std::chrono::milliseconds(50));
    if (st == PopStatus::kClosed) break;  // drained: every admitted item done
    if (st == PopStatus::kTimeout) continue;

    batch.clear();
    first->popped_at = SteadyClock::now();  // ends the queue-wait span
    batch.push_back(std::move(first));

    // Coalesce window: companions that arrive within it share the sweep.
    const auto window_end =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(cfg_.coalesce_window_ms);
    while (batch.size() < cfg_.max_batch) {
      std::shared_ptr<Pending> more;
      if (queue_.try_pop(more)) {
        more->popped_at = SteadyClock::now();
        batch.push_back(std::move(more));
        continue;
      }
      const auto now = std::chrono::steady_clock::now();
      if (now >= window_end) break;
      const auto remaining =
          std::chrono::duration_cast<std::chrono::milliseconds>(window_end -
                                                                now);
      if (queue_.pop_wait(more, std::max(remaining,
                                         std::chrono::milliseconds(1))) !=
          PopStatus::kItem)
        break;
      more->popped_at = SteadyClock::now();
      batch.push_back(std::move(more));
    }

    {
      MutexLock lock(stats_mu_);
      ++stats_.batches;
      stats_.max_batch_size =
          std::max<std::uint64_t>(stats_.max_batch_size, batch.size());
    }
    run_batch(batch);
    batch.clear();
  }
}

void SearchServer::run_batch(std::vector<std::shared_ptr<Pending>>& batch) {
  // Group by database: one coalesced sweep per distinct resident db for
  // SEARCHes, plus one fused library sweep per db with queued SCANs —
  // concurrent SCANs of the same database share that single sweep.
  std::map<std::uint32_t, std::vector<std::shared_ptr<Pending>>> by_db;
  std::map<std::uint32_t, std::vector<std::shared_ptr<Pending>>> scans_by_db;
  const auto now = std::chrono::steady_clock::now();
  for (std::shared_ptr<Pending>& p : batch) {
    if (p->has_deadline && now > p->deadline) {
      {
        MutexLock lock(stats_mu_);
        ++stats_.requests_deadline_expired;
      }
      send_error(*p->session, p->request_id, ErrorCode::kDeadlineExpired,
                 "request expired while queued");
      continue;
    }
    auto& dest = p->is_scan ? scans_by_db : by_db;
    dest[p->db_id].push_back(std::move(p));
  }

  for (auto& [db_id, group] : scans_by_db) run_scans(db_id, group);

  for (auto& [db_id, group] : by_db) {
    const Db& db = dbs_[db_id];
    std::vector<const pipeline::HmmSearch*> searches;
    searches.reserve(group.size());
    for (const auto& p : group) searches.push_back(p->search.get());

    pipeline::HmmSearch::CoalescedScan scan;
    const auto sweep_start = SteadyClock::now();
    try {
      scan = pipeline::HmmSearch::run_cpu_coalesced(
          searches, db.view(), pool_, &db.schedule, &recorder_);
    } catch (const Error& e) {
      {
        MutexLock lock(stats_mu_);
        stats_.requests_failed += group.size();
      }
      for (const auto& p : group)
        send_error(*p->session, p->request_id, ErrorCode::kInternal,
                   std::string("scan failed: ") + e.what());
      continue;
    }

    const auto sweep_end = SteadyClock::now();

    // Sweep-level accounting lands BEFORE any reply goes out, so a
    // client that reads STATS right after its result already sees the
    // sweep it rode in (test_server leans on this ordering too).
    {
      MutexLock lock(stats_mu_);
      ++stats_.db_sweeps;
    }
    merge_batch_telemetry(scan.telemetry);

    for (std::size_t i = 0; i < group.size(); ++i) {
      const pipeline::SearchResult& r = scan.per_model[i];
      SearchResultWire wire;
      wire.trace_id = group[i]->trace_id;
      wire.db_sequences = db.sequences;
      wire.db_residues = db.residues;
      wire.ssv = r.ssv;
      wire.msv = r.msv;
      wire.vit = r.vit;
      wire.fwd = r.fwd;
      wire.bwd = r.bwd;
      wire.hits = r.hits;
      // Completion is accounted before the reply leaves, for the same
      // reason; only responses_dropped (needs the send outcome) lags.
      {
        MutexLock lock(stats_mu_);
        ++stats_.requests_completed;
      }
      const auto serialize_start = SteadyClock::now();
      const bool sent =
          send_reply(*group[i]->session, MsgType::kResult,
                     group[i]->request_id, encode_search_result(wire));
      if (!sent) {
        MutexLock lock(stats_mu_);
        ++stats_.responses_dropped;
      }
      finish_request_trace(*group[i], "SEARCH", sweep_start, sweep_end,
                           seconds_between(serialize_start,
                                           SteadyClock::now()),
                           scan.telemetry, group.size());
    }
  }
}

void SearchServer::run_scans(
    std::uint32_t db_id,
    const std::vector<std::shared_ptr<Pending>>& group) {
  const Db& db = dbs_[db_id];
  std::vector<const pipeline::HmmSearch*> searches;
  searches.reserve(scan_searches_.size());
  for (const auto& s : scan_searches_) searches.push_back(s.get());

  if (!scan_plan_) {
    // Tune once per library: the plan depends only on the model lengths
    // and the lane width of the active SIMD tier, both fixed from here.
    std::vector<int> lengths;
    lengths.reserve(searches.size());
    for (const auto* s : searches) lengths.push_back(s->profile().length());
    const int lane_width =
        cpu::backend::tier_kernels(
            cpu::resolve_simd_tier(cpu::active_simd_tier()))
            .u8_lanes;
    scan_plan_ = hmm::plan_model_groups(lengths, lane_width,
                                        hmm::fuse_options_from_env());
  }

  pipeline::HmmSearch::CoalescedScan scan;
  const auto sweep_start = SteadyClock::now();
  try {
    scan = pipeline::HmmSearch::run_cpu_fused(searches, db.view(), pool_,
                                              &*scan_plan_, &recorder_);
  } catch (const Error& e) {
    {
      MutexLock lock(stats_mu_);
      stats_.requests_failed += group.size();
    }
    for (const auto& p : group)
      send_error(*p->session, p->request_id, ErrorCode::kInternal,
                 std::string("scan failed: ") + e.what());
    return;
  }

  const auto sweep_end = SteadyClock::now();

  {
    MutexLock lock(stats_mu_);
    ++stats_.scan_sweeps;
    stats_.scan_models_scored += searches.size();
    // Mirror the (scheduler-owned) plan into stats so /statusz and
    // /metrics can read fuse shape without racing the lazy tuner.
    stats_.scan_fuse_groups = scan_plan_->groups.size();
    stats_.scan_lane_occupancy = scan_plan_->lane_occupancy();
  }
  merge_batch_telemetry(scan.telemetry);

  for (const auto& p : group) {
    ScanResultWire wire;
    wire.trace_id = p->trace_id;
    wire.db_sequences = db.sequences;
    wire.db_residues = db.residues;
    wire.fuse_groups = scan_plan_->groups.size();
    wire.fused_models = scan_plan_->fused_models();
    wire.lane_occupancy = scan_plan_->lane_occupancy();
    wire.models.reserve(searches.size());
    for (std::size_t m = 0; m < searches.size(); ++m) {
      ScanModelHits mh;
      mh.model_name = scan_names_[m];
      // The resident library reports at E <= 10; a request's threshold
      // can only tighten.  Hits are E-value sorted, so this is a prefix.
      //
      // z_override (cluster shards): the resident sweep scored at the
      // shard-local Z, but E = p * Z is one multiply, so recomputing
      // from the carried P-value against the caller's Z is bit-identical
      // to having scored with it.  The recomputed E is monotone in p,
      // exactly like the resident E, so the prefix property holds.  The
      // override Z >= local Z (a cluster is a superset of its shard), so
      // the resident E <= 10 cut never hides a hit the caller wants.
      for (const pipeline::Hit& h : scan.per_model[m].hits) {
        const double e =
            p->scan_z_override != 0
                ? stats::evalue(h.pvalue, 0, p->scan_z_override)
                : h.evalue;
        if (e > p->scan_evalue) break;
        pipeline::Hit adjusted = h;
        adjusted.evalue = e;
        mh.hits.push_back(std::move(adjusted));
      }
      wire.models.push_back(std::move(mh));
    }
    {
      MutexLock lock(stats_mu_);
      ++stats_.requests_completed;
    }
    const auto serialize_start = SteadyClock::now();
    const bool sent = send_reply(*p->session, MsgType::kScanResult,
                                 p->request_id, encode_scan_result(wire));
    if (!sent) {
      MutexLock lock(stats_mu_);
      ++stats_.responses_dropped;
    }
    finish_request_trace(*p, "SCAN", sweep_start, sweep_end,
                         seconds_between(serialize_start, SteadyClock::now()),
                         scan.telemetry, group.size());
  }
}

// --- Observability -----------------------------------------------------

void SearchServer::merge_batch_telemetry(const obs::ScanTelemetry& t) {
  MutexLock lock(stats_mu_);
  telemetry_.sequences += t.sequences;
  telemetry_.residues += t.residues;
  telemetry_.wall_seconds += t.wall_seconds;
  telemetry_.zero_copy = t.zero_copy;
  telemetry_.mapped_bytes += t.mapped_bytes;
  telemetry_.heap_bytes += t.heap_bytes;
  telemetry_.decoded_bytes += t.decoded_bytes;
  for (const obs::StageTelemetry& st : t.stages) {
    auto it = std::find_if(
        telemetry_.stages.begin(), telemetry_.stages.end(),
        [&](const obs::StageTelemetry& have) { return have.stage == st.stage; });
    if (it == telemetry_.stages.end()) {
      telemetry_.stages.push_back(st);
      continue;
    }
    it->n_in += st.n_in;
    it->n_passed += st.n_passed;
    it->cells += st.cells;
    it->wall_seconds += st.wall_seconds;
    it->busy_seconds += st.busy_seconds;
    for (const auto& [key, value] : st.counters) {
      auto kv = std::find_if(
          it->counters.begin(), it->counters.end(),
          [&](const auto& have) { return have.first == key; });
      if (kv == it->counters.end())
        it->counters.emplace_back(key, value);
      else
        kv->second += value;
    }
  }
}

ServerStats SearchServer::stats() const {
  MutexLock lock(stats_mu_);
  return stats_;
}

obs::ScanTelemetry SearchServer::telemetry() const {
  MutexLock lock(stats_mu_);
  return telemetry_;
}

void SearchServer::finish_request_trace(
    const Pending& p, const char* verb, SteadyClock::time_point sweep_start,
    SteadyClock::time_point sweep_end, double serialize_seconds,
    const obs::ScanTelemetry& sweep_telemetry, std::size_t batch_size) {
  const auto done = SteadyClock::now();

  obs::RequestTrace t;
  t.trace_id = p.trace_id;
  t.request_id = p.request_id;
  t.verb = verb;
  t.start_ns = ns_between(start_time_, p.admitted_at);
  t.queue_seconds = seconds_between(p.admitted_at, p.popped_at);
  t.coalesce_seconds = seconds_between(p.popped_at, sweep_start);
  t.sweep_seconds = seconds_between(sweep_start, sweep_end);
  t.serialize_seconds = serialize_seconds;
  t.total_seconds = seconds_between(p.admitted_at, done);
  t.batch_size = static_cast<std::uint32_t>(batch_size == 0 ? 1 : batch_size);
  // The sweep scored the whole batch at once; attribute each request an
  // equal share of the per-stage busy time (requests in one coalesced
  // sweep walk the same database, so shares are genuinely symmetric).
  const double share = 1.0 / static_cast<double>(t.batch_size);
  for (const obs::StageTelemetry& st : sweep_telemetry.stages) {
    for (int s = 0; s < obs::kStageCount; ++s) {
      if (st.stage == obs::stage_name(static_cast<obs::Stage>(s))) {
        t.stage_seconds[s] += st.busy_seconds * share;
        break;
      }
    }
  }

  // Always-on histograms: three relaxed atomic adds per request.
  e2e_hist_.record(ns_between(p.admitted_at, done));
  queue_hist_.record(ns_between(p.admitted_at, p.popped_at));
  sweep_hist_.record(ns_between(sweep_start, sweep_end));
  trace_ring_.push(t);

  if (cfg_.slow_request_seconds > 0.0 &&
      t.total_seconds >= cfg_.slow_request_seconds) {
    static obs::LogRateLimit slow_limit(10);
    std::uint64_t suppressed = 0;
    if (slow_limit.allow(&suppressed))
      obs::log(
          obs::LogLevel::kWarn, "server.slow_request",
          {{"trace_id", obs::trace_id_hex(t.trace_id)},
           {"verb", verb},
           {"total_ms", t.total_seconds * 1e3},
           {"queue_ms", t.queue_seconds * 1e3},
           {"coalesce_ms", t.coalesce_seconds * 1e3},
           {"sweep_ms", t.sweep_seconds * 1e3},
           {"serialize_ms", t.serialize_seconds * 1e3},
           {"ssv_ms",
            t.stage_seconds[static_cast<int>(obs::Stage::kSsv)] * 1e3},
           {"msv_ms",
            t.stage_seconds[static_cast<int>(obs::Stage::kMsv)] * 1e3},
           {"vit_ms",
            t.stage_seconds[static_cast<int>(obs::Stage::kVit)] * 1e3},
           {"fwd_ms",
            t.stage_seconds[static_cast<int>(obs::Stage::kFwd)] * 1e3},
           {"bwd_ms",
            t.stage_seconds[static_cast<int>(obs::Stage::kBwd)] * 1e3},
           {"batch_size", t.batch_size},
           {"suppressed", suppressed}});
  }
}

double SearchServer::uptime_seconds() const {
  return seconds_between(start_time_, SteadyClock::now());
}

namespace {

/// One latency surface as JSON, seconds.  The SAME quantile math
/// (obs::latency_quantiles over one snapshot) and the same double
/// formatting feed /metrics, so the two surfaces agree on p99.
void write_hist_json(std::ostream& os, const obs::Histogram& h, int indent) {
  const obs::LatencyQuantiles q = obs::latency_quantiles(h);
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  os << pad << "{\"count\": " << q.count
     << ", \"sum_seconds\": " << static_cast<double>(q.sum) * 1e-9
     << ", \"p50_seconds\": " << static_cast<double>(q.p50) * 1e-9
     << ", \"p90_seconds\": " << static_cast<double>(q.p90) * 1e-9
     << ", \"p99_seconds\": " << static_cast<double>(q.p99) * 1e-9
     << ", \"p999_seconds\": " << static_cast<double>(q.p999) * 1e-9
     << ", \"max_seconds\": " << static_cast<double>(h.max()) * 1e-9 << "}";
}

/// One latency surface as a Prometheus summary family.
void write_hist_prometheus(std::ostream& os, const char* name,
                           const char* help, const obs::Histogram& h) {
  const obs::LatencyQuantiles q = obs::latency_quantiles(h);
  os << "# HELP " << name << " " << help << "\n";
  os << "# TYPE " << name << " summary\n";
  os << name << "{quantile=\"0.5\"} " << static_cast<double>(q.p50) * 1e-9
     << "\n";
  os << name << "{quantile=\"0.9\"} " << static_cast<double>(q.p90) * 1e-9
     << "\n";
  os << name << "{quantile=\"0.99\"} " << static_cast<double>(q.p99) * 1e-9
     << "\n";
  os << name << "{quantile=\"0.999\"} " << static_cast<double>(q.p999) * 1e-9
     << "\n";
  os << name << "_sum " << static_cast<double>(q.sum) * 1e-9 << "\n";
  os << name << "_count " << q.count << "\n";
}

}  // namespace

std::string SearchServer::stats_json() const {
  ServerStats s;
  obs::ScanTelemetry t;
  {
    MutexLock lock(stats_mu_);
    s = stats_;
    t = telemetry_;
  }
  const obs::Histogram e2e = e2e_hist_.snapshot();
  const obs::Histogram queue_wait = queue_hist_.snapshot();
  const obs::Histogram sweep = sweep_hist_.snapshot();
  const std::vector<obs::RequestTrace> traces = trace_ring_.snapshot();

  std::ostringstream os;
  os << "{\n";
  os << "  \"schema\": \"finehmm.server_stats.v2\",\n";
  os << "  \"uptime_seconds\": " << uptime_seconds() << ",\n";
  os << "  \"queue_depth\": " << queue_.size() << ",\n";
  os << "  \"draining\": " << (draining() ? "true" : "false") << ",\n";
  os << "  \"connections_accepted\": " << s.connections_accepted << ",\n";
  os << "  \"requests_admitted\": " << s.requests_admitted << ",\n";
  os << "  \"requests_completed\": " << s.requests_completed << ",\n";
  os << "  \"requests_overloaded\": " << s.requests_overloaded << ",\n";
  os << "  \"requests_rejected_draining\": " << s.requests_rejected_draining
     << ",\n";
  os << "  \"requests_deadline_expired\": " << s.requests_deadline_expired
     << ",\n";
  os << "  \"requests_bad\": " << s.requests_bad << ",\n";
  os << "  \"requests_failed\": " << s.requests_failed << ",\n";
  os << "  \"batches\": " << s.batches << ",\n";
  os << "  \"db_sweeps\": " << s.db_sweeps << ",\n";
  os << "  \"max_batch_size\": " << s.max_batch_size << ",\n";
  os << "  \"responses_dropped\": " << s.responses_dropped << ",\n";
  os << "  \"frames_malformed\": " << s.frames_malformed << ",\n";
  os << "  \"scan_requests\": " << s.scan_requests << ",\n";
  os << "  \"scan_sweeps\": " << s.scan_sweeps << ",\n";
  os << "  \"scan_models_scored\": " << s.scan_models_scored << ",\n";
  os << "  \"scan_fuse_groups\": " << s.scan_fuse_groups << ",\n";
  os << "  \"scan_lane_occupancy\": " << s.scan_lane_occupancy << ",\n";
  os << "  \"latency\": {\n";
  os << "    \"e2e\": ";
  write_hist_json(os, e2e, 0);
  os << ",\n    \"queue_wait\": ";
  write_hist_json(os, queue_wait, 0);
  os << ",\n    \"sweep\": ";
  write_hist_json(os, sweep, 0);
  os << "\n  },\n";
  os << "  \"recent_traces\": [";
  for (std::size_t i = 0; i < traces.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n");
    obs::write_trace_json(os, traces[i], 4);
  }
  os << (traces.empty() ? "" : "\n  ") << "],\n";
  os << "  \"telemetry\":\n";
  t.write_json(os, 2);
  os << "\n}\n";
  return os.str();
}

std::string SearchServer::metrics_text() const {
  ServerStats s;
  obs::ScanTelemetry t;
  {
    MutexLock lock(stats_mu_);
    s = stats_;
    t = telemetry_;
  }

  std::ostringstream os;
  os << "# HELP finehmm_up Whether finehmmd is serving (drain flips to 0).\n";
  os << "# TYPE finehmm_up gauge\n";
  os << "finehmm_up " << (draining() ? 0 : 1) << "\n";
  os << "# HELP finehmm_uptime_seconds Seconds since the server started.\n";
  os << "# TYPE finehmm_uptime_seconds gauge\n";
  os << "finehmm_uptime_seconds " << uptime_seconds() << "\n";
  os << "# HELP finehmm_queue_depth Admission queue occupancy right now.\n";
  os << "# TYPE finehmm_queue_depth gauge\n";
  os << "finehmm_queue_depth " << queue_.size() << "\n";
  os << "# HELP finehmm_queue_capacity Admission queue bound (shed above).\n";
  os << "# TYPE finehmm_queue_capacity gauge\n";
  os << "finehmm_queue_capacity " << queue_.capacity() << "\n";
  os << "# HELP finehmm_resident_databases Databases held mmap-resident.\n";
  os << "# TYPE finehmm_resident_databases gauge\n";
  os << "finehmm_resident_databases " << dbs_.size() << "\n";
  os << "# HELP finehmm_resident_models Models loaded from .fhpdb "
        "libraries.\n";
  os << "# TYPE finehmm_resident_models gauge\n";
  os << "finehmm_resident_models " << models_.size() << "\n";

  os << "# HELP finehmm_server_events_total Monotonic server request and "
        "connection counters by event.\n";
  os << "# TYPE finehmm_server_events_total counter\n";
  const std::pair<const char*, std::uint64_t> events[] = {
      {"connections_accepted", s.connections_accepted},
      {"requests_admitted", s.requests_admitted},
      {"requests_completed", s.requests_completed},
      {"requests_overloaded", s.requests_overloaded},
      {"requests_rejected_draining", s.requests_rejected_draining},
      {"requests_deadline_expired", s.requests_deadline_expired},
      {"requests_bad", s.requests_bad},
      {"requests_failed", s.requests_failed},
      {"batches", s.batches},
      {"db_sweeps", s.db_sweeps},
      {"responses_dropped", s.responses_dropped},
      {"frames_malformed", s.frames_malformed},
      {"scan_requests", s.scan_requests},
      {"scan_sweeps", s.scan_sweeps},
      {"scan_models_scored", s.scan_models_scored},
  };
  for (const auto& [name, value] : events)
    os << "finehmm_server_events_total{event=\"" << name << "\"} " << value
       << "\n";

  os << "# HELP finehmm_max_batch_size Largest coalesced batch so far.\n";
  os << "# TYPE finehmm_max_batch_size gauge\n";
  os << "finehmm_max_batch_size " << s.max_batch_size << "\n";
  os << "# HELP finehmm_scan_fuse_groups Groups in the current fuse plan.\n";
  os << "# TYPE finehmm_scan_fuse_groups gauge\n";
  os << "finehmm_scan_fuse_groups " << s.scan_fuse_groups << "\n";
  os << "# HELP finehmm_scan_lane_occupancy Cell-weighted SIMD lane "
        "occupancy of fused sweeps (0..1).\n";
  os << "# TYPE finehmm_scan_lane_occupancy gauge\n";
  os << "finehmm_scan_lane_occupancy " << s.scan_lane_occupancy << "\n";

  write_hist_prometheus(os, "finehmm_request_latency_seconds",
                        "End-to-end request latency (admission to reply "
                        "written).",
                        e2e_hist_.snapshot());
  write_hist_prometheus(os, "finehmm_queue_wait_seconds",
                        "Time requests spent in the admission queue.",
                        queue_hist_.snapshot());
  write_hist_prometheus(os, "finehmm_sweep_seconds",
                        "Wall time of the database sweep each request rode "
                        "in.",
                        sweep_hist_.snapshot());

  t.write_prometheus(os);
  return os.str();
}

std::string SearchServer::statusz_text() const {
  ServerStats s;
  {
    MutexLock lock(stats_mu_);
    s = stats_;
  }
  std::uint64_t db_seqs = 0, db_residues = 0;
  for (const Db& db : dbs_) {
    db_seqs += db.sequences;
    db_residues += db.residues;
  }
  const std::uint64_t sweeps = s.db_sweeps + s.scan_sweeps;

  std::ostringstream os;
  os << "finehmmd status\n";
  os << "===============\n";
  os << "uptime_seconds:     " << uptime_seconds() << "\n";
  os << "state:              " << (draining() ? "draining" : "serving")
     << "\n";
  os << "resident databases: " << dbs_.size() << " (" << db_seqs
     << " sequences, " << db_residues << " residues)\n";
  os << "resident models:    " << models_.size() << "\n";
  os << "queue depth:        " << queue_.size() << " / " << queue_.capacity()
     << "\n";
  os << "requests:           admitted " << s.requests_admitted
     << ", completed " << s.requests_completed << ", shed "
     << s.requests_overloaded << ", failed " << s.requests_failed << "\n";
  os << "coalescing:         " << sweeps << " sweeps for "
     << s.requests_completed << " requests ("
     << obs::safe_rate(static_cast<double>(s.requests_completed),
                       static_cast<double>(sweeps))
     << " requests/sweep, max batch " << s.max_batch_size << ")\n";
  os << "fuse plan:          " << s.scan_fuse_groups << " groups, lane "
     << "occupancy " << s.scan_lane_occupancy << "\n";

  const char* names[] = {"e2e", "queue_wait", "sweep"};
  const obs::Histogram hists[] = {e2e_hist_.snapshot(),
                                  queue_hist_.snapshot(),
                                  sweep_hist_.snapshot()};
  for (int i = 0; i < 3; ++i) {
    const obs::LatencyQuantiles q = obs::latency_quantiles(hists[i]);
    os << "latency " << names[i] << " (ms):";
    for (int pad = static_cast<int>(std::string(names[i]).size()); pad < 11;
         ++pad)
      os << ' ';
    os << "p50 " << static_cast<double>(q.p50) * 1e-6 << ", p90 "
       << static_cast<double>(q.p90) * 1e-6 << ", p99 "
       << static_cast<double>(q.p99) * 1e-6 << ", p99.9 "
       << static_cast<double>(q.p999) * 1e-6 << " (n=" << q.count << ")\n";
  }

  const std::vector<obs::RequestTrace> traces = trace_ring_.snapshot();
  os << "recent requests:    " << traces.size() << " (newest last)\n";
  const std::size_t show = traces.size() > 8 ? traces.size() - 8 : 0;
  for (std::size_t i = show; i < traces.size(); ++i) {
    const obs::RequestTrace& tr = traces[i];
    os << "  " << obs::trace_id_hex(tr.trace_id) << " " << tr.verb
       << " total " << tr.total_seconds * 1e3 << " ms (queue "
       << tr.queue_seconds * 1e3 << ", sweep " << tr.sweep_seconds * 1e3
       << ", batch " << tr.batch_size << ")\n";
  }
  return os.str();
}

HttpResponse SearchServer::handle_http(const std::string& path) const {
  HttpResponse r;
  if (path == "/metrics") {
    r.content_type = "text/plain; version=0.0.4; charset=utf-8";
    r.body = metrics_text();
  } else if (path == "/healthz") {
    // Drain-aware: flip unhealthy the moment drain begins, so a load
    // balancer stops routing before the listener actually closes.
    if (draining()) {
      r.status = 503;
      r.body = "draining\n";
    } else {
      r.body = "ok\n";
    }
  } else if (path == "/statusz") {
    r.body = statusz_text();
  } else {
    r.status = 404;
    r.body = "not found; routes: /metrics /healthz /statusz\n";
  }
  return r;
}

}  // namespace finehmm::server
