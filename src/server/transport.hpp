// Byte-stream transport abstraction the daemon and clients speak over.
//
// Two implementations share these interfaces: an in-process loopback
// (server/loopback.hpp — deterministic unit tests, no sockets, runs
// clean under tsan) and POSIX TCP (server/tcp.hpp — the production
// path).  The protocol layer above sees only ordered bytes, so every
// integration test written against the loopback proves the TCP daemon's
// logic too.
//
// Contract notes:
//   * send_all / recv_some may be called concurrently with shutdown()
//     from another thread; shutdown() unblocks both and is idempotent.
//   * A Connection is used by at most one reader thread and one writer
//     thread at a time (the server serializes writers with the per-
//     connection Session::write_mu capability above this layer — see
//     docs/static_analysis.md for the capability model; this interface
//     itself is lock-free and carries no capability annotations).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "server/protocol.hpp"

namespace finehmm::server {

class Connection {
 public:
  virtual ~Connection() = default;

  /// Write exactly `n` bytes; false when the peer is gone (the bytes may
  /// have been partially written — the stream is dead either way).
  virtual bool send_all(const void* data, std::size_t n) = 0;

  /// Blocking read of up to `n` bytes; returns the count actually read,
  /// or 0 on orderly close / shutdown().
  virtual std::size_t recv_some(void* buf, std::size_t n) = 0;

  /// Unblock any in-flight send/recv and fail all future ones.
  /// Idempotent; safe from any thread.
  virtual void shutdown() = 0;
};

class Listener {
 public:
  virtual ~Listener() = default;

  /// Block until a client connects; null once close() was called (or the
  /// listener otherwise died) — the server's accept loop exits on null.
  virtual std::unique_ptr<Connection> accept() = 0;

  /// Stop accepting and unblock a blocked accept().  Idempotent.
  virtual void close() = 0;
};

/// Outcome of reading one frame off a connection.
enum class RecvStatus {
  kFrame,      // `out` holds a complete, header-valid frame
  kEof,        // orderly close (or shutdown) at a frame boundary
  kMalformed,  // bad version / oversized length / truncated mid-frame:
               // the stream cannot be re-synchronized, close it
};

/// Frame a message onto the stream: header then payload, one logical
/// write.  False when the peer is gone.
bool send_frame(Connection& conn, MsgType type, std::uint32_t request_id,
                const std::vector<std::uint8_t>& payload);

/// Read one complete frame (header validated, payload fully received).
RecvStatus recv_frame(Connection& conn, Frame& out);

}  // namespace finehmm::server
