// The resident search daemon's core: databases stay mmap-resident and
// concurrently queued client requests coalesce into shared database
// sweeps.
//
// hmmsearch amortizes nothing across invocations — every query pays the
// full cost of loading and walking the target database.  SearchServer is
// the repo's hmmpgmd analog: it holds .fsqdb databases open (zero-copy,
// page-cache warm), accepts requests over any Transport, and batches the
// requests queued at any instant into ONE HmmSearch::run_cpu_coalesced
// pass per database — N clients cost one sweep, not N (docs/server.md).
//
// Threading model (three tiers):
//   * accept loop     — serve()'s calling thread; exits when the
//                       listener closes (begin_drain).
//   * connection threads — one per client: parse frames, construct the
//                       per-request HmmSearch (profile build +
//                       calibration happen off the scan path), answer
//                       PING/STATS inline, and push searches onto the
//                       admission queue.  try_push failure = immediate
//                       OVERLOAD reply: the daemon sheds, never stalls.
//   * scheduler thread — pops the admission queue, gathers up to
//                       max_batch requests inside coalesce_window_ms,
//                       groups them by database, drops expired
//                       deadlines, runs the coalesced scan on the shared
//                       ThreadPool, and writes each client its result.
//
// Drain (SIGTERM): begin_drain() stops the accept loop and flags new
// SEARCH frames for rejection (kShuttingDown); everything already
// admitted still completes because the closed queue keeps delivering
// accepted items.  serve() returns once the scheduler has drained and
// every connection thread has joined — telemetry is complete at that
// point, ready to flush.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "bio/seq_db_io.hpp"
#include "hmm/model_db.hpp"
#include "obs/histogram.hpp"
#include "obs/recorder.hpp"
#include "obs/request_trace.hpp"
#include "obs/telemetry.hpp"
#include "pipeline/pipeline.hpp"
#include "pipeline/workload.hpp"
#include "server/http.hpp"
#include "server/transport.hpp"
#include "util/mpmc_queue.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"
#include "util/threadpool.hpp"

namespace finehmm::server {

struct ServerConfig {
  /// Workers in the shared scan pool (0 = hardware concurrency).
  std::size_t scan_threads = 0;
  /// Admission queue capacity: requests queued beyond this are shed with
  /// an OVERLOAD reply instead of blocking the client.
  std::size_t admission_capacity = 64;
  /// Most requests one coalesced sweep will carry.
  std::size_t max_batch = 16;
  /// How long the scheduler waits for companions after the first request
  /// of a batch arrives.  The window is the coalescing opportunity: a
  /// lone client pays it once per request; concurrent clients share it.
  std::uint32_t coalesce_window_ms = 2;
  /// Test hook: start with the scheduler paused (set_paused(false) to
  /// release), so tests can deterministically fill the admission queue.
  bool start_paused = false;
  /// Collect span traces in the server recorder (stage clocks and the
  /// telemetry snapshot are collected regardless).
  bool tracing = false;
  /// Completed requests kept in the trace ring (STATS v2
  /// `recent_traces`, /statusz).  Request-scoped tracing itself is
  /// always on — ids, stage attribution, and histograms cost one clock
  /// read per stage boundary, cheap enough for every request.
  std::size_t trace_ring_capacity = 64;
  /// Requests slower than this (end to end) dump their per-stage
  /// breakdown through the structured log at warn level, rate-limited.
  /// 0 disables the slow-request log.
  double slow_request_seconds = 0.0;
  /// What this node is in a cluster topology, answered in the PONG
  /// handshake so a coordinator can verify it is talking to a shard
  /// worker (finehmmd --shard-id; docs/cluster.md).
  NodeRole role = NodeRole::kStandalone;
  std::uint32_t shard_id = 0;  // meaningful when role == kShard
};

/// Monotonic request/connection accounting ("finehmm.server_stats.v2").
struct ServerStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t requests_admitted = 0;
  std::uint64_t requests_completed = 0;
  std::uint64_t requests_overloaded = 0;         // shed at admission
  std::uint64_t requests_rejected_draining = 0;  // arrived after drain began
  std::uint64_t requests_deadline_expired = 0;   // queued past their deadline
  std::uint64_t requests_bad = 0;      // undecodable / unknown db or model
  std::uint64_t requests_failed = 0;   // scan raised server-side
  std::uint64_t batches = 0;           // scheduler gathers
  std::uint64_t db_sweeps = 0;         // coalesced database passes
  std::uint64_t max_batch_size = 0;    // largest single coalesced group
  std::uint64_t responses_dropped = 0; // client gone before its reply
  std::uint64_t frames_malformed = 0;  // connections torn down on bad bytes
  // SCAN verb (fused many-model sweeps over the resident libraries):
  std::uint64_t scan_requests = 0;       // admitted SCAN requests
  std::uint64_t scan_sweeps = 0;         // fused library sweeps run
  std::uint64_t scan_models_scored = 0;  // sum of library size per sweep
  std::uint64_t scan_fuse_groups = 0;    // groups in the current fuse plan
  double scan_lane_occupancy = 0.0;      // cell-weighted mean, 0..1
};

class SearchServer {
 public:
  explicit SearchServer(ServerConfig cfg = {});
  ~SearchServer();

  SearchServer(const SearchServer&) = delete;
  SearchServer& operator=(const SearchServer&) = delete;

  // --- Resident data (load before serve(); not thread-safe against it) --
  /// mmap a .fsqdb and keep it resident; returns the db_id clients name.
  std::uint32_t add_database(const std::string& fsqdb_path);
  /// Adopt a heap database (tests and benches).
  std::uint32_t add_database(bio::SequenceDatabase db);
  /// Load a pressed model library (.fhpdb); models become addressable by
  /// name via ModelRefKind::kPressed.  Models without stored calibration
  /// are calibrated once here (deterministic), not per request.  Returns
  /// the number of models loaded.
  std::size_t add_model_library(const std::string& fhpdb_path);

  std::size_t database_count() const { return dbs_.size(); }
  std::size_t model_count() const { return models_.size(); }

  // --- Lifecycle ------------------------------------------------------
  /// Run the accept loop on the calling thread; returns after
  /// begin_drain() once every in-flight request finished and every
  /// connection thread joined.
  void serve(Listener& listener);

  /// Initiate graceful shutdown: stop accepting, reject new SEARCH
  /// frames with kShuttingDown, finish everything already admitted.
  /// Idempotent; safe from any thread (finehmmd calls it from its
  /// signal-watcher thread).
  void begin_drain() FINEHMM_EXCLUDES(state_mu_);
  bool draining() const FINEHMM_EXCLUDES(state_mu_);

  /// Test hook: freeze/release the scheduler so tests can stage the
  /// admission queue deterministically.  begin_drain() releases a pause.
  void set_paused(bool paused) FINEHMM_EXCLUDES(state_mu_);

  // --- Observability --------------------------------------------------
  ServerStats stats() const FINEHMM_EXCLUDES(stats_mu_);
  /// Batch telemetry aggregated across every coalesced sweep so far
  /// (engine "server"; the `batch.sweeps` / `batch.queries` counters on
  /// the msv stage make coalescing observable).
  obs::ScanTelemetry telemetry() const FINEHMM_EXCLUDES(stats_mu_);
  /// The STATS verb's payload ("finehmm.server_stats.v2"): ServerStats +
  /// latency histogram quantiles + recent request traces + telemetry.
  std::string stats_json() const FINEHMM_EXCLUDES(stats_mu_);

  /// Always-on latency snapshots in nanoseconds: end-to-end
  /// (admission -> reply written), queue wait, and sweep time.
  obs::Histogram latency_histogram() const { return e2e_hist_.snapshot(); }
  obs::Histogram queue_wait_histogram() const {
    return queue_hist_.snapshot();
  }
  obs::Histogram sweep_histogram() const { return sweep_hist_.snapshot(); }

  /// The most recent completed request traces, oldest first.
  std::vector<obs::RequestTrace> recent_traces() const {
    return trace_ring_.snapshot();
  }

  /// Seconds since construction (monotonic).
  double uptime_seconds() const;

  /// The embedded HTTP endpoint's router: /metrics (Prometheus text),
  /// /healthz (drain-aware), /statusz (human-readable snapshot).
  /// finehmmd wires this into an HttpEndpoint on --metrics-port; safe
  /// from any thread, any time between construction and destruction.
  HttpResponse handle_http(const std::string& path) const;
  std::string metrics_text() const;
  std::string statusz_text() const;

 private:
  struct Db {
    std::unique_ptr<bio::MappedSeqDb> mapped;
    std::unique_ptr<bio::SequenceDatabase> heap;
    pipeline::ScanSchedule schedule;  // cached length-bucketed order
    std::uint64_t sequences = 0;
    std::uint64_t residues = 0;
    pipeline::ScanSource view() const {
      return mapped ? pipeline::ScanSource(*mapped)
                    : pipeline::ScanSource(*heap);
    }
  };

  /// One client connection.  The connection thread is the only reader
  /// of conn (so conn itself needs no guard — a contract, not a lock);
  /// replies (from it or the scheduler) serialize on write_mu.  On the
  /// registered lock order (docs/static_analysis.md) write_mu sits
  /// below state_mu_: serve() holds state_mu_ while calling
  /// conn->shutdown(), which never takes write_mu.
  struct Session {
    std::unique_ptr<Connection> conn;

    Mutex write_mu;
  };

  /// An admitted search waiting for (or riding in) a coalesced sweep.
  /// A SCAN request (is_scan) carries no model of its own: it rides the
  /// fused sweep of the whole resident library instead.
  struct Pending {
    std::uint32_t request_id = 0;
    std::uint32_t db_id = 0;
    std::shared_ptr<pipeline::HmmSearch> search;
    bool is_scan = false;
    double scan_evalue = 10.0;
    std::uint64_t scan_z_override = 0;  // 0 = shard-local Z
    bool has_deadline = false;
    std::chrono::steady_clock::time_point deadline;
    std::shared_ptr<Session> session;
    // Request-scoped tracing: the id travels with the request from
    // admission through the sweep to the reply; the timestamps become
    // the queue-wait / coalesce-wait spans of its RequestTrace.
    std::uint64_t trace_id = 0;
    std::chrono::steady_clock::time_point admitted_at;
    std::chrono::steady_clock::time_point popped_at;
  };

  void handle_connection(const std::shared_ptr<Session>& session)
      FINEHMM_EXCLUDES(stats_mu_);
  void handle_search(const std::shared_ptr<Session>& session,
                     const Frame& frame)
      FINEHMM_EXCLUDES(state_mu_, stats_mu_);
  void handle_scan(const std::shared_ptr<Session>& session,
                   const Frame& frame)
      FINEHMM_EXCLUDES(state_mu_, stats_mu_);
  void scheduler_loop() FINEHMM_EXCLUDES(state_mu_, stats_mu_);
  /// The coalescer's sweep path: runs with NO server lock held — the
  /// sweep blocks for milliseconds and replies re-enter per-session
  /// write_mu; holding state_mu_ or stats_mu_ across it would stall
  /// drain and every observability read.
  void run_batch(std::vector<std::shared_ptr<Pending>>& batch)
      FINEHMM_EXCLUDES(state_mu_, stats_mu_);
  void run_scans(std::uint32_t db_id,
                 const std::vector<std::shared_ptr<Pending>>& group)
      FINEHMM_EXCLUDES(state_mu_, stats_mu_);
  bool send_reply(Session& session, MsgType type, std::uint32_t request_id,
                  const std::vector<std::uint8_t>& payload)
      FINEHMM_EXCLUDES(session.write_mu);
  void send_error(Session& session, std::uint32_t request_id, ErrorCode code,
                  const std::string& message)
      FINEHMM_EXCLUDES(session.write_mu);
  void merge_batch_telemetry(const obs::ScanTelemetry& t)
      FINEHMM_EXCLUDES(stats_mu_);
  /// Complete one request's trace: compute its spans from the sweep
  /// timing + its share of the batch's stage busy time, record the
  /// latency histograms, push the ring, and emit the slow-request log.
  void finish_request_trace(const Pending& p, const char* verb,
                            std::chrono::steady_clock::time_point sweep_start,
                            std::chrono::steady_clock::time_point sweep_end,
                            double serialize_seconds,
                            const obs::ScanTelemetry& sweep_telemetry,
                            std::size_t batch_size);

  ServerConfig cfg_;
  ThreadPool pool_;
  obs::Recorder recorder_;
  BoundedMpmcQueue<std::shared_ptr<Pending>> queue_;

  std::vector<Db> dbs_;
  std::map<std::string, hmm::ModelEntry> models_;
  /// The SCAN verb's resident library: one calibrated HmmSearch per
  /// loaded model (library load order) plus the cached fuse plan.  Built
  /// by add_model_library; the plan is tuned lazily on the first scan
  /// (when the SIMD tier is settled) and reused by every later sweep.
  std::vector<std::unique_ptr<pipeline::HmmSearch>> scan_searches_;
  std::vector<std::string> scan_names_;
  std::optional<hmm::FusePlan> scan_plan_;

  /// Lifecycle lock (order 1 of the registry in docs/static_analysis.md:
  /// acquired before every other server lock).
  mutable Mutex state_mu_;
  bool draining_ FINEHMM_GUARDED_BY(state_mu_) = false;
  bool paused_ FINEHMM_GUARDED_BY(state_mu_) = false;
  Listener* listener_ FINEHMM_GUARDED_BY(state_mu_) = nullptr;
  std::vector<std::weak_ptr<Session>> sessions_ FINEHMM_GUARDED_BY(state_mu_);
  std::vector<std::thread> conn_threads_ FINEHMM_GUARDED_BY(state_mu_);

  CondVar pause_cv_;  // signals paused_ edges; waited on under state_mu_

  mutable Mutex stats_mu_;
  ServerStats stats_ FINEHMM_GUARDED_BY(stats_mu_);
  obs::ScanTelemetry telemetry_ FINEHMM_GUARDED_BY(stats_mu_);

  // Always-on observability.  Histograms record in nanoseconds via
  // relaxed atomic adds (lock-free, zero allocation); the trace ring is
  // mutex-guarded but touched once per completed request.
  const std::chrono::steady_clock::time_point start_time_ =
      std::chrono::steady_clock::now();
  obs::ConcurrentHistogram e2e_hist_;
  obs::ConcurrentHistogram queue_hist_;
  obs::ConcurrentHistogram sweep_hist_;
  obs::TraceRing trace_ring_;
};

}  // namespace finehmm::server
