#include "gpu/msv_sync_kernel.hpp"

#include <limits>

#include "util/error.hpp"

namespace finehmm::gpu {

using simt::kWarpSize;
using simt::WarpContext;
using simt::WarpReg;

MsvSyncKernel::MsvSyncKernel(const profile::MsvProfile& prof,
                             const bio::PackedDatabase& db,
                             ParamPlacement placement, MsvSmemLayout layout,
                             int coop_warps, std::vector<float>* out_scores,
                             std::vector<std::uint8_t>* out_overflow)
    : prof_(prof),
      db_(db),
      placement_(placement),
      layout_(layout),
      coop_warps_(coop_warps),
      out_scores_(out_scores),
      out_overflow_(out_overflow) {
  FH_REQUIRE(coop_warps_ >= 1, "need at least one cooperating warp");
  FH_REQUIRE(out_scores_ != nullptr, "output vector required");
}

void MsvSyncKernel::stage_params(WarpContext& ctx) const {
  if (placement_ != ParamPlacement::kShared) return;
  const int mpad = layout_.mpad;
  for (int x = 0; x < bio::kKp; ++x) {
    const std::uint8_t* row = prof_.linear_row(x);
    for (int p0 = 0; p0 < mpad; p0 += kWarpSize) {
      auto v = ctx.gmem_read_seq(row, p0, kWarpSize);
      ctx.smem_write_seq<std::uint8_t>(layout_.param_row_offset(x), p0, v);
    }
  }
}

void MsvSyncKernel::operator()(WarpContext& ctx, std::size_t item) const {
  const std::size_t seq = item;
  const int mpad = layout_.mpad;
  const std::uint32_t L = db_.length(seq);
  // The whole block shares ONE row buffer (warp slot 0's region).
  const std::size_t row_base = layout_.row_offset(0);

  const std::uint8_t base = prof_.base();
  const std::uint8_t bias = prof_.bias();
  const std::uint8_t tbm = prof_.tbm();
  const std::uint8_t tec = prof_.tec();
  const std::uint8_t tjb = prof_.tjb_for(static_cast<int>(L));
  const WarpReg<std::uint8_t> biasv = ctx.splat<std::uint8_t>(bias);
  const WarpReg<std::uint8_t> zerov = ctx.splat<std::uint8_t>(0);

  for (int e = 0;; e += kWarpSize) {
    int start = e + kWarpSize <= mpad + 1 ? e : mpad + 1 - kWarpSize;
    if (start < 0) start = 0;
    ctx.smem_write_seq<std::uint8_t>(row_base, start, zerov);
    if (start != e) break;
  }

  std::uint8_t xJ = 0;
  std::uint8_t xB = base > tjb ? std::uint8_t(base - tjb) : 0;
  ctx.tick_alu(2);

  const std::uint32_t* words = db_.words(seq);
  std::uint32_t packed = 0;
  bool overflowed = false;

  const int chunks = mpad / kWarpSize;
  std::vector<WarpReg<std::uint8_t>> deps(static_cast<std::size_t>(chunks));

  for (std::uint32_t i = 0; i < L && !overflowed; ++i) {
    std::uint32_t sub = i % bio::kResiduesPerWord;
    if (sub == 0) packed = ctx.gmem_read_scalar(&words[i / 6]);
    std::uint8_t res = static_cast<std::uint8_t>(
        (packed >> (sub * bio::kBitsPerResidue)) & bio::kResidueMask);
    ctx.tick_alu(2);

    const WarpReg<std::uint8_t> xBv =
        ctx.splat<std::uint8_t>(xB > tbm ? std::uint8_t(xB - tbm) : 0);
    WarpReg<std::uint8_t> xEv = zerov;

    // Phase 1: every warp reads its chunks' diagonal dependencies.
    for (int c = 0; c < chunks; ++c)
      deps[c] = ctx.smem_read_seq<std::uint8_t>(row_base, c * kWarpSize);
    // First barrier: all reads complete before anyone writes (Fig. 4 (1)).
    ctx.syncthreads();

    // Phase 2: compute and write back in place.
    for (int c = 0; c < chunks; ++c) {
      int p0 = c * kWarpSize;
      WarpReg<std::uint8_t> cost;
      if (placement_ == ParamPlacement::kShared) {
        cost = ctx.smem_read_seq<std::uint8_t>(layout_.param_row_offset(res),
                                               p0);
      } else {
        cost = ctx.gmem_read_param(prof_.linear_row(res), p0);
      }
      WarpReg<std::uint8_t> temp = ctx.max_u8(deps[c], xBv);
      temp = ctx.adds_u8(temp, biasv);
      temp = ctx.subs_u8(temp, cost);
      xEv = ctx.max_u8(xEv, temp);
      ctx.smem_write_seq<std::uint8_t>(row_base, p0 + 1, temp);
    }
    // Second barrier: all writes complete before the next row reads.
    ctx.syncthreads();

    // Shared-memory tree reduction for xE across the block's warps
    // (Harris-style), with two more barriers.
    std::uint8_t xE = ctx.reduce_max(xEv);
    for (int w = 1; w < coop_warps_; ++w) {
      // Each extra warp contributes a partial max via shared memory
      // (scratch in the second warp's unused row region).
      ctx.smem_write_scalar<std::uint8_t>(layout_.row_offset(1), xE);
      ctx.tick_alu(1);
    }
    ctx.syncthreads();
    ctx.syncthreads();

    if (prof_.overflowed(xE)) {
      overflowed = true;
      break;
    }
    xE = xE > tec ? std::uint8_t(xE - tec) : 0;
    if (xE > xJ) xJ = xE;
    xB = xJ > base ? xJ : base;
    xB = xB > tjb ? std::uint8_t(xB - tjb) : 0;
    ctx.tick_alu(4);
    ctx.counters().residues += 1;
    ctx.counters().cells += static_cast<std::uint64_t>(prof_.length());
  }

  float score = overflowed
                    ? std::numeric_limits<float>::infinity()
                    : prof_.score_from_bytes(xJ, static_cast<int>(L));
  (*out_scores_)[item] = score;
  if (out_overflow_) (*out_overflow_)[item] = overflowed ? 1 : 0;
  ctx.counters().gmem_transactions += 1;
  ctx.counters().gmem_bytes += 32;
}

}  // namespace finehmm::gpu
