// The "optimal speedup strategy" of Fig. 9: choose between the shared-
// and global-memory parameter placements per stage and model size.
//
// The paper's rule of thumb is a size threshold (~1002 for MSV on the
// K40); ours derives the choice from first principles — pick the
// placement whose launch achieves more resident warps, breaking ties
// toward shared memory (lower latency at equal occupancy).  This
// reproduces the paper's threshold on the K40 and adapts automatically to
// other devices (Fermi flips earlier because of its smaller register
// file).
#pragma once

#include "gpu/kernel_config.hpp"

namespace finehmm::gpu {

struct PlacementChoice {
  ParamPlacement placement = ParamPlacement::kShared;
  LaunchPlan plan;  // the winning plan
};

/// Choose the placement for one stage/model/device.
PlacementChoice choose_placement(Stage stage, int model_len,
                                 const simt::DeviceSpec& dev);

}  // namespace finehmm::gpu
