// Warp-synchronous P7Viterbi kernel — the paper's Algorithm 2 with the
// parallel Lazy-F procedure of Fig. 7.
//
// Like the MSV kernel, one warp owns one sequence and three shared-memory
// int16 rows (M / I / D) with the +1 index shift for diagonal reads.  The
// D->D dependency is resolved *within* each 32-position group by an
// iterative warp-vote loop: every lane computes its D->D candidate from
// its left neighbour (shuffle), and the group is final once
// __all(candidate <= current) — usually after a single check, because the
// D->D path is rarely taken.  A scalar carry propagates the chain across
// group boundaries.  Word scores are bit-identical to cpu::vit_scalar.
#pragma once

#include <cstdint>
#include <vector>

#include "bio/packing.hpp"
#include "gpu/kernel_config.hpp"
#include "profile/vit_profile.hpp"
#include "simt/warp.hpp"

namespace finehmm::gpu {

class VitWarpKernel {
 public:
  VitWarpKernel(const profile::VitProfile& prof,
                const bio::PackedDatabase& db, ParamPlacement placement,
                VitSmemLayout layout, std::vector<float>* out_scores,
                const std::vector<std::size_t>* items = nullptr);

  void stage_params(simt::WarpContext& ctx) const;

  void operator()(simt::WarpContext& ctx, std::size_t item) const;

 private:
  /// Load a 32-wide chunk of a parameter array (shared or global).
  simt::WarpReg<std::int16_t> load_param(simt::WarpContext& ctx,
                                         const std::int16_t* gmem_ptr,
                                         std::size_t smem_offset,
                                         int p0) const;

  const profile::VitProfile& prof_;
  const bio::PackedDatabase& db_;
  ParamPlacement placement_;
  VitSmemLayout layout_;
  std::vector<float>* out_scores_;
  const std::vector<std::size_t>* items_;
};

}  // namespace finehmm::gpu
