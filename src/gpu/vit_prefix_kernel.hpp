// P7Viterbi kernel with prefix-scan D-chain evaluation — the paper's
// FUTURE WORK (§VI), implemented as an alternative to the parallel Lazy-F
// of Fig. 7.
//
// Within a 32-position group the delete recurrence
//
//   D_k = max( M_{k-1} + tMD_{k-1},  D_{k-1} + tDD_{k-1} )
//
// is a max-plus chain.  Writing a_k for the M->D start candidate at
// position k and S_k for the running sum of D->D link costs, the closed
// form is
//
//   D_k = S_k + max_{j <= k} ( a_j - S_j ),
//
// i.e. one additive inclusive scan (for S) plus one max inclusive scan —
// exactly 2 * log2(32) = 10 warp-shuffle steps, a fixed upper bound
// independent of how often the D->D path is taken.  Lazy-F wins on
// ordinary models (its single vote usually suffices); the prefix version
// wins on delete-heavy models where Lazy-F iterates — the trade-off the
// paper's §VI anticipates, quantified by bench/ablation_prefix_scan.
//
// Impossible (-inf) D->D links are clamped to a large finite cost inside
// the scan (a saturating sum would poison the suffix); any path using a
// clamped link scores far below every live candidate and below the final
// flooring threshold, so scores remain bit-identical to cpu::vit_scalar
// (enforced by tests, including delete-heavy models).
#pragma once

#include <cstdint>
#include <vector>

#include "bio/packing.hpp"
#include "gpu/kernel_config.hpp"
#include "profile/vit_profile.hpp"
#include "simt/warp.hpp"

namespace finehmm::gpu {

class VitPrefixKernel {
 public:
  VitPrefixKernel(const profile::VitProfile& prof,
                  const bio::PackedDatabase& db, ParamPlacement placement,
                  VitSmemLayout layout, std::vector<float>* out_scores,
                  const std::vector<std::size_t>* items = nullptr);

  void stage_params(simt::WarpContext& ctx) const;
  void operator()(simt::WarpContext& ctx, std::size_t item) const;

 private:
  simt::WarpReg<std::int16_t> load_param(simt::WarpContext& ctx,
                                         const std::int16_t* gmem_ptr,
                                         std::size_t smem_offset,
                                         int p0) const;

  const profile::VitProfile& prof_;
  const bio::PackedDatabase& db_;
  ParamPlacement placement_;
  VitSmemLayout layout_;
  std::vector<float>* out_scores_;
  const std::vector<std::size_t>* items_;
};

}  // namespace finehmm::gpu
