#include "gpu/ssv_kernel.hpp"

#include <limits>

#include "util/error.hpp"

namespace finehmm::gpu {

using simt::kWarpSize;
using simt::WarpContext;
using simt::WarpReg;

SsvWarpKernel::SsvWarpKernel(const profile::MsvProfile& prof,
                             const bio::PackedDatabase& db,
                             ParamPlacement placement, MsvSmemLayout layout,
                             std::vector<float>* out_scores,
                             std::vector<std::uint8_t>* out_overflow,
                             const std::vector<std::size_t>* items)
    : prof_(prof),
      db_(db),
      placement_(placement),
      layout_(layout),
      out_scores_(out_scores),
      out_overflow_(out_overflow),
      items_(items) {
  FH_REQUIRE(layout_.mpad == prof.padded_length(), "layout/profile mismatch");
  FH_REQUIRE(out_scores_ != nullptr, "output vector required");
}

void SsvWarpKernel::stage_params(WarpContext& ctx) const {
  if (placement_ != ParamPlacement::kShared) return;
  const int mpad = layout_.mpad;
  for (int x = 0; x < bio::kKp; ++x) {
    const std::uint8_t* row = prof_.linear_row(x);
    for (int p0 = 0; p0 < mpad; p0 += kWarpSize) {
      auto v = ctx.gmem_read_seq(row, p0, kWarpSize);
      ctx.smem_write_seq<std::uint8_t>(layout_.param_row_offset(x), p0, v);
    }
  }
}

void SsvWarpKernel::operator()(WarpContext& ctx, std::size_t item) const {
  const std::size_t seq = items_ ? (*items_)[item] : item;
  const int mpad = layout_.mpad;
  const std::uint32_t L = db_.length(seq);
  const std::size_t row_base = layout_.row_offset(ctx.warp_slot());

  const std::uint8_t bias = prof_.bias();
  const std::uint8_t tec = prof_.tec();
  const std::uint8_t tjb = prof_.tjb_for(static_cast<int>(L));
  std::uint8_t xb = prof_.base() > tjb ? std::uint8_t(prof_.base() - tjb) : 0;
  xb = xb > prof_.tbm() ? std::uint8_t(xb - prof_.tbm()) : 0;
  const WarpReg<std::uint8_t> xBv = ctx.splat<std::uint8_t>(xb);
  const WarpReg<std::uint8_t> biasv = ctx.splat<std::uint8_t>(bias);
  const WarpReg<std::uint8_t> zerov = ctx.splat<std::uint8_t>(0);

  for (int e = 0;; e += kWarpSize) {
    int start = e + kWarpSize <= mpad + 1 ? e : mpad + 1 - kWarpSize;
    if (start < 0) start = 0;
    ctx.smem_write_seq<std::uint8_t>(row_base, start, zerov);
    if (start != e) break;
  }

  const std::uint32_t* words = db_.words(seq);
  std::uint32_t packed = 0;
  bool overflowed = false;
  WarpReg<std::uint8_t> xEv = zerov;

  for (std::uint32_t i = 0; i < L && !overflowed; ++i) {
    std::uint32_t sub = i % bio::kResiduesPerWord;
    if (sub == 0) packed = ctx.gmem_read_scalar(&words[i / 6]);
    std::uint8_t res = static_cast<std::uint8_t>(
        (packed >> (sub * bio::kBitsPerResidue)) & bio::kResidueMask);
    ctx.tick_alu(2);

    WarpReg<std::uint8_t> mmx =
        ctx.smem_read_seq<std::uint8_t>(row_base, 0);
    for (int p0 = 0; p0 < mpad; p0 += kWarpSize) {
      WarpReg<std::uint8_t> cost;
      if (placement_ == ParamPlacement::kShared) {
        cost = ctx.smem_read_seq<std::uint8_t>(layout_.param_row_offset(res),
                                               p0);
      } else {
        cost = ctx.gmem_read_param(prof_.linear_row(res), p0);
      }
      WarpReg<std::uint8_t> temp = ctx.max_u8(mmx, xBv);
      temp = ctx.adds_u8(temp, biasv);
      temp = ctx.subs_u8(temp, cost);
      xEv = ctx.max_u8(xEv, temp);
      if (p0 + kWarpSize < mpad)
        mmx = ctx.smem_read_seq<std::uint8_t>(row_base, p0 + kWarpSize);
      ctx.smem_write_seq<std::uint8_t>(row_base, p0 + 1, temp);
    }
    // Only the overflow check needs the row maximum (no J feedback).
    std::uint8_t xE = ctx.reduce_max(xEv);
    if (prof_.overflowed(xE)) overflowed = true;
    ctx.tick_alu(1);
    ctx.counters().residues += 1;
    ctx.counters().cells += static_cast<std::uint64_t>(prof_.length());
  }

  float score;
  if (overflowed) {
    score = std::numeric_limits<float>::infinity();
  } else {
    std::uint8_t xE = ctx.reduce_max(xEv);
    std::uint8_t xJ = xE > tec ? std::uint8_t(xE - tec) : 0;
    score = prof_.score_from_bytes(xJ, static_cast<int>(L));
    ctx.tick_alu(2);
  }
  (*out_scores_)[item] = score;
  if (out_overflow_) (*out_overflow_)[item] = overflowed ? 1 : 0;
  ctx.counters().gmem_transactions += 1;
  ctx.counters().gmem_bytes += 32;
}

}  // namespace finehmm::gpu
