// Warp-synchronous MSV kernel — the paper's Algorithm 1.
//
// One warp scores one sequence.  The DP row lives in shared memory, one
// byte per cell, written with a +1 index shift so that reading index p
// yields the previous row's value at position p-1 — the diagonal
// dependency with no shuffle and no synchronization.  Before a chunk's
// results are written, the next chunk's dependencies are read into
// registers (the double-buffering of Fig. 5), which protects the one cell
// at the warp boundary that the write would clobber.  The row maximum xE
// is computed with the butterfly warp-shuffle reduction; residues are
// streamed 6-per-word from the packed database.
//
// Scores are bit-identical to cpu::msv_scalar.
#pragma once

#include <cstdint>
#include <vector>

#include "bio/packing.hpp"
#include "gpu/kernel_config.hpp"
#include "profile/msv_profile.hpp"
#include "simt/warp.hpp"

namespace finehmm::gpu {

class MsvWarpKernel {
 public:
  /// `items` maps work indices to sequence ids (identity for a full scan).
  MsvWarpKernel(const profile::MsvProfile& prof,
                const bio::PackedDatabase& db, ParamPlacement placement,
                MsvSmemLayout layout, std::vector<float>* out_scores,
                std::vector<std::uint8_t>* out_overflow,
                const std::vector<std::size_t>* items = nullptr);

  /// Block prologue: stage model parameters into shared memory (one
  /// cooperative pass by the block's warps) under shared placement.
  void stage_params(simt::WarpContext& ctx) const;

  /// Score one work item (tier a of the three-tier scheme).
  void operator()(simt::WarpContext& ctx, std::size_t item) const;

 private:
  const profile::MsvProfile& prof_;
  const bio::PackedDatabase& db_;
  ParamPlacement placement_;
  MsvSmemLayout layout_;
  std::vector<float>* out_scores_;
  std::vector<std::uint8_t>* out_overflow_;
  const std::vector<std::size_t>* items_;
};

}  // namespace finehmm::gpu
