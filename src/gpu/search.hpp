// Database search drivers: single device and multi-GPU.
//
// A StageRun executes one filter stage (MSV or P7Viterbi) for a set of
// sequences on one simulated device, with the launch plan chosen by the
// occupancy maximizer, and returns scores plus the performance counters
// the cost model consumes.  Multi-GPU runs partition the database across
// devices by residue count (the sequence scoring is embarrassingly
// parallel across devices, §IV-A of the paper), and the slowest device
// bounds the wall clock.
#pragma once

#include <optional>
#include <vector>

#include "bio/packing.hpp"
#include "gpu/kernel_config.hpp"
#include "gpu/msv_kernel.hpp"
#include "gpu/msv_sync_kernel.hpp"
#include "gpu/ssv_kernel.hpp"
#include "gpu/vit_kernel.hpp"
#include "gpu/vit_prefix_kernel.hpp"
#include "simt/grid.hpp"

namespace finehmm::gpu {

struct StageResult {
  std::vector<float> scores;             // nats, one per work item
  std::vector<std::uint8_t> overflow;    // MSV only: byte filter saturated
  simt::PerfCounters counters;
  LaunchPlan plan;
};

class GpuSearch {
 public:
  explicit GpuSearch(simt::DeviceSpec dev) : dev_(std::move(dev)) {}

  const simt::DeviceSpec& device() const noexcept { return dev_; }

  /// Warp-synchronous MSV over the database (or an item subset).
  StageResult run_msv(const profile::MsvProfile& prof,
                      const bio::PackedDatabase& db, ParamPlacement placement,
                      const std::vector<std::size_t>* items = nullptr) const;

  /// Warp-synchronous SSV (single ungapped segment; extension — the even
  /// faster heuristic HMMER 3.1 later adopted as its first stage).
  StageResult run_ssv(const profile::MsvProfile& prof,
                      const bio::PackedDatabase& db, ParamPlacement placement,
                      const std::vector<std::size_t>* items = nullptr) const;

  /// Warp-synchronous P7Viterbi over an item subset (the MSV survivors).
  StageResult run_vit(const profile::VitProfile& prof,
                      const bio::PackedDatabase& db, ParamPlacement placement,
                      const std::vector<std::size_t>* items = nullptr) const;

  /// P7Viterbi with the prefix-scan D-chain evaluation (the paper's §VI
  /// future work) instead of parallel Lazy-F.  Scores are identical; the
  /// op mix differs (fixed 2*log2(32) shuffle steps per group).
  StageResult run_vit_prefix(
      const profile::VitProfile& prof, const bio::PackedDatabase& db,
      ParamPlacement placement,
      const std::vector<std::size_t>* items = nullptr) const;

  /// Ablation: the synchronized multi-warp MSV of Fig. 4 (one sequence per
  /// block, `coop_warps` warps cooperating with __syncthreads()).
  StageResult run_msv_sync(const profile::MsvProfile& prof,
                           const bio::PackedDatabase& db,
                           ParamPlacement placement, int coop_warps) const;

 private:
  simt::DeviceSpec dev_;
};

/// Result of a database partitioned over several devices.
struct MultiDeviceResult {
  std::vector<StageResult> per_device;
  std::vector<float> scores;           // merged over the whole database
  std::vector<std::uint8_t> overflow;
};

/// Split [0, db.size()) into contiguous per-device ranges with roughly
/// equal residue counts.
std::vector<std::vector<std::size_t>> partition_by_residues(
    const bio::PackedDatabase& db, std::size_t n_devices);

/// Run the MSV stage with the database partitioned across devices.
MultiDeviceResult run_msv_multi(const std::vector<simt::DeviceSpec>& devs,
                                const profile::MsvProfile& prof,
                                const bio::PackedDatabase& db,
                                ParamPlacement placement);

}  // namespace finehmm::gpu
