// Synchronized multi-warp MSV kernel — the baseline the paper's
// warp-synchronous design is measured against (Fig. 4).
//
// Here a whole thread block cooperates on ONE sequence: the block's warps
// partition each DP row, and because the diagonal dependency crosses warp
// boundaries (the yellow cells of Fig. 4), every row needs two
// __syncthreads() — one after reading dependencies, one after writing —
// plus a shared-memory tree reduction for the row maximum.  Scores remain
// bit-identical to the scalar reference; what differs is the cost: the
// sync counters feed the performance model, quantifying the overhead the
// paper's design eliminates.
#pragma once

#include <cstdint>
#include <vector>

#include "bio/packing.hpp"
#include "gpu/kernel_config.hpp"
#include "profile/msv_profile.hpp"
#include "simt/warp.hpp"

namespace finehmm::gpu {

class MsvSyncKernel {
 public:
  /// `coop_warps` is the number of warps cooperating per sequence (the
  /// real block width); the launcher drives this kernel with one context
  /// per block.
  MsvSyncKernel(const profile::MsvProfile& prof,
                const bio::PackedDatabase& db, ParamPlacement placement,
                MsvSmemLayout layout, int coop_warps,
                std::vector<float>* out_scores,
                std::vector<std::uint8_t>* out_overflow);

  void stage_params(simt::WarpContext& ctx) const;
  void operator()(simt::WarpContext& ctx, std::size_t item) const;

 private:
  const profile::MsvProfile& prof_;
  const bio::PackedDatabase& db_;
  ParamPlacement placement_;
  MsvSmemLayout layout_;
  int coop_warps_;
  std::vector<float>* out_scores_;
  std::vector<std::uint8_t>* out_overflow_;
};

}  // namespace finehmm::gpu
