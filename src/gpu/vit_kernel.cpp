#include "gpu/vit_kernel.hpp"

#include "util/error.hpp"

namespace finehmm::gpu {

using profile::kWordNegInf;
using profile::sat_add_word;
using simt::kWarpSize;
using simt::WarpContext;
using simt::WarpReg;

VitWarpKernel::VitWarpKernel(const profile::VitProfile& prof,
                             const bio::PackedDatabase& db,
                             ParamPlacement placement, VitSmemLayout layout,
                             std::vector<float>* out_scores,
                             const std::vector<std::size_t>* items)
    : prof_(prof),
      db_(db),
      placement_(placement),
      layout_(layout),
      out_scores_(out_scores),
      items_(items) {
  FH_REQUIRE(layout_.mpad == prof.padded_length(), "layout/profile mismatch");
  FH_REQUIRE(out_scores_ != nullptr, "output vector required");
}

void VitWarpKernel::stage_params(WarpContext& ctx) const {
  if (placement_ != ParamPlacement::kShared) return;
  const int mpad = layout_.mpad;
  for (int x = 0; x < bio::kKp; ++x) {
    const std::int16_t* row = prof_.msc_row(x);
    for (int p0 = 0; p0 < mpad; p0 += kWarpSize) {
      auto v = ctx.gmem_read_seq(row, p0, kWarpSize);
      ctx.smem_write_seq<std::int16_t>(layout_.msc_row_offset(x) , p0, v);
    }
  }
  const std::int16_t* trans[7] = {
      prof_.tmm_data(),    prof_.tim_data(),    prof_.tdm_data(),
      prof_.tmi_data(),    prof_.tii_data(),    prof_.tmd_in_data(),
      prof_.tdd_in_data()};
  for (int t = 0; t < 7; ++t) {
    for (int p0 = 0; p0 < mpad; p0 += kWarpSize) {
      auto v = ctx.gmem_read_seq(trans[t], p0, kWarpSize);
      ctx.smem_write_seq<std::int16_t>(layout_.trans_offset(t), p0, v);
    }
  }
}

WarpReg<std::int16_t> VitWarpKernel::load_param(WarpContext& ctx,
                                                const std::int16_t* gmem_ptr,
                                                std::size_t smem_offset,
                                                int p0) const {
  if (placement_ == ParamPlacement::kShared)
    return ctx.smem_read_seq<std::int16_t>(smem_offset, p0);
  return ctx.gmem_read_param(gmem_ptr, p0);
}

void VitWarpKernel::operator()(WarpContext& ctx, std::size_t item) const {
  const std::size_t seq = items_ ? (*items_)[item] : item;
  const int mpad = layout_.mpad;
  const std::uint32_t L = db_.length(seq);
  const int w = ctx.warp_slot();
  const std::size_t mrow = layout_.row_offset(w, 0);
  const std::size_t irow = layout_.row_offset(w, 1);
  const std::size_t drow = layout_.row_offset(w, 2);

  const auto lm = prof_.length_model_for(static_cast<int>(L));
  const WarpReg<std::int16_t> ninfv = ctx.splat<std::int16_t>(kWordNegInf);

  // Initialize all three rows to -inf (indices 0..mpad).
  for (std::size_t r : {mrow, irow, drow}) {
    for (int e = 0;; e += kWarpSize) {
      int start = e + kWarpSize <= mpad + 1 ? e : mpad + 1 - kWarpSize;
      ctx.smem_write_seq<std::int16_t>(r, start, ninfv);
      if (start != e) break;
    }
  }

  std::int16_t xN = profile::VitProfile::kBase;
  std::int16_t xB = sat_add_word(xN, lm.move);
  std::int16_t xJ = kWordNegInf;
  std::int16_t xC = kWordNegInf;
  ctx.tick_alu(2);

  const std::uint32_t* words = db_.words(seq);
  std::uint32_t packed = 0;

  for (std::uint32_t i = 0; i < L; ++i) {
    std::uint32_t sub = i % bio::kResiduesPerWord;
    if (sub == 0) packed = ctx.gmem_read_scalar(&words[i / 6]);
    std::uint8_t res = static_cast<std::uint8_t>(
        (packed >> (sub * bio::kBitsPerResidue)) & bio::kResidueMask);
    ctx.tick_alu(2);

    const WarpReg<std::int16_t> xBentry =
        ctx.splat<std::int16_t>(sat_add_word(xB, prof_.entry()));
    WarpReg<std::int16_t> xEv = ninfv;
    std::int16_t carry_m = kWordNegInf;  // M(i, last pos of prev group)
    std::int16_t carry_d = kWordNegInf;  // D(i, last pos of prev group)

    // First group's diagonal reads (previous row, +1-shift addressing).
    WarpReg<std::int16_t> m_diag = ctx.smem_read_seq<std::int16_t>(mrow, 0);
    WarpReg<std::int16_t> i_diag = ctx.smem_read_seq<std::int16_t>(irow, 0);
    WarpReg<std::int16_t> d_diag = ctx.smem_read_seq<std::int16_t>(drow, 0);

    for (int p0 = 0; p0 < mpad; p0 += kWarpSize) {
      const std::int16_t* msc_g = prof_.msc_row(res);
      WarpReg<std::int16_t> msc =
          load_param(ctx, msc_g, layout_.msc_row_offset(res), p0);
      WarpReg<std::int16_t> tmm =
          load_param(ctx, prof_.tmm_data(), layout_.trans_offset(0), p0);
      WarpReg<std::int16_t> tim =
          load_param(ctx, prof_.tim_data(), layout_.trans_offset(1), p0);
      WarpReg<std::int16_t> tdm =
          load_param(ctx, prof_.tdm_data(), layout_.trans_offset(2), p0);
      WarpReg<std::int16_t> tmi =
          load_param(ctx, prof_.tmi_data(), layout_.trans_offset(3), p0);
      WarpReg<std::int16_t> tii =
          load_param(ctx, prof_.tii_data(), layout_.trans_offset(4), p0);
      WarpReg<std::int16_t> tmd_in =
          load_param(ctx, prof_.tmd_in_data(), layout_.trans_offset(5), p0);
      WarpReg<std::int16_t> tdd_in =
          load_param(ctx, prof_.tdd_in_data(), layout_.trans_offset(6), p0);

      // Same-column (previous row) values for the insert recurrence.
      WarpReg<std::int16_t> m_same =
          ctx.smem_read_seq<std::int16_t>(mrow, p0 + 1);
      WarpReg<std::int16_t> i_same =
          ctx.smem_read_seq<std::int16_t>(irow, p0 + 1);

      // temp_m = max(B->M, M->M, I->M, D->M) + emission (Alg. 2 l.16).
      WarpReg<std::int16_t> temp_m = xBentry;
      temp_m = ctx.max_w(temp_m, ctx.adds_w(m_diag, tmm));
      temp_m = ctx.max_w(temp_m, ctx.adds_w(i_diag, tim));
      temp_m = ctx.max_w(temp_m, ctx.adds_w(d_diag, tdm));
      temp_m = ctx.adds_w(temp_m, msc);
      xEv = ctx.max_w(xEv, temp_m);

      // temp_i = max(M->I, I->I) (Alg. 2 l.15).
      WarpReg<std::int16_t> temp_i =
          ctx.max_w(ctx.adds_w(m_same, tmi), ctx.adds_w(i_same, tii));

      // Partial D from the M->D path (Alg. 2 l.17), then the parallel
      // Lazy-F fixpoint for the D->D chains within this group (Fig. 7).
      WarpReg<std::int16_t> m_left = ctx.shfl_up(temp_m, 1, carry_m);
      WarpReg<std::int16_t> d = ctx.adds_w(m_left, tmd_in);
      for (int iter = 0; iter < kWarpSize; ++iter) {
        ctx.counters().lazyf_inner += 1;
        WarpReg<std::int16_t> d_left = ctx.shfl_up(d, 1, carry_d);
        WarpReg<std::int16_t> cand = ctx.adds_w(d_left, tdd_in);
        // __all(MD_score >= DD_score): no lane improves, group is final.
        if (!ctx.vote_any(ctx.gt(cand, d))) break;
        d = ctx.max_w(d, cand);
      }

      // Double buffer the next group's diagonals before writing.
      WarpReg<std::int16_t> m_next = m_diag, i_next = i_diag,
                            d_next = d_diag;
      if (p0 + kWarpSize < mpad) {
        m_next = ctx.smem_read_seq<std::int16_t>(mrow, p0 + kWarpSize);
        i_next = ctx.smem_read_seq<std::int16_t>(irow, p0 + kWarpSize);
        d_next = ctx.smem_read_seq<std::int16_t>(drow, p0 + kWarpSize);
      }

      ctx.smem_write_seq<std::int16_t>(mrow, p0 + 1, temp_m);
      ctx.smem_write_seq<std::int16_t>(irow, p0 + 1, temp_i);
      ctx.smem_write_seq<std::int16_t>(drow, p0 + 1, d);

      carry_m = ctx.broadcast(temp_m, kWarpSize - 1);
      carry_d = ctx.broadcast(d, kWarpSize - 1);
      m_diag = m_next;
      i_diag = i_next;
      d_diag = d_next;
    }

    std::int16_t xE = ctx.reduce_max(xEv);
    xJ = std::max(sat_add_word(xJ, lm.loop), sat_add_word(xE, prof_.e_j()));
    xC = std::max(sat_add_word(xC, lm.loop), sat_add_word(xE, prof_.e_c()));
    xN = sat_add_word(xN, lm.loop);
    xB = std::max(sat_add_word(xN, lm.move), sat_add_word(xJ, lm.move));
    ctx.tick_alu(8);
    ctx.counters().residues += 1;
    ctx.counters().cells += static_cast<std::uint64_t>(prof_.length());
  }

  (*out_scores_)[item] = prof_.score_from_words(xC, lm);
  ctx.counters().gmem_transactions += 1;
  ctx.counters().gmem_bytes += 32;
}

}  // namespace finehmm::gpu
