#include "gpu/kernel_config.hpp"

#include "util/error.hpp"

namespace finehmm::gpu {

namespace {

std::size_t stage_smem(Stage stage, ParamPlacement placement, int mpad,
                       int warps, const simt::DeviceSpec& dev) {
  if (stage == Stage::kMsv) {
    MsvSmemLayout l;
    l.mpad = mpad;
    l.warps = warps;
    l.shared_params = placement == ParamPlacement::kShared;
    l.shuffle_scratch = !dev.has_warp_shuffle;
    return l.total_bytes();
  }
  VitSmemLayout l;
  l.mpad = mpad;
  l.warps = warps;
  l.shared_params = placement == ParamPlacement::kShared;
  l.shuffle_scratch = !dev.has_warp_shuffle;
  return l.total_bytes();
}

}  // namespace

LaunchPlan plan_launch(Stage stage, ParamPlacement placement, int model_len,
                       const simt::DeviceSpec& dev) {
  FH_REQUIRE(model_len >= 1, "model length must be >= 1");
  const int mpad = (model_len + 31) / 32 * 32;
  const int regs = stage == Stage::kMsv ? kMsvRegsPerThread
                                        : kVitRegsPerThread;

  LaunchPlan best;
  best.stage = stage;
  best.placement = placement;

  for (int warps = 1; warps <= dev.max_warps_per_sm; warps *= 2) {
    if (warps * simt::kWarpSize > dev.max_threads_per_sm) break;
    std::size_t smem = stage_smem(stage, placement, mpad, warps, dev);
    if (smem > dev.shared_mem_per_block) continue;

    simt::KernelResources res;
    res.regs_per_thread = regs;
    res.smem_per_block = smem;
    res.threads_per_block = warps * simt::kWarpSize;
    simt::Occupancy occ = simt::compute_occupancy(dev, res);
    if (occ.warps_per_sm == 0) continue;

    bool better = !best.feasible || occ.warps_per_sm > best.occ.warps_per_sm ||
                  (occ.warps_per_sm == best.occ.warps_per_sm &&
                   warps > best.cfg.warps_per_block);
    if (better) {
      best.feasible = true;
      best.res = res;
      best.occ = occ;
      best.cfg.warps_per_block = warps;
      best.cfg.smem_bytes_per_block = smem;
      best.cfg.grid_blocks = occ.blocks_per_sm * dev.sm_count;
    }
  }
  return best;
}

}  // namespace finehmm::gpu
