// Kernel resource modeling and launch auto-configuration.
//
// The paper's two memory configurations (§IV):
//  * kShared — model parameters staged into shared memory once per block;
//    low-latency loads but shared-memory footprint grows with M, which
//    throttles resident warps (occupancy) for large models.
//  * kGlobal — parameters streamed from global memory; higher latency but
//    the only shared memory consumed is the per-warp DP rows, so occupancy
//    stays higher for large models.
// The optimal strategy switches between them (threshold near M ~ 1000 for
// MSV on the K40, Fig. 9) — reproduced by bench/fig9_stage_speedup.
//
// Register counts are modeled constants (we have no real compiler output):
// 30 regs/thread for the MSV kernel and 63 for the P7Viterbi kernel.  The
// latter pins Kepler occupancy at 50% exactly as §IV reports ("the amount
// of available registers per SM becomes the main limiting factor").
#pragma once

#include <cstddef>

#include "profile/msv_profile.hpp"
#include "profile/vit_profile.hpp"
#include "simt/device.hpp"
#include "simt/grid.hpp"
#include "simt/occupancy.hpp"

namespace finehmm::gpu {

enum class ParamPlacement { kShared, kGlobal };
enum class Stage { kMsv, kViterbi };

inline const char* placement_name(ParamPlacement p) {
  return p == ParamPlacement::kShared ? "shared" : "global";
}

/// Modeled register pressure per thread.
inline constexpr int kMsvRegsPerThread = 30;
inline constexpr int kVitRegsPerThread = 63;

/// Shared-memory layout of an MSV kernel block.
struct MsvSmemLayout {
  int mpad = 0;            // padded model length
  int warps = 0;           // warps per block
  bool shared_params = false;
  bool shuffle_scratch = false;  // Fermi: per-warp reduction scratch

  std::size_t param_bytes() const {
    return shared_params ? static_cast<std::size_t>(bio::kKp) * mpad : 0;
  }
  std::size_t row_elems() const { return static_cast<std::size_t>(mpad) + 1; }
  std::size_t param_row_offset(int residue) const {
    return static_cast<std::size_t>(residue) * mpad;
  }
  std::size_t row_offset(int warp) const {
    return param_bytes() + static_cast<std::size_t>(warp) * row_elems();
  }
  std::size_t scratch_bytes() const {
    return shuffle_scratch
               ? static_cast<std::size_t>(warps) * simt::kWarpSize * 4
               : 0;
  }
  std::size_t total_bytes() const {
    return param_bytes() + static_cast<std::size_t>(warps) * row_elems() +
           scratch_bytes();
  }
};

/// Shared-memory layout of a P7Viterbi kernel block.  The parameter region
/// holds the padded emission table followed by seven padded transition
/// arrays; each warp owns three int16 DP rows (M / I / D).
struct VitSmemLayout {
  int mpad = 0;
  int warps = 0;
  bool shared_params = false;
  bool shuffle_scratch = false;

  std::size_t param_words() const {
    return shared_params
               ? static_cast<std::size_t>(bio::kKp + 7) * mpad
               : 0;
  }
  std::size_t param_bytes() const { return param_words() * 2; }
  std::size_t msc_row_offset(int residue) const {
    return static_cast<std::size_t>(residue) * mpad * 2;
  }
  /// Transition array t (0..6: tmm,tim,tdm,tmi,tii,tmd_in,tdd_in).
  std::size_t trans_offset(int t) const {
    return (static_cast<std::size_t>(bio::kKp) + t) * mpad * 2;
  }
  std::size_t row_elems() const { return static_cast<std::size_t>(mpad) + 1; }
  /// DP array a (0=M,1=I,2=D) of a warp.
  std::size_t row_offset(int warp, int a) const {
    return param_bytes() +
           (static_cast<std::size_t>(warp) * 3 + a) * row_elems() * 2;
  }
  std::size_t scratch_bytes() const {
    return shuffle_scratch
               ? static_cast<std::size_t>(warps) * simt::kWarpSize * 4
               : 0;
  }
  std::size_t total_bytes() const {
    return param_bytes() +
           static_cast<std::size_t>(warps) * 3 * row_elems() * 2 +
           scratch_bytes();
  }
};

/// A fully resolved launch: placement, block shape, resources, occupancy.
struct LaunchPlan {
  Stage stage = Stage::kMsv;
  ParamPlacement placement = ParamPlacement::kShared;
  simt::LaunchConfig cfg;
  simt::KernelResources res;
  simt::Occupancy occ;
  bool feasible = false;
};

/// Find the warps-per-block that maximizes occupancy for the given stage,
/// placement and model size on the device.  Infeasible (e.g. shared
/// placement of a model larger than shared memory) yields feasible=false.
LaunchPlan plan_launch(Stage stage, ParamPlacement placement, int model_len,
                       const simt::DeviceSpec& dev);

}  // namespace finehmm::gpu
