// Warp-synchronous SSV kernel (extension; see cpu/ssv.hpp).
//
// Identical structure to the MSV kernel (Alg. 1) but the begin score is a
// constant (no J feedback), so the per-row specials collapse to tracking
// the global maximum — one warp reduction per sequence rather than per
// row when the early-overflow check is hoisted.  We keep the per-row
// reduction for the overflow check, as HMMER's SSV does.
#pragma once

#include <cstdint>
#include <vector>

#include "bio/packing.hpp"
#include "gpu/kernel_config.hpp"
#include "profile/msv_profile.hpp"
#include "simt/warp.hpp"

namespace finehmm::gpu {

class SsvWarpKernel {
 public:
  SsvWarpKernel(const profile::MsvProfile& prof,
                const bio::PackedDatabase& db, ParamPlacement placement,
                MsvSmemLayout layout, std::vector<float>* out_scores,
                std::vector<std::uint8_t>* out_overflow,
                const std::vector<std::size_t>* items = nullptr);

  void stage_params(simt::WarpContext& ctx) const;
  void operator()(simt::WarpContext& ctx, std::size_t item) const;

 private:
  const profile::MsvProfile& prof_;
  const bio::PackedDatabase& db_;
  ParamPlacement placement_;
  MsvSmemLayout layout_;
  std::vector<float>* out_scores_;
  std::vector<std::uint8_t>* out_overflow_;
  const std::vector<std::size_t>* items_;
};

}  // namespace finehmm::gpu
