#include "gpu/placement_policy.hpp"

#include "util/error.hpp"

namespace finehmm::gpu {

PlacementChoice choose_placement(Stage stage, int model_len,
                                 const simt::DeviceSpec& dev) {
  LaunchPlan shared =
      plan_launch(stage, ParamPlacement::kShared, model_len, dev);
  LaunchPlan global =
      plan_launch(stage, ParamPlacement::kGlobal, model_len, dev);
  FH_REQUIRE(shared.feasible || global.feasible,
             "no feasible launch for this model on this device");

  PlacementChoice out;
  // Higher occupancy wins; shared wins ties (same residency, cheaper
  // loads).  A shared launch that is only marginally below global's
  // occupancy still wins while it keeps enough warps to hide latency
  // (~1/3 of the warp slots) — the L2 round trips of the global
  // configuration cost roughly that much headroom.
  bool pick_shared;
  if (!global.feasible) {
    pick_shared = true;
  } else if (!shared.feasible) {
    pick_shared = false;
  } else if (shared.occ.warps_per_sm >= global.occ.warps_per_sm) {
    pick_shared = true;
  } else {
    pick_shared = shared.occ.fraction >= 0.34;
  }
  out.placement = pick_shared ? ParamPlacement::kShared
                              : ParamPlacement::kGlobal;
  out.plan = pick_shared ? shared : global;
  return out;
}

}  // namespace finehmm::gpu
