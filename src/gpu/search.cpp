#include "gpu/search.hpp"

#include "util/error.hpp"

namespace finehmm::gpu {

namespace {

std::size_t item_count(const bio::PackedDatabase& db,
                       const std::vector<std::size_t>* items) {
  return items ? items->size() : db.size();
}

}  // namespace

StageResult GpuSearch::run_msv(const profile::MsvProfile& prof,
                               const bio::PackedDatabase& db,
                               ParamPlacement placement,
                               const std::vector<std::size_t>* items) const {
  StageResult out;
  out.plan = plan_launch(Stage::kMsv, placement, prof.length(), dev_);
  FH_REQUIRE(out.plan.feasible,
             "MSV launch infeasible for this placement/model size");

  MsvSmemLayout layout;
  layout.mpad = prof.padded_length();
  layout.warps = out.plan.cfg.warps_per_block;
  layout.shared_params = placement == ParamPlacement::kShared;
  layout.shuffle_scratch = !dev_.has_warp_shuffle;

  std::size_t n = item_count(db, items);
  out.scores.assign(n, 0.0f);
  out.overflow.assign(n, 0);

  MsvWarpKernel kernel(prof, db, placement, layout, &out.scores,
                       &out.overflow, items);
  out.counters = simt::launch_grid(
      dev_, out.plan.cfg, n,
      [&kernel](simt::WarpContext& ctx, std::size_t item) {
        kernel(ctx, item);
      },
      [&kernel](simt::WarpContext& ctx) { kernel.stage_params(ctx); });
  return out;
}

StageResult GpuSearch::run_ssv(const profile::MsvProfile& prof,
                               const bio::PackedDatabase& db,
                               ParamPlacement placement,
                               const std::vector<std::size_t>* items) const {
  StageResult out;
  out.plan = plan_launch(Stage::kMsv, placement, prof.length(), dev_);
  FH_REQUIRE(out.plan.feasible,
             "SSV launch infeasible for this placement/model size");

  MsvSmemLayout layout;
  layout.mpad = prof.padded_length();
  layout.warps = out.plan.cfg.warps_per_block;
  layout.shared_params = placement == ParamPlacement::kShared;
  layout.shuffle_scratch = !dev_.has_warp_shuffle;

  std::size_t n = item_count(db, items);
  out.scores.assign(n, 0.0f);
  out.overflow.assign(n, 0);

  SsvWarpKernel kernel(prof, db, placement, layout, &out.scores,
                       &out.overflow, items);
  out.counters = simt::launch_grid(
      dev_, out.plan.cfg, n,
      [&kernel](simt::WarpContext& ctx, std::size_t item) {
        kernel(ctx, item);
      },
      [&kernel](simt::WarpContext& ctx) { kernel.stage_params(ctx); });
  return out;
}

StageResult GpuSearch::run_vit(const profile::VitProfile& prof,
                               const bio::PackedDatabase& db,
                               ParamPlacement placement,
                               const std::vector<std::size_t>* items) const {
  StageResult out;
  out.plan = plan_launch(Stage::kViterbi, placement, prof.length(), dev_);
  FH_REQUIRE(out.plan.feasible,
             "P7Viterbi launch infeasible for this placement/model size");

  VitSmemLayout layout;
  layout.mpad = prof.padded_length();
  layout.warps = out.plan.cfg.warps_per_block;
  layout.shared_params = placement == ParamPlacement::kShared;
  layout.shuffle_scratch = !dev_.has_warp_shuffle;

  std::size_t n = item_count(db, items);
  out.scores.assign(n, 0.0f);

  VitWarpKernel kernel(prof, db, placement, layout, &out.scores, items);
  out.counters = simt::launch_grid(
      dev_, out.plan.cfg, n,
      [&kernel](simt::WarpContext& ctx, std::size_t item) {
        kernel(ctx, item);
      },
      [&kernel](simt::WarpContext& ctx) { kernel.stage_params(ctx); });
  return out;
}

StageResult GpuSearch::run_vit_prefix(
    const profile::VitProfile& prof, const bio::PackedDatabase& db,
    ParamPlacement placement, const std::vector<std::size_t>* items) const {
  StageResult out;
  out.plan = plan_launch(Stage::kViterbi, placement, prof.length(), dev_);
  FH_REQUIRE(out.plan.feasible,
             "P7Viterbi launch infeasible for this placement/model size");

  VitSmemLayout layout;
  layout.mpad = prof.padded_length();
  layout.warps = out.plan.cfg.warps_per_block;
  layout.shared_params = placement == ParamPlacement::kShared;
  layout.shuffle_scratch = !dev_.has_warp_shuffle;

  std::size_t n = item_count(db, items);
  out.scores.assign(n, 0.0f);

  VitPrefixKernel kernel(prof, db, placement, layout, &out.scores, items);
  out.counters = simt::launch_grid(
      dev_, out.plan.cfg, n,
      [&kernel](simt::WarpContext& ctx, std::size_t item) {
        kernel(ctx, item);
      },
      [&kernel](simt::WarpContext& ctx) { kernel.stage_params(ctx); });
  return out;
}

StageResult GpuSearch::run_msv_sync(const profile::MsvProfile& prof,
                                    const bio::PackedDatabase& db,
                                    ParamPlacement placement,
                                    int coop_warps) const {
  FH_REQUIRE(coop_warps >= 1, "need at least one cooperating warp");
  StageResult out;
  // Resource shape of the real cooperative block.
  out.plan = plan_launch(Stage::kMsv, placement, prof.length(), dev_);
  FH_REQUIRE(out.plan.feasible, "MSV sync launch infeasible");

  MsvSmemLayout layout;
  layout.mpad = prof.padded_length();
  layout.warps = coop_warps;
  layout.shared_params = placement == ParamPlacement::kShared;
  layout.shuffle_scratch = !dev_.has_warp_shuffle;
  FH_REQUIRE(layout.total_bytes() <= dev_.shared_mem_per_block,
             "cooperative block exceeds shared memory");

  // Occupancy of the cooperative shape.
  simt::KernelResources res;
  res.regs_per_thread = kMsvRegsPerThread;
  res.smem_per_block = layout.total_bytes();
  res.threads_per_block = coop_warps * simt::kWarpSize;
  out.plan.res = res;
  out.plan.occ = simt::compute_occupancy(dev_, res);
  out.plan.cfg.warps_per_block = coop_warps;
  out.plan.cfg.smem_bytes_per_block = layout.total_bytes();
  out.plan.cfg.grid_blocks =
      std::max(1, out.plan.occ.blocks_per_sm * dev_.sm_count);

  std::size_t n = db.size();
  out.scores.assign(n, 0.0f);
  out.overflow.assign(n, 0);

  MsvSyncKernel kernel(prof, db, placement, layout, coop_warps, &out.scores,
                       &out.overflow);
  // One context per block: each queue item is processed by the whole
  // cooperating block, so the launcher runs one "warp" per block.
  simt::LaunchConfig drive = out.plan.cfg;
  drive.warps_per_block = 1;
  out.counters = simt::launch_grid(
      dev_, drive, n,
      [&kernel](simt::WarpContext& ctx, std::size_t item) {
        kernel(ctx, item);
      },
      [&kernel](simt::WarpContext& ctx) { kernel.stage_params(ctx); });
  return out;
}

std::vector<std::vector<std::size_t>> partition_by_residues(
    const bio::PackedDatabase& db, std::size_t n_devices) {
  FH_REQUIRE(n_devices >= 1, "need at least one device");
  std::vector<std::vector<std::size_t>> parts(n_devices);
  std::uint64_t total = db.total_residues();
  std::uint64_t per_dev = (total + n_devices - 1) / n_devices;
  std::size_t dev = 0;
  std::uint64_t acc = 0;
  for (std::size_t s = 0; s < db.size(); ++s) {
    if (acc >= per_dev * (dev + 1) && dev + 1 < n_devices) ++dev;
    parts[dev].push_back(s);
    acc += db.length(s);
  }
  return parts;
}

MultiDeviceResult run_msv_multi(const std::vector<simt::DeviceSpec>& devs,
                                const profile::MsvProfile& prof,
                                const bio::PackedDatabase& db,
                                ParamPlacement placement) {
  MultiDeviceResult out;
  auto parts = partition_by_residues(db, devs.size());
  out.scores.assign(db.size(), 0.0f);
  out.overflow.assign(db.size(), 0);
  for (std::size_t d = 0; d < devs.size(); ++d) {
    GpuSearch search(devs[d]);
    StageResult r = search.run_msv(prof, db, placement, &parts[d]);
    for (std::size_t i = 0; i < parts[d].size(); ++i) {
      out.scores[parts[d][i]] = r.scores[i];
      out.overflow[parts[d][i]] = r.overflow[i];
    }
    out.per_device.push_back(std::move(r));
  }
  return out;
}

}  // namespace finehmm::gpu
