#include "pipeline/workload.hpp"

#include "hmm/sampler.hpp"
#include "util/error.hpp"

namespace finehmm::pipeline {

bio::SequenceDatabase make_workload(const hmm::Plan7Hmm& model,
                                    const WorkloadSpec& spec) {
  FH_REQUIRE(spec.homolog_fraction >= 0.0 && spec.homolog_fraction <= 1.0,
             "homolog fraction out of range");
  bio::SequenceDatabase db = bio::generate_database(spec.db);
  if (spec.homolog_fraction <= 0.0) return db;

  Pcg32 rng(spec.seed);
  std::size_t n_hom = static_cast<std::size_t>(
      spec.homolog_fraction * static_cast<double>(db.size()));
  for (std::size_t i = 0; i < n_hom; ++i) {
    // Replace a deterministic slot with a homolog so database size and
    // length statistics stay comparable across homolog fractions.
    std::size_t slot =
        db.empty() ? 0 : rng.below(static_cast<std::uint32_t>(db.size()));
    auto hom = hmm::sample_homolog(model, rng, {},
                                   "homolog_" + std::to_string(i));
    db.replace(slot, std::move(hom));
  }
  return db;
}

}  // namespace finehmm::pipeline
