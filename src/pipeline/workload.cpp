#include "pipeline/workload.hpp"

#include <bit>

#include "hmm/sampler.hpp"
#include "util/check.hpp"
#include "util/error.hpp"

namespace finehmm::pipeline {

namespace {

/// Geometric bucket index: lengths up to 32 share bucket 0, then each
/// bucket covers a 2x range (33..64, 65..128, ...).
int length_bucket(std::size_t length) {
  return std::bit_width(length >> 5);
}

}  // namespace

ScanSchedule make_length_schedule(
    std::size_t n, const std::function<std::size_t(std::size_t)>& length_of) {
  ScanSchedule sched;
  sched.order.reserve(n);

  int max_bucket = 0;
  std::vector<int> buckets(n);
  for (std::size_t i = 0; i < n; ++i) {
    buckets[i] = length_bucket(length_of(i));
    if (buckets[i] > max_bucket) max_bucket = buckets[i];
  }

  // Two-pass counting sort, emitting buckets longest-first and indices
  // ascending within each bucket: deterministic, O(n), no comparator.
  std::vector<std::size_t> count(static_cast<std::size_t>(max_bucket) + 1, 0);
  std::vector<std::uint64_t> residues(count.size(), 0);
  for (std::size_t i = 0; i < n; ++i) {
    ++count[static_cast<std::size_t>(buckets[i])];
    residues[static_cast<std::size_t>(buckets[i])] += length_of(i);
  }
  for (const auto c : count)
    if (c != 0) ++sched.n_buckets;
  std::vector<std::size_t> start(count.size(), 0);
  std::size_t pos = 0;
  for (std::size_t b = count.size(); b-- > 0;) {
    start[b] = pos;
    pos += count[b];
    if (count[b] != 0) {
      sched.bucket_sequences.push_back(count[b]);
      sched.bucket_residues.push_back(residues[b]);
    }
  }
  sched.order.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto b = static_cast<std::size_t>(buckets[i]);
    sched.order[start[b]++] = static_cast<std::uint32_t>(i);
  }
#if FINEHMM_CHECKS_ENABLED
  // Every engine scans sched.order instead of 0..n-1, so a bucketing bug
  // here silently drops or double-scores sequences.  Verify the order is
  // a permutation: each index appears exactly once.
  {
    std::vector<std::uint8_t> seen(n, 0);
    for (const std::uint32_t idx : sched.order) {
      FINEHMM_DCHECK(idx < n, "schedule emitted an out-of-range index");
      FINEHMM_DCHECK(!seen[idx], "schedule emitted an index twice");
      seen[idx] = 1;
    }
  }
#endif
  return sched;
}

bio::SequenceDatabase make_workload(const hmm::Plan7Hmm& model,
                                    const WorkloadSpec& spec) {
  FH_REQUIRE(spec.homolog_fraction >= 0.0 && spec.homolog_fraction <= 1.0,
             "homolog fraction out of range");
  bio::SequenceDatabase db = bio::generate_database(spec.db);
  if (spec.homolog_fraction <= 0.0) return db;

  Pcg32 rng(spec.seed);
  std::size_t n_hom = static_cast<std::size_t>(
      spec.homolog_fraction * static_cast<double>(db.size()));
  for (std::size_t i = 0; i < n_hom; ++i) {
    // Replace a deterministic slot with a homolog so database size and
    // length statistics stay comparable across homolog fractions.
    std::size_t slot =
        db.empty() ? 0 : rng.below(static_cast<std::uint32_t>(db.size()));
    auto hom = hmm::sample_homolog(model, rng, {},
                                   "homolog_" + std::to_string(i));
    db.replace(slot, std::move(hom));
  }
  return db;
}

}  // namespace finehmm::pipeline
