#include "pipeline/multi_search.hpp"

#include "util/error.hpp"

namespace finehmm::pipeline {

MultiSearch::MultiSearch(std::vector<hmm::Plan7Hmm> models,
                         Thresholds thresholds,
                         stats::CalibrateOptions calib) {
  FH_REQUIRE(!models.empty(), "need at least one model");
  searches_.reserve(models.size());
  for (auto& m : models) searches_.emplace_back(m, thresholds, calib);
}

std::vector<ModelResult> MultiSearch::run_cpu(
    const bio::SequenceDatabase& db) const {
  std::vector<ModelResult> out;
  out.reserve(searches_.size());
  for (const auto& search : searches_) {
    ModelResult r;
    r.model_name = search.profile().name();
    r.model_length = search.profile().length();
    r.result = search.run_cpu(db);
    out.push_back(std::move(r));
  }
  return out;
}

std::vector<ModelResult> MultiSearch::run_cpu_parallel(
    const bio::SequenceDatabase& db, std::size_t threads) const {
  ThreadPool pool(threads);
  std::vector<ModelResult> out;
  out.reserve(searches_.size());
  for (const auto& search : searches_) {
    ModelResult r;
    r.model_name = search.profile().name();
    r.model_length = search.profile().length();
    r.result = search.run_cpu_parallel(db, pool);
    out.push_back(std::move(r));
  }
  return out;
}

std::vector<int> MultiSearch::model_lengths() const {
  std::vector<int> out;
  out.reserve(searches_.size());
  for (const auto& search : searches_)
    out.push_back(search.profile().length());
  return out;
}

std::vector<ModelResult> MultiSearch::run_cpu_fused(
    const bio::SequenceDatabase& db, std::size_t threads,
    const hmm::FusePlan* plan, obs::ScanTelemetry* telemetry) const {
  ThreadPool pool(threads);
  std::vector<const HmmSearch*> ptrs;
  ptrs.reserve(searches_.size());
  for (const auto& search : searches_) ptrs.push_back(&search);
  auto scan = HmmSearch::run_cpu_fused(ptrs, ScanSource(db), pool, plan);
  std::vector<ModelResult> out;
  out.reserve(searches_.size());
  for (std::size_t i = 0; i < searches_.size(); ++i) {
    ModelResult r;
    r.model_name = searches_[i].profile().name();
    r.model_length = searches_[i].profile().length();
    r.result = std::move(scan.per_model[i]);
    out.push_back(std::move(r));
  }
  if (telemetry != nullptr) *telemetry = std::move(scan.telemetry);
  return out;
}

std::vector<ModelResult> MultiSearch::run_gpu(
    const simt::DeviceSpec& dev, const bio::SequenceDatabase& db,
    const bio::PackedDatabase& packed) const {
  std::vector<ModelResult> out;
  out.reserve(searches_.size());
  for (const auto& search : searches_) {
    ModelResult r;
    r.model_name = search.profile().name();
    r.model_length = search.profile().length();
    r.msv_placement =
        gpu::choose_placement(gpu::Stage::kMsv, r.model_length, dev)
            .placement;
    r.result = search.run_gpu_auto(dev, db, packed);
    out.push_back(std::move(r));
  }
  return out;
}

}  // namespace finehmm::pipeline
