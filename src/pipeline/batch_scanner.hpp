// Allocation-free batched database scanning (the CPU engines' hot loop).
//
// A database scan calls the filter cascade millions of times; doing any
// heap allocation per sequence dominates short-sequence throughput and
// serializes threads in the allocator.  BatchScanner owns, per worker,
// every piece of mutable filter state the cascade needs — MSV/SSV byte
// rows, Viterbi word stripes, Forward float stripes and the checkpointed
// Backward workspace — sized once at construction (decode workspace grown
// monotonically), so scoring a sequence is allocation-free no matter
// which engine (serial, ThreadPool, or MultiSearch) drives it.
//
// The wide parameter re-stripings for the resolved tier are built once
// and shared across all workers (SharedMsvRows / SharedVitStripes /
// WideFwdStripes): model parameters are immutable during a scan, only DP
// state is per-worker.  This mirrors the paper's GPU decomposition — one
// read-only model in constant/shared memory, one DP slice per warp.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "bio/packed_seq.hpp"
#include "cpu/filter_result.hpp"
#include "cpu/fwd_filter.hpp"
#include "cpu/msv_filter.hpp"
#include "cpu/simd_backend/simd_tier.hpp"
#include "cpu/vit_filter.hpp"
#include "profile/fwd_profile.hpp"
#include "profile/msv_profile.hpp"
#include "profile/vit_profile.hpp"

namespace finehmm::pipeline {

class BatchScanner {
 public:
  /// State for `workers` concurrent scanners over one model's profiles.
  /// `fwd` may be nullptr when the caller never runs the Forward stage.
  /// All workers score through the same resolved SIMD tier, so results
  /// are identical regardless of which worker scored which sequence.
  BatchScanner(const profile::MsvProfile& msv, const profile::VitProfile& vit,
               const profile::FwdProfile* fwd = nullptr,
               std::size_t workers = 1,
               cpu::SimdTier tier = cpu::active_simd_tier());

  std::size_t workers() const noexcept { return workers_.size(); }
  /// The tier every worker scores with (requested clamped to supported).
  cpu::SimdTier tier() const noexcept { return tier_; }

  /// Each scorer runs on worker `w`'s private state; two calls with the
  /// same `w` must not overlap, calls with different `w` may.  Zero-length
  /// sequences are scored as a no-hit (-inf, no DP touched) rather than
  /// handed to the kernels, which require L >= 1.
  cpu::FilterResult ssv(std::size_t w, const std::uint8_t* seq,
                        std::size_t L);
  cpu::FilterResult msv(std::size_t w, const std::uint8_t* seq,
                        std::size_t L);
  cpu::FilterResult vit(std::size_t w, const std::uint8_t* seq,
                        std::size_t L);
  /// Forward score in nats; requires a FwdProfile at construction.
  float fwd(std::size_t w, const std::uint8_t* seq, std::size_t L);
  /// Checkpointed Forward + Backward: fills mocc (resized to L) with the
  /// per-residue model occupancy and returns the Forward score (equal to
  /// fwd()'s).  Requires a FwdProfile at construction; the caller reuses
  /// mocc across calls so the steady state allocates nothing.
  float decode(std::size_t w, const std::uint8_t* seq, std::size_t L,
               std::vector<float>& mocc);

  /// Zero-copy overloads for the byte-stage filters: the sequence is a
  /// packed 5-bit view (typically straight out of an mmap'd .fsqdb) and is
  /// consumed in place — no decode buffer, no copy, bit-identical scores.
  /// The word stages (vit/fwd) run only on rare survivors, which engines
  /// decode into per-worker scratch instead.
  cpu::FilterResult ssv(std::size_t w, bio::PackedResidues seq,
                        std::size_t L);
  cpu::FilterResult msv(std::size_t w, bio::PackedResidues seq,
                        std::size_t L);

  /// Per-worker scoring workload, counted unconditionally (two integer
  /// bumps per call — each worker only ever touches its own slot, so
  /// there is no contention and nothing to synchronize).  The obs
  /// telemetry layer reads these at drain to attribute work to threads.
  struct WorkerLoad {
    std::uint64_t ssv_calls = 0, msv_calls = 0, vit_calls = 0, fwd_calls = 0;
    std::uint64_t bwd_calls = 0;  // checkpointed decode() invocations
    std::uint64_t residues = 0;   // summed over every call, all stages
    std::uint64_t calls() const {
      return ssv_calls + msv_calls + vit_calls + fwd_calls + bwd_calls;
    }
  };
  const WorkerLoad& load(std::size_t w) const { return workers_[w].load; }

 private:
  template <class Seq>
  cpu::FilterResult ssv_impl(std::size_t w, Seq seq, std::size_t L);

  struct Worker {
    cpu::MsvFilter msv;
    cpu::VitFilter vit;
    std::optional<cpu::FwdFilter> fwd;
    std::vector<std::uint8_t> ssv_row;
    WorkerLoad load;
  };

  const profile::MsvProfile& msv_;
  cpu::SimdTier tier_;
  const cpu::backend::TierKernels* ops_;
  cpu::SharedMsvRows ssv_rows_;  // shared emission table the SSV path reads
  std::vector<Worker> workers_;
};

}  // namespace finehmm::pipeline
