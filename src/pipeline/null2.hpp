// null2: ad hoc composition-bias score correction.
//
// Low-complexity or compositionally biased sequences (poly-Q stretches,
// transmembrane runs...) inflate log-odds scores against the uniform-ish
// null1.  HMMER corrects reported scores with a second null hypothesis
// whose emission distribution is the alignment's own expected composition:
// if the hit region looks like "any A-rich sequence", an A-rich target
// gains little evidence.  We implement the classic ad hoc scheme:
//
//   f_null2(a)   = mean of the model's match emissions over the aligned
//                  columns (recovered from the profile's log-odds scores)
//   null2_score  = sum over aligned residues of log(f_null2(x)/f_bg(x))
//   correction   = logsum(0, log(omega) + null2_score),  omega = 1/256
//
// which is subtracted from the raw score before the bit-score/E-value
// conversion.  Unbiased hits lose ~0 bits; biased ones lose up to their
// entire compositional advantage.
#pragma once

#include "cpu/trace.hpp"
#include "hmm/profile.hpp"

namespace finehmm::pipeline {

/// Prior odds of the null2 hypothesis (HMMER's omega).
inline constexpr float kNull2Omega = 1.0f / 256.0f;

/// Compute the null2 correction (nats, >= 0) for the aligned regions of a
/// trace.  Returns 0 when the trace aligns nothing.
float null2_correction(const hmm::SearchProfile& prof,
                       const cpu::ViterbiTrace& trace,
                       const std::uint8_t* seq);

}  // namespace finehmm::pipeline
