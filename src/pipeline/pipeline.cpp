#include "pipeline/pipeline.hpp"

#include <algorithm>
#include <cmath>

#include "cpu/fwd_filter.hpp"
#include "cpu/generic.hpp"
#include "cpu/msv_filter.hpp"
#include "cpu/ssv.hpp"
#include "cpu/vit_filter.hpp"
#include "pipeline/batch_scanner.hpp"
#include "pipeline/null2.hpp"
#include "util/error.hpp"
#include "util/threadpool.hpp"
#include "util/timer.hpp"

namespace finehmm::pipeline {

HmmSearch::HmmSearch(const hmm::Plan7Hmm& model, Thresholds thresholds,
                     stats::CalibrateOptions calib)
    : model_(model),
      prof_(model, hmm::AlignMode::kLocalMultihit, 400),
      msv_(prof_),
      vit_(prof_),
      fwd_(prof_),
      thr_(thresholds) {
  stats_ = stats::calibrate(prof_, msv_, vit_, calib);
}

HmmSearch::HmmSearch(const hmm::Plan7Hmm& model,
                     const stats::ModelStats& model_stats,
                     Thresholds thresholds)
    : model_(model),
      prof_(model, hmm::AlignMode::kLocalMultihit, 400),
      msv_(prof_),
      vit_(prof_),
      fwd_(prof_),
      stats_(model_stats),
      thr_(thresholds) {}

namespace {

float overflow_bits(const profile::MsvProfile& msv, int L) {
  // A conservative lower bound on an overflowed byte score.
  return hmm::nats_to_bits(
      (255.0f - msv.bias() - msv.base()) / msv.scale(), L);
}

}  // namespace

SearchResult HmmSearch::run_cpu(const bio::SequenceDatabase& db) const {
  SearchResult out;
  Timer timer;
  BatchScanner scanner(msv_, vit_, /*fwd=*/nullptr, /*workers=*/1);

  // ---- Stage 0 (optional): SSV pre-filter ----
  std::vector<std::size_t> candidates;
  if (thr_.use_ssv_prefilter) {
    out.ssv.n_in = db.size();
    for (std::size_t s = 0; s < db.size(); ++s) {
      const auto& seq = db[s];
      auto r = scanner.ssv(0, seq.codes.data(), seq.length());
      float bits = r.overflowed
                       ? overflow_bits(msv_, static_cast<int>(seq.length()))
                       : hmm::nats_to_bits(r.score_nats,
                                           static_cast<int>(seq.length()));
      out.ssv.cells += static_cast<double>(seq.length()) * msv_.length();
      if (r.overflowed || stats_.ssv_pvalue(bits) <= thr_.ssv_p)
        candidates.push_back(s);
    }
    out.ssv.n_passed = candidates.size();
    out.ssv.seconds = timer.seconds();
    timer.reset();
  } else {
    candidates.resize(db.size());
    for (std::size_t s = 0; s < db.size(); ++s) candidates[s] = s;
  }

  // ---- Stage 1: MSV ----
  std::vector<std::size_t> msv_pass;
  std::vector<float> msv_bits_pass;
  out.msv.n_in = candidates.size();
  for (std::size_t s : candidates) {
    const auto& seq = db[s];
    auto r = scanner.msv(0, seq.codes.data(), seq.length());
    float bits = r.overflowed
                     ? overflow_bits(msv_, static_cast<int>(seq.length()))
                     : hmm::nats_to_bits(r.score_nats,
                                         static_cast<int>(seq.length()));
    out.msv.cells += static_cast<double>(seq.length()) * msv_.length();
    if (r.overflowed || stats_.msv_pvalue(bits) <= thr_.msv_p) {
      msv_pass.push_back(s);
      msv_bits_pass.push_back(bits);
    }
  }
  out.msv.n_passed = msv_pass.size();
  out.msv.seconds = timer.seconds();

  // ---- Stage 2: P7Viterbi over the MSV survivors ----
  timer.reset();
  std::vector<std::size_t> vit_pass;
  std::vector<float> vit_bits_pass;
  out.vit.n_in = msv_pass.size();
  for (std::size_t s : msv_pass) {
    const auto& seq = db[s];
    auto r = scanner.vit(0, seq.codes.data(), seq.length());
    float bits =
        hmm::nats_to_bits(r.score_nats, static_cast<int>(seq.length()));
    out.vit.cells += static_cast<double>(seq.length()) * vit_.length();
    if (stats_.vit_pvalue(bits) <= thr_.vit_p) {
      vit_pass.push_back(s);
      vit_bits_pass.push_back(bits);
    }
  }
  out.vit.n_passed = vit_pass.size();
  out.vit.seconds = timer.seconds();

  forward_stage(db, vit_pass, vit_bits_pass, out);
  return out;
}

SearchResult HmmSearch::run_cpu_parallel(const bio::SequenceDatabase& db,
                                         std::size_t threads) const {
  ThreadPool pool(threads);
  return run_cpu_parallel(db, pool);
}

SearchResult HmmSearch::run_cpu_parallel(const bio::SequenceDatabase& db,
                                         ThreadPool& pool) const {
  SearchResult out;
  Timer timer;

  // All mutable filter state lives in the scanner, one slot per worker;
  // the scan loops below allocate nothing per sequence.
  BatchScanner scanner(msv_, vit_, /*fwd=*/nullptr, pool.workers());

  // Workers grab small index ranges from a shared cursor (dynamic
  // scheduling), so a run of long sequences cannot strand the tail of the
  // database on one thread the way static sharding could.
  constexpr std::size_t kMsvChunk = 16;
  constexpr std::size_t kVitChunk = 4;

  // ---- Stage 0+1: (optional SSV, then) MSV, fanned out over the pool.
  // Within a chunk the stages are fused: a sequence failing SSV never
  // reaches MSV, exactly like the serial engine, so hit lists agree.
  out.msv.n_in = db.size();
  std::vector<std::uint8_t> ssv_keep(db.size(), 1);
  std::vector<std::uint8_t> msv_keep(db.size(), 0);
  pool.parallel_for_chunked(
      db.size(), kMsvChunk,
      [&](std::size_t worker, std::size_t begin, std::size_t end) {
        for (std::size_t s = begin; s < end; ++s) {
          const auto& seq = db[s];
          if (thr_.use_ssv_prefilter) {
            auto sr = scanner.ssv(worker, seq.codes.data(), seq.length());
            float sbits =
                sr.overflowed
                    ? overflow_bits(msv_, static_cast<int>(seq.length()))
                    : hmm::nats_to_bits(sr.score_nats,
                                        static_cast<int>(seq.length()));
            if (!sr.overflowed && stats_.ssv_pvalue(sbits) > thr_.ssv_p) {
              ssv_keep[s] = 0;
              continue;
            }
          }
          auto r = scanner.msv(worker, seq.codes.data(), seq.length());
          float bits =
              r.overflowed
                  ? overflow_bits(msv_, static_cast<int>(seq.length()))
                  : hmm::nats_to_bits(r.score_nats,
                                      static_cast<int>(seq.length()));
          msv_keep[s] =
              (r.overflowed || stats_.msv_pvalue(bits) <= thr_.msv_p) ? 1
                                                                      : 0;
        }
      });
  std::vector<std::size_t> msv_pass;
  for (std::size_t s = 0; s < db.size(); ++s) {
    double cells = static_cast<double>(db[s].length()) * msv_.length();
    if (thr_.use_ssv_prefilter) {
      out.ssv.n_in += 1;
      out.ssv.cells += cells;
      if (!ssv_keep[s]) continue;
      out.ssv.n_passed += 1;
    }
    out.msv.cells += cells;
    if (msv_keep[s]) msv_pass.push_back(s);
  }
  if (thr_.use_ssv_prefilter) out.msv.n_in = out.ssv.n_passed;
  out.msv.n_passed = msv_pass.size();
  out.msv.seconds = timer.seconds();

  // ---- Stage 2: P7Viterbi over survivors ----
  timer.reset();
  out.vit.n_in = msv_pass.size();
  std::vector<float> vit_bits_all(msv_pass.size());
  std::vector<std::uint8_t> vit_keep(msv_pass.size(), 0);
  pool.parallel_for_chunked(
      msv_pass.size(), kVitChunk,
      [&](std::size_t worker, std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          const auto& seq = db[msv_pass[i]];
          auto r = scanner.vit(worker, seq.codes.data(), seq.length());
          float bits = hmm::nats_to_bits(r.score_nats,
                                         static_cast<int>(seq.length()));
          vit_bits_all[i] = bits;
          vit_keep[i] = stats_.vit_pvalue(bits) <= thr_.vit_p ? 1 : 0;
        }
      });
  std::vector<std::size_t> vit_pass;
  std::vector<float> vit_bits_pass;
  for (std::size_t i = 0; i < msv_pass.size(); ++i) {
    out.vit.cells +=
        static_cast<double>(db[msv_pass[i]].length()) * vit_.length();
    if (vit_keep[i]) {
      vit_pass.push_back(msv_pass[i]);
      vit_bits_pass.push_back(vit_bits_all[i]);
    }
  }
  out.vit.n_passed = vit_pass.size();
  out.vit.seconds = timer.seconds();

  forward_stage(db, vit_pass, vit_bits_pass, out);
  return out;
}

SearchResult HmmSearch::run_gpu(const simt::DeviceSpec& dev,
                                const bio::SequenceDatabase& db,
                                const bio::PackedDatabase& packed,
                                gpu::ParamPlacement placement) const {
  return run_gpu_impl(dev, db, packed, placement, placement);
}

SearchResult HmmSearch::run_gpu_auto(const simt::DeviceSpec& dev,
                                     const bio::SequenceDatabase& db,
                                     const bio::PackedDatabase& packed) const {
  auto msv_choice =
      gpu::choose_placement(gpu::Stage::kMsv, msv_.length(), dev);
  auto vit_choice =
      gpu::choose_placement(gpu::Stage::kViterbi, vit_.length(), dev);
  return run_gpu_impl(dev, db, packed, msv_choice.placement,
                      vit_choice.placement);
}

SearchResult HmmSearch::run_gpu_impl(const simt::DeviceSpec& dev,
                                     const bio::SequenceDatabase& db,
                                     const bio::PackedDatabase& packed,
                                     gpu::ParamPlacement msv_placement,
                                     gpu::ParamPlacement vit_placement) const {
  FH_REQUIRE(packed.size() == db.size(), "packed database mismatch");
  SearchResult out;
  Timer timer;
  gpu::GpuSearch search(dev);

  // ---- Stage 0 (optional): warp-synchronous SSV pre-filter ----
  std::vector<std::size_t> candidates;
  const std::vector<std::size_t>* msv_items = nullptr;
  if (thr_.use_ssv_prefilter) {
    out.ssv.n_in = db.size();
    auto ssv_run = search.run_ssv(msv_, packed, msv_placement);
    for (std::size_t s = 0; s < db.size(); ++s) {
      int L = static_cast<int>(db[s].length());
      bool overflowed = ssv_run.overflow[s] != 0;
      float bits = overflowed ? overflow_bits(msv_, L)
                              : hmm::nats_to_bits(ssv_run.scores[s], L);
      if (overflowed || stats_.ssv_pvalue(bits) <= thr_.ssv_p)
        candidates.push_back(s);
    }
    out.ssv.n_passed = candidates.size();
    out.ssv.cells = static_cast<double>(ssv_run.counters.cells);
    out.ssv.seconds = timer.seconds();
    timer.reset();
    msv_items = &candidates;
  }

  // ---- Stage 1: warp-synchronous MSV ----
  out.msv.n_in = msv_items ? candidates.size() : db.size();
  auto msv_run = search.run_msv(msv_, packed, msv_placement, msv_items);
  std::vector<std::size_t> msv_pass;
  for (std::size_t i = 0; i < msv_run.scores.size(); ++i) {
    std::size_t s = msv_items ? candidates[i] : i;
    int L = static_cast<int>(db[s].length());
    bool overflowed = msv_run.overflow[i] != 0;
    float bits = overflowed ? overflow_bits(msv_, L)
                            : hmm::nats_to_bits(msv_run.scores[i], L);
    if (overflowed || stats_.msv_pvalue(bits) <= thr_.msv_p)
      msv_pass.push_back(s);
  }
  out.msv.n_passed = msv_pass.size();
  out.msv.cells = static_cast<double>(msv_run.counters.cells);
  out.msv.seconds = timer.seconds();
  out.gpu_msv = std::move(msv_run);

  // ---- Stage 2: warp-synchronous P7Viterbi on the survivors ----
  timer.reset();
  out.vit.n_in = msv_pass.size();
  std::vector<std::size_t> vit_pass;
  std::vector<float> vit_bits_pass;
  if (!msv_pass.empty()) {
    auto vit_run = search.run_vit(vit_, packed, vit_placement, &msv_pass);
    for (std::size_t i = 0; i < msv_pass.size(); ++i) {
      std::size_t s = msv_pass[i];
      int L = static_cast<int>(db[s].length());
      float bits = hmm::nats_to_bits(vit_run.scores[i], L);
      if (stats_.vit_pvalue(bits) <= thr_.vit_p) {
        vit_pass.push_back(s);
        vit_bits_pass.push_back(bits);
      }
    }
    out.vit.cells = static_cast<double>(vit_run.counters.cells);
    out.gpu_vit = std::move(vit_run);
  }
  out.vit.n_passed = vit_pass.size();
  out.vit.seconds = timer.seconds();

  forward_stage(db, vit_pass, vit_bits_pass, out);
  return out;
}

HmmSearch::MultiGpuResult HmmSearch::run_gpu_multi(
    const std::vector<simt::DeviceSpec>& devs,
    const bio::SequenceDatabase& db, const bio::PackedDatabase& packed,
    gpu::ParamPlacement placement) const {
  FH_REQUIRE(!devs.empty(), "need at least one device");
  FH_REQUIRE(packed.size() == db.size(), "packed database mismatch");
  MultiGpuResult out;
  SearchResult& combined = out.combined;
  Timer timer;

  // ---- Stage 1: MSV, database partitioned by residues (Fig. 11) ----
  combined.msv.n_in = db.size();
  auto msv_multi = gpu::run_msv_multi(devs, msv_, packed, placement);
  std::vector<std::size_t> msv_pass;
  for (std::size_t s = 0; s < db.size(); ++s) {
    int L = static_cast<int>(db[s].length());
    bool overflowed = msv_multi.overflow[s] != 0;
    float bits = overflowed ? overflow_bits(msv_, L)
                            : hmm::nats_to_bits(msv_multi.scores[s], L);
    if (overflowed || stats_.msv_pvalue(bits) <= thr_.msv_p)
      msv_pass.push_back(s);
  }
  combined.msv.n_passed = msv_pass.size();
  for (auto& r : msv_multi.per_device) {
    combined.msv.cells += static_cast<double>(r.counters.cells);
    out.msv_per_device.push_back(std::move(r));
  }
  combined.msv.seconds = timer.seconds();

  // ---- Stage 2: P7Viterbi, survivors re-partitioned round-robin ----
  timer.reset();
  combined.vit.n_in = msv_pass.size();
  std::vector<std::size_t> vit_pass;
  std::vector<float> vit_bits_pass;
  if (!msv_pass.empty()) {
    std::vector<std::vector<std::size_t>> parts(devs.size());
    for (std::size_t i = 0; i < msv_pass.size(); ++i)
      parts[i % devs.size()].push_back(msv_pass[i]);
    for (std::size_t d = 0; d < devs.size(); ++d) {
      if (parts[d].empty()) continue;
      gpu::GpuSearch search(devs[d]);
      auto run = search.run_vit(vit_, packed, placement, &parts[d]);
      for (std::size_t i = 0; i < parts[d].size(); ++i) {
        std::size_t s = parts[d][i];
        int L = static_cast<int>(db[s].length());
        float bits = hmm::nats_to_bits(run.scores[i], L);
        if (stats_.vit_pvalue(bits) <= thr_.vit_p) {
          vit_pass.push_back(s);
          vit_bits_pass.push_back(bits);
        }
      }
      combined.vit.cells += static_cast<double>(run.counters.cells);
      out.vit_per_device.push_back(std::move(run));
    }
    // Keep deterministic ordering for downstream reporting.
    std::vector<std::size_t> order(vit_pass.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return vit_pass[a] < vit_pass[b];
    });
    std::vector<std::size_t> sorted_pass;
    std::vector<float> sorted_bits;
    for (auto idx : order) {
      sorted_pass.push_back(vit_pass[idx]);
      sorted_bits.push_back(vit_bits_pass[idx]);
    }
    vit_pass.swap(sorted_pass);
    vit_bits_pass.swap(sorted_bits);
  }
  combined.vit.n_passed = vit_pass.size();
  combined.vit.seconds = timer.seconds();

  forward_stage(db, vit_pass, vit_bits_pass, combined);
  return out;
}

void HmmSearch::forward_stage(const bio::SequenceDatabase& db,
                              const std::vector<std::size_t>& survivors,
                              const std::vector<float>& vit_bits,
                              SearchResult& out) const {
  Timer timer;
  out.fwd.n_in = survivors.size();
  const bool need_trace = thr_.null2_correction || thr_.compute_alignments;
  cpu::FwdFilter fwd_filter(fwd_);
  for (std::size_t i = 0; i < survivors.size(); ++i) {
    std::size_t s = survivors[i];
    const auto& seq = db[s];
    float raw = fwd_filter.score(seq.codes.data(), seq.length());
    out.fwd.cells += static_cast<double>(seq.length()) * prof_.length();

    cpu::ViterbiTrace trace;
    float bias_nats = 0.0f;
    if (need_trace)
      trace = cpu::viterbi_trace(prof_, seq.codes.data(), seq.length());
    if (thr_.null2_correction)
      bias_nats = null2_correction(prof_, trace, seq.codes.data());

    float bits =
        hmm::nats_to_bits(raw - bias_nats, static_cast<int>(seq.length()));
    double p = stats_.fwd_pvalue(bits);
    double e = stats::evalue(p, db.size());
    if (e <= thr_.report_evalue) {
      Hit h;
      h.seq_index = s;
      h.name = seq.name;
      h.vit_bits = vit_bits[i];
      h.fwd_bits = bits;
      h.bias_bits = bias_nats / static_cast<float>(M_LN2);
      h.pvalue = p;
      h.evalue = e;
      if (thr_.compute_alignments)
        h.alignments = cpu::trace_alignments(trace, prof_, seq.codes.data());
      if (thr_.define_domains)
        h.domains =
            cpu::define_domains(prof_, seq.codes.data(), seq.length());
      out.hits.push_back(std::move(h));
      ++out.fwd.n_passed;
    }
  }
  out.fwd.seconds = timer.seconds();
  std::sort(out.hits.begin(), out.hits.end(),
            [](const Hit& a, const Hit& b) { return a.evalue < b.evalue; });
}

}  // namespace finehmm::pipeline
