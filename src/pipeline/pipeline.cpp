#include "pipeline/pipeline.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <memory>
#include <thread>

#include "cpu/fwd_filter.hpp"
#include "cpu/generic.hpp"
#include "cpu/msv_filter.hpp"
#include "cpu/msv_group.hpp"
#include "cpu/ssv.hpp"
#include "cpu/vit_filter.hpp"
#include "obs/recorder.hpp"
#include "pipeline/batch_scanner.hpp"
#include "pipeline/null2.hpp"
#include "pipeline/workload.hpp"
#include "util/check.hpp"
#include "util/error.hpp"
#include "util/mpmc_queue.hpp"
#include "util/threadpool.hpp"
#include "util/timer.hpp"

namespace finehmm::pipeline {

HmmSearch::HmmSearch(const hmm::Plan7Hmm& model, Thresholds thresholds,
                     stats::CalibrateOptions calib)
    : model_(model),
      prof_(model, hmm::AlignMode::kLocalMultihit, 400),
      msv_(prof_),
      vit_(prof_),
      fwd_(prof_),
      thr_(thresholds) {
  stats_ = stats::calibrate(prof_, msv_, vit_, calib);
}

HmmSearch::HmmSearch(const hmm::Plan7Hmm& model,
                     const stats::ModelStats& model_stats,
                     Thresholds thresholds)
    : model_(model),
      prof_(model, hmm::AlignMode::kLocalMultihit, 400),
      msv_(prof_),
      vit_(prof_),
      fwd_(prof_),
      stats_(model_stats),
      thr_(thresholds) {}

namespace {

float overflow_bits(const profile::MsvProfile& msv, int L) {
  // A conservative lower bound on an overflowed byte score.
  return hmm::nats_to_bits(
      (255.0f - msv.bias() - msv.base()) / msv.scale(), L);
}

// The byte filters consume either representation without a decode: the
// packed overloads instantiate the identical kernel loop, so the branch
// here cannot change a score.
cpu::FilterResult ssv_score(BatchScanner& scanner, std::size_t w,
                            ScanSource src, std::size_t s, std::size_t L) {
  return src.zero_copy() ? scanner.ssv(w, src.packed(s), L)
                         : scanner.ssv(w, src.codes(s), L);
}

cpu::FilterResult msv_score(BatchScanner& scanner, std::size_t w,
                            ScanSource src, std::size_t s, std::size_t L) {
  return src.zero_copy() ? scanner.msv(w, src.packed(s), L)
                         : scanner.msv(w, src.codes(s), L);
}

// --- Telemetry plumbing -------------------------------------------------
//
// Stage busy time is accumulated into per-worker slots (cacheline-sized,
// written only by the owning worker, merged serially after the crew
// joins) whether or not a recorder is attached: the overlapped engine's
// StageStats::seconds are exactly this merge, so they must not depend on
// observability being switched on.  The recorder only adds trace spans
// and the ScanTelemetry snapshot on top.

struct alignas(64) WorkerClock {
  double stage_s[obs::kStageCount] = {};
  std::uint64_t rescues = 0;        // help-first rescores (full ring)
  std::uint64_t decoded_bytes = 0;  // residues unpacked for word stages
};

std::uint64_t packed_stream_bytes(const ScanSource& src) {
  std::uint64_t bytes = 0;
  for (std::size_t s = 0; s < src.size(); ++s)
    bytes += (src.length(s) + bio::kResiduesPerWord - 1) /
             bio::kResiduesPerWord * sizeof(std::uint32_t);
  return bytes;
}

void fill_stage(obs::ScanTelemetry& t, const char* name,
                const StageStats& s, double wall, double busy) {
  obs::StageTelemetry st;
  st.stage = name;
  st.n_in = s.n_in;
  st.n_passed = s.n_passed;
  st.cells = s.cells;
  st.wall_seconds = wall;
  st.busy_seconds = busy;
  t.stages.push_back(std::move(st));
}

/// The shared snapshot skeleton: database shape, byte accounting, and
/// one StageTelemetry per active stage (wall == busy by default; engines
/// with other semantics overwrite the fields afterwards).
obs::ScanTelemetry make_telemetry(const char* engine, const ScanSource& src,
                                  std::size_t threads,
                                  const SearchResult& out, double wall_s,
                                  bool use_ssv, bool use_bwd = false) {
  obs::ScanTelemetry t;
  t.engine = engine;
  t.threads = threads;
  t.sequences = src.size();
  t.residues = src.total_residues();
  t.wall_seconds = wall_s;
  t.zero_copy = src.zero_copy();
  if (src.zero_copy())
    t.mapped_bytes = packed_stream_bytes(src);
  else
    t.heap_bytes = src.total_residues();
  if (use_ssv) fill_stage(t, "ssv", out.ssv, out.ssv.seconds, out.ssv.seconds);
  fill_stage(t, "msv", out.msv, out.msv.seconds, out.msv.seconds);
  fill_stage(t, "vit", out.vit, out.vit.seconds, out.vit.seconds);
  fill_stage(t, "fwd", out.fwd, out.fwd.seconds, out.fwd.seconds);
  if (use_bwd) fill_stage(t, "bwd", out.bwd, out.bwd.seconds, out.bwd.seconds);
  return t;
}

void fill_buckets(obs::ScanTelemetry& t, const ScanSchedule& sched) {
  t.buckets.reserve(sched.bucket_sequences.size());
  for (std::size_t b = 0; b < sched.bucket_sequences.size(); ++b)
    t.buckets.push_back(
        obs::BucketTelemetry{sched.bucket_sequences[b],
                             sched.bucket_residues[b]});
}

/// Per-thread rows from the engine clocks, the scanner's per-worker call
/// counts, and (when tracing) the recorder's span tallies.
void fill_threads(obs::ScanTelemetry& t, std::size_t crew,
                  const WorkerClock* clocks, const BatchScanner& scanner,
                  const obs::Recorder* rec) {
  t.per_thread.resize(crew);
  for (std::size_t w = 0; w < crew; ++w) {
    obs::ThreadTelemetry& row = t.per_thread[w];
    row.thread = static_cast<std::uint32_t>(w);
    if (clocks != nullptr) {
      for (int s = 0; s < obs::kStageCount; ++s)
        row.stage_busy_seconds[s] = clocks[w].stage_s[s];
      row.help_first_rescues = clocks[w].rescues;
      row.decoded_bytes = clocks[w].decoded_bytes;
    }
    if (w < scanner.workers()) {
      const auto& load = scanner.load(w);
      row.sequences_scored = load.calls();
      row.stage_items[static_cast<int>(obs::Stage::kSsv)] = load.ssv_calls;
      row.stage_items[static_cast<int>(obs::Stage::kMsv)] = load.msv_calls;
      row.stage_items[static_cast<int>(obs::Stage::kVit)] = load.vit_calls;
      row.stage_items[static_cast<int>(obs::Stage::kFwd)] = load.fwd_calls;
      row.stage_items[static_cast<int>(obs::Stage::kBwd)] = load.bwd_calls;
    }
    if (rec != nullptr && w < rec->threads()) {
      row.spans = rec->log_at(w).events().size();
      row.spans_dropped =
          rec->log_at(w).counter(obs::Counter::kSpansDropped);
    }
  }
  for (const auto& row : t.per_thread) t.decoded_bytes += row.decoded_bytes;
}

/// Overwrite the snapshot's per-stage busy seconds with the per-worker
/// merge, so "per-thread merge == global totals" holds by construction.
void merge_busy_from_clocks(obs::ScanTelemetry& t, std::size_t crew,
                            const WorkerClock* clocks) {
  for (auto& st : t.stages) {
    obs::Stage s;
    if (st.stage == "ssv") s = obs::Stage::kSsv;
    else if (st.stage == "msv") s = obs::Stage::kMsv;
    else if (st.stage == "vit") s = obs::Stage::kVit;
    else if (st.stage == "fwd") s = obs::Stage::kFwd;
    else if (st.stage == "bwd") s = obs::Stage::kBwd;
    else continue;
    double busy = 0.0;
    for (std::size_t w = 0; w < crew; ++w)
      busy += clocks[w].stage_s[static_cast<int>(s)];
    st.busy_seconds = busy;
  }
}

}  // namespace

SearchResult HmmSearch::run_cpu(ScanSource src) const {
  SearchResult out;
  obs::Recorder* rec =
      (recorder_ != nullptr && recorder_->enabled()) ? recorder_ : nullptr;
  if (rec) rec->reserve_threads(1);
  Timer total;
  Timer timer;
  BatchScanner scanner(msv_, vit_, /*fwd=*/nullptr, /*workers=*/1);

  // ---- Stage 0 (optional): SSV pre-filter ----
  // Zero-length sequences cannot match; every engine counts them into the
  // first active stage's n_in and fails them there without scoring.
  std::vector<std::size_t> candidates;
  if (thr_.use_ssv_prefilter) {
    OBS_SPAN(rec, 0, "ssv");
    out.ssv.n_in = src.size();
    for (std::size_t s = 0; s < src.size(); ++s) {
      const std::size_t L = src.length(s);
      if (L == 0) continue;
      auto r = ssv_score(scanner, 0, src, s, L);
      float bits = r.overflowed
                       ? overflow_bits(msv_, static_cast<int>(L))
                       : hmm::nats_to_bits(r.score_nats,
                                           static_cast<int>(L));
      out.ssv.cells += static_cast<double>(L) * msv_.length();
      if (r.overflowed || stats_.ssv_pvalue(bits) <= thr_.ssv_p)
        candidates.push_back(s);
    }
    out.ssv.n_passed = candidates.size();
    out.ssv.seconds = timer.seconds();
    timer.reset();
  } else {
    candidates.resize(src.size());
    for (std::size_t s = 0; s < src.size(); ++s) candidates[s] = s;
  }

  // ---- Stage 1: MSV ----
  std::vector<std::size_t> msv_pass;
  std::vector<float> msv_bits_pass;
  out.msv.n_in = candidates.size();
  {
    OBS_SPAN(rec, 0, "msv");
    for (std::size_t s : candidates) {
      const std::size_t L = src.length(s);
      if (L == 0) continue;
      auto r = msv_score(scanner, 0, src, s, L);
      float bits = r.overflowed
                       ? overflow_bits(msv_, static_cast<int>(L))
                       : hmm::nats_to_bits(r.score_nats,
                                           static_cast<int>(L));
      out.msv.cells += static_cast<double>(L) * msv_.length();
      if (r.overflowed || stats_.msv_pvalue(bits) <= thr_.msv_p) {
        msv_pass.push_back(s);
        msv_bits_pass.push_back(bits);
      }
    }
  }
  out.msv.n_passed = msv_pass.size();
  out.msv.seconds = timer.seconds();

  // ---- Stage 2: P7Viterbi over the MSV survivors ----
  timer.reset();
  std::vector<std::size_t> vit_pass;
  std::vector<float> vit_bits_pass;
  out.vit.n_in = msv_pass.size();
  std::vector<std::uint8_t> scratch;
  if (src.zero_copy()) scratch.resize(src.max_length());
  {
    OBS_SPAN(rec, 0, "vit");
    for (std::size_t s : msv_pass) {
      const std::size_t L = src.length(s);
      const std::uint8_t* codes = src.fetch_codes(s, scratch.data());
      auto r = scanner.vit(0, codes, L);
      float bits = hmm::nats_to_bits(r.score_nats, static_cast<int>(L));
      out.vit.cells += static_cast<double>(L) * vit_.length();
      if (stats_.vit_pvalue(bits) <= thr_.vit_p) {
        vit_pass.push_back(s);
        vit_bits_pass.push_back(bits);
      }
    }
  }
  out.vit.n_passed = vit_pass.size();
  out.vit.seconds = timer.seconds();

  forward_stage(src, vit_pass, vit_bits_pass, out);

  if (rec) {
    out.telemetry = make_telemetry("cpu_serial", src, 1, out,
                                   total.seconds(), thr_.use_ssv_prefilter,
                                   thr_.define_domains);
    fill_threads(*out.telemetry, 1, /*clocks=*/nullptr, scanner, rec);
    // Serial engine: one thread, busy == wall per stage.
    auto& row = out.telemetry->per_thread[0];
    row.stage_busy_seconds[static_cast<int>(obs::Stage::kSsv)] =
        out.ssv.seconds;
    row.stage_busy_seconds[static_cast<int>(obs::Stage::kMsv)] =
        out.msv.seconds;
    row.stage_busy_seconds[static_cast<int>(obs::Stage::kVit)] =
        out.vit.seconds;
    row.stage_busy_seconds[static_cast<int>(obs::Stage::kFwd)] =
        out.fwd.seconds;
    row.stage_busy_seconds[static_cast<int>(obs::Stage::kBwd)] =
        out.bwd.seconds;
  }
  return out;
}

SearchResult HmmSearch::run_cpu_parallel(ScanSource src,
                                         std::size_t threads) const {
  ThreadPool pool(threads);
  return run_cpu_parallel(src, pool);
}

SearchResult HmmSearch::run_cpu_parallel(ScanSource src,
                                         ThreadPool& pool) const {
  SearchResult out;
  obs::Recorder* rec =
      (recorder_ != nullptr && recorder_->enabled()) ? recorder_ : nullptr;
  const std::size_t crew = pool.workers();
  if (rec) rec->reserve_threads(crew);
  // Per-worker stage clocks, merged serially after each barrier: the
  // busy-time accounting never crosses threads mid-flight.
  std::vector<WorkerClock> clocks(crew);
  Timer total;
  Timer timer;
  const std::size_t n = src.size();

  // All mutable filter state lives in the scanner, one slot per worker;
  // the scan loops below allocate nothing per sequence.
  BatchScanner scanner(msv_, vit_, /*fwd=*/nullptr, pool.workers());

  // Workers grab small index ranges of the length-bucketed order from a
  // shared cursor: chunks hold similar-length sequences (balanced cost,
  // warm DP rows) and the longest buckets are issued first, so neither a
  // run of long sequences nor the scan's tail can strand on one thread.
  constexpr std::size_t kMsvChunk = 16;
  constexpr std::size_t kVitChunk = 4;
  const ScanSchedule sched = make_length_schedule(
      n, [&src](std::size_t i) { return src.length(i); });

  // ---- Stage 0+1: (optional SSV, then) MSV, fanned out over the pool.
  // Within a chunk the stages are fused: a sequence failing SSV never
  // reaches MSV, exactly like the serial engine, so hit lists agree.
  out.msv.n_in = n;
  std::vector<std::uint8_t> ssv_keep(n, 1);
  std::vector<std::uint8_t> msv_keep(n, 0);
  pool.parallel_for_chunked(
      n, kMsvChunk,
      [&](std::size_t worker, std::size_t begin, std::size_t end) {
        OBS_SPAN(rec, worker, "msv.chunk");
        Timer chunk_t;
        for (std::size_t idx = begin; idx < end; ++idx) {
          const std::size_t s = sched.order[idx];
          if (idx + 1 < end) src.prefetch(sched.order[idx + 1]);
          const std::size_t L = src.length(s);
          if (L == 0) {
            if (thr_.use_ssv_prefilter) ssv_keep[s] = 0;
            continue;  // msv_keep stays 0: fails the first active stage
          }
          if (thr_.use_ssv_prefilter) {
            Timer ssv_t;
            auto sr = ssv_score(scanner, worker, src, s, L);
            clocks[worker].stage_s[static_cast<int>(obs::Stage::kSsv)] +=
                ssv_t.seconds();
            chunk_t.reset();  // keep the SSV share out of the MSV clock
            float sbits =
                sr.overflowed
                    ? overflow_bits(msv_, static_cast<int>(L))
                    : hmm::nats_to_bits(sr.score_nats,
                                        static_cast<int>(L));
            if (!sr.overflowed && stats_.ssv_pvalue(sbits) > thr_.ssv_p) {
              ssv_keep[s] = 0;
              continue;
            }
          }
          auto r = msv_score(scanner, worker, src, s, L);
          clocks[worker].stage_s[static_cast<int>(obs::Stage::kMsv)] +=
              chunk_t.seconds();
          chunk_t.reset();
          float bits =
              r.overflowed
                  ? overflow_bits(msv_, static_cast<int>(L))
                  : hmm::nats_to_bits(r.score_nats,
                                      static_cast<int>(L));
          msv_keep[s] =
              (r.overflowed || stats_.msv_pvalue(bits) <= thr_.msv_p) ? 1
                                                                      : 0;
        }
      });
  // Serial stats replay in index order: identical to the serial engine no
  // matter how the bucketed scan interleaved.
  std::vector<std::size_t> msv_pass;
  for (std::size_t s = 0; s < n; ++s) {
    double cells = static_cast<double>(src.length(s)) * msv_.length();
    if (thr_.use_ssv_prefilter) {
      out.ssv.n_in += 1;
      out.ssv.cells += cells;
      if (!ssv_keep[s]) continue;
      out.ssv.n_passed += 1;
    }
    out.msv.cells += cells;
    if (msv_keep[s]) msv_pass.push_back(s);
  }
  if (thr_.use_ssv_prefilter) out.msv.n_in = out.ssv.n_passed;
  out.msv.n_passed = msv_pass.size();
  out.msv.seconds = timer.seconds();

  // ---- Stage 2: P7Viterbi over survivors ----
  timer.reset();
  out.vit.n_in = msv_pass.size();
  std::vector<float> vit_bits_all(msv_pass.size());
  std::vector<std::uint8_t> vit_keep(msv_pass.size(), 0);
  std::vector<std::vector<std::uint8_t>> scratch(pool.workers());
  if (src.zero_copy())
    for (auto& sc : scratch) sc.resize(src.max_length());
  pool.parallel_for_chunked(
      msv_pass.size(), kVitChunk,
      [&](std::size_t worker, std::size_t begin, std::size_t end) {
        OBS_SPAN(rec, worker, "vit.chunk");
        Timer chunk_t;
        for (std::size_t i = begin; i < end; ++i) {
          const std::size_t s = msv_pass[i];
          const std::size_t L = src.length(s);
          const std::uint8_t* codes =
              src.fetch_codes(s, scratch[worker].data());
          if (src.zero_copy()) clocks[worker].decoded_bytes += L;
          auto r = scanner.vit(worker, codes, L);
          float bits = hmm::nats_to_bits(r.score_nats,
                                         static_cast<int>(L));
          vit_bits_all[i] = bits;
          vit_keep[i] = stats_.vit_pvalue(bits) <= thr_.vit_p ? 1 : 0;
        }
        clocks[worker].stage_s[static_cast<int>(obs::Stage::kVit)] +=
            chunk_t.seconds();
      });
  std::vector<std::size_t> vit_pass;
  std::vector<float> vit_bits_pass;
  for (std::size_t i = 0; i < msv_pass.size(); ++i) {
    out.vit.cells +=
        static_cast<double>(src.length(msv_pass[i])) * vit_.length();
    if (vit_keep[i]) {
      vit_pass.push_back(msv_pass[i]);
      vit_bits_pass.push_back(vit_bits_all[i]);
    }
  }
  out.vit.n_passed = vit_pass.size();
  out.vit.seconds = timer.seconds();

  forward_stage(src, vit_pass, vit_bits_pass, out);

  if (rec) {
    out.telemetry =
        make_telemetry("cpu_parallel", src, crew, out, total.seconds(),
                       thr_.use_ssv_prefilter, thr_.define_domains);
    // Stage wall clocks stay authoritative (barrier-separated stages);
    // the merged per-worker clocks supply the busy view.
    merge_busy_from_clocks(*out.telemetry, crew, clocks.data());
    if (auto* fwd_stage_t = const_cast<obs::StageTelemetry*>(
            out.telemetry->stage("fwd")))
      fwd_stage_t->busy_seconds = out.fwd.seconds;  // serial stage
    if (auto* bwd_stage_t = const_cast<obs::StageTelemetry*>(
            out.telemetry->stage("bwd")))
      bwd_stage_t->busy_seconds = out.bwd.seconds;  // serial stage
    fill_buckets(*out.telemetry, sched);
    fill_threads(*out.telemetry, crew, clocks.data(), scanner, rec);
  }
  return out;
}

SearchResult HmmSearch::run_cpu_overlapped(ScanSource src,
                                          std::size_t threads) const {
  ThreadPool pool(threads);
  return run_cpu_overlapped(src, pool);
}

SearchResult HmmSearch::run_cpu_overlapped(ScanSource src,
                                          ThreadPool& pool) const {
  SearchResult out;
  obs::Recorder* rec =
      (recorder_ != nullptr && recorder_->enabled()) ? recorder_ : nullptr;
  Timer timer;
  const std::size_t n = src.size();
  const std::size_t crew = pool.workers();
  if (rec) rec->reserve_threads(crew);
  // Stage busy time banks into per-worker slots during the scan and is
  // merged serially at drain — StageStats::seconds is never written by
  // two threads (the overlapped stages have no wall-clock identity, so
  // the merge IS the stage time).  Always on: one Timer read per filter
  // call, independent of whether a recorder is attached.
  std::vector<WorkerClock> clocks(crew);
  const bool need_trace = thr_.null2_correction || thr_.compute_alignments;

  // Every worker can run any stage, so the scanner carries the Forward
  // profile too; trace workspaces and decode scratch are per worker,
  // allocated once here — the scan itself allocates only for reported
  // hits (names, alignments).
  BatchScanner scanner(msv_, vit_, &fwd_, crew);
  std::vector<cpu::TraceWorkspace> workspaces(crew);
  std::vector<std::vector<std::uint8_t>> scratch(crew);
  if (src.zero_copy())
    for (auto& sc : scratch) sc.resize(src.max_length());
  // Per-worker occupancy tracks for the checkpointed decode; reused
  // across hits so the steady state allocates nothing.
  std::vector<std::vector<float>> moccs(crew);

  const ScanSchedule sched = make_length_schedule(
      n, [&src](std::size_t i) { return src.length(i); });

  // Per-index result slots: which worker rescored a survivor, and when,
  // never shows in the output.
  struct Rescore {
    float vit_bits = 0.0f;
    float fwd_bits = 0.0f;
    float bias_bits = 0.0f;
    double pvalue = 1.0;
    double evalue = 1e9;
    std::uint8_t vit_pass = 0;
    std::uint8_t reported = 0;
    std::uint8_t scored = 0;  // a rescore consumed this survivor
    std::vector<cpu::Alignment> alignments;
    std::vector<cpu::Domain> domains;
  };
  std::vector<std::uint8_t> ssv_keep(n, 1);
  std::vector<std::uint8_t> msv_keep(n, 0);
  std::vector<Rescore> rescored(n);

  // MSV survivors flow through a bounded queue to whichever worker goes
  // idle first.  try_push backpressure is "help-first": a producer facing
  // a full ring rescores one queued survivor itself, so the crew cannot
  // deadlock and the queue stays a fixed ring.
  BoundedMpmcQueue<std::uint32_t> queue(std::max<std::size_t>(64, 8 * crew));
  std::atomic<std::size_t> cursor{0};
  std::atomic<std::size_t> producers_done{0};
  constexpr std::size_t kChunk = 16;

  auto rescore = [&](std::size_t w, std::uint32_t item) {
    OBS_SPAN(rec, w, "rescore");
    const std::size_t s = item;
    const std::size_t L = src.length(s);
    const std::uint8_t* codes = src.fetch_codes(s, scratch[w].data());
    if (src.zero_copy()) clocks[w].decoded_bytes += L;
    Rescore& slot = rescored[s];
    // Each survivor is pushed once and popped once; a second rescore of
    // the same slot would mean the queue duplicated an item.
    FINEHMM_CHECK(!slot.scored, "survivor rescored twice");
    slot.scored = 1;

    Timer stage_t;
    auto r = scanner.vit(w, codes, L);
    clocks[w].stage_s[static_cast<int>(obs::Stage::kVit)] +=
        stage_t.seconds();
    slot.vit_bits = hmm::nats_to_bits(r.score_nats, static_cast<int>(L));
    if (!(stats_.vit_pvalue(slot.vit_bits) <= thr_.vit_p)) return;
    slot.vit_pass = 1;

    stage_t.reset();
    float raw = scanner.fwd(w, codes, L);
    cpu::ViterbiTrace trace;
    float bias_nats = 0.0f;
    if (need_trace) trace = cpu::viterbi_trace(prof_, codes, L, workspaces[w]);
    if (thr_.null2_correction)
      bias_nats = null2_correction(prof_, trace, codes);
    float bits = hmm::nats_to_bits(raw - bias_nats, static_cast<int>(L));
    double p = stats_.fwd_pvalue(bits);
    double e = stats::evalue(p, n, thr_.z_override);
    if (e <= thr_.report_evalue) {
      slot.reported = 1;
      slot.fwd_bits = bits;
      slot.bias_bits = bias_nats / static_cast<float>(M_LN2);
      slot.pvalue = p;
      slot.evalue = e;
      if (thr_.compute_alignments)
        slot.alignments = cpu::trace_alignments(trace, prof_, codes);
    }
    clocks[w].stage_s[static_cast<int>(obs::Stage::kFwd)] +=
        stage_t.seconds();
    if (slot.reported && thr_.define_domains) {
      // Checkpointed Forward/Backward on the scanner's vectorized tier:
      // decode fills the occupancy track, envelope definition and
      // rescoring run on it directly.  Banked as its own stage (kBwd).
      OBS_SPAN(rec, w, "bwd");
      Timer bwd_t;
      scanner.decode(w, codes, L, moccs[w]);
      slot.domains =
          cpu::domains_from_occupancy(prof_, codes, L, moccs[w].data());
      clocks[w].stage_s[static_cast<int>(obs::Stage::kBwd)] +=
          bwd_t.seconds();
    }
  };

  pool.run_workers(crew, [&](std::size_t w) {
    // Produce: bucketed SSV/MSV sweep, survivors onto the queue.
    for (;;) {
      const std::size_t begin =
          cursor.fetch_add(kChunk, std::memory_order_relaxed);
      if (begin >= n) break;
      const std::size_t end = std::min(begin + kChunk, n);
      OBS_SPAN(rec, w, "produce.chunk");
      for (std::size_t idx = begin; idx < end; ++idx) {
        const std::size_t s = sched.order[idx];
        if (idx + 1 < end) src.prefetch(sched.order[idx + 1]);
        const std::size_t L = src.length(s);
        if (L == 0) {
          if (thr_.use_ssv_prefilter) ssv_keep[s] = 0;
          continue;
        }
        Timer stage_t;
        if (thr_.use_ssv_prefilter) {
          auto sr = ssv_score(scanner, w, src, s, L);
          clocks[w].stage_s[static_cast<int>(obs::Stage::kSsv)] +=
              stage_t.seconds();
          stage_t.reset();
          float sbits = sr.overflowed
                            ? overflow_bits(msv_, static_cast<int>(L))
                            : hmm::nats_to_bits(sr.score_nats,
                                                static_cast<int>(L));
          if (!sr.overflowed && stats_.ssv_pvalue(sbits) > thr_.ssv_p) {
            ssv_keep[s] = 0;
            continue;
          }
        }
        auto r = msv_score(scanner, w, src, s, L);
        clocks[w].stage_s[static_cast<int>(obs::Stage::kMsv)] +=
            stage_t.seconds();
        float bits = r.overflowed
                         ? overflow_bits(msv_, static_cast<int>(L))
                         : hmm::nats_to_bits(r.score_nats,
                                             static_cast<int>(L));
        if (r.overflowed || stats_.msv_pvalue(bits) <= thr_.msv_p) {
          msv_keep[s] = 1;
          const auto item = static_cast<std::uint32_t>(s);
          while (!queue.try_push(item)) {
            // Help-first backpressure: the ring is full, so this
            // producer rescores one queued survivor itself.
            std::uint32_t other;
            if (queue.try_pop(other)) {
              ++clocks[w].rescues;
              rescore(w, other);
            }
          }
        }
      }
    }
    producers_done.fetch_add(1, std::memory_order_release);
    // Drain: rescore until the queue is empty AND no producer can still
    // push (all done).
    OBS_SPAN(rec, w, "drain");
    for (;;) {
      std::uint32_t item;
      if (queue.try_pop(item)) {
        rescore(w, item);
        continue;
      }
      if (producers_done.load(std::memory_order_acquire) == crew) break;
      std::this_thread::yield();
    }
  });

  // The crew has joined: the ring must be drained (pops == pushes) and
  // every MSV survivor must have been rescored by exactly one worker.
  FINEHMM_CHECK(queue.empty(), "overlapped scan left survivors queued");
#if FINEHMM_CHECKS_ENABLED
  {
    const auto qs = queue.stats();
    FINEHMM_CHECK(qs.pops == qs.pushes,
                  "drained queue must have pops == pushes");
    FINEHMM_CHECK(qs.max_depth <= queue.capacity(),
                  "queue depth exceeded its capacity");
    for (std::size_t s = 0; s < n; ++s)
      FINEHMM_DCHECK(rescored[s].scored == msv_keep[s],
                     "every MSV survivor is rescored exactly once");
  }
#endif

  // Serial stats replay and hit assembly in index order: output identical
  // to run_cpu regardless of which worker rescored what, when.
  out.msv.n_in = n;
  std::vector<std::size_t> msv_pass;
  for (std::size_t s = 0; s < n; ++s) {
    double cells = static_cast<double>(src.length(s)) * msv_.length();
    if (thr_.use_ssv_prefilter) {
      out.ssv.n_in += 1;
      out.ssv.cells += cells;
      if (!ssv_keep[s]) continue;
      out.ssv.n_passed += 1;
    }
    out.msv.cells += cells;
    if (msv_keep[s]) msv_pass.push_back(s);
  }
  if (thr_.use_ssv_prefilter) out.msv.n_in = out.ssv.n_passed;
  out.msv.n_passed = msv_pass.size();

  out.vit.n_in = msv_pass.size();
  std::vector<std::size_t> vit_pass;
  for (std::size_t s : msv_pass) {
    out.vit.cells += static_cast<double>(src.length(s)) * vit_.length();
    if (rescored[s].vit_pass) vit_pass.push_back(s);
  }
  out.vit.n_passed = vit_pass.size();

  out.fwd.n_in = vit_pass.size();
  for (std::size_t s : vit_pass) {
    out.fwd.cells += static_cast<double>(src.length(s)) * prof_.length();
    Rescore& slot = rescored[s];
    if (!slot.reported) continue;
    if (thr_.define_domains) {
      out.bwd.n_in += 1;
      out.bwd.n_passed += 1;
      out.bwd.cells += static_cast<double>(src.length(s)) * prof_.length();
    }
    Hit h;
    h.seq_index = s;
    h.name = std::string(src.name(s));
    h.vit_bits = slot.vit_bits;
    h.fwd_bits = slot.fwd_bits;
    h.bias_bits = slot.bias_bits;
    h.pvalue = slot.pvalue;
    h.evalue = slot.evalue;
    h.alignments = std::move(slot.alignments);
    h.domains = std::move(slot.domains);
    out.hits.push_back(std::move(h));
    ++out.fwd.n_passed;
  }
  // (evalue, seq_index) is a total order, so the hit list is a pure
  // function of the hit set — a cluster coordinator merging shard hits
  // re-sorts by the same key and reproduces this order byte-for-byte.
  std::sort(out.hits.begin(), out.hits.end(), [](const Hit& a, const Hit& b) {
    return a.evalue != b.evalue ? a.evalue < b.evalue
                                : a.seq_index < b.seq_index;
  });
  // Stages overlap by design, so no per-stage wall clock exists.  Each
  // worker banked its busy time per stage into its own clock slot; the
  // serial merge here is the per-stage time (racing threads never touch
  // StageStats::seconds directly).  End-to-end wall goes to telemetry.
  const double wall = timer.seconds();
  for (const WorkerClock& c : clocks) {
    out.ssv.seconds += c.stage_s[static_cast<int>(obs::Stage::kSsv)];
    out.msv.seconds += c.stage_s[static_cast<int>(obs::Stage::kMsv)];
    out.vit.seconds += c.stage_s[static_cast<int>(obs::Stage::kVit)];
    out.fwd.seconds += c.stage_s[static_cast<int>(obs::Stage::kFwd)];
    out.bwd.seconds += c.stage_s[static_cast<int>(obs::Stage::kBwd)];
  }

  if (rec) {
    out.telemetry = make_telemetry("cpu_overlapped", src, crew, out, wall,
                                   thr_.use_ssv_prefilter,
                                   thr_.define_domains);
    // StageStats::seconds already hold the per-thread merge; the stages
    // have no individual wall clock, so zero those out.
    for (auto& st : out.telemetry->stages) st.wall_seconds = 0.0;
    merge_busy_from_clocks(*out.telemetry, crew, clocks.data());

    const auto qs = queue.stats();
    obs::QueueTelemetry qt;
    qt.capacity = queue.capacity();
    qt.enqueued = qs.pushes;
    qt.dequeued = qs.pops;
    qt.enqueue_stalls = qs.push_failures;
    qt.max_depth = qs.max_depth;
    for (const WorkerClock& c : clocks) qt.help_first_rescues += c.rescues;
    out.telemetry->queue = qt;

    fill_buckets(*out.telemetry, sched);
    fill_threads(*out.telemetry, crew, clocks.data(), scanner, rec);
  }
  return out;
}

HmmSearch::CoalescedScan HmmSearch::run_cpu_coalesced(
    const std::vector<const HmmSearch*>& searches, ScanSource src,
    ThreadPool& pool, const ScanSchedule* schedule, obs::Recorder* rec) {
  FH_REQUIRE(!searches.empty(), "coalesced scan needs at least one query");
  for (const HmmSearch* hs : searches)
    FH_REQUIRE(hs != nullptr, "coalesced scan given a null query");
  CoalescedScan out;
  const std::size_t k = searches.size();
  const std::size_t n = src.size();
  const std::size_t crew = pool.workers();
  out.per_model.resize(k);
  if (rec != nullptr && rec->enabled())
    rec->reserve_threads(crew);
  else
    rec = nullptr;
  Timer total;

  ScanSchedule local;
  if (schedule == nullptr) {
    local = make_length_schedule(
        n, [&src](std::size_t i) { return src.length(i); });
    schedule = &local;
  }

  // Per-query scanners: model parameters are immutable and shared across
  // the crew; only DP state is per worker.  The sweep below allocates
  // nothing per sequence.
  std::vector<std::unique_ptr<BatchScanner>> scanners;
  scanners.reserve(k);
  for (const HmmSearch* hs : searches)
    scanners.push_back(
        std::make_unique<BatchScanner>(hs->msv_, hs->vit_, nullptr, crew));

  constexpr std::size_t kMsvChunk = 16;
  constexpr std::size_t kVitChunk = 4;
  std::vector<std::vector<std::uint8_t>> ssv_keep(
      k, std::vector<std::uint8_t>(n, 1));
  std::vector<std::vector<std::uint8_t>> msv_keep(
      k, std::vector<std::uint8_t>(n, 0));

  // ---- The shared sweep: one pass over the residue stream, every query
  // scored against each sequence while it is hot in cache.  Per query the
  // fused SSV/MSV decisions are exactly run_cpu's, so the replay below
  // reproduces its hit lists bit for bit.
  Timer stage_timer;
  pool.parallel_for_chunked(
      n, kMsvChunk,
      [&](std::size_t worker, std::size_t begin, std::size_t end) {
        OBS_SPAN(rec, worker, "coalesced.msv.chunk");
        for (std::size_t idx = begin; idx < end; ++idx) {
          const std::size_t s = schedule->order[idx];
          if (idx + 1 < end) src.prefetch(schedule->order[idx + 1]);
          const std::size_t L = src.length(s);
          if (L == 0) {
            for (std::size_t m = 0; m < k; ++m)
              if (searches[m]->thr_.use_ssv_prefilter) ssv_keep[m][s] = 0;
            continue;  // msv_keep stays 0: fails the first active stage
          }
          for (std::size_t m = 0; m < k; ++m) {
            const HmmSearch& hs = *searches[m];
            BatchScanner& scanner = *scanners[m];
            if (hs.thr_.use_ssv_prefilter) {
              auto sr = ssv_score(scanner, worker, src, s, L);
              float sbits =
                  sr.overflowed
                      ? overflow_bits(hs.msv_, static_cast<int>(L))
                      : hmm::nats_to_bits(sr.score_nats,
                                          static_cast<int>(L));
              if (!sr.overflowed &&
                  hs.stats_.ssv_pvalue(sbits) > hs.thr_.ssv_p) {
                ssv_keep[m][s] = 0;
                continue;
              }
            }
            auto r = msv_score(scanner, worker, src, s, L);
            float bits = r.overflowed
                             ? overflow_bits(hs.msv_, static_cast<int>(L))
                             : hmm::nats_to_bits(r.score_nats,
                                                 static_cast<int>(L));
            msv_keep[m][s] =
                (r.overflowed || hs.stats_.msv_pvalue(bits) <= hs.thr_.msv_p)
                    ? 1
                    : 0;
          }
        }
      });
  const double msv_wall = stage_timer.seconds();

  // ---- Per-query tail: serial replay in index order, then the word
  // stages over the rare survivors (identical to run_cpu_parallel).
  std::vector<std::vector<std::uint8_t>> scratch(crew);
  if (src.zero_copy())
    for (auto& sc : scratch) sc.resize(src.max_length());
  double vit_wall_sum = 0.0;
  for (std::size_t m = 0; m < k; ++m) {
    const HmmSearch& hs = *searches[m];
    BatchScanner& scanner = *scanners[m];
    SearchResult& res = out.per_model[m];

    res.msv.n_in = n;
    std::vector<std::size_t> msv_pass;
    for (std::size_t s = 0; s < n; ++s) {
      double cells = static_cast<double>(src.length(s)) * hs.msv_.length();
      if (hs.thr_.use_ssv_prefilter) {
        res.ssv.n_in += 1;
        res.ssv.cells += cells;
        if (!ssv_keep[m][s]) continue;
        res.ssv.n_passed += 1;
      }
      res.msv.cells += cells;
      if (msv_keep[m][s]) msv_pass.push_back(s);
    }
    if (hs.thr_.use_ssv_prefilter) res.msv.n_in = res.ssv.n_passed;
    res.msv.n_passed = msv_pass.size();
    // One pass served every query: the sweep wall clock is shared, not
    // additive across queries.
    res.msv.seconds = msv_wall;

    Timer vit_timer;
    res.vit.n_in = msv_pass.size();
    std::vector<float> vit_bits_all(msv_pass.size());
    std::vector<std::uint8_t> vit_keep(msv_pass.size(), 0);
    pool.parallel_for_chunked(
        msv_pass.size(), kVitChunk,
        [&](std::size_t worker, std::size_t begin, std::size_t end) {
          OBS_SPAN(rec, worker, "coalesced.vit.chunk");
          for (std::size_t i = begin; i < end; ++i) {
            const std::size_t s = msv_pass[i];
            const std::size_t L = src.length(s);
            const std::uint8_t* codes =
                src.fetch_codes(s, scratch[worker].data());
            auto r = scanner.vit(worker, codes, L);
            float bits = hmm::nats_to_bits(r.score_nats,
                                           static_cast<int>(L));
            vit_bits_all[i] = bits;
            vit_keep[i] =
                hs.stats_.vit_pvalue(bits) <= hs.thr_.vit_p ? 1 : 0;
          }
        });
    std::vector<std::size_t> vit_pass;
    std::vector<float> vit_bits_pass;
    for (std::size_t i = 0; i < msv_pass.size(); ++i) {
      res.vit.cells +=
          static_cast<double>(src.length(msv_pass[i])) * hs.vit_.length();
      if (vit_keep[i]) {
        vit_pass.push_back(msv_pass[i]);
        vit_bits_pass.push_back(vit_bits_all[i]);
      }
    }
    res.vit.n_passed = vit_pass.size();
    res.vit.seconds = vit_timer.seconds();
    vit_wall_sum += res.vit.seconds;

    hs.forward_stage(src, vit_pass, vit_bits_pass, res);
  }

  // ---- Batch-level telemetry: aggregated stage totals plus the
  // coalescing counters the daemon's STATS verb surfaces.
  obs::ScanTelemetry& t = out.telemetry;
  t.engine = "cpu_coalesced";
  t.threads = crew;
  t.sequences = n;
  t.residues = src.total_residues();
  t.wall_seconds = total.seconds();
  t.zero_copy = src.zero_copy();
  if (src.zero_copy())
    t.mapped_bytes = packed_stream_bytes(src);
  else
    t.heap_bytes = src.total_residues();
  bool any_ssv = false;
  for (const HmmSearch* hs : searches)
    any_ssv = any_ssv || hs->thr_.use_ssv_prefilter;
  auto aggregate = [&](const char* name, auto pick, double wall) {
    obs::StageTelemetry st;
    st.stage = name;
    for (const SearchResult& r : out.per_model) {
      const StageStats& s = pick(r);
      st.n_in += s.n_in;
      st.n_passed += s.n_passed;
      st.cells += s.cells;
    }
    st.wall_seconds = wall;
    st.busy_seconds = wall;
    t.stages.push_back(std::move(st));
  };
  if (any_ssv)
    aggregate("ssv", [](const SearchResult& r) -> const StageStats& {
      return r.ssv;
    }, msv_wall);
  aggregate("msv", [](const SearchResult& r) -> const StageStats& {
    return r.msv;
  }, msv_wall);
  aggregate("vit", [](const SearchResult& r) -> const StageStats& {
    return r.vit;
  }, vit_wall_sum);
  double fwd_wall = 0.0;
  for (const SearchResult& r : out.per_model) fwd_wall += r.fwd.seconds;
  aggregate("fwd", [](const SearchResult& r) -> const StageStats& {
    return r.fwd;
  }, fwd_wall);
  bool any_domains = false;
  for (const HmmSearch* hs : searches)
    any_domains = any_domains || hs->thr_.define_domains;
  if (any_domains) {
    double bwd_wall = 0.0;
    for (const SearchResult& r : out.per_model) bwd_wall += r.bwd.seconds;
    aggregate("bwd", [](const SearchResult& r) -> const StageStats& {
      return r.bwd;
    }, bwd_wall);
  }
  for (auto& st : t.stages)
    if (st.stage == "msv") {
      st.counters.emplace_back("batch.queries", static_cast<double>(k));
      st.counters.emplace_back("batch.sweeps", 1.0);
    }
  fill_buckets(t, *schedule);
  t.per_thread.resize(crew);
  for (std::size_t w = 0; w < crew; ++w) {
    obs::ThreadTelemetry& row = t.per_thread[w];
    row.thread = static_cast<std::uint32_t>(w);
    for (const auto& scanner : scanners) {
      const auto& load = scanner->load(w);
      row.sequences_scored += load.calls();
      row.stage_items[static_cast<int>(obs::Stage::kSsv)] += load.ssv_calls;
      row.stage_items[static_cast<int>(obs::Stage::kMsv)] += load.msv_calls;
      row.stage_items[static_cast<int>(obs::Stage::kVit)] += load.vit_calls;
    }
  }
  return out;
}

HmmSearch::CoalescedScan HmmSearch::run_cpu_fused(
    const std::vector<const HmmSearch*>& searches, ScanSource src,
    ThreadPool& pool, const hmm::FusePlan* plan, obs::Recorder* rec) {
  FH_REQUIRE(!searches.empty(), "fused scan needs at least one model");
  for (const HmmSearch* hs : searches)
    FH_REQUIRE(hs != nullptr, "fused scan given a null model");
  CoalescedScan out;
  const std::size_t k = searches.size();
  const std::size_t n = src.size();
  const std::size_t crew = pool.workers();
  out.per_model.resize(k);
  if (rec != nullptr && rec->enabled())
    rec->reserve_threads(crew);
  else
    rec = nullptr;
  Timer total;

  // Resolve the group plan at the tier the byte filters will actually run.
  const cpu::SimdTier tier = cpu::resolve_simd_tier(cpu::active_simd_tier());
  const int lane_width = cpu::backend::tier_kernels(tier).u8_lanes;
  hmm::FusePlan local_plan;
  if (plan == nullptr) {
    std::vector<int> lengths(k);
    for (std::size_t m = 0; m < k; ++m)
      lengths[m] = searches[m]->msv_.length();
    local_plan = hmm::plan_model_groups(lengths, lane_width,
                                        hmm::fuse_options_from_env());
    plan = &local_plan;
  }
  FH_REQUIRE(plan->lane_width == lane_width,
             "fuse plan built for a different lane width");
  {
    // Every model index must appear exactly once across groups + unfused.
    std::vector<std::uint8_t> seen(k, 0);
    auto mark = [&](std::size_t idx) {
      FH_REQUIRE(idx < k && !seen[idx],
                 "fuse plan does not cover the model list exactly once");
      seen[idx] = 1;
    };
    for (const hmm::GroupShape& g : plan->groups)
      for (std::size_t idx : g.members) mark(idx);
    for (std::size_t idx : plan->unfused) mark(idx);
    for (std::size_t m = 0; m < k; ++m)
      FH_REQUIRE(seen[m], "fuse plan misses a model");
  }

  ScanSchedule local = make_length_schedule(
      n, [&src](std::size_t i) { return src.length(i); });
  const ScanSchedule* schedule = &local;

  // Per-model scanners still exist for every model: the word stages and
  // the unfused byte filters run through them exactly as in the
  // coalesced engine; only grouped models' SSV/MSV route through the
  // shared fused tables below.
  std::vector<std::unique_ptr<BatchScanner>> scanners;
  scanners.reserve(k);
  for (const HmmSearch* hs : searches)
    scanners.push_back(
        std::make_unique<BatchScanner>(hs->msv_, hs->vit_, nullptr, crew));

  // Shared group tables (read-only across the crew) + per-worker filters.
  std::vector<std::unique_ptr<cpu::FusedMsvGroup>> groups;
  std::vector<std::vector<std::unique_ptr<cpu::FusedMsvFilter>>> gworkers;
  std::vector<std::uint8_t> group_has_ssv;
  std::size_t max_group = 0;
  groups.reserve(plan->groups.size());
  gworkers.reserve(plan->groups.size());
  for (const hmm::GroupShape& shape : plan->groups) {
    std::vector<const profile::MsvProfile*> members;
    members.reserve(shape.members.size());
    bool has_ssv = false;
    for (std::size_t idx : shape.members) {
      members.push_back(&searches[idx]->msv_);
      has_ssv = has_ssv || searches[idx]->thr_.use_ssv_prefilter;
    }
    max_group = std::max(max_group, shape.members.size());
    groups.push_back(std::make_unique<cpu::FusedMsvGroup>(
        std::move(members), lane_width, shape.Q));
    group_has_ssv.push_back(has_ssv ? 1 : 0);
    std::vector<std::unique_ptr<cpu::FusedMsvFilter>> ws;
    ws.reserve(crew);
    for (std::size_t w = 0; w < crew; ++w)
      ws.push_back(std::make_unique<cpu::FusedMsvFilter>(*groups.back(),
                                                         tier));
    gworkers.push_back(std::move(ws));
  }
  std::vector<std::vector<cpu::FilterResult>> ssv_buf(crew);
  std::vector<std::vector<cpu::FilterResult>> msv_buf(crew);
  for (std::size_t w = 0; w < crew; ++w) {
    ssv_buf[w].resize(max_group);
    msv_buf[w].resize(max_group);
  }

  constexpr std::size_t kMsvChunk = 16;
  constexpr std::size_t kVitChunk = 4;
  std::vector<std::vector<std::uint8_t>> ssv_keep(
      k, std::vector<std::uint8_t>(n, 1));
  std::vector<std::vector<std::uint8_t>> msv_keep(
      k, std::vector<std::uint8_t>(n, 0));

  // ---- The fused sweep: one pass over the residue stream; each group's
  // members are scored together by one sweep per sequence, unfused models
  // fall back to their own scanners.  The gate formulas are exactly
  // run_cpu's, so the replay below reproduces its hit lists bit for bit.
  Timer stage_timer;
  pool.parallel_for_chunked(
      n, kMsvChunk,
      [&](std::size_t worker, std::size_t begin, std::size_t end) {
        OBS_SPAN(rec, worker, "fused.msv.chunk");
        for (std::size_t idx = begin; idx < end; ++idx) {
          const std::size_t s = schedule->order[idx];
          if (idx + 1 < end) src.prefetch(schedule->order[idx + 1]);
          const std::size_t L = src.length(s);
          if (L == 0) {
            for (std::size_t m = 0; m < k; ++m)
              if (searches[m]->thr_.use_ssv_prefilter) ssv_keep[m][s] = 0;
            continue;  // msv_keep stays 0: fails the first active stage
          }
          for (std::size_t gi = 0; gi < groups.size(); ++gi) {
            const hmm::GroupShape& shape = plan->groups[gi];
            cpu::FusedMsvFilter& gf = *gworkers[gi][worker];
            bool need_msv = !group_has_ssv[gi];
            if (group_has_ssv[gi]) {
              cpu::FilterResult* sres = ssv_buf[worker].data();
              if (src.zero_copy())
                gf.ssv(src.packed(s), L, sres);
              else
                gf.ssv(src.codes(s), L, sres);
              for (std::size_t mi = 0; mi < shape.members.size(); ++mi) {
                const std::size_t m = shape.members[mi];
                const HmmSearch& hs = *searches[m];
                if (!hs.thr_.use_ssv_prefilter) {
                  need_msv = true;
                  continue;
                }
                const cpu::FilterResult sr = sres[mi];
                float sbits =
                    sr.overflowed
                        ? overflow_bits(hs.msv_, static_cast<int>(L))
                        : hmm::nats_to_bits(sr.score_nats,
                                            static_cast<int>(L));
                if (!sr.overflowed &&
                    hs.stats_.ssv_pvalue(sbits) > hs.thr_.ssv_p) {
                  ssv_keep[m][s] = 0;
                } else {
                  need_msv = true;
                }
              }
            }
            if (!need_msv) continue;  // every member shed by SSV
            cpu::FilterResult* mres = msv_buf[worker].data();
            if (src.zero_copy())
              gf.msv(src.packed(s), L, mres);
            else
              gf.msv(src.codes(s), L, mres);
            for (std::size_t mi = 0; mi < shape.members.size(); ++mi) {
              const std::size_t m = shape.members[mi];
              const HmmSearch& hs = *searches[m];
              if (hs.thr_.use_ssv_prefilter && !ssv_keep[m][s]) continue;
              const cpu::FilterResult r = mres[mi];
              float bits = r.overflowed
                               ? overflow_bits(hs.msv_, static_cast<int>(L))
                               : hmm::nats_to_bits(r.score_nats,
                                                   static_cast<int>(L));
              msv_keep[m][s] = (r.overflowed ||
                                hs.stats_.msv_pvalue(bits) <= hs.thr_.msv_p)
                                   ? 1
                                   : 0;
            }
          }
          for (std::size_t m : plan->unfused) {
            const HmmSearch& hs = *searches[m];
            BatchScanner& scanner = *scanners[m];
            if (hs.thr_.use_ssv_prefilter) {
              auto sr = ssv_score(scanner, worker, src, s, L);
              float sbits =
                  sr.overflowed
                      ? overflow_bits(hs.msv_, static_cast<int>(L))
                      : hmm::nats_to_bits(sr.score_nats,
                                          static_cast<int>(L));
              if (!sr.overflowed &&
                  hs.stats_.ssv_pvalue(sbits) > hs.thr_.ssv_p) {
                ssv_keep[m][s] = 0;
                continue;
              }
            }
            auto r = msv_score(scanner, worker, src, s, L);
            float bits = r.overflowed
                             ? overflow_bits(hs.msv_, static_cast<int>(L))
                             : hmm::nats_to_bits(r.score_nats,
                                                 static_cast<int>(L));
            msv_keep[m][s] =
                (r.overflowed || hs.stats_.msv_pvalue(bits) <= hs.thr_.msv_p)
                    ? 1
                    : 0;
          }
        }
      });
  const double msv_wall = stage_timer.seconds();

  // ---- Per-model tail: serial replay in index order, then the word
  // stages over the rare survivors (identical to run_cpu_coalesced).
  std::vector<std::vector<std::uint8_t>> scratch(crew);
  if (src.zero_copy())
    for (auto& sc : scratch) sc.resize(src.max_length());
  double vit_wall_sum = 0.0;
  for (std::size_t m = 0; m < k; ++m) {
    const HmmSearch& hs = *searches[m];
    BatchScanner& scanner = *scanners[m];
    SearchResult& res = out.per_model[m];

    res.msv.n_in = n;
    std::vector<std::size_t> msv_pass;
    for (std::size_t s = 0; s < n; ++s) {
      double cells = static_cast<double>(src.length(s)) * hs.msv_.length();
      if (hs.thr_.use_ssv_prefilter) {
        res.ssv.n_in += 1;
        res.ssv.cells += cells;
        if (!ssv_keep[m][s]) continue;
        res.ssv.n_passed += 1;
      }
      res.msv.cells += cells;
      if (msv_keep[m][s]) msv_pass.push_back(s);
    }
    if (hs.thr_.use_ssv_prefilter) res.msv.n_in = res.ssv.n_passed;
    res.msv.n_passed = msv_pass.size();
    // One sweep served every model: the wall clock is shared, not
    // additive across models.
    res.msv.seconds = msv_wall;

    Timer vit_timer;
    res.vit.n_in = msv_pass.size();
    std::vector<float> vit_bits_all(msv_pass.size());
    std::vector<std::uint8_t> vit_keep(msv_pass.size(), 0);
    pool.parallel_for_chunked(
        msv_pass.size(), kVitChunk,
        [&](std::size_t worker, std::size_t begin, std::size_t end) {
          OBS_SPAN(rec, worker, "fused.vit.chunk");
          for (std::size_t i = begin; i < end; ++i) {
            const std::size_t s = msv_pass[i];
            const std::size_t L = src.length(s);
            const std::uint8_t* codes =
                src.fetch_codes(s, scratch[worker].data());
            auto r = scanner.vit(worker, codes, L);
            float bits = hmm::nats_to_bits(r.score_nats,
                                           static_cast<int>(L));
            vit_bits_all[i] = bits;
            vit_keep[i] =
                hs.stats_.vit_pvalue(bits) <= hs.thr_.vit_p ? 1 : 0;
          }
        });
    std::vector<std::size_t> vit_pass;
    std::vector<float> vit_bits_pass;
    for (std::size_t i = 0; i < msv_pass.size(); ++i) {
      res.vit.cells +=
          static_cast<double>(src.length(msv_pass[i])) * hs.vit_.length();
      if (vit_keep[i]) {
        vit_pass.push_back(msv_pass[i]);
        vit_bits_pass.push_back(vit_bits_all[i]);
      }
    }
    res.vit.n_passed = vit_pass.size();
    res.vit.seconds = vit_timer.seconds();
    vit_wall_sum += res.vit.seconds;

    hs.forward_stage(src, vit_pass, vit_bits_pass, res);
  }

  // ---- Batch-level telemetry: aggregated stage totals plus the lane
  // occupancy counters the daemon's STATS verb surfaces.
  obs::ScanTelemetry& t = out.telemetry;
  t.engine = "cpu_fused";
  t.threads = crew;
  t.sequences = n;
  t.residues = src.total_residues();
  t.wall_seconds = total.seconds();
  t.zero_copy = src.zero_copy();
  if (src.zero_copy())
    t.mapped_bytes = packed_stream_bytes(src);
  else
    t.heap_bytes = src.total_residues();
  bool any_ssv = false;
  for (const HmmSearch* hs : searches)
    any_ssv = any_ssv || hs->thr_.use_ssv_prefilter;
  auto aggregate = [&](const char* name, auto pick, double wall) {
    obs::StageTelemetry st;
    st.stage = name;
    for (const SearchResult& r : out.per_model) {
      const StageStats& s = pick(r);
      st.n_in += s.n_in;
      st.n_passed += s.n_passed;
      st.cells += s.cells;
    }
    st.wall_seconds = wall;
    st.busy_seconds = wall;
    t.stages.push_back(std::move(st));
  };
  if (any_ssv)
    aggregate("ssv", [](const SearchResult& r) -> const StageStats& {
      return r.ssv;
    }, msv_wall);
  aggregate("msv", [](const SearchResult& r) -> const StageStats& {
    return r.msv;
  }, msv_wall);
  aggregate("vit", [](const SearchResult& r) -> const StageStats& {
    return r.vit;
  }, vit_wall_sum);
  double fwd_wall = 0.0;
  for (const SearchResult& r : out.per_model) fwd_wall += r.fwd.seconds;
  aggregate("fwd", [](const SearchResult& r) -> const StageStats& {
    return r.fwd;
  }, fwd_wall);
  bool any_domains = false;
  for (const HmmSearch* hs : searches)
    any_domains = any_domains || hs->thr_.define_domains;
  if (any_domains) {
    double bwd_wall = 0.0;
    for (const SearchResult& r : out.per_model) bwd_wall += r.bwd.seconds;
    aggregate("bwd", [](const SearchResult& r) -> const StageStats& {
      return r.bwd;
    }, bwd_wall);
  }
  for (auto& st : t.stages)
    if (st.stage == "msv") {
      st.counters.emplace_back("batch.queries", static_cast<double>(k));
      st.counters.emplace_back("batch.sweeps", 1.0);
      st.counters.emplace_back("fuse.groups",
                               static_cast<double>(plan->groups.size()));
      st.counters.emplace_back("fuse.fused_models",
                               static_cast<double>(plan->fused_models()));
      st.counters.emplace_back("fuse.models_per_group",
                               plan->models_per_group());
      st.counters.emplace_back("fuse.lane_occupancy",
                               plan->lane_occupancy());
    }
  fill_buckets(t, *schedule);
  t.per_thread.resize(crew);
  for (std::size_t w = 0; w < crew; ++w) {
    obs::ThreadTelemetry& row = t.per_thread[w];
    row.thread = static_cast<std::uint32_t>(w);
    for (const auto& scanner : scanners) {
      const auto& load = scanner->load(w);
      row.sequences_scored += load.calls();
      row.stage_items[static_cast<int>(obs::Stage::kSsv)] += load.ssv_calls;
      row.stage_items[static_cast<int>(obs::Stage::kMsv)] += load.msv_calls;
      row.stage_items[static_cast<int>(obs::Stage::kVit)] += load.vit_calls;
    }
  }
  return out;
}

SearchResult HmmSearch::run_gpu(const simt::DeviceSpec& dev,
                                const bio::SequenceDatabase& db,
                                const bio::PackedDatabase& packed,
                                gpu::ParamPlacement placement) const {
  return run_gpu_impl(dev, db, packed, placement, placement);
}

SearchResult HmmSearch::run_gpu_auto(const simt::DeviceSpec& dev,
                                     const bio::SequenceDatabase& db,
                                     const bio::PackedDatabase& packed) const {
  auto msv_choice =
      gpu::choose_placement(gpu::Stage::kMsv, msv_.length(), dev);
  auto vit_choice =
      gpu::choose_placement(gpu::Stage::kViterbi, vit_.length(), dev);
  return run_gpu_impl(dev, db, packed, msv_choice.placement,
                      vit_choice.placement);
}

SearchResult HmmSearch::run_gpu_impl(const simt::DeviceSpec& dev,
                                     const bio::SequenceDatabase& db,
                                     const bio::PackedDatabase& packed,
                                     gpu::ParamPlacement msv_placement,
                                     gpu::ParamPlacement vit_placement) const {
  FH_REQUIRE(packed.size() == db.size(), "packed database mismatch");
  SearchResult out;
  obs::Recorder* rec =
      (recorder_ != nullptr && recorder_->enabled()) ? recorder_ : nullptr;
  if (rec) rec->reserve_threads(1);
  obs::ScanTelemetry gpu_t;  // per-stage SIMT counters, collected as we go
  Timer total;
  Timer timer;
  gpu::GpuSearch search(dev);

  // ---- Stage 0 (optional): warp-synchronous SSV pre-filter ----
  std::vector<std::size_t> candidates;
  const std::vector<std::size_t>* msv_items = nullptr;
  if (thr_.use_ssv_prefilter) {
    OBS_SPAN(rec, 0, "gpu.ssv");
    out.ssv.n_in = db.size();
    auto ssv_run = search.run_ssv(msv_, packed, msv_placement);
    if (rec) {
      obs::StageTelemetry st;
      st.stage = "ssv";
      st.counters = obs::counters_kv(ssv_run.counters);
      gpu_t.stages.push_back(std::move(st));
    }
    for (std::size_t s = 0; s < db.size(); ++s) {
      int L = static_cast<int>(db[s].length());
      bool overflowed = ssv_run.overflow[s] != 0;
      float bits = overflowed ? overflow_bits(msv_, L)
                              : hmm::nats_to_bits(ssv_run.scores[s], L);
      if (overflowed || stats_.ssv_pvalue(bits) <= thr_.ssv_p)
        candidates.push_back(s);
    }
    out.ssv.n_passed = candidates.size();
    out.ssv.cells = static_cast<double>(ssv_run.counters.cells);
    out.ssv.seconds = timer.seconds();
    timer.reset();
    msv_items = &candidates;
  }

  // ---- Stage 1: warp-synchronous MSV ----
  out.msv.n_in = msv_items ? candidates.size() : db.size();
  auto msv_run = [&] {
    OBS_SPAN(rec, 0, "gpu.msv");
    return search.run_msv(msv_, packed, msv_placement, msv_items);
  }();
  if (rec) {
    obs::StageTelemetry st;
    st.stage = "msv";
    st.counters = obs::counters_kv(msv_run.counters);
    gpu_t.stages.push_back(std::move(st));
  }
  std::vector<std::size_t> msv_pass;
  for (std::size_t i = 0; i < msv_run.scores.size(); ++i) {
    std::size_t s = msv_items ? candidates[i] : i;
    int L = static_cast<int>(db[s].length());
    bool overflowed = msv_run.overflow[i] != 0;
    float bits = overflowed ? overflow_bits(msv_, L)
                            : hmm::nats_to_bits(msv_run.scores[i], L);
    if (overflowed || stats_.msv_pvalue(bits) <= thr_.msv_p)
      msv_pass.push_back(s);
  }
  out.msv.n_passed = msv_pass.size();
  out.msv.cells = static_cast<double>(msv_run.counters.cells);
  out.msv.seconds = timer.seconds();
  out.gpu_msv = std::move(msv_run);

  // ---- Stage 2: warp-synchronous P7Viterbi on the survivors ----
  timer.reset();
  out.vit.n_in = msv_pass.size();
  std::vector<std::size_t> vit_pass;
  std::vector<float> vit_bits_pass;
  if (!msv_pass.empty()) {
    auto vit_run = [&] {
      OBS_SPAN(rec, 0, "gpu.vit");
      return search.run_vit(vit_, packed, vit_placement, &msv_pass);
    }();
    if (rec) {
      obs::StageTelemetry st;
      st.stage = "vit";
      st.counters = obs::counters_kv(vit_run.counters);
      gpu_t.stages.push_back(std::move(st));
    }
    for (std::size_t i = 0; i < msv_pass.size(); ++i) {
      std::size_t s = msv_pass[i];
      int L = static_cast<int>(db[s].length());
      float bits = hmm::nats_to_bits(vit_run.scores[i], L);
      if (stats_.vit_pvalue(bits) <= thr_.vit_p) {
        vit_pass.push_back(s);
        vit_bits_pass.push_back(bits);
      }
    }
    out.vit.cells = static_cast<double>(vit_run.counters.cells);
    out.gpu_vit = std::move(vit_run);
  }
  out.vit.n_passed = vit_pass.size();
  out.vit.seconds = timer.seconds();

  forward_stage(db, vit_pass, vit_bits_pass, out);

  if (rec) {
    out.telemetry = make_telemetry("gpu_sim", db, 1, out, total.seconds(),
                                   thr_.use_ssv_prefilter);
    // Graft the per-stage SIMT counters collected above onto the shared
    // stage rows, so device runs read through the same schema.
    for (auto& st : out.telemetry->stages)
      for (auto& collected : gpu_t.stages)
        if (collected.stage == st.stage)
          st.counters = std::move(collected.counters);
  }
  return out;
}

HmmSearch::MultiGpuResult HmmSearch::run_gpu_multi(
    const std::vector<simt::DeviceSpec>& devs,
    const bio::SequenceDatabase& db, const bio::PackedDatabase& packed,
    gpu::ParamPlacement placement) const {
  FH_REQUIRE(!devs.empty(), "need at least one device");
  FH_REQUIRE(packed.size() == db.size(), "packed database mismatch");
  MultiGpuResult out;
  SearchResult& combined = out.combined;
  Timer timer;

  // ---- Stage 1: MSV, database partitioned by residues (Fig. 11) ----
  combined.msv.n_in = db.size();
  auto msv_multi = gpu::run_msv_multi(devs, msv_, packed, placement);
  std::vector<std::size_t> msv_pass;
  for (std::size_t s = 0; s < db.size(); ++s) {
    int L = static_cast<int>(db[s].length());
    bool overflowed = msv_multi.overflow[s] != 0;
    float bits = overflowed ? overflow_bits(msv_, L)
                            : hmm::nats_to_bits(msv_multi.scores[s], L);
    if (overflowed || stats_.msv_pvalue(bits) <= thr_.msv_p)
      msv_pass.push_back(s);
  }
  combined.msv.n_passed = msv_pass.size();
  for (auto& r : msv_multi.per_device) {
    combined.msv.cells += static_cast<double>(r.counters.cells);
    out.msv_per_device.push_back(std::move(r));
  }
  combined.msv.seconds = timer.seconds();

  // ---- Stage 2: P7Viterbi, survivors re-partitioned round-robin ----
  timer.reset();
  combined.vit.n_in = msv_pass.size();
  std::vector<std::size_t> vit_pass;
  std::vector<float> vit_bits_pass;
  if (!msv_pass.empty()) {
    std::vector<std::vector<std::size_t>> parts(devs.size());
    for (std::size_t i = 0; i < msv_pass.size(); ++i)
      parts[i % devs.size()].push_back(msv_pass[i]);
    for (std::size_t d = 0; d < devs.size(); ++d) {
      if (parts[d].empty()) continue;
      gpu::GpuSearch search(devs[d]);
      auto run = search.run_vit(vit_, packed, placement, &parts[d]);
      for (std::size_t i = 0; i < parts[d].size(); ++i) {
        std::size_t s = parts[d][i];
        int L = static_cast<int>(db[s].length());
        float bits = hmm::nats_to_bits(run.scores[i], L);
        if (stats_.vit_pvalue(bits) <= thr_.vit_p) {
          vit_pass.push_back(s);
          vit_bits_pass.push_back(bits);
        }
      }
      combined.vit.cells += static_cast<double>(run.counters.cells);
      out.vit_per_device.push_back(std::move(run));
    }
    // Keep deterministic ordering for downstream reporting.
    std::vector<std::size_t> order(vit_pass.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return vit_pass[a] < vit_pass[b];
    });
    std::vector<std::size_t> sorted_pass;
    std::vector<float> sorted_bits;
    for (auto idx : order) {
      sorted_pass.push_back(vit_pass[idx]);
      sorted_bits.push_back(vit_bits_pass[idx]);
    }
    vit_pass.swap(sorted_pass);
    vit_bits_pass.swap(sorted_bits);
  }
  combined.vit.n_passed = vit_pass.size();
  combined.vit.seconds = timer.seconds();

  forward_stage(db, vit_pass, vit_bits_pass, combined);
  return out;
}

void HmmSearch::forward_stage(ScanSource src,
                              const std::vector<std::size_t>& survivors,
                              const std::vector<float>& vit_bits,
                              SearchResult& out) const {
  obs::Recorder* rec =
      (recorder_ != nullptr && recorder_->enabled()) ? recorder_ : nullptr;
  if (rec) rec->reserve_threads(1);  // run_gpu_multi skips engine setup
  OBS_SPAN(rec, 0, "fwd");
  Timer timer;
  out.fwd.n_in = survivors.size();
  const bool need_trace = thr_.null2_correction || thr_.compute_alignments;
  cpu::FwdFilter fwd_filter(fwd_);
  cpu::TraceWorkspace ws;
  std::vector<std::uint8_t> scratch;
  std::vector<float> mocc;  // decode occupancy track, reused across hits
  double bwd_seconds = 0.0;
  if (src.zero_copy()) scratch.resize(src.max_length());
  for (std::size_t i = 0; i < survivors.size(); ++i) {
    const std::size_t s = survivors[i];
    const std::size_t L = src.length(s);
    const std::uint8_t* codes = src.fetch_codes(s, scratch.data());
    float raw = fwd_filter.score(codes, L);
    out.fwd.cells += static_cast<double>(L) * prof_.length();

    cpu::ViterbiTrace trace;
    float bias_nats = 0.0f;
    if (need_trace) trace = cpu::viterbi_trace(prof_, codes, L, ws);
    if (thr_.null2_correction)
      bias_nats = null2_correction(prof_, trace, codes);

    float bits = hmm::nats_to_bits(raw - bias_nats, static_cast<int>(L));
    double p = stats_.fwd_pvalue(bits);
    double e = stats::evalue(p, src.size(), thr_.z_override);
    if (e <= thr_.report_evalue) {
      Hit h;
      h.seq_index = s;
      h.name = std::string(src.name(s));
      h.vit_bits = vit_bits[i];
      h.fwd_bits = bits;
      h.bias_bits = bias_nats / static_cast<float>(M_LN2);
      h.pvalue = p;
      h.evalue = e;
      if (thr_.compute_alignments)
        h.alignments = cpu::trace_alignments(trace, prof_, codes);
      if (thr_.define_domains) {
        // Checkpointed Forward/Backward on the active vector tier fills
        // mocc; envelope definition and rescoring run on it directly.
        Timer bwd_t;
        fwd_filter.decode(codes, L, mocc);
        h.domains = cpu::domains_from_occupancy(prof_, codes, L, mocc.data());
        out.bwd.n_in += 1;
        out.bwd.n_passed += 1;
        out.bwd.cells += static_cast<double>(L) * prof_.length();
        bwd_seconds += bwd_t.seconds();
      }
      out.hits.push_back(std::move(h));
      ++out.fwd.n_passed;
    }
  }
  // The decode share of the loop belongs to the bwd stage, not fwd.
  out.bwd.seconds = bwd_seconds;
  out.fwd.seconds = timer.seconds() - bwd_seconds;
  // (evalue, seq_index) is a total order, so the hit list is a pure
  // function of the hit set — a cluster coordinator merging shard hits
  // re-sorts by the same key and reproduces this order byte-for-byte.
  std::sort(out.hits.begin(), out.hits.end(), [](const Hit& a, const Hit& b) {
    return a.evalue != b.evalue ? a.evalue < b.evalue
                                : a.seq_index < b.seq_index;
  });
}

}  // namespace finehmm::pipeline
