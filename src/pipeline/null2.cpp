#include "pipeline/null2.hpp"

#include <cmath>

#include "util/logspace.hpp"

namespace finehmm::pipeline {

float null2_correction(const hmm::SearchProfile& prof,
                       const cpu::ViterbiTrace& trace,
                       const std::uint8_t* seq) {
  const auto& bg = bio::background_frequencies();

  // Expected emission composition of the aligned model columns.  The
  // profile stores log-odds msc = log(mat/bg), so mat = bg * exp(msc).
  double f[bio::kK] = {0.0};
  int n_columns = 0;
  std::size_t span_begin = 0, span_end = 0;
  double null2_sc = 0.0;
  bool any = false;

  for (const auto& step : trace.steps) {
    if (step.state != cpu::TraceState::kM) continue;
    for (int a = 0; a < bio::kK; ++a) {
      float msc = prof.msc(step.k, a);
      if (msc != kNegInf) f[a] += bg[a] * std::exp(msc);
    }
    ++n_columns;
    if (span_begin == 0) span_begin = step.i;
    span_end = step.i;
    any = true;
  }
  if (!any || n_columns == 0) return 0.0f;

  double total = 0.0;
  for (int a = 0; a < bio::kK; ++a) total += f[a];
  if (total <= 0.0) return 0.0f;
  for (int a = 0; a < bio::kK; ++a) f[a] /= total;

  // Score the aligned span (match + insert residues) under null2 vs null1.
  for (std::size_t i = span_begin; i <= span_end; ++i) {
    std::uint8_t x = seq[i - 1];
    if (!bio::is_canonical(x)) continue;  // degenerates: neutral
    if (f[x] > 0.0) null2_sc += std::log(f[x] / bg[x]);
  }

  return logsum_exact(0.0f, std::log(kNull2Omega) +
                                static_cast<float>(null2_sc));
}

}  // namespace finehmm::pipeline
