// Search result rendering: hmmsearch-style human-readable reports and the
// machine-readable --tblout table, as library functions so every tool
// (and test) shares one formatter.
#pragma once

#include <iosfwd>
#include <string>

#include "pipeline/pipeline.hpp"
#include "pipeline/scan_source.hpp"

namespace finehmm::pipeline {

struct ReportOptions {
  std::size_t max_hits = 50;
  bool show_alignments = false;  // needs Thresholds::compute_alignments
  bool show_domains = false;     // needs Thresholds::define_domains
};

/// The database facts the report header needs.  A local scan derives
/// these from its ScanSource; a remote scan (hmmsearch_tool --connect)
/// receives them in the daemon's result frame, so both paths render
/// byte-identical reports (docs/server.md).
struct DbSummary {
  std::uint64_t sequences = 0;
  std::uint64_t residues = 0;
};

/// Human-readable report: header, pipeline summary, hit table, optional
/// alignment blocks and domain tables.
void write_report(std::ostream& out, const SearchResult& result,
                  const hmm::SearchProfile& query, DbSummary db,
                  const ReportOptions& opts = {});
void write_report(std::ostream& out, const SearchResult& result,
                  const hmm::SearchProfile& query, ScanSource db,
                  const ReportOptions& opts = {});

/// HMMER-style target table (--tblout): one line per hit,
/// whitespace-separated, '#' comments.
void write_tblout(std::ostream& out, const SearchResult& result,
                  const hmm::SearchProfile& query, DbSummary db);
void write_tblout(std::ostream& out, const SearchResult& result,
                  const hmm::SearchProfile& query, ScanSource db);

}  // namespace finehmm::pipeline
