// Search result rendering: hmmsearch-style human-readable reports and the
// machine-readable --tblout table, as library functions so every tool
// (and test) shares one formatter.
#pragma once

#include <iosfwd>
#include <string>

#include "pipeline/pipeline.hpp"
#include "pipeline/scan_source.hpp"

namespace finehmm::pipeline {

struct ReportOptions {
  std::size_t max_hits = 50;
  bool show_alignments = false;  // needs Thresholds::compute_alignments
  bool show_domains = false;     // needs Thresholds::define_domains
};

/// Human-readable report: header, pipeline summary, hit table, optional
/// alignment blocks and domain tables.
void write_report(std::ostream& out, const SearchResult& result,
                  const hmm::SearchProfile& query, ScanSource db,
                  const ReportOptions& opts = {});

/// HMMER-style target table (--tblout): one line per hit,
/// whitespace-separated, '#' comments.
void write_tblout(std::ostream& out, const SearchResult& result,
                  const hmm::SearchProfile& query, ScanSource db);

}  // namespace finehmm::pipeline
