// Uniform, non-owning view over the two database representations the CPU
// engines can scan: a heap-decoded bio::SequenceDatabase and a zero-copy
// bio::MappedSeqDb.
//
// The byte filters (SSV/MSV, 100% of the database) score the packed
// residue stream in place when the source is mapped; the word stages
// (Viterbi/Forward/trace) run only on rare survivors, which fetch_codes
// decodes into caller-owned per-worker scratch — so the scan performs no
// per-sequence allocation and no per-sequence residue copy on the mmap
// path.  ScanSource is a trivially copyable pair of pointers; it must not
// outlive the database it views.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "bio/packed_seq.hpp"
#include "bio/seq_db_io.hpp"
#include "bio/sequence.hpp"

namespace finehmm::pipeline {

class ScanSource {
 public:
  ScanSource(const bio::SequenceDatabase& db) : heap_(&db) {}  // NOLINT
  ScanSource(const bio::MappedSeqDb& db) : mapped_(&db) {}     // NOLINT

  /// True when residues live packed in the mapped file (use packed());
  /// false when they live as decoded byte codes on the heap (use codes()).
  bool zero_copy() const noexcept { return mapped_ != nullptr; }

  std::size_t size() const noexcept {
    return mapped_ ? mapped_->size() : heap_->size();
  }
  std::size_t length(std::size_t i) const {
    return mapped_ ? mapped_->length(i) : (*heap_)[i].length();
  }
  std::string_view name(std::size_t i) const {
    return mapped_ ? mapped_->name(i) : std::string_view((*heap_)[i].name);
  }
  std::uint64_t total_residues() const noexcept {
    return mapped_ ? mapped_->total_residues() : heap_->total_residues();
  }
  std::size_t max_length() const noexcept {
    return mapped_ ? mapped_->max_length() : heap_->max_length();
  }

  /// Decoded byte codes; only valid when !zero_copy().
  const std::uint8_t* codes(std::size_t i) const {
    return (*heap_)[i].codes.data();
  }
  /// Packed residue view; only valid when zero_copy().
  bio::PackedResidues packed(std::size_t i) const {
    return mapped_->residues(i);
  }

  /// Byte codes of sequence i for the word stages: the heap pointer
  /// directly, or the packed stream decoded into `scratch` (caller-owned,
  /// >= max_length() bytes, reused across survivors).
  const std::uint8_t* fetch_codes(std::size_t i, std::uint8_t* scratch) const {
    if (!mapped_) return (*heap_)[i].codes.data();
    bio::unpack_into(mapped_->residues(i), mapped_->length(i), scratch);
    return scratch;
  }

  /// Hint the start of sequence i's residue stream into cache ahead of
  /// scoring it (the scan is sequential in schedule order, so the next
  /// sequence's first lines are the predictable miss).
  void prefetch(std::size_t i) const {
#if defined(__GNUC__) || defined(__clang__)
    const void* p = mapped_ ? static_cast<const void*>(mapped_->residues(i).data())
                            : static_cast<const void*>((*heap_)[i].codes.data());
    __builtin_prefetch(p, /*rw=*/0, /*locality=*/2);
    __builtin_prefetch(static_cast<const char*>(p) + 64, 0, 2);
#else
    (void)i;
#endif
  }

 private:
  const bio::SequenceDatabase* heap_ = nullptr;
  const bio::MappedSeqDb* mapped_ = nullptr;
};

}  // namespace finehmm::pipeline
