// hmmscan-style batch search: one database against many profile HMMs.
//
// This is the paper's motivating production workload ("scanning an entire
// database of HMMs for all motifs", §I): Pfam has tens of thousands of
// families.  MultiSearch owns one calibrated HmmSearch per model and scans
// the shared (packed-once) database against each; per-model launch
// placement follows the occupancy policy, so small families run shared
// and large families run global, as Fig. 9's optimal curve prescribes.
#pragma once

#include <vector>

#include "pipeline/pipeline.hpp"

namespace finehmm::pipeline {

struct ModelResult {
  std::string model_name;
  int model_length = 0;
  SearchResult result;
  gpu::ParamPlacement msv_placement = gpu::ParamPlacement::kShared;
};

class MultiSearch {
 public:
  MultiSearch(std::vector<hmm::Plan7Hmm> models, Thresholds thresholds = {},
              stats::CalibrateOptions calib = {});

  std::size_t size() const noexcept { return searches_.size(); }
  const HmmSearch& search(std::size_t i) const { return searches_[i]; }

  /// Scan with the CPU engines.
  std::vector<ModelResult> run_cpu(const bio::SequenceDatabase& db) const;

  /// Multithreaded CPU scan.  One ThreadPool (and its worker threads) is
  /// shared across all models; each model's scan state is a BatchScanner
  /// sized to the pool, so the sweep performs no per-sequence allocation.
  /// `threads` = 0 picks hardware concurrency.  Hits match run_cpu.
  std::vector<ModelResult> run_cpu_parallel(const bio::SequenceDatabase& db,
                                            std::size_t threads = 0) const;

  /// Model lengths in index order — the input to hmm::plan_model_groups.
  std::vector<int> model_lengths() const;

  /// Fused many-model scan: short models lane-packed into shared striped
  /// group tables so one MSV/SSV sweep scores a whole group per sequence
  /// (HmmSearch::run_cpu_fused).  Hits are bit-identical to run_cpu per
  /// model.  `plan` may pass a cached group shape (null auto-tunes from
  /// the length histogram + FINEHMM_FUSE); `telemetry`, when non-null,
  /// receives the batch snapshot with the fuse.* counters.
  std::vector<ModelResult> run_cpu_fused(
      const bio::SequenceDatabase& db, std::size_t threads = 0,
      const hmm::FusePlan* plan = nullptr,
      obs::ScanTelemetry* telemetry = nullptr) const;

  /// Scan with the SIMT kernels, auto placement per model.
  std::vector<ModelResult> run_gpu(const simt::DeviceSpec& dev,
                                   const bio::SequenceDatabase& db,
                                   const bio::PackedDatabase& packed) const;

 private:
  std::vector<HmmSearch> searches_;
};

}  // namespace finehmm::pipeline
