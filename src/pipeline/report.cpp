#include "pipeline/report.hpp"

#include <cstdio>
#include <ostream>

namespace finehmm::pipeline {

namespace {

void print_alignment_block(std::ostream& out, const cpu::Alignment& a) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "    model %5d ", a.k_start);
  out << buf << a.model_line << ' ' << a.k_end << '\n';
  out << "                " << a.match_line << '\n';
  std::snprintf(buf, sizeof(buf), "    seq   %5zu ", a.i_start);
  out << buf << a.seq_line << ' ' << a.i_end << '\n';
}

}  // namespace

void write_report(std::ostream& out, const SearchResult& result,
                  const hmm::SearchProfile& query,
                  ScanSource db,
                  const ReportOptions& opts) {
  write_report(out, result, query,
               DbSummary{db.size(), db.total_residues()}, opts);
}

void write_report(std::ostream& out, const SearchResult& result,
                  const hmm::SearchProfile& query,
                  DbSummary db,
                  const ReportOptions& opts) {
  char line[256];
  out << "# query:    " << query.name() << " (M=" << query.length() << ")\n";
  out << "# database: " << db.sequences << " sequences, "
      << db.residues << " residues\n";
  out << "# pipeline:";
  if (result.ssv.n_in > 0)
    out << " SSV " << result.ssv.n_passed << '/' << result.ssv.n_in << " ->";
  out << " MSV " << result.msv.n_passed << '/' << result.msv.n_in
      << " -> P7Viterbi " << result.vit.n_passed << " -> hits "
      << result.hits.size() << "\n#\n";

  std::snprintf(line, sizeof(line), "%10s %10s %6s %10s  %s\n", "E-value",
                "score", "bias", "vit bits", "sequence");
  out << line;
  std::snprintf(line, sizeof(line), "%10s %10s %6s %10s  %s\n", "-------",
                "-----", "----", "--------", "--------");
  out << line;

  std::size_t shown = 0;
  for (const auto& hit : result.hits) {
    std::snprintf(line, sizeof(line), "%10.2e %10.1f %6.1f %10.1f  %s\n",
                  hit.evalue, hit.fwd_bits, hit.bias_bits, hit.vit_bits,
                  hit.name.c_str());
    out << line;
    if (opts.show_domains && !hit.domains.empty()) {
      for (std::size_t d = 0; d < hit.domains.size(); ++d) {
        const auto& dom = hit.domains[d];
        std::snprintf(line, sizeof(line),
                      "    domain %zu: env %zu..%zu  %6.1f bits\n", d + 1,
                      dom.i_start, dom.i_end, dom.bits);
        out << line;
        if (opts.show_alignments)
          for (const auto& a : dom.alignments) print_alignment_block(out, a);
      }
    } else if (opts.show_alignments) {
      for (const auto& a : hit.alignments) print_alignment_block(out, a);
    }
    if (++shown >= opts.max_hits) break;
  }
  if (result.hits.size() > shown)
    out << "# ... " << result.hits.size() - shown
        << " additional hits suppressed\n";
}

void write_tblout(std::ostream& out, const SearchResult& result,
                  const hmm::SearchProfile& query,
                  ScanSource db) {
  write_tblout(out, result, query, DbSummary{db.size(), db.total_residues()});
}

void write_tblout(std::ostream& out, const SearchResult& result,
                  const hmm::SearchProfile& query,
                  DbSummary db) {
  (void)db;
  char line[256];
  out << "#target name         query name           E-value  score   bias"
         "  vit-bits  ndom\n";
  out << "#------------------- ------------------ --------- ------ ------"
         "  --------  ----\n";
  for (const auto& hit : result.hits) {
    std::snprintf(line, sizeof(line),
                  "%-20s %-18s %9.2e %6.1f %6.1f  %8.1f  %4zu\n",
                  hit.name.c_str(), query.name().c_str(), hit.evalue,
                  hit.fwd_bits, hit.bias_bits, hit.vit_bits,
                  hit.domains.empty() ? 1 : hit.domains.size());
    out << line;
  }
}

}  // namespace finehmm::pipeline
