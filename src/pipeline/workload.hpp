// Benchmark workloads: synthetic databases with planted homologs.
//
// The paper's discussion (§V) notes the overall speedup depends on the
// degree of homology between the target database and the query model —
// homologous sequences survive the MSV filter and shift work into the
// P7Viterbi stage.  make_workload lets every bench control that fraction.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "bio/synthetic.hpp"
#include "hmm/plan7.hpp"

namespace finehmm::pipeline {

struct WorkloadSpec {
  bio::SyntheticDbSpec db;
  /// Fraction of sequences sampled from the query model (true homologs).
  double homolog_fraction = 0.01;
  std::uint64_t seed = 2024;
};

/// Generate the database: (1 - homolog_fraction) background sequences plus
/// homologs sampled from the model, interleaved deterministically.
bio::SequenceDatabase make_workload(const hmm::Plan7Hmm& model,
                                    const WorkloadSpec& spec);

/// A deterministic scan order over database indices.
///
/// Sequences are grouped into geometric length buckets (each bucket spans
/// roughly a 2x length range) and scanned longest-bucket first, ascending
/// index within a bucket.  Chunks handed to workers therefore hold
/// similar-length sequences — balanced chunk cost, and DP rows that stay
/// the same temperature from one sequence to the next — while the longest
/// (most expensive) work is issued first so it cannot strand the tail of
/// the scan on one worker.  The order depends only on the lengths, never
/// on timing, and engines bank results into per-index slots, so reported
/// hits are independent of it.
struct ScanSchedule {
  std::vector<std::uint32_t> order;  // permutation of [0, n)
  std::size_t n_buckets = 0;         // distinct non-empty buckets
  /// Per non-empty bucket, in emission order (longest bucket first):
  /// how many sequences / residues it holds.  The telemetry layer
  /// reports these as the scan's length-bucket utilization; entries sum
  /// to n and to the database residue count respectively.
  std::vector<std::uint64_t> bucket_sequences;
  std::vector<std::uint64_t> bucket_residues;
};

/// Build the bucketed order for `n` sequences with lengths given by
/// `length_of(i)`.
ScanSchedule make_length_schedule(
    std::size_t n, const std::function<std::size_t(std::size_t)>& length_of);

}  // namespace finehmm::pipeline
