// Benchmark workloads: synthetic databases with planted homologs.
//
// The paper's discussion (§V) notes the overall speedup depends on the
// degree of homology between the target database and the query model —
// homologous sequences survive the MSV filter and shift work into the
// P7Viterbi stage.  make_workload lets every bench control that fraction.
#pragma once

#include "bio/synthetic.hpp"
#include "hmm/plan7.hpp"

namespace finehmm::pipeline {

struct WorkloadSpec {
  bio::SyntheticDbSpec db;
  /// Fraction of sequences sampled from the query model (true homologs).
  double homolog_fraction = 0.01;
  std::uint64_t seed = 2024;
};

/// Generate the database: (1 - homolog_fraction) background sequences plus
/// homologs sampled from the model, interleaved deterministically.
bio::SequenceDatabase make_workload(const hmm::Plan7Hmm& model,
                                    const WorkloadSpec& spec);

}  // namespace finehmm::pipeline
