#include "pipeline/batch_scanner.hpp"

#include <memory>

#include "cpu/simd_backend/backend.hpp"
#include "cpu/simd_backend/kernels.hpp"
#include "cpu/simd_vec.hpp"
#include "util/check.hpp"
#include "util/error.hpp"

namespace finehmm::pipeline {

BatchScanner::BatchScanner(const profile::MsvProfile& msv,
                           const profile::VitProfile& vit,
                           const profile::FwdProfile* fwd,
                           std::size_t workers, cpu::SimdTier tier)
    : msv_(msv), tier_(cpu::resolve_simd_tier(tier)) {
  FH_REQUIRE(workers >= 1, "need at least one worker");

  // Immutable wide re-stripings, built once and shared by every worker.
  std::shared_ptr<const cpu::WideMsvStripes<32>> msv_wide;
  std::shared_ptr<const cpu::WideVitStripes<16>> vit_wide;
  if (tier_ == cpu::SimdTier::kAvx2) {
    msv_wide = std::make_shared<const cpu::WideMsvStripes<32>>(msv);
    vit_wide = std::make_shared<const cpu::WideVitStripes<16>>(vit);
  }

  const std::size_t ssv_row_bytes =
      tier_ == cpu::SimdTier::kAvx2
          ? static_cast<std::size_t>(msv_wide->segments()) * 32
          : static_cast<std::size_t>(msv.striped_segments()) *
                profile::MsvProfile::kLanes;

  workers_.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    Worker worker{cpu::MsvFilter(msv, tier_, msv_wide),
                  cpu::VitFilter(vit, tier_, vit_wide),
                  std::nullopt,
                  std::vector<std::uint8_t>(ssv_row_bytes, 0),
                  WorkerLoad{}};
    if (fwd != nullptr) worker.fwd.emplace(*fwd, tier_);
    workers_.push_back(std::move(worker));
  }
}

namespace {

// Kernels require L >= 1; an empty sequence cannot contain a match, so
// every stage scores it as the default no-hit result (-inf nats).
constexpr bool empty_no_hit(std::size_t L) { return L == 0; }

}  // namespace

template <class Seq>
cpu::FilterResult BatchScanner::ssv_impl(std::size_t w, Seq seq,
                                         std::size_t L) {
  Worker& worker = workers_[w];
  switch (tier_) {
    case cpu::SimdTier::kAvx2: {
      const auto& wide = *worker.msv.wide_stripes();
      return cpu::backend::ssv_avx2(msv_, wide.row(0), wide.segments(), seq,
                                    L, worker.ssv_row.data());
    }
    case cpu::SimdTier::kSse2:
      return cpu::backend::ssv_sse2(msv_, seq, L, worker.ssv_row.data());
    case cpu::SimdTier::kPortable:
      break;
  }
  return cpu::simd_kernels::ssv_kernel<cpu::U8x16>(
      msv_, msv_.striped_row(0), msv_.striped_segments(), seq, L,
      worker.ssv_row.data());
}

cpu::FilterResult BatchScanner::ssv(std::size_t w, const std::uint8_t* seq,
                                    std::size_t L) {
  FINEHMM_CHECK(w < workers_.size(), "worker id out of range");
  if (empty_no_hit(L)) return {};
  ++workers_[w].load.ssv_calls;
  workers_[w].load.residues += L;
  return ssv_impl(w, seq, L);
}

cpu::FilterResult BatchScanner::ssv(std::size_t w, bio::PackedResidues seq,
                                    std::size_t L) {
  FINEHMM_CHECK(w < workers_.size(), "worker id out of range");
  if (empty_no_hit(L)) return {};
  ++workers_[w].load.ssv_calls;
  workers_[w].load.residues += L;
  return ssv_impl(w, seq, L);
}

cpu::FilterResult BatchScanner::msv(std::size_t w, const std::uint8_t* seq,
                                    std::size_t L) {
  FINEHMM_CHECK(w < workers_.size(), "worker id out of range");
  if (empty_no_hit(L)) return {};
  ++workers_[w].load.msv_calls;
  workers_[w].load.residues += L;
  return workers_[w].msv.score(seq, L);
}

cpu::FilterResult BatchScanner::msv(std::size_t w, bio::PackedResidues seq,
                                    std::size_t L) {
  FINEHMM_CHECK(w < workers_.size(), "worker id out of range");
  if (empty_no_hit(L)) return {};
  ++workers_[w].load.msv_calls;
  workers_[w].load.residues += L;
  return workers_[w].msv.score(seq, L);
}

cpu::FilterResult BatchScanner::vit(std::size_t w, const std::uint8_t* seq,
                                    std::size_t L) {
  FINEHMM_CHECK(w < workers_.size(), "worker id out of range");
  if (empty_no_hit(L)) return {};
  ++workers_[w].load.vit_calls;
  workers_[w].load.residues += L;
  return workers_[w].vit.score(seq, L);
}

float BatchScanner::fwd(std::size_t w, const std::uint8_t* seq,
                        std::size_t L) {
  FINEHMM_CHECK(w < workers_.size(), "worker id out of range");
  FH_REQUIRE(workers_[w].fwd.has_value(),
             "BatchScanner built without a Forward profile");
  if (empty_no_hit(L)) return cpu::FilterResult{}.score_nats;
  ++workers_[w].load.fwd_calls;
  workers_[w].load.residues += L;
  return workers_[w].fwd->score(seq, L);
}

}  // namespace finehmm::pipeline
