#include "pipeline/batch_scanner.hpp"

#include <memory>
#include <type_traits>

#include "cpu/simd_backend/backend.hpp"
#include "util/check.hpp"
#include "util/error.hpp"

namespace finehmm::pipeline {

BatchScanner::BatchScanner(const profile::MsvProfile& msv,
                           const profile::VitProfile& vit,
                           const profile::FwdProfile* fwd,
                           std::size_t workers, cpu::SimdTier tier)
    : msv_(msv),
      tier_(cpu::resolve_simd_tier(tier)),
      ops_(&cpu::backend::tier_kernels(tier_)) {
  FH_REQUIRE(workers >= 1, "need at least one worker");

  // Immutable re-stripings for the resolved tier, built once and shared
  // by every worker (zero-copy aliases of the profiles' own arrays for
  // the 128-bit tiers).
  ssv_rows_ = cpu::make_shared_msv_rows(msv, ops_->u8_lanes);
  cpu::SharedVitStripes vit_wide =
      cpu::make_shared_vit_stripes(vit, ops_->i16_lanes);
  std::shared_ptr<const cpu::WideFwdStripes> fwd_wide;
  if (fwd != nullptr)
    fwd_wide = std::make_shared<const cpu::WideFwdStripes>(
        *fwd, ops_->f32_lanes);

  const std::size_t ssv_row_bytes =
      static_cast<std::size_t>(ssv_rows_.Q) * ssv_rows_.lanes;

  workers_.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    Worker worker{cpu::MsvFilter(msv, tier_, ssv_rows_),
                  cpu::VitFilter(vit, tier_, vit_wide),
                  std::nullopt,
                  std::vector<std::uint8_t>(ssv_row_bytes, 0),
                  WorkerLoad{}};
    if (fwd != nullptr) worker.fwd.emplace(*fwd, tier_, fwd_wide);
    workers_.push_back(std::move(worker));
  }
}

namespace {

// Kernels require L >= 1; an empty sequence cannot contain a match, so
// every stage scores it as the default no-hit result (-inf nats).
constexpr bool empty_no_hit(std::size_t L) { return L == 0; }

}  // namespace

template <class Seq>
cpu::FilterResult BatchScanner::ssv_impl(std::size_t w, Seq seq,
                                         std::size_t L) {
  Worker& worker = workers_[w];
  if constexpr (std::is_same_v<Seq, bio::PackedResidues>)
    return ops_->ssv_packed(msv_, ssv_rows_.rows, ssv_rows_.Q, seq, L,
                            worker.ssv_row.data());
  else
    return ops_->ssv(msv_, ssv_rows_.rows, ssv_rows_.Q, seq, L,
                     worker.ssv_row.data());
}

cpu::FilterResult BatchScanner::ssv(std::size_t w, const std::uint8_t* seq,
                                    std::size_t L) {
  FINEHMM_CHECK(w < workers_.size(), "worker id out of range");
  if (empty_no_hit(L)) return {};
  ++workers_[w].load.ssv_calls;
  workers_[w].load.residues += L;
  return ssv_impl(w, seq, L);
}

cpu::FilterResult BatchScanner::ssv(std::size_t w, bio::PackedResidues seq,
                                    std::size_t L) {
  FINEHMM_CHECK(w < workers_.size(), "worker id out of range");
  if (empty_no_hit(L)) return {};
  ++workers_[w].load.ssv_calls;
  workers_[w].load.residues += L;
  return ssv_impl(w, seq, L);
}

cpu::FilterResult BatchScanner::msv(std::size_t w, const std::uint8_t* seq,
                                    std::size_t L) {
  FINEHMM_CHECK(w < workers_.size(), "worker id out of range");
  if (empty_no_hit(L)) return {};
  ++workers_[w].load.msv_calls;
  workers_[w].load.residues += L;
  return workers_[w].msv.score(seq, L);
}

cpu::FilterResult BatchScanner::msv(std::size_t w, bio::PackedResidues seq,
                                    std::size_t L) {
  FINEHMM_CHECK(w < workers_.size(), "worker id out of range");
  if (empty_no_hit(L)) return {};
  ++workers_[w].load.msv_calls;
  workers_[w].load.residues += L;
  return workers_[w].msv.score(seq, L);
}

cpu::FilterResult BatchScanner::vit(std::size_t w, const std::uint8_t* seq,
                                    std::size_t L) {
  FINEHMM_CHECK(w < workers_.size(), "worker id out of range");
  if (empty_no_hit(L)) return {};
  ++workers_[w].load.vit_calls;
  workers_[w].load.residues += L;
  return workers_[w].vit.score(seq, L);
}

float BatchScanner::fwd(std::size_t w, const std::uint8_t* seq,
                        std::size_t L) {
  FINEHMM_CHECK(w < workers_.size(), "worker id out of range");
  FH_REQUIRE(workers_[w].fwd.has_value(),
             "BatchScanner built without a Forward profile");
  if (empty_no_hit(L)) return cpu::FilterResult{}.score_nats;
  ++workers_[w].load.fwd_calls;
  workers_[w].load.residues += L;
  return workers_[w].fwd->score(seq, L);
}

float BatchScanner::decode(std::size_t w, const std::uint8_t* seq,
                           std::size_t L, std::vector<float>& mocc) {
  FINEHMM_CHECK(w < workers_.size(), "worker id out of range");
  FH_REQUIRE(workers_[w].fwd.has_value(),
             "BatchScanner built without a Forward profile");
  if (empty_no_hit(L)) {
    mocc.clear();
    return cpu::FilterResult{}.score_nats;
  }
  ++workers_[w].load.bwd_calls;
  workers_[w].load.residues += L;
  return workers_[w].fwd->decode(seq, L, mocc);
}

}  // namespace finehmm::pipeline
