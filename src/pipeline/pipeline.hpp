// The HMMER 3.0 hmmsearch acceleration pipeline (paper Fig. 1).
//
//   100% of sequences -> MSV (P <= 0.02) -> ~2% -> P7Viterbi (P <= 0.001)
//   -> ~0.1% -> Forward -> reported hits with E-values.
//
// Each filter converts its raw score to a bit score against null1 and
// then to a P-value using the model's calibrated Gumbel (filters) or
// exponential-tail (Forward) statistics.  Sequences whose byte MSV
// overflowed pass unconditionally (their score is provably huge).
//
// Two engines share identical semantics and thresholds:
//   * CpuEngine — striped SSE-style filters (the paper's baseline)
//   * GpuEngine — the warp-synchronous SIMT kernels for MSV and P7Viterbi
//     (the Forward stage stays on the CPU, as in the paper).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "bio/packing.hpp"
#include "bio/sequence.hpp"
#include "cpu/posterior.hpp"
#include "cpu/trace.hpp"
#include "gpu/placement_policy.hpp"
#include "gpu/search.hpp"
#include "hmm/model_group.hpp"
#include "hmm/plan7.hpp"
#include "hmm/profile.hpp"
#include "obs/telemetry.hpp"
#include "pipeline/scan_source.hpp"
#include "profile/fwd_profile.hpp"
#include "profile/msv_profile.hpp"
#include "profile/vit_profile.hpp"
#include "stats/calibrate.hpp"
#include "util/threadpool.hpp"

namespace finehmm::pipeline {

struct Thresholds {
  double msv_p = 0.02;    // HMMER's F1
  double vit_p = 0.001;   // HMMER's F2
  double report_evalue = 10.0;
  /// Enable the SSV pre-filter ahead of MSV (extension; the design
  /// HMMER 3.1 adopted).  SSV is cheaper per cell — no J bookkeeping and
  /// one reduction per sequence — but blind to multi-segment hits, so it
  /// runs at a looser threshold.
  bool use_ssv_prefilter = false;
  double ssv_p = 0.06;
  /// Run the Viterbi traceback on every reported hit (costs one extra
  /// O(M*L) pass per hit; hits are rare so this is cheap).
  bool compute_alignments = false;
  /// Apply the null2 composition-bias correction to Forward scores
  /// (HMMER does; see pipeline/null2.hpp).
  bool null2_correction = true;
  /// Run posterior decoding on reported hits and attach per-domain
  /// envelopes, scores and alignments (hmmsearch's domain table).
  bool define_domains = false;
  /// Effective database size Z for E-values; 0 = the scanned database's
  /// own sequence count.  A cluster shard holding 1/Nth of a sharded
  /// database scores with the cluster-total Z here so its E-values (and
  /// the e <= report_evalue filter) are bit-identical to an unsharded
  /// scan of the whole database (docs/cluster.md).
  std::uint64_t z_override = 0;
};

struct Hit {
  std::size_t seq_index = 0;
  std::string name;
  float msv_bits = 0.0f;
  float vit_bits = 0.0f;
  float fwd_bits = 0.0f;   // after the null2 correction, when enabled
  float bias_bits = 0.0f;  // the null2 correction itself (hmmsearch "bias")
  double pvalue = 1.0;
  double evalue = 1e9;
  /// Viterbi alignments of the hit (one per matched segment), filled when
  /// Thresholds::compute_alignments is set.
  std::vector<cpu::Alignment> alignments;
  /// Posterior-decoded domain envelopes, filled when
  /// Thresholds::define_domains is set.
  std::vector<cpu::Domain> domains;
};

struct StageStats {
  std::size_t n_in = 0;       // sequences entering the stage
  std::size_t n_passed = 0;   // sequences surviving
  double cells = 0.0;         // DP cells evaluated
  /// Measured host time of this stage.  For the serial and
  /// barrier-parallel engines this is the stage's wall clock; for the
  /// overlapped engine (where stages have no wall-clock identity) it is
  /// the per-worker busy time, accumulated into per-thread slots during
  /// the scan and merged serially at drain — never written concurrently.
  double seconds = 0.0;
  double pass_rate() const {
    return n_in ? static_cast<double>(n_passed) / n_in : 0.0;
  }
};

struct SearchResult {
  std::vector<Hit> hits;            // sorted by E-value
  StageStats ssv;  // only populated when the SSV pre-filter is enabled
  StageStats msv, vit, fwd;
  /// Checkpointed Backward + posterior decode over reported hits; only
  /// populated when Thresholds::define_domains is set.  `cells` counts
  /// the backward matrix (L*M per decode); the decode also replays the
  /// checkpointed Forward internally, so its time is banked here, not
  /// under fwd.
  StageStats bwd;
  /// GPU runs also expose the per-stage counters and launch plans.
  std::optional<gpu::StageResult> gpu_msv;
  std::optional<gpu::StageResult> gpu_vit;
  /// Unified performance snapshot (docs/observability.md), filled when a
  /// recorder is attached to the HmmSearch (set_recorder); every engine
  /// reports through the same schema.
  std::optional<obs::ScanTelemetry> telemetry;
};

struct ScanSchedule;  // pipeline/workload.hpp

/// A configured, calibrated search: one query model, ready to scan
/// databases with either engine.
class HmmSearch {
 public:
  HmmSearch(const hmm::Plan7Hmm& model, Thresholds thresholds = {},
            stats::CalibrateOptions calib = {});

  /// Construct with precomputed calibration (e.g. STATS lines read from a
  /// .hmm file), skipping the random-sequence simulation.
  HmmSearch(const hmm::Plan7Hmm& model, const stats::ModelStats& model_stats,
            Thresholds thresholds = {});

  /// Attach a telemetry recorder: subsequent runs trace spans into it
  /// and attach a ScanTelemetry snapshot to their SearchResult.  Null
  /// (the default) or a disabled recorder reduces every instrumentation
  /// site to one pointer test.  The recorder must outlive the runs and
  /// must not be shared by concurrent scans.
  void set_recorder(obs::Recorder* rec) noexcept { recorder_ = rec; }
  obs::Recorder* recorder() const noexcept { return recorder_; }

  const hmm::SearchProfile& profile() const noexcept { return prof_; }
  const profile::MsvProfile& msv_profile() const noexcept { return msv_; }
  const profile::VitProfile& vit_profile() const noexcept { return vit_; }
  const stats::ModelStats& model_stats() const noexcept { return stats_; }
  const Thresholds& thresholds() const noexcept { return thr_; }

  /// Scan with the striped CPU filters (single thread).  All CPU engines
  /// take a ScanSource, so they accept a heap SequenceDatabase or a
  /// zero-copy MappedSeqDb interchangeably and report identical hits.
  SearchResult run_cpu(ScanSource src) const;

  /// Multithreaded CPU scan — the shape of HMMER 3.0's worker-thread
  /// parallelism on the paper's quad-core baseline.  `threads` = 0 picks
  /// hardware concurrency.  The database is scanned in length-bucketed
  /// order (pipeline/workload.hpp) with per-index result slots, so hits
  /// and stage stats are bit-identical to run_cpu.
  SearchResult run_cpu_parallel(ScanSource src, std::size_t threads = 0) const;

  /// As above but on a caller-owned pool, so repeated scans (hmmscan-style
  /// model sweeps) reuse the worker threads instead of spawning per scan.
  SearchResult run_cpu_parallel(ScanSource src, ThreadPool& pool) const;

  /// Overlapped streaming scan: workers fan the length-bucketed MSV/SSV
  /// sweep out over the pool and push survivors onto a bounded queue that
  /// any worker drains when idle, rescoring Viterbi -> Forward -> null2 /
  /// posterior immediately instead of in barrier-separated stages — the
  /// paper's third parallelism tier (global work queue) on the host.
  /// Results land in per-index slots and the stage stats are replayed
  /// serially, so hits and stage counts/cells stay bit-identical to
  /// run_cpu.  Stage `seconds` are each worker's busy time per stage,
  /// banked into per-thread slots and merged at drain (stages overlap,
  /// so no per-stage wall clock exists; the end-to-end wall clock lands
  /// in SearchResult::telemetry when a recorder is attached).
  SearchResult run_cpu_overlapped(ScanSource src,
                                  std::size_t threads = 0) const;
  SearchResult run_cpu_overlapped(ScanSource src, ThreadPool& pool) const;

  /// One coalesced sweep: several queries scanned in a SINGLE pass over
  /// the database.  The byte-filter stage walks the residue stream once,
  /// scoring every query against each sequence while it is hot in cache;
  /// the rare word-stage survivors then rescore per query.  Hits and
  /// stage counts for query i are bit-identical to
  /// `searches[i]->run_cpu(src)` — the same kernels score through
  /// per-query BatchScanner state, and results replay serially in index
  /// order.  This is the search daemon's batching primitive: N queued
  /// client requests against the same database cost one database pass
  /// instead of N (docs/server.md).
  struct CoalescedScan {
    /// Index-aligned with `searches`.  Stage `seconds` of the fused
    /// SSV/MSV sweep are the shared sweep wall clock (one pass serves
    /// every query), not additive per-query times.
    std::vector<SearchResult> per_model;
    /// One batch-level snapshot (engine "cpu_coalesced"): aggregated
    /// stage totals plus `batch.queries` / `batch.sweeps` counters on
    /// the msv stage, so coalescing is observable downstream.
    obs::ScanTelemetry telemetry;
  };

  /// `schedule` may pass a precomputed length-bucketed order for `src`
  /// (the daemon caches one per resident database); null builds it on
  /// the fly.  `rec` attaches span tracing; the telemetry snapshot is
  /// filled either way.
  static CoalescedScan run_cpu_coalesced(
      const std::vector<const HmmSearch*>& searches, ScanSource src,
      ThreadPool& pool, const ScanSchedule* schedule = nullptr,
      obs::Recorder* rec = nullptr);

  /// The hmmscan dual of run_cpu_coalesced: many *models* against one
  /// database, with short models lane-packed into shared group tables
  /// (cpu::FusedMsvGroup) so one MSV/SSV sweep scores a whole group per
  /// sequence block instead of one model.  Hits and stage counts for
  /// model i are bit-identical to `searches[i]->run_cpu(src)`; survivors
  /// demux into the unchanged per-model Viterbi/Forward rescoring.
  /// `plan` may pass a pregrouped shape (the daemon caches one per
  /// resident library); null plans on the fly from the model-length
  /// histogram, the resolved tier's lane width, and FINEHMM_FUSE
  /// (hmm::plan_model_groups).  The telemetry snapshot (engine
  /// "cpu_fused") adds `fuse.groups` / `fuse.fused_models` /
  /// `fuse.models_per_group` / `fuse.lane_occupancy` counters on the msv
  /// stage (docs/multi_model.md).
  static CoalescedScan run_cpu_fused(
      const std::vector<const HmmSearch*>& searches, ScanSource src,
      ThreadPool& pool, const hmm::FusePlan* plan = nullptr,
      obs::Recorder* rec = nullptr);

  /// Scan with the SIMT kernels for MSV and P7Viterbi on `dev`; the
  /// Forward stage runs on the CPU.  `placement` applies to both kernels.
  SearchResult run_gpu(const simt::DeviceSpec& dev,
                       const bio::SequenceDatabase& db,
                       const bio::PackedDatabase& packed,
                       gpu::ParamPlacement placement) const;

  /// As run_gpu, but each stage's parameter placement is chosen by the
  /// occupancy-driven policy (the "optimal strategy" of Fig. 9).
  SearchResult run_gpu_auto(const simt::DeviceSpec& dev,
                            const bio::SequenceDatabase& db,
                            const bio::PackedDatabase& packed) const;

  /// Multi-GPU scan: the database is partitioned across the devices for
  /// the MSV stage and the survivors re-partitioned for P7Viterbi, as in
  /// the paper's Fig. 11 setup.  Scores are identical to a single-device
  /// run; the per-device counters land in SearchResult::gpu_* of the
  /// per-device results vector.
  struct MultiGpuResult {
    SearchResult combined;
    std::vector<gpu::StageResult> msv_per_device;
    std::vector<gpu::StageResult> vit_per_device;
  };
  MultiGpuResult run_gpu_multi(const std::vector<simt::DeviceSpec>& devs,
                               const bio::SequenceDatabase& db,
                               const bio::PackedDatabase& packed,
                               gpu::ParamPlacement placement) const;

 private:
  SearchResult run_gpu_impl(const simt::DeviceSpec& dev,
                            const bio::SequenceDatabase& db,
                            const bio::PackedDatabase& packed,
                            gpu::ParamPlacement msv_placement,
                            gpu::ParamPlacement vit_placement) const;

  /// Shared post-filter logic: P7Viterbi survivors -> Forward -> hits.
  void forward_stage(ScanSource src,
                     const std::vector<std::size_t>& survivors,
                     const std::vector<float>& vit_bits,
                     SearchResult& out) const;

  obs::Recorder* recorder_ = nullptr;
  hmm::Plan7Hmm model_;
  hmm::SearchProfile prof_;
  profile::MsvProfile msv_;
  profile::VitProfile vit_;
  profile::FwdProfile fwd_;
  stats::ModelStats stats_;
  Thresholds thr_;
};

}  // namespace finehmm::pipeline
