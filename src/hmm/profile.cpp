#include "hmm/profile.hpp"

#include <cmath>

#include "util/error.hpp"

namespace finehmm::hmm {

namespace {

float safe_log(float p) { return p > 0.0f ? std::log(p) : kNegInf; }

}  // namespace

SearchProfile::SearchProfile(const Plan7Hmm& hmm, AlignMode mode, int L)
    : M_(hmm.length()), mode_(mode), name_(hmm.name()) {
  FH_REQUIRE(M_ >= 1, "profile needs a non-empty model");
  const auto& bg = bio::background_frequencies();

  // --- Match emission log-odds, expanded over the full alphabet. ---
  msc_.assign(static_cast<std::size_t>(M_ + 1) * bio::kKp, kNegInf);
  min_msc_ = 0.0f;
  max_msc_ = kNegInf;
  for (int k = 1; k <= M_; ++k) {
    float* row = &msc_[static_cast<std::size_t>(k) * bio::kKp];
    for (int a = 0; a < bio::kK; ++a) {
      row[a] = safe_log(hmm.mat(k, a) / bg[a]);
      if (row[a] != kNegInf && row[a] < min_msc_) min_msc_ = row[a];
      if (row[a] > max_msc_) max_msc_ = row[a];
    }
    // Degenerate codes score the background-weighted average of their
    // expansion's scores (matches HMMER's esl_abc average-score rule).
    for (int x = bio::kK; x < 26; ++x) {
      const auto& exp = bio::expansion(static_cast<std::uint8_t>(x));
      double wsum = 0.0, ssum = 0.0;
      for (auto a : exp) {
        if (row[a] == kNegInf) continue;
        wsum += bg[a];
        ssum += bg[a] * row[a];
      }
      row[x] = wsum > 0.0 ? static_cast<float>(ssum / wsum) : kNegInf;
    }
    // Gap / special codes are unalignable.
    for (int x = 26; x < bio::kKp; ++x) row[x] = kNegInf;
  }

  // --- Core transitions (log probabilities). ---
  tsc_.assign(static_cast<std::size_t>(M_) * kNProfileTransitions, kNegInf);
  for (int k = 0; k < M_; ++k) {
    float* row = &tsc_[static_cast<std::size_t>(k) * kNProfileTransitions];
    row[kPTMM] = safe_log(hmm.tr(k, kTMM));
    row[kPTIM] = safe_log(hmm.tr(k, kTIM));
    row[kPTDM] = safe_log(hmm.tr(k, kTDM));
    row[kPTMD] = safe_log(hmm.tr(k, kTMD));
    row[kPTDD] = safe_log(hmm.tr(k, kTDD));
    row[kPTMI] = safe_log(hmm.tr(k, kTMI));
    row[kPTII] = safe_log(hmm.tr(k, kTII));
  }
  // Node 0 has no delete state to leave from.
  tsc_[kPTDM] = kNegInf;
  tsc_[kPTDD] = kNegInf;

  // --- Entry and exit distributions ---
  esc_.assign(static_cast<std::size_t>(M_) + 1, 0.0f);
  if (is_local(mode)) {
    // Uniform fragment entry, free local exit.
    float entry = std::log(2.0f / (static_cast<float>(M_) *
                                   (static_cast<float>(M_) + 1.0f)));
    for (int k = 0; k < M_; ++k)
      tsc_[static_cast<std::size_t>(k) * kNProfileTransitions + kPTBM] =
          entry;
  } else {
    // Glocal: wing-retracted delete paths.
    //   B -> M_k  =  B->D_1 . D_1->D_2 ... D_{k-1}->M_k
    //   M_k -> E  =  M_k->D_{k+1} . D->D ... (D_M -> E = 1)
    float acc = safe_log(hmm.tr(0, kTMD));  // B -> D_1
    tsc_[kPTBM] = safe_log(hmm.tr(0, kTMM));  // B -> M_1 directly
    for (int k = 2; k <= M_; ++k) {
      // Entry to M_k: path through D_1..D_{k-1}.
      float bm = acc + safe_log(hmm.tr(k - 1, kTDM));
      tsc_[static_cast<std::size_t>(k - 1) * kNProfileTransitions + kPTBM] =
          bm;
      acc += safe_log(hmm.tr(k - 1, kTDD));
    }
    esc_[M_] = 0.0f;  // M_M -> E
    float out = 0.0f;  // accumulated D_{k+1} -> ... -> D_M chain
    for (int k = M_ - 1; k >= 1; --k) {
      // Exit from M_k: M_k -> D_{k+1} -> D_{k+2} ... -> D_M -> E.
      esc_[k] = safe_log(hmm.tr(k, kTMD)) + out;
      out += safe_log(hmm.tr(k, kTDD));  // extend the chain by D_k -> D_{k+1}
    }
  }

  reconfig_length(L);
}

SpecialScores SearchProfile::xsc_for(int L) const {
  FH_REQUIRE(L >= 1, "target length must be >= 1");
  SpecialScores xs{};
  float lf = static_cast<float>(L);
  if (is_multihit(mode_)) {
    float ploop = lf / (lf + 3.0f);
    float pmove = 3.0f / (lf + 3.0f);
    xs.n_loop = xs.c_loop = xs.j_loop = std::log(ploop);
    xs.n_move = xs.c_move = xs.j_move = std::log(pmove);
    xs.e_c = xs.e_j = std::log(0.5f);
  } else {
    float ploop = lf / (lf + 2.0f);
    float pmove = 2.0f / (lf + 2.0f);
    xs.n_loop = xs.c_loop = std::log(ploop);
    xs.n_move = xs.c_move = std::log(pmove);
    xs.j_loop = xs.j_move = kNegInf;
    xs.e_c = 0.0f;
    xs.e_j = kNegInf;
  }
  return xs;
}

void SearchProfile::reconfig_length(int L) {
  L_ = L;
  xsc_ = xsc_for(L);
}

float null1_score(int L) {
  float lf = static_cast<float>(L);
  float p1 = lf / (lf + 1.0f);
  return lf * std::log(p1) + std::log(1.0f - p1);
}

float nats_to_bits(float raw_nats, int L) {
  return (raw_nats - null1_score(L)) / static_cast<float>(M_LN2);
}

}  // namespace finehmm::hmm
