#include "hmm/priors.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace finehmm::hmm {

namespace {

/// log of the multivariate Beta function of a positive vector.
double log_beta(const std::array<double, bio::kK>& a) {
  double sum = 0.0, lg = 0.0;
  for (double x : a) {
    sum += x;
    lg += std::lgamma(x);
  }
  return lg - std::lgamma(sum);
}

}  // namespace

DirichletMixture::DirichletMixture(std::vector<DirichletComponent> components)
    : components_(std::move(components)) {
  FH_REQUIRE(!components_.empty(), "mixture needs at least one component");
  double qsum = 0.0;
  for (auto& c : components_) {
    FH_REQUIRE(c.q > 0.0, "mixture coefficients must be positive");
    for (double a : c.alpha)
      FH_REQUIRE(a > 0.0, "Dirichlet parameters must be positive");
    qsum += c.q;
  }
  for (auto& c : components_) c.q /= qsum;
}

std::vector<double> DirichletMixture::responsibilities(
    const std::array<double, bio::kK>& counts) const {
  std::vector<double> logw(components_.size());
  for (std::size_t j = 0; j < components_.size(); ++j) {
    std::array<double, bio::kK> merged = components_[j].alpha;
    for (int a = 0; a < bio::kK; ++a) merged[a] += counts[a];
    logw[j] = std::log(components_[j].q) + log_beta(merged) -
              log_beta(components_[j].alpha);
  }
  double hi = *std::max_element(logw.begin(), logw.end());
  double total = 0.0;
  for (double& w : logw) {
    w = std::exp(w - hi);
    total += w;
  }
  for (double& w : logw) w /= total;
  return logw;
}

std::array<double, bio::kK> DirichletMixture::posterior_mean(
    const std::array<double, bio::kK>& counts) const {
  auto w = responsibilities(counts);
  double csum = 0.0;
  for (double c : counts) csum += c;

  std::array<double, bio::kK> p{};
  for (std::size_t j = 0; j < components_.size(); ++j) {
    double asum = 0.0;
    for (double a : components_[j].alpha) asum += a;
    for (int a = 0; a < bio::kK; ++a)
      p[a] += w[j] * (counts[a] + components_[j].alpha[a]) / (csum + asum);
  }
  // Normalize away accumulated rounding.
  double total = 0.0;
  for (double v : p) total += v;
  for (double& v : p) v /= total;
  return p;
}

const DirichletMixture& DirichletMixture::default_amino() {
  // Five regimes; alphabetic order ACDEFGHIKLMNPQRSTVWY.  Magnitudes: a
  // small |alpha| lets a few observations dominate (conserved columns), a
  // larger |alpha| pulls sparse columns toward the regime's composition.
  static const DirichletMixture mixture([] {
    std::vector<DirichletComponent> cs(5);
    auto set = [](DirichletComponent& c, double q,
                  std::initializer_list<double> a) {
      c.q = q;
      std::copy(a.begin(), a.end(), c.alpha.begin());
    };
    // 1. near-background: unaligned/variable columns.
    set(cs[0], 0.35,
        {1.58, 0.30, 1.07, 1.34, 0.79, 1.39, 0.46, 1.18, 1.19, 1.93,
         0.48, 0.83, 0.97, 0.79, 1.08, 1.37, 1.08, 1.35, 0.23, 0.61});
    // 2. hydrophobic core (ILVMF heavy), low total: conserved-ish.
    set(cs[1], 0.20,
        {0.27, 0.04, 0.02, 0.02, 0.30, 0.05, 0.02, 0.65, 0.03, 0.75,
         0.20, 0.02, 0.03, 0.02, 0.03, 0.05, 0.10, 0.60, 0.05, 0.10});
    // 3. polar / small (STNQ, G).
    set(cs[2], 0.20,
        {0.45, 0.05, 0.25, 0.20, 0.04, 0.50, 0.10, 0.05, 0.20, 0.06,
         0.04, 0.45, 0.20, 0.30, 0.15, 0.65, 0.50, 0.10, 0.02, 0.08});
    // 4. charged (DEKR, H).
    set(cs[3], 0.15,
        {0.15, 0.02, 0.60, 0.70, 0.03, 0.10, 0.25, 0.05, 0.65, 0.08,
         0.04, 0.20, 0.08, 0.30, 0.65, 0.20, 0.15, 0.05, 0.02, 0.08});
    // 5. near-deterministic: strongly conserved single residues (tiny
    // uniform alpha — the data decides which residue).
    set(cs[4], 0.10,
        {0.05, 0.05, 0.05, 0.05, 0.05, 0.05, 0.05, 0.05, 0.05, 0.05,
         0.05, 0.05, 0.05, 0.05, 0.05, 0.05, 0.05, 0.05, 0.05, 0.05});
    return cs;
  }());
  return mixture;
}

}  // namespace finehmm::hmm
