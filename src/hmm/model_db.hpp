// Model library files — the hmmpress / hmmscan workflow.
//
// Scanning a query sequence against Pfam means loading tens of thousands
// of models fast.  A ModelDb file ("pressed" library, .fhpdb) is a header
// plus concatenated binary profiles (hmm/binary_io) with an offset index,
// so single models can be loaded lazily and the whole library streams
// without parsing.
//
// Layout: magic "FHDB" | u32 version | u64 count
//         | count x { u64 offset }          (index, file-absolute)
//         | count x binary profile records
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "hmm/binary_io.hpp"

namespace finehmm::hmm {

/// One model plus its optional calibration.
struct ModelEntry {
  Plan7Hmm model;
  std::optional<stats::ModelStats> model_stats;
};

/// Write a library file.
void write_model_db(std::ostream& out, const std::vector<ModelEntry>& models);
void write_model_db_file(const std::string& path,
                         const std::vector<ModelEntry>& models);

/// Read a whole library.
std::vector<ModelEntry> read_model_db(std::istream& in);
std::vector<ModelEntry> read_model_db_file(const std::string& path);

/// Lazy reader: open once, fetch models by index.
class ModelDbReader {
 public:
  explicit ModelDbReader(const std::string& path);
  ~ModelDbReader();
  ModelDbReader(const ModelDbReader&) = delete;
  ModelDbReader& operator=(const ModelDbReader&) = delete;

  std::size_t size() const noexcept { return offsets_.size(); }
  ModelEntry load(std::size_t index) const;

 private:
  struct Impl;
  Impl* impl_;
  std::vector<std::uint64_t> offsets_;
};

}  // namespace finehmm::hmm
