// Model-group auto-tuner for fused multi-model sweeps.
//
// A `.fhpdb` library of short Pfam-style models wastes most of a wide
// vector register when scanned one model at a time: a 60-position model
// occupies 4 stripes of an AVX2 sweep but only 2 of its 32 lanes carry
// real cells.  plan_model_groups() packs several models into one shared
// striped table instead — each model gets a contiguous lane span, the
// group shares one stripe count Q, and one MSV/SSV sweep scores every
// member (cpu::FusedMsvGroup holds the table; the kernels live in
// cpu/simd_backend/kernels.hpp).
//
// The tuner works from the model-length histogram alone, the CPU analogue
// of CUDAMPF++'s shared-vs-global crossover study: sort models by length,
// chunk greedily up to the lane budget, and for each chunk binary-search
// the minimal Q whose lane demand sum fits — minimal Q maximizes lane
// occupancy (real cells / padded cells) and minimizes the per-row stripe
// work.  Models too long to profit (default: longer than what a
// single-model sweep already fills) stay unfused.  `FINEHMM_FUSE`
// overrides the policy for benchmarking (docs/multi_model.md).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace finehmm::hmm {

/// One fused group: which models (indices into the caller's length/model
/// array), the shared stripe count Q, and the lanes actually claimed.
struct GroupShape {
  std::vector<std::size_t> members;
  int Q = 0;           // shared stripe count
  int lanes_used = 0;  // sum over members of M/Q + 1 (<= lane width)
  double occupancy = 0.0;  // real model cells / (Q * lane width)
};

/// The tuner's decision for one library at one byte-lane width.
struct FusePlan {
  int lane_width = 16;
  std::vector<GroupShape> groups;
  std::vector<std::size_t> unfused;  // scanned per-model as before
  /// Models covered by fused groups.
  std::size_t fused_models() const;
  /// Mean group size (0 when nothing fused).
  double models_per_group() const;
  /// Cell-weighted mean lane occupancy over the fused groups (0..1).
  double lane_occupancy() const;
};

/// Tuner policy knobs.  Defaults implement the auto policy; FINEHMM_FUSE
/// adjusts them (see fuse_options_from_env).
struct FuseOptions {
  bool enabled = true;
  /// force mode: fuse every model regardless of length, for benchmarking.
  bool forced = false;
  /// Cap on models per group; 0 means the lane width decides.
  int max_group_models = 0;
  /// Cap on one group's emission-table footprint (bio::kKp * Q * lanes
  /// bytes); keeps a group's working set L1/L2-resident.
  std::size_t max_table_bytes = 256 * 1024;
  /// Groups smaller than this are not worth the demux overhead.
  int min_models_to_fuse = 2;
  /// Models longer than this stay unfused; 0 picks the auto threshold
  /// (32 stripes' worth of a full-width single-model sweep).
  int max_fused_length = 0;
};

/// Policy from the FINEHMM_FUSE environment variable:
///   off | 0            -> fusion disabled (plan puts everything unfused)
///   auto | on | 1      -> defaults (same as unset)
///   force              -> fuse regardless of model length
///   force:<G>          -> force, with at most G models per group
/// Unknown values fall back to auto.
FuseOptions fuse_options_from_env();

/// Pick group shapes for a library of model lengths at one byte-lane
/// width (16/32/64).  Deterministic: depends only on (lengths, lane
/// width, options).  Every index in [0, lengths.size()) appears exactly
/// once across groups and unfused.
FusePlan plan_model_groups(const std::vector<int>& lengths, int lane_width,
                           const FuseOptions& opts = FuseOptions{});

/// One bucket of the model-length histogram: [lo, hi) half-open.
struct LengthBucket {
  int lo = 0;
  int hi = 0;
  std::size_t count = 0;
};

/// Doubling-width histogram of model lengths ([1,32), [32,64), [64,128),
/// ...), empty buckets skipped.  Drives the press tool's --stat report.
std::vector<LengthBucket> length_histogram(const std::vector<int>& lengths);

}  // namespace finehmm::hmm
