#include "hmm/binary_io.hpp"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include "util/error.hpp"

namespace finehmm::hmm {

namespace {

constexpr char kMagic[4] = {'F', 'H', 'M', 'P'};
constexpr std::uint32_t kMaxStringLen = 1 << 16;
constexpr std::int32_t kMaxModelLen = 1 << 20;

template <class T>
void put(std::ostream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <class T>
T get(std::istream& in) {
  T v;
  in.read(reinterpret_cast<char*>(&v), sizeof(T));
  FH_REQUIRE(in.good(), "truncated binary profile");
  return v;
}

void put_string(std::ostream& out, const std::string& s) {
  put<std::uint32_t>(out, static_cast<std::uint32_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string get_string(std::istream& in) {
  auto n = get<std::uint32_t>(in);
  FH_REQUIRE(n <= kMaxStringLen, "implausible string length");
  std::string s(n, '\0');
  in.read(s.data(), n);
  FH_REQUIRE(in.good(), "truncated binary profile");
  return s;
}

}  // namespace

void write_hmm_binary(std::ostream& out, const Plan7Hmm& hmm,
                      const stats::ModelStats* model_stats) {
  out.write(kMagic, sizeof(kMagic));
  put<std::uint32_t>(out, kBinaryVersion);
  put_string(out, hmm.name());
  put_string(out, hmm.description());
  const int M = hmm.length();
  put<std::int32_t>(out, M);
  for (int k = 1; k <= M; ++k)
    for (int a = 0; a < bio::kK; ++a) put<float>(out, hmm.mat(k, a));
  for (int k = 0; k <= M; ++k)
    for (int a = 0; a < bio::kK; ++a) put<float>(out, hmm.ins(k, a));
  for (int k = 0; k <= M; ++k)
    for (int t = 0; t < kNTransitions; ++t)
      put<float>(out, hmm.tr(k, static_cast<Plan7Transition>(t)));
  put<std::uint8_t>(out, model_stats != nullptr ? 1 : 0);
  if (model_stats != nullptr) {
    for (const auto* g : {&model_stats->ssv, &model_stats->msv,
                          &model_stats->vit}) {
      put<double>(out, g->mu);
      put<double>(out, g->lambda);
    }
    put<double>(out, model_stats->fwd.mu);
    put<double>(out, model_stats->fwd.lambda);
  }
  FH_REQUIRE(out.good(), "binary profile write failed");
}

void write_hmm_binary_file(const std::string& path, const Plan7Hmm& hmm,
                           const stats::ModelStats* model_stats) {
  std::ofstream out(path, std::ios::binary);
  FH_REQUIRE_IO(out.good(), "cannot open binary profile for writing: " + path);
  write_hmm_binary(out, hmm, model_stats);
}

Plan7Hmm read_hmm_binary(std::istream& in,
                         std::optional<stats::ModelStats>* out_stats) {
  char magic[4];
  in.read(magic, sizeof(magic));
  FH_REQUIRE(in.good() && std::memcmp(magic, kMagic, 4) == 0,
             "not a finehmm binary profile (bad magic)");
  auto version = get<std::uint32_t>(in);
  FH_REQUIRE(version == kBinaryVersion,
             "unsupported binary profile version " + std::to_string(version));
  std::string name = get_string(in);
  std::string desc = get_string(in);
  auto M = get<std::int32_t>(in);
  FH_REQUIRE(M >= 1 && M <= kMaxModelLen, "implausible model length");

  Plan7Hmm hmm(M);
  hmm.set_name(name);
  hmm.set_description(desc);
  for (int k = 1; k <= M; ++k)
    for (int a = 0; a < bio::kK; ++a) hmm.mat(k, a) = get<float>(in);
  for (int k = 0; k <= M; ++k)
    for (int a = 0; a < bio::kK; ++a) hmm.ins(k, a) = get<float>(in);
  for (int k = 0; k <= M; ++k)
    for (int t = 0; t < kNTransitions; ++t)
      hmm.tr(k, static_cast<Plan7Transition>(t)) = get<float>(in);

  auto has_stats = get<std::uint8_t>(in);
  if (out_stats != nullptr) *out_stats = std::nullopt;
  if (has_stats) {
    stats::ModelStats st;
    for (auto* g : {&st.ssv, &st.msv, &st.vit}) {
      g->mu = get<double>(in);
      g->lambda = get<double>(in);
    }
    st.fwd.mu = get<double>(in);
    st.fwd.lambda = get<double>(in);
    if (out_stats != nullptr) *out_stats = st;
  }
  hmm.validate(0.05f);  // binary files can come from anywhere: sanity check
  return hmm;
}

Plan7Hmm read_hmm_binary_file(const std::string& path,
                              std::optional<stats::ModelStats>* out_stats) {
  std::ifstream in(path, std::ios::binary);
  FH_REQUIRE_IO(in.good(), "cannot open binary profile: " + path);
  return read_hmm_binary(in, out_stats);
}

}  // namespace finehmm::hmm
