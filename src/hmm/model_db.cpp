#include "hmm/model_db.hpp"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "util/error.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace finehmm::hmm {

namespace {

constexpr char kDbMagic[4] = {'F', 'H', 'D', 'B'};
constexpr std::uint32_t kDbVersion = 1;
constexpr std::uint64_t kMaxModels = 1ull << 24;

template <class T>
void put(std::ostream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <class T>
T get(std::istream& in) {
  T v;
  in.read(reinterpret_cast<char*>(&v), sizeof(T));
  FH_REQUIRE(in.good(), "truncated model library");
  return v;
}

}  // namespace

void write_model_db(std::ostream& out,
                    const std::vector<ModelEntry>& models) {
  FH_REQUIRE(!models.empty(), "refusing to write an empty model library");
  out.write(kDbMagic, sizeof(kDbMagic));
  put<std::uint32_t>(out, kDbVersion);
  put<std::uint64_t>(out, models.size());

  // Serialize the records first to learn their sizes.
  std::vector<std::string> blobs;
  blobs.reserve(models.size());
  for (const auto& e : models) {
    std::ostringstream rec(std::ios::binary);
    write_hmm_binary(rec, e.model,
                     e.model_stats ? &*e.model_stats : nullptr);
    blobs.push_back(rec.str());
  }

  std::uint64_t offset = sizeof(kDbMagic) + sizeof(std::uint32_t) +
                         sizeof(std::uint64_t) +
                         models.size() * sizeof(std::uint64_t);
  for (const auto& blob : blobs) {
    put<std::uint64_t>(out, offset);
    offset += blob.size();
  }
  for (const auto& blob : blobs)
    out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
  FH_REQUIRE(out.good(), "model library write failed");
}

void write_model_db_file(const std::string& path,
                         const std::vector<ModelEntry>& models) {
  std::ofstream out(path, std::ios::binary);
  FH_REQUIRE_IO(out.good(), "cannot open model library for writing: " + path);
  write_model_db(out, models);
}

namespace {

std::vector<std::uint64_t> read_header(std::istream& in) {
  char magic[4];
  in.read(magic, sizeof(magic));
  FH_REQUIRE(in.good() && std::memcmp(magic, kDbMagic, 4) == 0,
             "not a finehmm model library (bad magic)");
  auto version = get<std::uint32_t>(in);
  FH_REQUIRE(version == kDbVersion,
             "unsupported model library version " + std::to_string(version));
  auto count = get<std::uint64_t>(in);
  FH_REQUIRE(count >= 1 && count <= kMaxModels,
             "implausible model count in library");
  std::vector<std::uint64_t> offsets(count);
  for (auto& o : offsets) o = get<std::uint64_t>(in);
  return offsets;
}

}  // namespace

std::vector<ModelEntry> read_model_db(std::istream& in) {
  auto offsets = read_header(in);
  std::vector<ModelEntry> out;
  out.reserve(offsets.size());
  for (std::size_t i = 0; i < offsets.size(); ++i) {
    in.seekg(static_cast<std::streamoff>(offsets[i]));
    FH_REQUIRE(in.good(), "bad record offset in model library");
    ModelEntry e;
    e.model = read_hmm_binary(in, &e.model_stats);
    out.push_back(std::move(e));
  }
  return out;
}

std::vector<ModelEntry> read_model_db_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  FH_REQUIRE_IO(in.good(), "cannot open model library: " + path);
  return read_model_db(in);
}

struct ModelDbReader::Impl {
  /// load() seeks the shared stream; serialize callers.  (Constructor
  /// access in ModelDbReader's ctor is lock-free by design: the analysis
  /// exempts ctors, and no other thread can hold a reference yet.)
  Mutex mutex;
  std::ifstream in FINEHMM_GUARDED_BY(mutex);
};

ModelDbReader::ModelDbReader(const std::string& path) : impl_(new Impl) {
  impl_->in.open(path, std::ios::binary);
  FH_REQUIRE_IO(impl_->in.good(), "cannot open model library: " + path);
  offsets_ = read_header(impl_->in);
}

ModelDbReader::~ModelDbReader() { delete impl_; }

ModelEntry ModelDbReader::load(std::size_t index) const {
  FH_REQUIRE(index < offsets_.size(), "model index out of range");
  MutexLock lock(impl_->mutex);
  impl_->in.clear();
  impl_->in.seekg(static_cast<std::streamoff>(offsets_[index]));
  FH_REQUIRE(impl_->in.good(), "bad record offset in model library");
  ModelEntry e;
  e.model = read_hmm_binary(impl_->in, &e.model_stats);
  return e;
}

}  // namespace finehmm::hmm
