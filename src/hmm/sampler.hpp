// Sampling sequences from a Plan-7 model.
//
// Used to plant homologous sequences into synthetic databases (the paper's
// discussion notes that the pipeline speedup depends on the degree of
// homology between the database and the query) and as a ground-truth
// generator for statistical tests.
#pragma once

#include "bio/sequence.hpp"
#include "hmm/plan7.hpp"
#include "util/rng.hpp"

namespace finehmm::hmm {

struct SampleOptions {
  /// Random flank lengths (geometric with this mean) are prepended and
  /// appended so the motif sits inside a realistic sequence.
  double mean_flank = 50.0;
  /// Emit a partial-length homolog (local fragment) with this probability.
  double fragment_prob = 0.3;
};

/// Sample one sequence containing one core-model traversal plus flanks.
bio::Sequence sample_homolog(const Plan7Hmm& hmm, Pcg32& rng,
                             const SampleOptions& opts = {},
                             const std::string& name = "homolog");

}  // namespace finehmm::hmm
