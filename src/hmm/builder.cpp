#include "hmm/builder.hpp"

#include <algorithm>
#include <cmath>

#include "bio/alphabet.hpp"
#include "hmm/priors.hpp"
#include "util/error.hpp"

namespace finehmm::hmm {

namespace {

bool is_gap_char(char c) { return c == '-' || c == '.' || c == '~'; }

/// Henikoff position-based weights: each column distributes one unit of
/// weight equally among the residue types present, then among the
/// sequences sharing each type.
std::vector<double> henikoff_weights(const std::vector<std::string>& aln) {
  const std::size_t n = aln.size();
  const std::size_t width = aln[0].size();
  std::vector<double> w(n, 0.0);
  for (std::size_t c = 0; c < width; ++c) {
    int counts[bio::kKp] = {0};
    int types = 0;
    for (std::size_t s = 0; s < n; ++s) {
      if (is_gap_char(aln[s][c])) continue;
      std::uint8_t code = bio::digitize(aln[s][c]);
      if (counts[code]++ == 0) ++types;
    }
    if (types == 0) continue;
    for (std::size_t s = 0; s < n; ++s) {
      if (is_gap_char(aln[s][c])) continue;
      std::uint8_t code = bio::digitize(aln[s][c]);
      w[s] += 1.0 / (static_cast<double>(types) * counts[code]);
    }
  }
  // Normalize to mean 1 so pseudocount balance is insensitive to depth.
  double total = 0.0;
  for (double x : w) total += x;
  if (total <= 0.0) return std::vector<double>(n, 1.0);
  for (double& x : w) x *= static_cast<double>(n) / total;
  return w;
}

}  // namespace

namespace {

/// Shared core: estimate the model given an explicit match-column mask.
Plan7Hmm build_with_match_columns(const std::vector<std::string>& alignment,
                                  const std::string& name,
                                  const std::vector<bool>& is_match,
                                  const BuildOptions& opts);

}  // namespace

Plan7Hmm build_from_alignment(const std::vector<std::string>& alignment,
                              const std::string& name,
                              const BuildOptions& opts) {
  FH_REQUIRE(!alignment.empty(), "alignment must have at least one sequence");
  const std::size_t n = alignment.size();
  const std::size_t width = alignment[0].size();
  FH_REQUIRE(width > 0, "alignment has zero columns");
  for (const auto& row : alignment)
    FH_REQUIRE(row.size() == width, "ragged alignment rows");

  // Gap-fraction rule for match columns.
  std::vector<bool> is_match(width, false);
  for (std::size_t c = 0; c < width; ++c) {
    std::size_t residues = 0;
    for (const auto& row : alignment)
      if (!is_gap_char(row[c])) ++residues;
    if (static_cast<double>(residues) >=
        opts.match_threshold * static_cast<double>(n))
      is_match[c] = true;
  }
  return build_with_match_columns(alignment, name, is_match, opts);
}

Plan7Hmm build_from_stockholm(const bio::StockholmAlignment& aln,
                              const BuildOptions& opts) {
  FH_REQUIRE(!aln.rows.empty(), "alignment must have at least one sequence");
  if (!aln.rf) {
    return build_from_alignment(aln.rows,
                                aln.id.empty() ? "stockholm" : aln.id, opts);
  }
  std::vector<bool> is_match(aln.rf->size(), false);
  for (std::size_t c = 0; c < aln.rf->size(); ++c)
    is_match[c] = !is_gap_char((*aln.rf)[c]) && (*aln.rf)[c] != ' ';
  return build_with_match_columns(
      aln.rows, aln.id.empty() ? "stockholm" : aln.id, is_match, opts);
}

namespace {

Plan7Hmm build_with_match_columns(const std::vector<std::string>& alignment,
                                  const std::string& name,
                                  const std::vector<bool>& is_match,
                                  const BuildOptions& opts) {
  const std::size_t n = alignment.size();
  const std::size_t width = alignment[0].size();
  FH_REQUIRE(is_match.size() == width, "match mask width mismatch");
  for (const auto& row : alignment)
    FH_REQUIRE(row.size() == width, "ragged alignment rows");
  int M = 0;
  for (bool m : is_match)
    if (m) ++M;
  FH_REQUIRE(M >= 1, "no match columns");

  std::vector<double> weights =
      opts.position_based_weights ? henikoff_weights(alignment)
                                  : std::vector<double>(n, 1.0);

  Plan7Hmm hmm(M);
  hmm.set_name(name);
  hmm.set_description("built from " + std::to_string(n) +
                      "-sequence alignment");

  const auto& bg = bio::background_frequencies();
  std::vector<double> mat_counts(static_cast<std::size_t>(M + 1) * bio::kK,
                                 0.0);
  std::vector<double> ins_counts(static_cast<std::size_t>(M + 1) * bio::kK,
                                 0.0);
  std::vector<double> tr_counts(static_cast<std::size_t>(M + 1) * kNTransitions,
                                0.0);

  // --- count emissions and transitions along each sequence's implied path ---
  for (std::size_t s = 0; s < n; ++s) {
    const std::string& row = alignment[s];
    double w = weights[s];
    // State walk: node index k (0 = begin), state among M/I/D.
    int k = 0;
    int state = kTMM;  // reuse transition enum source tags: M=0, I=1, D=2
    enum { kSM = 0, kSI = 1, kSD = 2 };
    int cur = kSM;  // begin node acts as a match state at k=0
    for (std::size_t c = 0; c < width; ++c) {
      char ch = row[c];
      if (is_match[c]) {
        int next_state;
        if (is_gap_char(ch)) {
          next_state = kSD;
        } else {
          next_state = kSM;
        }
        // Record transition cur@k -> next_state@(k+1).
        int t;
        if (cur == kSM)
          t = next_state == kSM ? kTMM : kTMD;
        else if (cur == kSI)
          t = next_state == kSM ? kTIM : kTIM;  // I->D not in Plan-7; fold to I->M
        else
          t = next_state == kSM ? kTDM : kTDD;
        tr_counts[static_cast<std::size_t>(k) * kNTransitions + t] += w;
        ++k;
        cur = next_state;
        if (cur == kSM) {
          std::uint8_t code = bio::digitize(ch);
          if (bio::is_canonical(code))
            mat_counts[static_cast<std::size_t>(k) * bio::kK + code] += w;
          else if (code == bio::kCodeX)
            for (int a = 0; a < bio::kK; ++a)
              mat_counts[static_cast<std::size_t>(k) * bio::kK + a] +=
                  w * bg[a];
        }
      } else {
        if (is_gap_char(ch)) continue;  // gap in an insert column: nothing
        // Insert emission at node k.
        int t = (cur == kSI) ? kTII : kTMI;  // D->I folded into M->I
        tr_counts[static_cast<std::size_t>(k) * kNTransitions + t] += w;
        std::uint8_t code = bio::digitize(ch);
        if (bio::is_canonical(code))
          ins_counts[static_cast<std::size_t>(k) * bio::kK + code] += w;
        cur = kSI;
      }
    }
    (void)state;
  }

  // --- priors and normalization ---
  for (int k = 1; k <= M; ++k) {
    if (opts.use_dirichlet_mixture) {
      std::array<double, bio::kK> counts{};
      for (int a = 0; a < bio::kK; ++a)
        counts[a] = mat_counts[static_cast<std::size_t>(k) * bio::kK + a];
      auto p = DirichletMixture::default_amino().posterior_mean(counts);
      for (int a = 0; a < bio::kK; ++a)
        hmm.mat(k, a) = static_cast<float>(p[a]);
    } else {
      double total = 0.0;
      for (int a = 0; a < bio::kK; ++a) {
        double c = mat_counts[static_cast<std::size_t>(k) * bio::kK + a] +
                   opts.emission_pseudocount * bg[a];
        hmm.mat(k, a) = static_cast<float>(c);
        total += c;
      }
      for (int a = 0; a < bio::kK; ++a)
        hmm.mat(k, a) = static_cast<float>(hmm.mat(k, a) / total);
    }
  }
  for (int k = 0; k <= M; ++k) {
    double total = 0.0;
    for (int a = 0; a < bio::kK; ++a) {
      double c = ins_counts[static_cast<std::size_t>(k) * bio::kK + a] +
                 opts.emission_pseudocount * bg[a];
      hmm.ins(k, a) = static_cast<float>(c);
      total += c;
    }
    for (int a = 0; a < bio::kK; ++a)
      hmm.ins(k, a) = static_cast<float>(hmm.ins(k, a) / total);
  }
  auto norm_tr = [&](int k, std::initializer_list<Plan7Transition> ts,
                     std::initializer_list<double> priors) {
    double total = 0.0;
    auto pit = priors.begin();
    for (auto t : ts) {
      double c = tr_counts[static_cast<std::size_t>(k) * kNTransitions + t] +
                 opts.transition_pseudocount * (*pit++);
      hmm.tr(k, t) = static_cast<float>(c);
      total += c;
    }
    for (auto t : ts)
      hmm.tr(k, t) = static_cast<float>(hmm.tr(k, t) / total);
  };
  for (int k = 0; k <= M; ++k) {
    // Priors favor the match path, as HMMER's Dirichlet priors do.
    norm_tr(k, {kTMM, kTMI, kTMD}, {0.9, 0.05, 0.05});
    if (k < M)
      norm_tr(k, {kTIM, kTII}, {0.6, 0.4});
    else {
      hmm.tr(k, kTIM) = 1.0f;
      hmm.tr(k, kTII) = 0.0f;
    }
    if (k >= 1 && k < M)
      norm_tr(k, {kTDM, kTDD}, {0.6, 0.4});
    else if (k == M) {
      hmm.tr(k, kTDM) = 1.0f;
      hmm.tr(k, kTDD) = 0.0f;
    } else {
      hmm.tr(k, kTDM) = 0.0f;
      hmm.tr(k, kTDD) = 0.0f;
    }
  }
  // Node M: match transitions all lead to E; by convention M_M->E = 1.
  hmm.tr(M, kTMM) = 1.0f;
  hmm.tr(M, kTMI) = 0.0f;
  hmm.tr(M, kTMD) = 0.0f;

  hmm.validate();
  return hmm;
}

}  // namespace

}  // namespace finehmm::hmm
