// Dirichlet mixture priors for emission estimation.
//
// hmmbuild does not use flat pseudocounts: match emissions are estimated
// with a mixture-Dirichlet prior whose components capture recurring
// residue regimes (hydrophobic cores, polar surfaces, charged sites,
// glycine/proline breakers...).  Given observed weighted counts c, the
// posterior mean under a mixture  sum_j q_j Dir(alpha_j)  is
//
//   p(a|c) = sum_j w_j(c) * (c_a + alpha_{j,a}) / (|c| + |alpha_j|),
//   w_j(c) ∝ q_j * B(c + alpha_j) / B(alpha_j),
//
// with B the multivariate Beta.  The library ships a compact 5-component
// amino-acid mixture (documented in priors.cpp; not the Sjölander 9-
// component tables, but built on the same regime structure) and the
// machinery accepts arbitrary mixtures.
#pragma once

#include <array>
#include <vector>

#include "bio/alphabet.hpp"

namespace finehmm::hmm {

struct DirichletComponent {
  double q = 1.0;                      // mixture coefficient
  std::array<double, bio::kK> alpha{};  // Dirichlet parameters
};

class DirichletMixture {
 public:
  explicit DirichletMixture(std::vector<DirichletComponent> components);

  std::size_t size() const noexcept { return components_.size(); }

  /// Posterior mean estimate of the emission distribution given weighted
  /// observed counts (all >= 0; may be all zero).
  std::array<double, bio::kK> posterior_mean(
      const std::array<double, bio::kK>& counts) const;

  /// Posterior mixture responsibilities for the given counts.
  std::vector<double> responsibilities(
      const std::array<double, bio::kK>& counts) const;

  /// The library's default amino-acid mixture.
  static const DirichletMixture& default_amino();

 private:
  std::vector<DirichletComponent> components_;
};

}  // namespace finehmm::hmm
