#include "hmm/hmm_io.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <vector>

#include "util/error.hpp"

namespace finehmm::hmm {

namespace {

std::string format_prob(float p) {
  if (p <= 0.0f) return "*";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.5f", -std::log(p));
  return buf;
}

float parse_prob(const std::string& tok, std::size_t lineno) {
  if (tok == "*") return 0.0f;
  try {
    return std::exp(-std::stof(tok));
  } catch (const std::exception&) {
    throw ParseError("bad probability token '" + tok + "'", lineno);
  }
}

std::vector<std::string> split_ws(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream in(line);
  std::string tok;
  while (in >> tok) out.push_back(tok);
  return out;
}

}  // namespace

void write_hmm(std::ostream& out, const Plan7Hmm& hmm,
               const stats::ModelStats* model_stats) {
  const int M = hmm.length();
  out << "HMMER3/f [finehmm subset]\n";
  out << "NAME  " << (hmm.name().empty() ? "unnamed" : hmm.name()) << '\n';
  if (!hmm.description().empty()) out << "DESC  " << hmm.description() << '\n';
  out << "LENG  " << M << '\n';
  out << "ALPH  amino\n";
  if (model_stats != nullptr) {
    char buf[96];
    std::snprintf(buf, sizeof(buf), "STATS LOCAL MSV     %9.4f %9.5f\n",
                  model_stats->msv.mu, model_stats->msv.lambda);
    out << buf;
    std::snprintf(buf, sizeof(buf), "STATS LOCAL VITERBI %9.4f %9.5f\n",
                  model_stats->vit.mu, model_stats->vit.lambda);
    out << buf;
    std::snprintf(buf, sizeof(buf), "STATS LOCAL FORWARD %9.4f %9.5f\n",
                  model_stats->fwd.mu, model_stats->fwd.lambda);
    out << buf;
  }
  out << "HMM  ";
  for (int a = 0; a < bio::kK; ++a) out << "       " << bio::kCanonical[a];
  out << '\n';
  out << "        m->m     m->i     m->d     i->m     i->i     d->m     d->d\n";

  auto emit_row = [&](auto get) {
    for (int a = 0; a < bio::kK; ++a) {
      std::string s = format_prob(get(a));
      out << "  ";
      for (std::size_t pad = s.size(); pad < 7; ++pad) out << ' ';
      out << s;
    }
    out << '\n';
  };

  for (int k = 1; k <= M; ++k) {
    out << "  " << k << ' ';
    emit_row([&](int a) { return hmm.mat(k, a); });
    out << "     ";
    emit_row([&](int a) { return hmm.ins(k, a); });
    out << "     ";
    for (int t = 0; t < kNTransitions; ++t) {
      // Node k's transition line describes transitions out of node k; by
      // HMMER convention the B (node 0) transitions appear on node 1's
      // line... no: HMMER stores node k's own out-transitions on line k,
      // and B's on a "COMPO"-adjacent node-0 line.  We keep it simpler and
      // fully explicit: line k holds tr(k, *) and a leading node-0 line
      // (emitted below as node index 0) holds the begin transitions.
      std::string s = format_prob(hmm.tr(k, static_cast<Plan7Transition>(t)));
      out << "  ";
      for (std::size_t pad = s.size(); pad < 7; ++pad) out << ' ';
      out << s;
    }
    out << '\n';
  }
  // Begin-node transitions, written last under an explicit tag.
  out << "BEGIN";
  for (int t = 0; t < kNTransitions; ++t) {
    std::string s = format_prob(hmm.tr(0, static_cast<Plan7Transition>(t)));
    out << "  " << s;
  }
  out << '\n';
  out << "//\n";
}

void write_hmm_file(const std::string& path, const Plan7Hmm& hmm,
                    const stats::ModelStats* model_stats) {
  std::ofstream out(path);
  FH_REQUIRE_IO(out.good(), "cannot open hmm file for writing: " + path);
  write_hmm(out, hmm, model_stats);
}

Plan7Hmm read_hmm(std::istream& in,
                  std::optional<stats::ModelStats>* out_stats) {
  std::string line;
  std::size_t lineno = 0;
  std::string name, desc;
  int M = -1;
  bool header_seen = false;
  stats::ModelStats parsed_stats;
  int stats_seen = 0;

  // --- header ---
  while (std::getline(in, line)) {
    ++lineno;
    if (line.rfind("HMMER3", 0) == 0) {
      header_seen = true;
      continue;
    }
    if (line.rfind("NAME", 0) == 0) {
      auto toks = split_ws(line);
      if (toks.size() >= 2) name = toks[1];
      continue;
    }
    if (line.rfind("DESC", 0) == 0) {
      std::size_t pos = line.find_first_not_of(" \t", 4);
      if (pos != std::string::npos) desc = line.substr(pos);
      continue;
    }
    if (line.rfind("LENG", 0) == 0) {
      auto toks = split_ws(line);
      if (toks.size() < 2) throw ParseError("LENG without value", lineno);
      M = std::stoi(toks[1]);
      continue;
    }
    if (line.rfind("ALPH", 0) == 0) {
      auto toks = split_ws(line);
      FH_REQUIRE(toks.size() >= 2 && (toks[1] == "amino" || toks[1] == "AMINO"),
                 "only the amino alphabet is supported");
      continue;
    }
    if (line.rfind("STATS", 0) == 0) {
      auto toks = split_ws(line);
      if (toks.size() >= 5 && toks[1] == "LOCAL") {
        double mu = std::atof(toks[3].c_str());
        double lambda = std::atof(toks[4].c_str());
        if (toks[2] == "MSV") {
          parsed_stats.msv = {mu, lambda};
          stats_seen |= 1;
        } else if (toks[2] == "VITERBI") {
          parsed_stats.vit = {mu, lambda};
          stats_seen |= 2;
        } else if (toks[2] == "FORWARD") {
          parsed_stats.fwd = {mu, lambda};
          stats_seen |= 4;
        }
      }
      continue;
    }
    if (line.rfind("HMM", 0) == 0) break;  // column header line
    // Unknown header lines (DATE, ...) are skipped.
  }
  if (out_stats != nullptr)
    *out_stats = stats_seen == 7
                     ? std::optional<stats::ModelStats>(parsed_stats)
                     : std::nullopt;
  FH_REQUIRE(header_seen, "missing HMMER3 magic line");
  FH_REQUIRE(M >= 1, "missing or invalid LENG");

  // Skip the transition column header line.
  std::getline(in, line);
  ++lineno;

  Plan7Hmm hmm(M);
  hmm.set_name(name);
  hmm.set_description(desc);

  int k = 0;
  bool saw_begin = false;
  bool saw_end = false;
  while (std::getline(in, line)) {
    ++lineno;
    auto toks = split_ws(line);
    if (toks.empty()) continue;
    if (toks[0] == "//") {
      saw_end = true;
      break;
    }
    if (toks[0] == "COMPO") {  // optional; ignore
      std::getline(in, line);  // its insert line
      std::getline(in, line);  // its transition line
      lineno += 2;
      continue;
    }
    if (toks[0] == "BEGIN") {
      FH_REQUIRE(toks.size() == 1 + kNTransitions, "malformed BEGIN line");
      for (int t = 0; t < kNTransitions; ++t)
        hmm.tr(0, static_cast<Plan7Transition>(t)) =
            parse_prob(toks[1 + t], lineno);
      saw_begin = true;
      continue;
    }
    // Node line: index + 20 match emissions (+ optional annotations which we
    // tolerate and ignore beyond the 20 scores).
    ++k;
    FH_REQUIRE(k <= M, "more node lines than LENG");
    if (std::stoi(toks[0]) != k)
      throw ParseError("node index mismatch", lineno);
    FH_REQUIRE(toks.size() >= 1 + static_cast<std::size_t>(bio::kK),
               "short match emission line");
    for (int a = 0; a < bio::kK; ++a)
      hmm.mat(k, a) = parse_prob(toks[1 + a], lineno);

    // Insert emission line.
    if (!std::getline(in, line)) throw ParseError("missing insert line", lineno);
    ++lineno;
    toks = split_ws(line);
    FH_REQUIRE(toks.size() >= static_cast<std::size_t>(bio::kK),
               "short insert emission line");
    for (int a = 0; a < bio::kK; ++a)
      hmm.ins(k, a) = parse_prob(toks[a], lineno);

    // Transition line.
    if (!std::getline(in, line))
      throw ParseError("missing transition line", lineno);
    ++lineno;
    toks = split_ws(line);
    FH_REQUIRE(toks.size() >= static_cast<std::size_t>(kNTransitions),
               "short transition line");
    for (int t = 0; t < kNTransitions; ++t)
      hmm.tr(k, static_cast<Plan7Transition>(t)) = parse_prob(toks[t], lineno);
  }
  FH_REQUIRE(k == M, "fewer node lines than LENG");
  FH_REQUIRE(saw_begin, "missing BEGIN transition line");
  FH_REQUIRE(saw_end, "missing closing // line");

  // Insert emissions for node 0 default to node 1's (background).
  for (int a = 0; a < bio::kK; ++a) hmm.ins(0, a) = hmm.ins(1, a);
  return hmm;
}

Plan7Hmm read_hmm_file(const std::string& path,
                       std::optional<stats::ModelStats>* out_stats) {
  std::ifstream in(path);
  FH_REQUIRE_IO(in.good(), "cannot open hmm file: " + path);
  return read_hmm(in, out_stats);
}

}  // namespace finehmm::hmm
