#include "hmm/plan7.hpp"

#include <cctype>
#include <cmath>
#include <numeric>

#include "util/error.hpp"

namespace finehmm::hmm {

Plan7Hmm::Plan7Hmm(int M) : M_(M) {
  FH_REQUIRE(M >= 1, "model length must be >= 1");
  mat_.assign(static_cast<std::size_t>(M + 1) * bio::kK, 0.0f);
  ins_.assign(static_cast<std::size_t>(M + 1) * bio::kK, 0.0f);
  tr_.assign(static_cast<std::size_t>(M + 1) * kNTransitions, 0.0f);
}

namespace {

float row_sum(const float* p, int n) {
  double s = 0.0;
  for (int i = 0; i < n; ++i) s += p[i];
  return static_cast<float>(s);
}

void check_dist(float sum, float tol, const std::string& what) {
  FH_REQUIRE(std::fabs(sum - 1.0f) <= tol,
             what + " not normalized (sum=" + std::to_string(sum) + ")");
}

}  // namespace

void Plan7Hmm::validate(float tol) const {
  FH_REQUIRE(M_ >= 1, "uninitialized model");
  for (int k = 1; k <= M_; ++k) {
    check_dist(row_sum(&mat_[idx(k, 0)], bio::kK), tol,
               "match emissions at node " + std::to_string(k));
  }
  for (int k = 0; k < M_; ++k) {
    check_dist(row_sum(&ins_[idx(k, 0)], bio::kK), tol,
               "insert emissions at node " + std::to_string(k));
  }
  for (int k = 0; k <= M_; ++k) {
    check_dist(tr(k, kTMM) + tr(k, kTMI) + tr(k, kTMD), tol,
               "match transitions at node " + std::to_string(k));
    if (k < M_) {
      check_dist(tr(k, kTIM) + tr(k, kTII), tol,
                 "insert transitions at node " + std::to_string(k));
    }
    if (k >= 1) {
      check_dist(tr(k, kTDM) + tr(k, kTDD), tol,
                 "delete transitions at node " + std::to_string(k));
    }
  }
}

void Plan7Hmm::renormalize() {
  auto norm = [](float* p, int n) {
    float s = row_sum(p, n);
    if (s <= 0.0f) return;
    for (int i = 0; i < n; ++i) p[i] /= s;
  };
  for (int k = 1; k <= M_; ++k) norm(&mat_[idx(k, 0)], bio::kK);
  for (int k = 0; k <= M_; ++k) norm(&ins_[idx(k, 0)], bio::kK);
  for (int k = 0; k <= M_; ++k) {
    norm(&tr_[k * kNTransitions + kTMM], 3);
    norm(&tr_[k * kNTransitions + kTIM], 2);
    norm(&tr_[k * kNTransitions + kTDM], 2);
  }
}

std::vector<float> Plan7Hmm::match_occupancy() const {
  // occ[k]: probability the core path uses M_k; HMMER's
  // p7_hmm_CalculateOccupancy recursion.
  std::vector<float> occ(static_cast<std::size_t>(M_) + 1, 0.0f);
  occ[1] = tr(0, kTMI) + tr(0, kTMM);
  for (int k = 2; k <= M_; ++k) {
    occ[k] = occ[k - 1] * (tr(k - 1, kTMM) + tr(k - 1, kTMI)) +
             (1.0f - occ[k - 1]) * tr(k - 1, kTDM);
  }
  return occ;
}

std::string Plan7Hmm::consensus() const {
  std::string out;
  out.reserve(static_cast<std::size_t>(M_));
  for (int k = 1; k <= M_; ++k) {
    int best = 0;
    for (int a = 1; a < bio::kK; ++a)
      if (mat(k, a) > mat(k, best)) best = a;
    char c = bio::kCanonical[best];
    out.push_back(mat(k, best) > 0.5f
                      ? c
                      : static_cast<char>(std::tolower(c)));
  }
  return out;
}

}  // namespace finehmm::hmm
