#include "hmm/generator.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace finehmm::hmm {

Plan7Hmm generate_hmm(const RandomHmmSpec& spec) {
  FH_REQUIRE(spec.length >= 1, "model length must be >= 1");
  FH_REQUIRE(spec.indel_open > 0.0 && spec.indel_open < 0.5,
             "indel_open out of range");
  Pcg32 rng(spec.seed, 0x9e3779b97f4a7c15ULL ^ spec.length);
  const int M = spec.length;
  Plan7Hmm hmm(M);
  hmm.set_name("synthetic_M" + std::to_string(M));
  hmm.set_description("random Pfam-like profile");

  const auto& bg = bio::background_frequencies();

  // Match emissions: Dirichlet draws biased toward a conserved residue.
  for (int k = 1; k <= M; ++k) {
    auto p = rng.dirichlet(bio::kK, spec.match_alpha);
    for (int a = 0; a < bio::kK; ++a)
      hmm.mat(k, a) = static_cast<float>(p[a]);
  }
  // Insert emissions equal the background (HMMER convention for local mode).
  for (int k = 0; k <= M; ++k)
    for (int a = 0; a < bio::kK; ++a) hmm.ins(k, a) = bg[a];

  auto jitter = [&](double mean) {
    // Log-normal jitter around the mean, clamped away from 0 and 1.
    double v = mean * std::exp(0.5 * rng.gaussian());
    return std::clamp(v, 1e-4, 0.45);
  };

  for (int k = 0; k <= M; ++k) {
    double mi = jitter(spec.indel_open);
    double md = jitter(spec.indel_open);
    if (k == 0) {
      // Begin node: mostly B->M1, tiny B->D1, negligible B->I0.
      mi = 1e-4;
      md = jitter(spec.indel_open);
    }
    if (k == M) {
      // Node M: M_M -> E with probability 1 by convention.
      mi = 0.0;
      md = 0.0;
    }
    hmm.tr(k, kTMM) = static_cast<float>(1.0 - mi - md);
    hmm.tr(k, kTMI) = static_cast<float>(mi);
    hmm.tr(k, kTMD) = static_cast<float>(md);

    if (k < M) {
      double ii = jitter(spec.insert_extend);
      hmm.tr(k, kTIM) = static_cast<float>(1.0 - ii);
      hmm.tr(k, kTII) = static_cast<float>(ii);
    } else {
      hmm.tr(k, kTIM) = 1.0f;
      hmm.tr(k, kTII) = 0.0f;
    }

    if (k >= 1 && k < M) {
      double dd = jitter(spec.delete_extend);
      hmm.tr(k, kTDM) = static_cast<float>(1.0 - dd);
      hmm.tr(k, kTDD) = static_cast<float>(dd);
    } else if (k == M) {
      hmm.tr(k, kTDM) = 1.0f;  // D_M -> E
      hmm.tr(k, kTDD) = 0.0f;
    } else {
      hmm.tr(k, kTDM) = 0.0f;
      hmm.tr(k, kTDD) = 0.0f;
    }
  }

  hmm.validate();
  return hmm;
}

Plan7Hmm paper_model(int size) {
  RandomHmmSpec spec;
  spec.length = size;
  spec.seed = 0xfee1600dULL + static_cast<std::uint64_t>(size);
  return generate_hmm(spec);
}

}  // namespace finehmm::hmm
