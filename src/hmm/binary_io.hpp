// Binary profile serialization (the role HMMER's .h3m pressed files play).
//
// The ASCII .hmm format rounds probabilities to 5 decimals; the binary
// format is lossless (bit-exact floats) and loads without parsing, which
// matters when scanning a multi-thousand-family library.  Vectorized
// profiles are NOT stored — they are cheap deterministic functions of the
// core model and get rebuilt on load.
//
// Layout (little-endian, the only platform we target):
//   magic "FHMP" | u32 version | u32 name_len | name | u32 desc_len | desc
//   | i32 M | f32 mat[M*20] | f32 ins[(M+1)*20] | f32 tr[(M+1)*7]
//   | u8 has_stats | (f64 x 8: ssv/msv/vit/fwd mu+lambda)
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "hmm/plan7.hpp"
#include "stats/calibrate.hpp"

namespace finehmm::hmm {

inline constexpr std::uint32_t kBinaryVersion = 1;

void write_hmm_binary(std::ostream& out, const Plan7Hmm& hmm,
                      const stats::ModelStats* model_stats = nullptr);
void write_hmm_binary_file(const std::string& path, const Plan7Hmm& hmm,
                           const stats::ModelStats* model_stats = nullptr);

Plan7Hmm read_hmm_binary(std::istream& in,
                         std::optional<stats::ModelStats>* out_stats = nullptr);
Plan7Hmm read_hmm_binary_file(
    const std::string& path,
    std::optional<stats::ModelStats>* out_stats = nullptr);

}  // namespace finehmm::hmm
