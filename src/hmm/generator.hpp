// Random Pfam-like profile HMM generation.
//
// The paper evaluates on Pfam models of sizes 48, 100, 200, 400, 800, 1002,
// 1528 and 2405.  Kernel behaviour depends on the model length and the
// transition statistics (D-D frequency drives the Lazy-F workload), not on
// the biological identity of a motif, so we generate models whose
// statistics mimic Pfam seed profiles.
#pragma once

#include <cstdint>

#include "hmm/plan7.hpp"
#include "util/rng.hpp"

namespace finehmm::hmm {

struct RandomHmmSpec {
  int length = 100;
  std::uint64_t seed = 1;
  /// Dirichlet concentration of match emissions; smaller = more conserved
  /// columns (Pfam seeds are strongly conserved, ~0.2).
  double match_alpha = 0.2;
  /// Mean probability of M->I and M->D at an interior node.
  double indel_open = 0.01;
  /// Mean probability of I->I (gap extend).
  double insert_extend = 0.4;
  /// Mean probability of D->D (delete extend).  Raise this to stress the
  /// parallel Lazy-F path.
  double delete_extend = 0.5;
};

/// The model sizes benchmarked in the paper (Fig. 9-11).
inline constexpr int kPaperModelSizes[] = {48,  100,  200,  400,
                                           800, 1002, 1528, 2405};

/// Generate a normalized, validated Plan-7 model.
Plan7Hmm generate_hmm(const RandomHmmSpec& spec);

/// Convenience: paper-like model of a given size, deterministic per size.
Plan7Hmm paper_model(int size);

}  // namespace finehmm::hmm
