#include "hmm/sampler.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace finehmm::hmm {

namespace {

std::uint8_t sample_emission(const Plan7Hmm& hmm, int k, bool match,
                             Pcg32& rng) {
  double x = rng.uniform();
  double acc = 0.0;
  for (int a = 0; a < bio::kK; ++a) {
    acc += match ? hmm.mat(k, a) : hmm.ins(k, a);
    if (x < acc) return static_cast<std::uint8_t>(a);
  }
  return bio::kK - 1;
}

void append_background(std::vector<std::uint8_t>& codes, std::size_t n,
                       Pcg32& rng) {
  const auto& bg = bio::background_frequencies();
  for (std::size_t i = 0; i < n; ++i) {
    double x = rng.uniform();
    double acc = 0.0;
    std::uint8_t code = bio::kK - 1;
    for (int a = 0; a < bio::kK; ++a) {
      acc += bg[a];
      if (x < acc) {
        code = static_cast<std::uint8_t>(a);
        break;
      }
    }
    codes.push_back(code);
  }
}

}  // namespace

bio::Sequence sample_homolog(const Plan7Hmm& hmm, Pcg32& rng,
                             const SampleOptions& opts,
                             const std::string& name) {
  const int M = hmm.length();
  bio::Sequence seq;
  seq.name = name;

  std::size_t left =
      static_cast<std::size_t>(rng.exponential(1.0 / opts.mean_flank));
  append_background(seq.codes, left, rng);

  // Pick an aligned region: full model, or a local fragment.
  int k_start = 1, k_end = M;
  if (rng.uniform() < opts.fragment_prob && M > 4) {
    k_start = 1 + static_cast<int>(rng.below(static_cast<std::uint32_t>(M / 2)));
    k_end = k_start +
            static_cast<int>(rng.below(static_cast<std::uint32_t>(M - k_start))) +
            1;
    k_end = std::min(k_end, M);
  }

  // Walk the core model from M_{k_start}; D and I states per transitions.
  enum class St { kM, kI, kD };
  St state = St::kM;
  int k = k_start;
  while (k <= k_end) {
    switch (state) {
      case St::kM: {
        seq.codes.push_back(sample_emission(hmm, k, /*match=*/true, rng));
        if (k == k_end) { k = k_end + 1; break; }
        double x = rng.uniform();
        if (x < hmm.tr(k, kTMM)) {
          ++k;
        } else if (x < hmm.tr(k, kTMM) + hmm.tr(k, kTMI)) {
          state = St::kI;
        } else {
          ++k;
          state = St::kD;
        }
        break;
      }
      case St::kI: {
        seq.codes.push_back(sample_emission(hmm, k, /*match=*/false, rng));
        if (rng.uniform() < hmm.tr(k, kTIM)) {
          ++k;
          state = St::kM;
        }
        break;
      }
      case St::kD: {
        if (k >= k_end) { k = k_end + 1; break; }
        if (rng.uniform() < hmm.tr(k, kTDM)) {
          ++k;
          state = St::kM;
        } else {
          ++k;
        }
        break;
      }
    }
  }

  std::size_t right =
      static_cast<std::size_t>(rng.exponential(1.0 / opts.mean_flank));
  append_background(seq.codes, right, rng);

  // Never emit an empty sequence.
  if (seq.codes.empty()) append_background(seq.codes, 1, rng);
  return seq;
}

}  // namespace finehmm::hmm
