// hmmbuild-lite: estimate a Plan-7 model from a multiple sequence alignment.
//
// A deliberately small but functional reimplementation of the model
// construction half of HMMER's hmmbuild: match-column assignment by gap
// fraction, Henikoff position-based sequence weights, Laplace-plus-
// background pseudocounts, maximum a posteriori normalization.
#pragma once

#include <string>
#include <vector>

#include "bio/stockholm.hpp"
#include "hmm/plan7.hpp"

namespace finehmm::hmm {

struct BuildOptions {
  /// A column becomes a match column when at least this fraction of
  /// sequences have a residue (not a gap) in it.
  double match_threshold = 0.5;
  /// Estimate match emissions with the Dirichlet mixture prior
  /// (hmm/priors.hpp), as hmmbuild does.  When false, falls back to flat
  /// background-proportional pseudocounts.
  bool use_dirichlet_mixture = true;
  /// Pseudocount mass for the flat fallback (and for insert emissions,
  /// which always use the simple prior).
  double emission_pseudocount = 2.0;
  /// Pseudocount mass for each transition distribution.
  double transition_pseudocount = 1.0;
  /// Use Henikoff position-based weights (true) or uniform weights.
  bool position_based_weights = true;
};

/// Build a model from aligned sequences (rows of equal length; '-', '.' and
/// '~' are gaps).  Throws finehmm::Error on ragged or empty input.
Plan7Hmm build_from_alignment(const std::vector<std::string>& alignment,
                              const std::string& name,
                              const BuildOptions& opts = {});

/// Build from a Stockholm alignment.  When the file carries a #=GC RF
/// reference line, its non-gap columns define the match states (hmmbuild's
/// --hand behaviour); otherwise the gap-fraction rule applies.
Plan7Hmm build_from_stockholm(const bio::StockholmAlignment& aln,
                              const BuildOptions& opts = {});

}  // namespace finehmm::hmm
