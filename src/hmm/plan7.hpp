// The Plan-7 core profile HMM (Fig. 3 of the paper).
//
// A model of length M has match states M_1..M_M, insert states I_1..I_{M-1}
// and delete states D_1..D_M, with per-node emission distributions and the
// seven Plan-7 transition probabilities.  Node 0 is the begin node: its
// "match" transitions are the B->{M1,I0,D1} distribution.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "bio/alphabet.hpp"

namespace finehmm::hmm {

/// Transition indices within a node, HMMER order.
enum Plan7Transition : int {
  kTMM = 0,  // M_k -> M_{k+1}   (k=0: B -> M_1)
  kTMI = 1,  // M_k -> I_k       (k=0: B -> I_0)
  kTMD = 2,  // M_k -> D_{k+1}   (k=0: B -> D_1)
  kTIM = 3,  // I_k -> M_{k+1}
  kTII = 4,  // I_k -> I_k
  kTDM = 5,  // D_k -> M_{k+1}
  kTDD = 6,  // D_k -> D_{k+1}
};
inline constexpr int kNTransitions = 7;

class Plan7Hmm {
 public:
  Plan7Hmm() = default;
  /// Create a zeroed model of length M (all probabilities 0; caller fills).
  explicit Plan7Hmm(int M);

  int length() const noexcept { return M_; }
  const std::string& name() const noexcept { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }
  const std::string& description() const noexcept { return desc_; }
  void set_description(std::string d) { desc_ = std::move(d); }

  /// Match emission probability of residue a (0..19) at node k (1..M).
  float& mat(int k, int a) { return mat_[idx(k, a)]; }
  float mat(int k, int a) const { return mat_[idx(k, a)]; }

  /// Insert emission probability of residue a at node k (0..M-1 used; node M
  /// storage exists but is conventionally equal to background).
  float& ins(int k, int a) { return ins_[idx(k, a)]; }
  float ins(int k, int a) const { return ins_[idx(k, a)]; }

  /// Transition probability t at node k (0..M).  At node M the M->M slot
  /// means M_M -> E and D->D means D_M -> E.
  float& tr(int k, Plan7Transition t) { return tr_[k * kNTransitions + t]; }
  float tr(int k, Plan7Transition t) const {
    return tr_[k * kNTransitions + t];
  }

  /// Check that all distributions are normalized (within tol) and the
  /// structural conventions hold; throws finehmm::Error otherwise.
  void validate(float tol = 1e-3f) const;

  /// Renormalize every distribution in place.
  void renormalize();

  /// Match-state occupancy: probability that an alignment path visits M_k.
  /// Used for entry-distribution configuration and diagnostics.
  std::vector<float> match_occupancy() const;

  /// Consensus sequence: the maximum-probability residue of each match
  /// state, uppercase where that residue's probability exceeds 0.5
  /// (hmmemit -c behaviour).
  std::string consensus() const;

 private:
  std::size_t idx(int k, int a) const {
    return static_cast<std::size_t>(k) * bio::kK + static_cast<std::size_t>(a);
  }

  int M_ = 0;
  std::string name_;
  std::string desc_;
  std::vector<float> mat_;  // (M+1) x 20, row 0 unused
  std::vector<float> ins_;  // (M+1) x 20
  std::vector<float> tr_;   // (M+1) x 7
};

}  // namespace finehmm::hmm
