// Search-profile configuration: turning a Plan-7 core HMM into the
// log-odds scoring profile used by the generic (float) algorithms and by
// the vectorized filter profiles.
//
// We configure HMMER 3.0's multihit local alignment mode ("uniform
// fragment" entry, free local exit) with the standard length model:
//
//   entry   B -> M_k   = 2 / (M (M+1))          (uniform over k)
//   exit    M_k -> E   = 1                      (free local exit)
//   E -> {C, J}        = 1/2 each (multihit)    or  E -> C = 1 (unihit)
//   N/C/J loop         = L / (L+3)              (multihit; L+2 for unihit)
//   N/C/J move         = 3 / (L+3)
//
// Emission scores are log-odds against the background; insert emissions
// equal the background in local mode so their score is 0 (HMMER does the
// same in its optimized profiles).  Degenerate residues score the
// background-weighted average of their constituent residues' scores.
#pragma once

#include <vector>

#include "hmm/plan7.hpp"
#include "util/logspace.hpp"

namespace finehmm::hmm {

enum class AlignMode {
  kLocalMultihit,  // hmmsearch default
  kLocalUnihit,
  // Glocal ("global with respect to the model"): the whole model must be
  // traversed, entering/leaving through wing-retracted delete paths.
  // Used by the generic engines and hmmalign; the vectorized filters are
  // local-only, exactly as in HMMER.
  kGlocalMultihit,
  kGlocalUnihit,
};

constexpr bool is_local(AlignMode m) {
  return m == AlignMode::kLocalMultihit || m == AlignMode::kLocalUnihit;
}
constexpr bool is_multihit(AlignMode m) {
  return m == AlignMode::kLocalMultihit || m == AlignMode::kGlocalMultihit;
}

/// Profile transition score indices (log probabilities, nats).
enum ProfileTransition : int {
  kPTMM = 0,  // M_{k} -> M_{k+1}
  kPTIM = 1,  // I_{k} -> M_{k+1}
  kPTDM = 2,  // D_{k} -> M_{k+1}
  kPTBM = 3,  // B -> M_{k+1} (local entry; same for all k)
  kPTMD = 4,  // M_{k} -> D_{k+1}
  kPTDD = 5,  // D_{k} -> D_{k+1}
  kPTMI = 6,  // M_{k} -> I_{k}
  kPTII = 7,  // I_{k} -> I_{k}
};
inline constexpr int kNProfileTransitions = 8;

/// Special-state scores (nats) of the configured length model.
struct SpecialScores {
  float n_loop, n_move;  // N->N, N->B
  float e_c, e_j;        // E->C, E->J
  float c_loop, c_move;  // C->C, C->T
  float j_loop, j_move;  // J->J, J->B
};

class SearchProfile {
 public:
  SearchProfile() = default;

  /// Configure from a core model for a target length L.
  SearchProfile(const Plan7Hmm& hmm, AlignMode mode, int L);

  /// Re-derive the length-dependent special scores for a new target length
  /// without touching the emission/transition scores.
  void reconfig_length(int L);

  /// Pure variant: compute the special scores for a target length without
  /// mutating the profile (callers scoring many sequences use this).
  SpecialScores xsc_for(int L) const;

  int length() const noexcept { return M_; }
  int target_length() const noexcept { return L_; }
  AlignMode mode() const noexcept { return mode_; }
  const std::string& name() const noexcept { return name_; }

  /// Match emission log-odds score of alphabet code x at node k (1..M).
  float msc(int k, int x) const {
    return msc_[static_cast<std::size_t>(k) * bio::kKp + x];
  }
  /// Insert emission score (0 in local mode, but kept for generality).
  float isc(int k, int x) const {
    (void)k;
    (void)x;
    return 0.0f;
  }
  /// Transition score t at source node k (0..M-1 for the k -> k+1 family).
  float tsc(int k, ProfileTransition t) const {
    return tsc_[static_cast<std::size_t>(k) * kNProfileTransitions + t];
  }
  /// Exit score M_k -> E (0 in local mode; the wing-retracted delete path
  /// M_k -> D_{k+1} -> ... -> D_M -> E in glocal mode).
  float esc(int k) const { return esc_[k]; }
  const SpecialScores& xsc() const noexcept { return xsc_; }

  /// Most negative finite match emission score (used for byte bias).
  float min_emission_score() const noexcept { return min_msc_; }
  /// Largest match emission score.
  float max_emission_score() const noexcept { return max_msc_; }

 private:
  int M_ = 0;
  int L_ = 0;
  AlignMode mode_ = AlignMode::kLocalMultihit;
  std::string name_;
  std::vector<float> msc_;  // (M+1) x Kp
  std::vector<float> tsc_;  // M x 8 (source node 0..M-1)
  std::vector<float> esc_;  // (M+1), exit scores M_k -> E
  SpecialScores xsc_{};
  float min_msc_ = 0.0f;
  float max_msc_ = 0.0f;
};

/// The null (background) model score correction.
///
/// Null1 is a one-state geometric model emitting the background
/// composition.  Emission terms cancel inside the profile's log-odds
/// scores; what remains is the length term returned here (nats).
float null1_score(int L);

/// Convert a raw profile score (nats) to a bit score against null1.
float nats_to_bits(float raw_nats, int L);

}  // namespace finehmm::hmm
