// HMMER3 ASCII profile file I/O (a faithful subset of the 3/f format).
//
// We read and write NAME / DESC / LENG / ALPH headers, the HMM emission /
// transition table (values stored as negative natural logs, '*' for zero
// probability) and the closing '//'.  COMPO lines and per-node annotation
// columns (MAP/CONS/RF/MM/CS) are written with placeholder values and
// skipped on read, so round-tripping through this module is lossless for
// the probability model.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "hmm/plan7.hpp"
#include "stats/calibrate.hpp"

namespace finehmm::hmm {

/// Write one model in HMMER3 ASCII format.  When calibrated statistics
/// are provided they are stored as HMMER-style STATS lines
/// (STATS LOCAL MSV / VITERBI mu lambda, STATS LOCAL FORWARD tau lambda)
/// so a search can skip recalibration.
void write_hmm(std::ostream& out, const Plan7Hmm& hmm,
               const stats::ModelStats* model_stats = nullptr);
void write_hmm_file(const std::string& path, const Plan7Hmm& hmm,
                    const stats::ModelStats* model_stats = nullptr);

/// Read one model; throws ParseError on malformed input.  If
/// `out_stats` is non-null and the file carries all three STATS lines,
/// the calibration is returned through it.
Plan7Hmm read_hmm(std::istream& in,
                  std::optional<stats::ModelStats>* out_stats = nullptr);
Plan7Hmm read_hmm_file(const std::string& path,
                       std::optional<stats::ModelStats>* out_stats = nullptr);

}  // namespace finehmm::hmm
