#include "hmm/model_group.hpp"

#include <algorithm>
#include <cstdlib>
#include <limits>

#include "bio/alphabet.hpp"
#include "util/error.hpp"

namespace finehmm::hmm {

namespace {

// Lanes model length M claims at stripe count Q: the span holds the M
// real cells plus at least one trailing pad (M/Q + 1 == ceil((M+1)/Q)
// whenever M%Q < Q), so the group kernels' lane shift always crosses a
// forced-zero cell between neighbouring models.
int lanes_for(int M, int Q) { return M / Q + 1; }

}  // namespace

std::size_t FusePlan::fused_models() const {
  std::size_t n = 0;
  for (const GroupShape& g : groups) n += g.members.size();
  return n;
}

double FusePlan::models_per_group() const {
  if (groups.empty()) return 0.0;
  return static_cast<double>(fused_models()) /
         static_cast<double>(groups.size());
}

double FusePlan::lane_occupancy() const {
  double real = 0.0;
  double padded = 0.0;
  for (const GroupShape& g : groups) {
    const double cells = static_cast<double>(g.Q) * lane_width;
    real += g.occupancy * cells;
    padded += cells;
  }
  return padded > 0.0 ? real / padded : 0.0;
}

FuseOptions fuse_options_from_env() {
  FuseOptions opts;
  const char* env = std::getenv("FINEHMM_FUSE");
  if (env == nullptr) return opts;
  const std::string s(env);
  if (s == "off" || s == "0") {
    opts.enabled = false;
  } else if (s == "force") {
    opts.forced = true;
  } else if (s.rfind("force:", 0) == 0) {
    opts.forced = true;
    const long g = std::strtol(s.c_str() + 6, nullptr, 10);
    if (g > 0 && g <= 64) opts.max_group_models = static_cast<int>(g);
  }
  // anything else ("auto", "on", "1", typos) keeps the defaults
  return opts;
}

FusePlan plan_model_groups(const std::vector<int>& lengths, int lane_width,
                           const FuseOptions& opts) {
  FH_REQUIRE(lane_width == 16 || lane_width == 32 || lane_width == 64,
             "fuse planner needs a byte lane width of 16, 32, or 64");
  FusePlan plan;
  plan.lane_width = lane_width;
  const std::size_t n = lengths.size();

  const std::size_t q_cap =
      opts.max_table_bytes /
      (static_cast<std::size_t>(bio::kKp) * static_cast<std::size_t>(lane_width));
  if (!opts.enabled || q_cap == 0) {
    plan.unfused.resize(n);
    for (std::size_t i = 0; i < n; ++i) plan.unfused[i] = i;
    return plan;
  }

  // A model longer than ~32 full-width stripes already keeps a
  // single-model sweep busy; fusing it would inflate every partner's Q.
  const int max_len = opts.forced ? std::numeric_limits<int>::max()
                      : opts.max_fused_length > 0 ? opts.max_fused_length
                                                  : 32 * lane_width;

  std::vector<std::size_t> order;
  order.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (lengths[i] >= 1 && lengths[i] <= max_len)
      order.push_back(i);
    else
      plan.unfused.push_back(i);
  }
  // Sort candidates by length so neighbours share a Q with little padding;
  // ties break by index for determinism.
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) {
              if (lengths[a] != lengths[b]) return lengths[a] < lengths[b];
              return a < b;
            });

  std::size_t group_cap = static_cast<std::size_t>(lane_width);
  if (opts.max_group_models > 0 &&
      static_cast<std::size_t>(opts.max_group_models) < group_cap)
    group_cap = static_cast<std::size_t>(opts.max_group_models);
  const std::size_t min_fuse =
      opts.min_models_to_fuse > 1
          ? static_cast<std::size_t>(opts.min_models_to_fuse)
          : 1;

  std::size_t pos = 0;
  while (pos < order.size()) {
    std::size_t take = std::min(group_cap, order.size() - pos);
    GroupShape g;
    while (take >= min_fuse && take >= 2) {
      // Chunk is sorted ascending, so the last member is the longest.
      const int maxM = lengths[order[pos + take - 1]];
      // Lane demand is non-increasing in Q, so binary-search the minimal
      // feasible Q (always feasible at Q = maxM + 1, where every member
      // claims exactly one lane and take <= lane_width).
      int lo = 1, hi = maxM + 1, best = 0;
      while (lo <= hi) {
        const int mid = lo + (hi - lo) / 2;
        long demand = 0;
        for (std::size_t t = 0; t < take; ++t)
          demand += lanes_for(lengths[order[pos + t]], mid);
        if (demand <= lane_width) {
          best = mid;
          hi = mid - 1;
        } else {
          lo = mid + 1;
        }
      }
      if (best > 0 && static_cast<std::size_t>(best) <= q_cap) {
        g.Q = best;
        break;
      }
      // Minimal lane-feasible Q busts the table cap: drop the longest
      // member and retry with a shorter (hence smaller-Q) chunk.
      --take;
    }
    if (g.Q > 0) {
      g.members.reserve(take);
      long cells = 0;
      for (std::size_t t = 0; t < take; ++t) {
        const std::size_t idx = order[pos + t];
        g.members.push_back(idx);
        g.lanes_used += lanes_for(lengths[idx], g.Q);
        cells += lengths[idx];
      }
      g.occupancy = static_cast<double>(cells) /
                    (static_cast<double>(g.Q) * lane_width);
      plan.groups.push_back(std::move(g));
      pos += take;
    } else {
      plan.unfused.push_back(order[pos]);
      ++pos;
    }
  }
  std::sort(plan.unfused.begin(), plan.unfused.end());
  return plan;
}

std::vector<LengthBucket> length_histogram(const std::vector<int>& lengths) {
  std::vector<LengthBucket> out;
  int max_len = 0;
  for (int m : lengths) max_len = std::max(max_len, m);
  if (max_len < 1) return out;
  for (int lo = 1, hi = 32; lo <= max_len; lo = hi, hi *= 2) {
    LengthBucket b{lo, hi, 0};
    for (int m : lengths)
      if (m >= lo && m < hi) ++b.count;
    if (b.count > 0) out.push_back(b);
  }
  return out;
}

}  // namespace finehmm::hmm
