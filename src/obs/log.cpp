#include "obs/log.hpp"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <sstream>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace finehmm::obs {

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "?";
}

LogLevel parse_log_level(const std::string& name) {
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  return LogLevel::kOff;
}

namespace {

/// FINEHMM_LOG, parsed once per process; kOff doubles as "not set"
/// (setting FINEHMM_LOG=off genuinely silences everything either way).
LogLevel env_level() {
  static const LogLevel lvl = [] {
    const char* env = std::getenv("FINEHMM_LOG");
    return env != nullptr ? parse_log_level(env) : LogLevel::kOff;
  }();
  return lvl;
}

bool env_level_set() {
  static const bool set = std::getenv("FINEHMM_LOG") != nullptr;
  return set;
}

std::atomic<int> g_level{static_cast<int>(LogLevel::kOff)};

Mutex g_sink_mu;  // serializes whole lines across threads
std::ostream* g_sink FINEHMM_GUARDED_BY(g_sink_mu) = nullptr;  // null = stderr

using Clock = std::chrono::steady_clock;
const Clock::time_point g_epoch = Clock::now();

void write_field(std::ostream& os, const LogField& f) {
  os << "\"" << json_escape(f.key) << "\": ";
  switch (f.kind) {
    case LogField::Kind::kString:
      os << "\"" << json_escape(f.str) << "\"";
      break;
    case LogField::Kind::kU64:
      os << f.u64;
      break;
    case LogField::Kind::kI64:
      os << f.i64;
      break;
    case LogField::Kind::kF64:
      // JSON has no inf/nan — same rule as the telemetry writer.
      if (std::isfinite(f.f64))
        os << f.f64;
      else
        os << "null";
      break;
    case LogField::Kind::kBool:
      os << (f.b ? "true" : "false");
      break;
  }
}

}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() {
  if (env_level_set()) return env_level();
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void set_log_sink(std::ostream* sink) {
  MutexLock lock(g_sink_mu);
  g_sink = sink;
}

void log(LogLevel level, const char* event,
         std::initializer_list<LogField> fields) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  if (level == LogLevel::kOff) return;

  const double ts =
      std::chrono::duration_cast<std::chrono::duration<double>>(Clock::now() -
                                                                g_epoch)
          .count();
  // Build the whole line first so one sink write = one line even when
  // threads race.
  std::ostringstream line;
  line << "{\"ts\": " << ts << ", \"level\": \"" << log_level_name(level)
       << "\", \"event\": \"" << json_escape(event) << "\"";
  for (const LogField& f : fields) {
    line << ", ";
    write_field(line, f);
  }
  line << "}\n";

  MutexLock lock(g_sink_mu);
  std::ostream& os = g_sink != nullptr ? *g_sink : std::cerr;
  os << line.str();
  os.flush();
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

bool LogRateLimit::allow(std::uint64_t* suppressed_out) {
  const std::uint64_t now_s = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::seconds>(Clock::now() - g_epoch)
          .count());
  // state = window << 32 | count-in-window.  A CAS loop keeps the pair
  // consistent without a lock; contention is bounded by the log rate.
  std::uint64_t state = state_.load(std::memory_order_relaxed);
  for (;;) {
    const std::uint64_t window = state >> 32;
    const std::uint64_t count = state & 0xffffffffu;
    std::uint64_t next;
    bool allowed;
    if (window != now_s) {
      next = (now_s << 32) | 1;  // fresh window, this event opens it
      allowed = true;
    } else if (count < max_per_second_) {
      next = state + 1;
      allowed = true;
    } else {
      next = state;
      allowed = false;
    }
    if (!allowed) {
      suppressed_.fetch_add(1, std::memory_order_relaxed);
      if (suppressed_out != nullptr) *suppressed_out = 0;
      return false;
    }
    if (state_.compare_exchange_weak(state, next,
                                     std::memory_order_relaxed)) {
      if (suppressed_out != nullptr)
        *suppressed_out = suppressed_.exchange(0, std::memory_order_relaxed);
      return true;
    }
  }
}

}  // namespace finehmm::obs
