// Structured JSON logging for long-running services (finehmmd).
//
// One event per line, machine-parseable, human-greppable:
//
//   {"ts": 12.345678, "level": "warn", "event": "server.slow_request",
//    "trace_id": "0x9f3a5c...", "total_ms": 1840.2, "queue_ms": 3.1, ...}
//
// Design rules:
//   * Leveled (debug < info < warn < error), default OFF so the library
//     stays silent in tests and embedders; finehmmd turns it on at
//     startup and FINEHMM_LOG=debug|info|warn|error|off overrides both.
//   * Fields are typed key/value pairs; string values are JSON-escaped
//     (so a hostile model name cannot break the log stream), doubles go
//     through the same finite-or-null guard as the telemetry JSON.
//   * `ts` is seconds since process start (monotonic, not wall clock):
//     log lines order and diff cleanly, and no syscall to a realtime
//     clock sits on the logging path.
//   * Rate-limitable per site: a static obs::LogRateLimit caps a noisy
//     site (e.g. one overload warning per second under a shed storm)
//     and reports how many events the cap swallowed when it re-opens.
//
// The logger is for control-plane events (startup, drain, overload,
// slow requests) — per-request latency belongs in the histograms
// (obs/histogram.hpp) and per-request timing in the trace ring
// (obs/request_trace.hpp); see docs/observability.md.
#pragma once

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <string>

namespace finehmm::obs {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,
};

const char* log_level_name(LogLevel level);
/// Parse "debug" | "info" | "warn" | "error" | "off"; kOff on unknown.
LogLevel parse_log_level(const std::string& name);

/// Minimum level that gets emitted.  The process default is kOff
/// (libraries stay silent); FINEHMM_LOG in the environment, when set,
/// overrides every set_log_level call (checked once per process).
void set_log_level(LogLevel level);
LogLevel log_level();

/// Where log lines go (default: stderr).  Pass nullptr to restore the
/// default.  Not synchronized against in-flight log() calls — install
/// sinks at startup or at serial points (tests).
void set_log_sink(std::ostream* sink);

/// One typed field of a log event.
struct LogField {
  enum class Kind { kString, kU64, kI64, kF64, kBool };

  LogField(const char* k, const char* v)
      : key(k), kind(Kind::kString), str(v) {}
  LogField(const char* k, const std::string& v)
      : key(k), kind(Kind::kString), str(v) {}
  LogField(const char* k, std::uint64_t v) : key(k), kind(Kind::kU64), u64(v) {}
  LogField(const char* k, std::uint32_t v)
      : key(k), kind(Kind::kU64), u64(v) {}
  LogField(const char* k, std::int64_t v) : key(k), kind(Kind::kI64), i64(v) {}
  LogField(const char* k, int v)
      : key(k), kind(Kind::kI64), i64(v) {}
  LogField(const char* k, double v) : key(k), kind(Kind::kF64), f64(v) {}
  LogField(const char* k, bool v) : key(k), kind(Kind::kBool), b(v) {}

  const char* key;
  Kind kind;
  std::string str;
  std::uint64_t u64 = 0;
  std::int64_t i64 = 0;
  double f64 = 0.0;
  bool b = false;
};

/// Emit one structured event (a single '\n'-terminated JSON line) when
/// `level` clears the process threshold.  `event` should be a stable
/// dotted name ("server.start", "server.slow_request").
void log(LogLevel level, const char* event,
         std::initializer_list<LogField> fields = {});

/// JSON string escaping (\\, \", control characters) shared by the
/// logger and anything else that embeds untrusted text in JSON.
std::string json_escape(const std::string& s);

/// Token-window rate limiter for one logging site.  Typical use:
///
///   static obs::LogRateLimit limit(1);  // one event per second
///   std::uint64_t dropped = 0;
///   if (limit.allow(&dropped))
///     obs::log(obs::LogLevel::kWarn, "server.overload",
///              {{"suppressed", dropped}, ...});
///
/// allow() is thread-safe and allocation-free; `suppressed_out` reports
/// how many events the cap swallowed since the last allowed one.
class LogRateLimit {
 public:
  explicit LogRateLimit(std::uint32_t max_per_second)
      : max_per_second_(max_per_second == 0 ? 1 : max_per_second) {}

  bool allow(std::uint64_t* suppressed_out = nullptr);

 private:
  std::uint32_t max_per_second_;
  // One word of state under no lock: the window index in the high bits
  // is compared-and-swapped together with the count in the low bits.
  std::atomic<std::uint64_t> state_{0};
  std::atomic<std::uint64_t> suppressed_{0};
};

}  // namespace finehmm::obs
