#include "obs/telemetry.hpp"

#include <ostream>
#include <sstream>

namespace finehmm::obs {

std::string json_rate(double units, double seconds) {
  if (!valid_rate(units, seconds)) return "null";
  std::ostringstream os;
  os << units / seconds;
  return os.str();
}

const StageTelemetry* ScanTelemetry::stage(const std::string& name) const {
  for (const auto& s : stages)
    if (s.stage == name) return &s;
  return nullptr;
}

namespace {

// Every number goes through here: JSON has no inf/nan, so unusable
// values serialize as null rather than poisoning the document.
void num(std::ostream& os, double v) {
  if (std::isfinite(v))
    os << v;
  else
    os << "null";
}

void indent_to(std::ostream& os, int n) {
  for (int i = 0; i < n; ++i) os << ' ';
}

}  // namespace

void ScanTelemetry::write_json(std::ostream& os, int indent) const {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  os << pad << "{\n";
  os << pad << "  \"schema\": \"finehmm.scan_telemetry.v1\",\n";
  os << pad << "  \"engine\": \"" << engine << "\",\n";
  os << pad << "  \"threads\": " << threads << ",\n";
  os << pad << "  \"sequences\": " << sequences << ",\n";
  os << pad << "  \"residues\": " << residues << ",\n";
  os << pad << "  \"wall_seconds\": ";
  num(os, wall_seconds);
  os << ",\n";
  os << pad << "  \"total_cells\": ";
  num(os, total_cells());
  os << ",\n";
  os << pad << "  \"cells_per_sec\": " << json_rate(total_cells(), wall_seconds)
     << ",\n";
  os << pad << "  \"bytes\": {\"zero_copy\": " << (zero_copy ? "true" : "false")
     << ", \"mapped\": " << mapped_bytes << ", \"heap\": " << heap_bytes
     << ", \"decoded\": " << decoded_bytes << "},\n";

  os << pad << "  \"stages\": [";
  for (std::size_t i = 0; i < stages.size(); ++i) {
    const auto& s = stages[i];
    os << (i ? "," : "") << "\n";
    indent_to(os, indent + 4);
    os << "{\"stage\": \"" << s.stage << "\", \"n_in\": " << s.n_in
       << ", \"n_passed\": " << s.n_passed << ", \"pass_rate\": ";
    num(os, s.pass_rate());
    os << ", \"cells\": ";
    num(os, s.cells);
    os << ",\n";
    indent_to(os, indent + 5);
    os << "\"wall_seconds\": ";
    num(os, s.wall_seconds);
    os << ", \"busy_seconds\": ";
    num(os, s.busy_seconds);
    os << ", \"cells_per_sec_wall\": " << json_rate(s.cells, s.wall_seconds)
       << ", \"cells_per_sec_busy\": " << json_rate(s.cells, s.busy_seconds);
    if (!s.counters.empty()) {
      os << ",\n";
      indent_to(os, indent + 5);
      os << "\"counters\": {";
      for (std::size_t k = 0; k < s.counters.size(); ++k) {
        os << (k ? ", " : "") << "\"" << s.counters[k].first << "\": ";
        num(os, s.counters[k].second);
      }
      os << "}";
    }
    os << "}";
  }
  os << "\n";
  indent_to(os, indent + 2);
  os << "],\n";

  if (queue) {
    os << pad << "  \"queue\": {\"capacity\": " << queue->capacity
       << ", \"enqueued\": " << queue->enqueued
       << ", \"dequeued\": " << queue->dequeued
       << ", \"enqueue_stalls\": " << queue->enqueue_stalls
       << ", \"help_first_rescues\": " << queue->help_first_rescues
       << ", \"max_depth\": " << queue->max_depth << "},\n";
  } else {
    os << pad << "  \"queue\": null,\n";
  }

  os << pad << "  \"buckets\": [";
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    os << (i ? ", " : "") << "{\"sequences\": " << buckets[i].sequences
       << ", \"residues\": " << buckets[i].residues << "}";
  }
  os << "],\n";

  os << pad << "  \"per_thread\": [";
  for (std::size_t i = 0; i < per_thread.size(); ++i) {
    const auto& t = per_thread[i];
    os << (i ? "," : "") << "\n";
    indent_to(os, indent + 4);
    os << "{\"thread\": " << t.thread << ", \"busy_seconds\": {";
    for (int s = 0; s < kStageCount; ++s) {
      os << (s ? ", " : "") << "\"" << stage_name(static_cast<Stage>(s))
         << "\": ";
      num(os, t.stage_busy_seconds[s]);
    }
    os << "}, \"items\": {";
    for (int s = 0; s < kStageCount; ++s) {
      os << (s ? ", " : "") << "\"" << stage_name(static_cast<Stage>(s))
         << "\": " << t.stage_items[s];
    }
    os << "},\n";
    indent_to(os, indent + 5);
    os << "\"sequences_scored\": " << t.sequences_scored
       << ", \"help_first_rescues\": " << t.help_first_rescues
       << ", \"decoded_bytes\": " << t.decoded_bytes
       << ", \"spans\": " << t.spans
       << ", \"spans_dropped\": " << t.spans_dropped << "}";
  }
  os << "\n";
  indent_to(os, indent + 2);
  os << "]\n";
  os << pad << "}";
}

void ScanTelemetry::write_prometheus(std::ostream& os) const {
  const std::string eng = "engine=\"" + engine + "\"";
  os << "# TYPE finehmm_scan_wall_seconds gauge\n";
  os << "finehmm_scan_wall_seconds{" << eng << "} ";
  num(os, wall_seconds);
  os << "\n";
  os << "# TYPE finehmm_scan_sequences gauge\n";
  os << "finehmm_scan_sequences{" << eng << "} " << sequences << "\n";
  os << "# TYPE finehmm_scan_cells_total counter\n";
  os << "finehmm_scan_cells_total{" << eng << "} ";
  num(os, total_cells());
  os << "\n";

  os << "# TYPE finehmm_stage_seconds gauge\n";
  for (const auto& s : stages) {
    os << "finehmm_stage_seconds{" << eng << ",stage=\"" << s.stage
       << "\",kind=\"wall\"} ";
    num(os, s.wall_seconds);
    os << "\n";
    os << "finehmm_stage_seconds{" << eng << ",stage=\"" << s.stage
       << "\",kind=\"busy\"} ";
    num(os, s.busy_seconds);
    os << "\n";
  }
  os << "# TYPE finehmm_stage_sequences gauge\n";
  for (const auto& s : stages) {
    os << "finehmm_stage_sequences{" << eng << ",stage=\"" << s.stage
       << "\",dir=\"in\"} " << s.n_in << "\n";
    os << "finehmm_stage_sequences{" << eng << ",stage=\"" << s.stage
       << "\",dir=\"passed\"} " << s.n_passed << "\n";
  }
  os << "# TYPE finehmm_stage_cells_total counter\n";
  for (const auto& s : stages) {
    os << "finehmm_stage_cells_total{" << eng << ",stage=\"" << s.stage
       << "\"} ";
    num(os, s.cells);
    os << "\n";
  }
  for (const auto& s : stages) {
    for (const auto& [key, value] : s.counters) {
      os << "finehmm_stage_counter{" << eng << ",stage=\"" << s.stage
         << "\",counter=\"" << key << "\"} ";
      num(os, value);
      os << "\n";
    }
  }

  if (queue) {
    os << "# TYPE finehmm_queue_enqueued_total counter\n";
    os << "finehmm_queue_enqueued_total{" << eng << "} " << queue->enqueued
       << "\n";
    os << "# TYPE finehmm_queue_dequeued_total counter\n";
    os << "finehmm_queue_dequeued_total{" << eng << "} " << queue->dequeued
       << "\n";
    os << "# TYPE finehmm_queue_enqueue_stalls_total counter\n";
    os << "finehmm_queue_enqueue_stalls_total{" << eng << "} "
       << queue->enqueue_stalls << "\n";
    os << "# TYPE finehmm_queue_help_first_rescues_total counter\n";
    os << "finehmm_queue_help_first_rescues_total{" << eng << "} "
       << queue->help_first_rescues << "\n";
    os << "# TYPE finehmm_queue_max_depth gauge\n";
    os << "finehmm_queue_max_depth{" << eng << "} " << queue->max_depth
       << "\n";
  }

  os << "# TYPE finehmm_thread_busy_seconds gauge\n";
  for (const auto& t : per_thread) {
    for (int s = 0; s < kStageCount; ++s) {
      if (t.stage_busy_seconds[s] == 0.0) continue;
      os << "finehmm_thread_busy_seconds{" << eng << ",thread=\"" << t.thread
         << "\",stage=\"" << stage_name(static_cast<Stage>(s)) << "\"} ";
      num(os, t.stage_busy_seconds[s]);
      os << "\n";
    }
  }

  os << "# TYPE finehmm_bucket_sequences gauge\n";
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    os << "finehmm_bucket_sequences{" << eng << ",bucket=\"" << b << "\"} "
       << buckets[b].sequences << "\n";
  }
}

std::vector<std::pair<std::string, double>> counters_kv(
    const simt::PerfCounters& c) {
  return {
      {"alu", static_cast<double>(c.alu)},
      {"shuffles", static_cast<double>(c.shuffles)},
      {"votes", static_cast<double>(c.votes)},
      {"syncs", static_cast<double>(c.syncs)},
      {"smem_accesses", static_cast<double>(c.smem_accesses)},
      {"smem_cycles", static_cast<double>(c.smem_cycles)},
      {"gmem_transactions", static_cast<double>(c.gmem_transactions)},
      {"gmem_bytes", static_cast<double>(c.gmem_bytes)},
      {"gmem_cached_tx", static_cast<double>(c.gmem_cached_tx)},
      {"lazyf_outer", static_cast<double>(c.lazyf_outer)},
      {"lazyf_inner", static_cast<double>(c.lazyf_inner)},
      {"sequences", static_cast<double>(c.sequences)},
      {"residues", static_cast<double>(c.residues)},
      {"cells", static_cast<double>(c.cells)},
  };
}

}  // namespace finehmm::obs
