#include "obs/telemetry.hpp"

#include <ostream>
#include <sstream>

namespace finehmm::obs {

std::string json_rate(double units, double seconds) {
  if (!valid_rate(units, seconds)) return "null";
  std::ostringstream os;
  os << units / seconds;
  return os.str();
}

std::string prometheus_escape_label(const std::string& value) {
  std::string out;
  out.reserve(value.size() + 4);
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

const StageTelemetry* ScanTelemetry::stage(const std::string& name) const {
  for (const auto& s : stages)
    if (s.stage == name) return &s;
  return nullptr;
}

namespace {

// Every number goes through here: JSON has no inf/nan, so unusable
// values serialize as null rather than poisoning the document.
void num(std::ostream& os, double v) {
  if (std::isfinite(v))
    os << v;
  else
    os << "null";
}

void indent_to(std::ostream& os, int n) {
  for (int i = 0; i < n; ++i) os << ' ';
}

}  // namespace

void ScanTelemetry::write_json(std::ostream& os, int indent) const {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  os << pad << "{\n";
  os << pad << "  \"schema\": \"finehmm.scan_telemetry.v1\",\n";
  os << pad << "  \"engine\": \"" << engine << "\",\n";
  os << pad << "  \"threads\": " << threads << ",\n";
  os << pad << "  \"sequences\": " << sequences << ",\n";
  os << pad << "  \"residues\": " << residues << ",\n";
  os << pad << "  \"wall_seconds\": ";
  num(os, wall_seconds);
  os << ",\n";
  os << pad << "  \"total_cells\": ";
  num(os, total_cells());
  os << ",\n";
  os << pad << "  \"cells_per_sec\": " << json_rate(total_cells(), wall_seconds)
     << ",\n";
  os << pad << "  \"bytes\": {\"zero_copy\": " << (zero_copy ? "true" : "false")
     << ", \"mapped\": " << mapped_bytes << ", \"heap\": " << heap_bytes
     << ", \"decoded\": " << decoded_bytes << "},\n";

  os << pad << "  \"stages\": [";
  for (std::size_t i = 0; i < stages.size(); ++i) {
    const auto& s = stages[i];
    os << (i ? "," : "") << "\n";
    indent_to(os, indent + 4);
    os << "{\"stage\": \"" << s.stage << "\", \"n_in\": " << s.n_in
       << ", \"n_passed\": " << s.n_passed << ", \"pass_rate\": ";
    num(os, s.pass_rate());
    os << ", \"cells\": ";
    num(os, s.cells);
    os << ",\n";
    indent_to(os, indent + 5);
    os << "\"wall_seconds\": ";
    num(os, s.wall_seconds);
    os << ", \"busy_seconds\": ";
    num(os, s.busy_seconds);
    os << ", \"cells_per_sec_wall\": " << json_rate(s.cells, s.wall_seconds)
       << ", \"cells_per_sec_busy\": " << json_rate(s.cells, s.busy_seconds);
    if (!s.counters.empty()) {
      os << ",\n";
      indent_to(os, indent + 5);
      os << "\"counters\": {";
      for (std::size_t k = 0; k < s.counters.size(); ++k) {
        os << (k ? ", " : "") << "\"" << s.counters[k].first << "\": ";
        num(os, s.counters[k].second);
      }
      os << "}";
    }
    os << "}";
  }
  os << "\n";
  indent_to(os, indent + 2);
  os << "],\n";

  if (queue) {
    os << pad << "  \"queue\": {\"capacity\": " << queue->capacity
       << ", \"enqueued\": " << queue->enqueued
       << ", \"dequeued\": " << queue->dequeued
       << ", \"enqueue_stalls\": " << queue->enqueue_stalls
       << ", \"help_first_rescues\": " << queue->help_first_rescues
       << ", \"max_depth\": " << queue->max_depth << "},\n";
  } else {
    os << pad << "  \"queue\": null,\n";
  }

  os << pad << "  \"buckets\": [";
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    os << (i ? ", " : "") << "{\"sequences\": " << buckets[i].sequences
       << ", \"residues\": " << buckets[i].residues << "}";
  }
  os << "],\n";

  os << pad << "  \"per_thread\": [";
  for (std::size_t i = 0; i < per_thread.size(); ++i) {
    const auto& t = per_thread[i];
    os << (i ? "," : "") << "\n";
    indent_to(os, indent + 4);
    os << "{\"thread\": " << t.thread << ", \"busy_seconds\": {";
    for (int s = 0; s < kStageCount; ++s) {
      os << (s ? ", " : "") << "\"" << stage_name(static_cast<Stage>(s))
         << "\": ";
      num(os, t.stage_busy_seconds[s]);
    }
    os << "}, \"items\": {";
    for (int s = 0; s < kStageCount; ++s) {
      os << (s ? ", " : "") << "\"" << stage_name(static_cast<Stage>(s))
         << "\": " << t.stage_items[s];
    }
    os << "},\n";
    indent_to(os, indent + 5);
    os << "\"sequences_scored\": " << t.sequences_scored
       << ", \"help_first_rescues\": " << t.help_first_rescues
       << ", \"decoded_bytes\": " << t.decoded_bytes
       << ", \"spans\": " << t.spans
       << ", \"spans_dropped\": " << t.spans_dropped << "}";
  }
  os << "\n";
  indent_to(os, indent + 2);
  os << "]\n";
  os << pad << "}";
}

namespace {

// `# HELP` + `# TYPE` header for one metric family.  Every exported
// series goes through here so no family ships without metadata.
void family(std::ostream& os, const char* name, const char* type,
            const char* help) {
  os << "# HELP " << name << " " << help << "\n";
  os << "# TYPE " << name << " " << type << "\n";
}

}  // namespace

void ScanTelemetry::write_prometheus(std::ostream& os) const {
  // All free-form label values (engine, stage, counter keys) are
  // escaped; a hostile name cannot break the exposition.
  const std::string eng = "engine=\"" + prometheus_escape_label(engine) + "\"";
  family(os, "finehmm_scan_wall_seconds", "gauge",
         "End-to-end scan wall clock in seconds.");
  os << "finehmm_scan_wall_seconds{" << eng << "} ";
  num(os, wall_seconds);
  os << "\n";
  family(os, "finehmm_scan_sequences", "gauge",
         "Database sequences covered by the scan.");
  os << "finehmm_scan_sequences{" << eng << "} " << sequences << "\n";
  family(os, "finehmm_scan_cells_total", "counter",
         "DP cells evaluated across all stages.");
  os << "finehmm_scan_cells_total{" << eng << "} ";
  num(os, total_cells());
  os << "\n";

  family(os, "finehmm_stage_seconds", "gauge",
         "Per-stage wall and merged busy seconds.");
  for (const auto& s : stages) {
    const std::string stg = prometheus_escape_label(s.stage);
    os << "finehmm_stage_seconds{" << eng << ",stage=\"" << stg
       << "\",kind=\"wall\"} ";
    num(os, s.wall_seconds);
    os << "\n";
    os << "finehmm_stage_seconds{" << eng << ",stage=\"" << stg
       << "\",kind=\"busy\"} ";
    num(os, s.busy_seconds);
    os << "\n";
  }
  family(os, "finehmm_stage_sequences", "gauge",
         "Sequences entering and surviving each filter stage.");
  for (const auto& s : stages) {
    const std::string stg = prometheus_escape_label(s.stage);
    os << "finehmm_stage_sequences{" << eng << ",stage=\"" << stg
       << "\",dir=\"in\"} " << s.n_in << "\n";
    os << "finehmm_stage_sequences{" << eng << ",stage=\"" << stg
       << "\",dir=\"passed\"} " << s.n_passed << "\n";
  }
  family(os, "finehmm_stage_cells_total", "counter",
         "DP cells evaluated per stage.");
  for (const auto& s : stages) {
    os << "finehmm_stage_cells_total{" << eng << ",stage=\""
       << prometheus_escape_label(s.stage) << "\"} ";
    num(os, s.cells);
    os << "\n";
  }
  {
    bool any = false;
    for (const auto& s : stages) any = any || !s.counters.empty();
    if (any)
      family(os, "finehmm_stage_counter", "gauge",
             "Engine-specific per-stage counters (SIMT PerfCounters).");
    for (const auto& s : stages) {
      for (const auto& [key, value] : s.counters) {
        os << "finehmm_stage_counter{" << eng << ",stage=\""
           << prometheus_escape_label(s.stage) << "\",counter=\""
           << prometheus_escape_label(key) << "\"} ";
        num(os, value);
        os << "\n";
      }
    }
  }

  if (queue) {
    family(os, "finehmm_queue_enqueued_total", "counter",
           "Survivors pushed into the overlapped queue.");
    os << "finehmm_queue_enqueued_total{" << eng << "} " << queue->enqueued
       << "\n";
    family(os, "finehmm_queue_dequeued_total", "counter",
           "Survivors drained from the overlapped queue.");
    os << "finehmm_queue_dequeued_total{" << eng << "} " << queue->dequeued
       << "\n";
    family(os, "finehmm_queue_enqueue_stalls_total", "counter",
           "try_push rejections (ring full).");
    os << "finehmm_queue_enqueue_stalls_total{" << eng << "} "
       << queue->enqueue_stalls << "\n";
    family(os, "finehmm_queue_help_first_rescues_total", "counter",
           "Producers that drained one survivor themselves.");
    os << "finehmm_queue_help_first_rescues_total{" << eng << "} "
       << queue->help_first_rescues << "\n";
    family(os, "finehmm_queue_max_depth", "gauge",
           "High-water occupancy of the overlapped queue.");
    os << "finehmm_queue_max_depth{" << eng << "} " << queue->max_depth
       << "\n";
  }

  family(os, "finehmm_thread_busy_seconds", "gauge",
         "Per-worker busy seconds by stage.");
  for (const auto& t : per_thread) {
    for (int s = 0; s < kStageCount; ++s) {
      if (t.stage_busy_seconds[s] == 0.0) continue;
      os << "finehmm_thread_busy_seconds{" << eng << ",thread=\"" << t.thread
         << "\",stage=\"" << stage_name(static_cast<Stage>(s)) << "\"} ";
      num(os, t.stage_busy_seconds[s]);
      os << "\n";
    }
  }

  family(os, "finehmm_bucket_sequences", "gauge",
         "Sequences per geometric length bucket of the scan schedule.");
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    os << "finehmm_bucket_sequences{" << eng << ",bucket=\"" << b << "\"} "
       << buckets[b].sequences << "\n";
  }
}

std::vector<std::pair<std::string, double>> counters_kv(
    const simt::PerfCounters& c) {
  return {
      {"alu", static_cast<double>(c.alu)},
      {"shuffles", static_cast<double>(c.shuffles)},
      {"votes", static_cast<double>(c.votes)},
      {"syncs", static_cast<double>(c.syncs)},
      {"smem_accesses", static_cast<double>(c.smem_accesses)},
      {"smem_cycles", static_cast<double>(c.smem_cycles)},
      {"gmem_transactions", static_cast<double>(c.gmem_transactions)},
      {"gmem_bytes", static_cast<double>(c.gmem_bytes)},
      {"gmem_cached_tx", static_cast<double>(c.gmem_cached_tx)},
      {"lazyf_outer", static_cast<double>(c.lazyf_outer)},
      {"lazyf_inner", static_cast<double>(c.lazyf_inner)},
      {"sequences", static_cast<double>(c.sequences)},
      {"residues", static_cast<double>(c.residues)},
      {"cells", static_cast<double>(c.cells)},
  };
}

}  // namespace finehmm::obs
