// Always-on log-bucketed latency histograms (HDR-style).
//
// The server's latency truth must come from production requests, not
// bench runs, which means recording has to be cheap enough to leave on
// for every request: a fixed array of buckets, one add per sample, zero
// heap allocation anywhere on the recording path.  Buckets are base-2
// logarithmic with linear sub-buckets — each octave is split into
// kSubBuckets equal steps, so the relative quantization error is
// bounded by 1/kSubBuckets (~1.6%) across the whole 64-bit range while
// the table stays ~30 KB.
//
// Two flavors share the bucket geometry:
//   * Histogram           — plain counters.  Single-writer (one thread,
//                           or a per-thread slot merged at a serial
//                           point, like obs::ThreadLog).
//   * ConcurrentHistogram — std::atomic counters with relaxed adds:
//                           lock-free, wait-free recording from any
//                           thread.  snapshot() flattens to a Histogram
//                           for quantile math and serialization.
//
// tests/test_histogram.cpp pins the bucket boundaries, proves
// merge-of-per-thread == global, quantile monotonicity, and the
// zero-allocation recording path under a counting operator new;
// tests/test_concurrency.cpp hammers ConcurrentHistogram under TSan.
//
// Concurrency contract: this file is deliberately lock-free, so it
// carries NO capability annotations (docs/static_analysis.md
// §lock-free).  Histogram is single-writer by contract; in
// ConcurrentHistogram the relaxed atomics themselves are the
// synchronization — there is no mutex whose acquisition the
// thread-safety analysis could check.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>

namespace finehmm::obs {

/// Bucket geometry shared by both histogram flavors.  Values are
/// dimensionless uint64s; the server records nanoseconds.
struct HistogramBuckets {
  /// Sub-buckets per octave: 2^6 = 64 linear steps, so any recorded
  /// value lands in a bucket whose width is <= value/64 (~1.6% error).
  static constexpr int kSubBucketBits = 6;
  static constexpr std::uint64_t kSubBuckets = std::uint64_t{1}
                                               << kSubBucketBits;
  /// One run of sub-buckets per possible exponent.  Values whose
  /// bit-width fits in kSubBucketBits index themselves (octave 0).
  static constexpr std::uint64_t kBucketCount =
      (64 - kSubBucketBits + 1) * kSubBuckets;

  /// Which bucket a value lands in.  Monotone in `value`; saturates at
  /// the top bucket (nothing a server measures overflows 2^64 ns).
  static constexpr std::uint64_t index_of(std::uint64_t value) {
    if (value < kSubBuckets) return value;
    const int exponent = std::bit_width(value) - kSubBucketBits;
    const std::uint64_t idx =
        static_cast<std::uint64_t>(exponent) * kSubBuckets +
        (value >> exponent);
    return idx < kBucketCount ? idx : kBucketCount - 1;
  }

  /// Smallest value mapping to bucket `idx`.
  static constexpr std::uint64_t lower_bound(std::uint64_t idx) {
    const std::uint64_t exponent = idx / kSubBuckets;
    const std::uint64_t sub = idx % kSubBuckets;
    return exponent == 0 ? sub : sub << exponent;
  }

  /// Largest value mapping to bucket `idx` (the quantile estimate: the
  /// conservative upper edge, so reported percentiles never understate).
  static constexpr std::uint64_t upper_bound(std::uint64_t idx) {
    const std::uint64_t exponent = idx / kSubBuckets;
    const std::uint64_t sub = idx % kSubBuckets;
    return exponent == 0 ? sub : ((sub + 1) << exponent) - 1;
  }
};

/// Plain-counter histogram: record / merge / quantile.  ~30 KB of
/// inline storage, no heap anywhere.
class Histogram {
 public:
  using B = HistogramBuckets;

  void record(std::uint64_t value) {
    ++counts_[B::index_of(value)];
    ++count_;
    sum_ += value;
    if (value > max_) max_ = value;
  }

  void merge(const Histogram& other);

  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  std::uint64_t max() const { return max_; }
  std::uint64_t bucket(std::uint64_t idx) const { return counts_[idx]; }

  /// Value at quantile q in [0, 1]: the upper edge of the bucket where
  /// the cumulative count first reaches ceil(q * count).  0 when empty.
  /// Monotone in q by construction (a cumulative walk).
  std::uint64_t quantile(double q) const;

  void clear();

 private:
  friend class ConcurrentHistogram;  // snapshot() fills buckets directly

  std::uint64_t counts_[B::kBucketCount] = {};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t max_ = 0;
};

/// Lock-free multi-writer histogram: relaxed atomic adds, no ordering
/// required — each sample is independent and snapshot() only needs
/// eventual totals.  Recording is wait-free and allocation-free.
class ConcurrentHistogram {
 public:
  using B = HistogramBuckets;

  void record(std::uint64_t value) {
    counts_[B::index_of(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }

  /// Flatten to a plain Histogram for quantiles and serialization.
  /// Concurrent recorders may still be running; the snapshot is a
  /// consistent-enough view (each bucket is individually exact, totals
  /// recomputed from the buckets so count == sum of buckets always).
  Histogram snapshot() const;

 private:
  std::atomic<std::uint64_t> counts_[B::kBucketCount] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

/// The quantile set every latency surface reports
/// (docs/observability.md): p50 / p90 / p99 / p99.9, in the recorded
/// unit (the server records nanoseconds).
struct LatencyQuantiles {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t p50 = 0;
  std::uint64_t p90 = 0;
  std::uint64_t p99 = 0;
  std::uint64_t p999 = 0;
};

LatencyQuantiles latency_quantiles(const Histogram& h);

}  // namespace finehmm::obs
